package cuisines

import (
	"fmt"
	"sort"
	"strings"

	"cuisines/internal/itemset"
)

// TableRow is one row of the Table I reproduction.
type TableRow struct {
	Region  string `json:"region"`
	Recipes int    `json:"recipes"`
	// Top holds the headline patterns (most significant first), rendered
	// in the paper's "a + b" notation.
	Top []HeadlinePattern `json:"top"`
	// Patterns is the number of frequent itemsets mined at the support
	// threshold.
	Patterns int `json:"patterns"`
}

// HeadlinePattern is a significant pattern with its support.
type HeadlinePattern struct {
	Pattern string  `json:"pattern"`
	Support float64 `json:"support"`
	Score   float64 `json:"score"`
}

// Table returns the Table I reproduction, one row per cuisine.
func (a *Analysis) Table() []TableRow {
	rows := make([]TableRow, 0, len(a.figures.Table1.Rows))
	for _, r := range a.figures.Table1.Rows {
		row := TableRow{Region: r.Region, Recipes: r.Recipes, Patterns: r.Patterns}
		for _, sp := range r.Top {
			row.Top = append(row.Top, HeadlinePattern{
				Pattern: sp.Pattern.Items.String(),
				Support: sp.Pattern.Support,
				Score:   sp.Score,
			})
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable renders the Table I reproduction as aligned text.
func (a *Analysis) RenderTable() string { return a.figures.Table1.String() }

// PatternInfo is one mined frequent itemset of a cuisine.
type PatternInfo struct {
	// Items holds the item names in canonical order.
	Items []string `json:"items"`
	// Kinds holds each item's kind name ("ingredient", "process",
	// "utensil"), aligned with Items.
	Kinds   []string `json:"kinds"`
	Support float64  `json:"support"`
	Count   int      `json:"count"`
}

// CuisinePatterns returns every frequent pattern mined for the region, in
// canonical report order (descending support).
func (a *Analysis) CuisinePatterns(region string) ([]PatternInfo, error) {
	for _, rp := range a.figures.Mined {
		if rp.Region != region {
			continue
		}
		out := make([]PatternInfo, 0, len(rp.Patterns))
		for _, p := range rp.Patterns {
			pi := PatternInfo{Support: p.Support, Count: p.Count}
			for _, it := range p.Items.Items() {
				pi.Items = append(pi.Items, it.Name)
				pi.Kinds = append(pi.Kinds, it.Kind.String())
			}
			out = append(out, pi)
		}
		return out, nil
	}
	return nil, fmt.Errorf("cuisines: unknown region %q", region)
}

// FingerprintEntry is one item of a cuisine's authenticity fingerprint.
type FingerprintEntry struct {
	Item string `json:"item"`
	// Relative is the relative prevalence p_i^c (eq. 2): positive for
	// items over-represented in the cuisine, negative for items it
	// conspicuously avoids.
	Relative float64 `json:"relative"`
	// Prevalence is the raw within-cuisine prevalence P_i^c (eq. 1).
	Prevalence float64 `json:"prevalence"`
}

// Fingerprint holds both ends of a cuisine's culinary fingerprint.
type Fingerprint struct {
	Region string `json:"region"`
	// Most holds the most authentic (over-represented) ingredients.
	Most []FingerprintEntry `json:"most"`
	// Least holds the least authentic (avoided) ingredients.
	Least []FingerprintEntry `json:"least"`
}

// Fingerprint returns the region's k most and least authentic
// ingredients (Sec. V.B).
func (a *Analysis) Fingerprint(region string, k int) (Fingerprint, error) {
	most, err := a.figures.AuthMat.MostAuthentic(region, k)
	if err != nil {
		return Fingerprint{}, err
	}
	least, err := a.figures.AuthMat.LeastAuthentic(region, k)
	if err != nil {
		return Fingerprint{}, err
	}
	fp := Fingerprint{Region: region}
	for _, e := range most {
		fp.Most = append(fp.Most, FingerprintEntry{Item: e.Item.Name, Relative: e.Relative, Prevalence: e.Prevalence})
	}
	for _, e := range least {
		fp.Least = append(fp.Least, FingerprintEntry{Item: e.Item.Name, Relative: e.Relative, Prevalence: e.Prevalence})
	}
	return fp, nil
}

// Substitutes suggests replacement candidates for an ingredient within a
// cuisine by pattern-context similarity: two ingredients are
// substitutable when the sets of items they are frequently combined with
// overlap (the replacement idea of Shidochi et al. discussed in the
// paper's Sec. II). Candidates are ranked by Jaccard similarity of
// co-occurrence neighborhoods.
func (a *Analysis) Substitutes(region, ingredient string, k int) ([]Substitute, error) {
	patterns, err := a.CuisinePatterns(region)
	if err != nil {
		return nil, err
	}
	target := itemset.CanonicalName(ingredient)
	// Build co-occurrence neighborhoods from multi-item patterns.
	neighborhoods := make(map[string]map[string]bool)
	for _, p := range patterns {
		if len(p.Items) < 2 {
			continue
		}
		for i, it := range p.Items {
			if p.Kinds[i] != "ingredient" {
				continue
			}
			nb := neighborhoods[it]
			if nb == nil {
				nb = make(map[string]bool)
				neighborhoods[it] = nb
			}
			for j, other := range p.Items {
				if i != j {
					nb[other] = true
				}
			}
		}
	}
	targetNb, ok := neighborhoods[target]
	if !ok {
		return nil, fmt.Errorf("cuisines: %q has no frequent combinations in %s", ingredient, region)
	}
	var out []Substitute
	for it, nb := range neighborhoods {
		if it == target {
			continue
		}
		inter, union := 0, len(targetNb)
		for o := range nb {
			if targetNb[o] {
				inter++
			} else {
				union++
			}
		}
		if inter == 0 {
			continue
		}
		out = append(out, Substitute{Ingredient: it, Similarity: float64(inter) / float64(union)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Ingredient < out[j].Ingredient
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// Substitute is one replacement candidate.
type Substitute struct {
	Ingredient string `json:"ingredient"`
	// Similarity is the Jaccard overlap of co-occurrence neighborhoods in
	// [0, 1].
	Similarity float64 `json:"similarity"`
}

// ClaimResult is one verified Sec. VII claim.
type ClaimResult struct {
	Name   string `json:"name"`
	Tree   string `json:"tree"`
	Detail string `json:"detail"`
	Holds  bool   `json:"holds"`
}

// Claims returns the Sec. VII claim checks.
func (a *Analysis) Claims() []ClaimResult {
	out := make([]ClaimResult, 0, len(a.validation.Claims))
	for _, c := range a.validation.Claims {
		out = append(out, ClaimResult{Name: c.Name, Tree: c.Tree, Detail: c.Detail, Holds: c.Holds})
	}
	return out
}

// GeographyFit is one tree's quantified similarity to the geographic
// tree.
type GeographyFit struct {
	Tree           string  `json:"tree"`
	Cophenetic     float64 `json:"cophenetic"`
	BakersGamma    float64 `json:"bakers_gamma"`
	RobinsonFoulds float64 `json:"robinson_foulds"`
}

// GeographyFits returns every cuisine tree's similarity to geography.
func (a *Analysis) GeographyFits() []GeographyFit {
	out := make([]GeographyFit, 0, len(a.validation.TreeFit))
	for _, f := range a.validation.TreeFit {
		out = append(out, GeographyFit{
			Tree:           f.Name,
			Cophenetic:     f.Report.Cophenetic,
			BakersGamma:    f.Report.BakersGamma,
			RobinsonFoulds: f.Report.RobinsonFoulds,
		})
	}
	return out
}

// RenderValidation renders the full Sec. VII report.
func (a *Analysis) RenderValidation() string {
	var b strings.Builder
	_ = a.validation.Render(&b)
	return b.String()
}

// AllClaimsHold reports whether every Sec. VII claim was reproduced.
func (a *Analysis) AllClaimsHold() bool { return a.validation.AllClaimsHold() }
