package artifact

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// intCodec is a trivial test codec over int values.
type intCodec struct {
	kind    string
	version int
}

func (c intCodec) Kind() string { return c.kind }
func (c intCodec) Version() int { return c.version }
func (c intCodec) Encode(w io.Writer, v any) error {
	return gob.NewEncoder(w).Encode(v.(int))
}
func (c intCodec) Decode(r io.Reader) (any, error) {
	var v int
	err := gob.NewDecoder(r).Decode(&v)
	return v, err
}

func TestKeyStability(t *testing.T) {
	a := Key("corpus", "seed=1", "scale=1")
	if a != Key("corpus", "seed=1", "scale=1") {
		t.Fatal("identical inputs produced different keys")
	}
	if a == Key("corpus", "seed=1", "scale=2") {
		t.Fatal("different params produced the same key")
	}
	// The separator must make ("ab", "c") and ("a", "bc") distinct.
	if Key("k", "ab", "c") == Key("k", "a", "bc") {
		t.Fatal("key joining is ambiguous")
	}
}

func TestMemoryTierHit(t *testing.T) {
	s := NewStore(Options{})
	c := intCodec{kind: "stage", version: 1}
	runs := 0
	compute := func() (any, error) { runs++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := s.GetOrCompute(context.Background(), "k1", c, compute)
		if err != nil || v.(int) != 42 {
			t.Fatalf("get %d: %v, %v", i, v, err)
		}
	}
	if runs != 1 {
		t.Fatalf("computed %d times, want 1", runs)
	}
	st := s.Stats()["stage"]
	if st.Computed != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want computed 1 hits 2", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	s := NewStore(Options{})
	c := intCodec{kind: "stage", version: 1}
	runs := 0
	_, err := s.GetOrCompute(context.Background(), "k", c, func() (any, error) { runs++; return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("expected error")
	}
	v, err := s.GetOrCompute(context.Background(), "k", c, func() (any, error) { runs++; return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry after failure: %v, %v", v, err)
	}
	if runs != 2 {
		t.Fatalf("computed %d times, want 2 (failed runs must not be cached)", runs)
	}
}

func TestSingleFlight(t *testing.T) {
	s := NewStore(Options{})
	c := intCodec{kind: "stage", version: 1}
	var runs atomic.Int32
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.GetOrCompute(context.Background(), "shared", c, func() (any, error) {
				runs.Add(1)
				<-gate
				return 99, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = v.(int)
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("computed %d times under concurrency, want 1", got)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("caller %d got %d, want 99", i, v)
		}
	}
	st := s.Stats()["stage"]
	if st.Computed != 1 {
		t.Fatalf("stats computed = %d, want 1", st.Computed)
	}
	if st.Hits+st.InFlightJoins != callers-1 {
		t.Fatalf("hits %d + joins %d, want %d shared callers", st.Hits, st.InFlightJoins, callers-1)
	}
}

func TestLRUEviction(t *testing.T) {
	s := NewStore(Options{MaxEntries: 2})
	c := intCodec{kind: "stage", version: 1}
	runs := 0
	get := func(k string) {
		t.Helper()
		if _, err := s.GetOrCompute(context.Background(), k, c, func() (any, error) { runs++; return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a; b is now LRU
	get("c") // evicts b
	get("a") // still cached
	get("b") // recomputed
	if runs != 4 {
		t.Fatalf("computed %d times, want 4 (a, b, c, b-again)", runs)
	}
	if st := s.Stats()["stage"]; st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", st)
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := intCodec{kind: "stage", version: 1}

	s1 := NewStore(Options{Dir: dir})
	if _, err := s1.GetOrCompute(context.Background(), "k", c, func() (any, error) { return 1234, nil }); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same dir must answer from disk.
	s2 := NewStore(Options{Dir: dir})
	v, err := s2.GetOrCompute(context.Background(), "k", c, func() (any, error) {
		return nil, fmt.Errorf("should not recompute")
	})
	if err != nil || v.(int) != 1234 {
		t.Fatalf("disk load: %v, %v", v, err)
	}
	st := s2.Stats()["stage"]
	if st.DiskHits != 1 || st.Computed != 0 {
		t.Fatalf("stats = %+v, want one disk hit and zero computations", st)
	}
}

func TestDiskCorruptionIsIgnored(t *testing.T) {
	dir := t.TempDir()
	c := intCodec{kind: "stage", version: 1}
	s1 := NewStore(Options{Dir: dir})
	if _, err := s1.GetOrCompute(context.Background(), "k", c, func() (any, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil || len(files) != 1 {
		t.Fatalf("artifact files: %v, %v", files, err)
	}

	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"flipped":   func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"bad-magic": func(b []byte) []byte { b[0] = 'X'; return b },
		"empty":     func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			orig, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], corrupt(append([]byte(nil), orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(files[0], orig, 0o644)

			s2 := NewStore(Options{Dir: dir})
			v, err := s2.GetOrCompute(context.Background(), "k", c, func() (any, error) { return 5, nil })
			if err != nil || v.(int) != 5 {
				t.Fatalf("corrupted artifact was fatal: %v, %v", v, err)
			}
			if st := s2.Stats()["stage"]; st.Computed != 1 || st.DiskHits != 0 {
				t.Fatalf("stats = %+v, want fallback to recompute", st)
			}
		})
	}
}

func TestDiskVersionMismatchIsIgnored(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(Options{Dir: dir})
	if _, err := s1.GetOrCompute(context.Background(), "k", intCodec{kind: "stage", version: 1}, func() (any, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}

	// Same kind and key, bumped codec version: old file must be ignored.
	s2 := NewStore(Options{Dir: dir})
	runs := 0
	v, err := s2.GetOrCompute(context.Background(), "k", intCodec{kind: "stage", version: 2}, func() (any, error) { runs++; return 6, nil })
	if err != nil || v.(int) != 6 || runs != 1 {
		t.Fatalf("version mismatch not recomputed: v=%v err=%v runs=%d", v, err, runs)
	}
}

func TestDiskTierDisabled(t *testing.T) {
	s := NewStore(Options{})
	if s.DiskEnabled() {
		t.Fatal("store without dir reports disk enabled")
	}
	if _, err := s.GetOrCompute(context.Background(), "k", intCodec{kind: "s", version: 1}, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDiskGCBoundsTotalSize(t *testing.T) {
	dir := t.TempDir()
	// Each int artifact file is ~80 bytes; cap at ~3 files' worth.
	s := NewStore(Options{Dir: dir, MaxDiskBytes: 250})
	c := intCodec{kind: "stage", version: 1}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%02d", i)
		if _, err := s.GetOrCompute(context.Background(), key, c, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct mtimes so LRU order is unambiguous
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 250 {
		t.Fatalf("disk tier holds %d bytes across %d files, want <= 250", total, len(files))
	}
	if len(files) == 0 {
		t.Fatal("GC deleted everything, including the newest artifact")
	}
	// The newest artifacts survive; a fresh store can still load one.
	s2 := NewStore(Options{Dir: dir, MaxDiskBytes: 250})
	if _, err := s2.GetOrCompute(context.Background(), "k09", c, func() (any, error) {
		return nil, fmt.Errorf("newest artifact was evicted")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUnwritableDirIsNotFatal(t *testing.T) {
	// A bogus cache dir degrades to memory-only behaviour.
	s := NewStore(Options{Dir: filepath.Join(string([]byte{0}), "nope")})
	v, err := s.GetOrCompute(context.Background(), "k", intCodec{kind: "s", version: 1}, func() (any, error) { return 3, nil })
	if err != nil || v.(int) != 3 {
		t.Fatalf("unwritable dir was fatal: %v, %v", v, err)
	}
}
