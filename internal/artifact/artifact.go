// Package artifact implements the content-addressed artifact store
// behind the staged pipeline (internal/pipeline, DESIGN.md §8). Every
// pipeline stage output — corpus, mined patterns, feature matrices,
// condensed distances, trees, validation — is an artifact addressed by
// a stable key derived from the stage's parameters and its inputs'
// keys. The store memoizes artifacts in two tiers:
//
//   - a bounded in-memory LRU tier holding the live Go values, and
//   - an optional disk tier holding versioned, checksummed encodings,
//     which lets a restarted daemon come back warm.
//
// Lookups are deduplicated single-flight per key: any number of
// concurrent GetOrCompute calls for the same key share exactly one
// computation, so two analyses that share an upstream stage never mine
// the same corpus twice even when they arrive together.
//
// Disk artifacts are best-effort by design: a missing, truncated,
// corrupted or version-mismatched file is treated as a cache miss and
// recomputed, never a fatal error. Writes go through a temp file +
// rename so a crash mid-write cannot leave a half-written artifact
// under the final name.
package artifact

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Codec encodes and decodes one kind of artifact for the disk tier.
// Kind names the stage ("corpus", "mine", ...) and Version is bumped on
// any change to the encoded format; both are part of the on-disk header
// and the file name, so a format change simply orphans old files.
type Codec interface {
	Kind() string
	Version() int
	Encode(w io.Writer, v any) error
	Decode(r io.Reader) (any, error)
}

// AppendEncoder is an optional fast path for Codec: a codec that can
// append its encoding to a byte slice skips the bytes.Buffer staging in
// saveDisk. dst may be nil; the extended slice is returned.
type AppendEncoder interface {
	AppendEncode(dst []byte, v any) ([]byte, error)
}

// BytesDecoder is an optional fast path for Codec: a codec that can
// decode straight from a byte slice is handed the checksummed payload
// subslice of the file read in loadDisk, skipping the io.Reader
// adapter. The codec must not retain or modify data beyond values it
// deliberately aliases into the decoded artifact.
type BytesDecoder interface {
	DecodeBytes(data []byte) (any, error)
}

// Key derives a stable artifact key from a stage kind and its
// parameters — typically literal parameter values plus the keys of the
// stage's inputs, which makes keys content-addressed transitively: a
// seed change reaches every downstream key through the chain.
func Key(kind string, parts ...string) string {
	h := sha256.New()
	io.WriteString(h, kind)
	for _, p := range parts {
		h.Write([]byte{0}) // unambiguous joins
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Stats counts one kind's cache traffic. Hits are memory-tier hits,
// DiskHits are disk-tier loads, Computed counts actual stage
// executions, Evictions counts memory-tier LRU evictions, and
// InFlightJoins counts callers that latched onto an in-flight
// computation instead of starting their own.
type Stats struct {
	Hits          uint64 `json:"hits"`
	DiskHits      uint64 `json:"disk_hits"`
	Computed      uint64 `json:"computed"`
	Evictions     uint64 `json:"evictions"`
	InFlightJoins uint64 `json:"inflight_joins"`
}

// Options configures a Store.
type Options struct {
	// Dir is the disk-tier directory; empty disables the disk tier.
	// The directory is created on first use.
	Dir string
	// MaxEntries bounds the memory tier (LRU); <= 0 means
	// DefaultMaxEntries.
	MaxEntries int
	// MaxDiskBytes bounds the disk tier: after every write the store
	// deletes least-recently-used artifact files (by modification time)
	// until the total is under the cap. Analysis parameters are
	// client-controlled on the daemon's query string, so an unbounded
	// disk tier would let `?seed=N` loops fill the volume. <= 0 means
	// DefaultMaxDiskBytes.
	MaxDiskBytes int64
}

// DefaultMaxEntries bounds the memory tier when the caller does not: a
// full analysis produces ~13 artifacts, so the default comfortably
// holds several analyses worth of stages.
const DefaultMaxEntries = 128

// DefaultMaxDiskBytes bounds the disk tier when the caller does not:
// 4 GiB holds hundreds of full-scale analysis chains.
const DefaultMaxDiskBytes = 4 << 30

// Store is the two-tier artifact store.
type Store struct {
	dir     string
	max     int
	maxDisk int64

	diskMu    sync.Mutex // guards diskTotal and GC scans
	diskTotal int64      // running estimate of disk-tier bytes; -1 = unknown

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // of *entry; front = most recently used
	stats   map[string]*Stats
}

// entry is one cached (or in-flight) artifact. ready is closed once v
// and err are final; done distinguishes a finished entry from an
// in-flight one under the store lock.
type entry struct {
	key   string
	kind  string
	elem  *list.Element
	ready chan struct{}
	done  bool
	v     any
	err   error
}

// NewStore builds a Store. The disk directory (if any) is created
// lazily by the first write, so a read-only inspection of a store with
// a bogus dir never fails.
func NewStore(opts Options) *Store {
	max := opts.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	maxDisk := opts.MaxDiskBytes
	if maxDisk <= 0 {
		maxDisk = DefaultMaxDiskBytes
	}
	return &Store{
		dir:       opts.Dir,
		max:       max,
		maxDisk:   maxDisk,
		diskTotal: -1, // measured on first write
		entries:   make(map[string]*entry),
		lru:       list.New(),
		stats:     make(map[string]*Stats),
	}
}

// DiskEnabled reports whether the store has a disk tier.
func (s *Store) DiskEnabled() bool { return s.dir != "" }

// statsFor returns the mutable counter block for a kind. Caller holds mu.
func (s *Store) statsFor(kind string) *Stats {
	st := s.stats[kind]
	if st == nil {
		st = &Stats{}
		s.stats[kind] = st
	}
	return st
}

// GetOrCompute returns the artifact under key, resolving it through the
// memory tier, then the disk tier, then compute — whichever answers
// first. Concurrent calls for the same key share one resolution.
// Failed computations are reported to every waiter of that flight but
// never cached, so a later call retries.
func (s *Store) GetOrCompute(key string, codec Codec, compute func() (any, error)) (any, error) {
	kind := codec.Kind()
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		st := s.statsFor(kind)
		if e.done {
			st.Hits++
		} else {
			st.InFlightJoins++
		}
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.ready
		return e.v, e.err
	}
	e := &entry{key: key, kind: kind, ready: make(chan struct{})}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	for s.lru.Len() > s.max {
		// Evicting an in-flight entry is safe: its waiters hold the
		// entry itself and still receive the shared result.
		back := s.lru.Back()
		ev := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, ev.key)
		s.statsFor(ev.kind).Evictions++
	}
	s.mu.Unlock()

	if v, ok := s.loadDisk(key, codec); ok {
		s.finish(e, kind, v, nil, false)
		return v, nil
	}
	v, err := compute()
	s.finish(e, kind, v, err, true)
	if err == nil {
		s.saveDisk(key, codec, v)
	}
	return v, err
}

// finish publishes a flight's result and updates counters.
func (s *Store) finish(e *entry, kind string, v any, err error, computed bool) {
	e.v, e.err = v, err
	s.mu.Lock()
	e.done = true
	st := s.statsFor(kind)
	if computed {
		st.Computed++
	} else {
		st.DiskHits++
	}
	if err != nil && s.entries[e.key] == e { // failed: forget, allow retry
		s.lru.Remove(e.elem)
		delete(s.entries, e.key)
	}
	s.mu.Unlock()
	close(e.ready)
}

// Stats returns a copy of the per-kind counters.
func (s *Store) Stats() map[string]Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Stats, len(s.stats))
	for k, v := range s.stats {
		out[k] = *v
	}
	return out
}

// Len reports how many artifacts are held in (or in flight into) the
// memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Summary renders the per-kind counters as one stable, human-readable
// line per kind — the daemon's shutdown log format.
func (s *Store) Summary() []string {
	stats := s.Stats()
	kinds := make([]string, 0, len(stats))
	for k := range stats {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]string, len(kinds))
	for i, k := range kinds {
		st := stats[k]
		out[i] = fmt.Sprintf("%s: hits=%d disk_hits=%d computed=%d evictions=%d inflight_joins=%d",
			k, st.Hits, st.DiskHits, st.Computed, st.Evictions, st.InFlightJoins)
	}
	return out
}

// Disk format: magic, format version, codec kind + version, payload
// length, payload sha256, payload. Anything that fails a check is
// silently a miss.
var diskMagic = [4]byte{'C', 'A', 'R', 'T'}

const diskFormatVersion = 1

// path returns the disk file for a key. Kind and codec version are in
// the name so `ls` of a cache dir reads as an inventory and version
// bumps orphan old files instead of tripping over them.
func (s *Store) path(key string, codec Codec) string {
	name := fmt.Sprintf("%s-v%d-%s.art", sanitizeKind(codec.Kind()), codec.Version(), key)
	return filepath.Join(s.dir, name)
}

func sanitizeKind(kind string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, kind)
}

// loadDisk attempts a disk-tier read. Every failure mode — absent
// file, bad magic, version mismatch, checksum mismatch, decode error —
// is (nil, false).
func (s *Store) loadDisk(key string, codec Codec) (any, bool) {
	if s.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key, codec))
	if err != nil {
		return nil, false
	}
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != diskMagic {
		return nil, false
	}
	var header struct {
		Format, CodecVersion uint32
		KindLen, PayloadLen  uint32
	}
	if err := binary.Read(r, binary.LittleEndian, &header); err != nil {
		return nil, false
	}
	if header.Format != diskFormatVersion || int(header.CodecVersion) != codec.Version() {
		return nil, false
	}
	if header.KindLen > 256 || int64(header.PayloadLen) > int64(r.Len()) {
		return nil, false
	}
	kind := make([]byte, header.KindLen)
	if _, err := io.ReadFull(r, kind); err != nil || string(kind) != codec.Kind() {
		return nil, false
	}
	var sum [sha256.Size]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, false
	}
	// The payload is the tail of the buffer ReadFile already holds;
	// subslice it instead of copying — artifacts run to tens of MB.
	if int64(r.Len()) < int64(header.PayloadLen) {
		return nil, false
	}
	payload := data[len(data)-r.Len():][:header.PayloadLen]
	if sha256.Sum256(payload) != sum {
		return nil, false
	}
	var v any
	if bd, ok := codec.(BytesDecoder); ok {
		v, err = bd.DecodeBytes(payload)
	} else {
		v, err = codec.Decode(bytes.NewReader(payload))
	}
	if err != nil {
		return nil, false
	}
	// Re-stamp the mtime so gcDisk's mtime ordering is LRU, not
	// write-order: artifacts still being served survive the cap.
	now := time.Now()
	_ = os.Chtimes(s.path(key, codec), now, now)
	return v, true
}

// saveDisk writes an artifact to the disk tier, best effort: encoding
// or I/O failures leave the cache cold but never fail the pipeline.
// The header and checksum are written separately from the payload so a
// large artifact is held in memory once, not twice.
func (s *Store) saveDisk(key string, codec Codec, v any) {
	if s.dir == "" {
		return
	}
	var payload []byte
	if ae, ok := codec.(AppendEncoder); ok {
		p, err := ae.AppendEncode(nil, v)
		if err != nil {
			return
		}
		payload = p
	} else {
		var buf bytes.Buffer
		if err := codec.Encode(&buf, v); err != nil {
			return
		}
		payload = buf.Bytes()
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	f, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return
	}
	defer os.Remove(f.Name())
	sum := sha256.Sum256(payload)
	var header bytes.Buffer
	header.Write(diskMagic[:])
	binary.Write(&header, binary.LittleEndian, struct {
		Format, CodecVersion uint32
		KindLen, PayloadLen  uint32
	}{diskFormatVersion, uint32(codec.Version()), uint32(len(codec.Kind())), uint32(len(payload))})
	header.WriteString(codec.Kind())
	header.Write(sum[:])
	if _, err := f.Write(header.Bytes()); err != nil {
		f.Close()
		return
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return
	}
	if err := f.Close(); err != nil {
		return
	}
	if os.Rename(f.Name(), s.path(key, codec)) == nil {
		s.noteDiskWrite(int64(header.Len()) + int64(len(payload)))
	}
}

// noteDiskWrite maintains the running disk-tier byte estimate and
// triggers GC only when it crosses the cap, keeping the common write
// O(1) instead of a directory scan. The estimate may drift (a rename
// over an existing key double-counts); every GC scan re-measures
// exactly, so drift never accumulates past one GC cycle.
func (s *Store) noteDiskWrite(n int64) {
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	if s.diskTotal >= 0 {
		s.diskTotal += n
	}
	if s.diskTotal >= 0 && s.diskTotal <= s.maxDisk {
		return
	}
	s.gcDiskLocked()
}

// gcDiskLocked bounds the disk tier: while the artifact files exceed
// MaxDiskBytes, the least recently touched (loadDisk re-stamps mtimes
// on hits, making mtime order LRU order) are deleted. Best effort.
// Caller holds diskMu.
func (s *Store) gcDiskLocked() {
	dents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type file struct {
		name  string
		size  int64
		mtime int64
	}
	var files []file
	var total int64
	for _, d := range dents {
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".art") {
			continue
		}
		info, err := d.Info()
		if err != nil {
			continue
		}
		files = append(files, file{name: d.Name(), size: info.Size(), mtime: info.ModTime().UnixNano()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= s.maxDisk {
			break
		}
		if os.Remove(filepath.Join(s.dir, f.name)) == nil {
			total -= f.size
		}
	}
	s.diskTotal = total
}
