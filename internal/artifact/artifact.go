// Package artifact implements the content-addressed artifact store
// behind the staged pipeline (internal/pipeline, DESIGN.md §8). Every
// pipeline stage output — corpus, mined patterns, feature matrices,
// condensed distances, trees, validation — is an artifact addressed by
// a stable key derived from the stage's parameters and its inputs'
// keys. The store memoizes artifacts in two tiers:
//
//   - a bounded in-memory LRU tier holding the live Go values, and
//   - an optional disk tier holding versioned, checksummed encodings,
//     which lets a restarted daemon come back warm.
//
// Lookups are deduplicated single-flight per key: any number of
// concurrent GetOrCompute calls for the same key share exactly one
// computation, so two analyses that share an upstream stage never mine
// the same corpus twice even when they arrive together.
//
// A store may also have a Fetcher: a hook consulted between the disk
// tier and compute, which is how a clustered daemon asks its peers for
// an artifact before recomputing it (internal/cluster, DESIGN.md §13).
// Fetched frames pass the same verification as disk reads — magic,
// format and codec versions, kind, checksum — so a misbehaving peer can
// never poison the cache.
//
// Disk artifacts are best-effort by design: a missing, truncated,
// corrupted or version-mismatched file is treated as a cache miss and
// recomputed, never a fatal error. Writes go through a temp file +
// rename so a crash mid-write cannot leave a half-written artifact
// under the final name.
package artifact

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Codec encodes and decodes one kind of artifact for the disk tier.
// Kind names the stage ("corpus", "mine", ...) and Version is bumped on
// any change to the encoded format; both are part of the on-disk header
// and the file name, so a format change simply orphans old files.
type Codec interface {
	Kind() string
	Version() int
	Encode(w io.Writer, v any) error
	Decode(r io.Reader) (any, error)
}

// AppendEncoder is an optional fast path for Codec: a codec that can
// append its encoding to a byte slice skips the bytes.Buffer staging in
// saveDisk. dst may be nil; the extended slice is returned.
type AppendEncoder interface {
	AppendEncode(dst []byte, v any) ([]byte, error)
}

// BytesDecoder is an optional fast path for Codec: a codec that can
// decode straight from a byte slice is handed the checksummed payload
// subslice of the file read in loadDisk, skipping the io.Reader
// adapter. The codec must not retain or modify data beyond values it
// deliberately aliases into the decoded artifact.
type BytesDecoder interface {
	DecodeBytes(data []byte) (any, error)
}

// Key derives a stable artifact key from a stage kind and its
// parameters — typically literal parameter values plus the keys of the
// stage's inputs, which makes keys content-addressed transitively: a
// seed change reaches every downstream key through the chain.
func Key(kind string, parts ...string) string {
	h := sha256.New()
	io.WriteString(h, kind)
	for _, p := range parts {
		h.Write([]byte{0}) // unambiguous joins
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Stats counts one kind's cache traffic. Hits are memory-tier hits,
// DiskHits are disk-tier loads, PeerHits are artifacts obtained from a
// cluster peer via the Fetcher hook, Computed counts actual stage
// executions, Evictions counts memory-tier LRU evictions, and
// InFlightJoins counts callers that latched onto an in-flight
// computation instead of starting their own.
type Stats struct {
	Hits          uint64 `json:"hits"`
	DiskHits      uint64 `json:"disk_hits"`
	PeerHits      uint64 `json:"peer_hits"`
	Computed      uint64 `json:"computed"`
	Evictions     uint64 `json:"evictions"`
	InFlightJoins uint64 `json:"inflight_joins"`
}

// Fetcher is the peer-exchange hook: on a local miss (memory and disk)
// the store asks it for the key's framed encoding before computing.
// The returned bytes must be a full frame (EncodeFrame layout); the
// store verifies and decodes them itself, so a fetcher cannot inject
// an unverified value. A (nil, false) return means no peer had it.
// The context is the requesting caller's — fetchers must give up when
// it expires so peer fetches honor request deadlines.
type Fetcher func(ctx context.Context, key string, codec Codec) ([]byte, bool)

// Options configures a Store.
type Options struct {
	// Dir is the disk-tier directory; empty disables the disk tier.
	// The directory is created on first use.
	Dir string
	// MaxEntries bounds the memory tier (LRU); <= 0 means
	// DefaultMaxEntries.
	MaxEntries int
	// MaxDiskBytes bounds the disk tier: after every write the store
	// deletes least-recently-used artifact files (by modification time)
	// until the total is under the cap. Analysis parameters are
	// client-controlled on the daemon's query string, so an unbounded
	// disk tier would let `?seed=N` loops fill the volume. <= 0 means
	// DefaultMaxDiskBytes.
	MaxDiskBytes int64
}

// DefaultMaxEntries bounds the memory tier when the caller does not: a
// full analysis produces ~13 artifacts, so the default comfortably
// holds several analyses worth of stages.
const DefaultMaxEntries = 128

// DefaultMaxDiskBytes bounds the disk tier when the caller does not:
// 4 GiB holds hundreds of full-scale analysis chains.
const DefaultMaxDiskBytes = 4 << 30

// Store is the two-tier artifact store.
type Store struct {
	dir     string
	max     int
	maxDisk int64

	fetchMu sync.RWMutex
	fetch   Fetcher // nil = no peer tier

	diskMu    sync.Mutex // guards diskTotal and GC scans
	diskTotal int64      // running estimate of disk-tier bytes; -1 = unknown

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // of *entry; front = most recently used
	stats   map[string]*Stats
}

// entry is one cached (or in-flight) artifact. ready is closed once v
// and err are final; done distinguishes a finished entry from an
// in-flight one under the store lock.
type entry struct {
	key   string
	kind  string
	elem  *list.Element
	ready chan struct{}
	done  bool
	v     any
	err   error
}

// NewStore builds a Store. The disk directory (if any) is created
// lazily by the first write, so a read-only inspection of a store with
// a bogus dir never fails.
func NewStore(opts Options) *Store {
	max := opts.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	maxDisk := opts.MaxDiskBytes
	if maxDisk <= 0 {
		maxDisk = DefaultMaxDiskBytes
	}
	return &Store{
		dir:       opts.Dir,
		max:       max,
		maxDisk:   maxDisk,
		diskTotal: -1, // measured on first write
		entries:   make(map[string]*entry),
		lru:       list.New(),
		stats:     make(map[string]*Stats),
	}
}

// DiskEnabled reports whether the store has a disk tier.
func (s *Store) DiskEnabled() bool { return s.dir != "" }

// SetFetcher installs (or clears) the peer-exchange hook. Safe to call
// while the store is serving; the hook applies to subsequent misses.
func (s *Store) SetFetcher(f Fetcher) {
	s.fetchMu.Lock()
	s.fetch = f
	s.fetchMu.Unlock()
}

func (s *Store) fetcher() Fetcher {
	s.fetchMu.RLock()
	defer s.fetchMu.RUnlock()
	return s.fetch
}

// statsFor returns the mutable counter block for a kind. Caller holds mu.
func (s *Store) statsFor(kind string) *Stats {
	st := s.stats[kind]
	if st == nil {
		st = &Stats{}
		s.stats[kind] = st
	}
	return st
}

// GetOrCompute returns the artifact under key, resolving it through the
// memory tier, then the disk tier, then the peer fetcher (when one is
// installed), then compute — whichever answers first. Concurrent calls
// for the same key share one resolution; a joiner whose ctx expires
// leaves with ctx's error while the shared flight runs on. Failed
// computations are reported to every waiter of that flight but never
// cached, so a later call retries. The flight holder's ctx gates the
// peer fetch and is re-checked before compute, so an expired request
// never starts a stage execution on a cold key.
func (s *Store) GetOrCompute(ctx context.Context, key string, codec Codec, compute func() (any, error)) (any, error) {
	kind := codec.Kind()
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		st := s.statsFor(kind)
		if e.done {
			st.Hits++
		} else {
			st.InFlightJoins++
		}
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		select {
		case <-e.ready:
			return e.v, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &entry{key: key, kind: kind, ready: make(chan struct{})}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	for s.lru.Len() > s.max {
		// Evicting an in-flight entry is safe: its waiters hold the
		// entry itself and still receive the shared result.
		back := s.lru.Back()
		ev := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, ev.key)
		s.statsFor(ev.kind).Evictions++
	}
	s.mu.Unlock()

	if v, ok := s.loadDisk(key, codec); ok {
		s.finish(e, kind, v, nil, srcDisk)
		return v, nil
	}
	if f := s.fetcher(); f != nil && ctx.Err() == nil {
		if frame, ok := f(ctx, key, codec); ok {
			// Decode re-verifies the frame end to end (magic, versions,
			// kind, checksum): the fetcher's word is never trusted.
			if v, err := DecodeFrame(frame, codec); err == nil {
				s.finish(e, kind, v, nil, srcPeer)
				s.saveFrame(key, codec, frame)
				return v, nil
			}
		}
	}
	if err := ctx.Err(); err != nil {
		// The deadline expired during the peer fetch: fail this flight
		// (failed flights are forgotten, so the next request retries)
		// rather than starting a stage execution nobody will wait for.
		s.finish(e, kind, nil, err, srcAbort)
		return nil, err
	}
	v, err := compute()
	s.finish(e, kind, v, err, srcCompute)
	if err == nil {
		s.saveDisk(key, codec, v)
	}
	return v, err
}

// source labels where a flight's result came from, for the counters.
type source int

const (
	srcCompute source = iota
	srcDisk
	srcPeer
	srcAbort // flight failed before compute started; counts nothing
)

// finish publishes a flight's result and updates counters.
func (s *Store) finish(e *entry, kind string, v any, err error, src source) {
	e.v, e.err = v, err
	s.mu.Lock()
	e.done = true
	st := s.statsFor(kind)
	switch src {
	case srcDisk:
		st.DiskHits++
	case srcPeer:
		st.PeerHits++
	case srcCompute:
		st.Computed++
	}
	if err != nil && s.entries[e.key] == e { // failed: forget, allow retry
		s.lru.Remove(e.elem)
		delete(s.entries, e.key)
	}
	s.mu.Unlock()
	close(e.ready)
}

// Stats returns a copy of the per-kind counters.
func (s *Store) Stats() map[string]Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Stats, len(s.stats))
	for k, v := range s.stats {
		out[k] = *v
	}
	return out
}

// Len reports how many artifacts are held in (or in flight into) the
// memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Summary renders the per-kind counters as one stable, human-readable
// line per kind — the daemon's shutdown log format.
func (s *Store) Summary() []string {
	stats := s.Stats()
	kinds := make([]string, 0, len(stats))
	for k := range stats {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]string, len(kinds))
	for i, k := range kinds {
		st := stats[k]
		out[i] = fmt.Sprintf("%s: hits=%d disk_hits=%d peer_hits=%d computed=%d evictions=%d inflight_joins=%d",
			k, st.Hits, st.DiskHits, st.PeerHits, st.Computed, st.Evictions, st.InFlightJoins)
	}
	return out
}

// Frame format — shared by the disk tier and the peer wire protocol:
// magic, format version, codec version, kind length, payload length,
// kind, payload sha256, payload. All integers little-endian uint32.
// On disk anything that fails a check is silently a miss; over the
// wire it rejects the peer's response.
var diskMagic = [4]byte{'C', 'A', 'R', 'T'}

const (
	diskFormatVersion = 1
	frameHeaderSize   = 4 + 4*4 // magic + {format, codec version, kind len, payload len}
)

// EncodeFrame encodes v with codec and wraps the encoding in the
// store's verified frame: the exact bytes saveDisk writes and peers
// exchange. The payload exists twice transiently (encoding + frame);
// acceptable even for the tens-of-MB matrix artifacts.
func EncodeFrame(codec Codec, v any) ([]byte, error) {
	var payload []byte
	if ae, ok := codec.(AppendEncoder); ok {
		p, err := ae.AppendEncode(nil, v)
		if err != nil {
			return nil, err
		}
		payload = p
	} else {
		var buf bytes.Buffer
		if err := codec.Encode(&buf, v); err != nil {
			return nil, err
		}
		payload = buf.Bytes()
	}
	kind := codec.Kind()
	sum := sha256.Sum256(payload)
	frame := make([]byte, 0, frameHeaderSize+len(kind)+sha256.Size+len(payload))
	frame = append(frame, diskMagic[:]...)
	frame = binary.LittleEndian.AppendUint32(frame, diskFormatVersion)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(codec.Version()))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(kind)))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, kind...)
	frame = append(frame, sum[:]...)
	frame = append(frame, payload...)
	return frame, nil
}

// framePayload verifies every frame invariant — magic, format version,
// codec version, kind, length, checksum — and returns the payload as a
// subslice of data (no copy; artifacts run to tens of MB).
func framePayload(data []byte, codec Codec) ([]byte, error) {
	if len(data) < frameHeaderSize {
		return nil, fmt.Errorf("artifact frame: truncated header (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != diskMagic {
		return nil, fmt.Errorf("artifact frame: bad magic")
	}
	var (
		format     = binary.LittleEndian.Uint32(data[4:])
		codecVer   = binary.LittleEndian.Uint32(data[8:])
		kindLen    = binary.LittleEndian.Uint32(data[12:])
		payloadLen = binary.LittleEndian.Uint32(data[16:])
	)
	if format != diskFormatVersion {
		return nil, fmt.Errorf("artifact frame: format v%d, want v%d", format, diskFormatVersion)
	}
	if int(codecVer) != codec.Version() {
		return nil, fmt.Errorf("artifact frame: %s codec v%d, want v%d", codec.Kind(), codecVer, codec.Version())
	}
	if kindLen > 256 {
		return nil, fmt.Errorf("artifact frame: kind length %d", kindLen)
	}
	rest := data[frameHeaderSize:]
	if uint64(len(rest)) < uint64(kindLen)+sha256.Size+uint64(payloadLen) {
		return nil, fmt.Errorf("artifact frame: truncated body")
	}
	if string(rest[:kindLen]) != codec.Kind() {
		return nil, fmt.Errorf("artifact frame: kind %q, want %q", rest[:kindLen], codec.Kind())
	}
	rest = rest[kindLen:]
	var sum [sha256.Size]byte
	copy(sum[:], rest)
	payload := rest[sha256.Size:][:payloadLen]
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("artifact frame: checksum mismatch")
	}
	return payload, nil
}

// VerifyFrame checks a frame's integrity without decoding the payload —
// the cheap pre-flight for serving a disk file to a peer as-is.
func VerifyFrame(data []byte, codec Codec) error {
	_, err := framePayload(data, codec)
	return err
}

// DecodeFrame verifies a frame end to end and decodes its payload with
// codec. The decoded value may alias data (BytesDecoder codecs subslice
// it), so callers must not reuse data's backing array afterwards.
func DecodeFrame(data []byte, codec Codec) (any, error) {
	payload, err := framePayload(data, codec)
	if err != nil {
		return nil, err
	}
	if bd, ok := codec.(BytesDecoder); ok {
		return bd.DecodeBytes(payload)
	}
	return codec.Decode(bytes.NewReader(payload))
}

// path returns the disk file for a key. Kind and codec version are in
// the name so `ls` of a cache dir reads as an inventory and version
// bumps orphan old files instead of tripping over them.
func (s *Store) path(key string, codec Codec) string {
	name := fmt.Sprintf("%s-v%d-%s.art", sanitizeKind(codec.Kind()), codec.Version(), key)
	return filepath.Join(s.dir, name)
}

func sanitizeKind(kind string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, kind)
}

// loadDisk attempts a disk-tier read. Every failure mode — absent
// file, bad magic, version mismatch, checksum mismatch, decode error —
// is (nil, false).
func (s *Store) loadDisk(key string, codec Codec) (any, bool) {
	if s.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key, codec))
	if err != nil {
		return nil, false
	}
	v, err := DecodeFrame(data, codec)
	if err != nil {
		return nil, false
	}
	// Re-stamp the mtime so gcDisk's mtime ordering is LRU, not
	// write-order: artifacts still being served survive the cap.
	now := time.Now()
	_ = os.Chtimes(s.path(key, codec), now, now)
	return v, true
}

// saveDisk writes an artifact to the disk tier, best effort: encoding
// or I/O failures leave the cache cold but never fail the pipeline.
func (s *Store) saveDisk(key string, codec Codec, v any) {
	if s.dir == "" {
		return
	}
	frame, err := EncodeFrame(codec, v)
	if err != nil {
		return
	}
	s.writeFrame(key, codec, frame)
}

// saveFrame persists an already-verified peer frame as-is, so a node
// that warmed from the cluster stays warm across its own restarts.
func (s *Store) saveFrame(key string, codec Codec, frame []byte) {
	if s.dir == "" {
		return
	}
	s.writeFrame(key, codec, frame)
}

// writeFrame is the shared disk-tier write path: temp file + rename so
// a crash mid-write cannot leave a torn artifact under the final name.
func (s *Store) writeFrame(key string, codec Codec, frame []byte) {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	f, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return
	}
	defer os.Remove(f.Name())
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return
	}
	if err := f.Close(); err != nil {
		return
	}
	if os.Rename(f.Name(), s.path(key, codec)) == nil {
		s.noteDiskWrite(int64(len(frame)))
	}
}

// Encoded returns the framed encoding of the artifact under key — the
// peer-serving read path. A finished memory-tier value is re-encoded
// (and counts as a hit for LRU purposes); otherwise the disk tier's
// file, which already is a frame, is returned after verification so a
// locally-corrupted file is never propagated to a peer.
func (s *Store) Encoded(key string, codec Codec) ([]byte, bool) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok && e.done && e.err == nil && e.kind == codec.Kind() {
		v := e.v
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		frame, err := EncodeFrame(codec, v)
		if err != nil {
			return nil, false
		}
		return frame, true
	}
	s.mu.Unlock()
	if s.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key, codec))
	if err != nil {
		return nil, false
	}
	if err := VerifyFrame(data, codec); err != nil {
		return nil, false
	}
	return data, true
}

// Has reports whether Encoded would likely succeed, without reading
// payload bytes — the peer HEAD have-check. It is advisory: a stat-able
// file may still fail verification on the subsequent GET, which the
// fetching store treats as a miss anyway.
func (s *Store) Has(key string, codec Codec) bool {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok && e.done && e.err == nil && e.kind == codec.Kind() {
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	if s.dir == "" {
		return false
	}
	info, err := os.Stat(s.path(key, codec))
	return err == nil && info.Mode().IsRegular()
}

// noteDiskWrite maintains the running disk-tier byte estimate and
// triggers GC only when it crosses the cap, keeping the common write
// O(1) instead of a directory scan. The estimate may drift (a rename
// over an existing key double-counts); every GC scan re-measures
// exactly, so drift never accumulates past one GC cycle.
func (s *Store) noteDiskWrite(n int64) {
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	if s.diskTotal >= 0 {
		s.diskTotal += n
	}
	if s.diskTotal >= 0 && s.diskTotal <= s.maxDisk {
		return
	}
	s.gcDiskLocked()
}

// gcDiskLocked bounds the disk tier: while the artifact files exceed
// MaxDiskBytes, the least recently touched (loadDisk re-stamps mtimes
// on hits, making mtime order LRU order) are deleted. Best effort.
// Caller holds diskMu.
func (s *Store) gcDiskLocked() {
	dents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type file struct {
		name  string
		size  int64
		mtime int64
	}
	var files []file
	var total int64
	for _, d := range dents {
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".art") {
			continue
		}
		info, err := d.Info()
		if err != nil {
			continue
		}
		files = append(files, file{name: d.Name(), size: info.Size(), mtime: info.ModTime().UnixNano()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= s.maxDisk {
			break
		}
		if os.Remove(filepath.Join(s.dir, f.name)) == nil {
			total -= f.size
		}
	}
	s.diskTotal = total
}
