package kmeans

import (
	"math"
	"strings"
	"testing"

	"cuisines/internal/matrix"
	"cuisines/internal/rng"
)

// threeBlobs builds three well-separated 2-D clusters of m points each.
func threeBlobs(m int) *matrix.Dense {
	r := rng.New(99)
	centers := [][2]float64{{0, 0}, {10, 0}, {0, 10}}
	x := matrix.NewDense(3*m, 2)
	for c, center := range centers {
		for i := 0; i < m; i++ {
			x.Set(c*m+i, 0, center[0]+r.NormFloat64()*0.5)
			x.Set(c*m+i, 1, center[1]+r.NormFloat64()*0.5)
		}
	}
	return x
}

func TestRunRecoversBlobs(t *testing.T) {
	x := threeBlobs(20)
	res, err := Run(x, 3, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// All points of a blob share one label, labels distinct across blobs.
	for c := 0; c < 3; c++ {
		label := res.Assign[c*20]
		for i := 0; i < 20; i++ {
			if res.Assign[c*20+i] != label {
				t.Fatalf("blob %d split across clusters", c)
			}
		}
	}
	if res.Assign[0] == res.Assign[20] || res.Assign[20] == res.Assign[40] || res.Assign[0] == res.Assign[40] {
		t.Fatal("blobs merged")
	}
	if res.WCSS > 100 {
		t.Fatalf("WCSS too high: %v", res.WCSS)
	}
}

func TestRunKBounds(t *testing.T) {
	x := threeBlobs(2)
	if _, err := Run(x, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Run(x, 7, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestRunKEqualsN(t *testing.T) {
	x := matrix.FromRows([][]float64{{0}, {5}, {9}})
	res, err := Run(x, 3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.WCSS > 1e-12 {
		t.Fatalf("k=n WCSS = %v, want 0", res.WCSS)
	}
}

func TestRunK1(t *testing.T) {
	x := matrix.FromRows([][]float64{{0, 0}, {2, 0}})
	res, err := Run(x, 1, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Centroid at (1,0), WCSS = 1 + 1 = 2.
	if math.Abs(res.WCSS-2) > 1e-9 {
		t.Fatalf("WCSS = %v", res.WCSS)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	x := threeBlobs(10)
	a, _ := Run(x, 3, Options{Seed: 42})
	b, _ := Run(x, 3, Options{Seed: 42})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different assignment")
		}
	}
	if a.WCSS != b.WCSS {
		t.Fatal("same seed, different WCSS")
	}
}

func TestWCSSNonIncreasingInK(t *testing.T) {
	x := threeBlobs(10)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := Run(x, k, Options{Seed: 7, Restarts: 12})
		if err != nil {
			t.Fatal(err)
		}
		// Allow a whisker of slack: restarts make this monotone in
		// practice but not by construction.
		if res.WCSS > prev*1.02+1e-9 {
			t.Fatalf("WCSS increased at k=%d: %v -> %v", k, prev, res.WCSS)
		}
		prev = res.WCSS
	}
}

func TestElbowCurveOnBlobs(t *testing.T) {
	x := threeBlobs(15)
	curve, err := Elbow(x, 8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 8 {
		t.Fatalf("points = %d", len(curve.Points))
	}
	// Three genuine blobs -> sharp elbow at k=3.
	if curve.ElbowK != 3 {
		t.Fatalf("elbow at k=%d, want 3", curve.ElbowK)
	}
	if !curve.Sharp() {
		t.Fatalf("elbow strength %v should be sharp on blobs", curve.ElbowStrength)
	}
}

func TestElbowNoStructure(t *testing.T) {
	// Uniform noise: no elbow should be sharp.
	r := rng.New(11)
	x := matrix.NewDense(40, 5)
	for i := 0; i < 40; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, r.Float64())
		}
	}
	curve, err := Elbow(x, 10, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Sharp() {
		t.Fatalf("uniform noise produced a sharp elbow (strength %v)", curve.ElbowStrength)
	}
}

func TestElbowKMaxClamped(t *testing.T) {
	x := matrix.FromRows([][]float64{{0}, {1}, {2}})
	curve, err := Elbow(x, 10, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 3 {
		t.Fatalf("kMax not clamped: %d points", len(curve.Points))
	}
	if _, err := Elbow(x, 0, Options{}); err == nil {
		t.Fatal("kMax=0 accepted")
	}
}

func TestElbowRender(t *testing.T) {
	x := threeBlobs(10)
	curve, _ := Elbow(x, 5, Options{Seed: 3})
	var b strings.Builder
	if err := curve.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "k=1") || !strings.Contains(out, "max curvature") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSilhouetteSeparatedVsMixed(t *testing.T) {
	x := threeBlobs(10)
	good, _ := Run(x, 3, Options{Seed: 5})
	sGood := Silhouette(x, good.Assign)
	if sGood < 0.7 {
		t.Fatalf("silhouette on perfect blobs = %v", sGood)
	}
	// Random assignment should score much worse.
	r := rng.New(13)
	bad := make([]int, x.Rows())
	for i := range bad {
		bad[i] = r.Intn(3)
	}
	if sBad := Silhouette(x, bad); sBad >= sGood {
		t.Fatalf("random assignment silhouette %v >= %v", sBad, sGood)
	}
}

func TestSilhouetteEdgeCases(t *testing.T) {
	x := matrix.FromRows([][]float64{{0}, {1}})
	if s := Silhouette(x, []int{0, 0}); s != 0 {
		t.Fatalf("single cluster silhouette = %v", s)
	}
	if s := Silhouette(matrix.FromRows([][]float64{{0}}), []int{0}); s != 0 {
		t.Fatalf("single point silhouette = %v", s)
	}
}

func TestEmptyClusterReseeded(t *testing.T) {
	// Duplicated points make empty clusters likely; Run must still return
	// k centroids and a valid assignment.
	x := matrix.FromRows([][]float64{{0}, {0}, {0}, {0}, {10}})
	res, err := Run(x, 3, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Assign {
		if c < 0 || c >= 3 {
			t.Fatalf("assignment out of range: %v", res.Assign)
		}
	}
}

// TestElbowWorkersEquivalence checks that the concurrent k sweep produces
// exactly the sequential curve: each k derives its own seed, so schedule
// cannot leak into the WCSS values.
func TestElbowWorkersEquivalence(t *testing.T) {
	x := threeBlobs(20)
	seq, err := Elbow(x, 10, Options{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0} {
		par, err := Elbow(x, 10, Options{Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Points) != len(par.Points) {
			t.Fatalf("workers=%d: point count %d vs %d", workers, len(par.Points), len(seq.Points))
		}
		for i := range seq.Points {
			if seq.Points[i] != par.Points[i] {
				t.Fatalf("workers=%d: point %d = %+v, sequential %+v", workers, i, par.Points[i], seq.Points[i])
			}
		}
		if seq.ElbowK != par.ElbowK || seq.ElbowStrength != par.ElbowStrength {
			t.Fatalf("workers=%d: diagnostic differs", workers)
		}
	}
}
