package kmeans

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cuisines/internal/matrix"
	"cuisines/internal/parallel"
)

// ElbowPoint is one (k, WCSS) sample of the elbow curve.
type ElbowPoint struct {
	K    int
	WCSS float64
}

// ElbowCurve is the Fig. 1 analysis: WCSS for k = 1..KMax plus the
// curvature-based elbow diagnostic.
type ElbowCurve struct {
	Points []ElbowPoint
	// ElbowK is the k with maximal discrete curvature (second
	// difference of normalized WCSS); 0 if the curve has fewer than three
	// points.
	ElbowK int
	// ElbowStrength is that curvature relative to the total WCSS drop, in
	// [0, 1]-ish units. Low values mean "no sharp elbow" — the paper's
	// Fig. 1 conclusion.
	ElbowStrength float64
}

// Elbow runs k-means for k = 1..kMax and assembles the elbow curve. The k
// values are evaluated concurrently (Options.Workers); each k derives its
// own seed, so the curve is identical to the sequential sweep and stable
// under kMax changes.
func Elbow(x *matrix.Dense, kMax int, opts Options) (*ElbowCurve, error) {
	if kMax < 1 {
		return nil, fmt.Errorf("kmeans: kMax must be >= 1")
	}
	if kMax > x.Rows() {
		kMax = x.Rows()
	}
	points, err := parallel.MapErr(kMax, opts.Workers, func(i int) (ElbowPoint, error) {
		k := i + 1
		o := opts
		o.Seed = opts.Seed*1000003 + uint64(k)
		res, err := Run(x, k, o)
		if err != nil {
			return ElbowPoint{}, err
		}
		return ElbowPoint{K: k, WCSS: res.WCSS}, nil
	})
	if err != nil {
		return nil, err
	}
	curve := &ElbowCurve{Points: points}
	curve.analyze()
	return curve, nil
}

func (c *ElbowCurve) analyze() {
	n := len(c.Points)
	if n < 3 {
		return
	}
	total := c.Points[0].WCSS - c.Points[n-1].WCSS
	if total <= 0 {
		return
	}
	best, bestCurv := 0, 0.0
	for i := 1; i < n-1; i++ {
		curv := (c.Points[i-1].WCSS - 2*c.Points[i].WCSS + c.Points[i+1].WCSS) / total
		if curv > bestCurv {
			best, bestCurv = c.Points[i].K, curv
		}
	}
	c.ElbowK = best
	c.ElbowStrength = bestCurv
}

// Sharp reports whether the curve has a pronounced elbow. The paper's
// Fig. 1 finds none on the cuisine features; the threshold is the
// documented convention this repository uses for that judgement (three
// clean synthetic blobs score ~0.37, featureless noise scores < 0.15).
func (c *ElbowCurve) Sharp() bool { return c.ElbowStrength >= 0.3 }

// Render writes an ASCII rendition of Fig. 1: WCSS bars against k.
func (c *ElbowCurve) Render(w io.Writer) error {
	if len(c.Points) == 0 {
		return nil
	}
	max := 0.0
	for _, p := range c.Points {
		if p.WCSS > max {
			max = p.WCSS
		}
	}
	for _, p := range c.Points {
		width := 0
		if max > 0 {
			width = int(math.Round(p.WCSS / max * 50))
		}
		if _, err := fmt.Fprintf(w, "k=%-3d %10.2f %s\n", p.K, p.WCSS, strings.Repeat("#", width)); err != nil {
			return err
		}
	}
	verdict := "no sharp elbow (matches the paper's Fig. 1 finding)"
	if c.Sharp() {
		verdict = fmt.Sprintf("sharp elbow at k=%d", c.ElbowK)
	}
	_, err := fmt.Fprintf(w, "max curvature at k=%d (strength %.3f): %s\n", c.ElbowK, c.ElbowStrength, verdict)
	return err
}
