// Package kmeans implements Lloyd's K-means with k-means++ seeding,
// restarts, WCSS (within-cluster sum of squares), silhouette scores and
// the elbow analysis of the paper's Fig. 1 — which the paper uses to argue
// that K-means finds no natural cluster count on the cuisine features
// ("no sharp edge or elbow like structure is obtained"), motivating
// hierarchical clustering instead.
package kmeans

import (
	"fmt"
	"math"

	"cuisines/internal/matrix"
	"cuisines/internal/rng"
)

// Result is one clustering outcome.
type Result struct {
	K int
	// Assign maps each observation to a cluster in [0, K).
	Assign []int
	// Centroids is the K x dims centroid matrix.
	Centroids *matrix.Dense
	// WCSS is the within-cluster sum of squared distances (inertia).
	WCSS float64
	// Iterations actually run in the winning restart.
	Iterations int
}

// Options tunes Run.
type Options struct {
	// MaxIter bounds Lloyd iterations per restart (default 100).
	MaxIter int
	// Restarts runs k-means++ this many times and keeps the best WCSS
	// (default 8).
	Restarts int
	// Seed drives the deterministic RNG (default 1).
	Seed uint64
	// Workers caps the number of k values the Elbow sweep evaluates
	// concurrently. 0 means runtime.GOMAXPROCS(0); 1 forces the
	// sequential path. Run itself stays sequential: its restarts share
	// one RNG stream, so their order is part of the result. The curve is
	// identical for any value (each k derives its own seed).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Run clusters the rows of x into k clusters. It errors if k is out of
// range.
func Run(x *matrix.Dense, k int, opts Options) (*Result, error) {
	n := x.Rows()
	if k < 1 || k > n {
		return nil, fmt.Errorf("kmeans: k=%d out of range for %d observations", k, n)
	}
	opts = opts.withDefaults()
	r := rng.New(opts.Seed)

	var best *Result
	for restart := 0; restart < opts.Restarts; restart++ {
		res := lloyd(x, k, r.Fork(), opts.MaxIter)
		if best == nil || res.WCSS < best.WCSS {
			best = res
		}
	}
	return best, nil
}

func lloyd(x *matrix.Dense, k int, r *rng.RNG, maxIter int) *Result {
	n, d := x.Rows(), x.Cols()
	centroids := seedPlusPlus(x, k, r)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		// Assignment step.
		for i := 0; i < n; i++ {
			bi, bd := 0, math.Inf(1)
			row := x.Row(i)
			for c := 0; c < k; c++ {
				dist := sqDist(row, centroids.Row(c))
				if dist < bd {
					bi, bd = c, dist
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Update step.
		counts := make([]int, k)
		next := matrix.NewDense(k, d)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := x.Row(i)
			crow := next.Row(c)
			for j, v := range row {
				crow[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid (standard fix).
				far, fd := 0, -1.0
				for i := 0; i < n; i++ {
					dist := sqDist(x.Row(i), centroids.Row(assign[i]))
					if dist > fd {
						far, fd = i, dist
					}
				}
				copy(next.Row(c), x.Row(far))
				counts[c] = 1
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range next.Row(c) {
				next.Row(c)[j] *= inv
			}
		}
		centroids = next
	}

	wcss := 0.0
	for i := 0; i < n; i++ {
		wcss += sqDist(x.Row(i), centroids.Row(assign[i]))
	}
	return &Result{K: k, Assign: assign, Centroids: centroids, WCSS: wcss, Iterations: iter}
}

// seedPlusPlus is k-means++ initialization (Arthur & Vassilvitskii 2007).
func seedPlusPlus(x *matrix.Dense, k int, r *rng.RNG) *matrix.Dense {
	n, d := x.Rows(), x.Cols()
	centroids := matrix.NewDense(k, d)
	first := r.Intn(n)
	copy(centroids.Row(0), x.Row(first))
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = sqDist(x.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		idx := r.WeightedChoice(dist)
		copy(centroids.Row(c), x.Row(idx))
		for i := 0; i < n; i++ {
			if nd := sqDist(x.Row(i), centroids.Row(c)); nd < dist[i] {
				dist[i] = nd
			}
		}
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Silhouette returns the mean silhouette coefficient of an assignment
// (euclidean), in [-1, 1]; higher is better-separated. Observations in
// singleton clusters contribute 0, matching sklearn.
func Silhouette(x *matrix.Dense, assign []int) float64 {
	n := x.Rows()
	if n < 2 {
		return 0
	}
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	if k < 2 {
		return 0
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	total := 0.0
	for i := 0; i < n; i++ {
		if sizes[assign[i]] <= 1 {
			continue
		}
		// Mean distance to own cluster (a) and nearest other cluster (b).
		sums := make([]float64, k)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sums[assign[j]] += math.Sqrt(sqDist(x.Row(i), x.Row(j)))
		}
		own := assign[i]
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}
