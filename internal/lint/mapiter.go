package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapIter flags `for range` over a map in deterministic packages: Go
// randomizes map iteration order per run, so any order that escapes
// the loop breaks the byte-identity contract — the exact bug class the
// PR 1/4/6 equivalence tests exist to catch, surfaced here at compile
// time instead.
//
// Approved shapes that are not flagged:
//
//   - `for range m` with no iteration variables (pure counting: no
//     order is observable);
//   - collect-and-sort: the loop appends keys or values to slices and
//     a later statement in the same block sorts every collected slice
//     (sort.* / slices.Sort*), the sortedKeys idiom;
//   - per-key writes into another map (`out[k] = f(v)`) or deletes,
//     which commute across iteration orders.
//
// Anything else needs a reasoned //lint:allow mapiter directive.
var MapIter = &analysis.Analyzer{
	Name:     "mapiter",
	Doc:      "flag nondeterministic map iteration in deterministic packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapIter,
}

func runMapIter(pass *analysis.Pass) (any, error) {
	if !inScope(pass) {
		return nil, nil
	}
	sup := newSuppressor(pass, "mapiter")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rs := n.(*ast.RangeStmt)
		if isTestFile(pass, rs.Pos()) {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		if rs.Key == nil && rs.Value == nil {
			return true // iteration order unobservable
		}
		if collectAndSorted(pass, rs, stack) || orderIndependentBody(pass, rs) {
			return true
		}
		if sup.allowed(rs.Pos()) {
			return true
		}
		pass.Reportf(rs.Pos(), "map iteration order is nondeterministic and escapes this loop; collect the keys and sort them (or write //lint:allow mapiter <reason>) to keep output byte-identical")
		return true
	})
	return nil, nil
}

// collectAndSorted recognizes the sortedKeys idiom: every slice the
// loop body appends to is sorted by a later statement in the enclosing
// block. The appended-to expressions are compared textually, which
// covers both locals (`keys`) and fields (`ix.items`).
func collectAndSorted(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	collected := map[string]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			return true
		}
		lhs := types.ExprString(as.Lhs[0])
		if types.ExprString(call.Args[0]) == lhs {
			collected[lhs] = true
		}
		return true
	})
	if len(collected) == 0 {
		return false
	}
	// Find the enclosing block and the loop's position in it, then
	// require a sort of every collected slice somewhere after.
	for i := len(stack) - 2; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		after := false
		for _, st := range block.List {
			if !after {
				if st == stack[i+1] {
					after = true
				}
				continue
			}
			ast.Inspect(st, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSortCall(pass, call) {
					return true
				}
				for _, arg := range call.Args {
					delete(collected, types.ExprString(arg))
				}
				return true
			})
		}
		return len(collected) == 0
	}
	return false
}

// isSortCall reports whether call invokes the sort or slices package.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return path == "sort" || path == "slices"
}

// orderIndependentBody proves the loop's effects commute, so iteration
// order cannot be observed in the result. Accepted leaf effects:
//
//   - integer counters: `n++`, `n--`, `n += e`, `n -= e` on an
//     integer identifier (floats are rejected: float addition is not
//     associative, so a float accumulation is exactly the bit-level
//     nondeterminism this analyzer exists to stop);
//   - per-key map writes: `m[k] = e` or `delete(m, k)` where the index
//     mentions the range key, so every iteration touches its own entry;
//   - constant bool latches: `done = true` (idempotent);
//   - `continue`.
//
// if/else and nested blocks are allowed around leaves provided no
// condition reads an accumulator or a written map — a condition like
// `if n == 2` would make the effect depend on visit order.
func orderIndependentBody(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	keyObj := rangeKeyObj(pass, rs)
	c := &commuteChecker{pass: pass, keyObj: keyObj, written: map[types.Object]bool{}}
	// Pass 1 collects the accumulators and written maps; pass 2 can
	// then reject conditions that read them.
	if !c.stmts(rs.Body.List) {
		return false
	}
	return c.conditionsClean(rs.Body)
}

func rangeKeyObj(pass *analysis.Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

type commuteChecker struct {
	pass    *analysis.Pass
	keyObj  types.Object
	written map[types.Object]bool // accumulators and written maps
}

func (c *commuteChecker) stmts(list []ast.Stmt) bool {
	for _, st := range list {
		if !c.stmt(st) {
			return false
		}
	}
	return true
}

func (c *commuteChecker) stmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.IncDecStmt:
		return c.counterOrPerKeyTarget(st.X, nil)
	case *ast.AssignStmt:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			return c.counterTarget(st.Lhs[0])
		case token.ASSIGN:
			return c.boolLatch(st.Lhs[0], st.Rhs[0]) || c.perKeyWrite(st.Lhs[0], st.Rhs[0])
		}
		return false
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "delete" || len(call.Args) != 2 {
			return false
		}
		if !c.mentionsKey(call.Args[1]) {
			return false
		}
		c.markWritten(call.Args[0])
		return true
	case *ast.IfStmt:
		if st.Init != nil {
			return false
		}
		if !c.stmts(st.Body.List) {
			return false
		}
		switch e := st.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return c.stmts(e.List)
		case *ast.IfStmt:
			return c.stmt(e)
		}
		return false
	case *ast.BlockStmt:
		return c.stmts(st.List)
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE && st.Label == nil
	}
	return false
}

// counterOrPerKeyTarget accepts an IncDec target: an integer counter
// ident or a per-key map entry (`m[k]++`).
func (c *commuteChecker) counterOrPerKeyTarget(e ast.Expr, _ any) bool {
	if ix, ok := e.(*ast.IndexExpr); ok {
		return c.perKeyWrite(ix, nil)
	}
	return c.counterTarget(e)
}

// counterTarget accepts an integer identifier accumulator.
func (c *commuteChecker) counterTarget(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	t := c.pass.TypesInfo.TypeOf(id)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	if obj := identObj(c.pass, id); obj != nil {
		c.written[obj] = true
		return true
	}
	return false
}

// boolLatch accepts `x = true` / `x = false`: idempotent, so any
// number of iterations setting it in any order agree.
func (c *commuteChecker) boolLatch(lhs, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := rhs.(*ast.Ident)
	if !ok || (v.Name != "true" && v.Name != "false") || c.pass.TypesInfo.Uses[v] != types.Universe.Lookup(v.Name) {
		return false
	}
	if obj := identObj(c.pass, id); obj != nil {
		c.written[obj] = true
		return true
	}
	return false
}

// perKeyWrite accepts `m[k...] = e` where m is a map and the index
// mentions the range key: each iteration owns its entry, so writes
// commute. The RHS (when present) is vetted later by conditionsClean's
// read check via markWritten.
func (c *commuteChecker) perKeyWrite(lhs ast.Expr, _ ast.Expr) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := c.pass.TypesInfo.TypeOf(ix.X)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return false
	}
	if !c.mentionsKey(ix.Index) {
		return false
	}
	c.markWritten(ix.X)
	return true
}

func (c *commuteChecker) markWritten(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok {
		if obj := identObj(c.pass, id); obj != nil {
			c.written[obj] = true
		}
	}
}

func (c *commuteChecker) mentionsKey(e ast.Expr) bool {
	if c.keyObj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObj(c.pass, id) == c.keyObj {
			found = true
		}
		return !found
	})
	return found
}

// conditionsClean rejects the body if any if-condition, counter
// operand or written-map RHS reads one of the written objects: such a
// read makes the iteration's effect depend on what ran before it.
func (c *commuteChecker) conditionsClean(body *ast.BlockStmt) bool {
	clean := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !clean {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if c.readsWritten(n.Cond) {
				clean = false
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if c.readsWritten(r) {
					clean = false
				}
			}
		}
		return clean
	})
	return clean
}

func (c *commuteChecker) readsWritten(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(c.pass, id); obj != nil && c.written[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
