// Package linttest is a minimal analysistest replacement for the
// internal/lint analyzers. The build environment vendors x/tools'
// go/analysis core from the Go toolchain, which does not ship
// analysistest or go/packages, so this harness does the three things
// the lint tests need and nothing more:
//
//   - load a GOPATH-style fixture tree (testdata/<case>/src/<pkgpath>)
//     with go/parser + go/types, resolving fixture-local imports from
//     the tree and everything else through the source importer;
//   - run an analyzer (and its Requires) over the fixture packages in
//     dependency order, with working package facts, so cross-package
//     checks like codecver's magic-uniqueness are testable;
//   - diff the diagnostics against analysistest-style
//     `// want "regexp"` comments (plus explicit Expect values for
//     diagnostics that land on //lint: directive lines, where a
//     trailing comment would be parsed as the directive's reason).
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Expect is an explicit expectation for a diagnostic that cannot carry
// a trailing // want comment (typically one reported at a //lint:
// directive).
type Expect struct {
	File string // base name, e.g. "a.go"
	Line int
	Re   string
}

// Run loads dir/src/<pkgPath>, runs a over it (deps first), and
// reports any mismatch between the diagnostics and the fixture's
// // want comments plus extra expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string, extra ...Expect) {
	t.Helper()
	l := newLoader(t, dir)
	target := l.load(pkgPath)

	var diags []analysis.Diagnostic
	for _, p := range l.order {
		got := l.runAnalyzer(a, p)
		if p == target {
			diags = got
		}
	}

	checkExpectations(t, l.fset, target, diags, extra)
}

type loadedPkg struct {
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	t     *testing.T
	dir   string
	fset  *token.FileSet
	std   types.Importer
	pkgs  map[string]*loadedPkg
	order []*loadedPkg // dependency order: deps before importers
	facts map[factKey]analysis.Fact
	// results memoizes analyzer runs per (analyzer, package) so
	// Requires are computed once.
	results map[resultKey]any
}

type factKey struct {
	pkg *types.Package
	typ reflect.Type
}

type resultKey struct {
	a *analysis.Analyzer
	p *loadedPkg
}

func newLoader(t *testing.T, dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		t:       t,
		dir:     dir,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*loadedPkg{},
		facts:   map[factKey]analysis.Fact{},
		results: map[resultKey]any{},
	}
}

// Import implements types.Importer: fixture-local packages come from
// the testdata tree, everything else from the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(l.srcDir(path)); err == nil {
		return l.load(path).pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) srcDir(pkgPath string) string {
	return filepath.Join(l.dir, "src", filepath.FromSlash(pkgPath))
}

func (l *loader) load(pkgPath string) *loadedPkg {
	l.t.Helper()
	if p, ok := l.pkgs[pkgPath]; ok {
		return p
	}
	srcDir := l.srcDir(pkgPath)
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		l.t.Fatalf("fixture %s: %v", pkgPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			l.t.Fatalf("fixture %s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.t.Fatalf("fixture %s: no Go files in %s", pkgPath, srcDir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		l.t.Fatalf("fixture %s: type error: %v", pkgPath, err)
	}
	p := &loadedPkg{path: pkgPath, pkg: pkg, files: files, info: info}
	l.pkgs[pkgPath] = p
	// Imports were loaded first through Import above, so appending
	// here yields dependency order.
	l.order = append(l.order, p)
	return p
}

// runAnalyzer executes a (running its Requires first) over p and
// returns the diagnostics.
func (l *loader) runAnalyzer(a *analysis.Analyzer, p *loadedPkg) []analysis.Diagnostic {
	l.t.Helper()
	var diags []analysis.Diagnostic
	l.run(a, p, &diags)
	return diags
}

func (l *loader) run(a *analysis.Analyzer, p *loadedPkg, sink *[]analysis.Diagnostic) any {
	l.t.Helper()
	key := resultKey{a, p}
	if res, ok := l.results[key]; ok {
		return res
	}
	resultOf := map[*analysis.Analyzer]any{}
	for _, req := range a.Requires {
		resultOf[req] = l.run(req, p, nil)
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       l.fset,
		Files:      p.files,
		Pkg:        p.pkg,
		TypesInfo:  p.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			if sink != nil {
				*sink = append(*sink, d)
			}
		},
		ReadFile: os.ReadFile,
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return false
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {},
		AllObjectFacts:   func() []analysis.ObjectFact { return nil },
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			got, ok := l.facts[factKey{pkg, reflect.TypeOf(fact)}]
			if !ok {
				return false
			}
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
			return true
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for k, f := range l.facts {
				out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
			}
			sort.Slice(out, func(i, j int) bool { return out[i].Package.Path() < out[j].Package.Path() })
			return out
		},
	}
	pass.ExportPackageFact = func(fact analysis.Fact) {
		l.facts[factKey{p.pkg, reflect.TypeOf(fact)}] = fact
	}
	res, err := a.Run(pass)
	if err != nil {
		l.t.Fatalf("%s on %s: %v", a.Name, p.path, err)
	}
	l.results[key] = res
	return res
}

// wantRe matches one or more quoted or backquoted regexps after
// "want" in a comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkExpectations diffs diagnostics against // want comments (and
// explicit extras) keyed by (base filename, line).
func checkExpectations(t *testing.T, fset *token.FileSet, p *loadedPkg, diags []analysis.Diagnostic, extra []Expect) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	wants := map[lineKey][]*expectation{}
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				k := lineKey{filepath.Base(pos.Filename), pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}
	for _, e := range extra {
		re, err := regexp.Compile(e.Re)
		if err != nil {
			t.Fatalf("bad expectation %q: %v", e.Re, err)
		}
		wants[lineKey{e.File, e.Line}] = append(wants[lineKey{e.File, e.Line}], &expectation{re: re})
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := lineKey{filepath.Base(pos.Filename), pos.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	keys := make([]lineKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

// Fprint is a debugging helper for fixture authors: it renders the
// diagnostics an analyzer produced on a fixture package.
func Fprint(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return b.String()
}
