// Package lint holds the project's custom go/analysis analyzers:
// compile-time enforcement of the invariants the equivalence tests
// check at run time (DESIGN.md §11).
//
// The engine's load-bearing properties — byte-identical output across
// worker counts, mining backends and bitmap layouts, and
// content-addressed artifact reuse — are conventions of the code, not
// of the language. Each analyzer turns one such convention into a
// build error:
//
//   - mapiter: no observable map iteration order in deterministic
//     packages (collect-and-sort is the approved idiom).
//   - wallclock: no time.Now / math/rand in deterministic packages;
//     randomness comes from internal/rng.
//   - canonfields: Options.Canonical and the pipeline stage-key
//     functions must reference every exported field of their structs,
//     so a new field cannot silently skip the cache key.
//   - codecver: artifact codecs pair encoder/decoder under one
//     kind+version, and flat-codec magics are globally unique.
//   - nakedgo: ordered concurrency lives in internal/parallel; naked
//     go statements are forbidden in deterministic packages.
//
// A finding can be suppressed with a directive on the offending line
// or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: a reason-less directive suppresses nothing
// and is itself a finding.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers is the full suite, in the order cmd/cuisinelint runs them.
var Analyzers = []*analysis.Analyzer{
	CanonFields,
	CodecVer,
	MapIter,
	NakedGo,
	WallClock,
}

// deterministicPkgs are the packages under the byte-identity contract
// (DESIGN.md §3): their outputs feed artifact keys, cached analyses
// and the serving layer, so any run-to-run nondeterminism inside them
// poisons caches fleet-wide. cmd/, internal/server, internal/parallel,
// internal/artifact and friends are deliberately outside: they own
// wall clocks, access logs and goroutines, and never produce artifact
// bytes themselves.
var deterministicPkgs = map[string]bool{
	"cuisines":                       true,
	"cuisines/internal/core":         true,
	"cuisines/internal/pipeline":     true,
	"cuisines/internal/itemset":      true,
	"cuisines/internal/miner":        true,
	"cuisines/internal/apriori":      true,
	"cuisines/internal/eclat":        true,
	"cuisines/internal/fpgrowth":     true,
	"cuisines/internal/hac":          true,
	"cuisines/internal/rules":        true,
	"cuisines/internal/encode":       true,
	"cuisines/internal/distance":     true,
	"cuisines/internal/matrix":       true,
	"cuisines/internal/corpus":       true,
	"cuisines/internal/authenticity": true,
	"cuisines/internal/treecmp":      true,
}

// normPkgPath strips the test-variant decorations go vet compiles
// packages under: "p [p.test]" is the package rebuilt with its test
// files, "p_test" the external test package, "p.test" the synthesized
// test main. It returns the base import path and whether this is the
// external _test package.
func normPkgPath(path string) (base string, externalTest bool) {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if strings.HasSuffix(path, "_test") {
		return strings.TrimSuffix(path, "_test"), true
	}
	return path, false
}

// clusterPkgs extends the wallclock/nakedgo scope (not the full
// determinism contract) to serving-infrastructure packages whose
// behavior must be reproducible in tests: internal/cluster makes
// routing and fetch decisions, so its clocks are injected (wallclock)
// and its only concurrency is the daemon-run health loop (nakedgo);
// internal/render evicts by pure access order and single-flights
// builds on the caller's goroutine, so an ambient clock or a naked go
// creeping into its eviction logic is a design regression, not a
// style nit. mapiter/canonfields/codecver stay out — these packages
// neither render maps into output nor own codecs.
var clusterPkgs = map[string]bool{
	"cuisines/internal/cluster": true,
	"cuisines/internal/render":  true,
}

// inScope reports whether the pass's package is under the determinism
// contract. External _test packages are not: they consume output, they
// do not produce artifact bytes.
func inScope(pass *analysis.Pass) bool {
	return inScopeFor(pass, nil)
}

// inScopeFor is inScope with a per-analyzer extra scope: a package in
// extra is checked even though it is outside the determinism contract.
func inScopeFor(pass *analysis.Pass, extra map[string]bool) bool {
	base, ext := normPkgPath(pass.Pkg.Path())
	return !ext && (deterministicPkgs[base] || extra[base])
}

// isTestFile reports whether the node's file is a _test.go file.
// In-package test files are compiled into the "p [p.test]" variant, so
// scope checks alone cannot exclude them.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
}

const allowPrefix = "//lint:allow"

// fileDirectives collects the //lint:allow directives of a file, keyed
// by the line the comment sits on.
func fileDirectives(pass *analysis.Pass, file *ast.File) map[int][]allowDirective {
	var out map[int][]allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(c.Text[len(allowPrefix):])
			name, reason, _ := strings.Cut(rest, " ")
			if out == nil {
				out = make(map[int][]allowDirective)
			}
			line := pass.Fset.Position(c.Pos()).Line
			out[line] = append(out[line], allowDirective{
				analyzer: name,
				reason:   strings.TrimSpace(reason),
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// suppressor answers "is this finding allowed?" for one analyzer over
// one pass, and reports the analyzer's own malformed directives
// (reason-less, or — for the designated auditor — naming no known
// analyzer) exactly once.
type suppressor struct {
	pass    *analysis.Pass
	name    string
	byFile  map[*ast.File]map[int][]allowDirective
	audited bool
}

// directiveAuditor is the one analyzer that validates analyzer names
// in directives; if every analyzer did, an unknown name would be
// reported five times.
const directiveAuditor = "canonfields"

func newSuppressor(pass *analysis.Pass, name string) *suppressor {
	s := &suppressor{pass: pass, name: name, byFile: make(map[*ast.File]map[int][]allowDirective)}
	for _, f := range pass.Files {
		s.byFile[f] = fileDirectives(pass, f)
	}
	s.audit()
	return s
}

// analyzerNames lists the suite by name (a string list, not a walk of
// Analyzers: audit runs during analysis, and referring to Analyzers
// from a Run function would be an initialization cycle).
var analyzerNames = map[string]bool{
	"canonfields": true,
	"codecver":    true,
	"mapiter":     true,
	"nakedgo":     true,
	"wallclock":   true,
}

// audit reports this analyzer's reason-less directives (they suppress
// nothing) and, for the auditor, directives naming unknown analyzers.
func (s *suppressor) audit() {
	known := analyzerNames
	for _, dirs := range s.byFile {
		for _, ds := range dirs {
			for _, d := range ds {
				switch {
				case d.analyzer == s.name && d.reason == "":
					s.pass.Reportf(d.pos, "lint:allow %s needs a reason (\"//lint:allow %s <why>\"); reason-less directives suppress nothing", s.name, s.name)
				case s.name == directiveAuditor && d.analyzer != "" && !known[d.analyzer]:
					s.pass.Reportf(d.pos, "lint:allow names unknown analyzer %q", d.analyzer)
				case s.name == directiveAuditor && d.analyzer == "":
					s.pass.Reportf(d.pos, "lint:allow needs an analyzer name and a reason")
				}
			}
		}
	}
}

// allowed reports whether a finding at pos is suppressed by a
// reasoned //lint:allow directive on the same line or the line above.
func (s *suppressor) allowed(pos token.Pos) bool {
	line := s.pass.Fset.Position(pos).Line
	for f, dirs := range s.byFile {
		if f.FileStart > pos || pos >= f.FileEnd {
			continue
		}
		for _, d := range append(dirs[line], dirs[line-1]...) {
			if d.analyzer == s.name && d.reason != "" {
				return true
			}
		}
	}
	return false
}
