package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// CodecVer checks the artifact-codec invariants that keep a warm disk
// (or, eventually, a peer fleet) readable:
//
//   - every codec composite literal (a struct with `kind` and
//     `version` fields, i.e. pipeline's gobCodec/flatCodec) declares a
//     unique kind per package and a version >= 1;
//   - flat codecs set appendFn and decodeFn together, and the pair
//     follows the append<X>/decode<X> naming so an encoder can never
//     be registered against another shape's decoder;
//   - magic constants ("CFL1", "CART", ...) are globally unique: each
//     pass exports its magics as a package fact and checks them
//     against every dependency's, so two framings can never claim the
//     same four bytes and misparse each other's files.
var CodecVer = &analysis.Analyzer{
	Name:      "codecver",
	Doc:       "artifact codecs pair encoder/decoder under one kind+version; magics are globally unique",
	Run:       runCodecVer,
	FactTypes: []analysis.Fact{(*magicsFact)(nil)},
}

// magicsFact records a package's declared magic constants so importing
// packages can detect collisions. Exported fields: facts are gob-coded
// across unitchecker invocations.
type magicsFact struct {
	Magics []magicDecl
}

type magicDecl struct {
	Name  string // declared identifier, e.g. "flatMagic"
	Value string // the magic bytes, e.g. "CFL1"
}

func (*magicsFact) AFact()           {}
func (f *magicsFact) String() string { return fmt.Sprintf("magics(%v)", f.Magics) }

// codecScope extends the deterministic set with internal/artifact: the
// store is outside the byte-identity contract (it owns mtimes and GC)
// but its disk framing ("CART") competes for the same magic namespace.
func codecScope(pass *analysis.Pass) bool {
	base, ext := normPkgPath(pass.Pkg.Path())
	return !ext && (deterministicPkgs[base] || base == "cuisines/internal/artifact")
}

func runCodecVer(pass *analysis.Pass) (any, error) {
	if !codecScope(pass) {
		return nil, nil
	}
	sup := newSuppressor(pass, "codecver")
	checkCodecLiterals(pass, sup)
	checkMagics(pass, sup)
	return nil, nil
}

// checkCodecLiterals validates every composite literal of a codec-like
// struct: unique kind, positive version, paired append/decode funcs.
func checkCodecLiterals(pass *analysis.Pass, sup *suppressor) {
	kinds := map[string]ast.Expr{}
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(lit)
			if t == nil {
				return true
			}
			st, ok := t.Underlying().(*types.Struct)
			if !ok || !isCodecStruct(st) {
				return true
			}
			fields := map[string]ast.Expr{}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					fields[id.Name] = kv.Value
				}
			}
			if sup.allowed(lit.Pos()) {
				return true
			}
			checkOneCodec(pass, lit, st, fields, kinds)
			return true
		})
	}
}

// isCodecStruct reports whether st looks like a codec registration
// struct: it has both a string `kind` and an integer `version` field.
func isCodecStruct(st *types.Struct) bool {
	var hasKind, hasVersion bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		b, ok := f.Type().Underlying().(*types.Basic)
		if !ok {
			continue
		}
		switch {
		case f.Name() == "kind" && b.Info()&types.IsString != 0:
			hasKind = true
		case f.Name() == "version" && b.Info()&types.IsInteger != 0:
			hasVersion = true
		}
	}
	return hasKind && hasVersion
}

func checkOneCodec(pass *analysis.Pass, lit *ast.CompositeLit, st *types.Struct, fields map[string]ast.Expr, kinds map[string]ast.Expr) {
	if kindExpr, ok := fields["kind"]; ok {
		if v := pass.TypesInfo.Types[kindExpr].Value; v != nil && v.Kind() == constant.String {
			kind := constant.StringVal(v)
			if prev, dup := kinds[kind]; dup {
				pass.Reportf(lit.Pos(), "codec kind %q is already registered at %s; two codecs sharing a kind would claim each other's artifact files", kind, pass.Fset.Position(prev.Pos()))
			} else {
				kinds[kind] = kindExpr
			}
		}
	}
	if verExpr, ok := fields["version"]; ok {
		if v := pass.TypesInfo.Types[verExpr].Value; v != nil && v.Kind() == constant.Int {
			if ver, ok := constant.Int64Val(v); ok && ver < 1 {
				pass.Reportf(lit.Pos(), "codec version %d is not positive; versions start at 1 so a zero header is always invalid", ver)
			}
		}
	}
	// Flat codecs: encoder and decoder register together, suffixes match.
	if !hasField(st, "appendFn") || !hasField(st, "decodeFn") {
		return
	}
	appendE, hasA := fields["appendFn"]
	decodeE, hasD := fields["decodeFn"]
	if hasA != hasD {
		pass.Reportf(lit.Pos(), "flat codec sets only one of appendFn/decodeFn; encoder and decoder must be registered together under one kind+version")
		return
	}
	if !hasA {
		return
	}
	an, aok := funcSuffix(appendE, "append")
	dn, dok := funcSuffix(decodeE, "decode")
	if aok && dok && an != dn {
		pass.Reportf(lit.Pos(), "flat codec pairs append%s with decode%s; encoder/decoder names must share a suffix so the pair is auditable at the registration site", an, dn)
	}
}

func hasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// funcSuffix extracts X from an identifier prefixX.
func funcSuffix(e ast.Expr, prefix string) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok || !strings.HasPrefix(id.Name, prefix) {
		return "", false
	}
	return id.Name[len(prefix):], true
}

// checkMagics collects this package's magic constants, reports
// collisions within the package and against every dependency's
// exported magics, then exports its own as a fact.
func checkMagics(pass *analysis.Pass, sup *suppressor) {
	type site struct {
		decl magicDecl
		pos  ast.Node
	}
	var own []site
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if !strings.Contains(strings.ToLower(name.Name), "magic") || i >= len(vs.Values) {
					continue
				}
				if val, ok := magicValue(pass, vs.Values[i]); ok {
					own = append(own, site{magicDecl{Name: name.Name, Value: val}, vs.Values[i]})
				}
			}
			return true
		})
	}
	if len(own) == 0 {
		return
	}

	// Dependencies' magics, gathered from facts. Sort for stable
	// diagnostic order.
	imported := map[string][]string{} // value -> "pkg.name" claimants
	for _, pf := range pass.AllPackageFacts() {
		mf, ok := pf.Fact.(*magicsFact)
		if !ok {
			continue
		}
		for _, m := range mf.Magics {
			imported[m.Value] = append(imported[m.Value], pf.Package.Path()+"."+m.Name)
		}
	}
	for v := range imported {
		sort.Strings(imported[v])
	}

	seen := map[string]magicDecl{}
	for _, s := range own {
		if sup.allowed(s.pos.Pos()) {
			continue
		}
		if prev, dup := seen[s.decl.Value]; dup {
			pass.Reportf(s.pos.Pos(), "magic %q is already used by %s in this package; every framing needs its own magic or corrupt files decode as the wrong shape", s.decl.Value, prev.Name)
			continue
		}
		seen[s.decl.Value] = s.decl
		if claimants := imported[s.decl.Value]; len(claimants) > 0 {
			pass.Reportf(s.pos.Pos(), "magic %q collides with %s; magics must be globally unique across the artifact format family", s.decl.Value, strings.Join(claimants, ", "))
		}
	}

	all := make([]magicDecl, 0, len(own))
	for _, s := range own {
		all = append(all, s.decl)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	pass.ExportPackageFact(&magicsFact{Magics: all})
}

// magicValue evaluates a magic declaration to its byte string: either
// a [N]byte composite literal of constant bytes or a short string
// constant.
func magicValue(pass *analysis.Pass, e ast.Expr) (string, bool) {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		s := constant.StringVal(tv.Value)
		if len(s) > 0 && len(s) <= 8 {
			return s, true
		}
		return "", false
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return "", false
	}
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return "", false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Byte && b.Kind() != types.Uint8 {
		return "", false
	}
	var out []byte
	for _, el := range lit.Elts {
		tv, ok := pass.TypesInfo.Types[el]
		if !ok || tv.Value == nil {
			return "", false
		}
		v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
		if !ok {
			return "", false
		}
		out = append(out, byte(v))
	}
	if len(out) == 0 {
		return "", false
	}
	return string(out), true
}
