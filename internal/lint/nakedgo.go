package lint

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// NakedGo flags `go` statements in deterministic packages. Ordered
// concurrency is internal/parallel's whole job: its pool preserves
// result order for any worker count, which is what lets parallelism
// stay outside the cache key. A naked goroutine reintroduces
// scheduling order as an observable — completion order, interleaved
// writes — precisely what the byte-identity equivalence tests forbid.
// internal/cluster is additionally in scope (clusterPkgs): the package
// exposes only blocking calls (the daemon spawns the health loop), so
// its fetch/route logic stays deterministically testable.
var NakedGo = &analysis.Analyzer{
	Name:     "nakedgo",
	Doc:      "forbid go statements in deterministic packages; use internal/parallel",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runNakedGo,
}

func runNakedGo(pass *analysis.Pass) (any, error) {
	if !inScopeFor(pass, clusterPkgs) {
		return nil, nil
	}
	sup := newSuppressor(pass, "nakedgo")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		if isTestFile(pass, n.Pos()) || sup.allowed(n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), "naked go statement in a deterministic package; spawn through internal/parallel (Do / MapErr), which owns ordered concurrency")
	})
	return nil, nil
}
