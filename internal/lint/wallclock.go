package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// WallClock forbids wall-clock and ambient-randomness reads in
// deterministic packages: time.Now (and its Since/Until sugar) and any
// import of math/rand. Stage outputs must be pure functions of their
// inputs or every cached and peer-fetched artifact is a lie; seeded,
// cross-version-stable randomness lives in internal/rng.
//
// The allowlist is structural: cmd/, internal/server (access logs,
// latency), internal/artifact (mtime GC) and _test.go files are
// outside the deterministic scope entirely. internal/cluster is
// additionally in scope (clusterPkgs): health-check and routing
// decisions must be reproducible in tests, so its clock is injected
// (Config.Now) rather than read ambiently.
var WallClock = &analysis.Analyzer{
	Name:     "wallclock",
	Doc:      "forbid time.Now and math/rand in deterministic packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWallClock,
}

// wallClockFuncs are the time package entry points that read the wall
// clock. time.Since/Until are included: each is a one-call wrapper
// around Now.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallClock(pass *analysis.Pass) (any, error) {
	if !inScopeFor(pass, clusterPkgs) {
		return nil, nil
	}
	sup := newSuppressor(pass, "wallclock")
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (path == "math/rand" || path == "math/rand/v2") && !sup.allowed(imp.Pos()) {
				pass.Reportf(imp.Pos(), "deterministic packages must not import %s: its streams are not stable across Go releases; use internal/rng (splitmix64, reproducible everywhere)", path)
			}
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if isTestFile(pass, call.Pos()) {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !wallClockFuncs[obj.Name()] {
			return
		}
		if sup.allowed(call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "time.%s reads the wall clock inside a deterministic package; stage outputs must be pure functions of their inputs (pass times in, or move the code outside the determinism scope)", obj.Name())
	})
	return nil, nil
}
