package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cuisines/internal/lint"
	"cuisines/internal/lint/linttest"
)

// findLine locates the 1-based line whose trimmed text equals needle —
// used to pin expectations for diagnostics reported at //lint:
// directive lines, where a trailing // want comment would be parsed
// as the directive's reason.
func findLine(t *testing.T, path, needle string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == needle {
			return i + 1
		}
	}
	t.Fatalf("%s: no line equal to %q", path, needle)
	return 0
}

func TestMapIter(t *testing.T) {
	reasonless := findLine(t,
		filepath.Join("testdata", "mapiter", "src", "cuisines", "internal", "core", "a.go"),
		"//lint:allow mapiter")
	linttest.Run(t, "testdata/mapiter", lint.MapIter, "cuisines/internal/core",
		linttest.Expect{File: "a.go", Line: reasonless, Re: `needs a reason`})
}

func TestMapIterOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/mapiter", lint.MapIter, "cuisines/internal/server")
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, "testdata/wallclock", lint.WallClock, "cuisines/internal/corpus")
}

func TestWallClockOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/wallclock", lint.WallClock, "cuisines/internal/server")
}

// TestWallClockCluster pins the extra cluster scope: internal/cluster
// is outside the full determinism contract but wallclock still covers
// it (injected clocks only; tickers stay allowed).
func TestWallClockCluster(t *testing.T) {
	linttest.Run(t, "testdata/wallclock", lint.WallClock, "cuisines/internal/cluster")
}

// TestWallClockRender pins the render-cache scope: the rendered-
// response cache's eviction logic is pure access order, so an ambient
// clock read there is a finding (an expiry scheme would inject its
// clock like internal/cluster/health.go does).
func TestWallClockRender(t *testing.T) {
	linttest.Run(t, "testdata/wallclock", lint.WallClock, "cuisines/internal/render")
}

func TestNakedGo(t *testing.T) {
	linttest.Run(t, "testdata/nakedgo", lint.NakedGo, "cuisines/internal/hac")
}

// TestNakedGoCluster pins the extra cluster scope for nakedgo: the
// cluster layer must expose blocking calls only.
func TestNakedGoCluster(t *testing.T) {
	linttest.Run(t, "testdata/nakedgo", lint.NakedGo, "cuisines/internal/cluster")
}

func TestCanonFieldsOptions(t *testing.T) {
	auditor := findLine(t,
		filepath.Join("testdata", "canonfields", "src", "cuisines", "a.go"),
		"//lint:allow notananalyzer the auditor must report this unknown name")
	linttest.Run(t, "testdata/canonfields", lint.CanonFields, "cuisines",
		linttest.Expect{File: "a.go", Line: auditor, Re: `unknown analyzer "notananalyzer"`})
}

func TestCanonFieldsParams(t *testing.T) {
	linttest.Run(t, "testdata/canonfields", lint.CanonFields, "cuisines/internal/pipeline")
}

func TestCodecVer(t *testing.T) {
	linttest.Run(t, "testdata/codecver", lint.CodecVer, "cuisines/internal/pipeline")
}
