// Fixture for the wallclock analyzer's extra cluster scope: the
// package is outside the full determinism contract but health-check
// timestamps must still come from an injected clock.
package cluster

import "time"

type health struct {
	now func() time.Time
}

func (h *health) stampBad() time.Time { return time.Now() } // want `time.Now reads the wall clock`

func (h *health) stampOK() time.Time { return h.now() }

// tickerOK: timers and tickers schedule work; they are not wall-clock
// reads and stay allowed (the health loop uses one).
func tickerOK() *time.Ticker { return time.NewTicker(time.Second) }

func backoffBad(last time.Time) time.Duration { return time.Since(last) } // want `time.Since reads the wall clock`
