// Out-of-scope fixture: internal/server owns access logs and request
// latency, so its wall-clock reads are fine.
package server

import "time"

func accessLogStamp() time.Time { return time.Now() }
