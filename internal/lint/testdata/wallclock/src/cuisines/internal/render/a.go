// Fixture for the wallclock analyzer's render-cache scope: the
// rendered-response cache is outside the full determinism contract but
// its eviction logic must stay clock-free — LRU recency is pure access
// order, never a timestamp. An expiry-by-time scheme would need an
// injected clock (the internal/cluster/health.go idiom), not an
// ambient read.
package render

import "time"

type entry struct {
	lastUsed time.Time
	now      func() time.Time
}

func (e *entry) touchBad() { e.lastUsed = time.Now() } // want `time.Now reads the wall clock`

func (e *entry) touchOK() { e.lastUsed = e.now() }

func expiredBad(e *entry, ttl time.Duration) bool { return time.Since(e.lastUsed) > ttl } // want `time.Since reads the wall clock`

func expiredOK(e *entry, ttl time.Duration) bool { return e.now().Sub(e.lastUsed) > ttl }
