// _test.go files are outside the determinism contract: timing a test
// is fine, so wallclock must stay silent here.
package corpus

import "time"

func benchClock() time.Time { return time.Now() }
