// Fixture for the wallclock analyzer: wall-clock reads and math/rand
// imports inside a deterministic package.
package corpus

import (
	"math/rand" // want `must not import math/rand`
	"time"
)

func seedBad() int64 { return rand.Int63() }

func nowBad() time.Time { return time.Now() } // want `time.Now reads the wall clock`

func sinceBad(t0 time.Time) time.Duration { return time.Since(t0) } // want `time.Since reads the wall clock`

func untilBad(t0 time.Time) time.Duration { return time.Until(t0) } // want `time.Until reads the wall clock`

// constOK: time the type and its constants are fine; only the wall
// clock is off-limits.
func constOK() time.Duration { return 5 * time.Second }

// parseOK: deterministic time computation on supplied values is fine.
func parseOK(s string) (time.Time, error) { return time.Parse(time.RFC3339, s) }

// allowedOK carries a reasoned suppression.
func allowedOK() time.Time {
	//lint:allow wallclock fixture proves the reasoned directive suppresses
	return time.Now()
}
