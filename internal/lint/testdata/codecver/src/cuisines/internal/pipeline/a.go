// Fixture for the codecver analyzer: duplicate codec kinds,
// non-positive versions, unpaired and mispaired flat codecs, and
// magic collisions both within the package and against the imported
// artifact package's fact.
package pipeline

import _ "cuisines/internal/artifact"

type flatCodec struct {
	kind     string
	version  int
	appendFn func([]byte, any) ([]byte, error)
	decodeFn func([]byte) (any, error)
}

type gobCodec struct {
	kind    string
	version int
}

func appendMine(dst []byte, v any) ([]byte, error) { return dst, nil }
func decodeMine(b []byte) (any, error)             { return nil, nil }
func appendRows(dst []byte, v any) ([]byte, error) { return dst, nil }
func decodeCols(b []byte) (any, error)             { return nil, nil }

var (
	mineCodec = flatCodec{kind: "mine", version: 3, appendFn: appendMine, decodeFn: decodeMine}
	dupCodec  = flatCodec{kind: "mine", version: 4, appendFn: appendMine, decodeFn: decodeMine} // want `already registered`
	gobDup    = gobCodec{kind: "tree", version: 1}
	gobDup2   = gobCodec{kind: "tree", version: 2}                                            // want `already registered`
	zeroVer   = gobCodec{kind: "zero", version: 0}                                            // want `not positive`
	mispaired = flatCodec{kind: "mm", version: 1, appendFn: appendRows, decodeFn: decodeCols} // want `append.*decode.*share a suffix`
	loneEnc   = flatCodec{kind: "lone", version: 1, appendFn: appendMine}                     // want `registered together`
	okCodec   = gobCodec{kind: "corpus", version: 1}
)

var (
	flatMagic  = [4]byte{'C', 'F', 'L', '1'}
	tableMagic = [4]byte{'C', 'F', 'L', '1'} // want `already used by flatMagic`
	clashMagic = [4]byte{'C', 'A', 'R', 'T'} // want `collides with cuisines/internal/artifact.diskMagic`
	strMagic   = "CSTR"
)
