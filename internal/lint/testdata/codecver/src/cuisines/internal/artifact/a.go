// Dependency fixture for codecver: this package's magic is exported
// as a package fact, so the importing pipeline fixture can collide
// with it.
package artifact

var diskMagic = [4]byte{'C', 'A', 'R', 'T'}

// Use keeps the declaration referenced.
func Use() byte { return diskMagic[0] }
