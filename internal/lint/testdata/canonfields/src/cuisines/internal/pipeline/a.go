// Fixture for the canonfields analyzer, pipeline target: the
// stage-key functions (Run/RunOn/runFrom) collectively miss Params'
// Extra field.
package pipeline

type Params struct {
	Seed    uint64
	Scale   float64
	Extra   int
	Workers int
	Miner   string
}

type Pipeline struct{}

func (p *Pipeline) Run(pr Params) { // want `does not reference exported field Extra`
	_ = pr.Seed
	_ = pr.Scale
	p.runFrom(pr)
}

func (p *Pipeline) RunOn(pr Params) { p.runFrom(pr) }

func (p *Pipeline) runFrom(pr Params) { _ = pr.Scale }
