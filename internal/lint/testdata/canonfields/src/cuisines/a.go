// Fixture for the canonfields analyzer, root-package target: Options
// grows a field (NewKnob) that Canonical never references. Workers
// and Miner are the configured exclusions and must not be reported.
package cuisines

type Options struct {
	Seed    uint64
	Scale   float64
	Workers int
	Miner   string
	NewKnob string
}

func (o Options) Canonical() (Options, error) { // want `does not reference exported field NewKnob`
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o, nil
}

//lint:allow notananalyzer the auditor must report this unknown name
func unrelated() {}
