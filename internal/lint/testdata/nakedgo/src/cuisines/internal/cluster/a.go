// Fixture for the nakedgo analyzer's extra cluster scope: the cluster
// layer exposes blocking calls only; the daemon owns the goroutine.
package cluster

import "context"

type node struct{}

func (n *node) run(ctx context.Context) { <-ctx.Done() }

func startBad(n *node, ctx context.Context) {
	go n.run(ctx) // want `naked go statement`
}

// runOK: handing the blocking call to the caller is the approved shape.
func runOK(n *node, ctx context.Context) { n.run(ctx) }
