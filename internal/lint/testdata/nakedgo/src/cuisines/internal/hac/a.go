// Fixture for the nakedgo analyzer.
package hac

func bad(f func()) {
	go f() // want `naked go statement`
}

func badClosure(ch chan int) {
	go func() { ch <- 1 }() // want `naked go statement`
}

// allowedOK carries a reasoned suppression.
func allowedOK(ch chan int) {
	//lint:allow nakedgo fixture proves the reasoned directive suppresses
	go func() { ch <- 1 }()
}

// callOK: calling a function (even one that spawns internally, like
// internal/parallel's) is not a go statement.
func callOK(f func()) { f() }
