// Out-of-scope fixture: internal/server is not a deterministic
// package, so mapiter must stay silent here.
package server

func rangeFreely(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
