// Fixture for the mapiter analyzer: positive hits, the approved
// order-independent shapes, and the //lint:allow suppression path.
package core

import "sort"

// bad leaks map order into a slice with no later sort.
func bad(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order`
		out = append(out, k)
	}
	return out
}

// sortedOK is the approved collect-and-sort idiom.
func sortedOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSliceOK collects values and sorts with a comparator, like
// itemset.NewIndexMode does with ix.items.
func sortSliceOK(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// collectNoSortBad collects but never sorts.
func collectNoSortBad(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `map iteration order`
		vals = append(vals, v)
	}
	return vals
}

// pureCountOK observes no key or value, so order cannot escape.
func pureCountOK(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// intSumOK is a commutative integer reduction.
func intSumOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// condCountOK counts under a condition that reads no accumulator,
// like treecmp's Robinson-Foulds symmetric difference.
func condCountOK(a, b map[string]bool) int {
	sym := 0
	for k := range a {
		if !b[k] {
			sym++
		} else {
			continue
		}
	}
	return sym
}

// floatSumBad accumulates floats: addition order changes the bits.
func floatSumBad(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order`
		sum += v
	}
	return sum
}

// perKeyOK writes each iteration to its own entry of another map,
// like significance.go's universal-item classification.
func perKeyOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		if v > 0 {
			out[k] = v * 2
		}
	}
	return out
}

// sameSlotBad writes every iteration to one slot: last writer wins.
func sameSlotBad(m map[string]int) map[string]int {
	out := make(map[string]int)
	for _, v := range m { // want `map iteration order`
		out["winner"] = v
	}
	return out
}

// orderReadBad latches the first-visited key — the canonical
// order-dependent loop.
func orderReadBad(m map[string]int) string {
	first := ""
	n := 0
	for k := range m { // want `map iteration order`
		if n == 0 {
			first = k
		}
		n++
	}
	return first
}

// accumCondBad counts, but a condition reads the accumulator, so the
// effect depends on visit order.
func accumCondBad(m map[string]int) int {
	n := 0
	for _, v := range m { // want `map iteration order`
		if n > 2 {
			continue
		}
		n += v
	}
	return n
}

// allowedOK carries a reasoned suppression.
func allowedOK(m map[string]int) string {
	s := ""
	//lint:allow mapiter fixture proves the reasoned directive suppresses
	for k := range m {
		s = k
	}
	return s
}

// reasonlessBad carries a reason-less directive: it suppresses
// nothing and is itself reported (see the explicit Expect in
// mapiter_test.go — a trailing want comment here would parse as the
// directive's reason).
func reasonlessBad(m map[string]int) string {
	s := ""
	//lint:allow mapiter
	for k := range m { // want `map iteration order`
		s = k
	}
	return s
}
