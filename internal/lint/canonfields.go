package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// CanonFields proves that the functions deriving cache identity from a
// parameter struct reference every exported field of that struct. Two
// structs carry the engine's cache identity: cuisines.Options
// (Canonical feeds the serving-cache key, DESIGN.md §7) and
// pipeline.Params (Run/RunOn/runFrom derive every artifact stage key,
// DESIGN.md §8). Adding a field to either without deciding its
// cache-key fate silently aliases distinct analyses to one artifact —
// this analyzer makes that a build error. Fields that are *proven*
// output-neutral (Workers, Miner: pure performance knobs pinned by
// equivalence tests) are excluded below; a new exclusion is a code
// change here, i.e. a reviewed decision.
var CanonFields = &analysis.Analyzer{
	Name: "canonfields",
	Doc:  "cache-key derivation functions must reference every exported field of their structs",
	Run:  runCanonFields,
}

// canonTarget names one struct and the functions that must collectively
// reference all of its exported, non-excluded fields.
type canonTarget struct {
	typeName string
	funcs    []string
	exclude  map[string]bool
}

// perfKnobs are the fields every backend/worker-count equivalence test
// proves output-neutral; they are deliberately absent from cache keys.
var perfKnobs = map[string]bool{"Workers": true, "Miner": true}

var canonTargets = map[string][]canonTarget{
	"cuisines": {
		{typeName: "Options", funcs: []string{"Canonical"}, exclude: perfKnobs},
	},
	"cuisines/internal/pipeline": {
		{typeName: "Params", funcs: []string{"Run", "RunOn", "runFrom"}, exclude: perfKnobs},
	},
}

func runCanonFields(pass *analysis.Pass) (any, error) {
	base, ext := normPkgPath(pass.Pkg.Path())
	targets := canonTargets[base]
	if ext || (len(targets) == 0 && !deterministicPkgs[base]) {
		return nil, nil
	}
	// The suppressor doubles as the directive auditor (unknown analyzer
	// names), so build it for every in-scope package.
	sup := newSuppressor(pass, "canonfields")
	for _, tg := range targets {
		checkCanonTarget(pass, sup, tg)
	}
	return nil, nil
}

func checkCanonTarget(pass *analysis.Pass, sup *suppressor, tg canonTarget) {
	obj := pass.Pkg.Scope().Lookup(tg.typeName)
	if obj == nil {
		pass.Reportf(pass.Files[0].Pos(), "canonfields is configured for type %s, which no longer exists in %s; update internal/lint/canonfields.go", tg.typeName, pass.Pkg.Path())
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(obj.Pos(), "canonfields target %s is not a struct; update internal/lint/canonfields.go", tg.typeName)
		return
	}
	// The exported fields the functions must account for, by object.
	need := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Exported() && !tg.exclude[f.Name()] {
			need[f] = true
		}
	}

	found := map[string]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, name := range tg.funcs {
				if fd.Name.Name == name && found[name] == nil {
					found[name] = fd
				}
			}
		}
	}
	var first *ast.FuncDecl
	for _, name := range tg.funcs {
		fd := found[name]
		if fd == nil {
			pass.Reportf(pass.Files[0].Pos(), "canonfields is configured to check %s.%s via %s, which no longer exists; update internal/lint/canonfields.go", pass.Pkg.Name(), tg.typeName, name)
			continue
		}
		if first == nil {
			first = fd
		}
		markFieldRefs(pass, fd, st, need)
	}
	if first == nil || len(need) == 0 {
		return
	}
	if sup.allowed(first.Pos()) {
		return
	}
	missing := make([]string, 0, len(need))
	for f := range need {
		missing = append(missing, f.Name())
	}
	sort.Strings(missing)
	pass.Reportf(first.Pos(), "%s does not reference exported field%s %s of %s: every field must enter the cache key here or be excluded in internal/lint/canonfields.go as a proven output-neutral knob",
		strings.Join(tg.funcs, "/"), plural(missing), strings.Join(missing, ", "), tg.typeName)
}

func plural(s []string) string {
	if len(s) > 1 {
		return "s"
	}
	return ""
}

// markFieldRefs removes from need every field of st that fd's body
// reads through a selector.
func markFieldRefs(pass *analysis.Pass, fd *ast.FuncDecl, st *types.Struct, need map[*types.Var]bool) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if f, ok := s.Obj().(*types.Var); ok {
			delete(need, f)
		}
		return true
	})
}
