package fihc

import (
	"strings"
	"testing"
)

func doc(id string, tokens ...string) Document {
	return Document{ID: id, Tokens: tokens}
}

// twoTopics: documents about "asia" (soy, rice) and "europe" (butter,
// flour), with salt everywhere.
func twoTopics() []Document {
	return []Document{
		doc("a1", "soy", "rice", "salt"),
		doc("a2", "soy", "rice", "salt", "ginger"),
		doc("a3", "soy", "rice", "ginger"),
		doc("e1", "butter", "flour", "salt"),
		doc("e2", "butter", "flour", "salt", "cream"),
		doc("e3", "butter", "flour", "cream"),
	}
}

func TestRunSeparatesTopics(t *testing.T) {
	tree, err := Run(twoTopics(), Options{MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	part := tree.Partition()
	if len(part) != 6 {
		t.Fatalf("partition length %d", len(part))
	}
	// Asia docs together, Europe docs together, separated from each
	// other.
	if part[0] != part[1] || part[1] != part[2] {
		t.Fatalf("asia docs split: %v", part)
	}
	if part[3] != part[4] || part[4] != part[5] {
		t.Fatalf("europe docs split: %v", part)
	}
	if part[0] == part[3] {
		t.Fatalf("topics merged: %v", part)
	}
}

func TestRunEmptyInput(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestRunNoFrequentItemsets(t *testing.T) {
	docs := []Document{doc("a", "x"), doc("b", "y"), doc("c", "z")}
	tree, err := Run(docs, Options{MinSupport: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Everything in one root cluster.
	part := tree.Partition()
	for _, p := range part {
		if p != part[0] {
			t.Fatalf("expected single cluster, got %v", part)
		}
	}
	if tree.NumClusters() != 1 {
		t.Fatalf("NumClusters = %d", tree.NumClusters())
	}
}

func TestEveryDocAssignedExactlyOnce(t *testing.T) {
	tree, err := Run(twoTopics(), Options{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	var walk func(c *Cluster)
	walk = func(c *Cluster) {
		for _, di := range c.Docs {
			seen[di]++
		}
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	walk(tree.Root)
	if len(seen) != 6 {
		t.Fatalf("assigned %d of 6 docs", len(seen))
	}
	for di, n := range seen {
		if n != 1 {
			t.Fatalf("doc %d assigned %d times", di, n)
		}
	}
}

func TestHierarchyLabelsNest(t *testing.T) {
	// Children labels must be supersets of parents'.
	tree, err := Run(twoTopics(), Options{MinSupport: 0.3, MaxLabelLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(c *Cluster)
	walk = func(c *Cluster) {
		for _, ch := range c.Children {
			if c.Label.Len() > 0 && !ch.Label.ContainsAll(c.Label) {
				t.Fatalf("child label %v does not extend parent %v", ch.Label, c.Label)
			}
			if ch.Label.Len() <= c.Label.Len() {
				t.Fatalf("child label %v not larger than parent %v", ch.Label, c.Label)
			}
			walk(ch)
		}
	}
	walk(tree.Root)
}

func TestDeterministic(t *testing.T) {
	a, err := Run(twoTopics(), Options{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(twoTopics(), Options{MinSupport: 0.3})
	pa, pb := a.Partition(), b.Partition()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("non-deterministic partition")
		}
	}
	if a.Describe() != b.Describe() {
		t.Fatal("non-deterministic hierarchy")
	}
}

func TestDescribe(t *testing.T) {
	tree, err := Run(twoTopics(), Options{MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Describe()
	if !strings.Contains(out, "(root)") {
		t.Fatalf("describe:\n%s", out)
	}
	if !strings.Contains(out, "soy") || !strings.Contains(out, "butter") {
		t.Fatalf("topic labels missing:\n%s", out)
	}
}

func TestSingleDocument(t *testing.T) {
	tree, err := Run([]Document{doc("only", "a", "b")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	part := tree.Partition()
	if len(part) != 1 || part[0] != 0 {
		t.Fatalf("partition = %v", part)
	}
}

func TestMaxLabelLenRespected(t *testing.T) {
	tree, err := Run(twoTopics(), Options{MinSupport: 0.3, MaxLabelLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(c *Cluster)
	walk = func(c *Cluster) {
		if c.Label.Len() > 1 {
			t.Fatalf("label %v exceeds MaxLabelLen", c.Label)
		}
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	walk(tree.Root)
}
