// Package fihc implements Frequent-Itemset-based Hierarchical Clustering
// (Fung, Wang & Ester, SDM 2003), the document-clustering method the
// paper names as one of its two approaches (Sec. V). Documents are bags
// of tokens; the algorithm:
//
//  1. mines global frequent token-sets over the documents (FP-Growth);
//  2. forms one initial cluster per frequent itemset, containing every
//     document that covers the itemset;
//  3. makes clusters disjoint by assigning each document to its
//     best-scoring cluster, where Score(C <- doc) rewards tokens that are
//     cluster-frequent in C and penalizes globally frequent tokens that
//     are not (the FIHC score function with unit term weights);
//  4. links each k-itemset cluster under its best-scoring (k-1)-subset
//     cluster, producing the topic hierarchy;
//  5. prunes childless empty clusters and hoists children of pruned
//     nodes.
//
// In this repository the "documents" are cuisines described by their
// mined pattern vocabularies, giving the A4 ablation tree that is
// compared against the paper's pdist+linkage pipeline.
package fihc

import (
	"fmt"
	"sort"

	"cuisines/internal/fpgrowth"
	"cuisines/internal/itemset"
)

// Document is a bag of tokens with an identifier.
type Document struct {
	ID     string
	Tokens []string
}

// set converts the token bag to a canonical itemset.
func (d Document) set() itemset.Set {
	return itemset.FromNames(itemset.Ingredient, d.Tokens...)
}

// Options tunes the clustering.
type Options struct {
	// MinSupport is the global frequent-itemset threshold over documents
	// (default 0.3).
	MinSupport float64
	// MinClusterSupport is the within-cluster token frequency needed for
	// a token to count as cluster-frequent (default 0.5).
	MinClusterSupport float64
	// MaxLabelLen bounds the size of cluster label itemsets (default 3;
	// larger labels explode the initial cluster count without improving
	// the hierarchy on small corpora).
	MaxLabelLen int
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.3
	}
	if o.MinClusterSupport <= 0 {
		o.MinClusterSupport = 0.5
	}
	if o.MaxLabelLen <= 0 {
		o.MaxLabelLen = 3
	}
	return o
}

// Cluster is one node of the FIHC hierarchy.
type Cluster struct {
	// Label is the frequent itemset naming the cluster (empty for the
	// root).
	Label itemset.Set
	// Docs are indices into the input document slice assigned to this
	// cluster (not including descendants').
	Docs []int
	// Children are sub-clusters with strictly larger labels.
	Children []*Cluster
}

// Tree is the clustering result.
type Tree struct {
	Root *Cluster
	Docs []Document
}

// Run clusters the documents.
func Run(docs []Document, opts Options) (*Tree, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("fihc: no documents")
	}
	opts = opts.withDefaults()

	// Step 1: global frequent itemsets over documents.
	txns := make([]itemset.Transaction, len(docs))
	docSets := make([]itemset.Set, len(docs))
	for i, d := range docs {
		docSets[i] = d.set()
		txns[i] = itemset.Transaction{ID: d.ID, Items: docSets[i]}
	}
	ds := itemset.NewDataset(txns)
	patterns := fpgrowth.MineWithOptions(ds, opts.MinSupport, fpgrowth.Options{MaxLen: opts.MaxLabelLen})
	if len(patterns) == 0 {
		// Degenerate: everything in one root cluster.
		root := &Cluster{Docs: allDocs(len(docs))}
		return &Tree{Root: root, Docs: docs}, nil
	}

	// Global support of single tokens, for the score's penalty term.
	globalSup := make(map[itemset.Item]float64)
	for _, p := range patterns {
		if p.Items.Len() == 1 {
			globalSup[p.Items.At(0)] = p.Support
		}
	}

	// Step 2: initial clusters (doc coverage per frequent itemset).
	type initial struct {
		label itemset.Set
		docs  []int
	}
	inits := make([]initial, 0, len(patterns))
	for _, p := range patterns {
		var members []int
		for i, s := range docSets {
			if s.ContainsAll(p.Items) {
				members = append(members, i)
			}
		}
		inits = append(inits, initial{label: p.Items, docs: members})
	}
	// Deterministic order: larger labels first (so specific clusters win
	// score ties), then lexicographic.
	sort.Slice(inits, func(i, j int) bool {
		if li, lj := inits[i].label.Len(), inits[j].label.Len(); li != lj {
			return li > lj
		}
		return itemset.StringPattern(inits[i].label) < itemset.StringPattern(inits[j].label)
	})

	// Cluster-frequent token sets from the *initial* (overlapping)
	// clusters, as FIHC prescribes.
	clusterFrequent := make([]map[itemset.Item]bool, len(inits))
	for ci, in := range inits {
		cf := make(map[itemset.Item]bool)
		if len(in.docs) > 0 {
			counts := make(map[itemset.Item]int)
			for _, di := range in.docs {
				for _, it := range docSets[di].Items() {
					counts[it]++
				}
			}
			need := int(float64(len(in.docs))*opts.MinClusterSupport + 0.9999)
			for it, n := range counts {
				if n >= need {
					cf[it] = true
				}
			}
		}
		clusterFrequent[ci] = cf
	}

	score := func(ci, di int) float64 {
		s := 0.0
		for _, it := range docSets[di].Items() {
			switch {
			case clusterFrequent[ci][it]:
				s += 1
			case globalSup[it] > 0:
				s -= globalSup[it]
			}
		}
		return s
	}

	// Step 3: disjoint assignment. A document must cover the label of the
	// cluster it joins; documents covering no label go to the root.
	assigned := make(map[int][]int, len(inits)) // init index -> docs
	var rootDocs []int
	for di := range docs {
		best, bestScore := -1, 0.0
		for ci, in := range inits {
			if !docSets[di].ContainsAll(in.label) {
				continue
			}
			sc := score(ci, di)
			if best == -1 || sc > bestScore {
				best, bestScore = ci, sc
			}
		}
		if best == -1 {
			rootDocs = append(rootDocs, di)
		} else {
			assigned[best] = append(assigned[best], di)
		}
	}

	// Step 4: build the hierarchy by label-subset linking.
	nodes := make([]*Cluster, len(inits))
	byKey := make(map[string]int, len(inits))
	for ci, in := range inits {
		nodes[ci] = &Cluster{Label: in.label, Docs: assigned[ci]}
		byKey[in.label.Key()] = ci
	}
	root := &Cluster{Docs: rootDocs}
	for ci, in := range inits {
		if in.label.Len() == 1 {
			root.Children = append(root.Children, nodes[ci])
			continue
		}
		// Best (k-1)-subset parent by the merged-document score.
		parent := -1
		parentScore := 0.0
		items := in.label.Items()
		for skip := range items {
			var sub []itemset.Item
			for k, it := range items {
				if k != skip {
					sub = append(sub, it)
				}
			}
			pi, ok := byKey[itemset.NewSet(sub...).Key()]
			if !ok {
				continue
			}
			sc := mergedScore(clusterFrequent[pi], globalSup, docSets, assigned[ci])
			if parent == -1 || sc > parentScore {
				parent, parentScore = pi, sc
			}
		}
		if parent == -1 {
			root.Children = append(root.Children, nodes[ci])
		} else {
			nodes[parent].Children = append(nodes[parent].Children, nodes[ci])
		}
	}

	// Step 5: prune empty leaves bottom-up.
	root = prune(root)
	if root == nil {
		root = &Cluster{Docs: allDocs(len(docs))}
	}
	sortClusters(root)
	return &Tree{Root: root, Docs: docs}, nil
}

func allDocs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// mergedScore scores a cluster's document set against a candidate
// parent's cluster-frequent items, treating the docs as one merged
// document (the FIHC parent-selection rule).
func mergedScore(parentCF map[itemset.Item]bool, globalSup map[itemset.Item]float64, docSets []itemset.Set, docs []int) float64 {
	s := 0.0
	seen := make(map[itemset.Item]bool)
	for _, di := range docs {
		for _, it := range docSets[di].Items() {
			if seen[it] {
				continue
			}
			seen[it] = true
			switch {
			case parentCF[it]:
				s += 1
			case globalSup[it] > 0:
				s -= globalSup[it]
			}
		}
	}
	return s
}

// prune removes clusters with no docs and no children; a pruned node's
// children are hoisted to its parent.
func prune(c *Cluster) *Cluster {
	var kept []*Cluster
	for _, ch := range c.Children {
		p := prune(ch)
		if p != nil {
			kept = append(kept, p)
		}
	}
	c.Children = kept
	if len(c.Docs) == 0 && len(c.Children) == 0 && c.Label.Len() > 0 {
		return nil
	}
	// Hoist single-child chains with no own docs.
	if len(c.Docs) == 0 && len(c.Children) == 1 && c.Label.Len() > 0 {
		return c.Children[0]
	}
	return c
}

func sortClusters(c *Cluster) {
	sort.Ints(c.Docs)
	sort.Slice(c.Children, func(i, j int) bool {
		return itemset.StringPattern(c.Children[i].Label) < itemset.StringPattern(c.Children[j].Label)
	})
	for _, ch := range c.Children {
		sortClusters(ch)
	}
}

// Partition returns a flat assignment of documents to the root's
// immediate subtrees (root-resident documents form their own cluster).
// Cluster ids are renumbered by smallest member.
func (t *Tree) Partition() []int {
	assign := make([]int, len(t.Docs))
	for i := range assign {
		assign[i] = -1
	}
	cluster := 0
	if len(t.Root.Docs) > 0 {
		for _, di := range t.Root.Docs {
			assign[di] = cluster
		}
		cluster++
	}
	var mark func(c *Cluster, id int)
	mark = func(c *Cluster, id int) {
		for _, di := range c.Docs {
			assign[di] = id
		}
		for _, ch := range c.Children {
			mark(ch, id)
		}
	}
	for _, ch := range t.Root.Children {
		mark(ch, cluster)
		cluster++
	}
	// Unassigned docs (possible only if the tree was built degenerately)
	// become singletons.
	for i, a := range assign {
		if a == -1 {
			assign[i] = cluster
			cluster++
		}
	}
	return renumber(assign)
}

func renumber(assign []int) []int {
	remap := make(map[int]int)
	next := 0
	out := make([]int, len(assign))
	for i, c := range assign {
		nc, ok := remap[c]
		if !ok {
			nc = next
			remap[c] = nc
			next++
		}
		out[i] = nc
	}
	return out
}

// NumClusters returns the number of distinct clusters in Partition.
func (t *Tree) NumClusters() int {
	max := -1
	for _, c := range t.Partition() {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// Describe renders the hierarchy as an indented outline.
func (t *Tree) Describe() string {
	var b []byte
	var walk func(c *Cluster, depth int)
	walk = func(c *Cluster, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		label := c.Label.String()
		if label == "" {
			label = "(root)"
		}
		b = append(b, label...)
		b = append(b, fmt.Sprintf(" [%d docs]", len(c.Docs))...)
		b = append(b, '\n')
		for _, ch := range c.Children {
			walk(ch, depth+1)
		}
	}
	walk(t.Root, 0)
	return string(b)
}
