// Package fpgrowth implements the FP-Growth frequent-itemset miner of
// Han, Pei & Yin (SIGMOD 2000), the algorithm the paper applies per
// cuisine at support 0.20 (Sec. V.A). The implementation follows the
// original formulation: a compressed FP-tree with a header table of
// per-item node chains, mined recursively through conditional pattern
// bases, with the single-path shortcut for enumerating combinations.
// Like the other backends behind internal/miner, it mines the shared
// bitset index of internal/itemset: item frequencies come from the
// index's cached popcounts and the FP-tree is built from the index's
// horizontal projection, so one index per region serves every backend.
package fpgrowth

import (
	"sort"

	"cuisines/internal/itemset"
)

// Options tunes a mining run. The zero value mines every frequent itemset
// with no size or count limits.
type Options struct {
	// MaxLen, if positive, bounds the size of mined itemsets.
	MaxLen int
	// MaxPatterns, if positive, aborts enumeration after this many
	// patterns (a safety valve against pathological inputs; the result is
	// then a prefix of the full pattern set).
	MaxPatterns int
}

// Mine returns all itemsets whose relative support in the dataset is at
// least minSupport (a fraction in (0, 1], or an absolute count if > 1).
// The result is in canonical report order (itemset.SortPatterns).
func Mine(d *itemset.Dataset, minSupport float64) []itemset.Pattern {
	return MineIndex(itemset.NewIndex(d), minSupport)
}

// MineWithOptions is Mine with explicit options.
func MineWithOptions(d *itemset.Dataset, minSupport float64, opts Options) []itemset.Pattern {
	return MineIndexWithOptions(itemset.NewIndex(d), minSupport, opts)
}

// MineIndex mines a prebuilt bitset index (the shared representation all
// backends accept, so one index per region serves any of them).
func MineIndex(ix *itemset.Index, minSupport float64) []itemset.Pattern {
	return MineIndexWithOptions(ix, minSupport, Options{})
}

// MineIndexWithOptions is MineIndex with explicit options.
func MineIndexWithOptions(ix *itemset.Index, minSupport float64, opts Options) []itemset.Pattern {
	if ix.NumTransactions() == 0 {
		return nil
	}
	minCount := ix.MinCount(minSupport)

	m := newMiner(ix, minCount, opts)
	m.run()

	total := float64(ix.NumTransactions())
	out := make([]itemset.Pattern, 0, len(m.results))
	for _, res := range m.results {
		items := make([]itemset.Item, len(res.items))
		for i, id := range res.items {
			items[i] = m.vocab[id]
		}
		out = append(out, itemset.Pattern{
			Items:   itemset.NewSet(items...),
			Count:   res.count,
			Support: float64(res.count) / total,
		})
	}
	itemset.SortPatterns(out)
	return out
}

// result is a mined itemset in internal id space.
type result struct {
	items []int32
	count int
}

// node is one FP-tree node. Nodes live in a flat arena; links are indices
// so the garbage collector sees one slice, not a pointer web.
type node struct {
	item    int32 // vocab id, -1 for root
	count   int
	parent  int32
	child   int32 // first child
	sibling int32 // next sibling
	hlink   int32 // next node with same item (header chain)
}

type tree struct {
	nodes  []node
	header []int32 // item id -> first node index, -1 if none
	counts []int   // item id -> total count in this tree
}

type miner struct {
	vocab    []itemset.Item // id -> item
	order    []int32        // id -> f-list rank (0 = most frequent)
	minCount int
	opts     Options
	results  []result
	stop     bool

	// initialTxns holds each transaction as ids sorted by f-list rank.
	initialTxns [][]int32
}

func newMiner(ix *itemset.Index, minCount int, opts Options) *miner {
	// Frequent vocabulary from the index's cached popcounts, ordered by
	// descending count, ties by name+kind for determinism.
	type ic struct {
		id int32 // index id
		n  int
	}
	var freq []ic
	for id := int32(0); int(id) < ix.NumItems(); id++ {
		if n := ix.Count(id); n >= minCount {
			freq = append(freq, ic{id, n})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].n != freq[j].n {
			return freq[i].n > freq[j].n
		}
		// Index ids are in canonical item order, so id comparison is the
		// name+kind tie-break.
		return freq[i].id < freq[j].id
	})

	m := &miner{
		vocab:    make([]itemset.Item, len(freq)),
		minCount: minCount,
		opts:     opts,
	}
	// fpID maps index ids to f-list ids (-1 = infrequent).
	fpID := make([]int32, ix.NumItems())
	for i := range fpID {
		fpID[i] = -1
	}
	for i, f := range freq {
		m.vocab[i] = ix.Item(f.id)
		fpID[f.id] = int32(i)
	}
	// Rank equals id because vocab is already in f-list order.
	m.order = make([]int32, len(freq))
	for i := range m.order {
		m.order[i] = int32(i)
	}

	// Project the index's horizontal transactions onto the frequent
	// vocabulary, sorted by f-list rank (ascending rank = descending
	// frequency), which is the insertion order FP-trees require.
	m.initialTxns = make([][]int32, 0, ix.NumTransactions())
	for _, txn := range ix.Txns() {
		var ids []int32
		for _, id := range txn {
			if f := fpID[id]; f >= 0 {
				ids = append(ids, f)
			}
		}
		if len(ids) == 0 {
			continue
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		m.initialTxns = append(m.initialTxns, ids)
	}
	return m
}

func newTree(numItems int) *tree {
	t := &tree{
		nodes:  make([]node, 1, 64),
		header: make([]int32, numItems),
		counts: make([]int, numItems),
	}
	t.nodes[0] = node{item: -1, parent: -1, child: -1, sibling: -1, hlink: -1}
	for i := range t.header {
		t.header[i] = -1
	}
	return t
}

// insert adds an id-sorted transaction with the given count.
func (t *tree) insert(ids []int32, count int) {
	cur := int32(0)
	for _, id := range ids {
		t.counts[id] += count
		// Find child of cur with this item.
		var found int32 = -1
		for c := t.nodes[cur].child; c != -1; c = t.nodes[c].sibling {
			if t.nodes[c].item == id {
				found = c
				break
			}
		}
		if found == -1 {
			t.nodes = append(t.nodes, node{
				item:    id,
				count:   0,
				parent:  cur,
				child:   -1,
				sibling: t.nodes[cur].child,
				hlink:   t.header[id],
			})
			found = int32(len(t.nodes) - 1)
			t.nodes[cur].child = found
			t.header[id] = found
		}
		t.nodes[found].count += count
		cur = found
	}
}

// singlePath returns the item chain if the tree is a single path, else nil.
func (t *tree) singlePath() []int32 {
	var path []int32
	cur := t.nodes[0].child
	for cur != -1 {
		if t.nodes[cur].sibling != -1 {
			return nil
		}
		path = append(path, cur)
		cur = t.nodes[cur].child
	}
	return path
}

func (m *miner) run() {
	t := newTree(len(m.vocab))
	for _, txn := range m.initialTxns {
		t.insert(txn, 1)
	}
	m.mine(t, nil)
}

// emit records a frequent itemset (suffix + extra ids).
func (m *miner) emit(ids []int32, count int) {
	if m.stop {
		return
	}
	cp := make([]int32, len(ids))
	copy(cp, ids)
	m.results = append(m.results, result{items: cp, count: count})
	if m.opts.MaxPatterns > 0 && len(m.results) >= m.opts.MaxPatterns {
		m.stop = true
	}
}

// mine recursively mines the tree with the given suffix (in id space).
func (m *miner) mine(t *tree, suffix []int32) {
	if m.stop {
		return
	}
	// Single-path shortcut: every combination of path nodes, joined with
	// the suffix, is frequent with the minimum count along the selection.
	if path := t.singlePath(); path != nil {
		m.emitPathCombos(t, path, suffix)
		return
	}

	// General case: process header items from least to most frequent
	// (highest id first, since ids are in f-list order).
	for id := int32(len(m.vocab)) - 1; id >= 0; id-- {
		if m.stop {
			return
		}
		if t.counts[id] < m.minCount {
			continue
		}
		newSuffix := append(suffix, id)
		m.emit(newSuffix, t.counts[id])
		if m.opts.MaxLen > 0 && len(newSuffix) >= m.opts.MaxLen {
			newSuffix = newSuffix[:len(newSuffix)-1]
			continue
		}

		// Conditional pattern base: prefix paths of every node of id.
		cond := newTree(len(m.vocab))
		for n := t.header[id]; n != -1; n = t.nodes[n].hlink {
			cnt := t.nodes[n].count
			var prefix []int32
			for p := t.nodes[n].parent; p > 0; p = t.nodes[p].parent {
				prefix = append(prefix, t.nodes[p].item)
			}
			if len(prefix) == 0 {
				continue
			}
			// prefix was collected leaf->root; reverse to root->leaf which
			// is ascending id order.
			for a, b := 0, len(prefix)-1; a < b; a, b = a+1, b-1 {
				prefix[a], prefix[b] = prefix[b], prefix[a]
			}
			cond.insert(prefix, cnt)
		}
		// Prune infrequent items from the conditional tree by rebuilding
		// if needed: cheaper approach — only recurse if something is
		// frequent in cond.
		if condHasFrequent(cond, m.minCount) {
			pruned := pruneTree(cond, m.minCount, len(m.vocab))
			m.mine(pruned, newSuffix)
		}
	}
}

func condHasFrequent(t *tree, minCount int) bool {
	for _, c := range t.counts {
		if c >= minCount {
			return true
		}
	}
	return false
}

// pruneTree rebuilds a conditional tree keeping only items frequent within
// it. FP-Growth requires this so that single-path detection and counts stay
// exact.
func pruneTree(t *tree, minCount, numItems int) *tree {
	keep := make([]bool, numItems)
	any := false
	for id, c := range t.counts {
		if c >= minCount {
			keep[id] = true
			any = true
		}
	}
	out := newTree(numItems)
	if !any {
		return out
	}
	// Re-extract transactions: walk each leaf-to-root path once per
	// node's own count minus children sum. Simpler exact method: traverse
	// all nodes; each node contributes (node count - sum of child counts)
	// paths ending at that node.
	var walk func(idx int32, path []int32)
	walk = func(idx int32, path []int32) {
		n := t.nodes[idx]
		if idx != 0 && keep[n.item] {
			path = append(path, n.item)
		}
		childSum := 0
		for c := n.child; c != -1; c = t.nodes[c].sibling {
			childSum += t.nodes[c].count
			walk(c, path)
		}
		if idx != 0 {
			if residual := n.count - childSum; residual > 0 && len(path) > 0 {
				out.insert(path, residual)
			}
		}
	}
	walk(0, nil)
	return out
}

// emitPathCombos emits every non-empty subset of the single path combined
// with the suffix. Counts are the minimum node count within the subset
// (nodes are nested, so the deepest selected node's count).
func (m *miner) emitPathCombos(t *tree, path []int32, suffix []int32) {
	// Node counts are non-increasing with depth on a single path; truncate
	// at the first infrequent node so no emitted combination falls below
	// the threshold (relevant for the unpruned top-level tree).
	for len(path) > 0 && t.nodes[path[len(path)-1]].count < m.minCount {
		path = path[:len(path)-1]
	}
	if len(path) == 0 {
		return
	}
	n := len(path)
	maxExtra := n
	if m.opts.MaxLen > 0 {
		maxExtra = m.opts.MaxLen - len(suffix)
		if maxExtra <= 0 {
			return
		}
		if maxExtra > n {
			maxExtra = n
		}
	}
	// Enumerate subsets via recursion to respect MaxLen cheaply.
	var rec func(start int, chosen []int32, minCount int)
	rec = func(start int, chosen []int32, minCount int) {
		if m.stop {
			return
		}
		if len(chosen) > 0 {
			m.emit(append(append([]int32{}, suffix...), chosen...), minCount)
		}
		if len(chosen) >= maxExtra {
			return
		}
		for i := start; i < n; i++ {
			nodeIdx := path[i]
			c := t.nodes[nodeIdx].count
			nm := minCount
			if c < nm || len(chosen) == 0 {
				nm = c
			}
			rec(i+1, append(chosen, t.nodes[nodeIdx].item), nm)
		}
	}
	rec(0, nil, 1<<62)
}
