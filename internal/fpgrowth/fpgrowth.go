// Package fpgrowth implements the FP-Growth frequent-itemset miner of
// Han, Pei & Yin (SIGMOD 2000), the algorithm the paper applies per
// cuisine at support 0.20 (Sec. V.A). The implementation follows the
// original formulation: a compressed FP-tree with a header table of
// per-item node chains, mined recursively through conditional pattern
// bases, with the single-path shortcut for enumerating combinations.
// Like the other backends behind internal/miner, it mines the shared
// bitmap index of internal/itemset: item frequencies come from the
// index's cached popcounts and the FP-tree is built from the index's
// horizontal projection, so one index per region serves every backend.
//
// The conditional trees, their node arenas and the prefix/probe buffers
// are recycled through a sync.Pool across mining runs — the recursion
// builds and discards one conditional tree per frequent item per level,
// which dominated the allocation profile before pooling (see the
// AllocsPerRun regression guard in fpgrowth_test.go).
package fpgrowth

import (
	"sort"
	"sync"

	"cuisines/internal/itemset"
)

// Options tunes a mining run. The zero value mines every frequent itemset
// with no size or count limits.
type Options struct {
	// MaxLen, if positive, bounds the size of mined itemsets.
	MaxLen int
	// MaxPatterns, if positive, aborts enumeration after this many
	// patterns (a safety valve against pathological inputs; the result is
	// then a prefix of the full pattern set).
	MaxPatterns int
}

// Mine returns all itemsets whose relative support in the dataset is at
// least minSupport (a fraction in (0, 1], or an absolute count if > 1).
// The result is in canonical report order (itemset.SortPatterns).
func Mine(d *itemset.Dataset, minSupport float64) []itemset.Pattern {
	return MineIndex(itemset.NewIndex(d), minSupport)
}

// MineWithOptions is Mine with explicit options.
func MineWithOptions(d *itemset.Dataset, minSupport float64, opts Options) []itemset.Pattern {
	return MineIndexWithOptions(itemset.NewIndex(d), minSupport, opts)
}

// MineIndex mines a prebuilt bitmap index (the shared representation all
// backends accept, so one index per region serves any of them).
func MineIndex(ix *itemset.Index, minSupport float64) []itemset.Pattern {
	return MineIndexWithOptions(ix, minSupport, Options{})
}

// MineIndexWithOptions is MineIndex with explicit options.
func MineIndexWithOptions(ix *itemset.Index, minSupport float64, opts Options) []itemset.Pattern {
	if ix.NumTransactions() == 0 {
		return nil
	}
	minCount := ix.MinCount(minSupport)

	sc := scratchPool.Get().(*fpScratch)
	m := newMiner(ix, minCount, opts, sc)
	m.run()
	scratchPool.Put(sc)

	total := float64(ix.NumTransactions())
	out := make([]itemset.Pattern, 0, len(m.results))
	for _, res := range m.results {
		items := make([]itemset.Item, len(res.items))
		for i, id := range res.items {
			items[i] = m.vocab[id]
		}
		out = append(out, itemset.Pattern{
			Items:   itemset.NewSet(items...),
			Count:   res.count,
			Support: float64(res.count) / total,
		})
	}
	itemset.SortPatterns(out)
	return out
}

// result is a mined itemset in internal id space.
type result struct {
	items []int32
	count int
}

// node is one FP-tree node. Nodes live in a flat arena; links are indices
// so the garbage collector sees one slice, not a pointer web.
type node struct {
	item    int32 // vocab id, -1 for root
	count   int
	parent  int32
	child   int32 // first child
	sibling int32 // next sibling
	hlink   int32 // next node with same item (header chain)
}

type tree struct {
	nodes  []node
	header []int32 // item id -> first node index, -1 if none
	counts []int   // item id -> total count in this tree
}

// fpScratch is the pooled per-run state: recycled conditional trees and
// the prefix/keep buffers of the pattern-base extraction. One scratch
// serves one mining run at a time; trees are handed out and reclaimed as
// the recursion unwinds.
type fpScratch struct {
	free     []*tree
	prefix   []int32
	keep     []bool
	pathBuf  []int32
	chosen   []int32
	suffix   []int32
	comboBuf []int32
	walkBuf  []int32
}

var scratchPool = sync.Pool{New: func() any { return new(fpScratch) }}

// getTree returns a cleared tree with numItems header/counts slots,
// recycling a released one when available.
func (sc *fpScratch) getTree(numItems int) *tree {
	var t *tree
	if n := len(sc.free); n > 0 {
		t = sc.free[n-1]
		sc.free = sc.free[:n-1]
	} else {
		t = &tree{nodes: make([]node, 0, 64)}
	}
	t.nodes = t.nodes[:0]
	t.nodes = append(t.nodes, node{item: -1, parent: -1, child: -1, sibling: -1, hlink: -1})
	if cap(t.header) < numItems {
		t.header = make([]int32, numItems)
		t.counts = make([]int, numItems)
	}
	t.header = t.header[:numItems]
	t.counts = t.counts[:numItems]
	for i := range t.header {
		t.header[i] = -1
		t.counts[i] = 0
	}
	return t
}

// putTree reclaims a tree for reuse by later conditional bases.
func (sc *fpScratch) putTree(t *tree) { sc.free = append(sc.free, t) }

type miner struct {
	vocab    []itemset.Item // id -> item
	order    []int32        // id -> f-list rank (0 = most frequent)
	minCount int
	opts     Options
	results  []result
	stop     bool
	sc       *fpScratch

	// initialTxns holds each transaction as ids sorted by f-list rank
	// (slices of one arena).
	initialTxns [][]int32
}

func newMiner(ix *itemset.Index, minCount int, opts Options, sc *fpScratch) *miner {
	// Frequent vocabulary from the index's cached popcounts, ordered by
	// descending count, ties by name+kind for determinism.
	type ic struct {
		id int32 // index id
		n  int
	}
	var freq []ic
	totalRetained := 0
	for id := int32(0); int(id) < ix.NumItems(); id++ {
		if n := ix.Count(id); n >= minCount {
			freq = append(freq, ic{id, n})
			totalRetained += n
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].n != freq[j].n {
			return freq[i].n > freq[j].n
		}
		// Index ids are in canonical item order, so id comparison is the
		// name+kind tie-break.
		return freq[i].id < freq[j].id
	})

	m := &miner{
		vocab:    make([]itemset.Item, len(freq)),
		minCount: minCount,
		opts:     opts,
		sc:       sc,
	}
	// fpID maps index ids to f-list ids (-1 = infrequent).
	fpID := make([]int32, ix.NumItems())
	for i := range fpID {
		fpID[i] = -1
	}
	for i, f := range freq {
		m.vocab[i] = ix.Item(f.id)
		fpID[f.id] = int32(i)
	}
	// Rank equals id because vocab is already in f-list order.
	m.order = make([]int32, len(freq))
	for i := range m.order {
		m.order[i] = int32(i)
	}

	// Project the index's horizontal transactions onto the frequent
	// vocabulary, sorted by f-list rank (ascending rank = descending
	// frequency), which is the insertion order FP-trees require. Every
	// retained id of an item appears at most once per transaction, so
	// the per-item support counts bound the arena exactly.
	arena := make([]int32, 0, totalRetained)
	m.initialTxns = make([][]int32, 0, ix.NumTransactions())
	for _, txn := range ix.Txns() {
		start := len(arena)
		for _, id := range txn {
			if f := fpID[id]; f >= 0 {
				arena = append(arena, f)
			}
		}
		if len(arena) == start {
			continue
		}
		ids := arena[start:len(arena):len(arena)]
		insertionSortIDs(ids)
		m.initialTxns = append(m.initialTxns, ids)
	}
	return m
}

// insertionSortIDs sorts a short id slice ascending without the closure
// and interface overhead of sort.Slice — transactions are tens of items
// at most, where insertion sort is both allocation-free and fastest.
func insertionSortIDs(ids []int32) {
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		j := i - 1
		for j >= 0 && ids[j] > v {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
}

// insert adds an id-sorted transaction with the given count.
func (t *tree) insert(ids []int32, count int) {
	cur := int32(0)
	for _, id := range ids {
		t.counts[id] += count
		// Find child of cur with this item.
		var found int32 = -1
		for c := t.nodes[cur].child; c != -1; c = t.nodes[c].sibling {
			if t.nodes[c].item == id {
				found = c
				break
			}
		}
		if found == -1 {
			t.nodes = append(t.nodes, node{
				item:    id,
				count:   0,
				parent:  cur,
				child:   -1,
				sibling: t.nodes[cur].child,
				hlink:   t.header[id],
			})
			found = int32(len(t.nodes) - 1)
			t.nodes[cur].child = found
			t.header[id] = found
		}
		t.nodes[found].count += count
		cur = found
	}
}

// singlePath returns the item chain if the tree is a single path, else nil.
// The chain is written into buf to avoid allocating per recursion step.
func (t *tree) singlePath(buf []int32) []int32 {
	path := buf[:0]
	cur := t.nodes[0].child
	for cur != -1 {
		if t.nodes[cur].sibling != -1 {
			return nil
		}
		path = append(path, cur)
		cur = t.nodes[cur].child
	}
	return path
}

func (m *miner) run() {
	t := m.sc.getTree(len(m.vocab))
	for _, txn := range m.initialTxns {
		t.insert(txn, 1)
	}
	// The suffix stack can never exceed the vocabulary size, so one
	// full-capacity buffer serves the whole recursion: append at each
	// level extends in place, never reallocates, and emit copies what it
	// keeps.
	if cap(m.sc.suffix) < len(m.vocab) {
		m.sc.suffix = make([]int32, 0, len(m.vocab)+16)
	}
	m.mine(t, m.sc.suffix[:0])
	m.sc.putTree(t)
}

// emit records a frequent itemset (suffix + extra ids).
func (m *miner) emit(ids []int32, count int) {
	if m.stop {
		return
	}
	cp := make([]int32, len(ids))
	copy(cp, ids)
	m.results = append(m.results, result{items: cp, count: count})
	if m.opts.MaxPatterns > 0 && len(m.results) >= m.opts.MaxPatterns {
		m.stop = true
	}
}

// mine recursively mines the tree with the given suffix (in id space).
func (m *miner) mine(t *tree, suffix []int32) {
	if m.stop {
		return
	}
	// Single-path shortcut: every combination of path nodes, joined with
	// the suffix, is frequent with the minimum count along the selection.
	if cap(m.sc.pathBuf) < len(t.nodes) {
		m.sc.pathBuf = make([]int32, len(t.nodes)+16)
	}
	if path := t.singlePath(m.sc.pathBuf); path != nil {
		m.emitPathCombos(t, path, suffix)
		return
	}

	// General case: process header items from least to most frequent
	// (highest id first, since ids are in f-list order).
	for id := int32(len(m.vocab)) - 1; id >= 0; id-- {
		if m.stop {
			return
		}
		if t.counts[id] < m.minCount {
			continue
		}
		newSuffix := append(suffix, id)
		m.emit(newSuffix, t.counts[id])
		if m.opts.MaxLen > 0 && len(newSuffix) >= m.opts.MaxLen {
			newSuffix = newSuffix[:len(newSuffix)-1]
			continue
		}

		// Conditional pattern base: prefix paths of every node of id.
		cond := m.sc.getTree(len(m.vocab))
		for n := t.header[id]; n != -1; n = t.nodes[n].hlink {
			cnt := t.nodes[n].count
			prefix := m.sc.prefix[:0]
			for p := t.nodes[n].parent; p > 0; p = t.nodes[p].parent {
				prefix = append(prefix, t.nodes[p].item)
			}
			m.sc.prefix = prefix[:0] // keep grown capacity
			if len(prefix) == 0 {
				continue
			}
			// prefix was collected leaf->root; reverse to root->leaf which
			// is ascending id order.
			for a, b := 0, len(prefix)-1; a < b; a, b = a+1, b-1 {
				prefix[a], prefix[b] = prefix[b], prefix[a]
			}
			cond.insert(prefix, cnt)
		}
		// Only recurse if something is frequent in cond; the pruned
		// rebuild keeps single-path detection and counts exact.
		if condHasFrequent(cond, m.minCount) {
			pruned := m.pruneTree(cond)
			m.mine(pruned, newSuffix)
			m.sc.putTree(pruned)
		}
		m.sc.putTree(cond)
	}
}

func condHasFrequent(t *tree, minCount int) bool {
	for _, c := range t.counts {
		if c >= minCount {
			return true
		}
	}
	return false
}

// pruneTree rebuilds a conditional tree keeping only items frequent within
// it. FP-Growth requires this so that single-path detection and counts stay
// exact. The rebuilt tree comes from the recycled pool; the keep mask and
// path buffer are run-level scratch (dead before any recursion).
func (m *miner) pruneTree(t *tree) *tree {
	numItems := len(m.vocab)
	if cap(m.sc.keep) < numItems {
		m.sc.keep = make([]bool, numItems)
	}
	keep := m.sc.keep[:numItems]
	any := false
	for id, c := range t.counts {
		keep[id] = c >= m.minCount
		any = any || keep[id]
	}
	out := m.sc.getTree(numItems)
	if !any {
		return out
	}
	// Re-extract transactions: traverse all nodes; each node contributes
	// (node count - sum of child counts) paths ending at that node. The
	// path stack lives in one recycled full-depth buffer: sibling
	// branches overwrite each other's tail and insert copies what it
	// keeps, so the walk never allocates.
	if cap(m.sc.walkBuf) < numItems {
		m.sc.walkBuf = make([]int32, 0, numItems+16)
	}
	var walk func(idx int32, path []int32)
	walk = func(idx int32, path []int32) {
		n := t.nodes[idx]
		if idx != 0 && keep[n.item] {
			path = append(path, n.item)
		}
		childSum := 0
		for c := n.child; c != -1; c = t.nodes[c].sibling {
			childSum += t.nodes[c].count
			walk(c, path)
		}
		if idx != 0 {
			if residual := n.count - childSum; residual > 0 && len(path) > 0 {
				out.insert(path, residual)
			}
		}
	}
	walk(0, m.sc.walkBuf[:0])
	return out
}

// emitPathCombos emits every non-empty subset of the single path combined
// with the suffix. Counts are the minimum node count within the subset
// (nodes are nested, so the deepest selected node's count).
func (m *miner) emitPathCombos(t *tree, path []int32, suffix []int32) {
	// Node counts are non-increasing with depth on a single path; truncate
	// at the first infrequent node so no emitted combination falls below
	// the threshold (relevant for the unpruned top-level tree).
	for len(path) > 0 && t.nodes[path[len(path)-1]].count < m.minCount {
		path = path[:len(path)-1]
	}
	if len(path) == 0 {
		return
	}
	n := len(path)
	maxExtra := n
	if m.opts.MaxLen > 0 {
		maxExtra = m.opts.MaxLen - len(suffix)
		if maxExtra <= 0 {
			return
		}
		if maxExtra > n {
			maxExtra = n
		}
	}
	// Enumerate subsets via recursion to respect MaxLen cheaply. chosen
	// grows into a preallocated buffer; emit copies, so siblings safely
	// overwrite each other's tail.
	if cap(m.sc.chosen) < n {
		m.sc.chosen = make([]int32, 0, n+16)
	}
	chosenBuf := m.sc.chosen[:0]
	var rec func(start int, chosen []int32, minCount int)
	rec = func(start int, chosen []int32, minCount int) {
		if m.stop {
			return
		}
		if len(chosen) > 0 {
			// Stage suffix+chosen in the recycled combo buffer; emit
			// copies what it records.
			buf := append(append(m.sc.comboBuf[:0], suffix...), chosen...)
			m.sc.comboBuf = buf[:0]
			m.emit(buf, minCount)
		}
		if len(chosen) >= maxExtra {
			return
		}
		for i := start; i < n; i++ {
			nodeIdx := path[i]
			c := t.nodes[nodeIdx].count
			nm := minCount
			if c < nm || len(chosen) == 0 {
				nm = c
			}
			rec(i+1, append(chosen, t.nodes[nodeIdx].item), nm)
		}
	}
	rec(0, chosenBuf, 1<<62)
}
