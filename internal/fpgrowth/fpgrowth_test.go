package fpgrowth

import (
	"math"
	"math/rand"
	"testing"

	"cuisines/internal/itemset"
)

func txn(names ...string) itemset.Transaction {
	return itemset.Transaction{Items: itemset.FromNames(itemset.Ingredient, names...)}
}

func ds(txns ...itemset.Transaction) *itemset.Dataset {
	return itemset.NewDataset(txns)
}

// patternMap keys pattern string -> count.
func patternMap(ps []itemset.Pattern) map[string]int {
	m := make(map[string]int, len(ps))
	for _, p := range ps {
		m[p.StringPattern()] = p.Count
	}
	return m
}

func TestMineTextbookExample(t *testing.T) {
	// Classic FP-Growth paper example (Han et al. 2000, Table 1),
	// minsup = 3/5.
	d := ds(
		txn("f", "a", "c", "d", "g", "i", "m", "p"),
		txn("a", "b", "c", "f", "l", "m", "o"),
		txn("b", "f", "h", "j", "o"),
		txn("b", "c", "k", "s", "p"),
		txn("a", "f", "c", "e", "l", "p", "m", "n"),
	)
	got := patternMap(Mine(d, 0.6))
	want := map[string]int{
		"f": 4, "c": 4, "a": 3, "b": 3, "m": 3, "p": 3,
		"a+c": 3, "a+f": 3, "c+f": 3, "c+m": 3, "a+m": 3, "f+m": 3, "c+p": 3,
		"a+c+f": 3, "a+c+m": 3, "a+f+m": 3, "c+f+m": 3, "a+c+f+m": 3,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d patterns, want %d\ngot: %v", len(got), len(want), got)
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("pattern %q count = %d, want %d", k, got[k], c)
		}
	}
}

func TestMineEmptyDataset(t *testing.T) {
	if got := Mine(ds(), 0.5); got != nil {
		t.Fatalf("empty dataset mined %v", got)
	}
}

func TestMineSingleTransaction(t *testing.T) {
	got := Mine(ds(txn("a", "b")), 1.0)
	m := patternMap(got)
	if len(m) != 3 || m["a"] != 1 || m["b"] != 1 || m["a+b"] != 1 {
		t.Fatalf("single txn patterns = %v", m)
	}
}

func TestMineSupportBoundary(t *testing.T) {
	// 4 txns; support 0.5 -> minCount 2 exactly.
	d := ds(txn("a", "b"), txn("a"), txn("c"), txn("c"))
	m := patternMap(Mine(d, 0.5))
	if m["a"] != 2 || m["c"] != 2 {
		t.Fatalf("boundary supports wrong: %v", m)
	}
	if _, ok := m["b"]; ok {
		t.Fatal("b (count 1) should not be frequent at 0.5")
	}
	if _, ok := m["a+b"]; ok {
		t.Fatal("a+b should not be frequent")
	}
}

func TestMineSupportValuesAreRelative(t *testing.T) {
	d := ds(txn("a"), txn("a"), txn("a"), txn("b"))
	for _, p := range Mine(d, 0.5) {
		if p.StringPattern() == "a" && math.Abs(p.Support-0.75) > 1e-12 {
			t.Fatalf("support of a = %v", p.Support)
		}
	}
}

func TestMineAbsoluteThreshold(t *testing.T) {
	d := ds(txn("a"), txn("a"), txn("a"), txn("b"), txn("b"))
	m := patternMap(Mine(d, 3)) // absolute count 3
	if _, ok := m["b"]; ok {
		t.Fatal("b has count 2 < 3")
	}
	if m["a"] != 3 {
		t.Fatalf("a count = %d", m["a"])
	}
}

func TestMaxLenOption(t *testing.T) {
	d := ds(txn("a", "b", "c"), txn("a", "b", "c"))
	ps := MineWithOptions(d, 0.5, Options{MaxLen: 2})
	for _, p := range ps {
		if p.Items.Len() > 2 {
			t.Fatalf("pattern %v exceeds MaxLen", p)
		}
	}
	m := patternMap(ps)
	if len(m) != 6 { // a, b, c, ab, ac, bc
		t.Fatalf("got %d patterns: %v", len(m), m)
	}
}

func TestMaxPatternsOption(t *testing.T) {
	d := ds(txn("a", "b", "c", "d"), txn("a", "b", "c", "d"))
	ps := MineWithOptions(d, 0.5, Options{MaxPatterns: 5})
	if len(ps) != 5 {
		t.Fatalf("MaxPatterns ignored: %d", len(ps))
	}
}

func TestSinglePathDeepCounts(t *testing.T) {
	// Forces a single-path tree where deeper nodes are infrequent.
	d := ds(txn("a"), txn("a"), txn("a"), txn("a", "b"))
	m := patternMap(Mine(d, 0.5))
	if len(m) != 1 || m["a"] != 4 {
		t.Fatalf("patterns = %v", m)
	}
}

func TestDuplicateItemsInTransaction(t *testing.T) {
	// NewSet dedupes, so {a, a} counts a once.
	tr := itemset.Transaction{Items: itemset.NewSet(
		itemset.NewItem("a", itemset.Ingredient),
		itemset.NewItem("a", itemset.Ingredient),
	)}
	m := patternMap(Mine(ds(tr, tr), 1.0))
	if m["a"] != 2 || len(m) != 1 {
		t.Fatalf("patterns = %v", m)
	}
}

func TestMixedKindsMinedTogether(t *testing.T) {
	// Sec. V.A: ingredients, processes and utensils concatenated.
	tr := itemset.Transaction{Items: itemset.NewSet(
		itemset.NewItem("soy sauce", itemset.Ingredient),
		itemset.NewItem("heat", itemset.Process),
		itemset.NewItem("wok", itemset.Utensil),
	)}
	m := patternMap(Mine(ds(tr, tr), 1.0))
	if m["heat+soy sauce+wok"] != 2 {
		t.Fatalf("mixed-kind pattern missing: %v", m)
	}
}

// bruteForce mines by explicit subset enumeration over observed itemsets —
// the oracle for the property test.
func bruteForce(d *itemset.Dataset, minSupport float64) map[string]int {
	minCount := d.MinCount(minSupport)
	// Enumerate candidate sets: all subsets of each transaction (small
	// transactions only).
	seen := make(map[string]itemset.Set)
	for _, t := range d.Transactions() {
		items := t.Items.Items()
		n := len(items)
		for mask := 1; mask < 1<<n; mask++ {
			var sub []itemset.Item
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					sub = append(sub, items[b])
				}
			}
			s := itemset.NewSet(sub...)
			seen[s.Key()] = s
		}
	}
	out := make(map[string]int)
	for _, s := range seen {
		if c := d.SupportCount(s); c >= minCount {
			out[itemset.StringPattern(s)] = c
		}
	}
	return out
}

func randomDataset(r *rand.Rand, nTxn, alphabet, maxLen int) *itemset.Dataset {
	txns := make([]itemset.Transaction, nTxn)
	for i := range txns {
		n := 1 + r.Intn(maxLen)
		var items []itemset.Item
		for j := 0; j < n; j++ {
			items = append(items, itemset.NewItem(string(rune('a'+r.Intn(alphabet))), itemset.Ingredient))
		}
		txns[i] = itemset.Transaction{Items: itemset.NewSet(items...)}
	}
	return ds(txns...)
}

func TestMineMatchesBruteForceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		d := randomDataset(r, 5+r.Intn(20), 6, 5)
		sup := []float64{0.2, 0.3, 0.5}[r.Intn(3)]
		got := patternMap(Mine(d, sup))
		want := bruteForce(d, sup)
		if len(got) != len(want) {
			t.Fatalf("trial %d sup %v: %d patterns, oracle %d\ngot %v\nwant %v",
				trial, sup, len(got), len(want), got, want)
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("trial %d: pattern %q count %d, oracle %d", trial, k, got[k], c)
			}
		}
	}
}

func TestMineAntiMonotoneProperty(t *testing.T) {
	// Every subset of a mined pattern must also be mined, with >= count.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		d := randomDataset(r, 20, 5, 6)
		ps := Mine(d, 0.25)
		m := patternMap(ps)
		for _, p := range ps {
			items := p.Items.Items()
			for skip := range items {
				var sub []itemset.Item
				for i, it := range items {
					if i != skip {
						sub = append(sub, it)
					}
				}
				if len(sub) == 0 {
					continue
				}
				key := itemset.StringPattern(itemset.NewSet(sub...))
				c, ok := m[key]
				if !ok {
					t.Fatalf("subset %q of %q missing", key, p.StringPattern())
				}
				if c < p.Count {
					t.Fatalf("subset %q count %d < superset %d", key, c, p.Count)
				}
			}
		}
	}
}

// TestSteadyStateAllocations is the regression guard on the pooled
// conditional-tree machinery: with a warm sync.Pool a mining run may
// allocate its output (result id copies plus pattern construction, ~9
// allocations per pattern) but nothing proportional to the conditional
// trees built or tree nodes walked. The pre-pooling implementation sat
// at ~26 allocs per pattern on this fixture — a fresh tree, header
// table and walk path per conditional base — so the bound catches any
// of those coming back.
func TestSteadyStateAllocations(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	txns := make([]itemset.Transaction, 1500)
	for i := range txns {
		var items []itemset.Item
		for j := 0; j < 14; j++ {
			if r.Float64() < 0.4 {
				items = append(items, itemset.NewItem(string(rune('a'+j)), itemset.Ingredient))
			}
		}
		txns[i] = itemset.Transaction{Items: itemset.NewSet(items...)}
	}
	ix := itemset.NewIndex(itemset.NewDataset(txns))
	patterns := MineIndex(ix, 0.1)
	if len(patterns) == 0 {
		t.Fatal("fixture mined no patterns")
	}
	MineIndex(ix, 0.1) // warm the scratch pool
	allocs := testing.AllocsPerRun(10, func() { MineIndex(ix, 0.1) })
	// Measured steady state: ~9.0 allocs/pattern (Go 1.24), with ~20%
	// headroom for toolchain drift.
	if maxAllocs := 11*float64(len(patterns)) + 50; allocs > maxAllocs {
		t.Errorf("steady-state mine: %.0f allocs for %d patterns, want <= %.0f — conditional-tree scratch is leaking out of the pool",
			allocs, len(patterns), maxAllocs)
	}
}
