package geo

import (
	"math"
	"sort"
	"testing"
)

func TestRegionsSortedAndComplete(t *testing.T) {
	rs := Regions()
	if len(rs) != 26 {
		t.Fatalf("expected 26 regions, got %d", len(rs))
	}
	if !sort.SliceIsSorted(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name }) {
		t.Fatal("regions not sorted")
	}
	seen := make(map[string]bool)
	for _, r := range rs {
		if seen[r.Name] {
			t.Fatalf("duplicate region %s", r.Name)
		}
		seen[r.Name] = true
		if r.Lat < -90 || r.Lat > 90 || r.Lon < -180 || r.Lon > 180 {
			t.Fatalf("coordinates out of range: %+v", r)
		}
	}
}

func TestLookup(t *testing.T) {
	r, err := Lookup("Japanese")
	if err != nil || r.Lat < 30 || r.Lat > 40 {
		t.Fatalf("lookup Japanese = %+v, %v", r, err)
	}
	if _, err := Lookup("Atlantis"); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	uk, _ := Lookup("UK")
	fr, _ := Lookup("French")
	jp, _ := Lookup("Japanese")
	// UK-France centroids: under 1000 km.
	if d := Haversine(uk, fr); d < 400 || d > 1100 {
		t.Fatalf("UK-France = %v km", d)
	}
	// UK-Japan: roughly 9000-10000 km.
	if d := Haversine(uk, jp); d < 8500 || d > 10500 {
		t.Fatalf("UK-Japan = %v km", d)
	}
}

func TestHaversineAxioms(t *testing.T) {
	rs := Regions()
	for _, a := range rs {
		if Haversine(a, a) != 0 {
			t.Fatalf("self distance nonzero for %s", a.Name)
		}
		for _, b := range rs {
			d1, d2 := Haversine(a, b), Haversine(b, a)
			if math.Abs(d1-d2) > 1e-9 {
				t.Fatalf("asymmetric %s-%s", a.Name, b.Name)
			}
			if d1 < 0 || d1 > math.Pi*EarthRadiusKm+1 {
				t.Fatalf("out of range: %v", d1)
			}
		}
	}
}

func TestHaversineTriangle(t *testing.T) {
	rs := Regions()
	for i := 0; i < len(rs); i += 3 {
		for j := 1; j < len(rs); j += 5 {
			for k := 2; k < len(rs); k += 7 {
				a, b, c := rs[i], rs[j], rs[k]
				if Haversine(a, c) > Haversine(a, b)+Haversine(b, c)+1e-6 {
					t.Fatalf("triangle violated %s %s %s", a.Name, b.Name, c.Name)
				}
			}
		}
	}
}

func TestDistanceMatrix(t *testing.T) {
	names := []string{"UK", "French", "Japanese"}
	c, err := DistanceMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 {
		t.Fatalf("n = %d", c.N())
	}
	uk, _ := Lookup("UK")
	fr, _ := Lookup("French")
	if math.Abs(c.At(0, 1)-Haversine(uk, fr)) > 1e-9 {
		t.Fatal("matrix entry mismatch")
	}
	if _, err := DistanceMatrix([]string{"Narnia"}); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestGeographicNeighborsCloser(t *testing.T) {
	// Sanity anchors for the Fig. 6 tree: neighbours beat distant pairs.
	pairsCloser := [][2]string{{"UK", "Irish"}, {"Thai", "Southeast Asian"}, {"Korean", "Japanese"}}
	pairsFarther := [][2]string{{"UK", "Australian"}, {"Thai", "Mexican"}, {"Korean", "South American"}}
	for i := range pairsCloser {
		a1, _ := Lookup(pairsCloser[i][0])
		b1, _ := Lookup(pairsCloser[i][1])
		a2, _ := Lookup(pairsFarther[i][0])
		b2, _ := Lookup(pairsFarther[i][1])
		if Haversine(a1, b1) >= Haversine(a2, b2) {
			t.Fatalf("%v should be closer than %v", pairsCloser[i], pairsFarther[i])
		}
	}
}
