// Package geo provides the geographical substrate for the paper's
// validation (Sec. VII, Fig. 6): representative centroid coordinates for
// the 26 RecipeDB regions, great-circle distances between them, and the
// geographic distance matrix that the validation tree is clustered from.
//
// The paper does not publish its coordinates; only relative distances
// matter for the tree's shape, so standard region centroids are used.
package geo

import (
	"fmt"
	"math"
	"sort"

	"cuisines/internal/distance"
)

// Region is a named point on the globe.
type Region struct {
	Name string
	// Lat and Lon are in degrees, positive north/east.
	Lat, Lon float64
}

// regionTable holds representative centroids for the 26 Table I regions.
var regionTable = []Region{
	{"Australian", -25.3, 133.8},
	{"Belgian", 50.6, 4.5},
	{"Canadian", 56.1, -106.3},
	{"Caribbean", 18.2, -66.4},
	{"Central American", 12.8, -85.0},
	{"Chinese and Mongolian", 38.0, 104.2},
	{"Deutschland", 51.2, 10.4},
	{"Eastern European", 50.0, 25.0},
	{"French", 46.6, 2.4},
	{"Greek", 39.1, 22.0},
	{"Indian Subcontinent", 21.0, 78.0},
	{"Irish", 53.4, -8.2},
	{"Italian", 42.8, 12.8},
	{"Japanese", 36.2, 138.3},
	{"Korean", 36.5, 127.8},
	{"Mexican", 23.6, -102.6},
	{"Middle Eastern", 29.3, 45.0},
	{"Northern Africa", 28.0, 10.0},
	{"Rest Africa", 2.0, 21.0},
	{"Scandinavian", 62.0, 15.0},
	{"South American", -14.0, -60.0},
	{"Southeast Asian", 5.0, 110.0},
	{"Spanish and Portuguese", 40.0, -4.0},
	{"Thai", 15.0, 101.0},
	{"UK", 54.0, -2.5},
	{"US", 39.8, -98.6},
}

// Regions returns all known regions sorted by name.
func Regions() []Region {
	out := make([]Region, len(regionTable))
	copy(out, regionTable)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegionNames returns the sorted region names.
func RegionNames() []string {
	rs := Regions()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	return names
}

// Lookup returns the region with the given name.
func Lookup(name string) (Region, error) {
	for _, r := range regionTable {
		if r.Name == name {
			return r, nil
		}
	}
	return Region{}, fmt.Errorf("geo: unknown region %q", name)
}

// EarthRadiusKm is the mean Earth radius used by Haversine.
const EarthRadiusKm = 6371.0

// Haversine returns the great-circle distance between two regions in
// kilometres.
func Haversine(a, b Region) float64 {
	const deg = math.Pi / 180
	lat1, lon1 := a.Lat*deg, a.Lon*deg
	lat2, lon2 := b.Lat*deg, b.Lon*deg
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := sin2(dLat/2) + math.Cos(lat1)*math.Cos(lat2)*sin2(dLon/2)
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

func sin2(x float64) float64 {
	s := math.Sin(x)
	return s * s
}

// DistanceMatrix returns the condensed pairwise great-circle distance
// matrix over the named regions, in the given order. Unknown names error.
func DistanceMatrix(names []string) (*distance.Condensed, error) {
	rs := make([]Region, len(names))
	for i, n := range names {
		r, err := Lookup(n)
		if err != nil {
			return nil, err
		}
		rs[i] = r
	}
	c := distance.NewCondensed(len(rs))
	for i := range rs {
		for j := i + 1; j < len(rs); j++ {
			c.Set(i, j, Haversine(rs[i], rs[j]))
		}
	}
	return c, nil
}
