package flavor

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cuisines/internal/itemset"
	"cuisines/internal/recipedb"
	"cuisines/internal/rng"
)

// PairingResult is one cuisine's food-pairing statistic.
type PairingResult struct {
	Region string
	// CoOccurring is the mean shared-compound count over ingredient pairs
	// that appear together in recipes.
	CoOccurring float64
	// Random is the same mean over frequency-matched random pairs — the
	// null expectation.
	Random float64
	// DeltaNs = CoOccurring - Random (Ahn et al.'s ΔN_s). Positive:
	// the cuisine pairs compound-sharing ingredients; negative: it pairs
	// chemically contrasting ones.
	DeltaNs float64
	// Pairs is the number of co-occurring pairs measured.
	Pairs int
}

// AnalyzeCuisine computes ΔN_s for one cuisine's recipes.
func AnalyzeCuisine(region string, recipes []*recipedb.Recipe, t *Table, seed uint64) PairingResult {
	res := PairingResult{Region: region}
	if len(recipes) == 0 {
		return res
	}

	// Co-occurring pairs: all ingredient pairs within each recipe,
	// capped per recipe to bound the quadratic term on rich recipes.
	const maxPairsPerRecipe = 60
	var sumCo float64
	var nCo int
	var occurrences []string // frequency-weighted pool for the null
	r := rng.New(seed ^ hash(region))
	for _, rec := range recipes {
		ings := rec.IngredientSet().Names()
		occurrences = append(occurrences, ings...)
		pairs := 0
		for i := 0; i < len(ings) && pairs < maxPairsPerRecipe; i++ {
			for j := i + 1; j < len(ings) && pairs < maxPairsPerRecipe; j++ {
				sumCo += float64(t.Shared(ings[i], ings[j]))
				nCo++
				pairs++
			}
		}
	}
	if nCo == 0 || len(occurrences) < 2 {
		return res
	}
	res.CoOccurring = sumCo / float64(nCo)
	res.Pairs = nCo

	// Null: random ingredient pairs drawn from the occurrence pool
	// (frequency-matched, as in Ahn et al.), same sample size.
	var sumRand float64
	nRand := nCo
	if nRand > 200_000 {
		nRand = 200_000
	}
	for k := 0; k < nRand; k++ {
		a := occurrences[r.Intn(len(occurrences))]
		b := occurrences[r.Intn(len(occurrences))]
		for b == a {
			b = occurrences[r.Intn(len(occurrences))]
		}
		sumRand += float64(t.Shared(a, b))
	}
	res.Random = sumRand / float64(nRand)
	res.DeltaNs = res.CoOccurring - res.Random
	return res
}

// AnalyzeDB computes ΔN_s for every cuisine in the database, using a
// table synthesized over the database's ingredient vocabulary.
func AnalyzeDB(db *recipedb.DB, seed uint64) []PairingResult {
	// Vocabulary: every canonical ingredient name.
	seen := make(map[string]bool)
	var vocab []string
	for i := 0; i < db.Len(); i++ {
		for _, n := range db.Recipe(i).Ingredients {
			c := itemset.CanonicalName(n)
			if !seen[c] {
				seen[c] = true
				vocab = append(vocab, c)
			}
		}
	}
	t := NewTable(vocab)
	out := make([]PairingResult, 0, db.NumRegions())
	for _, region := range db.Regions() {
		out = append(out, AnalyzeCuisine(region, db.RegionRecipes(region), t, seed))
	}
	return out
}

// RenderPairing writes the per-cuisine pairing table.
func RenderPairing(w io.Writer, rows []PairingResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Region\tco-occurring\trandom\tdelta N_s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%+.3f\n", r.Region, r.CoOccurring, r.Random, r.DeltaNs)
	}
	return tw.Flush()
}
