package flavor

import (
	"strings"
	"testing"

	"cuisines/internal/recipedb"
)

func TestCategoryOf(t *testing.T) {
	cases := map[string]Category{
		"cumin":              CatSpice,
		"garam masala":       CatSpice,
		"Sichuan Peppercorn": CatSpice,
		"basil":              CatHerb,
		"butter":             CatDairy,
		"cheddar cheese":     CatDairy,
		"ground beef":        CatMeat,
		"smoked salmon":      CatSeafood,
		"lime":               CatFruit,
		"onion":              CatVegetable,
		"basmati rice":       CatGrain,
		"maple syrup":        CatSweet,
		"olive oil":          CatFat,
		"soy sauce":          CatSauce,
		"wattleseed":         CatOther,
	}
	for name, want := range cases {
		if got := CategoryOf(name); got != want {
			t.Errorf("CategoryOf(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestTableDeterministic(t *testing.T) {
	a := NewTable([]string{"cumin", "butter"})
	b := NewTable([]string{"butter", "cumin", "onion"})
	ca, cb := a.Compounds("cumin"), b.Compounds("cumin")
	if len(ca) != len(cb) {
		t.Fatal("compound sets differ across tables")
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("compound sets differ across tables")
		}
	}
}

func TestCompoundsSortedUnique(t *testing.T) {
	tb := NewTable(nil)
	for _, name := range []string{"cumin", "butter", "soy sauce", "mystery item"} {
		ids := tb.Compounds(name)
		if len(ids) == 0 {
			t.Fatalf("%s has no compounds", name)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("%s compounds not sorted/unique", name)
			}
		}
	}
}

func TestSharedSymmetricAndSelf(t *testing.T) {
	tb := NewTable(nil)
	if tb.Shared("butter", "cream") != tb.Shared("cream", "butter") {
		t.Fatal("Shared asymmetric")
	}
	if tb.Shared("butter", "butter") != len(tb.Compounds("butter")) {
		t.Fatal("self sharing should equal compound count")
	}
}

func TestChemistryShape(t *testing.T) {
	tb := NewTable(nil)
	// Dairy pairs share much more than spice pairs (distinctive spice
	// chemistry).
	dairy := tb.Shared("butter", "cream")
	spice := tb.Shared("cumin", "coriander")
	if dairy <= spice+2 {
		t.Fatalf("dairy sharing (%d) should far exceed spice sharing (%d)", dairy, spice)
	}
	// Western affinity pool connects across categories.
	crossWestern := tb.Shared("butter", "maple syrup")
	crossOther := tb.Shared("cumin", "fish sauce")
	if crossWestern <= crossOther {
		t.Fatalf("western cross-category sharing (%d) should exceed unrelated (%d)", crossWestern, crossOther)
	}
}

func mustDB(t *testing.T, rs []recipedb.Recipe) *recipedb.DB {
	t.Helper()
	db, err := recipedb.New(rs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAnalyzeCuisineSigns(t *testing.T) {
	// A "western" cuisine bundling compound-sharing dairy items and a
	// "spice" cuisine bundling distinctive spices. The dairy cuisine must
	// score a higher (positive) delta than the spice one.
	var recipes []recipedb.Recipe
	for i := 0; i < 60; i++ {
		recipes = append(recipes, recipedb.Recipe{
			ID: idOf("w", i), Region: "West",
			Ingredients: []string{"butter", "cream", "flour"},
		})
		recipes = append(recipes, recipedb.Recipe{
			ID: idOf("s", i), Region: "Spicy",
			Ingredients: []string{"cumin", "coriander", "turmeric"},
		})
		// Background singles so the random baseline has variety.
		recipes = append(recipes, recipedb.Recipe{
			ID: idOf("wx", i), Region: "West",
			Ingredients: []string{pick(i, "onion", "apple", "oats", "bacon")},
		})
		recipes = append(recipes, recipedb.Recipe{
			ID: idOf("sx", i), Region: "Spicy",
			Ingredients: []string{pick(i, "onion", "lentil", "rice", "tomato")},
		})
	}
	db := mustDB(t, recipes)
	results := AnalyzeDB(db, 7)
	byRegion := map[string]PairingResult{}
	for _, r := range results {
		byRegion[r.Region] = r
	}
	west, spicy := byRegion["West"], byRegion["Spicy"]
	if west.Pairs == 0 || spicy.Pairs == 0 {
		t.Fatalf("no pairs measured: %+v %+v", west, spicy)
	}
	if west.DeltaNs <= spicy.DeltaNs {
		t.Fatalf("west delta %.3f should exceed spicy delta %.3f", west.DeltaNs, spicy.DeltaNs)
	}
	if west.DeltaNs <= 0 {
		t.Fatalf("dairy-bundled cuisine should be compound-positive: %+v", west)
	}
}

func idOf(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func pick(i int, xs ...string) string { return xs[i%len(xs)] }

func TestAnalyzeCuisineEmpty(t *testing.T) {
	res := AnalyzeCuisine("X", nil, NewTable(nil), 1)
	if res.Pairs != 0 || res.DeltaNs != 0 {
		t.Fatalf("empty cuisine result: %+v", res)
	}
}

func TestRenderPairing(t *testing.T) {
	var b strings.Builder
	err := RenderPairing(&b, []PairingResult{{Region: "X", CoOccurring: 1, Random: 0.5, DeltaNs: 0.5}})
	if err != nil || !strings.Contains(b.String(), "delta N_s") {
		t.Fatalf("render: %q err %v", b.String(), err)
	}
}

func TestCategoryString(t *testing.T) {
	if CatSpice.String() != "spice" || CatOther.String() != "other" {
		t.Fatal("category names wrong")
	}
}
