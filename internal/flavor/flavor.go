// Package flavor implements the flavor-compound substrate behind the
// paper's intellectual lineage: Ahn et al.'s flavor network (reference
// [2], the source of the authenticity metric) and the food-pairing
// analyses of Jain et al. [8] and Singh & Bagler [12]. An ingredient is
// modeled as a set of flavor compounds; the food-pairing statistic of a
// cuisine is the mean number of compounds shared by co-occurring
// ingredient pairs, minus the same mean over frequency-matched random
// pairs (Ahn's ΔN_s). Positive ΔN_s means the cuisine combines
// compound-sharing ingredients (the Western pattern); negative means it
// deliberately pairs ingredients with distinct chemistry (the pattern
// Jain et al. report for Indian cuisine, where "spices form the basis of
// their food pairing").
//
// The compound table is synthetic but chemically shaped: every ingredient
// receives a deterministic compound set whose overlap structure encodes
// the empirical regularities the literature reports — dairy/baked-sweet
// ingredients share large compound vocabularies, spices carry mostly
// distinctive compounds, and the Western comfort pantry has a broad
// shared aroma base. See DESIGN.md §2 for the substitution rationale.
package flavor

import (
	"sort"
	"strings"

	"cuisines/internal/itemset"
	"cuisines/internal/rng"
)

// CompoundID identifies one flavor compound.
type CompoundID uint32

// Category is a coarse chemical family of an ingredient.
type Category int

const (
	CatSpice Category = iota
	CatHerb
	CatDairy
	CatMeat
	CatSeafood
	CatFruit
	CatVegetable
	CatGrain
	CatSweet
	CatFat
	CatSauce
	CatOther
	numCategories
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatSpice:
		return "spice"
	case CatHerb:
		return "herb"
	case CatDairy:
		return "dairy"
	case CatMeat:
		return "meat"
	case CatSeafood:
		return "seafood"
	case CatFruit:
		return "fruit"
	case CatVegetable:
		return "vegetable"
	case CatGrain:
		return "grain"
	case CatSweet:
		return "sweet"
	case CatFat:
		return "fat"
	case CatSauce:
		return "sauce"
	default:
		return "other"
	}
}

// categoryKeywords maps name substrings to categories; first match wins,
// longer/more specific keywords are checked first within a category scan.
var categoryKeywords = []struct {
	kw  string
	cat Category
}{
	{"cumin", CatSpice}, {"coriander", CatSpice}, {"turmeric", CatSpice},
	{"cardamom", CatSpice}, {"clove", CatSpice}, {"cinnamon", CatSpice},
	{"pepper", CatSpice}, {"chili", CatSpice}, {"chilli", CatSpice},
	{"paprika", CatSpice}, {"saffron", CatSpice}, {"fenugreek", CatSpice},
	{"nigella", CatSpice}, {"anise", CatSpice}, {"mace", CatSpice},
	{"nutmeg", CatSpice}, {"caraway", CatSpice}, {"mustard seed", CatSpice},
	{"allspice", CatSpice}, {"sumac", CatSpice}, {"za'atar", CatSpice},
	{"garam masala", CatSpice}, {"ras el hanout", CatSpice}, {"berbere", CatSpice},
	{"five spice", CatSpice}, {"curry powder", CatSpice}, {"ginger", CatSpice},
	{"spice", CatSpice}, {"masala", CatSpice}, {"poppy seed", CatSpice},
	{"fennel seed", CatSpice}, {"sesame seed", CatSpice}, {"long pepper", CatSpice},

	{"basil", CatHerb}, {"oregano", CatHerb}, {"thyme", CatHerb},
	{"rosemary", CatHerb}, {"parsley", CatHerb}, {"cilantro", CatHerb},
	{"mint", CatHerb}, {"dill", CatHerb}, {"sage", CatHerb},
	{"tarragon", CatHerb}, {"marjoram", CatHerb}, {"chive", CatHerb},
	{"bay leaf", CatHerb}, {"curry leaf", CatHerb}, {"lemongrass", CatHerb},
	{"kaffir lime leaf", CatHerb}, {"pandan", CatHerb}, {"shiso", CatHerb},
	{"epazote", CatHerb}, {"herb", CatHerb},

	{"butter", CatDairy}, {"cream", CatDairy}, {"cheese", CatDairy},
	{"milk", CatDairy}, {"yogurt", CatDairy}, {"curd", CatDairy},
	{"quark", CatDairy}, {"ghee", CatDairy}, {"paneer", CatDairy},
	{"mascarpone", CatDairy}, {"ricotta", CatDairy}, {"mozzarella", CatDairy},
	{"feta", CatDairy}, {"gruyere", CatDairy}, {"stilton", CatDairy},
	{"gorgonzola", CatDairy}, {"manchego", CatDairy}, {"brie", CatDairy},
	{"crema", CatDairy}, {"buttermilk", CatDairy},

	{"beef", CatMeat}, {"pork", CatMeat}, {"lamb", CatMeat},
	{"chicken", CatMeat}, {"bacon", CatMeat}, {"ham", CatMeat},
	{"sausage", CatMeat}, {"veal", CatMeat}, {"chorizo", CatMeat},
	{"prosciutto", CatMeat}, {"pancetta", CatMeat}, {"kielbasa", CatMeat},
	{"merguez", CatMeat}, {"andouille", CatMeat}, {"lardon", CatMeat},
	{"pudding", CatMeat}, {"short rib", CatMeat}, {"mincemeat", CatMeat},

	{"fish", CatSeafood}, {"shrimp", CatSeafood}, {"prawn", CatSeafood},
	{"anchovy", CatSeafood}, {"salmon", CatSeafood}, {"herring", CatSeafood},
	{"mussels", CatSeafood}, {"clams", CatSeafood}, {"salt cod", CatSeafood},
	{"bonito", CatSeafood}, {"katsuobushi", CatSeafood}, {"crab", CatSeafood},
	{"oyster", CatSeafood}, {"bacalhau", CatSeafood}, {"dashi", CatSeafood},

	{"lemon", CatFruit}, {"lime", CatFruit}, {"orange", CatFruit},
	{"apple", CatFruit}, {"cranberry", CatFruit}, {"raisin", CatFruit},
	{"date", CatFruit}, {"apricot", CatFruit}, {"passionfruit", CatFruit},
	{"berry", CatFruit}, {"cherry", CatFruit}, {"mango", CatFruit},
	{"papaya", CatFruit}, {"melon", CatFruit}, {"fig", CatFruit},
	{"pomegranate", CatFruit}, {"tamarind", CatFruit}, {"yuzu", CatFruit},
	{"currant", CatFruit}, {"plantain", CatFruit}, {"coconut", CatFruit},
	{"avocado", CatFruit}, {"olives", CatFruit}, {"preserved lemon", CatFruit},

	{"onion", CatVegetable}, {"garlic", CatVegetable}, {"tomato", CatVegetable},
	{"potato", CatVegetable}, {"carrot", CatVegetable}, {"celery", CatVegetable},
	{"cabbage", CatVegetable}, {"leek", CatVegetable}, {"shallot", CatVegetable},
	{"beet", CatVegetable}, {"cucumber", CatVegetable}, {"eggplant", CatVegetable},
	{"zucchini", CatVegetable}, {"okra", CatVegetable}, {"mushroom", CatVegetable},
	{"pea", CatVegetable}, {"bean", CatVegetable}, {"lentil", CatVegetable},
	{"chickpea", CatVegetable}, {"corn", CatVegetable}, {"pumpkin", CatVegetable},
	{"radish", CatVegetable}, {"turnip", CatVegetable}, {"parsnip", CatVegetable},
	{"spinach", CatVegetable}, {"artichoke", CatVegetable}, {"asparagus", CatVegetable},
	{"yam", CatVegetable}, {"cassava", CatVegetable}, {"yuca", CatVegetable},
	{"bamboo", CatVegetable}, {"daikon", CatVegetable}, {"sprout", CatVegetable},
	{"chestnut", CatVegetable}, {"tofu", CatVegetable}, {"seaweed", CatVegetable},
	{"kimchi", CatVegetable}, {"sauerkraut", CatVegetable}, {"pickle", CatVegetable},
	{"greens", CatVegetable}, {"chayote", CatVegetable}, {"tomatillo", CatVegetable},

	{"rice", CatGrain}, {"flour", CatGrain}, {"bread", CatGrain},
	{"pasta", CatGrain}, {"noodle", CatGrain}, {"oats", CatGrain},
	{"barley", CatGrain}, {"quinoa", CatGrain}, {"couscous", CatGrain},
	{"bulgur", CatGrain}, {"semolina", CatGrain}, {"masa", CatGrain},
	{"tortilla", CatGrain}, {"polenta", CatGrain}, {"millet", CatGrain},
	{"sorghum", CatGrain}, {"buckwheat", CatGrain}, {"panko", CatGrain},
	{"pastry", CatGrain}, {"scone", CatGrain}, {"pretzel", CatGrain},
	{"dumpling", CatGrain}, {"waffle", CatGrain}, {"cornbread", CatGrain},
	{"bun", CatGrain}, {"naan", CatGrain}, {"injera", CatGrain},
	{"crispbread", CatGrain}, {"spaetzle", CatGrain}, {"frites", CatGrain},

	{"sugar", CatSweet}, {"honey", CatSweet}, {"syrup", CatSweet},
	{"jam", CatSweet}, {"chocolate", CatSweet}, {"vanilla", CatSweet},
	{"caramel", CatSweet}, {"jaggery", CatSweet}, {"molasses", CatSweet},
	{"dulce de leche", CatSweet}, {"marzipan", CatSweet}, {"speculoos", CatSweet},
	{"matcha", CatSweet}, {"amaretti", CatSweet}, {"membrillo", CatSweet},

	{"oil", CatFat}, {"fat", CatFat}, {"mayonnaise", CatFat},

	{"soy sauce", CatSauce}, {"fish sauce", CatSauce}, {"oyster sauce", CatSauce},
	{"hoisin", CatSauce}, {"miso", CatSauce}, {"doenjang", CatSauce},
	{"gochujang", CatSauce}, {"harissa", CatSauce}, {"tahini", CatSauce},
	{"vinegar", CatSauce}, {"mustard", CatSauce}, {"ketchup", CatSauce},
	{"worcestershire", CatSauce}, {"sauce", CatSauce}, {"paste", CatSauce},
	{"mirin", CatSauce}, {"sake", CatSauce}, {"wine", CatSauce},
	{"beer", CatSauce}, {"stout", CatSauce}, {"ale", CatSauce},
	{"rum", CatSauce}, {"cognac", CatSauce}, {"brandy", CatSauce},
	{"ponzu", CatSauce}, {"mentsuyu", CatSauce}, {"chimichurri", CatSauce},
}

// CategoryOf classifies an ingredient name.
func CategoryOf(name string) Category {
	c := itemset.CanonicalName(name)
	for _, k := range categoryKeywords {
		if strings.Contains(c, k.kw) {
			return k.cat
		}
	}
	return CatOther
}

// category overlap parameters: pool size and the number of compounds an
// ingredient draws from its category pool. Small pools with large draws
// give high intra-category sharing (dairy, sweet, fat); large pools with
// small draws make ingredients chemically distinctive (spices, herbs).
var categoryProfile = map[Category]struct {
	poolSize int
	draw     int
	private  int
}{
	CatSpice:     {poolSize: 400, draw: 3, private: 18},
	CatHerb:      {poolSize: 300, draw: 4, private: 14},
	CatDairy:     {poolSize: 40, draw: 14, private: 6},
	CatMeat:      {poolSize: 60, draw: 10, private: 8},
	CatSeafood:   {poolSize: 60, draw: 10, private: 8},
	CatFruit:     {poolSize: 90, draw: 8, private: 10},
	CatVegetable: {poolSize: 120, draw: 7, private: 10},
	CatGrain:     {poolSize: 50, draw: 10, private: 6},
	CatSweet:     {poolSize: 35, draw: 12, private: 5},
	CatFat:       {poolSize: 30, draw: 10, private: 5},
	CatSauce:     {poolSize: 100, draw: 6, private: 12},
	CatOther:     {poolSize: 500, draw: 3, private: 15},
}

// westernAffinity lists the Western comfort pantry that Ahn et al. found
// to share a broad aroma base across categories; its members draw extra
// compounds from one common pool, making Western cuisines' co-occurring
// pairs compound-positive.
var westernAffinity = map[string]bool{
	"butter": true, "cream": true, "double cream": true, "clotted cream": true,
	"sour cream": true, "creme fraiche": true, "cream cheese": true,
	"buttermilk": true, "milk": true, "cheddar cheese": true,
	"vanilla extract": true, "chocolate chip": true, "golden syrup": true,
	"maple syrup": true, "brown sugar": true, "sugar": true, "honey": true,
	"strawberry jam": true, "scone": true, "shortcrust pastry": true,
	"brandy butter": true, "mincemeat": true, "pecan": true, "peanut butter": true,
	"oats": true, "apple": true, "cranberry": true, "pumpkin": true,
	"self-raising flour": true, "flour": true, "egg": true, "bacon": true,
	"waffle batter": true, "dark chocolate": true, "speculoos spice": true,
}

const (
	// Compound id blocks: category pools are laid out one after another,
	// the western affinity pool after them, private compounds last.
	westernPoolSize = 30
	westernDraw     = 10
)

// Table maps ingredient names to compound sets.
type Table struct {
	compounds map[string][]CompoundID
}

// NewTable synthesizes compound sets for a vocabulary. The synthesis is
// deterministic in the ingredient name alone, so tables built from
// different vocabularies agree on shared names.
func NewTable(vocab []string) *Table {
	t := &Table{compounds: make(map[string][]CompoundID, len(vocab))}
	for _, name := range vocab {
		t.add(name)
	}
	return t
}

func (t *Table) add(raw string) {
	name := itemset.CanonicalName(raw)
	if _, ok := t.compounds[name]; ok {
		return
	}
	cat := CategoryOf(name)
	prof := categoryProfile[cat]
	r := rng.New(0xf1a4c0de ^ hash(name))

	// Category pool block boundaries.
	base := CompoundID(0)
	for c := Category(0); c < cat; c++ {
		base += CompoundID(categoryProfile[c].poolSize)
	}
	var totalPools CompoundID
	for c := Category(0); c < numCategories; c++ {
		totalPools += CompoundID(categoryProfile[c].poolSize)
	}

	seen := make(map[CompoundID]bool, prof.draw+prof.private+westernDraw)
	var out []CompoundID
	put := func(id CompoundID) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, idx := range r.SampleDistinct(prof.poolSize, prof.draw) {
		put(base + CompoundID(idx))
	}
	if westernAffinity[name] {
		for _, idx := range r.SampleDistinct(westernPoolSize, westernDraw) {
			put(totalPools + CompoundID(idx))
		}
	}
	// Private compounds: a block unique to this ingredient, derived from
	// its hash.
	privBase := totalPools + westernPoolSize + CompoundID(hash(name)%1_000_000)*64
	for i := 0; i < prof.private; i++ {
		put(privBase + CompoundID(i))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	t.compounds[name] = out
}

// Compounds returns the compound set of an ingredient, synthesizing it on
// first use for names outside the constructed vocabulary.
func (t *Table) Compounds(name string) []CompoundID {
	c := itemset.CanonicalName(name)
	if ids, ok := t.compounds[c]; ok {
		return ids
	}
	t.add(c)
	return t.compounds[c]
}

// Shared returns the number of compounds two ingredients share.
func (t *Table) Shared(a, b string) int {
	x, y := t.Compounds(a), t.Compounds(b)
	i, j, n := 0, 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] == y[j]:
			n++
			i++
			j++
		case x[i] < y[j]:
			i++
		default:
			j++
		}
	}
	return n
}

func hash(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
