package itemset

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a canonical itemset: items sorted by Item.Less with no
// duplicates. The zero value is the empty set. Construct with NewSet (or
// keep the invariant manually when the input is already canonical).
//
// Sets correspond to Python frozensets in the paper's pipeline; keeping
// them sorted makes equality, hashing (via Key) and subset tests cheap
// without a map allocation per set.
type Set struct {
	items []Item
}

// NewSet builds a canonical set from arbitrary items, de-duplicating and
// sorting.
func NewSet(items ...Item) Set {
	if len(items) == 0 {
		return Set{}
	}
	cp := make([]Item, len(items))
	copy(cp, items)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	out := cp[:1]
	for _, it := range cp[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return Set{items: out}
}

// SetFromSorted wraps items already in canonical order (sorted by
// Item.Less, no duplicates) without copying — the flat artifact codec
// uses it to build pattern sets that subslice one decoded arena. The
// order is verified in O(n); any violation is an error, so a corrupted
// payload surfaces as a decode failure instead of a malformed Set. The
// caller must not modify items afterwards.
func SetFromSorted(items []Item) (Set, error) {
	for i := 1; i < len(items); i++ {
		if !items[i-1].Less(items[i]) {
			return Set{}, fmt.Errorf("itemset: items not in canonical order at %d: %v !< %v", i, items[i-1], items[i])
		}
	}
	if len(items) == 0 {
		return Set{}, nil
	}
	return Set{items: items}, nil
}

// FromNames builds a set of items of one kind from raw names.
func FromNames(kind Kind, names ...string) Set {
	items := make([]Item, 0, len(names))
	for _, n := range names {
		items = append(items, NewItem(n, kind))
	}
	return NewSet(items...)
}

// Len returns the number of items.
func (s Set) Len() int { return len(s.items) }

// Empty reports whether the set has no items.
func (s Set) Empty() bool { return len(s.items) == 0 }

// Items returns the items in canonical order. The returned slice must not
// be modified.
func (s Set) Items() []Item { return s.items }

// At returns the i-th item in canonical order.
func (s Set) At(i int) Item { return s.items[i] }

// Contains reports whether the set contains the item (binary search).
func (s Set) Contains(it Item) bool {
	i := sort.Search(len(s.items), func(i int) bool { return !s.items[i].Less(it) })
	return i < len(s.items) && s.items[i] == it
}

// ContainsAll reports whether every item of sub is in s, i.e. sub ⊆ s.
// Both sets are sorted, so this is a linear merge.
func (s Set) ContainsAll(sub Set) bool {
	i, j := 0, 0
	for i < len(s.items) && j < len(sub.items) {
		switch {
		case s.items[i] == sub.items[j]:
			i++
			j++
		case s.items[i].Less(sub.items[j]):
			i++
		default:
			return false
		}
	}
	return j == len(sub.items)
}

// Equal reports whether the two sets contain exactly the same items.
func (s Set) Equal(other Set) bool {
	if len(s.items) != len(other.items) {
		return false
	}
	for i := range s.items {
		if s.items[i] != other.items[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ other.
func (s Set) Union(other Set) Set {
	out := make([]Item, 0, len(s.items)+len(other.items))
	i, j := 0, 0
	for i < len(s.items) && j < len(other.items) {
		switch {
		case s.items[i] == other.items[j]:
			out = append(out, s.items[i])
			i++
			j++
		case s.items[i].Less(other.items[j]):
			out = append(out, s.items[i])
			i++
		default:
			out = append(out, other.items[j])
			j++
		}
	}
	out = append(out, s.items[i:]...)
	out = append(out, other.items[j:]...)
	return Set{items: out}
}

// Intersect returns s ∩ other.
func (s Set) Intersect(other Set) Set {
	var out []Item
	i, j := 0, 0
	for i < len(s.items) && j < len(other.items) {
		switch {
		case s.items[i] == other.items[j]:
			out = append(out, s.items[i])
			i++
			j++
		case s.items[i].Less(other.items[j]):
			i++
		default:
			j++
		}
	}
	return Set{items: out}
}

// Diff returns s \ other.
func (s Set) Diff(other Set) Set {
	var out []Item
	i, j := 0, 0
	for i < len(s.items) {
		switch {
		case j >= len(other.items) || s.items[i].Less(other.items[j]):
			out = append(out, s.items[i])
			i++
		case s.items[i] == other.items[j]:
			i++
			j++
		default:
			j++
		}
	}
	return Set{items: out}
}

// Add returns a new set with the item inserted.
func (s Set) Add(it Item) Set {
	if s.Contains(it) {
		return s
	}
	out := make([]Item, 0, len(s.items)+1)
	i := sort.Search(len(s.items), func(i int) bool { return !s.items[i].Less(it) })
	out = append(out, s.items[:i]...)
	out = append(out, it)
	out = append(out, s.items[i:]...)
	return Set{items: out}
}

// Key returns a canonical string key for map usage: item names joined by
// '\x1f' (unit separator, which cannot occur in canonical names). Two sets
// of items with equal names but different kinds produce different keys only
// through ordering; kind is folded in explicitly to be safe.
func (s Set) Key() string {
	if len(s.items) == 0 {
		return ""
	}
	var b strings.Builder
	for i, it := range s.items {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(it.Name)
		b.WriteByte('\x1e')
		b.WriteByte(byte('0') + byte(it.Kind))
	}
	return b.String()
}

// String renders the set as "a + b + c", matching the Table I pattern
// notation.
func (s Set) String() string {
	names := make([]string, len(s.items))
	for i, it := range s.items {
		names[i] = it.Name
	}
	return strings.Join(names, " + ")
}

// Names returns the item names in canonical order.
func (s Set) Names() []string {
	names := make([]string, len(s.items))
	for i, it := range s.items {
		names[i] = it.Name
	}
	return names
}

// Filter returns the subset of items for which keep returns true.
func (s Set) Filter(keep func(Item) bool) Set {
	var out []Item
	for _, it := range s.items {
		if keep(it) {
			out = append(out, it)
		}
	}
	return Set{items: out}
}

// OfKind returns the subset of items of the given kind.
func (s Set) OfKind(k Kind) Set {
	return s.Filter(func(it Item) bool { return it.Kind == k })
}
