package itemset

import (
	"math/bits"
	"sort"
)

// Index is a vertical bitset view of a Dataset: every distinct item maps
// to a bitmap over transaction positions. It is the shared representation
// the mining backends (internal/miner) operate on — built once per
// region, then read concurrently by whichever algorithm is selected:
//
//   - support of an item is a cached popcount,
//   - support of a candidate itemset is an intersection cardinality
//     (Apriori's counting step, replacing per-transaction subset scans),
//   - Eclat intersects the bitmaps directly instead of merging tid lists,
//   - FP-Growth reads the horizontal projection (Txns) to build its tree.
//
// Bitmaps come in two layouts (see bitmap.go): the dense flat []uint64
// of the seed implementation, and roaring-style chunked containers for
// sparse universes. The layout is resolved once per index — by density
// under ModeAuto, or forced via NewIndexMode — and never changes any
// mined output, only the cost of intersections (pinned by the dense/
// chunked equivalence tests in internal/miner, arbitrated by the P6
// benchmark).
//
// Item ids are dense, 0-based and assigned in canonical item order
// (Item.Less), so id comparison is item comparison and id-sorted slices
// are canonically sorted. The Index is immutable after construction and
// safe for concurrent readers.
type Index struct {
	items []Item         // id -> item, canonically sorted
	idOf  map[Item]int32 // item -> id
	bits  [][]uint64     // id -> dense bitmap (words slices of one arena); dense mode only
	bms   []Bitmap       // id -> bitmap view (both modes)
	count []int          // id -> popcount of the item's bitmap
	txns  [][]int32      // transaction -> ascending item ids (slices of one arena)
	words int            // words per dense bitmap
	mode  IndexMode      // resolved ModeDense or ModeChunked
}

// IndexMode selects the bitmap layout of an Index.
type IndexMode int

const (
	// ModeAuto resolves to ModeDense or ModeChunked per index by
	// density (see autoMode).
	ModeAuto IndexMode = iota
	// ModeDense forces the flat []uint64 layout (the seed layout).
	ModeDense
	// ModeChunked forces the roaring-style container layout.
	ModeChunked
)

// String returns the lowercase mode name.
func (m IndexMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeDense:
		return "dense"
	case ModeChunked:
		return "chunked"
	default:
		return "mode(?)"
	}
}

// DefaultIndexMode is the layout NewIndex uses. ModeAuto lets each index
// pick by its own density; the thresholds and this default are
// arbitrated by the P6 miner-backend benchmark (README "Benchmark
// trajectory"), exactly like miner.Default — it is a pure performance
// knob that never changes mined output.
var DefaultIndexMode = ModeAuto

// autoMode resolves ModeAuto for a universe of n transactions holding
// totalBits set bits across numItems item bitmaps. Chunked pays off when
// bitmaps are sparse enough that walking a container's population beats
// scanning every word of a flat bitmap, and the universe is wide enough
// for the per-container bookkeeping to amortize; tiny or dense universes
// stay on the flat layout, which is a plain word loop over a few cache
// lines.
func autoMode(totalBits, numItems, n int) IndexMode {
	if n < 1024 || numItems == 0 {
		return ModeDense
	}
	if float64(totalBits) <= float64(numItems)*float64(n)/64 {
		return ModeChunked
	}
	return ModeDense
}

// NewIndex builds the vertical index of the dataset in DefaultIndexMode.
// Cost is one pass to collect the vocabulary plus one pass to fill the
// bitmaps; the result is self-contained and does not retain the Dataset.
func NewIndex(d *Dataset) *Index {
	return NewIndexMode(d, DefaultIndexMode)
}

// NewIndexMode is NewIndex with an explicit bitmap layout.
func NewIndexMode(d *Dataset, mode IndexMode) *Index {
	n := d.Len()
	ix := &Index{words: (n + 63) / 64}

	counts := d.ItemCounts()
	ix.items = make([]Item, 0, len(counts))
	totalBits := 0
	for it, c := range counts {
		ix.items = append(ix.items, it)
		totalBits += c
	}
	sort.Slice(ix.items, func(i, j int) bool { return ix.items[i].Less(ix.items[j]) })
	ix.idOf = make(map[Item]int32, len(ix.items))
	for i, it := range ix.items {
		ix.idOf[it] = int32(i)
	}

	ix.mode = mode
	if ix.mode == ModeAuto {
		ix.mode = autoMode(totalBits, len(ix.items), n)
	}

	ix.count = make([]int, len(ix.items))
	ix.bms = make([]Bitmap, len(ix.items))
	ix.txns = make([][]int32, n)

	// One backing arena serves every per-transaction id slice: the
	// horizontal projection costs two allocations total instead of one
	// per transaction.
	txnArena := make([]int32, totalBits)

	switch ix.mode {
	case ModeDense:
		arena := make([]uint64, len(ix.items)*ix.words)
		ix.bits = make([][]uint64, len(ix.items))
		for i := range ix.bits {
			ix.bits[i] = arena[i*ix.words : (i+1)*ix.words]
			ix.bms[i] = Bitmap{n: n, dense: ix.bits[i]}
		}
		for tid, t := range d.Transactions() {
			items := t.Items.Items()
			if len(items) == 0 {
				continue
			}
			ids := txnArena[:len(items):len(items)]
			txnArena = txnArena[len(items):]
			for k, it := range items { // canonical set order => ascending ids
				id := ix.idOf[it]
				ids[k] = id
				ix.bits[id][tid>>6] |= 1 << (uint(tid) & 63)
				ix.count[id]++
			}
			ix.txns[tid] = ids
		}

	case ModeChunked:
		// Array-container storage is carved from one arena too: item id's
		// window starts at the prefix sum of the preceding items' counts
		// and is at most its total population.
		arrArena := make([]uint16, totalBits)
		offsets := make([]int32, len(ix.items)+1)
		for i, it := range ix.items {
			offsets[i+1] = offsets[i] + int32(counts[it])
		}
		used := make([]int32, len(ix.items))
		for i := range ix.bms {
			ix.bms[i].n = n
		}
		for tid, t := range d.Transactions() {
			items := t.Items.Items()
			if len(items) == 0 {
				continue
			}
			ids := txnArena[:len(items):len(items)]
			txnArena = txnArena[len(items):]
			for k, it := range items {
				id := ix.idOf[it]
				ids[k] = id
				window := arrArena[offsets[id]:offsets[id+1]]
				used[id] = int32(ix.bms[id].setAscending(tid, window, int(used[id])))
				ix.count[id]++
			}
			ix.txns[tid] = ids
		}
	}
	return ix
}

// NumTransactions returns the number of transactions indexed (including
// empty ones, which carry no bits but count toward relative support).
func (ix *Index) NumTransactions() int { return len(ix.txns) }

// NumItems returns the number of distinct items.
func (ix *Index) NumItems() int { return len(ix.items) }

// Item returns the item with the given id.
func (ix *Index) Item(id int32) Item { return ix.items[id] }

// Mode returns the resolved bitmap layout (ModeDense or ModeChunked).
func (ix *Index) Mode() IndexMode { return ix.mode }

// Bits returns the item's flat transaction bitmap in dense mode, nil in
// chunked mode. The slice is shared index state and must not be
// modified; layout-agnostic callers should use ItemBitmap.
func (ix *Index) Bits(id int32) []uint64 { return ix.bms[id].dense }

// ItemBitmap returns the item's transaction bitmap in the index's
// layout. Shared index state; must not be modified or used as an
// intersection target.
func (ix *Index) ItemBitmap(id int32) *Bitmap { return &ix.bms[id] }

// Count returns the item's support count (the popcount of its bitmap).
func (ix *Index) Count(id int32) int { return ix.count[id] }

// Words returns the dense bitmap length in 64-bit words, the buffer
// size dense intersection scratch space needs.
func (ix *Index) Words() int { return ix.words }

// PrepareScratch shapes b (typically pooled, possibly previously used
// against a different index) into an intersection target for this
// index's layout and universe.
func (ix *Index) PrepareScratch(b *Bitmap) {
	if ix.mode == ModeDense {
		b.ensureDense(ix.words)
		b.n = len(ix.txns)
		return
	}
	b.reset(len(ix.txns))
}

// Txns returns the horizontal projection: per transaction, the ascending
// item ids. Shared index state; must not be modified.
func (ix *Index) Txns() [][]int32 { return ix.txns }

// MinCount converts a relative support threshold to the smallest
// absolute count satisfying it, sharing Dataset.MinCount's convention.
func (ix *Index) MinCount(support float64) int {
	return minCount(len(ix.txns), support)
}

// SupportCount returns the number of transactions containing every item
// of ids: the cardinality of the intersection of their bitmaps, computed
// without materializing it in dense mode (and for chunked pairs), or by
// folding through pooled scratch for longer chunked candidates. An empty
// id list counts every transaction (the empty set's support convention).
func (ix *Index) SupportCount(ids []int32) int {
	switch len(ids) {
	case 0:
		return ix.NumTransactions()
	case 1:
		return ix.count[ids[0]]
	}
	if ix.mode == ModeDense {
		n := 0
		first, rest := ix.bms[ids[0]].dense, ids[1:]
		for w := 0; w < ix.words; w++ {
			x := first[w]
			for _, id := range rest {
				x &= ix.bms[id].dense[w]
				if x == 0 {
					break
				}
			}
			n += bits.OnesCount64(x)
		}
		return n
	}
	if len(ids) == 2 {
		return AndCardinality(&ix.bms[ids[0]], &ix.bms[ids[1]])
	}
	sc := andScratchPool.Get().(*[2]Bitmap)
	defer andScratchPool.Put(sc)
	cur, next := &sc[0], &sc[1]
	ix.PrepareScratch(cur)
	ix.PrepareScratch(next)
	cnt := AndBitmaps(cur, &ix.bms[ids[0]], &ix.bms[ids[1]])
	for _, id := range ids[2:] {
		if cnt == 0 {
			return 0
		}
		cnt = AndBitmaps(next, cur, &ix.bms[id])
		cur, next = next, cur
	}
	return cnt
}

// Pattern converts a mined id set to a Pattern with relative support
// measured against the index's transaction count. ids must be the
// itemset in any order; count its support count.
func (ix *Index) Pattern(ids []int32, count int) Pattern {
	items := make([]Item, len(ids))
	for i, id := range ids {
		items[i] = ix.items[id]
	}
	return Pattern{
		Items:   NewSet(items...),
		Count:   count,
		Support: float64(count) / float64(ix.NumTransactions()),
	}
}

// AndInto sets dst = a & b and returns the popcount of the result. All
// three slices must have equal length; dst may alias a or b. This is the
// dense-layout intersection kernel; AndBitmaps is the layout-agnostic
// form.
func AndInto(dst, a, b []uint64) int {
	n := 0
	for i := range dst {
		v := a[i] & b[i]
		dst[i] = v
		n += bits.OnesCount64(v)
	}
	return n
}
