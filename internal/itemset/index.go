package itemset

import (
	"math/bits"
	"sort"
)

// Index is a vertical bitset view of a Dataset: every distinct item maps
// to a bitmap over transaction positions (one bit per transaction,
// packed into []uint64 words). It is the shared representation the
// mining backends (internal/miner) operate on — built once per region,
// then read concurrently by whichever algorithm is selected:
//
//   - support of an item is a popcount (math/bits.OnesCount64),
//   - support of a candidate itemset is a word-wise AND + popcount
//     (Apriori's counting step, replacing per-transaction subset scans),
//   - Eclat intersects the bitmaps directly instead of merging tid lists,
//   - FP-Growth reads the horizontal projection (Txns) to build its tree.
//
// Item ids are dense, 0-based and assigned in canonical item order
// (Item.Less), so id comparison is item comparison and id-sorted slices
// are canonically sorted. The Index is immutable after construction and
// safe for concurrent readers.
type Index struct {
	items []Item         // id -> item, canonically sorted
	idOf  map[Item]int32 // item -> id
	bits  [][]uint64     // id -> transaction bitmap (words slices of one arena)
	count []int          // id -> popcount of bits[id]
	txns  [][]int32      // transaction -> ascending item ids
	words int            // words per bitmap
}

// NewIndex builds the vertical index of the dataset. Cost is one pass to
// collect the vocabulary plus one pass to fill the bitmaps; the result
// is self-contained and does not retain the Dataset.
func NewIndex(d *Dataset) *Index {
	n := d.Len()
	ix := &Index{words: (n + 63) / 64}

	counts := d.ItemCounts()
	ix.items = make([]Item, 0, len(counts))
	for it := range counts {
		ix.items = append(ix.items, it)
	}
	sort.Slice(ix.items, func(i, j int) bool { return ix.items[i].Less(ix.items[j]) })
	ix.idOf = make(map[Item]int32, len(ix.items))
	for i, it := range ix.items {
		ix.idOf[it] = int32(i)
	}

	arena := make([]uint64, len(ix.items)*ix.words)
	ix.bits = make([][]uint64, len(ix.items))
	for i := range ix.bits {
		ix.bits[i] = arena[i*ix.words : (i+1)*ix.words]
	}
	ix.count = make([]int, len(ix.items))
	ix.txns = make([][]int32, n)
	for tid, t := range d.Transactions() {
		items := t.Items.Items()
		if len(items) == 0 {
			continue
		}
		ids := make([]int32, len(items))
		for k, it := range items { // canonical set order => ascending ids
			id := ix.idOf[it]
			ids[k] = id
			ix.bits[id][tid>>6] |= 1 << (uint(tid) & 63)
			ix.count[id]++
		}
		ix.txns[tid] = ids
	}
	return ix
}

// NumTransactions returns the number of transactions indexed (including
// empty ones, which carry no bits but count toward relative support).
func (ix *Index) NumTransactions() int { return len(ix.txns) }

// NumItems returns the number of distinct items.
func (ix *Index) NumItems() int { return len(ix.items) }

// Item returns the item with the given id.
func (ix *Index) Item(id int32) Item { return ix.items[id] }

// Bits returns the item's transaction bitmap. The slice is shared index
// state and must not be modified.
func (ix *Index) Bits(id int32) []uint64 { return ix.bits[id] }

// Count returns the item's support count (the popcount of its bitmap).
func (ix *Index) Count(id int32) int { return ix.count[id] }

// Words returns the bitmap length in 64-bit words, the buffer size
// intersection scratch space needs.
func (ix *Index) Words() int { return ix.words }

// Txns returns the horizontal projection: per transaction, the ascending
// item ids. Shared index state; must not be modified.
func (ix *Index) Txns() [][]int32 { return ix.txns }

// MinCount converts a relative support threshold to the smallest
// absolute count satisfying it, sharing Dataset.MinCount's convention.
func (ix *Index) MinCount(support float64) int {
	return minCount(len(ix.txns), support)
}

// SupportCount returns the number of transactions containing every item
// of ids: the popcount of the AND of their bitmaps, computed word-wise
// without materializing the intersection. An empty id list counts every
// transaction (the empty set's support convention).
func (ix *Index) SupportCount(ids []int32) int {
	switch len(ids) {
	case 0:
		return ix.NumTransactions()
	case 1:
		return ix.count[ids[0]]
	}
	n := 0
	first, rest := ix.bits[ids[0]], ids[1:]
	for w := 0; w < ix.words; w++ {
		x := first[w]
		for _, id := range rest {
			x &= ix.bits[id][w]
			if x == 0 {
				break
			}
		}
		n += bits.OnesCount64(x)
	}
	return n
}

// Pattern converts a mined id set to a Pattern with relative support
// measured against the index's transaction count. ids must be the
// itemset in any order; count its support count.
func (ix *Index) Pattern(ids []int32, count int) Pattern {
	items := make([]Item, len(ids))
	for i, id := range ids {
		items[i] = ix.items[id]
	}
	return Pattern{
		Items:   NewSet(items...),
		Count:   count,
		Support: float64(count) / float64(ix.NumTransactions()),
	}
}

// AndInto sets dst = a & b and returns the popcount of the result. All
// three slices must have equal length; dst may alias a or b.
func AndInto(dst, a, b []uint64) int {
	n := 0
	for i := range dst {
		v := a[i] & b[i]
		dst[i] = v
		n += bits.OnesCount64(v)
	}
	return n
}
