package itemset

import (
	"math/bits"
	"math/rand"
	"testing"
)

func ixTxn(names ...string) Transaction {
	return Transaction{Items: FromNames(Ingredient, names...)}
}

// findID resolves an item to its index id by scanning (the production
// surface needs no reverse lookup, so the tests do it by hand).
func findID(ix *Index, it Item) (int32, bool) {
	for id := int32(0); int(id) < ix.NumItems(); id++ {
		if ix.Item(id) == it {
			return id, true
		}
	}
	return 0, false
}

func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

func TestIndexBasics(t *testing.T) {
	d := NewDataset([]Transaction{
		ixTxn("a", "b"),
		ixTxn("b", "c"),
		ixTxn("a", "b", "c"),
	})
	ix := NewIndex(d)
	if ix.NumTransactions() != 3 {
		t.Fatalf("transactions = %d", ix.NumTransactions())
	}
	if ix.NumItems() != 3 {
		t.Fatalf("items = %d", ix.NumItems())
	}
	// Ids follow canonical item order.
	for id := int32(1); int(id) < ix.NumItems(); id++ {
		if !ix.Item(id - 1).Less(ix.Item(id)) {
			t.Fatalf("ids not in canonical item order at %d", id)
		}
	}
	b := NewItem("b", Ingredient)
	id, ok := findID(ix, b)
	if !ok || ix.Count(id) != 3 {
		t.Fatalf("b: id ok=%v count=%d", ok, ix.Count(id))
	}
	if _, ok := findID(ix, NewItem("zz", Ingredient)); ok {
		t.Fatal("unindexed item resolved")
	}
	if got := ix.Words(); got != 1 {
		t.Fatalf("words = %d", got)
	}
}

func TestIndexSupportCountMatchesDataset(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		nTxn := 1 + r.Intn(200) // spans multiple bitmap words
		txns := make([]Transaction, nTxn)
		for i := range txns {
			n := r.Intn(6)
			var items []Item
			for j := 0; j < n; j++ {
				items = append(items, NewItem(string(rune('a'+r.Intn(8))), Kind(r.Intn(3))))
			}
			txns[i] = Transaction{Items: NewSet(items...)}
		}
		d := NewDataset(txns)
		ix := NewIndex(d)
		if ix.NumTransactions() != d.Len() {
			t.Fatalf("trial %d: transactions %d != %d", trial, ix.NumTransactions(), d.Len())
		}
		// Every single item count must equal the dataset's scan.
		for id := int32(0); int(id) < ix.NumItems(); id++ {
			it := ix.Item(id)
			if got, want := ix.Count(id), d.SupportCount(NewSet(it)); got != want {
				t.Fatalf("trial %d: item %v count %d, dataset says %d", trial, it, got, want)
			}
			if got := popcount(ix.Bits(id)); got != ix.Count(id) {
				t.Fatalf("trial %d: cached count %d != popcount %d", trial, ix.Count(id), got)
			}
		}
		// Random candidate itemsets: AND-counting must equal subset scans.
		for probe := 0; probe < 20; probe++ {
			k := 1 + r.Intn(4)
			var ids []int32
			var items []Item
			for j := 0; j < k && ix.NumItems() > 0; j++ {
				id := int32(r.Intn(ix.NumItems()))
				ids = append(ids, id)
				items = append(items, ix.Item(id))
			}
			if got, want := ix.SupportCount(ids), d.SupportCount(NewSet(items...)); got != want {
				t.Fatalf("trial %d: SupportCount(%v) = %d, dataset says %d", trial, items, got, want)
			}
		}
		if got := ix.SupportCount(nil); got != d.Len() {
			t.Fatalf("trial %d: empty-set support %d != %d", trial, got, d.Len())
		}
	}
}

func TestIndexMinCountMatchesDataset(t *testing.T) {
	d := NewDataset([]Transaction{ixTxn("a"), ixTxn("a"), ixTxn("b")})
	ix := NewIndex(d)
	for _, sup := range []float64{0, 0.2, 0.34, 0.5, 1, 2, 5} {
		if got, want := ix.MinCount(sup), d.MinCount(sup); got != want {
			t.Errorf("MinCount(%g) = %d, dataset says %d", sup, got, want)
		}
	}
}

func TestIndexEmptyTransactionsCountTowardSupport(t *testing.T) {
	d := NewDataset([]Transaction{ixTxn("a"), {}, {}, ixTxn("a")})
	ix := NewIndex(d)
	if ix.NumTransactions() != 4 {
		t.Fatalf("transactions = %d", ix.NumTransactions())
	}
	id, ok := findID(ix, NewItem("a", Ingredient))
	if !ok {
		t.Fatal("a not indexed")
	}
	p := ix.Pattern([]int32{id}, ix.Count(id))
	if p.Count != 2 || p.Support != 0.5 {
		t.Fatalf("pattern = %+v", p)
	}
}

func TestAndInto(t *testing.T) {
	a := []uint64{0b1010, 1 << 63}
	b := []uint64{0b0110, 1 << 63}
	dst := make([]uint64, 2)
	if got := AndInto(dst, a, b); got != 2 {
		t.Fatalf("popcount = %d", got)
	}
	if dst[0] != 0b0010 || dst[1] != 1<<63 {
		t.Fatalf("dst = %b %b", dst[0], dst[1])
	}
	// Aliasing dst with an operand is allowed.
	if got := AndInto(a, a, b); got != 2 || a[0] != 0b0010 {
		t.Fatalf("aliased AndInto = %d, a0=%b", got, a[0])
	}
}
