package itemset

// Transaction is one mining input: a recipe reduced to its canonical set of
// items plus an opaque identifier. Sec. V.A: "Ingredients, utensils and
// processes were concatenated and the FP-Growth Algorithm was applied."
type Transaction struct {
	// ID identifies the source recipe (for traceability in reports).
	ID string
	// Items is the canonical itemset of the recipe.
	Items Set
}

// Dataset is an ordered collection of transactions, the unit the miners
// operate on (one Dataset per cuisine in the paper's pipeline).
type Dataset struct {
	transactions []Transaction
}

// NewDataset wraps the given transactions. The slice is retained.
func NewDataset(ts []Transaction) *Dataset {
	return &Dataset{transactions: ts}
}

// Len returns the number of transactions.
func (d *Dataset) Len() int {
	if d == nil {
		return 0
	}
	return len(d.transactions)
}

// At returns the i-th transaction.
func (d *Dataset) At(i int) Transaction { return d.transactions[i] }

// Transactions returns the underlying slice (not a copy).
func (d *Dataset) Transactions() []Transaction { return d.transactions }

// Append adds a transaction.
func (d *Dataset) Append(t Transaction) { d.transactions = append(d.transactions, t) }

// ItemCounts returns the number of transactions containing each item.
func (d *Dataset) ItemCounts() map[Item]int {
	counts := make(map[Item]int)
	for _, t := range d.transactions {
		for _, it := range t.Items.Items() {
			counts[it]++
		}
	}
	return counts
}

// Support returns the fraction of transactions containing every item of
// the given set. An empty set has support 1 by convention; an empty
// dataset yields 0.
func (d *Dataset) Support(s Set) float64 {
	if d.Len() == 0 {
		return 0
	}
	return float64(d.SupportCount(s)) / float64(d.Len())
}

// SupportCount returns the absolute number of transactions containing the
// set.
func (d *Dataset) SupportCount(s Set) int {
	n := 0
	for _, t := range d.transactions {
		if t.Items.ContainsAll(s) {
			n++
		}
	}
	return n
}

// MinCount converts a relative support threshold in [0,1] to the smallest
// absolute transaction count that satisfies it: ceil(support * len).
// Thresholds above 1 are interpreted as absolute counts already.
func (d *Dataset) MinCount(support float64) int {
	return minCount(d.Len(), support)
}

// minCount is the shared threshold convention behind Dataset.MinCount
// and Index.MinCount; one definition keeps the Dataset- and Index-based
// mining paths byte-identical.
func minCount(n int, support float64) int {
	if support <= 0 {
		return 1
	}
	if support > 1 {
		return int(support)
	}
	f := float64(n) * support
	c := int(f)
	if float64(c) < f {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}
