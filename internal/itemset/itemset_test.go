package itemset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func ing(name string) Item  { return NewItem(name, Ingredient) }
func proc(name string) Item { return NewItem(name, Process) }

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"Soy Sauce":     "soy sauce",
		"  soy   sauce": "soy sauce",
		"SOY\tSAUCE ":   "soy sauce",
		"onion":         "onion",
		"":              "",
		"  ":            "",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Ingredient.String() != "ingredient" || Process.String() != "process" || Utensil.String() != "utensil" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatalf("unknown kind renders as %q", Kind(9).String())
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("Utensils"); err != nil {
		t.Fatal("plural form should parse")
	}
	if _, err := ParseKind("widget"); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestNewSetCanonical(t *testing.T) {
	s := NewSet(ing("salt"), ing("onion"), ing("salt"), proc("add"))
	if s.Len() != 3 {
		t.Fatalf("dedup failed: %v", s.Items())
	}
	items := s.Items()
	for i := 1; i < len(items); i++ {
		if !items[i-1].Less(items[i]) {
			t.Fatalf("not sorted: %v", items)
		}
	}
}

func TestSetSameNameDifferentKind(t *testing.T) {
	// "heat" as a process and a hypothetical ingredient must be distinct.
	s := NewSet(NewItem("heat", Process), NewItem("heat", Ingredient))
	if s.Len() != 2 {
		t.Fatal("items differing only in kind collapsed")
	}
	if s.Key() == NewSet(NewItem("heat", Process)).Key() {
		t.Fatal("keys collide across kinds")
	}
}

func TestSetContains(t *testing.T) {
	s := FromNames(Ingredient, "salt", "onion", "butter")
	if !s.Contains(ing("onion")) {
		t.Fatal("missing onion")
	}
	if s.Contains(ing("soy sauce")) {
		t.Fatal("phantom soy sauce")
	}
	if s.Contains(proc("onion")) {
		t.Fatal("kind should matter in Contains")
	}
}

func TestContainsAll(t *testing.T) {
	s := FromNames(Ingredient, "a", "b", "c", "d")
	if !s.ContainsAll(FromNames(Ingredient, "b", "d")) {
		t.Fatal("subset not detected")
	}
	if !s.ContainsAll(Set{}) {
		t.Fatal("empty set is a subset of everything")
	}
	if s.ContainsAll(FromNames(Ingredient, "b", "e")) {
		t.Fatal("non-subset accepted")
	}
	if (Set{}).ContainsAll(s) {
		t.Fatal("non-empty subset of empty set")
	}
}

func TestUnionIntersectDiff(t *testing.T) {
	a := FromNames(Ingredient, "a", "b", "c")
	b := FromNames(Ingredient, "b", "c", "d")
	if got := a.Union(b); got.String() != "a + b + c + d" {
		t.Fatalf("union = %q", got.String())
	}
	if got := a.Intersect(b); got.String() != "b + c" {
		t.Fatalf("intersect = %q", got.String())
	}
	if got := a.Diff(b); got.String() != "a" {
		t.Fatalf("diff = %q", got.String())
	}
	if got := b.Diff(a); got.String() != "d" {
		t.Fatalf("diff = %q", got.String())
	}
}

func TestAdd(t *testing.T) {
	s := FromNames(Ingredient, "b", "d")
	s2 := s.Add(ing("c"))
	if s2.String() != "b + c + d" {
		t.Fatalf("Add = %q", s2.String())
	}
	if s.String() != "b + d" {
		t.Fatal("Add mutated the receiver")
	}
	if s2.Add(ing("c")).Len() != 3 {
		t.Fatal("Add of existing item grew the set")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := NewSet(ing("salt"), proc("add"))
	b := NewSet(proc("add"), ing("salt"))
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("order-insensitive equality broken")
	}
	c := NewSet(ing("salt"))
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("distinct sets compare equal")
	}
	if (Set{}).Key() != "" {
		t.Fatal("empty set key should be empty")
	}
}

func TestOfKindAndFilter(t *testing.T) {
	s := NewSet(ing("salt"), proc("add"), proc("heat"), NewItem("bowl", Utensil))
	if got := s.OfKind(Process).String(); got != "add + heat" {
		t.Fatalf("OfKind(Process) = %q", got)
	}
	if got := s.OfKind(Utensil).Len(); got != 1 {
		t.Fatalf("OfKind(Utensil) len = %d", got)
	}
	long := s.Filter(func(it Item) bool { return len(it.Name) == 4 })
	if long.String() != "bowl + heat + salt" {
		t.Fatalf("Filter = %q", long.String())
	}
}

func TestDatasetSupport(t *testing.T) {
	d := NewDataset([]Transaction{
		{ID: "1", Items: FromNames(Ingredient, "salt", "onion")},
		{ID: "2", Items: FromNames(Ingredient, "salt")},
		{ID: "3", Items: FromNames(Ingredient, "onion", "butter")},
		{ID: "4", Items: FromNames(Ingredient, "salt", "onion", "butter")},
	})
	if got := d.Support(FromNames(Ingredient, "salt")); got != 0.75 {
		t.Fatalf("support(salt) = %v", got)
	}
	if got := d.Support(FromNames(Ingredient, "salt", "onion")); got != 0.5 {
		t.Fatalf("support(salt,onion) = %v", got)
	}
	if got := d.Support(Set{}); got != 1 {
		t.Fatalf("support(empty) = %v", got)
	}
	if got := (&Dataset{}).Support(Set{}); got != 0 {
		t.Fatalf("support on empty dataset = %v", got)
	}
}

func TestDatasetMinCount(t *testing.T) {
	d := NewDataset(make([]Transaction, 10))
	cases := []struct {
		support float64
		want    int
	}{
		{0.2, 2}, {0.25, 3}, {0.01, 1}, {0, 1}, {-1, 1}, {1, 10}, {5, 5},
	}
	for _, c := range cases {
		if got := d.MinCount(c.support); got != c.want {
			t.Errorf("MinCount(%v) = %d, want %d", c.support, got, c.want)
		}
	}
}

func TestItemCounts(t *testing.T) {
	d := NewDataset([]Transaction{
		{Items: FromNames(Ingredient, "salt", "onion")},
		{Items: FromNames(Ingredient, "salt")},
	})
	counts := d.ItemCounts()
	if counts[ing("salt")] != 2 || counts[ing("onion")] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestStringPattern(t *testing.T) {
	p := Pattern{Items: NewSet(ing("soy sauce"), proc("add"), proc("heat"))}
	if got := p.StringPattern(); got != "add+heat+soy sauce" {
		t.Fatalf("StringPattern = %q", got)
	}
	if got := p.Items.String(); got != "add + heat + soy sauce" {
		t.Fatalf("String = %q", got)
	}
}

func TestSortPatterns(t *testing.T) {
	ps := []Pattern{
		{Items: FromNames(Ingredient, "b"), Support: 0.3},
		{Items: FromNames(Ingredient, "a", "b"), Support: 0.5},
		{Items: FromNames(Ingredient, "a"), Support: 0.5},
		{Items: FromNames(Ingredient, "c"), Support: 0.5},
	}
	SortPatterns(ps)
	want := []string{"a", "c", "a+b", "b"}
	for i, p := range ps {
		if p.StringPattern() != want[i] {
			t.Fatalf("sorted order %v", ps)
		}
	}
}

func TestDedupePatterns(t *testing.T) {
	ps := []Pattern{
		{Items: FromNames(Ingredient, "a"), Support: 0.5},
		{Items: FromNames(Ingredient, "a"), Support: 0.4},
		{Items: FromNames(Ingredient, "b"), Support: 0.3},
	}
	out := DedupePatterns(ps)
	if len(out) != 2 || out[0].Support != 0.5 {
		t.Fatalf("dedupe = %v", out)
	}
}

func TestMaximalPatterns(t *testing.T) {
	ps := []Pattern{
		{Items: FromNames(Ingredient, "a"), Count: 10},
		{Items: FromNames(Ingredient, "b"), Count: 9},
		{Items: FromNames(Ingredient, "a", "b"), Count: 8},
		{Items: FromNames(Ingredient, "c"), Count: 7},
	}
	out := MaximalPatterns(ps)
	keys := make(map[string]bool)
	for _, p := range out {
		keys[p.StringPattern()] = true
	}
	if len(out) != 2 || !keys["a+b"] || !keys["c"] {
		t.Fatalf("maximal = %v", out)
	}
}

func TestClosedPatterns(t *testing.T) {
	ps := []Pattern{
		{Items: FromNames(Ingredient, "a"), Count: 8},      // same count as superset -> not closed
		{Items: FromNames(Ingredient, "b"), Count: 9},      // closed
		{Items: FromNames(Ingredient, "a", "b"), Count: 8}, // closed
	}
	out := ClosedPatterns(ps)
	keys := make(map[string]bool)
	for _, p := range out {
		keys[p.StringPattern()] = true
	}
	if len(out) != 2 || !keys["b"] || !keys["a+b"] {
		t.Fatalf("closed = %v", out)
	}
}

// --- property-based tests -------------------------------------------------

// randomSet builds a set from random small-alphabet names so subset
// relations occur frequently.
func randomSet(r *rand.Rand) Set {
	n := r.Intn(6)
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, Item{Name: string(rune('a' + r.Intn(8))), Kind: Kind(r.Intn(3))})
	}
	return NewSet(items...)
}

func TestSetAlgebraProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randomSet(r), randomSet(r)
		u := a.Union(b)
		inter := a.Intersect(b)
		// |A| + |B| = |A∪B| + |A∩B|
		if a.Len()+b.Len() != u.Len()+inter.Len() {
			t.Fatalf("inclusion-exclusion violated: %v %v", a, b)
		}
		// A∩B ⊆ A ⊆ A∪B
		if !a.ContainsAll(inter) || !u.ContainsAll(a) {
			t.Fatalf("subset chain violated: %v %v", a, b)
		}
		// (A\B) ∪ (A∩B) = A
		if !a.Diff(b).Union(inter).Equal(a) {
			t.Fatalf("diff/union reconstruction violated: %v %v", a, b)
		}
		// commutativity
		if !u.Equal(b.Union(a)) || !inter.Equal(b.Intersect(a)) {
			t.Fatalf("commutativity violated: %v %v", a, b)
		}
	}
}

func TestNewSetIdempotentProperty(t *testing.T) {
	f := func(names []string) bool {
		items := make([]Item, len(names))
		for i, n := range names {
			items[i] = NewItem(n, Ingredient)
		}
		s := NewSet(items...)
		s2 := NewSet(s.Items()...)
		return s.Equal(s2) && s.Key() == s2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSupportAntiMonotoneProperty(t *testing.T) {
	// support(superset) <= support(subset) on random datasets.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		ts := make([]Transaction, 30)
		for i := range ts {
			ts[i] = Transaction{Items: randomSet(r)}
		}
		d := NewDataset(ts)
		a := randomSet(r)
		b := a.Union(randomSet(r)) // b ⊇ a
		if d.Support(b) > d.Support(a)+1e-12 {
			t.Fatalf("anti-monotonicity violated: supp(%v)=%v > supp(%v)=%v",
				b, d.Support(b), a, d.Support(a))
		}
	}
}

func TestSortPatternsDeterministicProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		ps := make([]Pattern, 20)
		for i := range ps {
			s := randomSet(r)
			ps[i] = Pattern{Items: s, Support: float64(r.Intn(5)) / 5}
		}
		a := make([]Pattern, len(ps))
		b := make([]Pattern, len(ps))
		copy(a, ps)
		copy(b, ps)
		// shuffle b differently, then sort both
		r.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		SortPatterns(a)
		SortPatterns(b)
		as := make([]string, len(a))
		bs := make([]string, len(b))
		for i := range a {
			as[i] = a[i].String()
			bs[i] = b[i].String()
		}
		sort.Strings(as)
		sort.Strings(bs)
		if !reflect.DeepEqual(as, bs) {
			t.Fatal("sort changed multiset of patterns")
		}
	}
}
