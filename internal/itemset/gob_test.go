package itemset

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestSetGobRoundTrip(t *testing.T) {
	sets := []Set{
		{},
		NewSet(NewItem("salt", Ingredient)),
		NewSet(
			NewItem("soy sauce", Ingredient),
			NewItem("heat", Process),
			NewItem("wok", Utensil),
		),
	}
	for _, s := range sets {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(s); err != nil {
			t.Fatalf("encode %v: %v", s, err)
		}
		var got Set
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
			t.Fatalf("decode %v: %v", s, err)
		}
		if got.Key() != s.Key() || got.Len() != s.Len() {
			t.Errorf("round trip changed set: got %v, want %v", got, s)
		}
	}
}

func TestPatternGobRoundTrip(t *testing.T) {
	p := Pattern{
		Items:   NewSet(NewItem("rice", Ingredient), NewItem("boil", Process)),
		Support: 0.312345678912345,
		Count:   421,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	var got Pattern
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Items.Key() != p.Items.Key() || got.Support != p.Support || got.Count != p.Count {
		t.Errorf("round trip changed pattern: got %+v, want %+v", got, p)
	}
}
