package itemset

import (
	"bytes"
	"encoding/gob"
)

// Set keeps its items unexported to protect the canonical-order
// invariant, so plain gob encoding would silently drop them. The
// GobEncoder/GobDecoder pair serializes the item slice explicitly; the
// artifact store (internal/artifact) persists mined patterns through it.

// GobEncode implements gob.GobEncoder.
func (s Set) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.items); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. Items written by GobEncode are
// already canonical, but the decoder re-canonicalizes through NewSet so
// a hand-crafted or corrupted stream cannot break the Set invariant.
func (s *Set) GobDecode(data []byte) error {
	var items []Item
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&items); err != nil {
		return err
	}
	*s = NewSet(items...)
	return nil
}
