package itemset

import (
	"math/rand"
	"sort"
	"testing"
)

// chunkedFromTids builds a chunked bitmap through the same ascending
// builder NewIndex uses.
func chunkedFromTids(tids []int, n int) *Bitmap {
	b := &Bitmap{n: n}
	arena := make([]uint16, len(tids))
	used := 0
	for _, tid := range tids {
		used = b.setAscending(tid, arena, used)
	}
	return b
}

// denseFromTids builds a dense bitmap over the same universe.
func denseFromTids(tids []int, n int) *Bitmap {
	words := make([]uint64, (n+63)/64)
	for _, tid := range tids {
		words[tid>>6] |= 1 << (tid & 63)
	}
	return &Bitmap{n: n, dense: words}
}

func collect(b *Bitmap) []int {
	var out []int
	b.ForEach(func(tid int) { out = append(out, tid) })
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomTids draws a sorted, duplicate-free tid sample of the given
// density from [0, n).
func randomTids(r *rand.Rand, n int, density float64) []int {
	var tids []int
	for tid := 0; tid < n; tid++ {
		if r.Float64() < density {
			tids = append(tids, tid)
		}
	}
	return tids
}

func intersectInts(a, b []int) []int {
	in := make(map[int]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	var out []int
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// TestSetAscendingForms drives the builder across the array→bitmap flip
// and across chunk boundaries, checking Count/ForEach agree with the
// input at every shape.
func TestSetAscendingForms(t *testing.T) {
	cases := []struct {
		name string
		tids []int
		n    int
	}{
		{"empty", nil, 100},
		{"single", []int{7}, 100},
		{"array-container", seq(0, 100, 3), 1 << 16},
		{"at-flip-boundary", seq(0, arrayMaxCard, 1), 1 << 16},
		{"past-flip-boundary", seq(0, arrayMaxCard+1, 1), 1 << 16},
		{"dense-chunk", seq(0, 3*arrayMaxCard, 1), 1 << 16},
		{"multi-chunk-mixed", append(seq(0, 5000, 1), append(seq(chunkBits, chunkBits+10, 1), seq(3*chunkBits, 3*chunkBits+6000, 1)...)...), 4 * chunkBits},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := chunkedFromTids(tc.tids, tc.n)
			if got := b.Count(); got != len(tc.tids) {
				t.Fatalf("Count = %d, want %d", got, len(tc.tids))
			}
			if got := collect(b); !equalInts(got, tc.tids) {
				t.Fatalf("ForEach diverges from input: got %d tids, want %d", len(got), len(tc.tids))
			}
			// Each container's form must match its population.
			for _, c := range b.chunks {
				if c.arr != nil && int(c.card) > arrayMaxCard {
					t.Errorf("chunk %d: array container with card %d > %d", c.key, c.card, arrayMaxCard)
				}
				if (c.arr == nil) == (c.words == nil) {
					t.Errorf("chunk %d: exactly one form must be set", c.key)
				}
			}
		})
	}
}

func seq(from, count, step int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = from + i*step
	}
	return out
}

// TestAndBitmapsMatchesBruteForce is the randomized density-regime
// property test of the container layer: universes from a few dozen tids
// to several chunks, operand densities from 0.1% to 90% (crossing the
// array/bitmap container threshold on both sides), dense and chunked
// layouts, one shared scratch target recycled across every trial the
// way the eclat DFS recycles its per-depth buffers.
func TestAndBitmapsMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(20200620))
	universes := []int{50, 1000, 1 << 16, 1<<16 + 1, 200_000}
	densities := []float64{0.001, 0.02, 0.2, 0.9}
	dst := &Bitmap{}      // recycled chunked target
	denseDst := &Bitmap{} // recycled dense target
	for _, n := range universes {
		for _, da := range densities {
			for _, db := range densities {
				if n >= 100_000 && da >= 0.2 && db >= 0.2 {
					continue // dense×dense at scale adds time, not coverage
				}
				ta := randomTids(r, n, da)
				tb := randomTids(r, n, db)
				want := intersectInts(ta, tb)

				ca, cb := chunkedFromTids(ta, n), chunkedFromTids(tb, n)
				if got := AndCardinality(ca, cb); got != len(want) {
					t.Fatalf("n=%d da=%g db=%g: chunked AndCardinality = %d, want %d", n, da, db, got, len(want))
				}
				if got := AndBitmaps(dst, ca, cb); got != len(want) {
					t.Fatalf("n=%d da=%g db=%g: chunked AndBitmaps = %d, want %d", n, da, db, got, len(want))
				}
				if got := collect(dst); !equalInts(got, want) {
					t.Fatalf("n=%d da=%g db=%g: chunked intersection bits diverge", n, da, db)
				}

				xa, xb := denseFromTids(ta, n), denseFromTids(tb, n)
				if got := AndCardinality(xa, xb); got != len(want) {
					t.Fatalf("n=%d da=%g db=%g: dense AndCardinality = %d, want %d", n, da, db, got, len(want))
				}
				if got := AndBitmaps(denseDst, xa, xb); got != len(want) {
					t.Fatalf("n=%d da=%g db=%g: dense AndBitmaps = %d, want %d", n, da, db, got, len(want))
				}
				if got := collect(denseDst); !equalInts(got, want) {
					t.Fatalf("n=%d da=%g db=%g: dense intersection bits diverge", n, da, db)
				}
			}
		}
	}
}

// TestAndBitmapsChainedIntersections mirrors the miner access pattern:
// fold k bitmaps through scratch targets (dst of one AND becomes an
// operand of the next), which exercises intersecting a freshly built
// scratch result — mixed array/bitmap containers included.
func TestAndBitmapsChainedIntersections(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 150_000
	sets := make([][]int, 5)
	bms := make([]*Bitmap, 5)
	for i := range sets {
		sets[i] = randomTids(r, n, []float64{0.5, 0.1, 0.04, 0.3, 0.008}[i])
		bms[i] = chunkedFromTids(sets[i], n)
	}
	want := sets[0]
	levels := make([]*Bitmap, len(bms))
	cur := bms[0]
	for i := 1; i < len(bms); i++ {
		want = intersectInts(want, sets[i])
		levels[i] = &Bitmap{}
		if got := AndBitmaps(levels[i], cur, bms[i]); got != len(want) {
			t.Fatalf("chain depth %d: count %d, want %d", i, got, len(want))
		}
		cur = levels[i]
	}
	if got := collect(cur); !equalInts(got, want) {
		t.Fatalf("chained intersection bits diverge: got %d, want %d", len(got), len(want))
	}
}
