package itemset

import (
	"math/rand"
	"reflect"
	"testing"
)

// naiveMaximal and naiveClosed are the pre-bucketing all-pairs
// implementations, kept as the oracle for the length-bucketed fast
// path.
func naiveMaximal(ps []Pattern) []Pattern {
	var out []Pattern
	for i, p := range ps {
		maximal := true
		for j, q := range ps {
			if i == j || q.Items.Len() <= p.Items.Len() {
				continue
			}
			if q.Items.ContainsAll(p.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	return out
}

func naiveClosed(ps []Pattern) []Pattern {
	var out []Pattern
	for i, p := range ps {
		closed := true
		for j, q := range ps {
			if i == j || q.Items.Len() <= p.Items.Len() {
				continue
			}
			if q.Count == p.Count && q.Items.ContainsAll(p.Items) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, p)
		}
	}
	return out
}

// randomPatterns builds a pattern slice with heavy subset structure:
// small item universe, many shared counts, duplicate itemsets allowed —
// the adversarial shape for subsumption filters.
func randomPatterns(r *rand.Rand) []Pattern {
	n := r.Intn(120)
	ps := make([]Pattern, 0, n)
	for i := 0; i < n; i++ {
		size := 1 + r.Intn(5)
		var items []Item
		for j := 0; j < size; j++ {
			items = append(items, NewItem(string(rune('a'+r.Intn(8))), Kind(r.Intn(2))))
		}
		ps = append(ps, Pattern{
			Items: NewSet(items...),
			Count: 1 + r.Intn(4), // few distinct counts => many closed ties
		})
	}
	return ps
}

func TestFilterBucketingMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		ps := randomPatterns(r)
		if got, want := MaximalPatterns(ps), naiveMaximal(ps); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MaximalPatterns diverged from all-pairs oracle\n got: %v\nwant: %v", trial, got, want)
		}
		if got, want := ClosedPatterns(ps), naiveClosed(ps); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ClosedPatterns diverged from all-pairs oracle\n got: %v\nwant: %v", trial, got, want)
		}
	}
}

func TestFilterEdgeCases(t *testing.T) {
	if got := MaximalPatterns(nil); got != nil {
		t.Fatalf("MaximalPatterns(nil) = %v", got)
	}
	if got := ClosedPatterns(nil); got != nil {
		t.Fatalf("ClosedPatterns(nil) = %v", got)
	}
	// Duplicate itemsets: neither copy subsumes the other (equal length),
	// matching the historical behavior.
	dup := []Pattern{
		{Items: FromNames(Ingredient, "a", "b"), Count: 2},
		{Items: FromNames(Ingredient, "a", "b"), Count: 2},
	}
	if got := MaximalPatterns(dup); len(got) != 2 {
		t.Fatalf("duplicates filtered: %v", got)
	}
	if got := ClosedPatterns(dup); len(got) != 2 {
		t.Fatalf("duplicates filtered: %v", got)
	}
}
