// Package itemset defines the transaction model the whole pipeline is built
// on. Following Sec. III of the paper, a recipe is an unordered set of
// items, where an item is an ingredient, a cooking process, or a utensil.
// The package provides canonical (sorted, de-duplicated) itemsets, the
// paper's "string pattern" encoding used for label encoding and
// vectorization, and the set algebra the miners and the clustering
// pipelines need.
package itemset

import (
	"fmt"
	"strings"
)

// Kind classifies an item as an ingredient, process, or utensil. RecipeDB
// distinguishes the three (Sec. III); the miners treat them uniformly, but
// the authenticity pipeline (Fig. 5) restricts itself to ingredients, and
// corpus statistics are reported per kind.
type Kind uint8

const (
	// Ingredient is a food item, e.g. "soy sauce".
	Ingredient Kind = iota
	// Process is a cooking action, e.g. "heat".
	Process
	// Utensil is cooking equipment, e.g. "skillet".
	Utensil
	numKinds
)

// Kinds lists all item kinds in canonical order.
func Kinds() []Kind { return []Kind{Ingredient, Process, Utensil} }

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Ingredient:
		return "ingredient"
	case Process:
		return "process"
	case Utensil:
		return "utensil"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind parses a kind name as produced by Kind.String. It accepts any
// case and the common plural forms used in CSV headers.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "ingredient", "ingredients":
		return Ingredient, nil
	case "process", "processes":
		return Process, nil
	case "utensil", "utensils":
		return Utensil, nil
	default:
		return 0, fmt.Errorf("itemset: unknown kind %q", s)
	}
}

// Item is a single named entity appearing in recipes. Names are stored in
// canonical form (lowercase, single-spaced); use NewItem to construct.
type Item struct {
	Name string
	Kind Kind
}

// NewItem builds an item with a canonicalized name.
func NewItem(name string, kind Kind) Item {
	return Item{Name: CanonicalName(name), Kind: kind}
}

// String renders the item as its name. Kind is deliberately omitted: the
// paper concatenates ingredients, processes and utensils into one token
// stream before mining (Sec. V.A).
func (it Item) String() string { return it.Name }

// Less orders items by name, breaking ties by kind. This is the canonical
// order used by ItemSet.
func (it Item) Less(other Item) bool {
	if it.Name != other.Name {
		return it.Name < other.Name
	}
	return it.Kind < other.Kind
}

// CanonicalName lowercases and whitespace-normalizes an item name so that
// "Soy Sauce", " soy  sauce " and "soy sauce" coincide. RecipeDB sources
// disagree on casing; the paper's preprocessing folds them together.
func CanonicalName(name string) string {
	return strings.Join(strings.Fields(strings.ToLower(name)), " ")
}
