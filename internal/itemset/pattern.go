package itemset

import (
	"fmt"
	"sort"
	"strings"
)

// Pattern is a frequent itemset together with its measured support in the
// dataset it was mined from. This corresponds to one row of the
// per-cuisine rule files the paper's pipeline produces from FP-Growth.
type Pattern struct {
	Items Set
	// Support is relative support in [0, 1].
	Support float64
	// Count is absolute support (number of transactions containing Items).
	Count int
}

// String renders "a + b (0.34)", matching Table I's notation.
func (p Pattern) String() string {
	return fmt.Sprintf("%s (%.2f)", p.Items.String(), p.Support)
}

// StringPattern returns the paper's "string pattern" encoding of the
// itemset (Sec. VI.A): the sorted element names appended together into a
// single string. This string is the categorical value fed to the label
// encoder. A '+' joiner keeps the encoding injective for multi-word item
// names.
func (p Pattern) StringPattern() string { return StringPattern(p.Items) }

// StringPattern encodes a set as the paper's sorted, concatenated string
// form.
func StringPattern(s Set) string {
	names := s.Names() // already canonically sorted
	return strings.Join(names, "+")
}

// SortPatterns orders patterns for stable reporting: by descending
// support, then ascending size, then lexicographic string pattern. The
// paper sorts its frozensets before stringifying; a total order here makes
// every report and test deterministic.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Support != ps[j].Support {
			return ps[i].Support > ps[j].Support
		}
		if ps[i].Items.Len() != ps[j].Items.Len() {
			return ps[i].Items.Len() < ps[j].Items.Len()
		}
		return StringPattern(ps[i].Items) < StringPattern(ps[j].Items)
	})
}

// PatternKey returns a canonical map key for the pattern's itemset.
func PatternKey(p Pattern) string { return p.Items.Key() }

// DedupePatterns removes duplicate itemsets, keeping the first occurrence,
// and returns the deduplicated slice. The input order is preserved.
func DedupePatterns(ps []Pattern) []Pattern {
	seen := make(map[string]bool, len(ps))
	out := ps[:0]
	for _, p := range ps {
		k := p.Items.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}

// MaximalPatterns filters to patterns with no frequent proper superset in
// the same slice. O(n^2) subset checks are acceptable at per-cuisine
// pattern counts (tens to low hundreds, per Table I).
func MaximalPatterns(ps []Pattern) []Pattern {
	var out []Pattern
	for i, p := range ps {
		maximal := true
		for j, q := range ps {
			if i == j || q.Items.Len() <= p.Items.Len() {
				continue
			}
			if q.Items.ContainsAll(p.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	return out
}

// ClosedPatterns filters to closed patterns: no proper superset with the
// same support count.
func ClosedPatterns(ps []Pattern) []Pattern {
	var out []Pattern
	for i, p := range ps {
		closed := true
		for j, q := range ps {
			if i == j || q.Items.Len() <= p.Items.Len() {
				continue
			}
			if q.Count == p.Count && q.Items.ContainsAll(p.Items) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, p)
		}
	}
	return out
}
