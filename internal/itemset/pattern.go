package itemset

import (
	"fmt"
	"sort"
	"strings"
)

// Pattern is a frequent itemset together with its measured support in the
// dataset it was mined from. This corresponds to one row of the
// per-cuisine rule files the paper's pipeline produces from FP-Growth.
type Pattern struct {
	Items Set
	// Support is relative support in [0, 1].
	Support float64
	// Count is absolute support (number of transactions containing Items).
	Count int
}

// String renders "a + b (0.34)", matching Table I's notation.
func (p Pattern) String() string {
	return fmt.Sprintf("%s (%.2f)", p.Items.String(), p.Support)
}

// StringPattern returns the paper's "string pattern" encoding of the
// itemset (Sec. VI.A): the sorted element names appended together into a
// single string. This string is the categorical value fed to the label
// encoder. A '+' joiner keeps the encoding injective for multi-word item
// names.
func (p Pattern) StringPattern() string { return StringPattern(p.Items) }

// StringPattern encodes a set as the paper's sorted, concatenated string
// form.
func StringPattern(s Set) string {
	names := s.Names() // already canonically sorted
	return strings.Join(names, "+")
}

// SortPatterns orders patterns for stable reporting: by descending
// support, then ascending size, then lexicographic string pattern, with
// remaining ties (same-name items of different kinds, which the string
// pattern cannot distinguish) broken by the kind-aware canonical set
// key. The paper sorts its frozensets before stringifying; a total
// order over distinct itemsets makes every report deterministic and
// lets all mining backends emit byte-identical pattern slices no matter
// their internal enumeration order.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Support != ps[j].Support {
			return ps[i].Support > ps[j].Support
		}
		if ps[i].Items.Len() != ps[j].Items.Len() {
			return ps[i].Items.Len() < ps[j].Items.Len()
		}
		si, sj := StringPattern(ps[i].Items), StringPattern(ps[j].Items)
		if si != sj {
			return si < sj
		}
		return ps[i].Items.Key() < ps[j].Items.Key()
	})
}

// PatternKey returns a canonical map key for the pattern's itemset.
func PatternKey(p Pattern) string { return p.Items.Key() }

// DedupePatterns removes duplicate itemsets, keeping the first occurrence,
// and returns the deduplicated slice. The input order is preserved.
func DedupePatterns(ps []Pattern) []Pattern {
	seen := make(map[string]bool, len(ps))
	out := ps[:0]
	for _, p := range ps {
		k := p.Items.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}

// filterSubsumed keeps the patterns for which no strictly longer
// pattern q with subsumes(p, q) exists, preserving input order. A
// pattern can only be subsumed by a strictly longer one, so each
// pattern is compared against the length buckets above its own instead
// of the whole slice: for the typical support-sorted slices the miners
// emit (many short patterns, few long ones) that removes most of the
// quadratic work.
func filterSubsumed(ps []Pattern, subsumes func(p, q Pattern) bool) []Pattern {
	idxBySize := make(map[int][]int)
	for i, p := range ps {
		n := p.Items.Len()
		idxBySize[n] = append(idxBySize[n], i)
	}
	sizes := make([]int, 0, len(idxBySize))
	for n := range idxBySize {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)

	var out []Pattern
	for _, p := range ps {
		keep := true
	scan:
		// Only buckets of strictly greater size can hold a subsumer.
		for _, sz := range sizes[sort.SearchInts(sizes, p.Items.Len()+1):] {
			for _, j := range idxBySize[sz] {
				if subsumes(p, ps[j]) {
					keep = false
					break scan
				}
			}
		}
		if keep {
			out = append(out, p)
		}
	}
	return out
}

// MaximalPatterns filters to patterns with no frequent proper superset
// in the same slice, preserving input order. Patterns are compared
// against strictly longer ones only (length-bucketed), since a superset
// is always strictly larger.
func MaximalPatterns(ps []Pattern) []Pattern {
	return filterSubsumed(ps, func(p, q Pattern) bool {
		return q.Items.ContainsAll(p.Items)
	})
}

// ClosedPatterns filters to closed patterns: no proper superset with the
// same support count. Input order is preserved.
func ClosedPatterns(ps []Pattern) []Pattern {
	return filterSubsumed(ps, func(p, q Pattern) bool {
		return q.Count == p.Count && q.Items.ContainsAll(p.Items)
	})
}
