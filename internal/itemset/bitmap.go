package itemset

import (
	"math/bits"
	"sync"
)

// This file implements the density-adaptive bitmap representation behind
// Index (DESIGN.md §10). A Bitmap stores a set of transaction ids in one
// of two layouts:
//
//   - dense: one flat []uint64 over the whole transaction universe — the
//     seed layout, unbeatable when items hit a large fraction of the
//     transactions or the universe is only a few words wide;
//   - chunked: roaring-style containers, one per populated 2^16-bit
//     chunk, each holding either a sorted []uint16 of bit offsets (array
//     container) or a packed 1024-word bitset (bitmap container),
//     whichever is smaller for its population. Sparse items pay for the
//     bits they set instead of the transactions they miss, and
//     intersections deep in the Eclat lattice shrink toward cheap
//     array-array merges as the prefixes get rarer.
//
// The two layouts never mix inside one Index: every item bitmap and
// every intersection scratch buffer of an index shares its resolved
// mode, so the intersection kernels only ever see same-layout operands.
// Which mode an index resolves to is decided per index by density (see
// autoMode), overridable via NewIndexMode; the P6/P7 benchmarks are the
// evidence behind the ModeAuto thresholds and DefaultIndexMode.

const (
	chunkBits  = 1 << 16        // transactions per chunk
	chunkWords = chunkBits / 64 // words per bitmap container
	chunkMask  = chunkBits - 1  // offset of a tid within its chunk
	// arrayMaxCard is the array→bitmap flip point per container: above
	// it, 2^16 bits packed as words (8 KiB) are smaller than the sorted
	// uint16 array and intersect in word-parallel strides. 4096 is the
	// classic roaring threshold (uint16 array of 4096 = the 8 KiB
	// break-even).
	arrayMaxCard = chunkBits / 16
)

// container is one populated 2^16-bit chunk of a chunked Bitmap. Exactly
// one of arr and words is non-nil.
type container struct {
	key   uint32   // chunk number: covers tids [key<<16, (key+1)<<16)
	card  int32    // set-bit count
	arr   []uint16 // sorted in-chunk offsets (array form)
	words []uint64 // chunkWords-long bitset (bitmap form)
}

// Bitmap is a set of transaction ids in the dense or chunked layout.
// Item bitmaps handed out by an Index are immutable shared state;
// scratch bitmaps (Index.PrepareScratch) are single-writer intersection
// targets that recycle their container storage across AndBitmaps calls.
type Bitmap struct {
	n      int // universe size (number of transactions)
	dense  []uint64
	chunks []container

	// Result-storage recycling for scratch bitmaps: array containers
	// carve from arrArena, bitmap containers reuse wordsPool entries, so
	// a warm scratch buffer absorbs intersections without allocating.
	arrArena  []uint16
	arrUsed   int
	wordsPool [][]uint64
	wordsUsed int
}

// Len returns the universe size in bits (the transaction count).
func (b *Bitmap) Len() int { return b.n }

// Dense reports whether the bitmap is in the flat []uint64 layout.
func (b *Bitmap) Dense() bool { return b.dense != nil }

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	if b.dense != nil {
		n := 0
		for _, w := range b.dense {
			n += bits.OnesCount64(w)
		}
		return n
	}
	n := 0
	for i := range b.chunks {
		n += int(b.chunks[i].card)
	}
	return n
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitmap) ForEach(fn func(tid int)) {
	if b.dense != nil {
		for wi, w := range b.dense {
			for w != 0 {
				fn(wi<<6 + bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
		return
	}
	for i := range b.chunks {
		c := &b.chunks[i]
		base := int(c.key) << 16
		if c.arr != nil {
			for _, off := range c.arr {
				fn(base + int(off))
			}
			continue
		}
		for wi, w := range c.words {
			for w != 0 {
				fn(base + wi<<6 + bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
	}
}

// reset prepares b as an empty chunked intersection target over an
// n-transaction universe, recycling container storage.
func (b *Bitmap) reset(n int) {
	b.n = n
	b.dense = nil
	b.chunks = b.chunks[:0]
	b.arrUsed = 0
	b.wordsUsed = 0
}

// ensureDense prepares b as a dense intersection target of the given
// word width, reusing its buffer when wide enough.
func (b *Bitmap) ensureDense(words int) {
	b.chunks = b.chunks[:0]
	if cap(b.dense) >= words {
		b.dense = b.dense[:words]
		return
	}
	b.dense = make([]uint64, words)
}

// grabArr reserves capacity for up to n array-container entries from the
// recycled arena. Call commitArr with the final slice to advance the
// cursor. Growing abandons the old arena to any slices already carved
// from it (they keep it alive), so capacity converges after one use.
func (b *Bitmap) grabArr(n int) []uint16 {
	if b.arrUsed+n > len(b.arrArena) {
		size := 2 * (b.arrUsed + n)
		if size < chunkBits/8 {
			size = chunkBits / 8
		}
		b.arrArena = make([]uint16, size)
		b.arrUsed = 0
	}
	return b.arrArena[b.arrUsed : b.arrUsed : b.arrUsed+n]
}

func (b *Bitmap) commitArr(s []uint16) { b.arrUsed += len(s) }

// grabWords returns a recycled chunkWords-long buffer. releaseWords
// returns the most recent one (when a result converted to array form).
func (b *Bitmap) grabWords() []uint64 {
	if b.wordsUsed == len(b.wordsPool) {
		b.wordsPool = append(b.wordsPool, make([]uint64, chunkWords))
	}
	w := b.wordsPool[b.wordsUsed]
	b.wordsUsed++
	return w
}

func (b *Bitmap) releaseWords() { b.wordsUsed-- }

// AndBitmaps sets dst = a ∩ b and returns the cardinality of the result.
// a and b must share one layout and universe (bitmaps of one Index, or
// scratch results over it); dst must not alias either operand. Array
// results recycle dst's internal storage, so a pooled scratch bitmap
// intersects without allocating once warm.
func AndBitmaps(dst, a, b *Bitmap) int {
	if a.dense != nil || b.dense != nil {
		dst.ensureDense(len(a.dense))
		dst.n = a.n
		return AndInto(dst.dense, a.dense, b.dense)
	}
	dst.reset(a.n)
	total := 0
	i, j := 0, 0
	for i < len(a.chunks) && j < len(b.chunks) {
		ca, cb := &a.chunks[i], &b.chunks[j]
		switch {
		case ca.key < cb.key:
			i++
		case cb.key < ca.key:
			j++
		default:
			total += intersectContainers(dst, ca, cb)
			i++
			j++
		}
	}
	return total
}

// AndCardinality returns |a ∩ b| without materializing the result. Same
// layout/universe contract as AndBitmaps.
func AndCardinality(a, b *Bitmap) int {
	if a.dense != nil || b.dense != nil {
		n := 0
		for w, aw := range a.dense {
			n += bits.OnesCount64(aw & b.dense[w])
		}
		return n
	}
	total := 0
	i, j := 0, 0
	for i < len(a.chunks) && j < len(b.chunks) {
		ca, cb := &a.chunks[i], &b.chunks[j]
		switch {
		case ca.key < cb.key:
			i++
		case cb.key < ca.key:
			j++
		default:
			total += containerAndCard(ca, cb)
			i++
			j++
		}
	}
	return total
}

// intersectContainers appends ca ∩ cb to dst.chunks (omitting empty
// results) and returns its cardinality. The result container picks its
// own form by density: array-involved intersections can only shrink, so
// they stay arrays; bitmap×bitmap results flip to array form when they
// fall under the threshold.
func intersectContainers(dst *Bitmap, ca, cb *container) int {
	switch {
	case ca.arr != nil && cb.arr != nil:
		small, large := ca.arr, cb.arr
		if len(small) > len(large) {
			small, large = large, small
		}
		out := dst.grabArr(len(small))
		i, j := 0, 0
		for i < len(small) && j < len(large) {
			x, y := small[i], large[j]
			switch {
			case x == y:
				out = append(out, x)
				i++
				j++
			case x < y:
				i++
			default:
				j++
			}
		}
		dst.commitArr(out)
		if len(out) == 0 {
			return 0
		}
		dst.chunks = append(dst.chunks, container{key: ca.key, card: int32(len(out)), arr: out})
		return len(out)

	case ca.arr != nil || cb.arr != nil:
		arr, words := ca.arr, cb.words
		if arr == nil {
			arr, words = cb.arr, ca.words
		}
		out := dst.grabArr(len(arr))
		for _, off := range arr {
			if words[off>>6]&(1<<(off&63)) != 0 {
				out = append(out, off)
			}
		}
		dst.commitArr(out)
		if len(out) == 0 {
			return 0
		}
		dst.chunks = append(dst.chunks, container{key: ca.key, card: int32(len(out)), arr: out})
		return len(out)

	default:
		w := dst.grabWords()
		card := 0
		for k := range w {
			v := ca.words[k] & cb.words[k]
			w[k] = v
			card += bits.OnesCount64(v)
		}
		if card == 0 {
			dst.releaseWords()
			return 0
		}
		if card <= arrayMaxCard {
			out := dst.grabArr(card)
			for wi, v := range w {
				for v != 0 {
					out = append(out, uint16(wi<<6+bits.TrailingZeros64(v)))
					v &= v - 1
				}
			}
			dst.commitArr(out)
			dst.releaseWords()
			dst.chunks = append(dst.chunks, container{key: ca.key, card: int32(card), arr: out})
			return card
		}
		dst.chunks = append(dst.chunks, container{key: ca.key, card: int32(card), words: w})
		return card
	}
}

// containerAndCard is intersectContainers without the materialization.
func containerAndCard(ca, cb *container) int {
	switch {
	case ca.arr != nil && cb.arr != nil:
		n, i, j := 0, 0, 0
		for i < len(ca.arr) && j < len(cb.arr) {
			x, y := ca.arr[i], cb.arr[j]
			switch {
			case x == y:
				n++
				i++
				j++
			case x < y:
				i++
			default:
				j++
			}
		}
		return n
	case ca.arr != nil || cb.arr != nil:
		arr, words := ca.arr, cb.words
		if arr == nil {
			arr, words = cb.arr, ca.words
		}
		n := 0
		for _, off := range arr {
			if words[off>>6]&(1<<(off&63)) != 0 {
				n++
			}
		}
		return n
	default:
		n := 0
		for k, aw := range ca.words {
			n += bits.OnesCount64(aw & cb.words[k])
		}
		return n
	}
}

// setAscending sets a bit in a chunked bitmap under construction. Bits
// must arrive in strictly ascending order (the transaction scan order of
// NewIndex). arena is the item's private []uint16 window for array
// containers; used tracks how much of it is consumed and is returned
// updated.
func (b *Bitmap) setAscending(tid int, arena []uint16, used int) int {
	key := uint32(tid >> 16)
	off := uint16(tid & chunkMask)
	if len(b.chunks) == 0 || b.chunks[len(b.chunks)-1].key != key {
		b.chunks = append(b.chunks, container{key: key, arr: arena[used:used:len(arena)]})
	}
	c := &b.chunks[len(b.chunks)-1]
	switch {
	case c.words != nil:
		c.words[off>>6] |= 1 << (off & 63)
	case int(c.card) == arrayMaxCard:
		// Flip to bitmap form; the abandoned array window is handed back
		// to the arena for this item's later chunks.
		w := make([]uint64, chunkWords)
		for _, o := range c.arr {
			w[o>>6] |= 1 << (o & 63)
		}
		w[off>>6] |= 1 << (off & 63)
		used -= len(c.arr)
		c.arr = nil
		c.words = w
	default:
		c.arr = append(c.arr, off)
		used++
	}
	c.card++
	return used
}

// andScratchPool recycles the intermediate bitmaps multi-way
// SupportCount folds need in chunked mode (Apriori's candidate-counting
// hot path). Buffers are reshaped per use, so one pool serves indexes of
// any size or mode.
var andScratchPool = sync.Pool{New: func() any { return new([2]Bitmap) }}
