package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cuisines
BenchmarkPdistParallel/workers=8-8   	      20	  52783924 ns/op	  18.73 d0	  268770 B/op	       4 allocs/op
BenchmarkMineRegionsParallel-8       	      10	 104000000 ns/op
PASS
ok  	cuisines	3.210s
`

func TestParseBench(t *testing.T) {
	results, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkPdistParallel/workers=8" || r.Procs != 8 {
		t.Fatalf("first result: %+v", r)
	}
	if r.Iterations != 20 || r.NsPerOp != 52783924 {
		t.Fatalf("first result numbers: %+v", r)
	}
	if r.Metrics["d0"] != 18.73 {
		t.Fatalf("custom metric: %+v", r.Metrics)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 268770 {
		t.Fatalf("bytes/op: %+v", r)
	}
}

func TestMergeRunAndCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	results, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := MergeRun(path, Run{Label: "before", Go: "go1.24", Date: "2026-08-08", Results: results}); err != nil {
		t.Fatal(err)
	}
	if err := MergeRun(path, Run{Label: "after", Go: "go1.24", Date: "2026-08-08", Results: results}); err != nil {
		t.Fatal(err)
	}
	// Re-merging an existing label replaces in place instead of growing.
	if err := MergeRun(path, Run{Label: "before", Go: "go1.24", Date: "2026-08-08", Results: results[:1]}); err != nil {
		t.Fatal(err)
	}
	if err := CheckFile(path); err != nil {
		t.Fatalf("valid file failed check: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), `"label"`); got != 2 {
		t.Fatalf("file has %d runs, want 2 (same-label merge must replace)", got)
	}
	if !strings.HasPrefix(string(data), `{
  "schema": "cuisines-bench/v1"`) {
		t.Fatalf("unexpected document head:\n%s", data)
	}
}

func TestCheckRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"schema":   `{"schema":"other/v9","runs":[{"label":"x","results":[{"name":"B","ns_per_op":1}]}]}`,
		"noruns":   `{"schema":"cuisines-bench/v1","runs":[]}`,
		"nolabel":  `{"schema":"cuisines-bench/v1","runs":[{"label":"","results":[{"name":"B","ns_per_op":1}]}]}`,
		"zeronsop": `{"schema":"cuisines-bench/v1","runs":[{"label":"x","results":[{"name":"B","ns_per_op":0}]}]}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := CheckFile(path); err == nil {
			t.Errorf("%s: invalid file passed check", name)
		}
	}
}
