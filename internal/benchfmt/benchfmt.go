// Package benchfmt holds the cuisines-bench/v1 report format shared by
// cmd/benchjson (which records `go test -bench` suites) and cmd/loadgen
// (which records daemon load-test runs): the JSON document types, the
// standard-bench-output parser, the label-merging writer, and the
// validator CI runs over committed BENCH_*.json files.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Schema identifies the JSON layout; bump on breaking changes.
const Schema = "cuisines-bench/v1"

// File is the committed JSON document.
type File struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// Run is one labeled benchmark invocation.
type Run struct {
	Label     string   `json:"label"`
	Go        string   `json:"go"`
	Date      string   `json:"date"`
	Benchtime string   `json:"benchtime,omitempty"`
	Results   []Result `json:"results"`
}

// Result is one measurement. For go-test benchmarks it is one parsed
// output line; for loadgen it is one endpoint's latency summary, with
// NsPerOp the mean latency and percentiles under Metrics. Metrics holds
// custom units (e.g. "patterns", "d0", "p99_ms").
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

var procsSuffix = regexp.MustCompile(`-(\d+)$`)

// ParseBench parses standard `go test -bench` output lines:
//
//	BenchmarkName/sub-8   20   52783924 ns/op   18.73 d0   268770 B/op   4 allocs/op
//
// i.e. a name (with optional -GOMAXPROCS suffix), an iteration count,
// then (value, unit) pairs. Unknown units land in Metrics. Non-benchmark
// lines (goos/pkg headers, PASS, ok) are skipped.
func ParseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		res := Result{Name: fields[0]}
		if m := procsSuffix.FindStringSubmatch(res.Name); m != nil {
			res.Procs, _ = strconv.Atoi(m[1])
			res.Name = strings.TrimSuffix(res.Name, m[0])
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		res.Iterations = iters
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q: %v", fields[i], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				v := val
				res.BytesPerOp = &v
			case "allocs/op":
				v := val
				res.AllocsPerOp = &v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// MergeRun loads the output file if present, replaces any existing run
// with the same label (keeping its position, so "before" stays first),
// appends otherwise, and writes the file back.
func MergeRun(path string, run Run) error {
	f := File{Schema: Schema}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not valid benchjson: %v", path, err)
		}
		if f.Schema != Schema {
			return fmt.Errorf("existing %s has schema %q, want %q", path, f.Schema, Schema)
		}
	}
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == run.Label {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckFile validates a benchjson document: schema match, at least one
// run, every run labeled with at least one named result, every result
// with a positive ns/op.
func CheckFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	if f.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", f.Schema, Schema)
	}
	if len(f.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	for i, r := range f.Runs {
		if r.Label == "" {
			return fmt.Errorf("run %d has no label", i)
		}
		if len(r.Results) == 0 {
			return fmt.Errorf("run %q has no results", r.Label)
		}
		for j, res := range r.Results {
			if res.Name == "" {
				return fmt.Errorf("run %q result %d has no name", r.Label, j)
			}
			if res.NsPerOp <= 0 {
				return fmt.Errorf("run %q result %q has non-positive ns/op", r.Label, res.Name)
			}
		}
	}
	return nil
}
