// Package encode reimplements the paper's feature construction
// (Sec. VI.A): every mined pattern is flattened to its sorted "string
// pattern", the union of string patterns across all cuisines is label
// encoded, and each cuisine becomes a feature vector over the encoded
// pattern vocabulary. Binary (paper), support-weighted and TF-IDF
// weightings are provided; the weighting ablation (A3 in DESIGN.md)
// compares them.
package encode

import (
	"fmt"
	"math"
	"sort"

	"cuisines/internal/itemset"
	"cuisines/internal/matrix"
)

// LabelEncoder maps categorical strings to dense integer labels, like
// sklearn's LabelEncoder: labels are assigned in sorted order of the
// fitted vocabulary.
type LabelEncoder struct {
	classes []string
	index   map[string]int
}

// FitLabels builds an encoder over the unique values of the input.
func FitLabels(values []string) *LabelEncoder {
	uniq := make(map[string]bool, len(values))
	for _, v := range values {
		uniq[v] = true
	}
	classes := make([]string, 0, len(uniq))
	for v := range uniq {
		classes = append(classes, v)
	}
	sort.Strings(classes)
	idx := make(map[string]int, len(classes))
	for i, c := range classes {
		idx[c] = i
	}
	return &LabelEncoder{classes: classes, index: idx}
}

// Classes returns the sorted fitted vocabulary.
func (e *LabelEncoder) Classes() []string { return e.classes }

// Len returns the vocabulary size.
func (e *LabelEncoder) Len() int { return len(e.classes) }

// Transform maps a value to its label. Unknown values error (matching
// sklearn's behaviour).
func (e *LabelEncoder) Transform(v string) (int, error) {
	i, ok := e.index[v]
	if !ok {
		return 0, fmt.Errorf("encode: unseen label %q", v)
	}
	return i, nil
}

// Inverse maps a label back to its value.
func (e *LabelEncoder) Inverse(i int) (string, error) {
	if i < 0 || i >= len(e.classes) {
		return "", fmt.Errorf("encode: label %d out of range %d", i, len(e.classes))
	}
	return e.classes[i], nil
}

// Weighting selects how pattern membership is expressed in the feature
// matrix.
type Weighting int

const (
	// Binary is the paper's encoding: 1 if the cuisine mined the pattern.
	Binary Weighting = iota
	// SupportWeighted writes the pattern's support instead of 1.
	SupportWeighted
	// TFIDF writes support * log(N/df): patterns shared by every cuisine
	// stop dominating the geometry.
	TFIDF
)

// String names the weighting.
func (w Weighting) String() string {
	switch w {
	case Binary:
		return "binary"
	case SupportWeighted:
		return "support"
	case TFIDF:
		return "tfidf"
	default:
		return fmt.Sprintf("weighting(%d)", int(w))
	}
}

// ParseWeighting parses a weighting name.
func ParseWeighting(s string) (Weighting, error) {
	switch s {
	case "binary":
		return Binary, nil
	case "support":
		return SupportWeighted, nil
	case "tfidf":
		return TFIDF, nil
	default:
		return 0, fmt.Errorf("encode: unknown weighting %q", s)
	}
}

// PatternMatrix is the cuisines x patterns feature matrix with its
// vocabulary.
type PatternMatrix struct {
	// Regions holds row labels in matrix row order.
	Regions []string
	// Vocabulary holds the encoded string patterns in column order.
	Vocabulary []string
	// X is the feature matrix, len(Regions) x len(Vocabulary).
	X *matrix.Dense
}

// BuildPatternMatrix vectorizes per-region mined patterns. regions fixes
// the row order; patterns[i] belongs to regions[i].
func BuildPatternMatrix(regions []string, patterns [][]itemset.Pattern, w Weighting) (*PatternMatrix, error) {
	if len(regions) != len(patterns) {
		return nil, fmt.Errorf("encode: %d regions but %d pattern sets", len(regions), len(patterns))
	}
	// Union of string patterns -> label encoding (the paper's unique-set
	// + LabelEncoder step).
	var all []string
	for _, ps := range patterns {
		for _, p := range ps {
			all = append(all, p.StringPattern())
		}
	}
	enc := FitLabels(all)

	x := matrix.NewDense(len(regions), enc.Len())
	df := make([]int, enc.Len())
	for i, ps := range patterns {
		for _, p := range ps {
			j, err := enc.Transform(p.StringPattern())
			if err != nil {
				return nil, err
			}
			if x.At(i, j) == 0 {
				df[j]++
			}
			switch w {
			case Binary:
				x.Set(i, j, 1)
			case SupportWeighted, TFIDF:
				x.Set(i, j, p.Support)
			}
		}
	}
	if w == TFIDF {
		n := float64(len(regions))
		for j := 0; j < enc.Len(); j++ {
			idf := math.Log(n/float64(df[j])) + 1
			for i := 0; i < len(regions); i++ {
				if v := x.At(i, j); v != 0 {
					x.Set(i, j, v*idf)
				}
			}
		}
	}
	return &PatternMatrix{
		Regions:    append([]string(nil), regions...),
		Vocabulary: enc.Classes(),
		X:          x,
	}, nil
}

// PatternCount returns the number of distinct patterns region i mined
// (nonzero entries of its row).
func (pm *PatternMatrix) PatternCount(i int) int {
	n := 0
	for _, v := range pm.X.Row(i) {
		if v != 0 {
			n++
		}
	}
	return n
}

// SharedPatterns returns the number of vocabulary patterns regions i and
// j both mined.
func (pm *PatternMatrix) SharedPatterns(i, j int) int {
	ri, rj := pm.X.Row(i), pm.X.Row(j)
	n := 0
	for k := range ri {
		if ri[k] != 0 && rj[k] != 0 {
			n++
		}
	}
	return n
}
