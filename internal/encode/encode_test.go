package encode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cuisines/internal/itemset"
)

func TestFitLabelsSortedUnique(t *testing.T) {
	e := FitLabels([]string{"b", "a", "b", "c"})
	if e.Len() != 3 {
		t.Fatalf("len = %d", e.Len())
	}
	want := []string{"a", "b", "c"}
	for i, c := range e.Classes() {
		if c != want[i] {
			t.Fatalf("classes = %v", e.Classes())
		}
	}
}

func TestTransformInverseRoundTrip(t *testing.T) {
	e := FitLabels([]string{"x", "y", "z"})
	for _, c := range e.Classes() {
		i, err := e.Transform(c)
		if err != nil {
			t.Fatal(err)
		}
		back, err := e.Inverse(i)
		if err != nil || back != c {
			t.Fatalf("round trip %q -> %d -> %q", c, i, back)
		}
	}
}

func TestTransformUnknownErrors(t *testing.T) {
	e := FitLabels([]string{"x"})
	if _, err := e.Transform("nope"); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := e.Inverse(5); err == nil {
		t.Fatal("out-of-range inverse accepted")
	}
	if _, err := e.Inverse(-1); err == nil {
		t.Fatal("negative inverse accepted")
	}
}

func TestLabelEncoderSortedProperty(t *testing.T) {
	f := func(values []string) bool {
		e := FitLabels(values)
		classes := e.Classes()
		for i := 1; i < len(classes); i++ {
			if classes[i-1] >= classes[i] {
				return false
			}
		}
		// Transform must agree with position.
		for i, c := range classes {
			if j, err := e.Transform(c); err != nil || j != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func pat(sup float64, names ...string) itemset.Pattern {
	return itemset.Pattern{Items: itemset.FromNames(itemset.Ingredient, names...), Support: sup}
}

func TestBuildPatternMatrixBinary(t *testing.T) {
	regions := []string{"A", "B"}
	patterns := [][]itemset.Pattern{
		{pat(0.5, "x"), pat(0.3, "y", "z")},
		{pat(0.4, "x")},
	}
	pm, err := BuildPatternMatrix(regions, patterns, Binary)
	if err != nil {
		t.Fatal(err)
	}
	if pm.X.Rows() != 2 || pm.X.Cols() != 2 {
		t.Fatalf("shape %dx%d", pm.X.Rows(), pm.X.Cols())
	}
	// Vocabulary sorted: "x", "y+z".
	if pm.Vocabulary[0] != "x" || pm.Vocabulary[1] != "y+z" {
		t.Fatalf("vocab = %v", pm.Vocabulary)
	}
	if pm.X.At(0, 0) != 1 || pm.X.At(0, 1) != 1 || pm.X.At(1, 0) != 1 || pm.X.At(1, 1) != 0 {
		t.Fatalf("matrix = %v", pm.X)
	}
	if pm.PatternCount(0) != 2 || pm.PatternCount(1) != 1 {
		t.Fatal("pattern counts wrong")
	}
	if pm.SharedPatterns(0, 1) != 1 {
		t.Fatal("shared patterns wrong")
	}
}

func TestBuildPatternMatrixSupportWeighted(t *testing.T) {
	pm, err := BuildPatternMatrix([]string{"A"}, [][]itemset.Pattern{{pat(0.37, "x")}}, SupportWeighted)
	if err != nil {
		t.Fatal(err)
	}
	if pm.X.At(0, 0) != 0.37 {
		t.Fatalf("support weight = %v", pm.X.At(0, 0))
	}
}

func TestBuildPatternMatrixTFIDF(t *testing.T) {
	regions := []string{"A", "B"}
	patterns := [][]itemset.Pattern{
		{pat(0.5, "shared"), pat(0.5, "only-a")},
		{pat(0.5, "shared")},
	}
	pm, err := BuildPatternMatrix(regions, patterns, TFIDF)
	if err != nil {
		t.Fatal(err)
	}
	iShared, _ := FitLabels(pm.Vocabulary).Transform("shared")
	iOnly, _ := FitLabels(pm.Vocabulary).Transform("only-a")
	// A pattern unique to one cuisine gets more weight than a shared one.
	if pm.X.At(0, iOnly) <= pm.X.At(0, iShared) {
		t.Fatalf("tfidf did not upweight rare pattern: %v vs %v", pm.X.At(0, iOnly), pm.X.At(0, iShared))
	}
	// Shared pattern weight: 0.5 * (ln(2/2)+1) = 0.5.
	if math.Abs(pm.X.At(1, iShared)-0.5) > 1e-9 {
		t.Fatalf("shared tfidf = %v", pm.X.At(1, iShared))
	}
}

func TestBuildPatternMatrixLengthMismatch(t *testing.T) {
	if _, err := BuildPatternMatrix([]string{"A"}, nil, Binary); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestWeightingNames(t *testing.T) {
	for _, w := range []Weighting{Binary, SupportWeighted, TFIDF} {
		got, err := ParseWeighting(w.String())
		if err != nil || got != w {
			t.Fatalf("round trip %v", w)
		}
	}
	if _, err := ParseWeighting("bm25"); err == nil {
		t.Fatal("unknown weighting accepted")
	}
}

func TestDuplicatePatternsDoNotDoubleCount(t *testing.T) {
	// The same pattern twice in one region must not inflate counts or df.
	pm, err := BuildPatternMatrix([]string{"A"}, [][]itemset.Pattern{{pat(0.5, "x"), pat(0.5, "x")}}, Binary)
	if err != nil {
		t.Fatal(err)
	}
	if pm.X.Cols() != 1 || pm.PatternCount(0) != 1 {
		t.Fatal("duplicate pattern double counted")
	}
}

func TestPatternMatrixDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	regions := []string{"A", "B", "C"}
	var patterns [][]itemset.Pattern
	for range regions {
		var ps []itemset.Pattern
		for j := 0; j < 10; j++ {
			ps = append(ps, pat(r.Float64(), string(rune('a'+r.Intn(6)))))
		}
		patterns = append(patterns, ps)
	}
	a, err := BuildPatternMatrix(regions, patterns, Binary)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BuildPatternMatrix(regions, patterns, Binary)
	if !a.X.Equal(b.X, 0) {
		t.Fatal("non-deterministic matrix")
	}
}
