package matrix

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
)

// Dense keeps its dimensions and backing slice unexported, so plain gob
// encoding would silently produce an empty matrix. The explicit
// GobEncoder/GobDecoder pair round-trips the exact float64 bit patterns
// (gob encodes floats via math.Float64bits), which the artifact store
// relies on for byte-identical warm-disk pipeline replays.

type denseWire struct {
	Rows, Cols int
	Data       []float64
}

// GobEncode implements gob.GobEncoder.
func (m *Dense) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(denseWire{Rows: m.rows, Cols: m.cols, Data: m.data}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Dense) GobDecode(data []byte) error {
	var w denseWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	// Cap each dimension before multiplying: a crafted stream with
	// Rows=Cols=1<<32 would overflow the product to 0 and slip past
	// the length check with an empty Data slice.
	if w.Rows < 0 || w.Cols < 0 || w.Rows > math.MaxInt32 || w.Cols > math.MaxInt32 ||
		int64(len(w.Data)) != int64(w.Rows)*int64(w.Cols) {
		return fmt.Errorf("matrix: corrupt gob stream: %dx%d with %d values", w.Rows, w.Cols, len(w.Data))
	}
	m.rows, m.cols = w.Rows, w.Cols
	m.data = w.Data
	if m.data == nil {
		m.data = []float64{}
	}
	return nil
}
