package matrix

import "math"

// ColMeans returns the mean of each column. Zero rows yield all zeros.
func (m *Dense) ColMeans() []float64 {
	means := make([]float64, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// RowMeans returns the mean of each row. Zero cols yield all zeros.
func (m *Dense) RowMeans() []float64 {
	means := make([]float64, m.rows)
	if m.cols == 0 {
		return means
	}
	inv := 1 / float64(m.cols)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			s += v
		}
		means[i] = s * inv
	}
	return means
}

// CenterColumns subtracts each column's mean in place and returns the
// means that were removed. This is the "relative prevalence" construction
// of the authenticity metric: p_i^c = P_i^c - mean over cuisines.
func (m *Dense) CenterColumns() []float64 {
	means := m.ColMeans()
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	return means
}

// Scale multiplies every element in place.
func (m *Dense) Scale(f float64) {
	for i := range m.data {
		m.data[i] *= f
	}
}

// MaxAbs returns the largest absolute element value, 0 for an empty
// matrix.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v
	}
	return s
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SelectColumns returns a new matrix keeping only the listed columns, in
// the given order.
func (m *Dense) SelectColumns(cols []int) *Dense {
	out := NewDense(m.rows, len(cols))
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		for k, j := range cols {
			if j < 0 || j >= m.cols {
				panic("matrix: SelectColumns index out of range")
			}
			orow[k] = row[j]
		}
	}
	return out
}

// SelectRows returns a new matrix keeping only the listed rows, in the
// given order.
func (m *Dense) SelectRows(rows []int) *Dense {
	out := NewDense(len(rows), m.cols)
	for k, i := range rows {
		if i < 0 || i >= m.rows {
			panic("matrix: SelectRows index out of range")
		}
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// ColVariances returns the population variance of each column.
func (m *Dense) ColVariances() []float64 {
	vars := make([]float64, m.cols)
	if m.rows == 0 {
		return vars
	}
	means := m.ColMeans()
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			d := v - means[j]
			vars[j] += d * d
		}
	}
	inv := 1 / float64(m.rows)
	for j := range vars {
		vars[j] *= inv
	}
	return vars
}
