package matrix

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Flat codec: the artifact store's replacement for gob on Dense
// (DESIGN.md §10). The layout is little-endian and position-defined —
//
//	u64 rows | u64 cols | rows*cols × f64 (IEEE 754 bits, row-major)
//
// — so decoding is a bounds check plus one []float64 allocation filled
// by a straight scan, instead of gob's reflection walk over a temporary
// wire struct. Float values round-trip bit-exactly (encoded via
// math.Float64bits), which warm-disk pipeline replays depend on.

const flatHeaderSize = 16

// FlatSize returns the exact AppendFlat encoding size in bytes.
func (m *Dense) FlatSize() int { return flatHeaderSize + 8*len(m.data) }

// AppendFlat appends the flat encoding of m to dst and returns the
// extended slice.
func (m *Dense) AppendFlat(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.rows))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.cols))
	for _, v := range m.data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeFlat decodes an AppendFlat encoding. The whole payload must be
// present and exactly sized; anything else is an error (the artifact
// store treats codec errors as cache misses and recomputes).
func DecodeFlat(data []byte) (*Dense, error) {
	if len(data) < flatHeaderSize {
		return nil, fmt.Errorf("matrix: flat payload truncated: %d bytes", len(data))
	}
	rows := binary.LittleEndian.Uint64(data)
	cols := binary.LittleEndian.Uint64(data[8:])
	// Cap each dimension before multiplying: a crafted header with
	// rows=cols=1<<32 would overflow the product and slip past the
	// length check.
	if rows > math.MaxInt32 || cols > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: flat payload dimensions %dx%d out of range", rows, cols)
	}
	n := int(rows) * int(cols)
	if len(data) != flatHeaderSize+8*n {
		return nil, fmt.Errorf("matrix: flat payload %d bytes, want %d for %dx%d", len(data), flatHeaderSize+8*n, rows, cols)
	}
	out := make([]float64, n)
	body := data[flatHeaderSize:]
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return &Dense{rows: int(rows), cols: int(cols), data: out}, nil
}
