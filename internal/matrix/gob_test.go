package matrix

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

func TestDenseGobRoundTrip(t *testing.T) {
	m := NewDense(3, 2)
	vals := []float64{0.1, -2.5, math.Pi, 1e-300, 0, 42}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			m.Set(i, j, vals[i*2+j])
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	var got *Dense
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 3 || got.Cols() != 2 {
		t.Fatalf("round trip changed shape: %dx%d", got.Rows(), got.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Errorf("(%d,%d): got %v, want %v", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestDenseGobRejectsCorruptShape(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(denseWire{Rows: 2, Cols: 2, Data: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	var m Dense
	if err := m.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decode of mismatched shape succeeded, want error")
	}
}
