package matrix

import (
	"math"
	"testing"

	"cuisines/internal/rng"
)

// planted builds points that live on a 2-D plane embedded in dim
// dimensions, with anisotropic spread.
func planted(n, dim int, seed uint64) *Dense {
	r := rng.New(seed)
	// Two random orthogonal-ish directions.
	u := make([]float64, dim)
	v := make([]float64, dim)
	for i := 0; i < dim; i++ {
		u[i] = r.NormFloat64()
		v[i] = r.NormFloat64()
	}
	m := NewDense(n, dim)
	for i := 0; i < n; i++ {
		a := r.NormFloat64() * 10 // large variance direction
		b := r.NormFloat64() * 3  // smaller
		for j := 0; j < dim; j++ {
			m.Set(i, j, a*u[j]+b*v[j])
		}
	}
	return m
}

func TestPCAVarianceOrdering(t *testing.T) {
	m := planted(40, 12, 3)
	_, eig := m.PrincipalCoordinates(4, 0)
	for i := 1; i < len(eig); i++ {
		if eig[i] > eig[i-1]+1e-9 {
			t.Fatalf("eigenvalues not descending: %v", eig)
		}
	}
	if len(eig) < 2 {
		t.Fatalf("expected >= 2 components, got %v", eig)
	}
	// Rank-2 data: third component (if present) is negligible.
	if len(eig) > 2 && eig[2] > eig[0]*1e-6 {
		t.Fatalf("rank-2 data produced a real third component: %v", eig)
	}
}

func TestPCAPreservesPlanarDistances(t *testing.T) {
	m := planted(25, 15, 5)
	coords, _ := m.PrincipalCoordinates(2, 0)
	// Pairwise distances in the 2-D projection must match the original
	// (the data is exactly rank 2 after centering).
	for i := 0; i < m.Rows(); i++ {
		for j := i + 1; j < m.Rows(); j++ {
			var dOrig, dProj float64
			for c := 0; c < m.Cols(); c++ {
				d := m.At(i, c) - m.At(j, c)
				dOrig += d * d
			}
			for c := 0; c < coords.Cols(); c++ {
				d := coords.At(i, c) - coords.At(j, c)
				dProj += d * d
			}
			if math.Abs(math.Sqrt(dOrig)-math.Sqrt(dProj)) > 1e-6*math.Sqrt(dOrig)+1e-6 {
				t.Fatalf("distance (%d,%d) distorted: %v vs %v", i, j, math.Sqrt(dOrig), math.Sqrt(dProj))
			}
		}
	}
}

func TestPCADeterministic(t *testing.T) {
	m := planted(20, 8, 7)
	a, ea := m.PrincipalCoordinates(2, 0)
	b, eb := m.PrincipalCoordinates(2, 0)
	if !a.Equal(b, 0) {
		t.Fatal("PCA not deterministic")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("eigenvalues not deterministic")
		}
	}
}

func TestPCAEdgeCases(t *testing.T) {
	m := NewDense(0, 5)
	coords, eig := m.PrincipalCoordinates(2, 0)
	if coords.Rows() != 0 || len(eig) != 0 {
		t.Fatal("empty matrix PCA wrong")
	}
	// k > n clamps.
	m2 := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	coords2, _ := m2.PrincipalCoordinates(10, 0)
	if coords2.Cols() > 3 {
		t.Fatalf("k not clamped: %d", coords2.Cols())
	}
	// Constant data has no components.
	m3 := FromRows([][]float64{{2, 2}, {2, 2}})
	coords3, eig3 := m3.PrincipalCoordinates(2, 0)
	if len(eig3) != 0 || coords3.Cols() != 0 {
		t.Fatalf("constant data produced components: %v", eig3)
	}
}

func TestPCASeparatesClusters(t *testing.T) {
	// Two well-separated groups must be separated along PC1.
	r := rng.New(11)
	m := NewDense(20, 6)
	for i := 0; i < 20; i++ {
		offset := 0.0
		if i >= 10 {
			offset = 50
		}
		for j := 0; j < 6; j++ {
			m.Set(i, j, offset+r.NormFloat64())
		}
	}
	coords, _ := m.PrincipalCoordinates(1, 0)
	// Group means along PC1 must be far apart relative to spread.
	var m1, m2 float64
	for i := 0; i < 10; i++ {
		m1 += coords.At(i, 0)
		m2 += coords.At(i+10, 0)
	}
	m1 /= 10
	m2 /= 10
	if math.Abs(m1-m2) < 20 {
		t.Fatalf("clusters not separated on PC1: %v vs %v", m1, m2)
	}
}
