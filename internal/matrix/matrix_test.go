package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatal("dims wrong")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatal("not zeroed")
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At = %v", m.At(0, 1))
	}
}

func TestBoundsPanic(t *testing.T) {
	m := NewDense(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(2) },
		func() { m.Col(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatal("FromRows wrong")
	}
	// mutation of source must not affect matrix
	src := [][]float64{{1, 2}}
	m2 := FromRows(src)
	src[0][0] = 99
	if m2.At(0, 0) != 1 {
		t.Fatal("FromRows did not copy")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowAliasesColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Row(0)[1] = 9
	if m.At(0, 1) != 9 {
		t.Fatal("Row should alias")
	}
	c := m.Col(0)
	c[0] = 77
	if m.At(0, 0) == 77 {
		t.Fatal("Col should copy")
	}
	rc := m.RowCopy(1)
	rc[0] = 55
	if m.At(1, 0) == 55 {
		t.Fatal("RowCopy should copy")
	}
}

func TestColMeansRowMeans(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {3, 4, 5}})
	cm := m.ColMeans()
	if !almostEq(cm[0], 2) || !almostEq(cm[1], 3) || !almostEq(cm[2], 4) {
		t.Fatalf("ColMeans = %v", cm)
	}
	rm := m.RowMeans()
	if !almostEq(rm[0], 2) || !almostEq(rm[1], 4) {
		t.Fatalf("RowMeans = %v", rm)
	}
}

func TestCenterColumns(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 20}, {5, 30}})
	means := m.CenterColumns()
	if !almostEq(means[0], 3) || !almostEq(means[1], 20) {
		t.Fatalf("means = %v", means)
	}
	// Columns now sum to zero — the authenticity invariant.
	for j := 0; j < m.Cols(); j++ {
		s := 0.0
		for i := 0; i < m.Rows(); i++ {
			s += m.At(i, j)
		}
		if !almostEq(s, 0) {
			t.Fatalf("column %d sums to %v after centering", j, s)
		}
	}
}

func TestScaleSumNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if !almostEq(m.FrobeniusNorm(), 5) {
		t.Fatalf("norm = %v", m.FrobeniusNorm())
	}
	m.Scale(2)
	if !almostEq(m.Sum(), 14) {
		t.Fatalf("sum = %v", m.Sum())
	}
	if !almostEq(m.MaxAbs(), 8) {
		t.Fatalf("maxabs = %v", m.MaxAbs())
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliased")
	}
	if !m.Equal(m.Clone(), 0) {
		t.Fatal("Equal(self) false")
	}
	if m.Equal(NewDense(1, 3), 0) {
		t.Fatal("Equal across shapes")
	}
}

func TestSelectColumnsRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	sc := m.SelectColumns([]int{2, 0})
	if sc.Cols() != 2 || sc.At(0, 0) != 3 || sc.At(1, 1) != 4 {
		t.Fatalf("SelectColumns = %v", sc)
	}
	sr := m.SelectRows([]int{1})
	if sr.Rows() != 1 || sr.At(0, 2) != 6 {
		t.Fatalf("SelectRows = %v", sr)
	}
}

func TestColVariances(t *testing.T) {
	m := FromRows([][]float64{{1, 5}, {3, 5}})
	v := m.ColVariances()
	if !almostEq(v[0], 1) || !almostEq(v[1], 0) {
		t.Fatalf("variances = %v", v)
	}
}

func TestEmptyMatrixReductions(t *testing.T) {
	m := NewDense(0, 3)
	if len(m.ColMeans()) != 3 || m.Sum() != 0 || m.MaxAbs() != 0 {
		t.Fatal("empty reductions wrong")
	}
	m2 := NewDense(2, 0)
	if len(m2.RowMeans()) != 2 {
		t.Fatal("empty row means wrong")
	}
}

func TestCenteringPreservesDifferencesProperty(t *testing.T) {
	// Column-centering must not change differences between rows — the
	// property that makes authenticity clustering distances meaningful.
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 2+r.Intn(6), 1+r.Intn(6)
		m := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, r.NormFloat64())
			}
		}
		before := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			copy(before.Row(i), m.Row(i))
		}
		m.CenterColumns()
		for a := 0; a < rows; a++ {
			for b := 0; b < rows; b++ {
				for j := 0; j < cols; j++ {
					d0 := before.At(a, j) - before.At(b, j)
					d1 := m.At(a, j) - m.At(b, j)
					if math.Abs(d0-d1) > 1e-9 {
						t.Fatal("centering changed row differences")
					}
				}
			}
		}
	}
}
