// Package matrix implements the small dense float64 matrix used by the
// feature-encoding, authenticity, and clustering pipelines. It is not a
// general linear-algebra library: it provides exactly the operations the
// paper's pipeline needs (row/column reductions, centering, scaling, row
// extraction) with bounds-checked, allocation-conscious implementations.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// NewDense allocates a zero rows x cols matrix. It panics on negative
// dimensions.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length. The data is copied.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("matrix: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r)))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage. Mutations
// through the slice mutate the matrix.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RowCopy returns an independent copy of row i.
func (m *Dense) RowCopy(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.Row(i))
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports element-wise equality within tol.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact preview for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%dx%d)", m.rows, m.cols)
	if m.rows*m.cols <= 64 {
		b.WriteString(" [")
		for i := 0; i < m.rows; i++ {
			if i > 0 {
				b.WriteString("; ")
			}
			for j := 0; j < m.cols; j++ {
				if j > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%.3g", m.At(i, j))
			}
		}
		b.WriteByte(']')
	}
	return b.String()
}
