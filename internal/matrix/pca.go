package matrix

import "math"

// PrincipalCoordinates projects the rows of x onto their top-k principal
// components, returning an n x k coordinate matrix and the component
// variances (eigenvalues of the covariance, descending). It is the
// ordination used for the 2-D "cuisine map" view of the authenticity
// features.
//
// The implementation power-iterates the n x n Gram matrix of the
// column-centered data with deflation — O(n^2) per iteration regardless
// of feature count, which suits this package's tall-and-wide matrices
// (26 cuisines x thousands of patterns). The sign of each component is
// normalized (largest-magnitude coordinate positive) so results are
// deterministic.
func (m *Dense) PrincipalCoordinates(k, iters int) (*Dense, []float64) {
	n := m.Rows()
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return NewDense(n, 0), nil
	}
	if iters <= 0 {
		iters = 200
	}

	// Column-center a working copy.
	c := m.Clone()
	c.CenterColumns()

	// Gram matrix G = C * C^T.
	g := NewDense(n, n)
	for i := 0; i < n; i++ {
		ri := c.Row(i)
		for j := i; j < n; j++ {
			s := 0.0
			rj := c.Row(j)
			for t := range ri {
				s += ri[t] * rj[t]
			}
			g.Set(i, j, s)
			g.Set(j, i, s)
		}
	}

	coords := NewDense(n, k)
	eigvals := make([]float64, 0, k)
	v := make([]float64, n)
	gv := make([]float64, n)
	for comp := 0; comp < k; comp++ {
		// Deterministic start vector.
		for i := range v {
			v[i] = 1 / float64(i+1+comp)
		}
		normalize(v)
		lambda := 0.0
		for it := 0; it < iters; it++ {
			matVec(g, v, gv)
			l := norm(gv)
			if l == 0 {
				break
			}
			for i := range v {
				v[i] = gv[i] / l
			}
			if math.Abs(l-lambda) < 1e-12*math.Max(1, l) {
				lambda = l
				break
			}
			lambda = l
		}
		if lambda <= 1e-12 {
			break
		}
		// Sign convention: largest-magnitude entry positive.
		maxAbs, sign := 0.0, 1.0
		for _, x := range v {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
				if x < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		scale := sign * math.Sqrt(lambda)
		for i := 0; i < n; i++ {
			coords.Set(i, comp, v[i]*scale)
		}
		// Covariance eigenvalue = Gram eigenvalue / n.
		eigvals = append(eigvals, lambda/float64(n))
		// Deflate.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Add(i, j, -lambda*v[i]*v[j])
			}
		}
	}
	if len(eigvals) < k {
		coords = coords.SelectColumns(seq(len(eigvals)))
	}
	return coords, eigvals
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func matVec(g *Dense, v, out []float64) {
	n := g.Rows()
	for i := 0; i < n; i++ {
		s := 0.0
		row := g.Row(i)
		for j := 0; j < n; j++ {
			s += row[j] * v[j]
		}
		out[i] = s
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	l := norm(v)
	if l == 0 {
		return
	}
	for i := range v {
		v[i] /= l
	}
}
