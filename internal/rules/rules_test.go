package rules

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cuisines/internal/fpgrowth"
	"cuisines/internal/itemset"
)

func ing(name string) itemset.Item {
	return itemset.NewItem(name, itemset.Ingredient)
}

func txn(names ...string) itemset.Transaction {
	return itemset.Transaction{Items: itemset.FromNames(itemset.Ingredient, names...)}
}

// mineFor mines a small dataset to feed Generate with a real pattern set.
func mineFor(t *testing.T, minSup float64, txns ...itemset.Transaction) []itemset.Pattern {
	t.Helper()
	return fpgrowth.Mine(itemset.NewDataset(txns), minSup)
}

func TestGenerateKnownConfidence(t *testing.T) {
	// soy appears 4x, {soy, rice} 3x -> soy => rice conf 0.75.
	ps := mineFor(t, 0.2,
		txn("soy", "rice"), txn("soy", "rice"), txn("soy", "rice"),
		txn("soy"), txn("miso"),
	)
	rs := Generate(ps, Options{MinConfidence: 0.5})
	var found *Rule
	for i := range rs {
		if rs[i].Antecedent.String() == "soy" && rs[i].Consequent.String() == "rice" {
			found = &rs[i]
		}
	}
	if found == nil {
		t.Fatalf("soy => rice missing: %v", rs)
	}
	if math.Abs(found.Confidence-0.75) > 1e-9 {
		t.Fatalf("confidence = %v", found.Confidence)
	}
	// supp(rice) = 0.6 -> lift = 0.75/0.6 = 1.25.
	if math.Abs(found.Lift-1.25) > 1e-9 {
		t.Fatalf("lift = %v", found.Lift)
	}
	// leverage = 0.6 - 0.8*0.6 = 0.12.
	if math.Abs(found.Leverage-0.12) > 1e-9 {
		t.Fatalf("leverage = %v", found.Leverage)
	}
	// conviction = (1-0.6)/(1-0.75) = 1.6.
	if math.Abs(found.Conviction-1.6) > 1e-9 {
		t.Fatalf("conviction = %v", found.Conviction)
	}
}

func TestGenerateConfidenceOneConviction(t *testing.T) {
	ps := mineFor(t, 0.4, txn("a", "b"), txn("a", "b"), txn("c"))
	rs := Generate(ps, Options{MinConfidence: 0.9})
	if len(rs) == 0 {
		t.Fatal("no rules")
	}
	for _, r := range rs {
		if r.Confidence == 1 && !math.IsInf(r.Conviction, 1) {
			t.Fatalf("conviction for perfect rule = %v", r.Conviction)
		}
	}
}

func TestGenerateMinConfidenceFilters(t *testing.T) {
	ps := mineFor(t, 0.2,
		txn("soy", "rice"), txn("soy"), txn("soy"), txn("soy"), txn("rice"),
	)
	// soy => rice has confidence 0.25.
	rs := Generate(ps, Options{MinConfidence: 0.5})
	for _, r := range rs {
		if r.Antecedent.String() == "soy" && r.Consequent.String() == "rice" {
			t.Fatalf("low-confidence rule survived: %v", r)
		}
	}
}

func TestGenerateMinLiftAndCap(t *testing.T) {
	ps := mineFor(t, 0.1,
		txn("a", "b", "c"), txn("a", "b", "c"), txn("a", "b"), txn("c"), txn("c", "a"),
	)
	all := Generate(ps, Options{MinConfidence: 0.1})
	lifted := Generate(ps, Options{MinConfidence: 0.1, MinLift: 1.2})
	if len(lifted) >= len(all) {
		t.Fatalf("lift filter did nothing: %d vs %d", len(lifted), len(all))
	}
	capped := Generate(ps, Options{MinConfidence: 0.1, MaxRules: 3})
	if len(capped) != 3 {
		t.Fatalf("cap = %d", len(capped))
	}
}

func TestGenerateSortedByConfidence(t *testing.T) {
	ps := mineFor(t, 0.1,
		txn("a", "b"), txn("a", "b"), txn("a", "c"), txn("b"), txn("c", "a"),
	)
	rs := Generate(ps, Options{MinConfidence: 0.1})
	for i := 1; i < len(rs); i++ {
		if rs[i].Confidence > rs[i-1].Confidence+1e-12 {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func TestGenerateDisjointSides(t *testing.T) {
	ps := mineFor(t, 0.2, txn("a", "b", "c"), txn("a", "b", "c"), txn("a", "b"))
	for _, r := range Generate(ps, Options{MinConfidence: 0.1}) {
		if !r.Antecedent.Intersect(r.Consequent).Empty() {
			t.Fatalf("overlapping rule: %v", r)
		}
		if r.Antecedent.Empty() || r.Consequent.Empty() {
			t.Fatalf("empty side: %v", r)
		}
	}
}

func TestGenerateSkipsSingletons(t *testing.T) {
	ps := []itemset.Pattern{{Items: itemset.NewSet(ing("a")), Support: 0.5}}
	if rs := Generate(ps, Options{}); len(rs) != 0 {
		t.Fatalf("rules from singleton: %v", rs)
	}
}

func TestFilters(t *testing.T) {
	ps := mineFor(t, 0.2, txn("a", "b"), txn("a", "b"), txn("b"))
	rs := Generate(ps, Options{MinConfidence: 0.1})
	forB := ForConsequent(rs, ing("b"))
	for _, r := range forB {
		if !r.Consequent.Contains(ing("b")) {
			t.Fatal("ForConsequent filter broken")
		}
	}
	fromA := ForAntecedent(rs, ing("a"))
	if len(fromA) == 0 {
		t.Fatal("ForAntecedent empty")
	}
	for _, r := range fromA {
		if !r.Antecedent.Contains(ing("a")) {
			t.Fatal("ForAntecedent filter broken")
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: itemset.FromNames(itemset.Ingredient, "soy"),
		Consequent: itemset.FromNames(itemset.Ingredient, "rice"),
		Confidence: 0.8, Lift: 1.5,
	}
	s := r.String()
	if !strings.Contains(s, "soy => rice") || !strings.Contains(s, "0.80") {
		t.Fatalf("render: %q", s)
	}
}

// Property: on random datasets, every generated rule's measures are
// consistent with supports recomputed directly from the data.
func TestGenerateMeasuresConsistentProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		var txns []itemset.Transaction
		n := 10 + r.Intn(20)
		for i := 0; i < n; i++ {
			var names []string
			for j := 0; j <= r.Intn(4); j++ {
				names = append(names, string(rune('a'+r.Intn(5))))
			}
			txns = append(txns, txn(names...))
		}
		ds := itemset.NewDataset(txns)
		ps := fpgrowth.Mine(ds, 0.15)
		for _, rule := range Generate(ps, Options{MinConfidence: 0.3}) {
			union := rule.Antecedent.Union(rule.Consequent)
			wantSupp := ds.Support(union)
			if math.Abs(rule.Support-wantSupp) > 1e-9 {
				t.Fatalf("support mismatch for %v: %v vs %v", rule, rule.Support, wantSupp)
			}
			wantConf := wantSupp / ds.Support(rule.Antecedent)
			if math.Abs(rule.Confidence-wantConf) > 1e-9 {
				t.Fatalf("confidence mismatch for %v", rule)
			}
			if rule.Confidence < 0.3-1e-12 {
				t.Fatalf("below-threshold rule: %v", rule)
			}
			wantLift := wantConf / ds.Support(rule.Consequent)
			if math.Abs(rule.Lift-wantLift) > 1e-9 {
				t.Fatalf("lift mismatch for %v", rule)
			}
		}
	}
}
