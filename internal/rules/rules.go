// Package rules derives association rules from frequent itemsets — the
// "association rule discovery" framing the paper adopts from Agrawal &
// Srikant (Sec. II/IV). A rule A -> C states that recipes containing the
// antecedent A tend to also contain the consequent C; it is scored by the
// standard interestingness measures (confidence, lift, leverage,
// conviction).
//
// Rules are generated purely from a mined pattern set: every frequent
// itemset of size >= 2 is split into antecedent/consequent pairs, and the
// subset supports are looked up among the mined patterns (anti-
// monotonicity guarantees every subset of a frequent itemset was mined).
package rules

import (
	"fmt"
	"math"
	"sort"

	"cuisines/internal/itemset"
)

// Rule is one association rule with its interestingness measures.
type Rule struct {
	// Antecedent and Consequent are disjoint, non-empty itemsets.
	Antecedent itemset.Set
	Consequent itemset.Set
	// Support is the relative support of Antecedent ∪ Consequent.
	Support float64
	// Confidence is supp(A ∪ C) / supp(A), in (0, 1].
	Confidence float64
	// Lift is Confidence / supp(C); > 1 means positive association.
	Lift float64
	// Leverage is supp(A ∪ C) - supp(A)·supp(C).
	Leverage float64
	// Conviction is (1 - supp(C)) / (1 - Confidence); +Inf for
	// confidence 1 rules.
	Conviction float64
}

// String renders "a + b => c (conf 0.81, lift 2.4)".
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (conf %.2f, lift %.2f)",
		r.Antecedent.String(), r.Consequent.String(), r.Confidence, r.Lift)
}

// Options tunes rule generation.
type Options struct {
	// MinConfidence drops rules below this confidence (default 0.5).
	MinConfidence float64
	// MinLift drops rules below this lift (default 0 — keep all).
	MinLift float64
	// MaxRules caps the result size after ranking (0 = unlimited).
	MaxRules int
}

func (o Options) withDefaults() Options {
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.5
	}
	return o
}

// Generate derives rules from a frequent pattern set (as produced by the
// miners at a single support threshold). Patterns whose subsets are
// missing from the set are skipped defensively (cannot happen with a
// complete miner output). Rules are ranked by confidence, then lift, then
// textual order.
func Generate(patterns []itemset.Pattern, opts Options) []Rule {
	opts = opts.withDefaults()
	supp := make(map[string]float64, len(patterns))
	for _, p := range patterns {
		supp[p.Items.Key()] = p.Support
	}

	var out []Rule
	for _, p := range patterns {
		n := p.Items.Len()
		if n < 2 {
			continue
		}
		items := p.Items.Items()
		// Enumerate non-empty proper subsets as antecedents.
		for mask := 1; mask < (1<<n)-1; mask++ {
			var ant, cons []itemset.Item
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					ant = append(ant, items[b])
				} else {
					cons = append(cons, items[b])
				}
			}
			aSet := itemset.NewSet(ant...)
			cSet := itemset.NewSet(cons...)
			sa, okA := supp[aSet.Key()]
			sc, okC := supp[cSet.Key()]
			if !okA || !okC || sa == 0 || sc == 0 {
				continue
			}
			conf := p.Support / sa
			if conf > 1 {
				conf = 1 // guard against floating-point drift
			}
			if conf < opts.MinConfidence {
				continue
			}
			lift := conf / sc
			if lift < opts.MinLift {
				continue
			}
			conviction := math.Inf(1)
			if conf < 1 {
				conviction = (1 - sc) / (1 - conf)
			}
			out = append(out, Rule{
				Antecedent: aSet,
				Consequent: cSet,
				Support:    p.Support,
				Confidence: conf,
				Lift:       lift,
				Leverage:   p.Support - sa*sc,
				Conviction: conviction,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Lift != out[j].Lift {
			return out[i].Lift > out[j].Lift
		}
		si, sj := out[i].String(), out[j].String()
		return si < sj
	})
	if opts.MaxRules > 0 && len(out) > opts.MaxRules {
		out = out[:opts.MaxRules]
	}
	return out
}

// ForConsequent filters rules whose consequent contains the item.
func ForConsequent(rs []Rule, item itemset.Item) []Rule {
	var out []Rule
	for _, r := range rs {
		if r.Consequent.Contains(item) {
			out = append(out, r)
		}
	}
	return out
}

// ForAntecedent filters rules whose antecedent contains the item.
func ForAntecedent(rs []Rule, item itemset.Item) []Rule {
	var out []Rule
	for _, r := range rs {
		if r.Antecedent.Contains(item) {
			out = append(out, r)
		}
	}
	return out
}
