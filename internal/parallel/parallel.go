// Package parallel is the deterministic fan-out layer shared by every hot
// stage of the pipeline (corpus generation, per-cuisine mining, pdist, the
// elbow sweep and figure construction). It provides a bounded worker pool
// in three shapes — a dynamic parallel-for, a chunked parallel-for, and an
// order-preserving map — all with the same contract: the result of a
// parallel run is byte-identical to the sequential run, for any worker
// count. Determinism comes from the index, not the schedule: every job is
// keyed by its position in [0, n), reads only immutable shared inputs, and
// writes only its own slot of the assembled output. Workers only decide
// *when* a job runs, never *what* it computes or *where* its result lands.
//
// The package deliberately has no queues, channels of results, or
// completion callbacks: those introduce schedule-dependent ordering, which
// is exactly what the pipeline's reproducibility guarantee (DESIGN.md §3,
// §5) forbids.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Count resolves a requested worker count: n > 0 is used as given, and
// anything else (the "default" zero) means runtime.GOMAXPROCS(0). The
// result is always at least 1.
func Count(n int) int {
	if n > 0 {
		return n
	}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return p
	}
	return 1
}

// trap records the panic of the lowest job index across a fan-out, so a
// panicking parallel run re-raises the same panic value the sequential
// run would have raised first — panic propagation is deterministic and,
// like everything else here, identical between the two paths.
type trap struct {
	mu  sync.Mutex
	idx int
	val any
	set bool
}

// protect runs f for job index idx, capturing a panic instead of letting
// it kill the worker goroutine (where no caller could recover it).
func (t *trap) protect(idx int, f func()) {
	defer func() {
		if r := recover(); r != nil {
			t.mu.Lock()
			if !t.set || idx < t.idx {
				t.idx, t.val, t.set = idx, r, true
			}
			t.mu.Unlock()
		}
	}()
	f()
}

// rethrow re-raises the recorded panic, if any, on the calling goroutine.
func (t *trap) rethrow() {
	if t.set {
		panic(t.val)
	}
}

// For runs fn(i) for every i in [0, n) exactly once, using up to `workers`
// goroutines (Count semantics: <= 0 means GOMAXPROCS). Jobs are handed out
// dynamically from a shared atomic counter, so uneven per-index costs
// (e.g. the triangular rows of a condensed distance matrix) balance
// automatically. With workers resolved to 1, or n < 2, fn runs inline on
// the calling goroutine — the sequential path is the parallel path.
//
// fn is called from worker goroutines, so it must only read shared state
// and write to storage owned by index i. If fn panics, the remaining
// jobs still run (panicking jobs are independent of their siblings) and
// the panic of the lowest panicking index is re-raised on the calling
// goroutine, where it unwinds — and can be recovered — exactly like a
// sequential panic.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Count(workers)
	if w > n {
		w = n
	}
	var tr trap
	if w == 1 {
		// Same trap discipline as the parallel branch, so a panicking fn
		// leaves identical state behind (all sibling jobs executed, lowest
		// panic re-raised) for any worker count.
		for i := 0; i < n; i++ {
			tr.protect(i, func() { fn(i) })
		}
		tr.rethrow()
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				tr.protect(i, func() { fn(i) })
			}
		}()
	}
	wg.Wait()
	tr.rethrow()
}

// ForChunks partitions [0, n) into at most `workers` contiguous,
// near-equal chunks and runs fn(lo, hi) for each half-open range. The
// partition depends only on n and the resolved worker count — never on
// scheduling — so a caller that derives per-chunk state (a start index
// decoded from lo, a scratch buffer, an RNG stream) gets identical state
// on every run. Use ForChunks when per-index work is small and uniform
// and per-chunk setup amortizes (pdist decodes its (i, j) cursor once per
// chunk, then advances incrementally); use For when per-index costs are
// irregular and dynamic hand-out balances better.
func ForChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Count(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n)
		return
	}
	// Distribute the remainder over the leading chunks so sizes differ by
	// at most one.
	size, rem := n/w, n%w
	var tr trap
	var wg sync.WaitGroup
	wg.Add(w)
	lo := 0
	for c := 0; c < w; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		go func(c, lo, hi int) {
			defer wg.Done()
			tr.protect(c, func() { fn(lo, hi) })
		}(c, lo, hi)
		lo = hi
	}
	wg.Wait()
	tr.rethrow()
}

// Map runs fn for every index in [0, n) and assembles the results in index
// order: out[i] = fn(i), regardless of which worker computed it or when.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for fallible jobs. All jobs run to completion (no early
// cancellation — jobs are pure and cheap to finish, and aborting would
// make the set of executed jobs schedule-dependent); if any failed, the
// error of the lowest failing index is returned, so the reported error is
// deterministic too.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	For(n, workers, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Do runs the given independent tasks concurrently on up to `workers`
// goroutines and returns the error of the lowest-index failing task, if
// any. It is the heterogeneous sibling of MapErr, used where a pipeline
// stage fans out into a fixed set of differently-shaped jobs (the five
// dendrograms plus the elbow sweep).
func Do(workers int, tasks ...func() error) error {
	_, err := MapErr(len(tasks), workers, func(i int) (struct{}, error) {
		return struct{}{}, tasks[i]()
	})
	return err
}
