package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestCount(t *testing.T) {
	if got := Count(3); got != 3 {
		t.Fatalf("Count(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if want < 1 {
		want = 1
	}
	for _, n := range []int{0, -1, -100} {
		if got := Count(n); got != want {
			t.Fatalf("Count(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 0} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]atomic.Int32, n)
			For(n, workers, func(i int) {
				hits[i].Add(1)
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForSequentialWhenOneWorker(t *testing.T) {
	// With one worker the jobs must run in index order on the calling
	// goroutine — the sequential path is literally sequential.
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5, 16, 0} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			hits := make([]atomic.Int32, n)
			var chunks atomic.Int32
			ForChunks(n, workers, func(lo, hi int) {
				chunks.Add(1)
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, got)
				}
			}
			w := Count(workers)
			if w > n {
				w = n
			}
			if n > 0 && int(chunks.Load()) != w {
				t.Fatalf("workers=%d n=%d: %d chunks, want %d", workers, n, chunks.Load(), w)
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		got := Map(50, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad ...int) error {
		isBad := make(map[int]bool)
		for _, b := range bad {
			isBad[b] = true
		}
		_, err := MapErr(20, 4, func(i int) (int, error) {
			if isBad[i] {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		return err
	}
	if err := errAt(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	// Regardless of scheduling, the reported error must be the lowest
	// failing index.
	for trial := 0; trial < 20; trial++ {
		err := errAt(17, 3, 11)
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("trial %d: got %v, want job 3 failed", trial, err)
		}
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	boom := errors.New("boom")
	err := Do(4,
		func() error { a.Store(true); return nil },
		func() error { return boom },
		func() error { b.Store(true); return nil },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if !a.Load() || !b.Load() {
		t.Fatal("all tasks must run to completion even when one fails")
	}
	if err := Do(2); err != nil {
		t.Fatalf("empty Do: %v", err)
	}
}

func TestPanicPropagatesToCaller(t *testing.T) {
	// A panic in a worker must unwind on the calling goroutine —
	// recoverable by the caller exactly like a sequential panic — and,
	// with several panicking jobs, the re-raised value must be the
	// lowest index's, matching what sequential execution raises first.
	for _, workers := range []int{1, 4} {
		hits := make([]atomic.Int32, 20)
		got := func() (r any) {
			defer func() { r = recover() }()
			For(20, workers, func(i int) {
				hits[i].Add(1)
				if i == 13 || i == 7 {
					panic(fmt.Sprintf("job %d", i))
				}
			})
			return nil
		}()
		if got != "job 7" {
			t.Fatalf("workers=%d: recovered %v, want job 7", workers, got)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: job %d ran %d times; siblings of a panicking job must still run", workers, i, hits[i].Load())
			}
		}
	}
	got := func() (r any) {
		defer func() { r = recover() }()
		ForChunks(100, 4, func(lo, hi int) {
			panic(lo)
		})
		return nil
	}()
	if got != 0 {
		t.Fatalf("ForChunks: recovered %v, want lowest chunk's 0", got)
	}
}
