package hac

import (
	"math"
	"math/rand"
	"testing"

	"cuisines/internal/distance"
	"cuisines/internal/matrix"
)

func TestNNChainTwoPoints(t *testing.T) {
	lk, err := ClusterNNChain(cond(2, 3.5), Average)
	if err != nil || len(lk.Merges) != 1 || !almostEq(lk.Merges[0].Height, 3.5) {
		t.Fatalf("lk=%v err=%v", lk, err)
	}
}

func TestNNChainSingleObservation(t *testing.T) {
	lk, err := ClusterNNChain(distance.NewCondensed(1), Ward)
	if err != nil || len(lk.Merges) != 0 {
		t.Fatalf("lk=%v err=%v", lk, err)
	}
}

// Property: for reducible methods on random inputs with distinct
// distances, NN-chain reproduces the naive algorithm's linkage exactly.
func TestNNChainMatchesNaiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	methods := []Method{Single, Complete, Average, Ward}
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(20)
		m := matrix.NewDense(n, 3)
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				m.Set(i, j, r.NormFloat64()*10)
			}
		}
		d := distance.Pdist(m, distance.Euclidean)
		for _, method := range methods {
			naive, err := Cluster(d, method)
			if err != nil {
				t.Fatal(err)
			}
			chain, err := ClusterNNChain(d, method)
			if err != nil {
				t.Fatal(err)
			}
			if len(naive.Merges) != len(chain.Merges) {
				t.Fatalf("%v: merge counts differ", method)
			}
			for i := range naive.Merges {
				nm, cm := naive.Merges[i], chain.Merges[i]
				if nm.A != cm.A || nm.B != cm.B || nm.Size != cm.Size ||
					math.Abs(nm.Height-cm.Height) > 1e-9 {
					t.Fatalf("%v merge %d: naive %+v vs chain %+v", method, i, nm, cm)
				}
			}
		}
	}
}

// Even with tied distances (where merge identity may legitimately
// differ), the cophenetic structure must agree in heights multiset and
// both trees must be valid.
func TestNNChainTiedDistances(t *testing.T) {
	// Four corners of a square: all nearest-neighbor distances tied.
	m := matrix.FromRows([][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}})
	d := distance.Pdist(m, distance.Euclidean)
	for _, method := range []Method{Single, Complete, Average, Ward} {
		naive, _ := Cluster(d, method)
		chain, err := ClusterNNChain(d, method)
		if err != nil {
			t.Fatal(err)
		}
		hn := naive.Heights()
		hc := chain.Heights()
		sortFloats(hn)
		sortFloats(hc)
		for i := range hn {
			if math.Abs(hn[i]-hc[i]) > 1e-9 {
				t.Fatalf("%v: height multiset differs: %v vs %v", method, hn, hc)
			}
		}
		if _, err := BuildTree(chain, nil); err != nil {
			t.Fatalf("%v: invalid chain tree: %v", method, err)
		}
	}
}

func TestNNChainMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(15)
		m := matrix.NewDense(n, 2)
		for i := 0; i < n; i++ {
			m.Set(i, 0, r.Float64()*100)
			m.Set(i, 1, r.Float64()*100)
		}
		d := distance.Pdist(m, distance.Euclidean)
		for _, method := range []Method{Single, Complete, Average, Ward} {
			lk, err := ClusterNNChain(d, method)
			if err != nil {
				t.Fatal(err)
			}
			if !lk.IsMonotone() {
				t.Fatalf("%v: NN-chain heights not monotone", method)
			}
		}
	}
}
