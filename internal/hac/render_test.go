package hac

import (
	"strings"
	"testing"

	"cuisines/internal/distance"
)

// golden layout for a fixed 4-leaf tree; guards the renderer against
// regressions in joint placement.
func TestASCIIGolden(t *testing.T) {
	// Points on a line: 0, 1, 10, 12 (average linkage).
	c := distance.NewCondensed(4)
	c.Set(0, 1, 1)
	c.Set(0, 2, 10)
	c.Set(0, 3, 12)
	c.Set(1, 2, 9)
	c.Set(1, 3, 11)
	c.Set(2, 3, 2)
	lk, err := Cluster(c, Average)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(lk, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	out := tree.ASCII(RenderOptions{Width: 20, ShowScale: false})
	// Verified layout: {a,b} join at the left, the parent stem leaves
	// the top of their connector; {c,d} join further right and meet the
	// root at the far column.
	want := strings.Join([]string{
		"a ─┬─────────────────┐",
		"b ─┘                 │",
		"c ───┬───────────────┘",
		"d ───┘",
		"",
	}, "\n")
	if out != want {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestNewickQuoting(t *testing.T) {
	c := distance.NewCondensed(2)
	c.Set(0, 1, 1)
	lk, _ := Cluster(c, Single)
	tree, _ := BuildTree(lk, []string{"it's", "plain"})
	nw := tree.Newick()
	if !strings.Contains(nw, "'it''s'") {
		t.Fatalf("apostrophe not escaped: %q", nw)
	}
}

func TestRenderSingleLeaf(t *testing.T) {
	lk, _ := Cluster(distance.NewCondensed(1), Average)
	tree, _ := BuildTree(lk, []string{"only"})
	out := tree.Render()
	if !strings.Contains(out, "only") {
		t.Fatalf("single leaf render: %q", out)
	}
	if nw := tree.Newick(); nw != "only;" {
		t.Fatalf("single leaf newick: %q", nw)
	}
}
