package hac

import (
	"cuisines/internal/distance"
)

// Cophenetic returns the cophenetic distance matrix of the tree: for each
// pair of observations, the height of their lowest common ancestor. This
// is the quantity the validation pipeline correlates across trees
// (Sec. VII is qualitative in the paper; we make it quantitative).
func (t *Tree) Cophenetic() *distance.Condensed {
	c := distance.NewCondensed(t.n)
	// Post-order: each node knows the leaf set of each child; pairs across
	// the two children meet exactly at this node.
	var walk func(n *Node) []int
	walk = func(n *Node) []int {
		if n == nil {
			return nil
		}
		if n.IsLeaf() {
			return []int{n.Leaf}
		}
		l := walk(n.Left)
		r := walk(n.Right)
		for _, a := range l {
			for _, b := range r {
				c.Set(a, b, n.Height)
			}
		}
		return append(l, r...)
	}
	walk(t.Root)
	return c
}

// MergeHeightBetween returns the cophenetic distance between two named
// observations, resolving labels first. It returns an error for unknown
// labels.
func (t *Tree) MergeHeightBetween(labelA, labelB string) (float64, error) {
	ia, err := t.indexOf(labelA)
	if err != nil {
		return 0, err
	}
	ib, err := t.indexOf(labelB)
	if err != nil {
		return 0, err
	}
	if ia == ib {
		return 0, nil
	}
	return t.Cophenetic().At(ia, ib), nil
}

func (t *Tree) indexOf(label string) (int, error) {
	for i := 0; i < t.n; i++ {
		if t.Label(i) == label {
			return i, nil
		}
	}
	return 0, errUnknownLabel(label)
}

type errUnknownLabel string

func (e errUnknownLabel) Error() string { return "hac: unknown label " + string(e) }
