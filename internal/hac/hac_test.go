package hac

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cuisines/internal/distance"
	"cuisines/internal/matrix"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// cond builds a condensed matrix from an upper-triangular list in scipy
// order.
func cond(n int, vals ...float64) *distance.Condensed {
	c := distance.NewCondensed(n)
	copy(c.Values(), vals)
	return c
}

func TestClusterTwoPoints(t *testing.T) {
	lk, err := Cluster(cond(2, 3.5), Single)
	if err != nil {
		t.Fatal(err)
	}
	if len(lk.Merges) != 1 {
		t.Fatalf("merges = %v", lk.Merges)
	}
	m := lk.Merges[0]
	if m.A != 0 || m.B != 1 || !almostEq(m.Height, 3.5) || m.Size != 2 {
		t.Fatalf("merge = %+v", m)
	}
}

func TestClusterSingleObservation(t *testing.T) {
	lk, err := Cluster(distance.NewCondensed(1), Average)
	if err != nil || len(lk.Merges) != 0 {
		t.Fatalf("lk=%v err=%v", lk, err)
	}
	tree, err := BuildTree(lk, []string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() || tree.Label(0) != "only" {
		t.Fatal("single-observation tree wrong")
	}
}

// Known worked example: points on a line at 0, 1, 5.
// d(0,1)=1, d(0,2)=5, d(1,2)=4.
func lineExample() *distance.Condensed { return cond(3, 1, 5, 4) }

func TestSingleLinkageKnown(t *testing.T) {
	lk, _ := Cluster(lineExample(), Single)
	// First merge 0,1 at 1. Then cluster{0,1} with 2 at min(5,4)=4.
	if lk.Merges[0].A != 0 || lk.Merges[0].B != 1 || !almostEq(lk.Merges[0].Height, 1) {
		t.Fatalf("first merge %+v", lk.Merges[0])
	}
	if lk.Merges[1].A != 2 || lk.Merges[1].B != 3 || !almostEq(lk.Merges[1].Height, 4) {
		t.Fatalf("second merge %+v", lk.Merges[1])
	}
}

func TestCompleteLinkageKnown(t *testing.T) {
	lk, _ := Cluster(lineExample(), Complete)
	if !almostEq(lk.Merges[1].Height, 5) {
		t.Fatalf("complete second merge %+v", lk.Merges[1])
	}
}

func TestAverageLinkageKnown(t *testing.T) {
	lk, _ := Cluster(lineExample(), Average)
	if !almostEq(lk.Merges[1].Height, 4.5) {
		t.Fatalf("average second merge %+v", lk.Merges[1])
	}
}

func TestWeightedLinkageKnown(t *testing.T) {
	lk, _ := Cluster(lineExample(), Weighted)
	if !almostEq(lk.Merges[1].Height, 4.5) {
		t.Fatalf("weighted second merge %+v", lk.Merges[1])
	}
}

func TestWardLinkageKnown(t *testing.T) {
	// Ward on euclidean distances of 1-D points 0, 1, 5:
	// merge {0},{1} at 1; then d({0,1},{2}) = sqrt((2*25 + 2*16 - 1)/3)
	// = sqrt(81/3) = sqrt(27).
	lk, _ := Cluster(lineExample(), Ward)
	if !almostEq(lk.Merges[1].Height, math.Sqrt(27)) {
		t.Fatalf("ward second merge %v want %v", lk.Merges[1].Height, math.Sqrt(27))
	}
}

// scipy cross-check: four 2-D points, average linkage.
// pts = [(0,0), (0,1), (4,0), (4,1.5)]
// scipy.cluster.hierarchy.linkage(pdist(pts), 'average') gives
// merges: (0,1)@1.0, (2,3)@1.5, then average of the 4 cross distances.
func TestAverageLinkageScipyCrossCheck(t *testing.T) {
	pts := matrix.FromRows([][]float64{{0, 0}, {0, 1}, {4, 0}, {4, 1.5}})
	d := distance.Pdist(pts, distance.Euclidean)
	lk, _ := Cluster(d, Average)
	if lk.Merges[0].A != 0 || lk.Merges[0].B != 1 || !almostEq(lk.Merges[0].Height, 1) {
		t.Fatalf("merge 0: %+v", lk.Merges[0])
	}
	if lk.Merges[1].A != 2 || lk.Merges[1].B != 3 || !almostEq(lk.Merges[1].Height, 1.5) {
		t.Fatalf("merge 1: %+v", lk.Merges[1])
	}
	want := (d.At(0, 2) + d.At(0, 3) + d.At(1, 2) + d.At(1, 3)) / 4
	if !almostEq(lk.Merges[2].Height, want) {
		t.Fatalf("merge 2 height %v want %v", lk.Merges[2].Height, want)
	}
	if lk.Merges[2].A != 4 || lk.Merges[2].B != 5 || lk.Merges[2].Size != 4 {
		t.Fatalf("merge 2 ids: %+v", lk.Merges[2])
	}
}

func TestBuildTreeStructure(t *testing.T) {
	lk, _ := Cluster(lineExample(), Average)
	tree, err := BuildTree(lk, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Count != 3 || tree.Root.IsLeaf() {
		t.Fatal("root wrong")
	}
	order := tree.LeafOrder()
	if len(order) != 3 {
		t.Fatalf("leaf order %v", order)
	}
	// a and b merged first; they must be adjacent in display order.
	pos := make(map[int]int)
	for i, l := range order {
		pos[l] = i
	}
	if abs(pos[0]-pos[1]) != 1 {
		t.Fatalf("first-merged leaves not adjacent: %v", order)
	}
}

func TestBuildTreeLabelMismatch(t *testing.T) {
	lk, _ := Cluster(lineExample(), Average)
	if _, err := BuildTree(lk, []string{"a"}); err == nil {
		t.Fatal("label mismatch accepted")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestCutHeight(t *testing.T) {
	lk, _ := Cluster(lineExample(), Single) // merges at 1 and 4
	tree, _ := BuildTree(lk, nil)
	c := tree.CutHeight(2)
	// {0,1} together, {2} apart.
	if c[0] != c[1] || c[0] == c[2] {
		t.Fatalf("cut@2 = %v", c)
	}
	c = tree.CutHeight(0.5)
	if c[0] == c[1] || c[1] == c[2] || c[0] == c[2] {
		t.Fatalf("cut@0.5 = %v", c)
	}
	c = tree.CutHeight(10)
	if c[0] != 0 || c[1] != 0 || c[2] != 0 {
		t.Fatalf("cut@10 = %v", c)
	}
}

func TestCutK(t *testing.T) {
	lk, _ := Cluster(lineExample(), Single)
	tree, _ := BuildTree(lk, nil)
	for k := 1; k <= 3; k++ {
		c, err := tree.CutK(k)
		if err != nil {
			t.Fatal(err)
		}
		distinct := make(map[int]bool)
		for _, v := range c {
			distinct[v] = true
		}
		if len(distinct) != k {
			t.Fatalf("CutK(%d) gave %d clusters: %v", k, len(distinct), c)
		}
	}
	if _, err := tree.CutK(0); err == nil {
		t.Fatal("CutK(0) accepted")
	}
	if _, err := tree.CutK(4); err == nil {
		t.Fatal("CutK(4) accepted on n=3")
	}
}

func TestCopheneticKnown(t *testing.T) {
	lk, _ := Cluster(lineExample(), Single)
	tree, _ := BuildTree(lk, []string{"a", "b", "c"})
	coph := tree.Cophenetic()
	if !almostEq(coph.At(0, 1), 1) {
		t.Fatalf("coph(a,b) = %v", coph.At(0, 1))
	}
	if !almostEq(coph.At(0, 2), 4) || !almostEq(coph.At(1, 2), 4) {
		t.Fatalf("coph to c = %v, %v", coph.At(0, 2), coph.At(1, 2))
	}
	h, err := tree.MergeHeightBetween("a", "c")
	if err != nil || !almostEq(h, 4) {
		t.Fatalf("MergeHeightBetween = %v, %v", h, err)
	}
	if _, err := tree.MergeHeightBetween("a", "zzz"); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestMethodNamesRoundTrip(t *testing.T) {
	for _, m := range []Method{Single, Complete, Average, Weighted, Ward} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v", m)
		}
	}
	if _, err := ParseMethod("median"); err == nil {
		t.Fatal("unsupported method accepted")
	}
}

func TestNewick(t *testing.T) {
	lk, _ := Cluster(lineExample(), Single)
	tree, _ := BuildTree(lk, []string{"a", "b", "c d"})
	nw := tree.Newick()
	if !strings.HasSuffix(nw, ";") {
		t.Fatalf("no trailing semicolon: %q", nw)
	}
	if !strings.Contains(nw, "'c d'") {
		t.Fatalf("label with space not quoted: %q", nw)
	}
	if strings.Count(nw, "(") != 2 || strings.Count(nw, ")") != 2 {
		t.Fatalf("wrong nesting: %q", nw)
	}
}

func TestASCIIRender(t *testing.T) {
	lk, _ := Cluster(lineExample(), Single)
	tree, _ := BuildTree(lk, []string{"alpha", "beta", "gamma"})
	out := tree.Render()
	for _, lab := range []string{"alpha", "beta", "gamma"} {
		if !strings.Contains(out, lab) {
			t.Fatalf("missing label %s in:\n%s", lab, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 3 leaves + 2 scale lines
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.ContainsRune(out, '┐') || !strings.ContainsRune(out, '┘') {
		t.Fatalf("no joints drawn:\n%s", out)
	}
}

func TestDescribeDeterministic(t *testing.T) {
	lk, _ := Cluster(lineExample(), Single)
	tree, _ := BuildTree(lk, []string{"a", "b", "c"})
	d1 := tree.Describe()
	d2 := tree.Describe()
	if d1 != d2 || !strings.Contains(d1, "{a,b}") {
		t.Fatalf("describe = %q", d1)
	}
}

// --- properties -------------------------------------------------------------

func randomCondensed(r *rand.Rand, n int) *distance.Condensed {
	// Generate points then take euclidean distances so ward is valid and
	// the triangle inequality holds.
	m := matrix.NewDense(n, 3)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, r.NormFloat64()*5)
		}
	}
	return distance.Pdist(m, distance.Euclidean)
}

func TestLinkageInvariantsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	methods := []Method{Single, Complete, Average, Weighted, Ward}
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(12)
		d := randomCondensed(r, n)
		for _, method := range methods {
			lk, err := Cluster(d, method)
			if err != nil {
				t.Fatal(err)
			}
			if len(lk.Merges) != n-1 {
				t.Fatalf("%v: %d merges for n=%d", method, len(lk.Merges), n)
			}
			// Heights monotone for reducible methods (all of these are).
			if method != Weighted && !lk.IsMonotone() {
				t.Fatalf("%v: heights not monotone: %v", method, lk.Heights())
			}
			// Final merge contains all observations.
			if lk.Merges[n-2].Size != n {
				t.Fatalf("%v: final size %d != %d", method, lk.Merges[n-2].Size, n)
			}
			// Every cluster id used exactly once as a child.
			used := make(map[int]bool)
			for _, m := range lk.Merges {
				if used[m.A] || used[m.B] {
					t.Fatalf("%v: cluster reused: %+v", method, m)
				}
				used[m.A] = true
				used[m.B] = true
				if m.A >= m.B {
					t.Fatalf("%v: A >= B in %+v", method, m)
				}
			}
			tree, err := BuildTree(lk, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(tree.LeafOrder()); got != n {
				t.Fatalf("%v: leaf order covers %d of %d", method, got, n)
			}
		}
	}
}

func TestSingleLinkageEqualsMSTProperty(t *testing.T) {
	// Single-linkage merge heights must equal the sorted edge weights of
	// the minimum spanning tree (classic equivalence).
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(10)
		d := randomCondensed(r, n)
		lk, _ := Cluster(d, Single)

		// Prim's MST.
		inTree := make([]bool, n)
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		inTree[0] = true
		for j := 1; j < n; j++ {
			dist[j] = d.At(0, j)
		}
		var mst []float64
		for e := 0; e < n-1; e++ {
			best, bd := -1, math.Inf(1)
			for j := 0; j < n; j++ {
				if !inTree[j] && dist[j] < bd {
					best, bd = j, dist[j]
				}
			}
			mst = append(mst, bd)
			inTree[best] = true
			for j := 0; j < n; j++ {
				if !inTree[j] && d.At(best, j) < dist[j] {
					dist[j] = d.At(best, j)
				}
			}
		}
		// Compare sorted.
		hs := lk.Heights()
		sortFloats(mst)
		sortFloats(hs)
		for i := range hs {
			if !almostEq(hs[i], mst[i]) {
				t.Fatalf("single-linkage heights %v != MST weights %v", hs, mst)
			}
		}
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestCopheneticUltrametricProperty(t *testing.T) {
	// Cophenetic distances form an ultrametric:
	// d(a,c) <= max(d(a,b), d(b,c)) for all triples.
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(10)
		d := randomCondensed(r, n)
		for _, method := range []Method{Single, Complete, Average, Ward} {
			lk, _ := Cluster(d, method)
			tree, _ := BuildTree(lk, nil)
			coph := tree.Cophenetic()
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					for c := 0; c < n; c++ {
						if coph.At(a, c) > math.Max(coph.At(a, b), coph.At(b, c))+1e-9 {
							t.Fatalf("%v: ultrametric violated", method)
						}
					}
				}
			}
		}
	}
}

func TestCutKPartitionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(10)
		d := randomCondensed(r, n)
		lk, _ := Cluster(d, Average)
		tree, _ := BuildTree(lk, nil)
		for k := 1; k <= n; k++ {
			c, err := tree.CutK(k)
			if err != nil {
				t.Fatal(err)
			}
			if len(c) != n {
				t.Fatalf("assignment length %d", len(c))
			}
			// Cluster ids form 0..m-1 contiguous.
			seen := make(map[int]bool)
			maxID := -1
			for _, v := range c {
				seen[v] = true
				if v > maxID {
					maxID = v
				}
			}
			if len(seen) != maxID+1 {
				t.Fatalf("non-contiguous cluster ids: %v", c)
			}
		}
	}
}
