package hac

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Tree is a pointer graph with an unexported observation count, so plain
// gob encoding would both miss the count and waste space on the node
// structure. The explicit pair serializes the tree in linkage form — the
// n-1 merges in scipy order plus the labels — and rebuilds the node
// graph through BuildTree on decode. BuildTree is deterministic in the
// merge list, so a decoded tree renders, cuts and serializes (Newick)
// byte-identically to the original.

type treeWire struct {
	N      int
	Labels []string
	Merges []Merge
}

// merges reconstructs the linkage merge list from the node graph:
// internal node n+i is the i-th merge.
func (t *Tree) merges() ([]Merge, error) {
	out := make([]Merge, t.n-1)
	seen := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil || n.IsLeaf() {
			return nil
		}
		i := n.ID - t.n
		if i < 0 || i >= len(out) {
			return fmt.Errorf("hac: internal node id %d out of merge range for n=%d", n.ID, t.n)
		}
		out[i] = Merge{A: n.Left.ID, B: n.Right.ID, Height: n.Height, Size: n.Count}
		seen++
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	if err := walk(t.Root); err != nil {
		return nil, err
	}
	if seen != len(out) {
		return nil, fmt.Errorf("hac: tree has %d merges, want %d", seen, len(out))
	}
	return out, nil
}

// GobEncode implements gob.GobEncoder.
func (t *Tree) GobEncode() ([]byte, error) {
	ms, err := t.merges()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(treeWire{N: t.n, Labels: t.Labels, Merges: ms}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tree) GobDecode(data []byte) error {
	var w treeWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.N < 1 || len(w.Merges) != w.N-1 {
		return fmt.Errorf("hac: corrupt gob stream: n=%d with %d merges", w.N, len(w.Merges))
	}
	nt, err := BuildTree(&Linkage{N: w.N, Merges: w.Merges}, w.Labels)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}
