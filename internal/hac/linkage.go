// Package hac implements hierarchical agglomerative clustering in the
// form the paper uses through scipy (Sec. VI.A): a condensed distance
// matrix goes in, a scipy-compatible linkage matrix and dendrogram come
// out. Supported linkage methods are the Lance-Williams family: single,
// complete, average (UPGMA), weighted (WPGMA) and Ward. The package also
// provides cluster cuts, cophenetic distances, and ASCII/Newick rendering
// used to regenerate Figs. 2-6.
package hac

import (
	"fmt"
	"math"

	"cuisines/internal/distance"
)

// Method selects the linkage criterion.
type Method int

const (
	// Single links clusters by minimum pairwise distance.
	Single Method = iota
	// Complete links clusters by maximum pairwise distance.
	Complete
	// Average is UPGMA: size-weighted mean pairwise distance.
	Average
	// Weighted is WPGMA: unweighted mean of the two merged branches.
	Weighted
	// Ward minimizes within-cluster variance (requires Euclidean input
	// distances for its variance interpretation; it is well-defined on any
	// input).
	Ward
)

// String returns the scipy-style method name.
func (m Method) String() string {
	switch m {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	case Weighted:
		return "weighted"
	case Ward:
		return "ward"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParseMethod parses a scipy-style linkage method name.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "single":
		return Single, nil
	case "complete":
		return Complete, nil
	case "average", "upgma":
		return Average, nil
	case "weighted", "wpgma":
		return Weighted, nil
	case "ward":
		return Ward, nil
	default:
		return 0, fmt.Errorf("hac: unknown linkage method %q", s)
	}
}

// Merge is one row of the linkage matrix: clusters A and B (leaf ids are
// 0..n-1; the i-th merge creates cluster n+i) joined at Height, producing
// a cluster of Size leaves. A < B always, matching scipy's convention.
type Merge struct {
	A, B   int
	Height float64
	Size   int
}

// Linkage is a full agglomeration of n observations: n-1 merges in the
// order they were performed (non-decreasing Height for reducible methods).
type Linkage struct {
	N      int
	Merges []Merge
	Method Method
}

// Cluster performs agglomerative clustering of the condensed distance
// matrix with the given method. It returns an error if n < 1.
//
// The implementation is the classic O(n^2)-memory nearest-neighbor scan
// with Lance-Williams updates: each step finds the globally closest active
// pair, merges, and updates distances from the new cluster to every other
// active cluster via the method's update rule. For the paper's n = 26 and
// for the bench sizes used here this is comfortably fast while remaining
// auditable against scipy.
func Cluster(d *distance.Condensed, method Method) (*Linkage, error) {
	n := d.N()
	if n < 1 {
		return nil, fmt.Errorf("hac: need at least one observation")
	}
	lk := &Linkage{N: n, Method: method, Merges: make([]Merge, 0, n-1)}
	if n == 1 {
		return lk, nil
	}

	// Working distance matrix between active clusters, indexed by slot.
	// Slot i initially holds leaf i; merged clusters reuse the lower slot.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := d.At(i, j)
			dist[i][j] = v
			dist[j][i] = v
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	id := make([]int, n) // slot -> current cluster id
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		id[i] = i
	}

	next := n
	for step := 0; step < n-1; step++ {
		// Find globally closest active pair.
		bi, bj := -1, -1
		best := 0.0
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if bi == -1 || dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}

		ni, nj := float64(size[bi]), float64(size[bj])
		a, b := id[bi], id[bj]
		if a > b {
			a, b = b, a
		}
		lk.Merges = append(lk.Merges, Merge{A: a, B: b, Height: best, Size: size[bi] + size[bj]})

		// Lance-Williams update: new cluster occupies slot bi.
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			dik, djk := dist[bi][k], dist[bj][k]
			var nd float64
			switch method {
			case Single:
				nd = min(dik, djk)
			case Complete:
				nd = max(dik, djk)
			case Average:
				nd = (ni*dik + nj*djk) / (ni + nj)
			case Weighted:
				nd = (dik + djk) / 2
			case Ward:
				nk := float64(size[k])
				t := ni + nj + nk
				sq := ((ni+nk)*dik*dik + (nj+nk)*djk*djk - nk*best*best) / t
				if sq < 0 {
					sq = 0
				}
				nd = math.Sqrt(sq)
			}
			dist[bi][k] = nd
			dist[k][bi] = nd
		}
		active[bj] = false
		size[bi] += size[bj]
		id[bi] = next
		next++
	}
	return lk, nil
}
