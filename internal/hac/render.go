package hac

import (
	"fmt"
	"sort"
	"strings"
)

// RenderOptions controls ASCII dendrogram rendering.
type RenderOptions struct {
	// Width is the number of character columns for the distance axis
	// (default 60).
	Width int
	// ShowScale appends a numeric axis line (default true via Render).
	ShowScale bool
}

// ASCII renders the dendrogram horizontally, one leaf per line, joints at
// columns proportional to merge height — the textual analogue of the
// paper's Fig. 2-6 plots. Labels are right-padded; the distance axis grows
// to the right.
func (t *Tree) ASCII(opts RenderOptions) string {
	width := opts.Width
	if width <= 0 {
		width = 60
	}
	order := t.LeafOrder()
	row := make(map[int]int, len(order)) // observation -> display row
	labelW := 0
	for i, leaf := range order {
		row[leaf] = i
		if l := len(t.Label(leaf)); l > labelW {
			labelW = l
		}
	}
	maxH := 0.0
	var scan func(n *Node)
	scan = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		if n.Height > maxH {
			maxH = n.Height
		}
		scan(n.Left)
		scan(n.Right)
	}
	scan(t.Root)
	col := func(h float64) int {
		if maxH == 0 {
			return 0
		}
		c := int(h / maxH * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}

	grid := make([][]rune, len(order))
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width+1))
	}

	// attach marks that a horizontal stem continues rightward from an
	// internal child's joint glyph.
	attach := func(r, c int) {
		switch grid[r][c] {
		case '┐':
			grid[r][c] = '┬'
		case '┘':
			grid[r][c] = '┴'
		case '│':
			grid[r][c] = '├'
		}
	}

	// draw returns (row, col) where the subtree attaches. Leaves attach at
	// column 0; internal nodes at their joint column.
	var draw func(n *Node) (int, int)
	draw = func(n *Node) (int, int) {
		if n.IsLeaf() {
			return row[n.Leaf], 0
		}
		lr, lc := draw(n.Left)
		rr, rc := draw(n.Right)
		c := col(n.Height)
		// Horizontal stems from each child to the joint column, starting
		// after the child's own joint glyph for internal children.
		drawStem := func(r, from int, leaf bool) {
			start := from
			if !leaf {
				attach(r, from)
				start = from + 1
			}
			for x := start; x < c; x++ {
				if grid[r][x] == ' ' {
					grid[r][x] = '─'
				}
			}
		}
		drawStem(lr, lc, n.Left.IsLeaf())
		drawStem(rr, rc, n.Right.IsLeaf())
		top, bot := lr, rr
		if top > bot {
			top, bot = bot, top
		}
		// Vertical connector.
		grid[top][c] = '┐'
		grid[bot][c] = '┘'
		for y := top + 1; y < bot; y++ {
			if grid[y][c] == '─' {
				grid[y][c] = '┼'
			} else if grid[y][c] == ' ' {
				grid[y][c] = '│'
			}
		}
		mid := (top + bot) / 2
		return mid, c
	}
	if t.n > 1 {
		draw(t.Root)
	}

	var b strings.Builder
	for i, leaf := range order {
		fmt.Fprintf(&b, "%-*s ", labelW, t.Label(leaf))
		b.WriteString(strings.TrimRight(string(grid[i]), " "))
		b.WriteByte('\n')
	}
	if opts.ShowScale && maxH > 0 {
		b.WriteString(strings.Repeat(" ", labelW+1))
		b.WriteString(scaleLine(width, maxH))
		b.WriteByte('\n')
	}
	return b.String()
}

// Render renders with default options including the scale.
func (t *Tree) Render() string {
	return t.ASCII(RenderOptions{ShowScale: true})
}

func scaleLine(width int, maxH float64) string {
	// Five ticks: 0, .25, .5, .75, 1 of maxH.
	line := []rune(strings.Repeat("─", width))
	var b strings.Builder
	ticks := 4
	for i := 0; i <= ticks; i++ {
		pos := i * (width - 1) / ticks
		line[pos] = '┬'
	}
	b.WriteString(string(line))
	b.WriteByte('\n')
	labels := make([]string, ticks+1)
	for i := 0; i <= ticks; i++ {
		labels[i] = trimFloat(maxH * float64(i) / float64(ticks))
	}
	// Lay out tick labels approximately under their ticks.
	out := []rune(strings.Repeat(" ", width+8))
	for i, lab := range labels {
		pos := i * (width - 1) / ticks
		for j, r := range lab {
			if pos+j < len(out) {
				out[pos+j] = r
			}
		}
	}
	b.WriteString(strings.TrimRight(string(out), " "))
	return b.String()
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Newick serializes the tree in Newick format with branch lengths derived
// from merge heights (parent height minus child height), suitable for any
// external tree viewer.
func (t *Tree) Newick() string {
	var b strings.Builder
	var walk func(n *Node, parentH float64)
	walk = func(n *Node, parentH float64) {
		if n.IsLeaf() {
			b.WriteString(escapeNewick(t.Label(n.Leaf)))
			fmt.Fprintf(&b, ":%.6g", parentH)
			return
		}
		b.WriteByte('(')
		walk(n.Left, n.Height-childHeight(n.Left))
		b.WriteByte(',')
		walk(n.Right, n.Height-childHeight(n.Right))
		b.WriteByte(')')
		if parentH >= 0 {
			fmt.Fprintf(&b, ":%.6g", parentH)
		}
	}
	if t.Root.IsLeaf() {
		b.WriteString(escapeNewick(t.Label(t.Root.Leaf)))
	} else {
		walk(t.Root, -1)
	}
	b.WriteByte(';')
	return b.String()
}

func childHeight(n *Node) float64 {
	if n.IsLeaf() {
		return 0
	}
	return n.Height
}

func escapeNewick(label string) string {
	if strings.ContainsAny(label, " (),:;'") {
		return "'" + strings.ReplaceAll(label, "'", "''") + "'"
	}
	return label
}

// Describe returns a compact textual summary of the merges, useful in
// logs and golden tests: each line "height: {leaves-left} + {leaves-right}".
func (t *Tree) Describe() string {
	type rec struct {
		h    float64
		line string
	}
	var recs []rec
	var leaves func(n *Node) []string
	leaves = func(n *Node) []string {
		if n.IsLeaf() {
			return []string{t.Label(n.Leaf)}
		}
		return append(leaves(n.Left), leaves(n.Right)...)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		l := leaves(n.Left)
		r := leaves(n.Right)
		sort.Strings(l)
		sort.Strings(r)
		recs = append(recs, rec{n.Height, fmt.Sprintf("%.4g: {%s} + {%s}", n.Height, strings.Join(l, ","), strings.Join(r, ","))})
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].h != recs[j].h {
			return recs[i].h < recs[j].h
		}
		return recs[i].line < recs[j].line
	})
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = r.line
	}
	return strings.Join(lines, "\n")
}
