package hac

import (
	"bytes"
	"encoding/gob"
	"testing"

	"cuisines/internal/distance"
)

// gobTree builds a small five-leaf tree for round-trip tests.
func gobTree(t *testing.T) *Tree {
	t.Helper()
	d := distance.NewCondensed(5)
	vals := []float64{1, 4, 9, 2, 8, 3, 7, 5, 6, 10}
	k := 0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			d.Set(i, j, vals[k])
			k++
		}
	}
	lk, err := Cluster(d, Average)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(lk, []string{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestTreeGobRoundTrip(t *testing.T) {
	tree := gobTree(t)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tree); err != nil {
		t.Fatal(err)
	}
	var got *Tree
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.N() != tree.N() {
		t.Fatalf("round trip changed n: got %d, want %d", got.N(), tree.N())
	}
	if got.Newick() != tree.Newick() {
		t.Errorf("Newick changed:\n got %s\nwant %s", got.Newick(), tree.Newick())
	}
	if got.Render() != tree.Render() {
		t.Errorf("Render changed after round trip")
	}
	// The cophenetic matrix exercises heights and the full topology.
	co, cn := tree.Cophenetic(), got.Cophenetic()
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if co.At(i, j) != cn.At(i, j) {
				t.Errorf("cophenetic (%d,%d): got %v, want %v", i, j, cn.At(i, j), co.At(i, j))
			}
		}
	}
}

func TestTreeGobRejectsCorruptMergeCount(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(treeWire{N: 5, Merges: []Merge{{A: 0, B: 1, Height: 1}}}); err != nil {
		t.Fatal(err)
	}
	var tree Tree
	if err := tree.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decode with missing merges succeeded, want error")
	}
}
