package hac

import (
	"fmt"
	"math"
	"sort"

	"cuisines/internal/distance"
)

// ClusterNNChain performs the same agglomeration as Cluster using the
// nearest-neighbor-chain algorithm (Benzécri 1982 / Murtagh 1985): grow a
// chain of nearest neighbors until two clusters are mutually nearest,
// merge them, and continue from the remaining chain. For *reducible*
// linkage methods (single, complete, average, ward — not weighted in
// general, though WPGMA is reducible too) NN-chain provably produces the
// same merge set as the global-minimum algorithm, in O(n^2) time instead
// of O(n^3).
//
// Merges may be discovered in a different order than Cluster's
// globally-min-first order; the result is normalized to scipy's
// convention (sorted by height, then cluster ids renumbered in merge
// order), so for inputs with distinct pairwise distances the two
// implementations produce identical Linkage values — a property the
// tests assert.
func ClusterNNChain(d *distance.Condensed, method Method) (*Linkage, error) {
	n := d.N()
	if n < 1 {
		return nil, fmt.Errorf("hac: need at least one observation")
	}
	lk := &Linkage{N: n, Method: method, Merges: make([]Merge, 0, n-1)}
	if n == 1 {
		return lk, nil
	}

	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := d.At(i, j)
			dist[i][j] = v
			dist[j][i] = v
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
	}
	// members records, per slot, the original leaf set — used only to
	// reconstruct scipy-style cluster ids after sorting merges by height.
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}

	type rawMerge struct {
		height float64
		a, b   []int // leaf sets of the two merged clusters
	}
	var raws []rawMerge

	chain := make([]int, 0, n)
	remaining := n
	for remaining > 1 {
		if len(chain) == 0 {
			for i := 0; i < n; i++ {
				if active[i] {
					chain = append(chain, i)
					break
				}
			}
		}
		for {
			tip := chain[len(chain)-1]
			// Nearest active neighbor of tip, preferring the previous
			// chain element on ties (required for correctness).
			var prev = -1
			if len(chain) >= 2 {
				prev = chain[len(chain)-2]
			}
			best, bd := -1, math.Inf(1)
			for j := 0; j < n; j++ {
				if !active[j] || j == tip {
					continue
				}
				dj := dist[tip][j]
				if dj < bd || (dj == bd && j == prev) {
					best, bd = j, dj
				}
			}
			if best == prev {
				// Mutual nearest neighbors: merge tip and prev.
				chain = chain[:len(chain)-2]
				i, j := tip, prev
				ni, nj := float64(size[i]), float64(size[j])
				raws = append(raws, rawMerge{
					height: bd,
					a:      members[i],
					b:      members[j],
				})
				// Lance-Williams update into slot i.
				for k := 0; k < n; k++ {
					if !active[k] || k == i || k == j {
						continue
					}
					dik, djk := dist[i][k], dist[j][k]
					var nd float64
					switch method {
					case Single:
						nd = min(dik, djk)
					case Complete:
						nd = max(dik, djk)
					case Average:
						nd = (ni*dik + nj*djk) / (ni + nj)
					case Weighted:
						nd = (dik + djk) / 2
					case Ward:
						nk := float64(size[k])
						t := ni + nj + nk
						sq := ((ni+nk)*dik*dik + (nj+nk)*djk*djk - nk*bd*bd) / t
						if sq < 0 {
							sq = 0
						}
						nd = math.Sqrt(sq)
					}
					dist[i][k] = nd
					dist[k][i] = nd
				}
				active[j] = false
				size[i] += size[j]
				merged := make([]int, 0, len(members[i])+len(members[j]))
				merged = append(merged, members[i]...)
				merged = append(merged, members[j]...)
				members[i] = merged
				remaining--
				break
			}
			chain = append(chain, best)
		}
	}

	// Normalize: sort merges by height (stable on discovery order) and
	// assign scipy ids.
	sort.SliceStable(raws, func(i, j int) bool { return raws[i].height < raws[j].height })
	idOf := make(map[string]int, 2*n) // leaf-set key -> current cluster id
	for i := 0; i < n; i++ {
		idOf[leafKey([]int{i})] = i
	}
	for i, rm := range raws {
		a := idOf[leafKey(rm.a)]
		b := idOf[leafKey(rm.b)]
		if a > b {
			a, b = b, a
		}
		union := append(append([]int{}, rm.a...), rm.b...)
		idOf[leafKey(union)] = n + i
		lk.Merges = append(lk.Merges, Merge{A: a, B: b, Height: rm.height, Size: len(union)})
	}
	return lk, nil
}

func leafKey(leaves []int) string {
	s := append([]int{}, leaves...)
	sort.Ints(s)
	b := make([]byte, 0, len(s)*3)
	for _, v := range s {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}
