package hac

import (
	"fmt"
	"sort"
)

// Node is one node of a dendrogram. Leaves have Left == Right == nil and
// carry the observation index in Leaf; internal nodes carry the merge
// height.
type Node struct {
	// ID is the scipy cluster id: 0..n-1 for leaves, n+i for the i-th
	// merge.
	ID int
	// Leaf is the observation index for leaves, -1 for internal nodes.
	Leaf int
	// Height is the merge distance (0 for leaves).
	Height float64
	// Count is the number of leaves under this node.
	Count int
	Left  *Node
	Right *Node
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a rooted dendrogram over n named observations.
type Tree struct {
	Root   *Node
	Labels []string // observation index -> label; may be nil
	n      int
}

// BuildTree converts a linkage into an explicit dendrogram tree. labels
// may be nil or must have length n.
func BuildTree(lk *Linkage, labels []string) (*Tree, error) {
	if labels != nil && len(labels) != lk.N {
		return nil, fmt.Errorf("hac: %d labels for %d observations", len(labels), lk.N)
	}
	nodes := make(map[int]*Node, 2*lk.N)
	for i := 0; i < lk.N; i++ {
		nodes[i] = &Node{ID: i, Leaf: i, Count: 1}
	}
	for i, m := range lk.Merges {
		l, ok1 := nodes[m.A]
		r, ok2 := nodes[m.B]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("hac: merge %d references unknown cluster (%d, %d)", i, m.A, m.B)
		}
		nodes[lk.N+i] = &Node{
			ID:     lk.N + i,
			Leaf:   -1,
			Height: m.Height,
			Count:  l.Count + r.Count,
			Left:   l,
			Right:  r,
		}
		delete(nodes, m.A)
		delete(nodes, m.B)
	}
	if len(nodes) != 1 {
		return nil, fmt.Errorf("hac: linkage does not form a single tree (%d roots)", len(nodes))
	}
	var root *Node
	//lint:allow mapiter single-entry map (len(nodes) == 1 checked above), so every order yields the same root
	for _, v := range nodes {
		root = v
	}
	return &Tree{Root: root, Labels: labels, n: lk.N}, nil
}

// N returns the number of observations.
func (t *Tree) N() int { return t.n }

// Label returns the label of observation i, falling back to its index.
func (t *Tree) Label(i int) string {
	if t.Labels != nil && i >= 0 && i < len(t.Labels) {
		return t.Labels[i]
	}
	return fmt.Sprintf("#%d", i)
}

// LeafOrder returns observation indices in dendrogram display order
// (depth-first, left branch first — scipy's default leaf ordering).
func (t *Tree) LeafOrder() []int {
	var order []int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			order = append(order, n.Leaf)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return order
}

// CutHeight assigns observations to clusters by cutting all merges with
// Height > h. The result maps observation index -> cluster number
// (0-based, numbered by smallest member).
func (t *Tree) CutHeight(h float64) []int {
	assign := make([]int, t.n)
	for i := range assign {
		assign[i] = -1
	}
	cluster := 0
	var walk func(n *Node, inCluster bool)
	walk = func(n *Node, inCluster bool) {
		if n == nil {
			return
		}
		if !inCluster && (n.IsLeaf() || n.Height <= h) {
			// This whole subtree is one cluster.
			c := cluster
			cluster++
			var mark func(m *Node)
			mark = func(m *Node) {
				if m == nil {
					return
				}
				if m.IsLeaf() {
					assign[m.Leaf] = c
					return
				}
				mark(m.Left)
				mark(m.Right)
			}
			mark(n)
			return
		}
		walk(n.Left, false)
		walk(n.Right, false)
	}
	walk(t.Root, false)
	return renumberBySmallest(assign)
}

// CutK cuts the tree into exactly k clusters (1 <= k <= n) by undoing the
// k-1 highest merges.
func (t *Tree) CutK(k int) ([]int, error) {
	if k < 1 || k > t.n {
		return nil, fmt.Errorf("hac: cannot cut %d observations into %d clusters", t.n, k)
	}
	// Collect internal node heights, cut below the (k-1)-th largest.
	var heights []float64
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		heights = append(heights, n.Height)
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	if k == 1 {
		out := make([]int, t.n)
		return out, nil
	}
	sort.Float64s(heights)
	// Cut strictly below the (k-1) largest merge heights. With ties this
	// can produce more than k clusters, matching scipy's fcluster
	// 'maxclust' best-effort semantics.
	threshold := heights[len(heights)-(k-1)]
	return t.CutHeight(nextBelow(threshold)), nil
}

// nextBelow returns the largest float64 strictly less than x.
func nextBelow(x float64) float64 {
	if x <= 0 {
		return -1e-300
	}
	return x * (1 - 1e-15)
}

// renumberBySmallest renumbers cluster ids so that the cluster containing
// the smallest observation index gets 0, the next new cluster 1, etc.
func renumberBySmallest(assign []int) []int {
	remap := make(map[int]int)
	next := 0
	out := make([]int, len(assign))
	for i, c := range assign {
		if nc, ok := remap[c]; ok {
			out[i] = nc
		} else {
			remap[c] = next
			out[i] = next
			next++
		}
	}
	return out
}

// Heights returns all merge heights in merge order.
func (lk *Linkage) Heights() []float64 {
	hs := make([]float64, len(lk.Merges))
	for i, m := range lk.Merges {
		hs[i] = m.Height
	}
	return hs
}

// IsMonotone reports whether merge heights are non-decreasing — guaranteed
// for single, complete, average and ward (reducible methods), and a
// property tests assert.
func (lk *Linkage) IsMonotone() bool {
	for i := 1; i < len(lk.Merges); i++ {
		if lk.Merges[i].Height < lk.Merges[i-1].Height-1e-12 {
			return false
		}
	}
	return true
}
