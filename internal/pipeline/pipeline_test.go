package pipeline

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cuisines/internal/artifact"
	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/hac"
	"cuisines/internal/miner"
	"cuisines/internal/recipedb"
)

const testScale = 0.05

func testParams(method hac.Method, workers int) Params {
	return Params{
		Seed:       corpus.DefaultSeed,
		Scale:      testScale,
		MinSupport: core.DefaultMinSupport,
		Method:     method,
		Workers:    workers,
	}
}

// snapshot renders every byte-identity-relevant output of a run.
func snapshot(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(r.Figures.Table1.String())
	for _, ct := range []*core.CuisineTree{
		r.Figures.Euclidean, r.Figures.Cosine, r.Figures.Jaccard, r.Figures.Auth, r.Figures.Geo,
	} {
		b.WriteString(ct.Name + "\n")
		b.WriteString(ct.Tree.Newick() + "\n")
		b.WriteString(ct.Tree.Render())
	}
	if err := r.Validation.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestByteIdentityWithMonolithicBuild locks the refactor's hard
// invariant: the stage graph produces exactly the artifacts the
// monolithic core.BuildFiguresWorkers produced, for sequential and
// parallel execution, from cold, warm-memory and warm-disk caches.
func TestByteIdentityWithMonolithicBuild(t *testing.T) {
	db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	figs, err := core.BuildFigures(db, core.DefaultMinSupport, core.DefaultLinkage)
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.Validate(figs)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, &Result{DB: db, Figures: figs, Validation: v})

	dir := t.TempDir()
	for _, workers := range []int{1, 8} {
		// Cold disk-backed run, then warm-memory (same pipeline), then
		// warm-disk (fresh pipeline over the same dir).
		p := New(artifact.NewStore(artifact.Options{Dir: dir}))
		for _, state := range []string{"cold", "warm-memory"} {
			res, err := p.Run(context.Background(), testParams(core.DefaultLinkage, workers))
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, state, err)
			}
			if got := snapshot(t, res); got != want {
				t.Errorf("workers=%d %s: output differs from monolithic build", workers, state)
			}
		}
		p2 := New(artifact.NewStore(artifact.Options{Dir: dir}))
		res, err := p2.Run(context.Background(), testParams(core.DefaultLinkage, workers))
		if err != nil {
			t.Fatalf("workers=%d warm-disk: %v", workers, err)
		}
		if got := snapshot(t, res); got != want {
			t.Errorf("workers=%d warm-disk: output differs from monolithic build", workers)
		}
		if st := p2.Store().Stats(); st["corpus"].Computed != 0 || st["mine"].Computed != 0 {
			t.Errorf("workers=%d warm-disk: upstream stages recomputed: %+v", workers, st)
		}
	}
}

// TestLinkageOnlyChangeReusesUpstream is the staged-reuse acceptance
// test: switching only the linkage must reuse the cached corpus,
// mining, matrix and pdist artifacts — each upstream stage executes
// exactly once across the two runs.
func TestLinkageOnlyChangeReusesUpstream(t *testing.T) {
	p := New(nil)
	if _, err := p.Run(context.Background(), testParams(hac.Average, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), testParams(hac.Ward, 0)); err != nil {
		t.Fatal(err)
	}
	st := p.Store().Stats()
	for _, kind := range []string{"corpus", "mine", "matrices", "auth", "geodist", "elbow"} {
		if got := st[kind].Computed; got != 1 {
			t.Errorf("%s stage computed %d times across a linkage-only change, want 1", kind, got)
		}
	}
	// Three pattern pdists plus the authenticity pdist, each once.
	if got := st["pdist"].Computed; got != 4 {
		t.Errorf("pdist stage computed %d times, want 4", got)
	}
	// The Euclidean pattern tree always uses Ward, so its artifact is
	// shared; the other four trees differ by linkage: 1 + 4*2 = 9.
	if got := st["tree"].Computed; got != 9 {
		t.Errorf("tree stage computed %d times, want 9", got)
	}
	if got := st["validate"].Computed; got != 2 {
		t.Errorf("validate stage computed %d times, want 2", got)
	}
}

// TestMinSupportOnlyChangeReusesCorpus: a support change invalidates
// mining and everything downstream of it, but never the corpus or the
// corpus-keyed stages (authenticity features, geographic distances).
func TestMinSupportOnlyChangeReusesCorpus(t *testing.T) {
	p := New(nil)
	pr := testParams(core.DefaultLinkage, 0)
	if _, err := p.Run(context.Background(), pr); err != nil {
		t.Fatal(err)
	}
	pr.MinSupport = 0.25
	if _, err := p.Run(context.Background(), pr); err != nil {
		t.Fatal(err)
	}
	st := p.Store().Stats()
	for _, kind := range []string{"corpus", "auth", "geodist"} {
		if got := st[kind].Computed; got != 1 {
			t.Errorf("%s stage computed %d times across a support-only change, want 1", kind, got)
		}
	}
	for _, kind := range []string{"mine", "matrices", "elbow"} {
		if got := st[kind].Computed; got != 2 {
			t.Errorf("%s stage computed %d times across a support-only change, want 2", kind, got)
		}
	}
}

// TestMinerChangeRecomputesNothing pins the key-exclusion contract for
// the mining backend: because every backend emits byte-identical
// pattern sets, the miner never enters a stage key, so switching it
// against a warm store must hit every cached artifact — zero new stage
// executions — and return byte-identical output.
func TestMinerChangeRecomputesNothing(t *testing.T) {
	p := New(nil)
	pr := testParams(core.DefaultLinkage, 0)
	pr.Miner = miner.FPGrowth
	res, err := p.Run(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, res)
	computed := func() uint64 {
		var n uint64
		for _, s := range p.Store().Stats() {
			n += s.Computed
		}
		return n
	}
	cold := computed()

	for _, m := range []miner.Miner{miner.Apriori, miner.Eclat, nil} {
		pr.Miner = m
		res, err := p.Run(context.Background(), pr)
		if err != nil {
			t.Fatal(err)
		}
		if got := snapshot(t, res); got != want {
			name := "default"
			if m != nil {
				name = m.Name()
			}
			t.Errorf("miner %s: output differs on a warm store", name)
		}
	}
	if got := computed(); got != cold {
		t.Errorf("miner switches recomputed %d stage executions on a warm store, want 0", got-cold)
	}
}

// TestRunOnContentAddressing: the same dataset supplied twice (and in a
// different object) shares one graph prefix via the content hash.
func TestRunOnContentAddressing(t *testing.T) {
	db, err := corpus.Generate(corpus.Config{Seed: 7, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	clone, err := recipedb.New(db.Recipes())
	if err != nil {
		t.Fatal(err)
	}
	if ContentKey(db) != ContentKey(clone) {
		t.Fatal("identical datasets produced different content keys")
	}
	p := New(nil)
	pr := Params{MinSupport: core.DefaultMinSupport, Method: core.DefaultLinkage}
	if _, err := p.RunOn(context.Background(), db, pr); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunOn(context.Background(), clone, pr); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats()["mine"].Computed; got != 1 {
		t.Errorf("mine stage computed %d times for identical datasets, want 1", got)
	}
}

// TestCorruptedDiskArtifactFallsBack: damaging a persisted artifact
// must silently recompute, with identical output.
func TestCorruptedDiskArtifactFallsBack(t *testing.T) {
	dir := t.TempDir()
	p := New(artifact.NewStore(artifact.Options{Dir: dir}))
	res, err := p.Run(context.Background(), testParams(core.DefaultLinkage, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, res)

	files, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no artifacts persisted: %v, %v", files, err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p2 := New(artifact.NewStore(artifact.Options{Dir: dir}))
	res2, err := p2.Run(context.Background(), testParams(core.DefaultLinkage, 0))
	if err != nil {
		t.Fatalf("corrupted cache dir was fatal: %v", err)
	}
	if got := snapshot(t, res2); got != want {
		t.Error("output differs after recovering from corrupted artifacts")
	}
	if st := p2.Store().Stats(); st["corpus"].DiskHits != 0 || st["corpus"].Computed != 1 {
		t.Errorf("corrupt corpus artifact should recompute: %+v", st["corpus"])
	}
}
