package pipeline

import (
	"bytes"
	"sync"
	"testing"

	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/distance"
)

// P7 (DESIGN.md §10): the artifact codec benchmark. For each large
// numeric artifact it measures the retired gob path against the flat
// codec, encode and decode separately, with -benchmem — the gob
// sub-benchmarks are the committed "before" evidence in BENCH_6.json,
// and the decode allocs/op columns are the headline: flat decodes in
// O(1) large allocations where gob allocates per element.

var codecFixOnce sync.Once
var codecFix struct {
	mined []core.RegionPatterns
	feats *PatternFeatures
	pdist *distance.Condensed
	err   error
}

func codecFixtures(tb testing.TB) ([]core.RegionPatterns, *PatternFeatures, *distance.Condensed) {
	codecFixOnce.Do(func() {
		db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: testScale})
		if err != nil {
			codecFix.err = err
			return
		}
		mined, err := core.MineRegions(db, core.DefaultMinSupport)
		if err != nil {
			codecFix.err = err
			return
		}
		t1, pm, err := core.BuildPatternFeatures(mined, core.DefaultMinSupport)
		if err != nil {
			codecFix.err = err
			return
		}
		codecFix.mined = mined
		codecFix.feats = &PatternFeatures{Table1: t1, Matrix: pm}
		codecFix.pdist = distance.PdistWorkers(pm.X, distance.Euclidean, 0)
	})
	if codecFix.err != nil {
		tb.Fatal(codecFix.err)
	}
	return codecFix.mined, codecFix.feats, codecFix.pdist
}

func BenchmarkArtifactCodecs(b *testing.B) {
	mined, feats, pd := codecFixtures(b)
	cases := []struct {
		name string
		gob  interface {
			Kind() string
			Version() int
			encodeTo(*bytes.Buffer, any) error
			decodeFrom([]byte) (any, error)
		}
		flat flatCodec
		v    any
	}{
		{"mine", gobBench[[]core.RegionPatterns]{}, mineCodec, mined},
		{"matrices", gobBench[*PatternFeatures]{}, matricesCodec, feats},
		{"pdist", gobBench[*distance.Condensed]{}, pdistCodec, pd},
	}
	for _, c := range cases {
		var gobBytes bytes.Buffer
		if err := c.gob.encodeTo(&gobBytes, c.v); err != nil {
			b.Fatal(err)
		}
		flatBytes, err := c.flat.AppendEncode(nil, c.v)
		if err != nil {
			b.Fatal(err)
		}

		b.Run(c.name+"/gob-encode", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(gobBytes.Len()))
			var buf bytes.Buffer
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := c.gob.encodeTo(&buf, c.v); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/gob-decode", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(gobBytes.Len()))
			for i := 0; i < b.N; i++ {
				if _, err := c.gob.decodeFrom(gobBytes.Bytes()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/flat-encode", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(flatBytes)))
			var dst []byte
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = c.flat.AppendEncode(dst[:0], c.v)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/flat-decode", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(flatBytes)))
			for i := 0; i < b.N; i++ {
				if _, err := c.flat.DecodeBytes(flatBytes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// gobBench adapts the retired gob path (what mineCodec & co. were
// before the flat codecs) for benchmarking against them.
type gobBench[T any] struct{}

func (gobBench[T]) Kind() string { return "bench" }
func (gobBench[T]) Version() int { return 0 }

func (gobBench[T]) encodeTo(buf *bytes.Buffer, v any) error {
	return gobCodec[T]{kind: "bench", version: 0}.Encode(buf, v)
}

func (gobBench[T]) decodeFrom(data []byte) (any, error) {
	return gobCodec[T]{kind: "bench", version: 0}.Decode(bytes.NewReader(data))
}
