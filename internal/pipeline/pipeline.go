// Package pipeline decomposes the paper's evaluation into an explicit
// stage graph with per-stage, content-addressed artifact caching
// (DESIGN.md §8). Where core.BuildFiguresWorkers runs the pipeline as
// one opaque call, this package names each edge of the dataflow —
//
//	corpus(seed, scale)
//	  └─ mine(corpus, minSupport)
//	       └─ matrices(mine)                → Table I + pattern features
//	            ├─ elbow(matrices)          → Fig. 1
//	            └─ pdist(matrices, metric)  → Figs. 2-4 distances
//	                 └─ tree(pdist, linkage)
//	  └─ auth(corpus)                       → Fig. 5 features
//	       └─ pdist(auth) └─ tree(...)
//	  └─ geodist(corpus)                    → Fig. 6 distances
//	       └─ tree(...)
//	all five trees └─ validate(trees)       → Sec. VII
//
// — and resolves every stage through an artifact.Store. Stage keys are
// stable hashes of the stage's parameters plus its inputs' keys, so
// two analyses that share a prefix of the graph (same corpus and
// mining run, different linkage or figure) share the cached upstream
// artifacts, and a disk-backed store survives restarts.
//
// Invariant carried over from the parallel layer (DESIGN.md §3):
// outputs are byte-identical to the sequential single-shot build for
// any worker count and any cache state — cold, warm-memory or
// warm-disk. Stages are pure functions of their inputs, serialization
// round-trips exactly, and worker counts never enter a key.
package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"

	"cuisines/internal/artifact"
	"cuisines/internal/authenticity"
	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/distance"
	"cuisines/internal/geo"
	"cuisines/internal/hac"
	"cuisines/internal/kmeans"
	"cuisines/internal/miner"
	"cuisines/internal/parallel"
	"cuisines/internal/recipedb"
)

// Params are the analysis parameters after canonicalization. Workers
// and Miner never enter an artifact key: parallelism changes how fast
// the answer arrives, and every mining backend produces byte-identical
// pattern sets (internal/miner), so neither can change the answer —
// switching either against a warm store recomputes nothing.
type Params struct {
	Seed       uint64
	Scale      float64
	MinSupport float64
	Method     hac.Method
	Workers    int
	// Miner selects the frequent-itemset backend for the mine stage;
	// nil means miner.Default.
	Miner miner.Miner
}

// Result is one full run of the paper's evaluation in pipeline form.
type Result struct {
	DB         *recipedb.DB
	Figures    *core.Figures
	Validation *core.Validation
}

// Pipeline executes the stage graph against one artifact store.
// Pipelines sharing a store share every cached stage.
type Pipeline struct {
	store *artifact.Store
}

// New builds a Pipeline over the store; nil means a fresh private
// memory-only store.
func New(store *artifact.Store) *Pipeline {
	if store == nil {
		store = artifact.NewStore(artifact.Options{})
	}
	return &Pipeline{store: store}
}

// Store returns the pipeline's artifact store (for stats inspection).
func (p *Pipeline) Store() *artifact.Store { return p.store }

// Run executes the full graph from a generated corpus. Cancellation of
// ctx is honored between stages: a stage already executing runs to
// completion (and is cached — the work is not wasted), but no further
// stage starts once ctx is done, and Run returns ctx's error.
func (p *Pipeline) Run(ctx context.Context, pr Params) (*Result, error) {
	pr = withDefaults(pr)
	corpusKey := artifact.Key("corpus",
		fmt.Sprintf("seed=%d", pr.Seed),
		fmt.Sprintf("scale=%g", pr.Scale))
	db, err := stage(ctx, p.store, corpusKey, corpusCodec, func() (*recipedb.DB, error) {
		return corpus.Generate(corpus.Config{Seed: pr.Seed, Scale: pr.Scale, Workers: pr.Workers})
	})
	if err != nil {
		return nil, err
	}
	return p.runFrom(ctx, db, corpusKey, pr)
}

// RunOn executes the graph on an externally supplied database (the
// CSV/JSONL ingestion path). The corpus stage key is a content hash of
// the recipes, so identical datasets share downstream artifacts no
// matter how they arrived. Cancellation behaves as in Run.
func (p *Pipeline) RunOn(ctx context.Context, db *recipedb.DB, pr Params) (*Result, error) {
	pr = withDefaults(pr)
	corpusKey := artifact.Key("dataset", ContentKey(db))
	stored, err := stage(ctx, p.store, corpusKey, corpusCodec, func() (*recipedb.DB, error) {
		return db, nil
	})
	if err != nil {
		return nil, err
	}
	return p.runFrom(ctx, stored, corpusKey, pr)
}

func withDefaults(pr Params) Params {
	if pr.Seed == 0 {
		pr.Seed = corpus.DefaultSeed
	}
	if pr.Scale <= 0 {
		pr.Scale = 1
	}
	if pr.MinSupport <= 0 {
		pr.MinSupport = core.DefaultMinSupport
	}
	if pr.Miner == nil {
		pr.Miner = miner.Default
	}
	return pr
}

// runFrom executes every stage downstream of the corpus. The stage
// fan-out mirrors core.BuildFiguresWorkers: the six independent figure
// chains run concurrently with the worker budget split between the
// outer fan-out and each chain's inner pdist / k-sweep, so total
// concurrency stays bounded by Workers rather than multiplying.
func (p *Pipeline) runFrom(ctx context.Context, db *recipedb.DB, corpusKey string, pr Params) (*Result, error) {
	// The backend is deliberately absent from the mine key: all miners
	// emit byte-identical pattern sets, so a backend switch on a warm
	// store must hit the cached artifact, not recompute it.
	mineKey := artifact.Key("mine", corpusKey, fmt.Sprintf("support=%g", pr.MinSupport))
	mined, err := stage(ctx, p.store, mineKey, mineCodec, func() ([]core.RegionPatterns, error) {
		return core.MineRegionsWith(db, pr.MinSupport, pr.Workers, pr.Miner)
	})
	if err != nil {
		return nil, err
	}

	matKey := artifact.Key("matrices", mineKey)
	feats, err := stage(ctx, p.store, matKey, matricesCodec, func() (*PatternFeatures, error) {
		t1, pm, err := core.BuildPatternFeatures(mined, pr.MinSupport)
		if err != nil {
			return nil, err
		}
		return &PatternFeatures{Table1: t1, Matrix: pm}, nil
	})
	if err != nil {
		return nil, err
	}
	if feats.Matrix.X.Rows() < 2 {
		return nil, fmt.Errorf("pipeline: need at least two cuisines, have %d", feats.Matrix.X.Rows())
	}

	// Stage keys for the six figure chains, all derivable upfront.
	authKey := artifact.Key("auth", corpusKey, fmt.Sprintf("minprev=%g", core.AuthMinRegionPrevalence))
	authPdistKey := artifact.Key("pdist", authKey, distance.Euclidean.String())
	geodistKey := artifact.Key("geodist", corpusKey)
	elbowKey := artifact.Key("elbow", matKey, fmt.Sprintf("kmax=%d", core.ElbowKMax), fmt.Sprintf("seed=%d", core.ElbowSeed))
	patternPdistKey := func(m distance.Metric) string {
		return artifact.Key("pdist", matKey, m.String())
	}
	treeKey := func(pdistKey string, method hac.Method, name string) string {
		return artifact.Key("tree", pdistKey, method.String(), name)
	}
	keyEuc := treeKey(patternPdistKey(distance.Euclidean), core.EuclideanLinkage, "patterns-euclidean")
	keyCos := treeKey(patternPdistKey(distance.Cosine), pr.Method, "patterns-cosine")
	keyJac := treeKey(patternPdistKey(distance.Jaccard), pr.Method, "patterns-jaccard")
	keyAuth := treeKey(authPdistKey, pr.Method, "authenticity-euclidean")
	keyGeo := treeKey(geodistKey, pr.Method, "geographic")

	outer, inner := core.SplitWorkers(pr.Workers)
	figs := &core.Figures{Table1: feats.Table1, Patterns: feats.Matrix, Mined: mined}
	patternTree := func(metric distance.Metric, method hac.Method, key string) (*core.CuisineTree, error) {
		d, err := stage(ctx, p.store, patternPdistKey(metric), pdistCodec, func() (*distance.Condensed, error) {
			return distance.PdistWorkers(feats.Matrix.X, metric, inner), nil
		})
		if err != nil {
			return nil, err
		}
		return stage(ctx, p.store, key, treeCodec, func() (*core.CuisineTree, error) {
			return linkTree("patterns-"+metric.String(), d, feats.Matrix.Regions, metric, method)
		})
	}
	err = parallel.Do(outer,
		func() (err error) {
			figs.Elbow, err = stage(ctx, p.store, elbowKey, elbowCodec, func() (*kmeans.ElbowCurve, error) {
				return kmeans.Elbow(feats.Matrix.X, core.ElbowKMax, kmeans.Options{Seed: core.ElbowSeed, Workers: inner})
			})
			return err
		},
		func() (err error) {
			figs.Euclidean, err = patternTree(distance.Euclidean, core.EuclideanLinkage, keyEuc)
			return err
		},
		func() (err error) {
			figs.Cosine, err = patternTree(distance.Cosine, pr.Method, keyCos)
			return err
		},
		func() (err error) {
			figs.Jaccard, err = patternTree(distance.Jaccard, pr.Method, keyJac)
			return err
		},
		func() (err error) {
			am, err := stage(ctx, p.store, authKey, authCodec, func() (*authenticity.Matrix, error) {
				return authenticity.Build(db, authenticity.Options{MinRegionPrevalence: core.AuthMinRegionPrevalence})
			})
			if err != nil {
				return err
			}
			figs.AuthMat = am
			d, err := stage(ctx, p.store, authPdistKey, pdistCodec, func() (*distance.Condensed, error) {
				return distance.PdistWorkers(am.FeatureMatrix(), distance.Euclidean, inner), nil
			})
			if err != nil {
				return err
			}
			figs.Auth, err = stage(ctx, p.store, keyAuth, treeCodec, func() (*core.CuisineTree, error) {
				return linkTree("authenticity-euclidean", d, am.Regions, distance.Euclidean, pr.Method)
			})
			return err
		},
		func() (err error) {
			d, err := stage(ctx, p.store, geodistKey, geodistCodec, func() (*distance.Condensed, error) {
				return geo.DistanceMatrix(db.Regions())
			})
			if err != nil {
				return err
			}
			figs.Geo, err = stage(ctx, p.store, keyGeo, treeCodec, func() (*core.CuisineTree, error) {
				// Metric is a label only; the distances are haversine km
				// (see core.GeographicTree).
				return linkTree("geographic", d, db.Regions(), distance.Euclidean, pr.Method)
			})
			return err
		},
	)
	if err != nil {
		return nil, err
	}

	valKey := artifact.Key("validate", keyEuc, keyCos, keyJac, keyAuth, keyGeo)
	v, err := stage(ctx, p.store, valKey, validateCodec, func() (*core.Validation, error) {
		return core.Validate(figs)
	})
	if err != nil {
		return nil, err
	}
	return &Result{DB: db, Figures: figs, Validation: v}, nil
}

// linkTree is the tree stage: condensed distances -> linkage ->
// dendrogram, the tail of core.PatternTreeWorkers.
func linkTree(name string, d *distance.Condensed, labels []string, metric distance.Metric, method hac.Method) (*core.CuisineTree, error) {
	lk, err := hac.Cluster(d, method)
	if err != nil {
		return nil, err
	}
	tree, err := hac.BuildTree(lk, labels)
	if err != nil {
		return nil, err
	}
	return &core.CuisineTree{
		Name:      name,
		Tree:      tree,
		Distances: d,
		Metric:    metric,
		Linkage:   method,
	}, nil
}

// ContentKey hashes a database's full content — recipes in stored
// order, every field length-prefixed — so externally supplied datasets
// get content-addressed corpus keys: the same CSV uploaded twice (or
// the same data arriving as CSV and JSONL) shares one graph prefix.
func ContentKey(db *recipedb.DB) string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	writeList := func(ss []string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(ss)))
		h.Write(n[:])
		for _, s := range ss {
			writeStr(s)
		}
	}
	for i := 0; i < db.Len(); i++ {
		r := db.Recipe(i)
		writeStr(r.ID)
		writeStr(r.Name)
		writeStr(r.Region)
		writeList(r.Ingredients)
		writeList(r.Processes)
		writeList(r.Utensils)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
