package pipeline

import (
	"context"
	"errors"
	"testing"

	"cuisines/internal/core"
)

// TestRunCancelledBeforeStart locks the between-stage cancellation
// contract at the pipeline level: a run whose context is already dead
// stops at the first stage boundary without computing anything.
func TestRunCancelledBeforeStart(t *testing.T) {
	p := New(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, testParams(core.DefaultLinkage, 0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	for kind, st := range p.Store().Stats() {
		if st.Computed != 0 {
			t.Errorf("stage %s computed %d times under a cancelled context, want 0", kind, st.Computed)
		}
	}
}

// TestCancellationDoesNotPoisonCache: work a healthy run completes must
// stay cached even though a cancelled run shared the pipeline — and a
// cancelled run's partial progress serves later runs rather than being
// discarded.
func TestCancellationDoesNotPoisonCache(t *testing.T) {
	p := New(nil)
	if _, err := p.Run(context.Background(), testParams(core.DefaultLinkage, 0)); err != nil {
		t.Fatal(err)
	}
	computedBefore := totalComputed(p)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, testParams(core.DefaultLinkage, 0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	// A healthy re-run after the cancelled one must be all cache hits.
	if _, err := p.Run(context.Background(), testParams(core.DefaultLinkage, 0)); err != nil {
		t.Fatal(err)
	}
	if got := totalComputed(p); got != computedBefore {
		t.Fatalf("stages recomputed after a cancelled run: %d -> %d", computedBefore, got)
	}
}

func totalComputed(p *Pipeline) uint64 {
	var n uint64
	for _, st := range p.Store().Stats() {
		n += st.Computed
	}
	return n
}
