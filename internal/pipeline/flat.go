package pipeline

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cuisines/internal/core"
	"cuisines/internal/distance"
	"cuisines/internal/encode"
	"cuisines/internal/itemset"
	"cuisines/internal/matrix"
)

// Flat artifact codecs (DESIGN.md §10). The large numeric artifacts —
// mined pattern sets, the pattern feature matrix, condensed distance
// matrices — used to round-trip through gob, whose reflective decode
// allocates per element (every Set, every []float64 row fragment, every
// string). The codecs here write a position-defined little-endian
// layout instead, so a warm-disk read decodes in O(1) large
// allocations: one backing arena per homogeneous section (one string
// for all interned names, one []Item arena, one []Pattern arena, one
// []float64), with every element subsliced out of it.
//
// Each payload is framed as
//
//	"CFL1" | u32 crc32c(body) | body
//
// giving the codec its own integrity check independent of the artifact
// store's sha256 envelope, so a flat payload is self-validating even
// when written or read outside the store. Any framing, checksum, length
// or order violation is a decode error, which the store treats as a
// cache miss and recomputes — never a crash.

var (
	flatMagic    = [4]byte{'C', 'F', 'L', '1'}
	crc32cTable  = crc32.MakeTable(crc32.Castagnoli)
	errFlatFrame = fmt.Errorf("pipeline: flat artifact framing invalid")
)

// flatCodec is an artifact.Codec whose encode appends to a byte slice
// and whose decode reads from one. It implements the store's optional
// AppendEncoder/BytesDecoder fast paths; the io.Writer/io.Reader forms
// delegate to them for callers outside the store.
type flatCodec struct {
	kind     string
	version  int
	appendFn func(dst []byte, v any) ([]byte, error)
	decodeFn func(data []byte) (any, error)
}

func (c flatCodec) Kind() string { return c.kind }
func (c flatCodec) Version() int { return c.version }

// AppendEncode frames the body with magic + crc32c.
func (c flatCodec) AppendEncode(dst []byte, v any) ([]byte, error) {
	dst = append(dst, flatMagic[:]...)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	bodyStart := len(dst)
	dst, err := c.appendFn(dst, v)
	if err != nil {
		return nil, err
	}
	crc := crc32.Checksum(dst[bodyStart:], crc32cTable)
	binary.LittleEndian.PutUint32(dst[bodyStart-4:], crc)
	return dst, nil
}

// DecodeBytes verifies the frame and hands the body to the decoder.
func (c flatCodec) DecodeBytes(data []byte) (any, error) {
	if len(data) < 8 || [4]byte(data[:4]) != flatMagic {
		return nil, errFlatFrame
	}
	body := data[8:]
	if crc32.Checksum(body, crc32cTable) != binary.LittleEndian.Uint32(data[4:]) {
		return nil, fmt.Errorf("pipeline: flat artifact crc mismatch")
	}
	return c.decodeFn(body)
}

func (c flatCodec) Encode(w io.Writer, v any) error {
	b, err := c.AppendEncode(nil, v)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func (c flatCodec) Decode(r io.Reader) (any, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return c.DecodeBytes(data)
}

// flatReader is a bounds-checked cursor over a decode body. The first
// out-of-range read latches err and every later read returns zeros, so
// decoders can parse straight-line and check err once.
type flatReader struct {
	data []byte
	off  int
	err  error
}

func (r *flatReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("pipeline: flat artifact truncated reading %s at %d", what, r.off)
	}
}

func (r *flatReader) bytes(n int, what string) []byte {
	if r.err != nil || n < 0 || len(r.data)-r.off < n {
		r.fail(what)
		return nil
	}
	b := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *flatReader) u32(what string) uint32 {
	b := r.bytes(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *flatReader) u64(what string) uint64 {
	b := r.bytes(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *flatReader) f64(what string) float64 {
	return math.Float64frombits(r.u64(what))
}

func (r *flatReader) rest() []byte {
	b := r.data[r.off:]
	r.off = len(r.data)
	return b
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func (r *flatReader) string(what string) string {
	n := r.u32(what)
	return string(r.bytes(int(n), what))
}

// internTable assigns dense ids to strings in first-seen order during
// an encode pass.
type internTable struct {
	ids  map[string]uint32
	list []string
}

func newInternTable() *internTable {
	return &internTable{ids: make(map[string]uint32)}
}

func (t *internTable) id(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint32(len(t.list))
	t.ids[s] = id
	t.list = append(t.list, s)
	return id
}

// appendInterned writes an intern table: u32 count, u32 blob length,
// the concatenated names, then count × u32 name lengths.
func appendInterned(dst []byte, names []string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(names)))
	blobLen := 0
	for _, s := range names {
		blobLen += len(s)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(blobLen))
	for _, s := range names {
		dst = append(dst, s...)
	}
	for _, s := range names {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	}
	return dst
}

// readInterned decodes an intern table in two allocations: one string
// conversion of the whole blob and one []string of substrings sharing
// its backing.
func (r *flatReader) readInterned(what string) []string {
	count := int(r.u32(what))
	blobLen := int(r.u32(what))
	blob := string(r.bytes(blobLen, what))
	if r.err != nil || count < 0 {
		return nil
	}
	names := make([]string, count)
	off := 0
	for i := range names {
		n := int(r.u32(what))
		if r.err != nil || off+n > len(blob) {
			r.fail(what)
			return nil
		}
		names[i] = blob[off : off+n]
		off += n
	}
	if off != len(blob) {
		r.fail(what)
		return nil
	}
	return names
}

// appendPatternTail writes one pattern (minus any leading per-use
// fields): f64 support | u64 count | u32 numItems | numItems × (u32
// nameID, u8 kind). Item names must already be interned in names.
func appendPatternTail(dst []byte, p itemset.Pattern, names *internTable) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Support))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Count))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Items.Len()))
	for _, it := range p.Items.Items() {
		dst = binary.LittleEndian.AppendUint32(dst, names.id(it.Name))
		dst = append(dst, byte(it.Kind))
	}
	return dst
}

// readPatternTail reverses appendPatternTail, carving the pattern's
// items from the shared arena. The Set is rebuilt through
// itemset.SetFromSorted, which re-verifies canonical order so a
// corrupted body cannot produce a malformed Set.
func (r *flatReader) readPatternTail(names []string, itemArena []itemset.Item, itemUsed *int) (itemset.Pattern, error) {
	sup := r.f64("pattern support")
	cnt := int(r.u64("pattern count value"))
	ni := int(r.u32("item count"))
	if r.err != nil {
		return itemset.Pattern{}, r.err
	}
	if ni < 0 || ni > len(itemArena)-*itemUsed {
		return itemset.Pattern{}, fmt.Errorf("pipeline: flat artifact item total %d exceeded", len(itemArena))
	}
	items := itemArena[*itemUsed : *itemUsed+ni : *itemUsed+ni]
	*itemUsed += ni
	for k := range items {
		nameID := int(r.u32("item name id"))
		kindB := r.bytes(1, "item kind")
		if r.err != nil {
			return itemset.Pattern{}, r.err
		}
		if nameID >= len(names) {
			return itemset.Pattern{}, fmt.Errorf("pipeline: flat artifact name id %d out of range %d", nameID, len(names))
		}
		items[k] = itemset.Item{Name: names[nameID], Kind: itemset.Kind(kindB[0])}
	}
	set, err := itemset.SetFromSorted(items)
	if err != nil {
		return itemset.Pattern{}, err
	}
	return itemset.Pattern{Items: set, Support: sup, Count: cnt}, nil
}

// --- mine: []core.RegionPatterns ---------------------------------------
//
// Body layout:
//
//	u32 numRegions | u64 totalPatterns | u64 totalItems
//	intern table of item names (first-seen order)
//	per region: string name | u64 recipes | u32 numPatterns
//	  per pattern: pattern tail (see appendPatternTail)
//
// The totals up front let the decoder allocate the pattern and item
// arenas before the walk; every Set subslices the item arena.

func appendMine(dst []byte, v any) ([]byte, error) {
	rps, ok := v.([]core.RegionPatterns)
	if !ok {
		return nil, fmt.Errorf("pipeline: mine artifact is %T, want []core.RegionPatterns", v)
	}
	var totalPatterns, totalItems uint64
	names := newInternTable()
	for _, rp := range rps {
		totalPatterns += uint64(len(rp.Patterns))
		for _, p := range rp.Patterns {
			totalItems += uint64(p.Items.Len())
			for _, it := range p.Items.Items() {
				names.id(it.Name)
			}
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rps)))
	dst = binary.LittleEndian.AppendUint64(dst, totalPatterns)
	dst = binary.LittleEndian.AppendUint64(dst, totalItems)
	dst = appendInterned(dst, names.list)
	for _, rp := range rps {
		dst = appendString(dst, rp.Region)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rp.Recipes))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rp.Patterns)))
		for _, p := range rp.Patterns {
			dst = appendPatternTail(dst, p, names)
		}
	}
	return dst, nil
}

func decodeMine(body []byte) (any, error) {
	r := &flatReader{data: body}
	numRegions := int(r.u32("region count"))
	totalPatterns := r.u64("pattern total")
	totalItems := r.u64("item total")
	if totalPatterns > math.MaxInt32 || totalItems > math.MaxInt32 {
		return nil, fmt.Errorf("pipeline: mine artifact totals out of range")
	}
	names := r.readInterned("item names")
	if r.err != nil {
		return nil, r.err
	}
	// The arenas: every pattern and item across all regions lives in
	// one backing array each.
	patArena := make([]itemset.Pattern, totalPatterns)
	itemArena := make([]itemset.Item, totalItems)
	patUsed, itemUsed := 0, 0
	rps := make([]core.RegionPatterns, numRegions)
	for i := range rps {
		rps[i].Region = r.string("region name")
		rps[i].Recipes = int(r.u64("recipe count"))
		np := int(r.u32("pattern count"))
		if r.err != nil {
			return nil, r.err
		}
		if np > len(patArena)-patUsed {
			return nil, fmt.Errorf("pipeline: mine artifact pattern total %d exceeded", totalPatterns)
		}
		pats := patArena[patUsed : patUsed+np : patUsed+np]
		patUsed += np
		for j := range pats {
			p, err := r.readPatternTail(names, itemArena, &itemUsed)
			if err != nil {
				return nil, err
			}
			pats[j] = p
		}
		rps[i].Patterns = pats
		if np == 0 {
			rps[i].Patterns = nil
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) || patUsed != len(patArena) || itemUsed != len(itemArena) {
		return nil, fmt.Errorf("pipeline: mine artifact has trailing or missing data")
	}
	return rps, nil
}

// --- matrices: *PatternFeatures ----------------------------------------
//
// Body layout:
//
//	f64 minSupport | u32 numRows | u64 totalTop | u64 totalTopItems
//	intern table of headline-pattern item names
//	per row: string region | u64 recipes | u64 patternCount | u32 numTop
//	  per scored pattern: f64 score | pattern tail
//	u32 numRegions | numRegions × string
//	intern table of vocabulary string patterns
//	flat Dense (trailing, self-sized)
//
// Table I is tiny on the wire but was the matrices artifact's dominant
// decode cost under gob: every nested Set spun up its own reflective
// decoder (~14k allocations for a 9 KB table). Flat, the table decodes
// through the same arena walk as the mine artifact, the vocabulary
// (hundreds of encoded string patterns) through the intern table's two
// allocations, and the feature matrix through matrix.DecodeFlat's
// single []float64.

func appendMatrices(dst []byte, v any) ([]byte, error) {
	pf, ok := v.(*PatternFeatures)
	if !ok {
		return nil, fmt.Errorf("pipeline: matrices artifact is %T, want *PatternFeatures", v)
	}
	if pf.Table1 == nil || pf.Matrix == nil || pf.Matrix.X == nil {
		return nil, fmt.Errorf("pipeline: matrices artifact has nil sections")
	}
	t1 := pf.Table1
	var totalTop, totalItems uint64
	names := newInternTable()
	for _, row := range t1.Rows {
		totalTop += uint64(len(row.Top))
		for _, sp := range row.Top {
			totalItems += uint64(sp.Pattern.Items.Len())
			for _, it := range sp.Pattern.Items.Items() {
				names.id(it.Name)
			}
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t1.MinSupport))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t1.Rows)))
	dst = binary.LittleEndian.AppendUint64(dst, totalTop)
	dst = binary.LittleEndian.AppendUint64(dst, totalItems)
	dst = appendInterned(dst, names.list)
	for _, row := range t1.Rows {
		dst = appendString(dst, row.Region)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(row.Recipes))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(row.Patterns))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(row.Top)))
		for _, sp := range row.Top {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(sp.Score))
			dst = appendPatternTail(dst, sp.Pattern, names)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pf.Matrix.Regions)))
	for _, region := range pf.Matrix.Regions {
		dst = appendString(dst, region)
	}
	dst = appendInterned(dst, pf.Matrix.Vocabulary)
	return pf.Matrix.X.AppendFlat(dst), nil
}

func decodeMatrices(body []byte) (any, error) {
	r := &flatReader{data: body}
	minSupport := r.f64("min support")
	numRows := int(r.u32("row count"))
	totalTop := r.u64("top total")
	totalItems := r.u64("top item total")
	if totalTop > math.MaxInt32 || totalItems > math.MaxInt32 {
		return nil, fmt.Errorf("pipeline: matrices artifact totals out of range")
	}
	names := r.readInterned("item names")
	if r.err != nil {
		return nil, r.err
	}
	topArena := make([]core.ScoredPattern, totalTop)
	itemArena := make([]itemset.Item, totalItems)
	topUsed, itemUsed := 0, 0
	t1 := &core.Table1{MinSupport: minSupport, Rows: make([]core.Table1Row, numRows)}
	for i := range t1.Rows {
		row := &t1.Rows[i]
		row.Region = r.string("row region")
		row.Recipes = int(r.u64("row recipes"))
		row.Patterns = int(r.u64("row pattern count"))
		nt := int(r.u32("row top count"))
		if r.err != nil {
			return nil, r.err
		}
		if nt < 0 || nt > len(topArena)-topUsed {
			return nil, fmt.Errorf("pipeline: matrices artifact top total %d exceeded", totalTop)
		}
		tops := topArena[topUsed : topUsed+nt : topUsed+nt]
		topUsed += nt
		for j := range tops {
			score := r.f64("top score")
			p, err := r.readPatternTail(names, itemArena, &itemUsed)
			if err != nil {
				return nil, err
			}
			tops[j] = core.ScoredPattern{Pattern: p, Score: score}
		}
		row.Top = tops
		if nt == 0 {
			row.Top = nil
		}
	}
	if topUsed != len(topArena) || itemUsed != len(itemArena) {
		return nil, fmt.Errorf("pipeline: matrices artifact has missing table data")
	}
	numRegions := int(r.u32("region count"))
	if r.err != nil || numRegions < 0 {
		return nil, errFlatFrame
	}
	regions := make([]string, numRegions)
	for i := range regions {
		regions[i] = r.string("region name")
	}
	vocab := r.readInterned("vocabulary")
	if r.err != nil {
		return nil, r.err
	}
	x, err := matrix.DecodeFlat(r.rest())
	if err != nil {
		return nil, err
	}
	return &PatternFeatures{
		Table1: t1,
		Matrix: &encode.PatternMatrix{Regions: regions, Vocabulary: vocab, X: x},
	}, nil
}

// --- pdist / geodist: *distance.Condensed ------------------------------

func appendCondensed(dst []byte, v any) ([]byte, error) {
	c, ok := v.(*distance.Condensed)
	if !ok {
		return nil, fmt.Errorf("pipeline: distance artifact is %T, want *distance.Condensed", v)
	}
	return c.AppendFlat(dst), nil
}

func decodeCondensed(body []byte) (any, error) {
	return distance.DecodeFlat(body)
}
