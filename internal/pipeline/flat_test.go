package pipeline

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cuisines/internal/artifact"
	"cuisines/internal/core"
	"cuisines/internal/distance"
)

// roundTrip encodes v with c and decodes the result.
func roundTrip(t *testing.T, c flatCodec, v any) any {
	t.Helper()
	data, err := c.AppendEncode(nil, v)
	if err != nil {
		t.Fatalf("%s encode: %v", c.kind, err)
	}
	got, err := c.DecodeBytes(data)
	if err != nil {
		t.Fatalf("%s decode: %v", c.kind, err)
	}
	return got
}

// TestFlatRoundTripIdentity locks the flat codecs to the gob semantics
// they replaced: a flat round-trip must reproduce the artifact exactly
// — every pattern, count and bit-exact float — and agree with what a
// gob round-trip of the same value produces.
func TestFlatRoundTripIdentity(t *testing.T) {
	mined, feats, pd := codecFixtures(t)

	got := roundTrip(t, mineCodec, mined).([]core.RegionPatterns)
	if !reflect.DeepEqual(got, mined) {
		t.Error("mine: flat round-trip differs from original")
	}
	gobGot, err := gobBench[[]core.RegionPatterns]{}.decodeFrom(mustGob(t, mined))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, gobGot) {
		t.Error("mine: flat round-trip differs from gob round-trip")
	}

	gotF := roundTrip(t, matricesCodec, feats).(*PatternFeatures)
	if gotF.Table1.String() != feats.Table1.String() {
		t.Error("matrices: Table1 differs after flat round-trip")
	}
	if !reflect.DeepEqual(gotF.Matrix.Regions, feats.Matrix.Regions) ||
		!reflect.DeepEqual(gotF.Matrix.Vocabulary, feats.Matrix.Vocabulary) {
		t.Error("matrices: labels differ after flat round-trip")
	}
	if !reflect.DeepEqual(gotF.Matrix.X, feats.Matrix.X) {
		t.Error("matrices: feature matrix differs after flat round-trip")
	}

	gotD := roundTrip(t, pdistCodec, pd).(*distance.Condensed)
	if !reflect.DeepEqual(gotD, pd) {
		t.Error("pdist: flat round-trip differs from original")
	}
}

func mustGob(t *testing.T, v any) []byte {
	t.Helper()
	var buf strings.Builder
	if err := (gobCodec[[]core.RegionPatterns]{kind: "bench"}).Encode(&buf, v.([]core.RegionPatterns)); err != nil {
		t.Fatal(err)
	}
	return []byte(buf.String())
}

// TestFlatDecodeRejectsDamage feeds the decoder every damage class the
// disk tier can hand it — truncations at each boundary, a flipped body
// byte, bad magic, trailing garbage — and requires an error each time
// (the store maps codec errors to cache misses; a malformed Set or a
// silent wrong answer would poison everything downstream).
func TestFlatDecodeRejectsDamage(t *testing.T) {
	mined, feats, pd := codecFixtures(t)
	for _, tc := range []struct {
		name  string
		codec flatCodec
		v     any
	}{
		{"mine", mineCodec, mined},
		{"matrices", matricesCodec, feats},
		{"pdist", pdistCodec, pd},
	} {
		data, err := tc.codec.AppendEncode(nil, tc.v)
		if err != nil {
			t.Fatal(err)
		}
		// Truncation at every prefix length would be slow for MB
		// payloads; probe the structural boundaries and a spread.
		cuts := []int{0, 3, 4, 7, 8, 9, len(data) / 4, len(data) / 2, len(data) - 1}
		for _, n := range cuts {
			if n >= len(data) {
				continue
			}
			if _, err := tc.codec.DecodeBytes(data[:n]); err == nil {
				t.Errorf("%s: truncation to %d bytes decoded without error", tc.name, n)
			}
		}
		for _, flip := range []int{0, 5, 8 + (len(data)-8)/2, len(data) - 1} {
			bad := append([]byte(nil), data...)
			bad[flip] ^= 0x40
			if _, err := tc.codec.DecodeBytes(bad); err == nil {
				t.Errorf("%s: flipped byte %d decoded without error", tc.name, flip)
			}
		}
		if _, err := tc.codec.DecodeBytes(append(append([]byte(nil), data...), 0xEE)); err == nil {
			t.Errorf("%s: trailing garbage decoded without error", tc.name)
		}
	}
}

// TestFlatCorruptDiskArtifactRecomputes is the store-level half of the
// damage story: corrupt the artifact file on disk, restart the store,
// and the stage must silently recompute — never fail, never serve the
// corrupted value.
func TestFlatCorruptDiskArtifactRecomputes(t *testing.T) {
	mined, _, _ := codecFixtures(t)
	dir := t.TempDir()
	key := artifact.Key("mine", "flat-corrupt-test")

	s := artifact.NewStore(artifact.Options{Dir: dir})
	computes := 0
	compute := func() (any, error) { computes++; return mined, nil }
	if _, err := s.GetOrCompute(context.Background(), key, mineCodec, compute); err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatalf("cold run computed %d times", computes)
	}

	files, err := filepath.Glob(filepath.Join(dir, "mine-*.art"))
	if err != nil || len(files) != 1 {
		t.Fatalf("artifact files on disk: %v (err %v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep in the payload body, past the store's header.
	data[len(data)-10] ^= 0x01
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := artifact.NewStore(artifact.Options{Dir: dir})
	v, err := s2.GetOrCompute(context.Background(), key, mineCodec, compute)
	if err != nil {
		t.Fatal(err)
	}
	if computes != 2 {
		t.Errorf("corrupted warm-disk run computed %d times, want 2 (recompute)", computes)
	}
	if !reflect.DeepEqual(v, mined) {
		t.Error("recomputed artifact differs from original")
	}
	if st := s2.Stats()["mine"]; st.DiskHits != 0 {
		t.Errorf("corrupted artifact counted as disk hit: %+v", st)
	}
}

// TestFlatVersionBumpWarmRestart locks the upgrade path this PR itself
// takes: a store directory holding only old-version artifacts (the gob
// era) must be treated as cold by the bumped flat codecs — recompute
// once, write the new file, then serve warm from it.
func TestFlatVersionBumpWarmRestart(t *testing.T) {
	mined, _, _ := codecFixtures(t)
	dir := t.TempDir()
	key := artifact.Key("mine", "flat-version-test")

	// The "old binary": same kind, previous version, gob encoding.
	old := gobCodec[[]core.RegionPatterns]{kind: "mine", version: mineCodec.version - 1}
	s := artifact.NewStore(artifact.Options{Dir: dir})
	if _, err := s.GetOrCompute(context.Background(), key, old, func() (any, error) { return mined, nil }); err != nil {
		t.Fatal(err)
	}

	// The "new binary" restarts over the same directory.
	computes := 0
	s2 := artifact.NewStore(artifact.Options{Dir: dir})
	v, err := s2.GetOrCompute(context.Background(), key, mineCodec, func() (any, error) { computes++; return mined, nil })
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatalf("version-bumped warm restart computed %d times, want 1", computes)
	}
	if !reflect.DeepEqual(v, mined) {
		t.Error("recomputed artifact differs from original")
	}

	// Second restart: the new-version file written above must now hit.
	s3 := artifact.NewStore(artifact.Options{Dir: dir})
	v, err = s3.GetOrCompute(context.Background(), key, mineCodec, func() (any, error) { computes++; return mined, nil })
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Errorf("second warm restart recomputed (computes=%d); flat file not served", computes)
	}
	if !reflect.DeepEqual(v, mined) {
		t.Error("flat warm-disk artifact differs from original")
	}
	if st := s3.Stats()["mine"]; st.DiskHits != 1 {
		t.Errorf("flat warm-disk load not counted as disk hit: %+v", st)
	}
}
