package pipeline

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"

	"cuisines/internal/artifact"
	"cuisines/internal/authenticity"
	"cuisines/internal/core"
	"cuisines/internal/encode"
	"cuisines/internal/kmeans"
	"cuisines/internal/recipedb"
)

// Stage artifacts are serialized with gob. Every type that hides state
// behind unexported fields (recipedb.DB, itemset.Set, matrix.Dense,
// distance.Condensed, hac.Tree) implements GobEncoder/GobDecoder, so
// the artifacts below round-trip faithfully — float64 values bit-exact,
// slices in order — which is what keeps warm-disk replays byte-identical
// to cold runs. Codec versions are part of both the disk header and the
// file name; bump a version whenever its encoded shape changes and old
// files are simply ignored.

// gobCodec is an artifact.Codec over one concrete Go type.
type gobCodec[T any] struct {
	kind    string
	version int
}

func (c gobCodec[T]) Kind() string { return c.kind }
func (c gobCodec[T]) Version() int { return c.version }

func (c gobCodec[T]) Encode(w io.Writer, v any) error {
	t, ok := v.(T)
	if !ok {
		return fmt.Errorf("pipeline: %s artifact is %T, want %T", c.kind, v, t)
	}
	return gob.NewEncoder(w).Encode(t)
}

func (c gobCodec[T]) Decode(r io.Reader) (any, error) {
	var t T
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return t, nil
}

// PatternFeatures is the matrices-stage artifact: Table I and the
// pattern feature matrix, both derived from one mining run.
type PatternFeatures struct {
	Table1 *core.Table1
	Matrix *encode.PatternMatrix
}

// The stage codecs. Kind strings are the stage names reported by
// cachestats and used in artifact file names.
//
// Version history. Everything downstream of mine went to version 2 when
// the miner-backend layer tightened SortPatterns' tie-break (same-name
// items of different kinds are now ordered by the kind-aware set key).
// The large numeric artifacts — mine, matrices, pdist, geodist — then
// moved from gob to the flat codecs of flat.go (mine and matrices to
// version 3, pdist to 3, geodist to 2): a new encoded shape, so the
// bump orphans old gob files and a warm-disk restart recomputes them
// once instead of misreading them. Keys are unchanged — the flat
// encoding is a representation change, not a semantic one.
var (
	corpusCodec   = gobCodec[*recipedb.DB]{kind: "corpus", version: 1}
	mineCodec     = flatCodec{kind: "mine", version: 3, appendFn: appendMine, decodeFn: decodeMine}
	matricesCodec = flatCodec{kind: "matrices", version: 3, appendFn: appendMatrices, decodeFn: decodeMatrices}
	authCodec     = gobCodec[*authenticity.Matrix]{kind: "auth", version: 1}
	pdistCodec    = flatCodec{kind: "pdist", version: 3, appendFn: appendCondensed, decodeFn: decodeCondensed}
	geodistCodec  = flatCodec{kind: "geodist", version: 2, appendFn: appendCondensed, decodeFn: decodeCondensed}
	treeCodec     = gobCodec[*core.CuisineTree]{kind: "tree", version: 2}
	elbowCodec    = gobCodec[*kmeans.ElbowCurve]{kind: "elbow", version: 2}
	validateCodec = gobCodec[*core.Validation]{kind: "validate", version: 2}
)

// stage resolves one typed stage through the store: memory tier, disk
// tier, then compute, single-flight per key. The ctx check at the top
// is the pipeline's cancellation point — a cancelled run stops at the
// next stage boundary. Checking only between stages (never aborting a
// compute in progress) keeps every started stage's artifact cacheable,
// so the work a cancelled request did complete still serves the next
// request, and a stage shared with a healthy concurrent run is never
// poisoned by someone else's cancellation.
func stage[T any](ctx context.Context, s *artifact.Store, key string, codec artifact.Codec, compute func() (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	v, err := s.GetOrCompute(ctx, key, codec, func() (any, error) { return compute() })
	if err != nil {
		return zero, err
	}
	return v.(T), nil
}

// CodecVersions reports the current codec version for every stage kind.
// `cuisined -doctor` uses it to inventory a cache directory: a file
// whose embedded version differs from the current one is orphaned (it
// will be ignored and recomputed, never misread).
func CodecVersions() map[string]int {
	out := make(map[string]int)
	for k, c := range Codecs() {
		out[k] = c.Version()
	}
	return out
}

// Codecs returns the current stage codecs by kind. The cluster layer
// uses it to frame and verify artifacts on the peer wire — the same
// codecs the disk tier uses, so a peer's bytes and a disk file are
// interchangeable.
func Codecs() map[string]artifact.Codec {
	out := make(map[string]artifact.Codec)
	for _, c := range []artifact.Codec{
		corpusCodec, mineCodec, matricesCodec, authCodec,
		pdistCodec, geodistCodec, treeCodec, elbowCodec, validateCodec,
	} {
		out[c.Kind()] = c
	}
	return out
}
