// Package cluster turns a fleet of cuisined nodes into one warm cache
// (DESIGN.md §13). It adds three things on top of the single-node
// stack:
//
//   - a consistent-hash ring that assigns every key an owner among the
//     live members, so the fleet shards analyses instead of N nodes
//     paying N cold misses for the same one;
//   - a peer artifact exchange: on a local store miss a node asks its
//     peers for the framed artifact bytes before recomputing, verifying
//     the frame (magic, versions, kind, checksum) on receipt so a
//     misbehaving peer can never poison the cache;
//   - background health checking with exponential backoff over a static
//     peer list, gating ring membership so requests route around dead
//     nodes.
//
// The package is under the wallclock/nakedgo lint contract: it reads
// time only through an injected clock and never spawns goroutines —
// the daemon runs the blocking health loop itself. That keeps every
// routing and fetch decision a pure function of (members, health
// state, key), which the ring tests pin.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVNodes is the number of hash points per member. 64 keeps the
// largest/smallest ownership-share ratio within a few percent for
// small fleets while the ring stays tiny (a 16-node fleet is 1024
// points, one binary search per lookup).
const DefaultVNodes = 64

// DefaultReplicas is how many distinct owners a key has. Two means
// every artifact the fleet computed survives one node death warm.
const DefaultReplicas = 2

// Ring is a consistent-hash ring over a fixed member set. Membership
// is static (the -peers list); liveness is dynamic and supplied per
// lookup, so the ring itself never mutates after construction and is
// safe for concurrent use.
type Ring struct {
	members  []string
	points   []ringPoint // sorted by hash
	replicas int
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over members (order-insensitive: points depend
// only on the member names, so every node in a fleet computes the same
// ring from the same -peers list regardless of list order). vnodes and
// replicas <= 0 use the defaults.
func NewRing(members []string, vnodes, replicas int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	r := &Ring{members: ms, replicas: replicas}
	var buf [8]byte
	for mi, m := range ms {
		h := sha256.New()
		h.Write([]byte(m))
		for v := 0; v < vnodes; v++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			vh := sha256.New()
			vh.Write(buf[:])
			var sum [sha256.Size]byte
			h.Sum(sum[:0])
			vh.Write(sum[:])
			r.points = append(r.points, ringPoint{
				hash:   binary.LittleEndian.Uint64(vh.Sum(nil)[:8]),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member // total order even on hash collision
	})
	return r
}

// Members returns the ring's member set in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Replicas returns the configured owner count per key.
func (r *Ring) Replicas() int { return r.replicas }

func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.LittleEndian.Uint64(sum[:8])
}

// Owners returns up to Replicas distinct members owning key, walking
// clockwise from the key's hash point and keeping only members for
// which alive returns true (nil means all alive). A dead primary thus
// promotes the next live member — exactly the member that will already
// hold the artifact when replicas > 1 — and a fleet that is entirely
// dead returns nil, which callers treat as "serve locally".
func (r *Ring) Owners(key string, alive func(member string) bool) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var owners []string
	seen := make(map[int]bool, r.replicas)
	for i := 0; i < len(r.points) && len(owners) < r.replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		m := r.members[p.member]
		if alive == nil || alive(m) {
			owners = append(owners, m)
		}
	}
	return owners
}
