package cluster

import (
	"fmt"
	"testing"
)

var testMembers = []string{
	"http://10.0.0.1:8372",
	"http://10.0.0.2:8372",
	"http://10.0.0.3:8372",
	"http://10.0.0.4:8372",
}

// TestRingOrderInsensitive pins the fleet-agreement property: every
// node builds the ring from its own -peers list, so two nodes given the
// same member set in different orders must agree on every key's owners.
func TestRingOrderInsensitive(t *testing.T) {
	a := NewRing(testMembers, 0, 0)
	shuffled := []string{testMembers[2], testMembers[0], testMembers[3], testMembers[1]}
	b := NewRing(shuffled, 0, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("analysis|key-%d", i)
		oa, ob := a.Owners(key, nil), b.Owners(key, nil)
		if len(oa) != len(ob) {
			t.Fatalf("key %q: owner counts differ: %v vs %v", key, oa, ob)
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("key %q: owners differ: %v vs %v", key, oa, ob)
			}
		}
	}
}

// TestRingOwnersDistinct: replicas means distinct members, capped by
// the member count.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(testMembers, 0, 3)
	for i := 0; i < 200; i++ {
		owners := r.Owners(fmt.Sprintf("k%d", i), nil)
		if len(owners) != 3 {
			t.Fatalf("want 3 owners, got %v", owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner in %v", owners)
			}
			seen[o] = true
		}
	}
	// More replicas than members: every member, once.
	small := NewRing(testMembers[:2], 0, 5)
	if owners := small.Owners("k", nil); len(owners) != 2 {
		t.Fatalf("2-member ring with replicas=5: owners = %v", owners)
	}
}

// TestRingDeadPromotion: a dead primary promotes the next live member —
// with replicas >= 2 that is exactly the member already holding the
// artifact warm.
func TestRingDeadPromotion(t *testing.T) {
	r := NewRing(testMembers, 0, 2)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		before := r.Owners(key, nil)
		dead := before[0]
		after := r.Owners(key, func(m string) bool { return m != dead })
		if len(after) != 2 {
			t.Fatalf("key %q: owners after death = %v", key, after)
		}
		if after[0] != before[1] {
			t.Fatalf("key %q: dead primary %s should promote %s, got %v", key, dead, before[1], after)
		}
		if after[0] == dead || after[1] == dead {
			t.Fatalf("key %q: dead member still owns: %v", key, after)
		}
	}
}

// TestRingAllDead: a fleet with nothing alive returns no owners, which
// callers treat as "serve locally".
func TestRingAllDead(t *testing.T) {
	r := NewRing(testMembers, 0, 2)
	if owners := r.Owners("k", func(string) bool { return false }); len(owners) != 0 {
		t.Fatalf("all-dead ring returned owners %v", owners)
	}
	empty := NewRing(nil, 0, 0)
	if owners := empty.Owners("k", nil); owners != nil {
		t.Fatalf("empty ring returned owners %v", owners)
	}
}

// TestRingDistribution: 64 vnodes must spread primary ownership
// roughly evenly; a member falling far below its fair share means the
// point hashing regressed.
func TestRingDistribution(t *testing.T) {
	r := NewRing(testMembers, 0, 1)
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		owners := r.Owners(fmt.Sprintf("analysis|seed=%d", i), nil)
		counts[owners[0]]++
	}
	for _, m := range testMembers {
		share := float64(counts[m]) / n
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys (counts %v); vnode spread regressed", m, 100*share, counts)
		}
	}
}

// TestRingStability: repeated lookups of the same key are identical —
// the ring never mutates after construction, so owner assignment is a
// pure function of (members, key).
func TestRingStability(t *testing.T) {
	r := NewRing(testMembers, 0, 2)
	for _, key := range []string{"a", "b", "analysis|{Scale:0.02}"} {
		owners := r.Owners(key, nil)
		again := r.Owners(key, nil)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("key %q: owners %v", key, owners)
		}
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatalf("key %q: lookup not stable: %v vs %v", key, owners, again)
			}
		}
	}
}
