package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock satisfies the injected-clock contract: health timestamps
// in tests come from here, never the wall clock.
func fakeClock() func() time.Time {
	t0 := time.Date(2020, 4, 20, 12, 0, 0, 0, time.UTC)
	var ticks atomic.Int64
	return func() time.Time {
		return t0.Add(time.Duration(ticks.Add(1)) * time.Second)
	}
}

// flakyPeer is an httptest peer whose ping flips between 204 and 500,
// counting every probe it receives.
type flakyPeer struct {
	srv    *httptest.Server
	fail   atomic.Bool
	probes atomic.Int64
}

func newFlakyPeer(t *testing.T) *flakyPeer {
	t.Helper()
	p := &flakyPeer{}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PingPath {
			http.NotFound(w, r)
			return
		}
		p.probes.Add(1)
		if p.fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(p.srv.Close)
	return p
}

// TestHealthOptimisticStart: before any probe, every peer is assumed
// healthy so a fleet booted together routes normally from the first
// request.
func TestHealthOptimisticStart(t *testing.T) {
	h := newHealth([]string{"http://127.0.0.1:1"}, time.Second, fakeClock())
	if !h.alive("http://127.0.0.1:1") {
		t.Fatal("peer not optimistically healthy before first probe")
	}
	if h.alive("http://unknown:1") {
		t.Fatal("untracked peer reported alive")
	}
	snap := h.snapshot()
	if len(snap) != 1 || !snap[0].Healthy || snap[0].LastProbe != "" {
		t.Fatalf("snapshot before probes: %+v", snap)
	}
}

// TestHealthProbeCycle: a peer goes unhealthy on failure, backs off
// exponentially in ticks, and recovers (with counters reset) on the
// first success.
func TestHealthProbeCycle(t *testing.T) {
	peer := newFlakyPeer(t)
	h := newHealth([]string{peer.srv.URL}, time.Second, fakeClock())
	ctx := context.Background()

	h.tick(ctx, false)
	if !h.alive(peer.srv.URL) {
		t.Fatal("healthy peer marked dead")
	}

	peer.fail.Store(true)
	h.tick(ctx, false) // probe: fail #1, backoff 1 tick -> no skip
	if h.alive(peer.srv.URL) {
		t.Fatal("failing peer still alive after probe")
	}
	snap := h.snapshot()
	if snap[0].Failures != 1 || snap[0].LastErr == "" || snap[0].LastProbe == "" {
		t.Fatalf("snapshot after first failure: %+v", snap[0])
	}

	// Backoff schedule in ticks: probe on the next sweep after failure
	// #1 (backoff 1), then skip 1 sweep after #2, skip 3 after #3, skip
	// 7 after #4, then the cap (16) holds. Over the next 13 sweeps the
	// peer is probed on sweeps 1, 3 and 7 only.
	before := peer.probes.Load()
	for i := 0; i < 13; i++ {
		h.tick(ctx, false)
	}
	if got := peer.probes.Load() - before; got != 3 {
		t.Fatalf("13 backoff sweeps probed %d times, want 3 (sweeps 1,3,7)", got)
	}

	// force (CheckNow) ignores backoff entirely.
	before = peer.probes.Load()
	h.tick(ctx, true)
	if got := peer.probes.Load() - before; got != 1 {
		t.Fatalf("forced sweep probed %d times, want 1", got)
	}

	// Recovery resets everything on the first success.
	peer.fail.Store(false)
	h.tick(ctx, true)
	if !h.alive(peer.srv.URL) {
		t.Fatal("recovered peer still dead")
	}
	snap = h.snapshot()
	if snap[0].Failures != 0 || snap[0].LastErr != "" {
		t.Fatalf("recovery did not reset state: %+v", snap[0])
	}
}

// TestHealthDownPeer: a connection-refused peer is marked dead without
// hanging the sweep.
func TestHealthDownPeer(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	h := newHealth([]string{url}, 250*time.Millisecond, fakeClock())
	h.tick(context.Background(), true)
	if h.alive(url) {
		t.Fatal("closed peer reported alive")
	}
}
