package cluster

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"cuisines/internal/artifact"
)

// ArtifactPathPrefix is the peer wire route for artifact frames:
// GET  {prefix}{kind}/{key} returns the framed encoding (200) or 404;
// HEAD {prefix}{kind}/{key} is the cheap have-check.
// The kind segment selects the codec server-side, so the serving node
// frames (and the fetching node verifies) with the same codec the disk
// tier uses — a peer response and a disk file are interchangeable.
const ArtifactPathPrefix = "/internal/v1/artifact/"

// DefaultFetchTimeout caps one peer artifact fetch. Generous relative
// to the probe timeout: a warm peer streams even the tens-of-MB matrix
// artifacts well inside it, while recomputing them costs far more.
const DefaultFetchTimeout = 30 * time.Second

// DefaultMaxFrameBytes caps a peer response read. The largest real
// artifacts (full-scale pdist matrices) are tens of MB; 256 MiB keeps
// headroom without letting a broken peer stream unbounded garbage.
const DefaultMaxFrameBytes = 256 << 20

// Metrics is a snapshot of the exchange counters, rendered on /metrics
// and inside /v1/cluster.
type Metrics struct {
	// Fetch side (this node asking peers).
	FetchAttempts uint64 `json:"fetch_attempts"` // peer GETs issued
	FetchHits     uint64 `json:"fetch_hits"`     // verified frames received
	FetchMisses   uint64 `json:"fetch_misses"`   // peer answered 404
	FetchErrors   uint64 `json:"fetch_errors"`   // transport/status errors
	FetchRejects  uint64 `json:"fetch_rejects"`  // responses failing frame verification
	// Serve side (peers asking this node).
	ServeHits   uint64 `json:"serve_hits"`
	ServeMisses uint64 `json:"serve_misses"`
}

// exchange implements both halves of the peer artifact protocol.
type exchange struct {
	self    string
	client  *http.Client
	store   *artifact.Store
	codecs  map[string]artifact.Codec
	ring    *Ring
	health  *health
	maxSize int64

	fetchAttempts atomic.Uint64
	fetchHits     atomic.Uint64
	fetchMisses   atomic.Uint64
	fetchErrors   atomic.Uint64
	fetchRejects  atomic.Uint64
	serveHits     atomic.Uint64
	serveMisses   atomic.Uint64
}

func (e *exchange) metrics() Metrics {
	return Metrics{
		FetchAttempts: e.fetchAttempts.Load(),
		FetchHits:     e.fetchHits.Load(),
		FetchMisses:   e.fetchMisses.Load(),
		FetchErrors:   e.fetchErrors.Load(),
		FetchRejects:  e.fetchRejects.Load(),
		ServeHits:     e.serveHits.Load(),
		ServeMisses:   e.serveMisses.Load(),
	}
}

// candidates orders the peers to ask for key: the key's ring owners
// first (most likely to hold it — they are where routing concentrates
// its computes), then every other healthy peer. Stage artifact keys
// hash independently of the analysis routing key, so the owner guess
// is a prior, not a guarantee; the full healthy set is the fallback
// that makes cluster-warm serving work from any node. Self is never a
// candidate.
func (e *exchange) candidates(key string) []string {
	owners := e.ring.Owners(key, e.aliveOrSelf)
	out := make([]string, 0, len(e.ring.members))
	seen := map[string]bool{e.self: true}
	for _, m := range owners {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	for _, m := range e.ring.members {
		if !seen[m] && e.health.alive(m) {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// aliveOrSelf is the ring liveness predicate: peers by health verdict,
// self always.
func (e *exchange) aliveOrSelf(member string) bool {
	return member == e.self || e.health.alive(member)
}

// fetch is the artifact.Fetcher installed on the store: on a local
// miss it asks candidate peers in order for the framed artifact and
// returns the first response that exists. The store re-verifies and
// decodes the frame itself, so a corrupt response here can at worst
// waste one candidate slot — never poison the cache; fetch still
// pre-verifies so a bad frame from one peer does not stop it from
// trying the next.
func (e *exchange) fetch(ctx context.Context, key string, codec artifact.Codec) ([]byte, bool) {
	for _, peer := range e.candidates(key) {
		if ctx.Err() != nil {
			return nil, false
		}
		frame, ok := e.fetchFrom(ctx, peer, key, codec)
		if ok {
			return frame, true
		}
	}
	return nil, false
}

func (e *exchange) fetchFrom(ctx context.Context, peer, key string, codec artifact.Codec) ([]byte, bool) {
	e.fetchAttempts.Add(1)
	url := peer + ArtifactPathPrefix + codec.Kind() + "/" + key
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		e.fetchErrors.Add(1)
		return nil, false
	}
	resp, err := e.client.Do(req)
	if err != nil {
		e.fetchErrors.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		e.fetchMisses.Add(1)
		return nil, false
	default:
		e.fetchErrors.Add(1)
		return nil, false
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, e.maxSize+1))
	if err != nil || int64(len(frame)) > e.maxSize {
		e.fetchErrors.Add(1)
		return nil, false
	}
	if err := artifact.VerifyFrame(frame, codec); err != nil {
		e.fetchRejects.Add(1)
		return nil, false
	}
	e.fetchHits.Add(1)
	return frame, true
}

// serveArtifact answers GET/HEAD {ArtifactPathPrefix}{kind}/{key} from
// the local store only — it never computes and never asks other peers,
// which is what makes the peer protocol loop-free by construction.
func (e *exchange) serveArtifact(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	key := r.PathValue("key")
	codec, ok := e.codecs[kind]
	if !ok || key == "" {
		e.serveMisses.Add(1)
		http.Error(w, "unknown artifact kind", http.StatusNotFound)
		return
	}
	if r.Method == http.MethodHead {
		if e.store.Has(key, codec) {
			e.serveHits.Add(1)
			w.WriteHeader(http.StatusOK)
		} else {
			e.serveMisses.Add(1)
			w.WriteHeader(http.StatusNotFound)
		}
		return
	}
	frame, ok := e.store.Encoded(key, codec)
	if !ok {
		e.serveMisses.Add(1)
		http.Error(w, "artifact not held", http.StatusNotFound)
		return
	}
	e.serveHits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	_, _ = w.Write(frame)
}
