package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Defaults for the health sweep. One probe per peer per interval while
// healthy; failing peers back off exponentially (in ticks) so a long
// outage costs one probe per ~16s, not a connect timeout per second.
const (
	DefaultProbeInterval = 1 * time.Second
	DefaultProbeTimeout  = 2 * time.Second
	maxBackoffTicks      = 16
)

// PingPath is the liveness endpoint every cuisined exposes for its
// peers; the health checker probes it and the server answers 204.
const PingPath = "/internal/v1/ping"

// PeerStatus is one peer's view in a health snapshot (and the wire
// shape inside /v1/cluster).
type PeerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Failures is the current consecutive-failure count; 0 when healthy.
	Failures int `json:"failures,omitempty"`
	// LastErr is the most recent probe error; empty when healthy.
	LastErr string `json:"last_err,omitempty"`
	// LastProbe is the wall time of the last completed probe, RFC3339;
	// empty before the first probe.
	LastProbe string `json:"last_probe,omitempty"`
}

// health tracks peer liveness over a static peer list. All time flows
// through the injected clock (the lint wallclock contract): production
// passes time.Now from cmd/cuisined, tests pass a fake and drive ticks
// by hand via CheckNow/tick.
type health struct {
	peers  []string
	client *http.Client
	now    func() time.Time

	mu    sync.Mutex
	state map[string]*peerState
}

type peerState struct {
	healthy   bool
	failures  int // consecutive failures
	skip      int // remaining ticks to skip (backoff)
	lastErr   string
	lastProbe time.Time
	probed    bool
}

func newHealth(peers []string, timeout time.Duration, now func() time.Time) *health {
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	h := &health{
		peers:  peers,
		client: &http.Client{Timeout: timeout},
		now:    now,
		state:  make(map[string]*peerState, len(peers)),
	}
	for _, p := range peers {
		// Optimistic start: a peer is assumed healthy until a probe says
		// otherwise, so a fleet booted together routes normally from the
		// first request instead of waiting out one sweep interval.
		h.state[p] = &peerState{healthy: true}
	}
	return h
}

// alive reports the current verdict for one peer. Unknown peers are
// dead: routing must never target something the checker does not track.
func (h *health) alive(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[peer]
	return ok && st.healthy
}

// snapshot returns every peer's status, sorted by the peers slice
// order (stable for /v1/cluster output).
func (h *health) snapshot() []PeerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]PeerStatus, 0, len(h.peers))
	for _, p := range h.peers {
		st := h.state[p]
		ps := PeerStatus{URL: p, Healthy: st.healthy, Failures: st.failures, LastErr: st.lastErr}
		if st.probed {
			ps.LastProbe = st.lastProbe.UTC().Format(time.RFC3339)
		}
		out = append(out, ps)
	}
	return out
}

// tick runs one sweep: probe every peer whose backoff is not holding
// it out, updating state. force ignores backoff (CheckNow, tests).
func (h *health) tick(ctx context.Context, force bool) {
	for _, p := range h.peers {
		h.mu.Lock()
		st := h.state[p]
		if !force && st.skip > 0 {
			st.skip--
			h.mu.Unlock()
			continue
		}
		h.mu.Unlock()

		err := h.probe(ctx, p)

		h.mu.Lock()
		st.probed = true
		st.lastProbe = h.now()
		if err == nil {
			st.healthy = true
			st.failures = 0
			st.skip = 0
			st.lastErr = ""
		} else {
			st.healthy = false
			st.failures++
			st.lastErr = err.Error()
			// Backoff in ticks: 1, 2, 4, ... capped. Counting ticks
			// instead of deadlines keeps the logic clock-free.
			backoff := 1 << (st.failures - 1)
			if st.failures > 4 || backoff > maxBackoffTicks {
				backoff = maxBackoffTicks
			}
			st.skip = backoff - 1
		}
		h.mu.Unlock()
	}
}

// probe issues one liveness check against a peer.
func (h *health) probe(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+PingPath, nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ping %s%s: status %d", peer, PingPath, resp.StatusCode)
	}
	return nil
}
