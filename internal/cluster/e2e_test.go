// End-to-end cluster tests: real HTTP between in-process cuisined
// nodes that share nothing on disk. These pin the tentpole claims from
// DESIGN.md §13 — cluster-warm serving (one node computes, the rest
// serve byte-identically with zero stage recomputes), verification on
// receipt (a corrupt peer response can never poison a cache), and
// graceful degradation (a dead owner downgrades to local compute,
// never to an error).
package cluster_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"cuisines"
	"cuisines/internal/artifact"
	"cuisines/internal/cluster"
	"cuisines/internal/pipeline"
	"cuisines/internal/server"
)

// testScale mirrors the server suite's fixture scale: fast pipeline
// runs, all 26 regions.
const testScale = 0.02

type testNode struct {
	url    string
	engine *cuisines.Engine
	node   *cluster.Node
	srv    *httptest.Server
}

// startCluster boots n cuisined nodes on loopback listeners, each with
// its own engine and its own (empty) cache dir, all knowing the full
// peer list. No health loop runs; tests drive sweeps via CheckNow.
func startCluster(t *testing.T, n, replicas int) []*testNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		engine := cuisines.NewEngine(cuisines.EngineConfig{CacheDir: t.TempDir()})
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		node, err := cluster.New(cluster.Config{
			Self:     urls[i],
			Peers:    peers,
			Replicas: replicas,
			Store:    engine.ArtifactStore(),
			Codecs:   pipeline.Codecs(),
			Now:      time.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{
			Base:    cuisines.Options{Scale: testScale},
			Engine:  engine,
			Cluster: node,
		})
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		t.Cleanup(ts.Close)
		nodes[i] = &testNode{url: urls[i], engine: engine, node: node, srv: ts}
	}
	return nodes
}

// getNode performs one GET against a node. local pins local serving
// via the hop header (what the proxy sets), bypassing cluster routing.
func getNode(t *testing.T, base, path string, local bool) (int, []byte) {
	code, body, _ := getNodeHdr(t, base, path, local, nil)
	return code, body
}

// getNodeHdr is getNode with request headers in and response headers
// out, for the HTTP-caching passthrough assertions.
func getNodeHdr(t *testing.T, base, path string, local bool, headers map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if local {
		req.Header.Set(server.HopHeader, "1")
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s%s: %v", base, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// stageTotals sums the per-stage cache counters of one engine.
func stageTotals(e *cuisines.Engine) (computed, peerHits uint64) {
	for _, s := range e.CacheStats() {
		computed += s.Computed
		peerHits += s.PeerHits
	}
	return
}

// TestClusterWarmServing is the acceptance test: three nodes sharing
// nothing on disk; node A computes an analysis; nodes B and C then
// serve the same requests byte-identically with ZERO stage recomputes
// — every artifact arrives over the peer exchange.
func TestClusterWarmServing(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	ctx := context.Background()
	paths := []string{"/v1/newick/fig5-authenticity", "/v1/table"}

	// A computes locally (hop header pins local serving, exactly as a
	// proxied request would arrive).
	bodiesA := make(map[string][]byte, len(paths))
	etagsA := make(map[string]string, len(paths))
	for _, p := range paths {
		code, body, h := getNodeHdr(t, nodes[0].url, p, true, nil)
		if code != 200 {
			t.Fatalf("node A GET %s = %d\n%s", p, code, body)
		}
		bodiesA[p] = body
		etagsA[p] = h.Get("ETag")
		if etagsA[p] == "" {
			t.Fatalf("node A GET %s: no ETag", p)
		}
	}
	if computed, _ := stageTotals(nodes[0].engine); computed == 0 {
		t.Fatal("node A served without computing anything; fixture broken")
	}

	for _, tn := range nodes {
		tn.node.CheckNow(ctx)
	}

	for i, tn := range nodes[1:] {
		name := string(rune('B' + i))
		for _, p := range paths {
			code, body, h := getNodeHdr(t, tn.url, p, true, nil)
			if code != 200 {
				t.Fatalf("node %s GET %s = %d\n%s", name, p, code, body)
			}
			if !bytes.Equal(body, bodiesA[p]) {
				t.Fatalf("node %s GET %s not byte-identical to node A:\n%q\nvs\n%q", name, p, body, bodiesA[p])
			}
			// The determinism invariant makes strong validators
			// fleet-stable: every node computes the same sha256.
			if h.Get("ETag") != etagsA[p] {
				t.Fatalf("node %s GET %s ETag %q != node A's %q", name, p, h.Get("ETag"), etagsA[p])
			}
			// A validator issued by node A revalidates against this node.
			if code, body, _ := getNodeHdr(t, tn.url, p, true, map[string]string{"If-None-Match": etagsA[p]}); code != http.StatusNotModified || len(body) != 0 {
				t.Fatalf("node %s GET %s with node A's validator = %d (%d bytes), want empty 304", name, p, code, len(body))
			}
		}
		// The pinned counters: cluster-warm means zero stage recomputes.
		for kind, s := range tn.engine.CacheStats() {
			if s.Computed != 0 {
				t.Errorf("node %s recomputed stage %q %d times; want peer fetch", name, kind, s.Computed)
			}
		}
		if _, peerHits := stageTotals(tn.engine); peerHits == 0 {
			t.Fatalf("node %s served with no peer hits", name)
		}
		m := tn.node.Metrics()
		if m.FetchHits == 0 {
			t.Fatalf("node %s exchange metrics show no fetch hits: %+v", name, m)
		}
		if m.FetchRejects != 0 {
			t.Fatalf("node %s rejected %d frames from healthy peers", name, m.FetchRejects)
		}
	}

	// The computing node served its peers.
	if m := nodes[0].node.Metrics(); m.ServeHits == 0 {
		t.Fatalf("node A exchange metrics show no serve hits: %+v", m)
	}

	// The counters are on /metrics for the CI grep and operators.
	code, metricsBody := getNode(t, nodes[1].url, "/metrics", true)
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, re := range []string{
		`cuisined_peer_fetch_total\{result="hit"\} [1-9]`,
		`cuisined_peer_healthy\{peer="[^"]+"\} 1`,
	} {
		if !regexp.MustCompile(re).Match(metricsBody) {
			t.Fatalf("/metrics missing %s:\n%s", re, metricsBody)
		}
	}

	// /v1/cluster reports the fleet view.
	code, body := getNode(t, nodes[1].url, "/v1/cluster", true)
	if code != 200 {
		t.Fatalf("GET /v1/cluster = %d", code)
	}
	var cr cuisines.ClusterResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("decode /v1/cluster: %v\n%s", err, body)
	}
	if !cr.Enabled || cr.Self != nodes[1].url || len(cr.Members) != 3 || len(cr.Peers) != 2 {
		t.Fatalf("/v1/cluster: %+v", cr)
	}
	if cr.Exchange.FetchHits == 0 {
		t.Fatalf("/v1/cluster exchange counters empty: %+v", cr.Exchange)
	}
}

// blobCodec is a minimal test codec for store-level exchange tests.
type blobCodec struct{}

func (blobCodec) Kind() string { return "blob" }
func (blobCodec) Version() int { return 1 }
func (blobCodec) Encode(w io.Writer, v any) error {
	_, err := w.Write(v.([]byte))
	return err
}
func (blobCodec) Decode(r io.Reader) (any, error) { return io.ReadAll(r) }

// fakePeer serves a fixed body (or 404) on the artifact wire route and
// answers health pings, standing in for a cuisined peer.
func fakePeer(t *testing.T, artifactBody []byte) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc(cluster.PingPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc(cluster.ArtifactPathPrefix, func(w http.ResponseWriter, r *http.Request) {
		if artifactBody == nil {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write(artifactBody)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// newExchangeNode wires a bare store to one fake peer.
func newExchangeNode(t *testing.T, peerURL string) (*artifact.Store, *cluster.Node) {
	t.Helper()
	store := artifact.NewStore(artifact.Options{})
	node, err := cluster.New(cluster.Config{
		Self:   "http://127.0.0.1:1", // never dialed: serving side only
		Peers:  []string{peerURL},
		Store:  store,
		Codecs: map[string]artifact.Codec{"blob": blobCodec{}},
		Now:    time.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store, node
}

// TestPeerFetchHit: a valid peer frame satisfies a local miss without
// running compute, and counts as a peer hit.
func TestPeerFetchHit(t *testing.T) {
	want := []byte("the artifact payload")
	frame, err := artifact.EncodeFrame(blobCodec{}, want)
	if err != nil {
		t.Fatal(err)
	}
	store, node := newExchangeNode(t, fakePeer(t, frame).URL)

	computed := false
	got, err := store.GetOrCompute(context.Background(), "k1", blobCodec{}, func() (any, error) {
		computed = true
		return []byte("recomputed"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if computed {
		t.Fatal("compute ran despite a valid peer frame")
	}
	if !bytes.Equal(got.([]byte), want) {
		t.Fatalf("peer-fetched value = %q, want %q", got, want)
	}
	if m := node.Metrics(); m.FetchHits != 1 || m.FetchRejects != 0 {
		t.Fatalf("exchange metrics: %+v", m)
	}
	if s := store.Stats()["blob"]; s.PeerHits != 1 || s.Computed != 0 {
		t.Fatalf("store stats: %+v", s)
	}
}

// TestPeerFetchCorruptRejected is the poisoning regression test: a
// peer answering garbage is rejected by frame verification and the
// node recomputes — the bad bytes never enter the cache.
func TestPeerFetchCorruptRejected(t *testing.T) {
	corrupt := [][]byte{
		[]byte("not a frame at all"),
		{},
	}
	// A frame with a flipped payload byte: magic and lengths are fine,
	// the checksum is not.
	frame, err := artifact.EncodeFrame(blobCodec{}, []byte("the artifact payload"))
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0xff
	corrupt = append(corrupt, flipped)

	for i, body := range corrupt {
		store, node := newExchangeNode(t, fakePeer(t, body).URL)
		computed := 0
		got, err := store.GetOrCompute(context.Background(), "k1", blobCodec{}, func() (any, error) {
			computed++
			return []byte("recomputed"), nil
		})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if computed != 1 {
			t.Fatalf("case %d: compute ran %d times, want 1 (corrupt frame must force recompute)", i, computed)
		}
		if !bytes.Equal(got.([]byte), []byte("recomputed")) {
			t.Fatalf("case %d: got %q — corrupt peer bytes leaked into the result", i, got)
		}
		if m := node.Metrics(); m.FetchRejects != 1 || m.FetchHits != 0 {
			t.Fatalf("case %d: exchange metrics: %+v", i, m)
		}
		// And the poisoned bytes are not cached: a second get is a clean
		// memory hit of the computed value.
		again, err := store.GetOrCompute(context.Background(), "k1", blobCodec{}, func() (any, error) {
			t.Fatalf("case %d: second get recomputed", i)
			return nil, nil
		})
		if err != nil || !bytes.Equal(again.([]byte), []byte("recomputed")) {
			t.Fatalf("case %d: second get = %q, %v", i, again, err)
		}
	}
}

// TestPeerFetchMiss: peers without the artifact answer 404 and the
// node computes, still error-free.
func TestPeerFetchMiss(t *testing.T) {
	store, node := newExchangeNode(t, fakePeer(t, nil).URL)
	got, err := store.GetOrCompute(context.Background(), "k1", blobCodec{}, func() (any, error) {
		return []byte("computed"), nil
	})
	if err != nil || !bytes.Equal(got.([]byte), []byte("computed")) {
		t.Fatalf("got %q, %v", got, err)
	}
	if m := node.Metrics(); m.FetchMisses != 1 || m.FetchHits != 0 || m.FetchErrors != 0 {
		t.Fatalf("exchange metrics: %+v", m)
	}
}

// ownedSeeds returns seeds whose analysis routing key is owned by
// owner from viewer's ring (all members live). Used to construct
// requests that a non-owner node must proxy.
func ownedSeeds(t *testing.T, viewer *testNode, owner string, n int) []uint64 {
	t.Helper()
	var seeds []uint64
	for s := uint64(1); s < 512 && len(seeds) < n; s++ {
		key, err := server.RoutingKey(cuisines.Options{Scale: testScale, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		owners := viewer.node.Owners(key)
		if len(owners) > 0 && owners[0] == owner {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) < n {
		t.Fatalf("found only %d/%d seeds owned by %s", len(seeds), n, owner)
	}
	return seeds
}

// TestClusterProxyAndDeadOwnerFallback: a non-owner proxies to the
// owner; when the owner dies the same request degrades to local
// compute — never to an error — and a health sweep then routes it
// locally without even attempting the proxy.
func TestClusterProxyAndDeadOwnerFallback(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	a, b := nodes[0], nodes[1]
	ctx := context.Background()
	seeds := ownedSeeds(t, b, a.url, 3)
	path := func(seed uint64) string {
		return fmt.Sprintf("/v1/newick/fig5-authenticity?seed=%d", seed)
	}

	// Owner alive: B proxies, A computes, B's engine stays cold.
	code, viaB := getNode(t, b.url, path(seeds[0]), false)
	if code != 200 {
		t.Fatalf("proxied GET = %d\n%s", code, viaB)
	}
	if computed, _ := stageTotals(b.engine); computed != 0 {
		t.Fatalf("non-owner computed %d stages; should have proxied", computed)
	}
	if computed, _ := stageTotals(a.engine); computed == 0 {
		t.Fatal("owner did not compute the proxied request")
	}
	code, onA, hA := getNodeHdr(t, a.url, path(seeds[0]), true, nil)
	if code != 200 || !bytes.Equal(viaB, onA) {
		t.Fatalf("proxied body differs from owner's (code %d)", code)
	}

	// HTTP-caching passthrough: the proxy relays the owner's validator
	// and encoding untouched, so clients cache through any node.
	etag := hA.Get("ETag")
	if etag == "" {
		t.Fatal("owner response has no ETag")
	}
	_, _, hViaB := getNodeHdr(t, b.url, path(seeds[0]), false, nil)
	if hViaB.Get("ETag") != etag {
		t.Fatalf("proxied ETag %q != owner's %q", hViaB.Get("ETag"), etag)
	}
	if code, body, h := getNodeHdr(t, b.url, path(seeds[0]), false, map[string]string{"If-None-Match": etag}); code != http.StatusNotModified || len(body) != 0 || h.Get("ETag") != etag {
		t.Fatalf("conditional proxied GET = %d (%d bytes, ETag %q), want empty 304 with %q", code, len(body), h.Get("ETag"), etag)
	}
	code, gzBody, hGz := getNodeHdr(t, b.url, path(seeds[0]), false, map[string]string{"Accept-Encoding": "gzip"})
	if code != 200 || hGz.Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip proxied GET = %d, Content-Encoding %q", code, hGz.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(bytes.NewReader(gzBody))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, onA) {
		t.Fatal("gzip proxied body does not decode to the owner's identity bytes")
	}

	var cr cuisines.ClusterResponse
	_, body := getNode(t, b.url, "/v1/cluster", true)
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Proxied == 0 {
		t.Fatalf("proxy counter not incremented: %+v", cr)
	}

	// Kill the owner. The forward fails mid-request and B falls back to
	// computing locally: degraded, not broken.
	a.srv.Close()
	code, bodyFallback := getNode(t, b.url, path(seeds[1]), false)
	if code != 200 {
		t.Fatalf("dead-owner GET = %d\n%s", code, bodyFallback)
	}
	if computed, _ := stageTotals(b.engine); computed == 0 {
		t.Fatal("fallback did not compute locally")
	}
	_, body = getNode(t, b.url, "/v1/cluster", true)
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.ProxyFallbacks == 0 {
		t.Fatalf("fallback counter not incremented: %+v", cr)
	}
	proxiedBefore := cr.Proxied

	// After a health sweep the dead owner is off the ring: the next
	// request routes locally directly, no proxy attempt at all.
	b.node.CheckNow(ctx)
	for _, ps := range b.node.Peers() {
		if ps.URL == a.url && ps.Healthy {
			t.Fatal("dead owner still healthy after forced sweep")
		}
	}
	code, _ = getNode(t, b.url, path(seeds[2]), false)
	if code != 200 {
		t.Fatalf("post-sweep GET = %d", code)
	}
	_, body = getNode(t, b.url, "/v1/cluster", true)
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Proxied != proxiedBefore {
		t.Fatalf("request to a known-dead owner was still proxied (%d -> %d)", proxiedBefore, cr.Proxied)
	}
}
