package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"cuisines/internal/artifact"
)

// Config configures a Node.
type Config struct {
	// Self is this node's own base URL as it appears in every fleet
	// member's -peers list (e.g. "http://10.0.0.1:8372"). Required.
	Self string
	// Peers are the other members' base URLs. The list plus Self forms
	// the (static) ring membership; order does not matter.
	Peers []string
	// Replicas is how many distinct owners each key has on the ring;
	// <= 0 means DefaultReplicas.
	Replicas int
	// VNodes is the hash points per member; <= 0 means DefaultVNodes.
	VNodes int
	// Store is the artifact store to attach the peer exchange to.
	// Required. New installs the fetch hook on it.
	Store *artifact.Store
	// Codecs maps artifact kind -> codec for the wire (typically
	// pipeline.Codecs()). Required non-empty.
	Codecs map[string]artifact.Codec
	// Now is the wall clock (health-probe timestamps). Required by the
	// lint contract to be explicit; cmd/cuisined passes time.Now.
	Now func() time.Time
	// ProbeInterval is the health sweep period; <= 0 means
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// ProbeTimeout caps one liveness probe; <= 0 means
	// DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// FetchTimeout caps one peer artifact fetch; <= 0 means
	// DefaultFetchTimeout.
	FetchTimeout time.Duration
	// MaxFrameBytes caps a peer response read; <= 0 means
	// DefaultMaxFrameBytes.
	MaxFrameBytes int64
}

// Node is one cuisined's membership in the cluster: the ring, the
// health checker and the artifact exchange, bundled behind the few
// calls the server and daemon need.
type Node struct {
	self     string
	ring     *Ring
	health   *health
	exchange *exchange
	interval time.Duration
}

// New builds a Node and installs its peer fetcher on cfg.Store. The
// health loop is not started — the daemon calls the blocking Run
// itself (this package spawns no goroutines).
func New(cfg Config) (*Node, error) {
	self, err := normalizeURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	peers := make([]string, 0, len(cfg.Peers))
	seen := map[string]bool{self: true}
	for _, p := range cfg.Peers {
		u, err := normalizeURL(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		if seen[u] { // tolerate self (and duplicates) in a fleet-wide shared -peers list
			continue
		}
		seen[u] = true
		peers = append(peers, u)
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: Store is required")
	}
	if len(cfg.Codecs) == 0 {
		return nil, fmt.Errorf("cluster: Codecs is required")
	}
	if cfg.Now == nil {
		return nil, fmt.Errorf("cluster: Now is required")
	}
	interval := cfg.ProbeInterval
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	fetchTimeout := cfg.FetchTimeout
	if fetchTimeout <= 0 {
		fetchTimeout = DefaultFetchTimeout
	}
	maxFrame := cfg.MaxFrameBytes
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	h := newHealth(peers, cfg.ProbeTimeout, cfg.Now)
	ring := NewRing(append([]string{self}, peers...), cfg.VNodes, cfg.Replicas)
	ex := &exchange{
		self:    self,
		client:  &http.Client{Timeout: fetchTimeout},
		store:   cfg.Store,
		codecs:  cfg.Codecs,
		ring:    ring,
		health:  h,
		maxSize: maxFrame,
	}
	n := &Node{
		self:     self,
		ring:     ring,
		health:   h,
		exchange: ex,
		interval: interval,
	}
	cfg.Store.SetFetcher(ex.fetch)
	return n, nil
}

func normalizeURL(s string) (string, error) {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if s == "" {
		return "", fmt.Errorf("empty URL")
	}
	if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
		return "", fmt.Errorf("%q must start with http:// or https://", s)
	}
	return s, nil
}

// Self returns this node's normalized base URL.
func (n *Node) Self() string { return n.self }

// Ring exposes the node's (immutable) consistent-hash ring.
func (n *Node) Ring() *Ring { return n.ring }

// Run is the blocking health loop: one sweep immediately, then one per
// ProbeInterval until ctx is done. The daemon runs it in a goroutine
// of its own (cmd/ is outside the nakedgo contract; this package is
// not).
func (n *Node) Run(ctx context.Context) {
	n.health.tick(ctx, false)
	t := time.NewTicker(n.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n.health.tick(ctx, false)
		}
	}
}

// CheckNow forces one full health sweep, ignoring backoff. Tests (and
// anything that just changed the fleet) use it instead of waiting out
// the probe interval.
func (n *Node) CheckNow(ctx context.Context) { n.health.tick(ctx, true) }

// Route decides where a request keyed by key should be served:
// ("", true) to serve locally (this node owns the key, or no owner is
// reachable), or (ownerURL, false) to proxy. With replicas > 1 a node
// that is any live owner serves locally — it will hold or warm the
// artifacts — so replicas also spread request load, not just survival.
func (n *Node) Route(key string) (owner string, local bool) {
	owners := n.ring.Owners(key, n.exchange.aliveOrSelf)
	if len(owners) == 0 {
		return "", true
	}
	for _, o := range owners {
		if o == n.self {
			return "", true
		}
	}
	return owners[0], false
}

// Owners exposes the ring walk for key over currently-live members
// (self included). Tests and /v1/cluster use it.
func (n *Node) Owners(key string) []string {
	return n.ring.Owners(key, n.exchange.aliveOrSelf)
}

// Metrics returns a snapshot of the exchange counters.
func (n *Node) Metrics() Metrics { return n.exchange.metrics() }

// Peers returns the current health snapshot of every peer.
func (n *Node) Peers() []PeerStatus { return n.health.snapshot() }

// ServeArtifact answers the peer wire route (GET/HEAD
// {ArtifactPathPrefix}{kind}/{key}) from the local store only.
func (n *Node) ServeArtifact(w http.ResponseWriter, r *http.Request) {
	n.exchange.serveArtifact(w, r)
}
