package treecmp

import (
	"testing"

	"cuisines/internal/distance"
	"cuisines/internal/hac"
	"cuisines/internal/matrix"
	"cuisines/internal/rng"
)

func clusteredTree(t *testing.T, r *rng.RNG, centers [][2]float64, perCenter int) *hac.Tree {
	t.Helper()
	n := len(centers) * perCenter
	m := matrix.NewDense(n, 2)
	for c, center := range centers {
		for i := 0; i < perCenter; i++ {
			m.Set(c*perCenter+i, 0, center[0]+r.NormFloat64()*0.3)
			m.Set(c*perCenter+i, 1, center[1]+r.NormFloat64()*0.3)
		}
	}
	lk, err := hac.Cluster(distance.Pdist(m, distance.Euclidean), hac.Average)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hac.BuildTree(lk, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPermutationTestDetectsRealStructure(t *testing.T) {
	// Two trees built from noisy copies of the same clustered points
	// must fit each other far better than chance.
	r := rng.New(51)
	centers := [][2]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	a := clusteredTree(t, r, centers, 4)
	b := clusteredTree(t, r, centers, 4)
	res, err := PermutationTest(a.Cophenetic(), b.Cophenetic(), BakersGamma, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Observed < 0.8 {
		t.Fatalf("observed gamma = %v for same structure", res.Observed)
	}
	if res.PValue > 0.01 {
		t.Fatalf("p-value = %v for strongly matched trees", res.PValue)
	}
	if res.NullMean > 0.4 {
		t.Fatalf("null mean %v suspiciously high", res.NullMean)
	}
}

func TestPermutationTestNullOnUnrelated(t *testing.T) {
	// Trees over independent random points: observed fit should sit
	// within the null distribution (p not extreme).
	r := rng.New(53)
	mk := func() *hac.Tree {
		n := 14
		m := matrix.NewDense(n, 2)
		for i := 0; i < n; i++ {
			m.Set(i, 0, r.NormFloat64()*10)
			m.Set(i, 1, r.NormFloat64()*10)
		}
		lk, _ := hac.Cluster(distance.Pdist(m, distance.Euclidean), hac.Average)
		tree, _ := hac.BuildTree(lk, nil)
		return tree
	}
	a, b := mk(), mk()
	res, err := PermutationTest(a.Cophenetic(), b.Cophenetic(), BakersGamma, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Fatalf("unrelated trees got p = %v (observed %v, null mean %v)",
			res.PValue, res.Observed, res.NullMean)
	}
}

func TestPermutationTestValidation(t *testing.T) {
	a := distance.NewCondensed(3)
	b := distance.NewCondensed(4)
	if _, err := PermutationTest(a, b, BakersGamma, 10, 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPermutationTestDeterministic(t *testing.T) {
	r := rng.New(55)
	a := clusteredTree(t, r, [][2]float64{{0, 0}, {8, 8}}, 4)
	b := clusteredTree(t, r, [][2]float64{{0, 0}, {8, 8}}, 4)
	r1, err := PermutationTest(a.Cophenetic(), b.Cophenetic(), CopheneticCorrelation, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := PermutationTest(a.Cophenetic(), b.Cophenetic(), CopheneticCorrelation, 200, 42)
	if r1.PValue != r2.PValue || r1.NullMean != r2.NullMean {
		t.Fatal("same seed produced different results")
	}
}
