// Package treecmp quantifies how similar two dendrograms over the same
// leaves are. The paper validates its cuisine trees against geography by
// visual inspection (Sec. VII); this package makes that comparison
// measurable with four standard statistics:
//
//   - CopheneticCorrelation: Pearson r between the trees' cophenetic
//     distance vectors (also usable tree-vs-raw-distances).
//   - BakersGamma: Spearman rank correlation of the cophenetic vectors
//     (Baker 1974), robust to monotone height differences.
//   - RobinsonFoulds: the count of bipartitions present in exactly one
//     tree, normalized to [0, 1].
//   - FowlkesMallows: B_k similarity of the two trees' k-cluster cuts.
package treecmp

import (
	"fmt"
	"math"
	"sort"

	"cuisines/internal/distance"
	"cuisines/internal/hac"
)

// CopheneticCorrelation returns the Pearson correlation between two
// condensed distance vectors over the same observations.
func CopheneticCorrelation(a, b *distance.Condensed) (float64, error) {
	if a.N() != b.N() {
		return 0, fmt.Errorf("treecmp: size mismatch %d vs %d", a.N(), b.N())
	}
	return pearson(a.Values(), b.Values())
}

func pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("treecmp: length mismatch")
	}
	n := float64(len(x))
	if n == 0 {
		return 0, fmt.Errorf("treecmp: empty vectors")
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("treecmp: constant vector has undefined correlation")
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}

// BakersGamma returns the Spearman rank correlation between the two
// condensed cophenetic vectors.
func BakersGamma(a, b *distance.Condensed) (float64, error) {
	if a.N() != b.N() {
		return 0, fmt.Errorf("treecmp: size mismatch %d vs %d", a.N(), b.N())
	}
	ra := ranks(a.Values())
	rb := ranks(b.Values())
	return pearson(ra, rb)
}

// ranks returns fractional ranks (ties averaged).
func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	out := make([]float64, len(x))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && x[idx[j]] == x[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j)
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// RobinsonFoulds returns the normalized Robinson-Foulds distance between
// two trees over the same leaf set: the fraction of non-trivial
// bipartitions present in exactly one tree (0 = identical topology,
// 1 = no shared splits).
func RobinsonFoulds(a, b *hac.Tree) (float64, error) {
	if a.N() != b.N() {
		return 0, fmt.Errorf("treecmp: leaf count mismatch %d vs %d", a.N(), b.N())
	}
	sa := bipartitions(a)
	sb := bipartitions(b)
	sym := 0
	for k := range sa {
		if !sb[k] {
			sym++
		}
	}
	for k := range sb {
		if !sa[k] {
			sym++
		}
	}
	total := len(sa) + len(sb)
	if total == 0 {
		return 0, nil
	}
	return float64(sym) / float64(total), nil
}

// bipartitions returns the set of non-trivial splits of a rooted binary
// tree, each encoded canonically as a bitset string over leaf indices
// (complement-normalized so the side containing leaf 0 is stored).
func bipartitions(t *hac.Tree) map[string]bool {
	n := t.N()
	out := make(map[string]bool)
	var walk func(node *hac.Node) []bool
	walk = func(node *hac.Node) []bool {
		mask := make([]bool, n)
		if node.IsLeaf() {
			mask[node.Leaf] = true
			return mask
		}
		l := walk(node.Left)
		r := walk(node.Right)
		for i := range mask {
			mask[i] = l[i] || r[i]
		}
		size := 0
		for _, b := range mask {
			if b {
				size++
			}
		}
		if size >= 2 && size <= n-2 {
			out[canonicalMask(mask)] = true
		}
		return mask
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

func canonicalMask(mask []bool) string {
	// Normalize to the side containing leaf 0.
	flip := !mask[0]
	b := make([]byte, len(mask))
	for i, v := range mask {
		if v != flip { // v XOR flip == v != flip for bools
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// FowlkesMallows returns B_k for the two trees cut into k clusters:
// TP / sqrt((TP+FP)(TP+FN)) over leaf pairs, in [0, 1].
func FowlkesMallows(a, b *hac.Tree, k int) (float64, error) {
	if a.N() != b.N() {
		return 0, fmt.Errorf("treecmp: leaf count mismatch")
	}
	ca, err := a.CutK(k)
	if err != nil {
		return 0, err
	}
	cb, err := b.CutK(k)
	if err != nil {
		return 0, err
	}
	return pairSimilarity(ca, cb)
}

func pairSimilarity(ca, cb []int) (float64, error) {
	n := len(ca)
	var tp, fp, fn float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := ca[i] == ca[j]
			sameB := cb[i] == cb[j]
			switch {
			case sameA && sameB:
				tp++
			case sameA && !sameB:
				fn++
			case !sameA && sameB:
				fp++
			}
		}
	}
	den := math.Sqrt((tp + fp) * (tp + fn))
	if den == 0 {
		return 0, nil
	}
	return tp / den, nil
}

// Report aggregates all similarity statistics between a candidate tree
// and a reference tree.
type Report struct {
	Cophenetic     float64
	BakersGamma    float64
	RobinsonFoulds float64
	// FowlkesMallows holds B_k for the ks requested.
	FowlkesMallows map[int]float64
}

// Compare runs every statistic between candidate and reference trees.
func Compare(candidate, reference *hac.Tree, bks []int) (*Report, error) {
	cc := candidate.Cophenetic()
	cr := reference.Cophenetic()
	coph, err := CopheneticCorrelation(cc, cr)
	if err != nil {
		return nil, err
	}
	gamma, err := BakersGamma(cc, cr)
	if err != nil {
		return nil, err
	}
	rf, err := RobinsonFoulds(candidate, reference)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Cophenetic:     coph,
		BakersGamma:    gamma,
		RobinsonFoulds: rf,
		FowlkesMallows: make(map[int]float64, len(bks)),
	}
	for _, k := range bks {
		bk, err := FowlkesMallows(candidate, reference, k)
		if err != nil {
			return nil, err
		}
		rep.FowlkesMallows[k] = bk
	}
	return rep, nil
}
