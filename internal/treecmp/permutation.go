package treecmp

import (
	"fmt"
	"math"

	"cuisines/internal/distance"
	"cuisines/internal/rng"
)

// PermutationResult is the outcome of a label-permutation significance
// test.
type PermutationResult struct {
	// Observed is the statistic on the unpermuted data.
	Observed float64
	// PValue is the one-sided probability that a random relabeling
	// reaches the observed statistic or better, with the +1 correction
	// ((r+1)/(n+1)).
	PValue float64
	// Iterations actually run.
	Iterations int
	// NullMean and NullStd summarize the permutation distribution.
	NullMean, NullStd float64
}

// Statistic computes a similarity between two aligned condensed matrices
// (higher = more similar), e.g. CopheneticCorrelation or BakersGamma.
type Statistic func(a, b *distance.Condensed) (float64, error)

// PermutationTest estimates the significance of the similarity between
// two condensed matrices over the same observations (typically two
// cophenetic matrices, or one cophenetic matrix and raw distances): the
// labels of the first matrix are permuted iters times and the statistic
// recomputed, giving the null distribution of "a random tree over the
// same heights".
//
// The paper validates its cuisine trees against geography by eye; this
// test answers, quantitatively, whether a tree's geography fit could be
// luck.
func PermutationTest(a, b *distance.Condensed, stat Statistic, iters int, seed uint64) (*PermutationResult, error) {
	if a.N() != b.N() {
		return nil, fmt.Errorf("treecmp: size mismatch %d vs %d", a.N(), b.N())
	}
	if iters <= 0 {
		iters = 1000
	}
	observed, err := stat(a, b)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed)
	n := a.N()
	perm := distance.NewCondensed(n)
	geq := 0
	var sum, sumsq float64
	for it := 0; it < iters; it++ {
		p := r.Perm(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				perm.Set(i, j, a.At(p[i], p[j]))
			}
		}
		s, err := stat(perm, b)
		if err != nil {
			// Degenerate permutations (constant vectors) cannot occur for
			// matrices with at least two distinct values; surface anything
			// else.
			return nil, fmt.Errorf("treecmp: permutation %d: %w", it, err)
		}
		if s >= observed {
			geq++
		}
		sum += s
		sumsq += s * s
	}
	mean := sum / float64(iters)
	variance := sumsq/float64(iters) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return &PermutationResult{
		Observed:   observed,
		PValue:     float64(geq+1) / float64(iters+1),
		Iterations: iters,
		NullMean:   mean,
		NullStd:    math.Sqrt(variance),
	}, nil
}
