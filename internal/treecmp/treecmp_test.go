package treecmp

import (
	"math"
	"testing"

	"cuisines/internal/distance"
	"cuisines/internal/hac"
	"cuisines/internal/matrix"
	"cuisines/internal/rng"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// treeFrom builds an average-linkage tree from points on a line.
func treeFrom(t *testing.T, points []float64) *hac.Tree {
	t.Helper()
	m := matrix.NewDense(len(points), 1)
	for i, p := range points {
		m.Set(i, 0, p)
	}
	lk, err := hac.Cluster(distance.Pdist(m, distance.Euclidean), hac.Average)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hac.BuildTree(lk, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestCopheneticCorrelationIdentity(t *testing.T) {
	tree := treeFrom(t, []float64{0, 1, 5, 6, 20})
	c := tree.Cophenetic()
	r, err := CopheneticCorrelation(c, c)
	if err != nil || !almostEq(r, 1) {
		t.Fatalf("self correlation = %v, %v", r, err)
	}
}

func TestCopheneticCorrelationSizeMismatch(t *testing.T) {
	a := treeFrom(t, []float64{0, 1, 2}).Cophenetic()
	b := treeFrom(t, []float64{0, 1, 2, 3}).Cophenetic()
	if _, err := CopheneticCorrelation(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestCopheneticSimilarBeatsDifferent(t *testing.T) {
	base := treeFrom(t, []float64{0, 1, 5, 6, 20, 21})
	similar := treeFrom(t, []float64{0, 1.2, 5.1, 6.3, 19, 22})
	different := treeFrom(t, []float64{0, 20, 1, 21, 5, 22})
	rSim, err := CopheneticCorrelation(base.Cophenetic(), similar.Cophenetic())
	if err != nil {
		t.Fatal(err)
	}
	rDif, err := CopheneticCorrelation(base.Cophenetic(), different.Cophenetic())
	if err != nil {
		t.Fatal(err)
	}
	if rSim <= rDif {
		t.Fatalf("similar tree r=%v should beat shuffled r=%v", rSim, rDif)
	}
}

func TestBakersGammaInvariantToMonotoneHeights(t *testing.T) {
	// A monotone transform of the pairwise distances preserves
	// single-linkage merge order, hence cophenetic ranks, hence gamma = 1.
	pts := []float64{0, 1, 4, 9, 16}
	m := matrix.NewDense(len(pts), 1)
	for i, p := range pts {
		m.Set(i, 0, p)
	}
	d := distance.Pdist(m, distance.Euclidean)
	d2 := d.Clone()
	for i, v := range d2.Values() {
		d2.Values()[i] = v * v // strictly monotone on distances
	}
	mkTree := func(c *distance.Condensed) *hac.Tree {
		lk, err := hac.Cluster(c, hac.Single)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := hac.BuildTree(lk, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	a, b := mkTree(d), mkTree(d2)
	gamma, err := BakersGamma(a.Cophenetic(), b.Cophenetic())
	if err != nil {
		t.Fatal(err)
	}
	if gamma < 0.999 {
		t.Fatalf("gamma = %v under monotone distance transform", gamma)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEq(r[i], want[i]) {
			t.Fatalf("ranks = %v", r)
		}
	}
}

func TestRobinsonFouldsIdentityAndDisjoint(t *testing.T) {
	a := treeFrom(t, []float64{0, 1, 5, 6, 20, 21})
	rf, err := RobinsonFoulds(a, a)
	if err != nil || rf != 0 {
		t.Fatalf("self RF = %v, %v", rf, err)
	}
	// A tree pairing the same leaves differently: swap extremes.
	b := treeFrom(t, []float64{0, 21, 5, 1, 20, 6})
	rf, err = RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rf <= 0 || rf > 1 {
		t.Fatalf("shuffled RF = %v", rf)
	}
}

func TestRobinsonFouldsMismatch(t *testing.T) {
	a := treeFrom(t, []float64{0, 1, 2})
	b := treeFrom(t, []float64{0, 1, 2, 3})
	if _, err := RobinsonFoulds(a, b); err == nil {
		t.Fatal("leaf mismatch accepted")
	}
}

func TestFowlkesMallowsIdentity(t *testing.T) {
	// Distinct gaps everywhere: tied merge heights would make CutK
	// over-split (documented behaviour) and void the identity check.
	a := treeFrom(t, []float64{0, 1, 5, 6.5, 20, 22.5})
	for _, k := range []int{2, 3, 4} {
		bk, err := FowlkesMallows(a, a, k)
		if err != nil || !almostEq(bk, 1) {
			t.Fatalf("self B_%d = %v, %v", k, bk, err)
		}
	}
}

func TestFowlkesMallowsRange(t *testing.T) {
	a := treeFrom(t, []float64{0, 1, 5, 6, 20, 21})
	b := treeFrom(t, []float64{0, 20, 1, 21, 5, 22})
	for _, k := range []int{2, 3} {
		bk, err := FowlkesMallows(a, b, k)
		if err != nil {
			t.Fatal(err)
		}
		if bk < 0 || bk > 1 {
			t.Fatalf("B_%d = %v out of range", k, bk)
		}
	}
	if _, err := FowlkesMallows(a, b, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestCompareAggregates(t *testing.T) {
	a := treeFrom(t, []float64{0, 1, 5, 6, 20, 21})
	b := treeFrom(t, []float64{0, 1.5, 5, 6.5, 19, 23})
	rep, err := Compare(a, b, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cophenetic <= 0.8 {
		t.Fatalf("cophenetic = %v for near-identical trees", rep.Cophenetic)
	}
	if len(rep.FowlkesMallows) != 2 {
		t.Fatalf("B_k map = %v", rep.FowlkesMallows)
	}
	if rep.RobinsonFoulds != 0 {
		t.Fatalf("RF = %v for same topology", rep.RobinsonFoulds)
	}
}

func TestPearsonConstantVectorErrors(t *testing.T) {
	if _, err := pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant vector accepted")
	}
	if _, err := pearson(nil, nil); err == nil {
		t.Fatal("empty vectors accepted")
	}
}

func TestCopheneticCorrelationRangeProperty(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(8)
		mk := func() *hac.Tree {
			m := matrix.NewDense(n, 2)
			for i := 0; i < n; i++ {
				m.Set(i, 0, r.NormFloat64()*5)
				m.Set(i, 1, r.NormFloat64()*5)
			}
			lk, _ := hac.Cluster(distance.Pdist(m, distance.Euclidean), hac.Complete)
			tree, _ := hac.BuildTree(lk, nil)
			return tree
		}
		a, b := mk(), mk()
		rep, err := Compare(a, b, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cophenetic < -1-1e-9 || rep.Cophenetic > 1+1e-9 {
			t.Fatalf("cophenetic out of range: %v", rep.Cophenetic)
		}
		if rep.BakersGamma < -1-1e-9 || rep.BakersGamma > 1+1e-9 {
			t.Fatalf("gamma out of range: %v", rep.BakersGamma)
		}
		if rep.RobinsonFoulds < 0 || rep.RobinsonFoulds > 1 {
			t.Fatalf("RF out of range: %v", rep.RobinsonFoulds)
		}
	}
}
