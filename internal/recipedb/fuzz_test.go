package recipedb

import (
	"strings"
	"testing"
)

// The ingestion fuzz targets lock two properties over arbitrary input:
// the readers never panic, and every rejection names where the problem
// is — a specific line for row-level failures, or the header. CI runs
// them for a short fixed budget on every push (see ci.yml); longer
// local runs: go test -fuzz=FuzzReadCSV ./internal/recipedb.

// locatedError reports whether an ingestion error points the caller at
// the offending input: a line number, or the header phase.
func locatedError(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "line ") || strings.Contains(msg, "header")
}

// TestReadCSVLineNumbersSpanQuotedNewlines: quoted fields may contain
// newlines, so error positions must come from the reader's physical
// line tracking, not a record counter.
func TestReadCSVLineNumbersSpanQuotedNewlines(t *testing.T) {
	in := "id,name,region,ingredients,processes,utensils\n" +
		"r1,\"Two\nLine\",French,beef,,\n" + // record 1 spans physical lines 2-3
		"r1,Dup,French,beef,,\n" // physical line 4: duplicate ID
	_, err := ReadCSV(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want error naming line 4, got: %v", err)
	}
}

func FuzzReadCSV(f *testing.F) {
	f.Add("id,name,region,ingredients,processes,utensils\nr1,Stew,French,beef|wine,simmer,pot\n")
	f.Add("id,name,region,ingredients,processes,utensils\nr1,,French,beef,,\nr1,,French,beef,,\n") // duplicate ID
	f.Add("id,name,region,ingredients,processes,utensils\nr1,Stew,,beef,,\n")                      // empty region
	f.Add("id,name,region,ingredients,processes,utensils\nr1,Stew,French,,,\n")                    // no ingredients
	f.Add("id,name,region,ingredients,processes,utensils\n\"r1,Stew\n")                            // unterminated quote
	f.Add("id,name,region,ingredients,processes,utensils\nr1,Stew,French,beef,simmer\n")           // short row
	f.Add("bogus,header\n")
	f.Add("id,name,region,ingredients,processes,utensils\nr1,S,French," + strings.Repeat("x|", 500) + "y,,\n")
	f.Fuzz(func(t *testing.T, data string) {
		db, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			if !locatedError(err) {
				t.Fatalf("error does not locate the problem: %v", err)
			}
			return
		}
		// Accepted input must yield a structurally valid database.
		for i := 0; i < db.Len(); i++ {
			if verr := db.Recipe(i).Validate(); verr != nil {
				t.Fatalf("accepted invalid recipe %d: %v", i, verr)
			}
		}
	})
}

func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"id":"r1","name":"Stew","region":"French","ingredients":["beef","wine"]}` + "\n")
	f.Add(`{"id":"r1","region":"French","ingredients":["beef"]}` + "\n" + `{"id":"r1","region":"French","ingredients":["beef"]}` + "\n")
	f.Add(`{"id":"r1","region":"","ingredients":["beef"]}` + "\n") // empty region
	f.Add(`{"id":"r1","region":"French"}` + "\n")                  // no ingredients
	f.Add("{not json}\n")
	f.Add("\n\n" + `{"id":"r1","region":"French","ingredients":["beef"]}` + "\n\n")
	f.Add(`{"id":"r1","region":"French","ingredients":["` + strings.Repeat("x", 2000) + `"]}` + "\n")
	f.Fuzz(func(t *testing.T, data string) {
		db, err := ReadJSONL(strings.NewReader(data))
		if err != nil {
			if !locatedError(err) {
				t.Fatalf("error does not locate the problem: %v", err)
			}
			return
		}
		for i := 0; i < db.Len(); i++ {
			if verr := db.Recipe(i).Validate(); verr != nil {
				t.Fatalf("accepted invalid recipe %d: %v", i, verr)
			}
		}
	})
}
