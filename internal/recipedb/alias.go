package recipedb

import (
	"sort"

	"cuisines/internal/itemset"
)

// The paper's future-work section notes that its analysis "neither
// considers the state of ingredients nor their aliases" and that future
// analyses should account for them. This file implements that extension:
// an alias table mapping ingredient synonyms to canonical names, and a
// resolution pass over a database. Resolving aliases before mining
// consolidates split supports (e.g. "scallion" + "green onion" recipes
// all count toward one item).

// AliasTable maps alias -> canonical name. Keys and values are stored in
// canonical (lowercase, single-spaced) form.
type AliasTable map[string]string

// DefaultAliases covers the common RecipeDB ingredient synonyms.
func DefaultAliases() AliasTable {
	return AliasTable{
		"scallion":            "green onion",
		"spring onion":        "green onion",
		"cilantro leaves":     "cilantro",
		"fresh coriander":     "cilantro",
		"coriander leaves":    "cilantro",
		"garbanzo bean":       "chickpea",
		"garbanzo beans":      "chickpea",
		"aubergine":           "eggplant",
		"courgette":           "zucchini",
		"capsicum":            "bell pepper",
		"prawn":               "shrimp",
		"prawns":              "shrimp",
		"maize":               "corn",
		"beet root":           "beetroot",
		"curd":                "yogurt",
		"dahi":                "yogurt",
		"ghee":                "clarified butter",
		"powdered sugar":      "confectioners sugar",
		"icing sugar":         "confectioners sugar",
		"corn flour":          "cornstarch",
		"soya sauce":          "soy sauce",
		"shoyu":               "soy sauce",
		"green chilli":        "green chili",
		"red chilli":          "red chili",
		"chilli powder":       "red chili powder",
		"besan":               "gram flour",
		"king prawn":          "shrimp",
		"rocket":              "arugula",
		"coriander seed":      "coriander",
		"spring roll wrapper": "spring roll skin",
	}
}

// normalize returns a copy of the table with canonical keys and values,
// dropping self-mappings.
func (t AliasTable) normalize() AliasTable {
	out := make(AliasTable, len(t))
	for k, v := range t {
		ck, cv := itemset.CanonicalName(k), itemset.CanonicalName(v)
		if ck == "" || ck == cv {
			continue
		}
		out[ck] = cv
	}
	return out
}

// Resolve returns the canonical name for a raw name (following at most
// one alias hop; alias tables are expected to map directly to canonical
// names).
func (t AliasTable) Resolve(name string) string {
	c := itemset.CanonicalName(name)
	if v, ok := t[c]; ok {
		return v
	}
	return c
}

// Aliases returns the alias keys in sorted order.
func (t AliasTable) Aliases() []string {
	out := make([]string, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ResolveAliases returns a new DB with every ingredient name passed
// through the alias table (processes and utensils are left as-is; the
// paper's alias concern is ingredients). Duplicate ingredients created by
// the resolution are collapsed.
func ResolveAliases(db *DB, table AliasTable) (*DB, error) {
	t := table.normalize()
	out := make([]Recipe, db.Len())
	for i := 0; i < db.Len(); i++ {
		r := *db.Recipe(i)
		seen := make(map[string]bool, len(r.Ingredients))
		resolved := make([]string, 0, len(r.Ingredients))
		for _, name := range r.Ingredients {
			c := t.Resolve(name)
			if !seen[c] {
				seen[c] = true
				resolved = append(resolved, c)
			}
		}
		r.Ingredients = resolved
		out[i] = r
	}
	return New(out)
}
