package recipedb

import (
	"fmt"
	"sort"
	"strings"

	"cuisines/internal/itemset"
)

// Stats summarizes a DB in the terms of Sec. III of the paper.
type Stats struct {
	Recipes           int `json:"recipes"`
	Regions           int `json:"regions"`
	UniqueIngredients int `json:"unique_ingredients"`
	UniqueProcesses   int `json:"unique_processes"`
	UniqueUtensils    int `json:"unique_utensils"`
	// Mean items per recipe, by kind (paper: ~10 ingredients, ~12
	// processes, ~3 utensils).
	MeanIngredients float64 `json:"mean_ingredients"`
	MeanProcesses   float64 `json:"mean_processes"`
	MeanUtensils    float64 `json:"mean_utensils"`
	// RecipesWithoutUtensils counts the utensil-sparse recipes (paper:
	// 14,601).
	RecipesWithoutUtensils int `json:"recipes_without_utensils"`
	// PerRegion holds recipe counts by region, sorted by region name.
	PerRegion []RegionCount `json:"per_region"`
}

// RegionCount pairs a region with its recipe count.
type RegionCount struct {
	Region  string `json:"region"`
	Recipes int    `json:"recipes"`
}

// ComputeStats scans the DB once and returns its Sec. III summary.
func ComputeStats(db *DB) Stats {
	st := Stats{Recipes: db.Len(), Regions: db.NumRegions()}
	ing := make(map[string]bool)
	proc := make(map[string]bool)
	ute := make(map[string]bool)
	var sumI, sumP, sumU int
	for i := 0; i < db.Len(); i++ {
		r := db.Recipe(i)
		// Unique names are counted canonically, matching how mining sees
		// them.
		for _, n := range r.Ingredients {
			ing[itemset.CanonicalName(n)] = true
		}
		for _, n := range r.Processes {
			proc[itemset.CanonicalName(n)] = true
		}
		for _, n := range r.Utensils {
			ute[itemset.CanonicalName(n)] = true
		}
		sumI += len(r.Ingredients)
		sumP += len(r.Processes)
		sumU += len(r.Utensils)
		if len(r.Utensils) == 0 {
			st.RecipesWithoutUtensils++
		}
	}
	st.UniqueIngredients = len(ing)
	st.UniqueProcesses = len(proc)
	st.UniqueUtensils = len(ute)
	if db.Len() > 0 {
		n := float64(db.Len())
		st.MeanIngredients = float64(sumI) / n
		st.MeanProcesses = float64(sumP) / n
		st.MeanUtensils = float64(sumU) / n
	}
	for _, region := range db.Regions() {
		st.PerRegion = append(st.PerRegion, RegionCount{region, db.RegionSize(region)})
	}
	sort.Slice(st.PerRegion, func(i, j int) bool { return st.PerRegion[i].Region < st.PerRegion[j].Region })
	return st
}

// String renders a human-readable report in the shape of Sec. III.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recipes: %d across %d regions\n", st.Recipes, st.Regions)
	fmt.Fprintf(&b, "unique items: %d ingredients, %d processes, %d utensils\n",
		st.UniqueIngredients, st.UniqueProcesses, st.UniqueUtensils)
	fmt.Fprintf(&b, "mean per recipe: %.1f ingredients, %.1f processes, %.1f utensils\n",
		st.MeanIngredients, st.MeanProcesses, st.MeanUtensils)
	fmt.Fprintf(&b, "recipes without utensil data: %d\n", st.RecipesWithoutUtensils)
	for _, rc := range st.PerRegion {
		fmt.Fprintf(&b, "  %-24s %6d\n", rc.Region, rc.Recipes)
	}
	return b.String()
}
