package recipedb

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// CSV layout: one recipe per row with multi-valued fields joined by '|'.
var csvHeader = []string{"id", "name", "region", "ingredients", "processes", "utensils"}

const listSep = "|"

// WriteCSV serializes the DB as CSV with a header row.
func WriteCSV(w io.Writer, db *DB) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("recipedb: writing header: %w", err)
	}
	for i := 0; i < db.Len(); i++ {
		r := db.Recipe(i)
		row := []string{
			r.ID, r.Name, r.Region,
			strings.Join(r.Ingredients, listSep),
			strings.Join(r.Processes, listSep),
			strings.Join(r.Utensils, listSep),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("recipedb: writing recipe %s: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a DB from CSV produced by WriteCSV. Every row-level
// failure — a malformed record, a recipe failing validation, a
// duplicate ID — is reported with the offending line number, so
// ingestion errors on large uploads are actionable.
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("recipedb: reading header: %w", err)
	}
	for i, h := range csvHeader {
		if !strings.EqualFold(header[i], h) {
			return nil, fmt.Errorf("recipedb: bad CSV header: column %d is %q, want %q", i, header[i], h)
		}
	}
	var recipes []Recipe
	seen := make(map[string]bool)
	line := 1 // physical line of the most recent record (the header)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Parse errors carry their own physical line; anything else
			// (an underlying reader failure) happened after `line`.
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				return nil, fmt.Errorf("recipedb: line %d: %w", pe.StartLine, err)
			}
			return nil, fmt.Errorf("recipedb: line %d: %w", line+1, err)
		}
		// FieldPos reports the *physical* line the record starts on —
		// quoted fields may span lines, so a record counter would drift.
		line, _ = cr.FieldPos(0)
		rec := Recipe{
			ID:          row[0],
			Name:        row[1],
			Region:      row[2],
			Ingredients: splitList(row[3]),
			Processes:   splitList(row[4]),
			Utensils:    splitList(row[5]),
		}
		if err := checkRow(&rec, seen); err != nil {
			return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
		}
		recipes = append(recipes, rec)
	}
	return newValidated(recipes), nil
}

// checkRow validates one ingested recipe and claims its ID, so codec
// errors carry the line the caller is tracking. The CSV reader's
// quoting rules make empty IDs and regions representable, and a
// duplicate ID anywhere in a 118k-row upload is far easier to fix when
// the message says which row collided. Validate's package prefix is
// stripped — the caller's "recipedb: line N:" wrap already names the
// package, and "recipedb: line 3: recipedb: ..." reads as a bug.
func checkRow(rec *Recipe, seen map[string]bool) error {
	if err := rec.Validate(); err != nil {
		return errors.New(strings.TrimPrefix(err.Error(), "recipedb: "))
	}
	if seen[rec.ID] {
		return fmt.Errorf("duplicate recipe ID %s", rec.ID)
	}
	seen[rec.ID] = true
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, listSep)
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// jsonRecipe is the JSONL wire form.
type jsonRecipe struct {
	ID          string   `json:"id"`
	Name        string   `json:"name"`
	Region      string   `json:"region"`
	Ingredients []string `json:"ingredients"`
	Processes   []string `json:"processes,omitempty"`
	Utensils    []string `json:"utensils,omitempty"`
}

// WriteJSONL serializes the DB as JSON Lines (one recipe object per line).
func WriteJSONL(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := 0; i < db.Len(); i++ {
		r := db.Recipe(i)
		jr := jsonRecipe{r.ID, r.Name, r.Region, r.Ingredients, r.Processes, r.Utensils}
		if err := enc.Encode(&jr); err != nil {
			return fmt.Errorf("recipedb: encoding recipe %s: %w", r.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a DB from JSON Lines. Blank lines are skipped.
// Like ReadCSV, every failure — malformed JSON, validation, duplicate
// IDs, even a line exceeding the scanner's buffer — names the
// offending line.
func ReadJSONL(r io.Reader) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recipes []Recipe
	seen := make(map[string]bool)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var jr jsonRecipe
		if err := json.Unmarshal([]byte(text), &jr); err != nil {
			return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
		}
		rec := Recipe{
			ID: jr.ID, Name: jr.Name, Region: jr.Region,
			Ingredients: jr.Ingredients, Processes: jr.Processes, Utensils: jr.Utensils,
		}
		if err := checkRow(&rec, seen); err != nil {
			return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
		}
		recipes = append(recipes, rec)
	}
	if err := sc.Err(); err != nil {
		// The scanner stops at the line it could not buffer (e.g. one
		// longer than the 16 MiB cap), the line after the last it scanned.
		return nil, fmt.Errorf("recipedb: line %d: %w", line+1, err)
	}
	return newValidated(recipes), nil
}
