package recipedb

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CSV layout: one recipe per row with multi-valued fields joined by '|'.
var csvHeader = []string{"id", "name", "region", "ingredients", "processes", "utensils"}

const listSep = "|"

// WriteCSV serializes the DB as CSV with a header row.
func WriteCSV(w io.Writer, db *DB) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("recipedb: writing header: %w", err)
	}
	for i := 0; i < db.Len(); i++ {
		r := db.Recipe(i)
		row := []string{
			r.ID, r.Name, r.Region,
			strings.Join(r.Ingredients, listSep),
			strings.Join(r.Processes, listSep),
			strings.Join(r.Utensils, listSep),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("recipedb: writing recipe %s: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a DB from CSV produced by WriteCSV.
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("recipedb: reading header: %w", err)
	}
	for i, h := range csvHeader {
		if !strings.EqualFold(header[i], h) {
			return nil, fmt.Errorf("recipedb: bad CSV header: column %d is %q, want %q", i, header[i], h)
		}
	}
	var recipes []Recipe
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
		}
		recipes = append(recipes, Recipe{
			ID:          row[0],
			Name:        row[1],
			Region:      row[2],
			Ingredients: splitList(row[3]),
			Processes:   splitList(row[4]),
			Utensils:    splitList(row[5]),
		})
	}
	return New(recipes)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, listSep)
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// jsonRecipe is the JSONL wire form.
type jsonRecipe struct {
	ID          string   `json:"id"`
	Name        string   `json:"name"`
	Region      string   `json:"region"`
	Ingredients []string `json:"ingredients"`
	Processes   []string `json:"processes,omitempty"`
	Utensils    []string `json:"utensils,omitempty"`
}

// WriteJSONL serializes the DB as JSON Lines (one recipe object per line).
func WriteJSONL(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := 0; i < db.Len(); i++ {
		r := db.Recipe(i)
		jr := jsonRecipe{r.ID, r.Name, r.Region, r.Ingredients, r.Processes, r.Utensils}
		if err := enc.Encode(&jr); err != nil {
			return fmt.Errorf("recipedb: encoding recipe %s: %w", r.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a DB from JSON Lines. Blank lines are skipped.
func ReadJSONL(r io.Reader) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recipes []Recipe
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var jr jsonRecipe
		if err := json.Unmarshal([]byte(text), &jr); err != nil {
			return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
		}
		recipes = append(recipes, Recipe{
			ID: jr.ID, Name: jr.Name, Region: jr.Region,
			Ingredients: jr.Ingredients, Processes: jr.Processes, Utensils: jr.Utensils,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("recipedb: scanning: %w", err)
	}
	return New(recipes)
}
