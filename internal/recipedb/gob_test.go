package recipedb

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestDBGobRoundTrip(t *testing.T) {
	db, err := New([]Recipe{
		{ID: "r1", Name: "Stew", Region: "French", Ingredients: []string{"beef", "wine"}, Processes: []string{"simmer"}, Utensils: []string{"pot"}},
		{ID: "r2", Name: "Fry", Region: "Chinese", Ingredients: []string{"soy sauce"}, Processes: []string{"heat"}},
		{ID: "r3", Name: "Salad", Region: "French", Ingredients: []string{"lettuce"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(db); err != nil {
		t.Fatal(err)
	}
	var got *DB
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip changed size: got %d, want %d", got.Len(), db.Len())
	}
	gr, wr := got.Regions(), db.Regions()
	if len(gr) != len(wr) {
		t.Fatalf("round trip changed regions: got %v, want %v", gr, wr)
	}
	for i := range wr {
		if gr[i] != wr[i] {
			t.Fatalf("round trip changed regions: got %v, want %v", gr, wr)
		}
	}
	for i := 0; i < db.Len(); i++ {
		a, b := got.Recipe(i), db.Recipe(i)
		if a.ID != b.ID || a.Name != b.Name || a.Region != b.Region {
			t.Errorf("recipe %d changed: got %+v, want %+v", i, a, b)
		}
	}
	if got.RegionSize("French") != 2 {
		t.Errorf("region index not rebuilt: French has %d recipes, want 2", got.RegionSize("French"))
	}
}

func TestDBGobRejectsInvalidRecipes(t *testing.T) {
	// Encode a raw recipe slice with a validation violation: GobDecode
	// must reject it rather than construct a broken DB.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode([]Recipe{{ID: "x", Region: "", Ingredients: []string{"a"}}}); err != nil {
		t.Fatal(err)
	}
	var db DB
	if err := db.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decode of invalid recipe succeeded, want error")
	}
}
