package recipedb

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cuisines/internal/itemset"
)

func sampleRecipes() []Recipe {
	return []Recipe{
		{ID: "r1", Name: "Miso Soup", Region: "Japanese",
			Ingredients: []string{"miso", "tofu", "dashi"},
			Processes:   []string{"boil", "add"},
			Utensils:    []string{"pot"}},
		{ID: "r2", Name: "Ramen", Region: "Japanese",
			Ingredients: []string{"noodles", "soy sauce", "egg"},
			Processes:   []string{"boil", "simmer"},
			Utensils:    nil}, // no utensil data — allowed
		{ID: "r3", Name: "Tacos", Region: "Mexican",
			Ingredients: []string{"tortilla", "cilantro", "onion"},
			Processes:   []string{"heat", "add"},
			Utensils:    []string{"skillet"}},
	}
}

func mustDB(t *testing.T, rs []Recipe) *DB {
	t.Helper()
	db, err := New(rs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewIndexesRegions(t *testing.T) {
	db := mustDB(t, sampleRecipes())
	if db.Len() != 3 || db.NumRegions() != 2 {
		t.Fatalf("len=%d regions=%d", db.Len(), db.NumRegions())
	}
	if !reflect.DeepEqual(db.Regions(), []string{"Japanese", "Mexican"}) {
		t.Fatalf("regions = %v", db.Regions())
	}
	if db.RegionSize("Japanese") != 2 || db.RegionSize("Atlantis") != 0 {
		t.Fatal("region sizes wrong")
	}
	rs := db.RegionRecipes("Mexican")
	if len(rs) != 1 || rs[0].ID != "r3" {
		t.Fatalf("region recipes = %v", rs)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cases := []Recipe{
		{ID: "", Region: "X", Ingredients: []string{"a"}},
		{ID: "x", Region: "", Ingredients: []string{"a"}},
		{ID: "x", Region: "X", Ingredients: nil},
	}
	for i, r := range cases {
		if _, err := New([]Recipe{r}); err == nil {
			t.Errorf("case %d accepted invalid recipe", i)
		}
	}
}

func TestNewRejectsDuplicateIDs(t *testing.T) {
	rs := sampleRecipes()
	rs[1].ID = "r1"
	if _, err := New(rs); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestItemsSpanKinds(t *testing.T) {
	db := mustDB(t, sampleRecipes())
	s := db.Recipe(0).Items()
	if s.OfKind(itemset.Ingredient).Len() != 3 ||
		s.OfKind(itemset.Process).Len() != 2 ||
		s.OfKind(itemset.Utensil).Len() != 1 {
		t.Fatalf("items = %v", s)
	}
}

func TestRegionDataset(t *testing.T) {
	db := mustDB(t, sampleRecipes())
	d := db.RegionDataset("Japanese")
	if d.Len() != 2 {
		t.Fatalf("dataset len = %d", d.Len())
	}
	boil := itemset.FromNames(itemset.Process, "boil")
	if d.Support(boil) != 1.0 {
		t.Fatalf("support(boil) = %v", d.Support(boil))
	}
	if db.AllDataset().Len() != 3 {
		t.Fatal("AllDataset wrong size")
	}
	if db.RegionDataset("Atlantis").Len() != 0 {
		t.Fatal("unknown region dataset not empty")
	}
}

func TestFilterAndSample(t *testing.T) {
	db := mustDB(t, sampleRecipes())
	f := db.Filter(func(r *Recipe) bool { return r.Region == "Japanese" })
	if f.Len() != 2 || f.NumRegions() != 1 {
		t.Fatal("filter wrong")
	}
	s := db.Sample(2)
	if s.RegionSize("Japanese") != 1 || s.RegionSize("Mexican") != 1 {
		t.Fatalf("sample sizes: %v", s.Regions())
	}
	if db.Sample(1) != db {
		t.Fatal("Sample(1) should be identity")
	}
}

func TestComputeStats(t *testing.T) {
	db := mustDB(t, sampleRecipes())
	st := ComputeStats(db)
	if st.Recipes != 3 || st.Regions != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UniqueIngredients != 9 || st.UniqueProcesses != 4 || st.UniqueUtensils != 2 {
		t.Fatalf("unique counts = %+v", st)
	}
	if st.RecipesWithoutUtensils != 1 {
		t.Fatalf("missing utensils = %d", st.RecipesWithoutUtensils)
	}
	if st.MeanIngredients != 3 {
		t.Fatalf("mean ingredients = %v", st.MeanIngredients)
	}
	out := st.String()
	if !strings.Contains(out, "Japanese") || !strings.Contains(out, "recipes: 3") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestStatsCanonicalization(t *testing.T) {
	db := mustDB(t, []Recipe{
		{ID: "a", Region: "X", Ingredients: []string{"Soy Sauce"}},
		{ID: "b", Region: "X", Ingredients: []string{"soy  sauce"}},
	})
	if st := ComputeStats(db); st.UniqueIngredients != 1 {
		t.Fatalf("canonicalization failed: %d unique", st.UniqueIngredients)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := mustDB(t, sampleRecipes())
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip lost recipes: %d", back.Len())
	}
	for i := 0; i < db.Len(); i++ {
		a, b := db.Recipe(i), back.Recipe(i)
		if a.ID != b.ID || a.Region != b.Region || !reflect.DeepEqual(a.Ingredients, b.Ingredients) ||
			!reflect.DeepEqual(a.Processes, b.Processes) || !reflect.DeepEqual(a.Utensils, b.Utensils) {
			t.Fatalf("recipe %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	db := mustDB(t, sampleRecipes())
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip lost recipes: %d", back.Len())
	}
	if back.Recipe(1).Utensils != nil {
		t.Fatal("empty utensils should stay nil")
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("id,nom,region,i,p,u\n")); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestReadCSVRejectsBadFieldCount(t *testing.T) {
	in := "id,name,region,ingredients,processes,utensils\nr1,Soup,Japanese,miso\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed json accepted")
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	in := `{"id":"a","name":"x","region":"R","ingredients":["i"]}` + "\n\n" +
		`{"id":"b","name":"y","region":"R","ingredients":["j"]}` + "\n"
	db, err := ReadJSONL(strings.NewReader(in))
	if err != nil || db.Len() != 2 {
		t.Fatalf("db=%v err=%v", db, err)
	}
}

func TestCSVListSeparatorHandling(t *testing.T) {
	// Empty segments within lists are dropped.
	in := "id,name,region,ingredients,processes,utensils\n" +
		"r1,Soup,Japanese,miso| |tofu,,\n"
	db, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := db.Recipe(0)
	if !reflect.DeepEqual(r.Ingredients, []string{"miso", "tofu"}) {
		t.Fatalf("ingredients = %v", r.Ingredients)
	}
	if r.Processes != nil || r.Utensils != nil {
		t.Fatalf("empty lists should be nil: %v %v", r.Processes, r.Utensils)
	}
}
