package recipedb

import (
	"bytes"
	"encoding/gob"
)

// DB hides its recipe slice and region index, so plain gob encoding
// would silently produce an empty database. The explicit pair
// serializes the recipes in stored order and rebuilds the DB through
// New on decode, which re-derives the region index and re-runs
// validation — a corrupted stream fails the decode instead of
// producing a structurally broken database. Recipe order is preserved,
// so every order-dependent derivation (Regions, RegionDataset, Stats)
// is identical after a round trip.

// GobEncode implements gob.GobEncoder.
func (db *DB) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(db.recipes); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (db *DB) GobDecode(data []byte) error {
	var recipes []Recipe
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recipes); err != nil {
		return err
	}
	ndb, err := New(recipes)
	if err != nil {
		return err
	}
	*db = *ndb
	return nil
}
