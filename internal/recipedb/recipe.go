// Package recipedb models the RecipeDB substrate of the paper (Sec. III):
// a structured collection of recipes, each with a name, a region
// ("cuisine"), and unordered lists of ingredients, cooking processes and
// utensils. The paper's copy held 118,071 recipes over 26 geo-cultural
// cuisines with 20,280 unique ingredients, 268 processes and 69 utensils;
// this package provides the model, region indexing, CSV/JSONL codecs,
// validation, and the corpus statistics of Sec. III. The data itself is
// produced by internal/corpus (the calibrated synthetic generator that
// substitutes for the non-redistributable scrape).
package recipedb

import (
	"fmt"
	"sort"

	"cuisines/internal/itemset"
)

// Recipe is one RecipeDB entry.
type Recipe struct {
	// ID is a stable unique identifier.
	ID string
	// Name is the display title.
	Name string
	// Region is the geo-cultural cuisine the recipe belongs to (one of
	// the 26 regions of Table I for paper-scale corpora).
	Region string
	// Ingredients, Processes and Utensils are the raw item names. Order
	// is irrelevant; duplicates are tolerated on input and removed when
	// converting to transactions.
	Ingredients []string
	Processes   []string
	Utensils    []string
}

// Items flattens the recipe into a canonical itemset spanning all three
// kinds (the paper concatenates them before mining, Sec. V.A).
func (r *Recipe) Items() itemset.Set {
	items := make([]itemset.Item, 0, len(r.Ingredients)+len(r.Processes)+len(r.Utensils))
	for _, n := range r.Ingredients {
		items = append(items, itemset.NewItem(n, itemset.Ingredient))
	}
	for _, n := range r.Processes {
		items = append(items, itemset.NewItem(n, itemset.Process))
	}
	for _, n := range r.Utensils {
		items = append(items, itemset.NewItem(n, itemset.Utensil))
	}
	return itemset.NewSet(items...)
}

// Transaction converts the recipe to a mining transaction.
func (r *Recipe) Transaction() itemset.Transaction {
	return itemset.Transaction{ID: r.ID, Items: r.Items()}
}

// IngredientSet returns the canonical set of ingredient items only (used
// by the authenticity pipeline, which Fig. 5 bases "dominantly on
// ingredients").
func (r *Recipe) IngredientSet() itemset.Set {
	return itemset.FromNames(itemset.Ingredient, r.Ingredients...)
}

// Validate reports structural problems: empty ID, empty region, or no
// ingredients at all. Missing utensils are explicitly allowed (14,601
// RecipeDB recipes have none).
func (r *Recipe) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("recipedb: recipe with empty ID (name %q)", r.Name)
	}
	if r.Region == "" {
		return fmt.Errorf("recipedb: recipe %s has empty region", r.ID)
	}
	if len(r.Ingredients) == 0 {
		return fmt.Errorf("recipedb: recipe %s has no ingredients", r.ID)
	}
	return nil
}

// DB is an in-memory RecipeDB: the recipes plus a region index.
type DB struct {
	recipes  []Recipe
	byRegion map[string][]int // region -> indexes into recipes
	regions  []string         // sorted region names
}

// New builds a DB from recipes, validating each. The slice is copied.
func New(recipes []Recipe) (*DB, error) {
	cp := make([]Recipe, len(recipes))
	copy(cp, recipes)
	seen := make(map[string]bool, len(cp))
	for i := range cp {
		r := &cp[i]
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("recipedb: duplicate recipe ID %s", r.ID)
		}
		seen[r.ID] = true
	}
	return newValidated(cp), nil
}

// newValidated builds a DB from a recipe slice the caller owns and has
// already validated and de-duplicated — the codec readers check every
// row as they parse (so errors can name the offending line) and must
// not pay for a second full pass here.
func newValidated(recipes []Recipe) *DB {
	db := &DB{
		recipes:  recipes,
		byRegion: make(map[string][]int),
	}
	for i := range db.recipes {
		db.byRegion[db.recipes[i].Region] = append(db.byRegion[db.recipes[i].Region], i)
	}
	db.regions = make([]string, 0, len(db.byRegion))
	for region := range db.byRegion {
		db.regions = append(db.regions, region)
	}
	sort.Strings(db.regions)
	return db
}

// Len returns the total number of recipes.
func (db *DB) Len() int { return len(db.recipes) }

// Regions returns the sorted list of region names.
func (db *DB) Regions() []string { return db.regions }

// NumRegions returns the number of distinct regions.
func (db *DB) NumRegions() int { return len(db.regions) }

// Recipes returns all recipes (the underlying slice; do not modify).
func (db *DB) Recipes() []Recipe { return db.recipes }

// Recipe returns the i-th recipe.
func (db *DB) Recipe(i int) *Recipe { return &db.recipes[i] }

// RegionSize returns the number of recipes in a region (0 if unknown).
func (db *DB) RegionSize(region string) int { return len(db.byRegion[region]) }

// RegionRecipes returns the recipes of one region (copies of the index
// order, recipes shared).
func (db *DB) RegionRecipes(region string) []*Recipe {
	idx := db.byRegion[region]
	out := make([]*Recipe, len(idx))
	for i, j := range idx {
		out[i] = &db.recipes[j]
	}
	return out
}

// RegionDataset converts one region's recipes to a mining dataset — the
// per-cuisine FP-Growth input of Sec. V.A.
func (db *DB) RegionDataset(region string) *itemset.Dataset {
	idx := db.byRegion[region]
	txns := make([]itemset.Transaction, 0, len(idx))
	for _, j := range idx {
		txns = append(txns, db.recipes[j].Transaction())
	}
	return itemset.NewDataset(txns)
}

// AllDataset converts the whole DB to one dataset.
func (db *DB) AllDataset() *itemset.Dataset {
	txns := make([]itemset.Transaction, 0, len(db.recipes))
	for i := range db.recipes {
		txns = append(txns, db.recipes[i].Transaction())
	}
	return itemset.NewDataset(txns)
}

// Filter returns a new DB with recipes satisfying keep. Errors cannot
// occur since recipes were already validated.
func (db *DB) Filter(keep func(*Recipe) bool) *DB {
	var out []Recipe
	for i := range db.recipes {
		if keep(&db.recipes[i]) {
			out = append(out, db.recipes[i])
		}
	}
	ndb, err := New(out)
	if err != nil {
		// Unreachable: recipes were validated on construction.
		panic(err)
	}
	return ndb
}

// Sample returns a new DB keeping every k-th recipe per region starting at
// offset 0 — a cheap deterministic downsample for quick examples and
// tests.
func (db *DB) Sample(k int) *DB {
	if k <= 1 {
		return db
	}
	var out []Recipe
	for _, region := range db.regions {
		for i, j := range db.byRegion[region] {
			if i%k == 0 {
				out = append(out, db.recipes[j])
			}
		}
	}
	ndb, err := New(out)
	if err != nil {
		panic(err)
	}
	return ndb
}
