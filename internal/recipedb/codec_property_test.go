package recipedb

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomRecipes builds structurally valid recipes with awkward content:
// spaces, unicode, commas (CSV-relevant), quotes.
func randomRecipes(r *rand.Rand, n int) []Recipe {
	words := []string{
		"soy sauce", "onion", "crème fraîche", "jalapeño", "salt, flaked",
		`herbes "de" provence`, "五香粉", "chickpea", "añejo cheese", "back-bacon",
	}
	pickWords := func(max int) []string {
		k := 1 + r.Intn(max)
		out := make([]string, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, words[r.Intn(len(words))])
		}
		return out
	}
	recipes := make([]Recipe, n)
	for i := range recipes {
		recipes[i] = Recipe{
			ID:          "r" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)),
			Name:        "Dish " + words[r.Intn(len(words))],
			Region:      []string{"Alpha", "Beta, Gamma"}[r.Intn(2)],
			Ingredients: pickWords(6),
		}
		if r.Intn(2) == 0 {
			recipes[i].Processes = pickWords(4)
		}
		if r.Intn(3) == 0 {
			recipes[i].Utensils = pickWords(2)
		}
	}
	return recipes
}

func TestCodecRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		db, err := New(randomRecipes(r, 2+r.Intn(30)))
		if err != nil {
			t.Fatal(err)
		}
		// CSV.
		var csvBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, db); err != nil {
			t.Fatal(err)
		}
		fromCSV, err := ReadCSV(&csvBuf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// JSONL.
		var jsonBuf bytes.Buffer
		if err := WriteJSONL(&jsonBuf, db); err != nil {
			t.Fatal(err)
		}
		fromJSON, err := ReadJSONL(&jsonBuf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, back := range []*DB{fromCSV, fromJSON} {
			if back.Len() != db.Len() {
				t.Fatalf("trial %d: lost recipes", trial)
			}
			for i := 0; i < db.Len(); i++ {
				a, b := db.Recipe(i), back.Recipe(i)
				// The CSV list separator '|' never occurs in the word
				// pool, so fields must survive byte-exact.
				if a.ID != b.ID || a.Region != b.Region ||
					!reflect.DeepEqual(a.Ingredients, b.Ingredients) ||
					!reflect.DeepEqual(a.Processes, b.Processes) ||
					!reflect.DeepEqual(a.Utensils, b.Utensils) {
					t.Fatalf("trial %d recipe %d mismatch:\n%+v\n%+v", trial, i, a, b)
				}
			}
		}
	}
}

func TestCSVSeparatorCollision(t *testing.T) {
	// Names containing the list separator cannot round-trip losslessly;
	// the codec splits them. This documents the limitation explicitly.
	db := mustDB(t, []Recipe{{ID: "x", Region: "R", Ingredients: []string{"a|b"}}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Recipe(0).Ingredients; len(got) != 2 {
		t.Fatalf("separator collision handling changed: %v", got)
	}
}
