package recipedb

import (
	"reflect"
	"sort"
	"testing"

	"cuisines/internal/itemset"
)

func TestAliasResolve(t *testing.T) {
	tbl := AliasTable{"Scallion": "green onion"}.normalize()
	if got := tbl.Resolve("SCALLION"); got != "green onion" {
		t.Fatalf("Resolve = %q", got)
	}
	if got := tbl.Resolve("onion"); got != "onion" {
		t.Fatalf("identity Resolve = %q", got)
	}
}

func TestNormalizeDropsSelfMappings(t *testing.T) {
	tbl := AliasTable{"onion": "Onion", "scallion": "green onion"}.normalize()
	if len(tbl) != 1 {
		t.Fatalf("normalize kept self-mapping: %v", tbl)
	}
}

func TestDefaultAliasesWellFormed(t *testing.T) {
	tbl := DefaultAliases()
	canonicalValues := make(map[string]bool)
	for _, v := range tbl {
		canonicalValues[itemset.CanonicalName(v)] = true
	}
	for k, v := range tbl {
		if itemset.CanonicalName(k) != k {
			t.Errorf("alias key %q not canonical", k)
		}
		if k == v {
			t.Errorf("self alias %q", k)
		}
		// No alias chains: values must not themselves be alias keys.
		if _, isKey := tbl[itemset.CanonicalName(v)]; isKey {
			t.Errorf("alias chain: %q -> %q which is also an alias", k, v)
		}
	}
	if len(tbl.Aliases()) != len(tbl) {
		t.Fatal("Aliases() incomplete")
	}
	if !sort.StringsAreSorted(tbl.Aliases()) {
		t.Fatal("Aliases() not sorted")
	}
}

func TestResolveAliasesConsolidatesSupports(t *testing.T) {
	db := mustDB(t, []Recipe{
		{ID: "1", Region: "X", Ingredients: []string{"scallion", "rice"}},
		{ID: "2", Region: "X", Ingredients: []string{"green onion", "rice"}},
		{ID: "3", Region: "X", Ingredients: []string{"Spring Onion"}},
		{ID: "4", Region: "X", Ingredients: []string{"tofu"}},
	})
	resolved, err := ResolveAliases(db, DefaultAliases())
	if err != nil {
		t.Fatal(err)
	}
	ds := resolved.RegionDataset("X")
	got := ds.Support(itemset.FromNames(itemset.Ingredient, "green onion"))
	if got != 0.75 {
		t.Fatalf("consolidated support = %v, want 0.75", got)
	}
	if ds.Support(itemset.FromNames(itemset.Ingredient, "scallion")) != 0 {
		t.Fatal("alias name still present after resolution")
	}
}

func TestResolveAliasesCollapsesDuplicates(t *testing.T) {
	db := mustDB(t, []Recipe{
		{ID: "1", Region: "X", Ingredients: []string{"scallion", "green onion", "rice"}},
	})
	resolved, err := ResolveAliases(db, DefaultAliases())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"green onion", "rice"}
	if !reflect.DeepEqual(resolved.Recipe(0).Ingredients, want) {
		t.Fatalf("ingredients = %v", resolved.Recipe(0).Ingredients)
	}
}

func TestResolveAliasesLeavesProcessesAlone(t *testing.T) {
	db := mustDB(t, []Recipe{
		{ID: "1", Region: "X", Ingredients: []string{"rice"}, Processes: []string{"scallion"}},
	})
	resolved, err := ResolveAliases(db, DefaultAliases())
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Recipe(0).Processes[0] != "scallion" {
		t.Fatal("process renamed by ingredient alias table")
	}
}

func TestResolveAliasesPreservesDB(t *testing.T) {
	db := mustDB(t, []Recipe{
		{ID: "1", Region: "X", Ingredients: []string{"scallion"}},
	})
	if _, err := ResolveAliases(db, DefaultAliases()); err != nil {
		t.Fatal(err)
	}
	if db.Recipe(0).Ingredients[0] != "scallion" {
		t.Fatal("original DB mutated")
	}
}
