package authenticity

import (
	"math"
	"testing"

	"cuisines/internal/itemset"
	"cuisines/internal/recipedb"
)

func mustDB(t *testing.T, rs []recipedb.Recipe) *recipedb.DB {
	t.Helper()
	db, err := recipedb.New(rs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// Two regions, two recipes each. "soy" appears in all Japanese recipes,
// never in Mexican; "salt" appears everywhere; "lime" in half of Mexican.
func sampleDB(t *testing.T) *recipedb.DB {
	return mustDB(t, []recipedb.Recipe{
		{ID: "j1", Region: "Japanese", Ingredients: []string{"soy", "salt"}, Processes: []string{"boil"}},
		{ID: "j2", Region: "Japanese", Ingredients: []string{"soy", "salt"}},
		{ID: "m1", Region: "Mexican", Ingredients: []string{"salt", "lime"}},
		{ID: "m2", Region: "Mexican", Ingredients: []string{"salt"}},
	})
}

func TestBuildPrevalence(t *testing.T) {
	m, err := Build(sampleDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Regions) != 2 || len(m.Items) != 3 {
		t.Fatalf("shape: %v x %v", m.Regions, m.Items)
	}
	jp, _ := m.RegionIndex("Japanese")
	mx, _ := m.RegionIndex("Mexican")
	col := func(name string) int {
		for i, it := range m.Items {
			if it.Name == name {
				return i
			}
		}
		t.Fatalf("item %q missing", name)
		return -1
	}
	if m.Prevalence.At(jp, col("soy")) != 1.0 || m.Prevalence.At(mx, col("soy")) != 0 {
		t.Fatal("soy prevalence wrong")
	}
	if m.Prevalence.At(mx, col("lime")) != 0.5 {
		t.Fatal("lime prevalence wrong")
	}
	if m.Prevalence.At(jp, col("salt")) != 1.0 || m.Prevalence.At(mx, col("salt")) != 1.0 {
		t.Fatal("salt prevalence wrong")
	}
}

func TestRelativePrevalenceEquation2(t *testing.T) {
	m, _ := Build(sampleDB(t), Options{})
	jp, _ := m.RegionIndex("Japanese")
	mx, _ := m.RegionIndex("Mexican")
	var soyCol int
	for i, it := range m.Items {
		if it.Name == "soy" {
			soyCol = i
		}
	}
	// P(soy|JP)=1, P(soy|MX)=0, mean=0.5 -> relative +0.5 / -0.5.
	if math.Abs(m.Relative.At(jp, soyCol)-0.5) > 1e-9 {
		t.Fatalf("relative soy JP = %v", m.Relative.At(jp, soyCol))
	}
	if math.Abs(m.Relative.At(mx, soyCol)+0.5) > 1e-9 {
		t.Fatalf("relative soy MX = %v", m.Relative.At(mx, soyCol))
	}
}

func TestRelativeColumnsSumToZero(t *testing.T) {
	// Eq. 2 implies every item's relative prevalence sums to zero over
	// cuisines — the invariant the Fig. 5 features rely on.
	m, _ := Build(sampleDB(t), Options{})
	for j := range m.Items {
		s := 0.0
		for i := range m.Regions {
			s += m.Relative.At(i, j)
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("column %d sums to %v", j, s)
		}
	}
}

func TestIngredientsOnlyByDefault(t *testing.T) {
	m, _ := Build(sampleDB(t), Options{})
	for _, it := range m.Items {
		if it.Kind != itemset.Ingredient {
			t.Fatalf("non-ingredient item %v leaked into default matrix", it)
		}
	}
}

func TestKindSelection(t *testing.T) {
	m, err := Build(sampleDB(t), Options{Kinds: []itemset.Kind{itemset.Process}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Items) != 1 || m.Items[0].Name != "boil" {
		t.Fatalf("process matrix items = %v", m.Items)
	}
}

func TestMinRegionPrevalenceFilter(t *testing.T) {
	m, _ := Build(sampleDB(t), Options{MinRegionPrevalence: 0.6})
	// lime (max prevalence 0.5) must be dropped; soy and salt stay.
	for _, it := range m.Items {
		if it.Name == "lime" {
			t.Fatal("lime not filtered")
		}
	}
	if len(m.Items) != 2 {
		t.Fatalf("items = %v", m.Items)
	}
}

func TestMostLeastAuthentic(t *testing.T) {
	m, _ := Build(sampleDB(t), Options{})
	top, err := m.MostAuthentic("Japanese", 1)
	if err != nil || len(top) != 1 || top[0].Item.Name != "soy" {
		t.Fatalf("most authentic JP = %v, %v", top, err)
	}
	if top[0].Prevalence != 1.0 {
		t.Fatalf("prevalence context = %v", top[0].Prevalence)
	}
	bottom, err := m.LeastAuthentic("Japanese", 1)
	if err != nil || len(bottom) != 1 || bottom[0].Item.Name != "lime" {
		t.Fatalf("least authentic JP = %v, %v", bottom, err)
	}
	if bottom[0].Relative >= 0 {
		t.Fatal("least authentic should be negative")
	}
}

func TestUnknownRegion(t *testing.T) {
	m, _ := Build(sampleDB(t), Options{})
	if _, err := m.MostAuthentic("Atlantis", 3); err == nil {
		t.Fatal("unknown region accepted")
	}
	if _, err := m.RegionIndex("Atlantis"); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestEmptyDB(t *testing.T) {
	if _, err := Build(&recipedb.DB{}, Options{}); err == nil {
		t.Fatal("empty db accepted")
	}
}

func TestFingerprintDistinguishesCuisines(t *testing.T) {
	// Distances on the relative matrix must separate soy-world from
	// lime-world more than two identical regions.
	db := mustDB(t, []recipedb.Recipe{
		{ID: "a1", Region: "A", Ingredients: []string{"soy", "rice"}},
		{ID: "a2", Region: "A", Ingredients: []string{"soy", "rice"}},
		{ID: "b1", Region: "B", Ingredients: []string{"soy", "rice"}},
		{ID: "b2", Region: "B", Ingredients: []string{"soy", "rice"}},
		{ID: "c1", Region: "C", Ingredients: []string{"lime", "corn"}},
		{ID: "c2", Region: "C", Ingredients: []string{"lime", "corn"}},
	})
	m, _ := Build(db, Options{})
	x := m.FeatureMatrix()
	dAB, dAC := 0.0, 0.0
	for j := 0; j < x.Cols(); j++ {
		dAB += sq(x.At(0, j) - x.At(1, j))
		dAC += sq(x.At(0, j) - x.At(2, j))
	}
	if dAB >= dAC {
		t.Fatalf("identical cuisines not closer: dAB=%v dAC=%v", dAB, dAC)
	}
}

func sq(x float64) float64 { return x * x }
