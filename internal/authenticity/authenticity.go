// Package authenticity implements the Ahn et al. (2011) authenticity
// metric the paper adopts in Sec. V.B: the prevalence P_i^c of item i in
// cuisine c (eq. 1) and the relative prevalence p_i^c = P_i^c - <P_i^k>
// (eq. 2), the item's prevalence minus its mean prevalence over all
// cuisines. Positive relative prevalence marks items over-represented in a
// cuisine, negative marks items conspicuously absent; both ends form the
// cuisine's "culinary fingerprint". The relative prevalence matrix is the
// feature input of the Fig. 5 clustering.
package authenticity

import (
	"fmt"
	"sort"

	"cuisines/internal/itemset"
	"cuisines/internal/matrix"
	"cuisines/internal/recipedb"
)

// Matrix is the cuisines x items (relative) prevalence matrix.
type Matrix struct {
	// Regions are the row labels, sorted.
	Regions []string
	// Items are the column labels in canonical order.
	Items []itemset.Item
	// Prevalence is P_i^c: the fraction of region c's recipes containing
	// item i.
	Prevalence *matrix.Dense
	// Relative is p_i^c: Prevalence with each column's mean subtracted.
	Relative *matrix.Dense
}

// Options configures the matrix construction.
type Options struct {
	// Kinds restricts which item kinds enter the matrix. Empty means
	// ingredients only — the paper's Fig. 5 is "dominantly based on
	// ingredients".
	Kinds []itemset.Kind
	// MinRegionPrevalence drops items whose prevalence never reaches this
	// level in any region (pure long-tail noise that bloats the matrix;
	// 0 keeps everything).
	MinRegionPrevalence float64
}

// Build computes the prevalence matrices for a database.
func Build(db *recipedb.DB, opts Options) (*Matrix, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("authenticity: empty database")
	}
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = []itemset.Kind{itemset.Ingredient}
	}
	wantKind := make(map[itemset.Kind]bool, len(kinds))
	for _, k := range kinds {
		wantKind[k] = true
	}

	regions := db.Regions()
	rowOf := make(map[string]int, len(regions))
	for i, r := range regions {
		rowOf[r] = i
	}

	// First pass: per-region item counts.
	counts := make(map[itemset.Item][]int)
	for i := 0; i < db.Len(); i++ {
		rec := db.Recipe(i)
		row := rowOf[rec.Region]
		for _, it := range rec.Items().Items() {
			if !wantKind[it.Kind] {
				continue
			}
			c := counts[it]
			if c == nil {
				c = make([]int, len(regions))
				counts[it] = c
			}
			c[row]++
		}
	}

	// Column selection and ordering.
	var items []itemset.Item
	for it, c := range counts {
		if opts.MinRegionPrevalence > 0 {
			keep := false
			for row, n := range c {
				size := db.RegionSize(regions[row])
				if size > 0 && float64(n)/float64(size) >= opts.MinRegionPrevalence {
					keep = true
					break
				}
			}
			if !keep {
				continue
			}
		}
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Less(items[j]) })

	prev := matrix.NewDense(len(regions), len(items))
	for col, it := range items {
		c := counts[it]
		for row := range regions {
			size := db.RegionSize(regions[row])
			if size > 0 {
				prev.Set(row, col, float64(c[row])/float64(size))
			}
		}
	}
	rel := prev.Clone()
	rel.CenterColumns()

	return &Matrix{
		Regions:    regions,
		Items:      items,
		Prevalence: prev,
		Relative:   rel,
	}, nil
}

// RegionIndex returns the row of a region name.
func (m *Matrix) RegionIndex(region string) (int, error) {
	for i, r := range m.Regions {
		if r == region {
			return i, nil
		}
	}
	return 0, fmt.Errorf("authenticity: unknown region %q", region)
}

// AuthenticItem pairs an item with its relative prevalence in a region.
type AuthenticItem struct {
	Item     itemset.Item
	Relative float64
	// Prevalence is the raw P_i^c for context.
	Prevalence float64
}

// MostAuthentic returns the k items with the highest relative prevalence
// in the region — its positive fingerprint.
func (m *Matrix) MostAuthentic(region string, k int) ([]AuthenticItem, error) {
	return m.fingerprint(region, k, true)
}

// LeastAuthentic returns the k items with the lowest (most negative)
// relative prevalence — items the cuisine conspicuously avoids relative to
// the world (the paper: "both the most prevalent and least prevalent items
// contribute towards the culinary fingerprint").
func (m *Matrix) LeastAuthentic(region string, k int) ([]AuthenticItem, error) {
	return m.fingerprint(region, k, false)
}

func (m *Matrix) fingerprint(region string, k int, top bool) ([]AuthenticItem, error) {
	row, err := m.RegionIndex(region)
	if err != nil {
		return nil, err
	}
	out := make([]AuthenticItem, len(m.Items))
	for col, it := range m.Items {
		out[col] = AuthenticItem{Item: it, Relative: m.Relative.At(row, col), Prevalence: m.Prevalence.At(row, col)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relative != out[j].Relative {
			if top {
				return out[i].Relative > out[j].Relative
			}
			return out[i].Relative < out[j].Relative
		}
		return out[i].Item.Less(out[j].Item)
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// FeatureMatrix returns the relative prevalence matrix as clustering
// features (rows aligned with Regions).
func (m *Matrix) FeatureMatrix() *matrix.Dense { return m.Relative }
