package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cuisines"
	"cuisines/internal/miner"
)

// testScale keeps pipeline runs fast while preserving all 26 regions
// and every qualitative behaviour the endpoints expose.
const testScale = 0.02

// fixture shares one server (and thus one pipeline run) across the
// endpoint tests.
var (
	fixtureOnce sync.Once
	fixtureSrv  *Server
	fixtureRuns atomic.Int64
)

func testServer(t *testing.T) *Server {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureSrv = New(Config{
			Base: cuisines.Options{Scale: testScale},
			Runner: func(_ context.Context, o cuisines.Options) (*cuisines.Analysis, error) {
				fixtureRuns.Add(1)
				return cuisines.Run(o)
			},
		})
	})
	return fixtureSrv
}

// get performs one request against the handler without a network hop.
func get(t *testing.T, s *Server, path string) (int, []byte, http.Header) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, body, rec.Result().Header
}

func decode[T any](t *testing.T, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode %T: %v\nbody: %s", v, err, body)
	}
	return v
}

func TestEndpoints(t *testing.T) {
	s := testServer(t)
	region := url.PathEscape("Chinese and Mongolian")
	cases := []struct {
		name   string
		path   string
		status int
		check  func(t *testing.T, body []byte)
	}{
		{"health", "/healthz", 200, func(t *testing.T, b []byte) {
			h := decode[cuisines.HealthResponse](t, b)
			if h.Status != "ok" {
				t.Fatalf("health: %+v", h)
			}
		}},
		{"table", "/v1/table", 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.TableResponse](t, b)
			if len(r.Rows) != 26 {
				t.Fatalf("table rows = %d", len(r.Rows))
			}
			for _, row := range r.Rows {
				if row.Recipes <= 0 || row.Patterns <= 0 || len(row.Top) == 0 {
					t.Fatalf("degenerate row %+v", row)
				}
			}
		}},
		{"dendrogram", "/v1/dendrogram/fig5-authenticity", 200, func(t *testing.T, b []byte) {
			d := decode[cuisines.DendrogramResponse](t, b)
			if d.Figure != "fig5-authenticity" || !strings.Contains(d.Dendrogram, "Japanese") {
				t.Fatalf("dendrogram: %+v", d)
			}
		}},
		{"dendrogram shorthand", "/v1/dendrogram/cosine", 200, nil},
		{"dendrogram unknown figure", "/v1/dendrogram/fig9", 404, checkError},
		{"newick", "/v1/newick/fig3-cosine", 200, func(t *testing.T, b []byte) {
			if !strings.HasSuffix(string(b), ";") || !strings.Contains(string(b), "Thai") {
				t.Fatalf("newick: %q", b)
			}
		}},
		{"newick unknown figure", "/v1/newick/nope", 404, checkError},
		{"clusters", "/v1/clusters/fig5-authenticity?k=5", 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.ClustersResponse](t, b)
			total := 0
			for _, g := range r.Clusters {
				total += len(g)
			}
			if r.K != 5 || len(r.Clusters) != 5 || total != 26 {
				t.Fatalf("clusters: k=%d groups=%d total=%d", r.K, len(r.Clusters), total)
			}
		}},
		{"clusters missing k", "/v1/clusters/fig5-authenticity", 400, checkError},
		{"clusters bad k", "/v1/clusters/fig5-authenticity?k=zero", 400, checkError},
		{"clusters k out of range", "/v1/clusters/fig5-authenticity?k=999", 400, checkError},
		{"closest", "/v1/closest/fig6-geographic?region=UK", 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.ClosestResponse](t, b)
			if r.Closest != "Irish" || r.Distance <= 0 {
				t.Fatalf("closest: %+v", r)
			}
		}},
		{"closest missing region", "/v1/closest/fig6-geographic", 400, checkError},
		{"closest unknown region", "/v1/closest/fig6-geographic?region=Narnia", 404, checkError},
		{"fingerprint", "/v1/fingerprint/Japanese?k=5", 200, func(t *testing.T, b []byte) {
			fp := decode[cuisines.Fingerprint](t, b)
			if fp.Region != "Japanese" || len(fp.Most) != 5 || len(fp.Least) != 5 {
				t.Fatalf("fingerprint: %+v", fp)
			}
		}},
		{"fingerprint unknown region", "/v1/fingerprint/Narnia", 404, checkError},
		{"fingerprint bad k", "/v1/fingerprint/Japanese?k=-1", 400, checkError},
		{"patterns", "/v1/patterns/Japanese", 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.PatternsResponse](t, b)
			if len(r.Patterns) < 10 {
				t.Fatalf("patterns = %d", len(r.Patterns))
			}
		}},
		{"patterns unknown region", "/v1/patterns/Narnia", 404, checkError},
		{"rules", "/v1/rules/Japanese?min_confidence=0.6&max=20", 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.RulesResponse](t, b)
			if len(r.Rules) == 0 || len(r.Rules) > 20 {
				t.Fatalf("rules = %d", len(r.Rules))
			}
			for _, rule := range r.Rules {
				if rule.Confidence < 0.6 {
					t.Fatalf("rule below confidence floor: %+v", rule)
				}
			}
		}},
		{"rules bad confidence", "/v1/rules/Japanese?min_confidence=2", 400, checkError},
		{"pairings", "/v1/pairings/" + region, 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.PairingsResponse](t, b)
			if r.Pairing.Region != "Chinese and Mongolian" {
				t.Fatalf("pairings: %+v", r.Pairing)
			}
			for _, rule := range r.Rules {
				for _, item := range append(rule.Antecedent, rule.Consequent...) {
					if item == "add" || item == "heat" {
						t.Fatalf("process item in ingredient pairing: %+v", rule)
					}
				}
			}
		}},
		{"substitutes", "/v1/substitutes/" + region + "?ingredient=ginger&k=5", 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.SubstitutesResponse](t, b)
			if len(r.Substitutes) == 0 || len(r.Substitutes) > 5 {
				t.Fatalf("substitutes = %d", len(r.Substitutes))
			}
		}},
		{"substitutes missing ingredient", "/v1/substitutes/" + region, 400, checkError},
		{"substitutes unknown ingredient", "/v1/substitutes/Japanese?ingredient=unobtainium", 404, checkError},
		{"map", "/v1/map", 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.MapResponse](t, b)
			if len(r.Points) != 26 || r.VarianceExplained[0] <= 0 || r.Rendered != "" {
				t.Fatalf("map: points=%d variance=%v rendered=%q", len(r.Points), r.VarianceExplained, r.Rendered)
			}
		}},
		{"map rendered", "/v1/map?width=40&height=12", 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.MapResponse](t, b)
			if !strings.Contains(r.Rendered, "Legend") {
				t.Fatalf("map rendered: %q", r.Rendered)
			}
		}},
		{"map bad width", "/v1/map?width=x", 400, checkError},
		{"claims", "/v1/claims", 200, func(t *testing.T, b []byte) {
			r := decode[cuisines.ClaimsResponse](t, b)
			if len(r.Claims) != 8 || len(r.Fits) != 4 {
				t.Fatalf("claims=%d fits=%d", len(r.Claims), len(r.Fits))
			}
		}},
		{"stats", "/v1/stats", 200, func(t *testing.T, b []byte) {
			var st struct {
				Recipes int    `json:"recipes"`
				Regions int    `json:"regions"`
				Miner   string `json:"miner"`
			}
			if err := json.Unmarshal(b, &st); err != nil {
				t.Fatal(err)
			}
			if st.Regions != 26 || st.Recipes <= 0 {
				t.Fatalf("stats: %+v", st)
			}
			if st.Miner != miner.Default.Name() {
				t.Fatalf("stats echoed miner %q, want default %q", st.Miner, miner.Default.Name())
			}
		}},
		{"stats miner override echoed", "/v1/stats?miner=fp-growth", 200, func(t *testing.T, b []byte) {
			var st struct {
				Miner string `json:"miner"`
			}
			if err := json.Unmarshal(b, &st); err != nil {
				t.Fatal(err)
			}
			if st.Miner != "fpgrowth" {
				t.Fatalf("stats echoed miner %q, want canonical %q", st.Miner, "fpgrowth")
			}
		}},
		{"bad scale", "/v1/table?scale=banana", 400, checkError},
		{"scale above cap", "/v1/table?scale=100000", 400, checkError},
		{"negative scale", "/v1/table?scale=-1", 400, checkError},
		{"bad seed", "/v1/table?seed=-3", 400, checkError},
		{"bad support", "/v1/table?support=1.5", 400, checkError},
		{"unknown linkage", "/v1/table?linkage=centroid", 400, checkError},
		{"unknown miner", "/v1/table?miner=bogus", 400, checkError},
		{"unknown path", "/v1/nope", 404, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := get(t, s, tc.path)
			if status != tc.status {
				t.Fatalf("GET %s = %d, want %d\nbody: %s", tc.path, status, tc.status, body)
			}
			if tc.check != nil {
				tc.check(t, body)
			}
		})
	}
}

// checkError asserts the error-JSON contract on non-2xx responses.
func checkError(t *testing.T, body []byte) {
	t.Helper()
	var e cuisines.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("error body %q (%v)", body, err)
	}
}

// TestBadFigureSkipsPipeline pins the validation order: an invalid
// {figure} must 404 before the cache resolves the analysis, even when
// the query names a cold cache key.
func TestBadFigureSkipsPipeline(t *testing.T) {
	s := New(Config{
		Base: cuisines.Options{Scale: testScale},
		Runner: func(context.Context, cuisines.Options) (*cuisines.Analysis, error) {
			t.Error("pipeline run triggered for an invalid figure")
			return nil, nil
		},
	})
	for _, path := range []string{
		"/v1/newick/bogus?support=0.9",
		"/v1/dendrogram/fig9",
		"/v1/clusters/nope?k=3",
		"/v1/closest/fig7?region=UK",
	} {
		status, body, _ := get(t, s, path)
		if status != 404 {
			t.Fatalf("GET %s = %d, want 404\nbody: %s", path, status, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/table", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/table = %d", rec.Code)
	}
}

// TestFixtureSingleRun closes out the endpoint suite: every request
// above, across every figure and region, must have been served from the
// one cached analysis (plus nothing for the 4xx requests, which fail
// before or after the cache, never inside the pipeline).
func TestFixtureSingleRun(t *testing.T) {
	testServer(t)
	if n := fixtureRuns.Load(); n > 1 {
		t.Fatalf("endpoint suite triggered %d pipeline runs, want at most 1", n)
	}
}

// TestConcurrentRequestsDeduplicated is the acceptance concurrency
// test: N parallel identical requests must trigger exactly one pipeline
// run, with every response byte-identical.
func TestConcurrentRequestsDeduplicated(t *testing.T) {
	var runs atomic.Int64
	s := New(Config{
		Base: cuisines.Options{Scale: testScale},
		Runner: func(_ context.Context, o cuisines.Options) (*cuisines.Analysis, error) {
			runs.Add(1)
			return cuisines.Run(o)
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 16
	bodies := make([][]byte, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Get(ts.URL + "/v1/newick/fig5-authenticity")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("request %d body differs:\n%q\n%q", i, bodies[i], bodies[0])
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests caused %d pipeline runs, want exactly 1", n, got)
	}

	// A second wave is pure cache hits.
	if _, err := http.Get(ts.URL + "/v1/table"); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cache hit reran the pipeline (%d runs)", got)
	}

	// A different option set is a different key.
	resp, err := http.Get(ts.URL + "/v1/stats?support=0.3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := runs.Load(); got != 2 {
		t.Fatalf("distinct options should rerun the pipeline once (got %d runs)", got)
	}

	// Option aliases canonicalize onto the existing key.
	resp, err = http.Get(ts.URL + "/v1/stats?linkage=upgma")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := runs.Load(); got != 2 {
		t.Fatalf("upgma alias missed the average-linkage cache entry (%d runs)", got)
	}

	// A miner override is never a new key: the backend cannot change
	// the output, so it must share the existing analysis.
	resp, err = http.Get(ts.URL + "/v1/stats?miner=apriori")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := runs.Load(); got != 2 {
		t.Fatalf("miner override split the analysis cache key (%d runs)", got)
	}
}
