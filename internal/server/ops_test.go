package server

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cuisines"
)

// The ops tests cover the serving path's production behaviors:
// admission rejection (429 + Retry-After), request timeouts (503),
// flight detachment (joiners survive the first caller hanging up),
// between-stage cancellation (counting runner), and the /metrics
// exposition.

// opsAnalysis computes one tiny real analysis shared (read-only) by the
// ops tests whose stub runners must return something handlers can
// serve.
var (
	opsOnce sync.Once
	opsA    *cuisines.Analysis
	opsErr  error
)

func opsAnalysis(t *testing.T) *cuisines.Analysis {
	t.Helper()
	opsOnce.Do(func() {
		opsA, opsErr = cuisines.Run(cuisines.Options{Scale: testScale})
	})
	if opsErr != nil {
		t.Fatal(opsErr)
	}
	return opsA
}

func TestSaturationReturns429WithRetryAfter(t *testing.T) {
	a := opsAnalysis(t)
	started := make(chan struct{}, 4)
	block := make(chan struct{})
	s := New(Config{
		Base: cuisines.Options{Scale: testScale},
		Runner: func(ctx context.Context, o cuisines.Options) (*cuisines.Analysis, error) {
			started <- struct{}{}
			select {
			case <-block:
				return a, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
		MaxConcurrentRuns: 1,
		MaxQueuedRuns:     -1, // no queue: reject as soon as the slot is busy
		RetryAfter:        3 * time.Second,
	})

	firstDone := make(chan int, 1)
	go func() {
		code, _, _ := get(t, s, "/v1/table?scale=0.011")
		firstDone <- code
	}()
	<-started // the only run slot is now held

	code, body, header := get(t, s, "/v1/table?scale=0.012")
	if code != 429 {
		t.Fatalf("saturated request: code %d, want 429 (body %s)", code, body)
	}
	if ra := header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want %q", ra, "3")
	}

	close(block)
	if code := <-firstDone; code != 200 {
		t.Fatalf("admitted request: code %d, want 200", code)
	}
	// With the slot free again the previously rejected key is admitted.
	if code, body, _ := get(t, s, "/v1/table?scale=0.012"); code != 200 {
		t.Fatalf("retry after saturation: code %d, want 200 (body %s)", code, body)
	}
	if gs := s.gate.Stats(); gs.Rejected != 1 {
		t.Fatalf("gate rejected = %d, want 1", gs.Rejected)
	}
}

func TestRequestTimeoutReturns503(t *testing.T) {
	s := New(Config{
		Base: cuisines.Options{Scale: testScale},
		Runner: func(ctx context.Context, o cuisines.Options) (*cuisines.Analysis, error) {
			<-ctx.Done() // never completes on its own
			return nil, ctx.Err()
		},
		RequestTimeout: 30 * time.Millisecond,
	})
	code, body, _ := get(t, s, "/v1/table")
	if code != 503 {
		t.Fatalf("timed-out request: code %d, want 503 (body %s)", code, body)
	}
}

// TestJoinersSurviveCallerExit is the flight-detachment contract: the
// request that starts a pipeline run may hang up without killing the
// run for everyone who joined it.
func TestJoinersSurviveCallerExit(t *testing.T) {
	a := opsAnalysis(t)
	entered := make(chan struct{})
	block := make(chan struct{})
	var runs, cancelledRuns int
	var mu sync.Mutex
	c := NewCache(4, func(ctx context.Context, o cuisines.Options) (*cuisines.Analysis, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		close(entered)
		<-block
		if ctx.Err() != nil {
			mu.Lock()
			cancelledRuns++
			mu.Unlock()
			return nil, ctx.Err()
		}
		return a, nil
	}, nil)

	// Caller 1 starts the flight, then hangs up.
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx1, cuisines.Options{})
		done1 <- err
	}()
	<-entered

	// Caller 2 joins the same in-flight run.
	done2 := make(chan *cuisines.Analysis, 1)
	go func() {
		got, err := c.Get(context.Background(), cuisines.Options{})
		if err != nil {
			t.Errorf("joiner: %v", err)
		}
		done2 <- got
	}()
	// Wait until the joiner is registered on the flight, then abandon
	// caller 1.
	waitFor(t, func() bool { return c.Stats().InFlightJoins == 1 })
	cancel1()
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller got %v, want context.Canceled", err)
	}

	close(block)
	if got := <-done2; got != a {
		t.Fatalf("joiner got %v, want the shared analysis", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 || cancelledRuns != 0 {
		t.Fatalf("runs=%d cancelledRuns=%d, want 1 and 0 (flight must not die with caller 1)", runs, cancelledRuns)
	}
}

// TestCancellationHaltsRun uses a counting runner that mimics the real
// pipeline's between-stage checks: once every waiter is gone the flight
// context is cancelled and the run stops at the next stage boundary.
func TestCancellationHaltsRun(t *testing.T) {
	const totalStages = 5
	stageGate := make(chan struct{})         // test releases one stage at a time
	stagesRun := make(chan int, totalStages) // records each stage that executed
	finished := make(chan error, 1)
	// The runner mirrors the real pipeline's stage helper: each stage
	// waits for its inputs (the gate), then checks the flight context at
	// the boundary before doing its work.
	c := NewCache(4, func(ctx context.Context, o cuisines.Options) (*cuisines.Analysis, error) {
		for i := 0; i < totalStages; i++ {
			<-stageGate
			if err := ctx.Err(); err != nil {
				finished <- err
				return nil, err
			}
			stagesRun <- i
		}
		finished <- nil
		return nil, nil
	}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx, cuisines.Options{})
		got <- err
	}()

	stageGate <- struct{}{}
	if i := <-stagesRun; i != 0 {
		t.Fatalf("first stage = %d, want 0", i)
	}
	stageGate <- struct{}{}
	if i := <-stagesRun; i != 1 {
		t.Fatalf("second stage = %d, want 1", i)
	}
	cancel() // sole waiter leaves: flight context is cancelled
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller got %v, want context.Canceled", err)
	}
	// By the time Get returned, the last-waiter-out path has cancelled
	// the flight context; releasing the remaining gates must not run
	// further stages.
	close(stageGate)
	if err := <-finished; !errors.Is(err, context.Canceled) {
		t.Fatalf("run finished with %v, want context.Canceled at a stage boundary", err)
	}
	if n := len(stagesRun); n != 0 {
		t.Fatalf("%d further stages ran after cancellation, want 0", n)
	}
}

func TestMetricsScrapeAndMonotonicity(t *testing.T) {
	s := testServer(t)
	if code, _, _ := get(t, s, "/v1/table"); code != 200 {
		t.Fatal("warmup request failed")
	}
	_, body1, _ := get(t, s, "/metrics")
	before := parseMetrics(t, string(body1))

	for i := 0; i < 3; i++ {
		if code, _, _ := get(t, s, "/v1/table"); code != 200 {
			t.Fatal("request failed")
		}
	}
	get(t, s, "/v1/definitely-not-a-route")

	_, body2, _ := get(t, s, "/metrics")
	after := parseMetrics(t, string(body2))

	key := `cuisined_http_requests_total{endpoint="/v1/table",code="200"}`
	if after[key] < before[key]+3 {
		t.Fatalf("%s went %v -> %v, want +>=3", key, before[key], after[key])
	}
	if _, ok := after[`cuisined_http_requests_total{endpoint="unmatched",code="404"}`]; !ok {
		t.Fatalf("unmatched requests not counted:\n%s", body2)
	}
	if _, ok := after[`cuisined_http_request_duration_seconds_bucket{endpoint="/v1/table",le="+Inf"}`]; !ok {
		t.Fatalf("latency histogram missing +Inf bucket:\n%s", body2)
	}
	// Every counter present in the first scrape must be monotonically
	// non-decreasing in the second.
	for k, v := range before {
		if !strings.Contains(k, "_total{") && !strings.HasSuffix(strings.SplitN(k, "{", 2)[0], "_total") &&
			!strings.Contains(k, "_bucket{") && !strings.Contains(k, "_count{") {
			continue // gauges may go either way
		}
		if after[k] < v {
			t.Fatalf("counter %s decreased: %v -> %v", k, v, after[k])
		}
	}
}

// parseMetrics parses Prometheus text exposition into series -> value.
func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed metrics value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if len(out) == 0 {
		t.Fatalf("empty metrics exposition:\n%s", body)
	}
	return out
}

// waitFor polls cond until it holds or the test deadline effectively
// expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}
