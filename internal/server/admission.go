package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSaturated is returned by Gate.Acquire (and so by Cache.Get) when
// the pipeline pool and its wait queue are both full. The HTTP layer
// maps it to 429 Too Many Requests with a Retry-After hint.
var ErrSaturated = errors.New("server: pipeline saturated, try again later")

// Gate is the bounded admission queue in front of pipeline runs. It
// admits at most slots concurrent runs; when every slot is busy, up to
// queue more callers wait in line, and beyond that Acquire fails fast
// with ErrSaturated. The failure mode under overload is therefore a
// cheap 429, not an unbounded pile of goroutines parked behind
// single-flight.
//
// Only cache misses pass through the gate — hits and in-flight joins
// are nearly free and bypass it entirely (see Cache.Get).
type Gate struct {
	slots    chan struct{} // one token per admitted run
	queue    chan struct{} // one token per waiting caller
	rejected atomic.Uint64
}

// NewGate returns a gate admitting slots concurrent runs with a wait
// queue of depth queue. Non-positive values fall back to 1 slot / 0
// queue (admit one run, reject the rest) — callers wanting no gate at
// all pass a nil *Gate to NewCache instead.
func NewGate(slots, queue int) *Gate {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{
		slots: make(chan struct{}, slots),
		queue: make(chan struct{}, queue),
	}
}

// Acquire claims a run slot, waiting in the bounded queue if none is
// free. It returns a release func that must be called exactly once when
// the run finishes (or the slot is handed back unused). If the queue is
// full it returns ErrSaturated immediately; if ctx expires while
// waiting it returns ctx.Err().
func (g *Gate) Acquire(ctx context.Context) (func(), error) {
	select {
	case g.slots <- struct{}{}:
		return g.release, nil
	default:
	}
	select {
	case g.queue <- struct{}{}:
	default:
		g.rejected.Add(1)
		return nil, ErrSaturated
	}
	defer func() { <-g.queue }()
	select {
	case g.slots <- struct{}{}:
		return g.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *Gate) release() { <-g.slots }

// GateStats is a point-in-time snapshot of the gate for /metrics and
// the server's stats payload.
type GateStats struct {
	Slots    int    // configured concurrency limit
	Active   int    // runs currently admitted
	QueueCap int    // configured queue depth
	Queued   int    // callers currently waiting
	Rejected uint64 // cumulative ErrSaturated count
}

// Stats snapshots the gate's occupancy and rejection counter.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Slots:    cap(g.slots),
		Active:   len(g.slots),
		QueueCap: cap(g.queue),
		Queued:   len(g.queue),
		Rejected: g.rejected.Load(),
	}
}
