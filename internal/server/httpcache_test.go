package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cuisines"
)

// getWith performs one request with extra headers against the handler.
func getWith(t *testing.T, s *Server, path string, headers map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, body, rec.Result().Header
}

func TestETagAndNotModified(t *testing.T) {
	s := testServer(t)
	code, body, h := get(t, s, "/v1/table")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	etag := h.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) || len(etag) != 66 {
		t.Fatalf("ETag %q, want quoted sha256 hex", etag)
	}
	if cc := h.Get("Cache-Control"); cc != CacheControl {
		t.Fatalf("Cache-Control %q", cc)
	}
	if v := h.Get("Vary"); v != "Accept-Encoding" {
		t.Fatalf("Vary %q", v)
	}

	before := s.notModified.Load()
	code2, body2, h2 := getWith(t, s, "/v1/table", map[string]string{"If-None-Match": etag})
	if code2 != http.StatusNotModified {
		t.Fatalf("conditional status %d, want 304", code2)
	}
	if len(body2) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(body2))
	}
	if h2.Get("ETag") != etag {
		t.Fatalf("304 ETag %q != %q", h2.Get("ETag"), etag)
	}
	if got := s.notModified.Load(); got != before+1 {
		t.Fatalf("notModified counter %d, want %d", got, before+1)
	}

	// Weak comparison: a W/ prefix and a multi-candidate list match too.
	for _, inm := range []string{"W/" + etag, `"miss", ` + etag, "*"} {
		if code, _, _ := getWith(t, s, "/v1/table", map[string]string{"If-None-Match": inm}); code != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, code)
		}
	}
	if code, _, _ := getWith(t, s, "/v1/table", map[string]string{"If-None-Match": `"nope"`}); code != 200 {
		t.Fatalf("non-matching validator answered %d, want 200", code)
	}

	// A fresh request still gets the identical bytes (the cache serves).
	if _, again, _ := get(t, s, "/v1/table"); !bytes.Equal(again, body) {
		t.Fatal("repeat fetch returned different bytes")
	}
}

func TestGzipDecodesIdenticalToIdentity(t *testing.T) {
	s := testServer(t)
	_, identity, _ := get(t, s, "/v1/table")
	code, gzBody, h := getWith(t, s, "/v1/table", map[string]string{"Accept-Encoding": "gzip"})
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if ce := h.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", ce)
	}
	if len(gzBody) >= len(identity) {
		t.Fatalf("gzip body (%d) not smaller than identity (%d)", len(gzBody), len(identity))
	}
	zr, err := gzip.NewReader(bytes.NewReader(gzBody))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, identity) {
		t.Fatal("gzip body does not decode to the identity bytes")
	}
	// One ETag covers both encodings (validates content, not coding).
	_, _, hid := get(t, s, "/v1/table")
	if h.Get("ETag") != hid.Get("ETag") {
		t.Fatalf("gzip ETag %q != identity ETag %q", h.Get("ETag"), hid.Get("ETag"))
	}
	// q=0 declines gzip.
	if _, body, h := getWith(t, s, "/v1/table", map[string]string{"Accept-Encoding": "gzip;q=0"}); h.Get("Content-Encoding") != "" || !bytes.Equal(body, identity) {
		t.Fatal("gzip;q=0 still got a compressed body")
	}
}

func TestCompactAndPrettyParseIdentical(t *testing.T) {
	s := testServer(t)
	_, compact, _ := get(t, s, "/v1/table")
	_, pretty, _ := get(t, s, "/v1/table?pretty=1")
	if bytes.Contains(compact, []byte("\n  ")) {
		t.Fatal("default body is indented; want compact")
	}
	if !bytes.Contains(pretty, []byte("\n  ")) {
		t.Fatal("?pretty=1 body is not indented")
	}
	var c, p any
	if err := json.Unmarshal(compact, &c); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(pretty, &p); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, p) {
		t.Fatal("compact and pretty bodies parse to different values")
	}
	// Error bodies stay compact even with ?pretty=1 in play.
	code, errBody, _ := get(t, s, "/v1/clusters/fig5-authenticity?k=zero")
	if code != 400 || bytes.Contains(errBody, []byte("\n  ")) {
		t.Fatalf("error body not compact (status %d): %q", code, errBody)
	}
}

func TestPrettyBypassesRenderCache(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/claims") // ensure the compact entry exists
	before := s.renders.Stats()
	get(t, s, "/v1/claims?pretty=1")
	after := s.renders.Stats()
	if after.Misses != before.Misses || after.Entries != before.Entries {
		t.Fatalf("pretty request touched the render cache: %+v -> %+v", before, after)
	}
}

func TestStatsMinerEchoKeyedSeparately(t *testing.T) {
	s := testServer(t)
	_, b1, _ := get(t, s, "/v1/stats?miner=apriori")
	_, b2, _ := get(t, s, "/v1/stats?miner=eclat")
	var s1, s2 cuisines.StatsResponse
	if err := json.Unmarshal(b1, &s1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &s2); err != nil {
		t.Fatal(err)
	}
	if s1.Miner != "apriori" || s2.Miner != "eclat" {
		t.Fatalf("miner echo wrong: %q / %q (render key must include the miner)", s1.Miner, s2.Miner)
	}
}

func TestRenderEntriesEvictedWithAnalysis(t *testing.T) {
	s := New(Config{
		Base:      cuisines.Options{Scale: testScale},
		CacheSize: 1,
		Runner: func(_ context.Context, o cuisines.Options) (*cuisines.Analysis, error) {
			return cuisines.Run(o)
		},
	})
	if code, _, _ := get(t, s, "/v1/claims"); code != 200 {
		t.Fatal("first analysis failed")
	}
	if st := s.renders.Stats(); st.Entries != 1 {
		t.Fatalf("render entries = %d, want 1", st.Entries)
	}
	// A different seed is a different analysis key; CacheSize 1 means
	// inserting it evicts the first analysis — and must drop its renders.
	if code, _, _ := get(t, s, "/v1/claims?seed=99"); code != 200 {
		t.Fatal("second analysis failed")
	}
	st := s.renders.Stats()
	if st.Entries != 1 || st.Evictions < 1 {
		t.Fatalf("render cache after analysis eviction: %+v (want first owner's entry dropped)", st)
	}
}

// TestConcurrentRevalidation hammers one entry with a mix of plain,
// conditional and gzip requests under -race: every answer must be
// either the full identical body or a clean 304.
func TestConcurrentRevalidation(t *testing.T) {
	s := testServer(t)
	_, want, h := get(t, s, "/v1/table")
	etag := h.Get("ETag")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch (g + i) % 3 {
				case 0:
					code, body, _ := get(t, s, "/v1/table")
					if code != 200 || !bytes.Equal(body, want) {
						t.Errorf("plain: code=%d bytes=%d", code, len(body))
						return
					}
				case 1:
					code, body, _ := getWith(t, s, "/v1/table", map[string]string{"If-None-Match": etag})
					if code != http.StatusNotModified || len(body) != 0 {
						t.Errorf("conditional: code=%d bytes=%d", code, len(body))
						return
					}
				case 2:
					code, body, _ := getWith(t, s, "/v1/table", map[string]string{"Accept-Encoding": "gzip"})
					if code != 200 {
						t.Errorf("gzip: code=%d", code)
						return
					}
					zr, err := gzip.NewReader(bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					dec, err := io.ReadAll(zr)
					if err != nil || !bytes.Equal(dec, want) {
						t.Errorf("gzip decode mismatch: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCacheStatsReportsRenders(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/table")
	_, body, _ := get(t, s, "/v1/cachestats")
	st := decode[cuisines.CacheStatsResponse](t, body)
	if st.Renders.Entries < 1 || st.Renders.CapacityBytes <= 0 {
		t.Fatalf("cachestats renders: %+v", st.Renders)
	}
}
