package server

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"cuisines"
)

// HopHeader marks a request that has already made its one proxy hop:
// a node receiving it always serves locally, so misrouted requests
// (stale health views on two nodes) degrade to one extra hop, never a
// proxy loop. Clients may set it themselves to pin local serving —
// the loadgen -local flag and the cluster tests do, to exercise the
// peer artifact exchange rather than request routing.
const HopHeader = "X-Cuisined-Hop"

// RoutingKey derives the cluster routing key for opts: the canonical
// options with the output-neutral knobs zeroed (same equivalence class
// as the analysis cache key), rendered to a stable string for the
// ring. Requests differing only in workers or mining backend land on
// the same owner and share its warm analysis.
func RoutingKey(opts cuisines.Options) (string, error) {
	key, err := Key(opts)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("analysis|%+v", key), nil
}

// proxyStats counts request routing outcomes (the exchange-level
// counters live on the cluster node itself).
type proxyStats struct {
	proxied   atomic.Uint64 // requests forwarded to a ring owner
	fallbacks atomic.Uint64 // forwards that failed transport-level and ran locally
}

// maybeProxy applies consistent-hash routing: when the request's
// analysis key is owned by another live node (and the request has not
// already hopped), it is forwarded there and the response relayed
// back. A false return means the caller should serve locally — either
// this node owns the key, the fleet is down (degrade to local
// compute), or the owner died mid-request (transport failure; the
// response is untouched, so local serving still works).
func (s *Server) maybeProxy(w http.ResponseWriter, r *http.Request, opts cuisines.Options) bool {
	if s.cluster == nil || r.Header.Get(HopHeader) != "" {
		return false
	}
	key, err := RoutingKey(opts)
	if err != nil {
		return false // requestOptions already validated; be safe anyway
	}
	owner, local := s.cluster.Route(key)
	if local {
		return false
	}
	if !s.forward(w, r, owner) {
		s.proxy.fallbacks.Add(1)
		return false
	}
	s.proxy.proxied.Add(1)
	return true
}

// forward relays the request to owner with the hop header set. It
// writes nothing until the owner's response header arrives, so a
// transport failure leaves the ResponseWriter clean for the local
// fallback. Whatever the owner answered — including 4xx/5xx — is
// relayed verbatim: the owner ran the authoritative compute, and a
// local retry would at best duplicate its work.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, owner string) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, owner+r.URL.RequestURI(), nil)
	if err != nil {
		return false
	}
	req.Header.Set(HopHeader, "1")
	// The conditional-request and negotiation headers travel with the
	// request so the owner can answer 304 or serve its gzip variant;
	// the response's validator and encoding come back untouched (the
	// proxy client never transcodes, see DisableCompression). The
	// determinism invariant makes this safe end-to-end: every node
	// derives byte-identical bodies, so ETags agree fleet-wide.
	for _, h := range []string{"If-None-Match", "Accept-Encoding"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := s.proxyClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{
		"Content-Type", "Retry-After",
		"ETag", "Cache-Control", "Vary", "Content-Encoding", "Content-Length",
	} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// handlePing answers the peer liveness probe. Registered even without
// a cluster: a lone node probed by a misconfigured fleet should look
// alive, not 404.
func (s *Server) handlePing(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusNoContent)
}

// handleCluster reports this node's cluster view (/v1/cluster).
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, cuisines.ClusterResponse{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, s.clusterResponse())
}

func (s *Server) clusterResponse() cuisines.ClusterResponse {
	n := s.cluster
	m := n.Metrics()
	resp := cuisines.ClusterResponse{
		Enabled:  true,
		Self:     n.Self(),
		Members:  n.Ring().Members(),
		Replicas: n.Ring().Replicas(),
		Exchange: cuisines.ClusterExchangeStats{
			FetchAttempts: m.FetchAttempts,
			FetchHits:     m.FetchHits,
			FetchMisses:   m.FetchMisses,
			FetchErrors:   m.FetchErrors,
			FetchRejects:  m.FetchRejects,
			ServeHits:     m.ServeHits,
			ServeMisses:   m.ServeMisses,
		},
		Proxied:        s.proxy.proxied.Load(),
		ProxyFallbacks: s.proxy.fallbacks.Load(),
	}
	for _, p := range n.Peers() {
		resp.Peers = append(resp.Peers, cuisines.ClusterPeer{
			URL:       p.URL,
			Healthy:   p.Healthy,
			Failures:  p.Failures,
			LastErr:   p.LastErr,
			LastProbe: p.LastProbe,
		})
	}
	return resp
}

// renderClusterMetrics appends the cluster series to /metrics: the
// exchange counters and one health gauge per peer.
func (s *Server) renderClusterMetrics(w io.Writer) {
	if s.cluster == nil {
		return
	}
	m := s.cluster.Metrics()
	fmt.Fprintf(w, "# HELP cuisined_peer_fetch_total Peer artifact fetches issued by this node, by result.\n")
	fmt.Fprintf(w, "# TYPE cuisined_peer_fetch_total counter\n")
	fmt.Fprintf(w, "cuisined_peer_fetch_total{result=\"hit\"} %d\n", m.FetchHits)
	fmt.Fprintf(w, "cuisined_peer_fetch_total{result=\"miss\"} %d\n", m.FetchMisses)
	fmt.Fprintf(w, "cuisined_peer_fetch_total{result=\"error\"} %d\n", m.FetchErrors)
	fmt.Fprintf(w, "cuisined_peer_fetch_total{result=\"reject\"} %d\n", m.FetchRejects)
	fmt.Fprintf(w, "# HELP cuisined_peer_serve_total Peer artifact requests answered by this node, by result.\n")
	fmt.Fprintf(w, "# TYPE cuisined_peer_serve_total counter\n")
	fmt.Fprintf(w, "cuisined_peer_serve_total{result=\"hit\"} %d\n", m.ServeHits)
	fmt.Fprintf(w, "cuisined_peer_serve_total{result=\"miss\"} %d\n", m.ServeMisses)
	fmt.Fprintf(w, "# HELP cuisined_proxied_requests_total Requests forwarded to their ring owner.\n")
	fmt.Fprintf(w, "# TYPE cuisined_proxied_requests_total counter\n")
	fmt.Fprintf(w, "cuisined_proxied_requests_total %d\n", s.proxy.proxied.Load())
	fmt.Fprintf(w, "# HELP cuisined_proxy_fallbacks_total Forwards that failed transport-level and were served locally.\n")
	fmt.Fprintf(w, "# TYPE cuisined_proxy_fallbacks_total counter\n")
	fmt.Fprintf(w, "cuisined_proxy_fallbacks_total %d\n", s.proxy.fallbacks.Load())
	fmt.Fprintf(w, "# HELP cuisined_peer_healthy Peer liveness as seen by this node's health checker.\n")
	fmt.Fprintf(w, "# TYPE cuisined_peer_healthy gauge\n")
	for _, p := range s.cluster.Peers() {
		v := 0
		if p.Healthy {
			v = 1
		}
		fmt.Fprintf(w, "cuisined_peer_healthy{peer=%q} %d\n", p.URL, v)
	}
}
