package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// metrics is the server's hand-rolled metric registry. It keeps exactly
// the series /metrics exposes — per-endpoint request/error counters, a
// latency histogram, and an in-flight gauge — behind one mutex, and
// renders them in the Prometheus text exposition format. Hand-rolled
// because the repo takes no dependencies: the text format is three line
// shapes (# HELP, # TYPE, sample), well within reach of fmt.Fprintf.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64 // endpoint → status code → count
	errors   map[string]uint64         // endpoint → 5xx count
	inflight map[string]int64          // endpoint → current requests
	latency  map[string]*histogram     // endpoint → seconds histogram
}

// latencyBuckets are the histogram upper bounds in seconds. The range
// spans cache hits (sub-millisecond JSON encoding) through cold full
// pipeline runs (seconds), roughly 2.5x apart.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket cumulative histogram in the Prometheus
// sense: counts[i] is the number of observations <= buckets[i], and the
// rendered +Inf bucket equals count.
type histogram struct {
	counts []uint64
	sum    float64
	count  uint64
}

func (h *histogram) observe(v float64) {
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.sum += v
	h.count++
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]uint64),
		errors:   make(map[string]uint64),
		inflight: make(map[string]int64),
		latency:  make(map[string]*histogram),
	}
}

// incInflight / decInflight bracket a request's handler execution.
func (m *metrics) incInflight(endpoint string) {
	m.mu.Lock()
	m.inflight[endpoint]++
	m.mu.Unlock()
}

func (m *metrics) decInflight(endpoint string) {
	m.mu.Lock()
	m.inflight[endpoint]--
	m.mu.Unlock()
}

// observe records one completed request: its final status code and
// wall-clock duration in seconds.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]uint64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	if code >= 500 {
		m.errors[endpoint]++
	}
	h := m.latency[endpoint]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		m.latency[endpoint] = h
	}
	h.observe(seconds)
}

// render writes every HTTP series in Prometheus text format. Series are
// emitted in sorted label order so successive scrapes diff cleanly.
func (m *metrics) render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP cuisined_http_requests_total Requests served, by endpoint pattern and status code.\n")
	fmt.Fprintf(w, "# TYPE cuisined_http_requests_total counter\n")
	for _, ep := range sortedKeys(m.requests) {
		byCode := m.requests[ep]
		codes := make([]int, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "cuisined_http_requests_total{endpoint=%q,code=%q} %d\n", ep, strconv.Itoa(c), byCode[c])
		}
	}

	fmt.Fprintf(w, "# HELP cuisined_http_request_errors_total Requests answered with a 5xx status, by endpoint pattern.\n")
	fmt.Fprintf(w, "# TYPE cuisined_http_request_errors_total counter\n")
	for _, ep := range sortedKeys(m.errors) {
		fmt.Fprintf(w, "cuisined_http_request_errors_total{endpoint=%q} %d\n", ep, m.errors[ep])
	}

	fmt.Fprintf(w, "# HELP cuisined_http_requests_inflight Requests currently being handled, by endpoint pattern.\n")
	fmt.Fprintf(w, "# TYPE cuisined_http_requests_inflight gauge\n")
	for _, ep := range sortedKeys(m.inflight) {
		fmt.Fprintf(w, "cuisined_http_requests_inflight{endpoint=%q} %d\n", ep, m.inflight[ep])
	}

	fmt.Fprintf(w, "# HELP cuisined_http_request_duration_seconds Request latency, by endpoint pattern.\n")
	fmt.Fprintf(w, "# TYPE cuisined_http_request_duration_seconds histogram\n")
	for _, ep := range sortedKeys(m.latency) {
		h := m.latency[ep]
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "cuisined_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, formatFloat(ub), h.counts[i])
		}
		fmt.Fprintf(w, "cuisined_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.count)
		fmt.Fprintf(w, "cuisined_http_request_duration_seconds_sum{endpoint=%q} %s\n", ep, formatFloat(h.sum))
		fmt.Fprintf(w, "cuisined_http_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatFloat renders a float the way Prometheus clients do: shortest
// form that round-trips.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// handleMetrics renders the full exposition: HTTP series plus the
// analysis-cache, per-stage artifact-cache, and admission-gate series
// the daemon already tracks internally.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w)

	cs := s.cache.Stats()
	fmt.Fprintf(w, "# HELP cuisined_analysis_cache_entries Analyses currently cached or in flight.\n")
	fmt.Fprintf(w, "# TYPE cuisined_analysis_cache_entries gauge\n")
	fmt.Fprintf(w, "cuisined_analysis_cache_entries %d\n", cs.Size)
	fmt.Fprintf(w, "# HELP cuisined_analysis_cache_capacity Configured analysis cache capacity.\n")
	fmt.Fprintf(w, "# TYPE cuisined_analysis_cache_capacity gauge\n")
	fmt.Fprintf(w, "cuisined_analysis_cache_capacity %d\n", cs.Capacity)
	fmt.Fprintf(w, "# HELP cuisined_analysis_cache_events_total Analysis cache traffic, by event.\n")
	fmt.Fprintf(w, "# TYPE cuisined_analysis_cache_events_total counter\n")
	fmt.Fprintf(w, "cuisined_analysis_cache_events_total{event=\"hit\"} %d\n", cs.Hits)
	fmt.Fprintf(w, "cuisined_analysis_cache_events_total{event=\"miss\"} %d\n", cs.Misses)
	fmt.Fprintf(w, "cuisined_analysis_cache_events_total{event=\"eviction\"} %d\n", cs.Evictions)
	fmt.Fprintf(w, "cuisined_analysis_cache_events_total{event=\"inflight_join\"} %d\n", cs.InFlightJoins)

	rs := s.renders.Stats()
	fmt.Fprintf(w, "# HELP cuisined_render_cache_entries Rendered responses currently cached.\n")
	fmt.Fprintf(w, "# TYPE cuisined_render_cache_entries gauge\n")
	fmt.Fprintf(w, "cuisined_render_cache_entries %d\n", rs.Entries)
	fmt.Fprintf(w, "# HELP cuisined_render_cache_bytes Bytes held by the render cache (bodies plus gzip variants).\n")
	fmt.Fprintf(w, "# TYPE cuisined_render_cache_bytes gauge\n")
	fmt.Fprintf(w, "cuisined_render_cache_bytes %d\n", rs.Bytes)
	fmt.Fprintf(w, "# HELP cuisined_render_cache_capacity_bytes Configured render cache byte budget.\n")
	fmt.Fprintf(w, "# TYPE cuisined_render_cache_capacity_bytes gauge\n")
	fmt.Fprintf(w, "cuisined_render_cache_capacity_bytes %d\n", rs.MaxBytes)
	fmt.Fprintf(w, "# HELP cuisined_render_cache_events_total Render cache traffic, by event.\n")
	fmt.Fprintf(w, "# TYPE cuisined_render_cache_events_total counter\n")
	fmt.Fprintf(w, "cuisined_render_cache_events_total{event=\"hit\"} %d\n", rs.Hits)
	fmt.Fprintf(w, "cuisined_render_cache_events_total{event=\"miss\"} %d\n", rs.Misses)
	fmt.Fprintf(w, "cuisined_render_cache_events_total{event=\"eviction\"} %d\n", rs.Evictions)
	fmt.Fprintf(w, "cuisined_render_cache_events_total{event=\"inflight_join\"} %d\n", rs.InFlightJoins)
	fmt.Fprintf(w, "# HELP cuisined_render_cache_gzip_variants_total Gzip variants built (once per entry worth compressing).\n")
	fmt.Fprintf(w, "# TYPE cuisined_render_cache_gzip_variants_total counter\n")
	fmt.Fprintf(w, "cuisined_render_cache_gzip_variants_total %d\n", rs.GzipVariants)
	fmt.Fprintf(w, "# HELP cuisined_http_not_modified_total Conditional requests answered 304 Not Modified.\n")
	fmt.Fprintf(w, "# TYPE cuisined_http_not_modified_total counter\n")
	fmt.Fprintf(w, "cuisined_http_not_modified_total %d\n", s.notModified.Load())
	fmt.Fprintf(w, "# HELP cuisined_http_body_bytes_total Response body bytes written from the render cache, by encoding.\n")
	fmt.Fprintf(w, "# TYPE cuisined_http_body_bytes_total counter\n")
	fmt.Fprintf(w, "cuisined_http_body_bytes_total{encoding=\"identity\"} %d\n", s.bytesIdentity.Load())
	fmt.Fprintf(w, "cuisined_http_body_bytes_total{encoding=\"gzip\"} %d\n", s.bytesGzip.Load())

	if s.engine != nil {
		stages := s.engine.CacheStats()
		fmt.Fprintf(w, "# HELP cuisined_stage_cache_events_total Per-stage artifact cache traffic, by stage and event.\n")
		fmt.Fprintf(w, "# TYPE cuisined_stage_cache_events_total counter\n")
		for _, kind := range sortedKeys(stages) {
			st := stages[kind]
			fmt.Fprintf(w, "cuisined_stage_cache_events_total{stage=%q,event=\"hit\"} %d\n", kind, st.Hits)
			fmt.Fprintf(w, "cuisined_stage_cache_events_total{stage=%q,event=\"disk_hit\"} %d\n", kind, st.DiskHits)
			fmt.Fprintf(w, "cuisined_stage_cache_events_total{stage=%q,event=\"peer_hit\"} %d\n", kind, st.PeerHits)
			fmt.Fprintf(w, "cuisined_stage_cache_events_total{stage=%q,event=\"computed\"} %d\n", kind, st.Computed)
			fmt.Fprintf(w, "cuisined_stage_cache_events_total{stage=%q,event=\"eviction\"} %d\n", kind, st.Evictions)
			fmt.Fprintf(w, "cuisined_stage_cache_events_total{stage=%q,event=\"inflight_join\"} %d\n", kind, st.InFlightJoins)
		}
	}

	if s.gate != nil {
		gs := s.gate.Stats()
		fmt.Fprintf(w, "# HELP cuisined_admission_slots Configured concurrent pipeline-run limit.\n")
		fmt.Fprintf(w, "# TYPE cuisined_admission_slots gauge\n")
		fmt.Fprintf(w, "cuisined_admission_slots %d\n", gs.Slots)
		fmt.Fprintf(w, "# HELP cuisined_admission_active Pipeline runs currently admitted.\n")
		fmt.Fprintf(w, "# TYPE cuisined_admission_active gauge\n")
		fmt.Fprintf(w, "cuisined_admission_active %d\n", gs.Active)
		fmt.Fprintf(w, "# HELP cuisined_admission_queue_capacity Configured admission queue depth.\n")
		fmt.Fprintf(w, "# TYPE cuisined_admission_queue_capacity gauge\n")
		fmt.Fprintf(w, "cuisined_admission_queue_capacity %d\n", gs.QueueCap)
		fmt.Fprintf(w, "# HELP cuisined_admission_queued Requests currently waiting for a pipeline slot.\n")
		fmt.Fprintf(w, "# TYPE cuisined_admission_queued gauge\n")
		fmt.Fprintf(w, "cuisined_admission_queued %d\n", gs.Queued)
		fmt.Fprintf(w, "# HELP cuisined_admission_rejected_total Requests rejected with 429 because the queue was full.\n")
		fmt.Fprintf(w, "# TYPE cuisined_admission_rejected_total counter\n")
		fmt.Fprintf(w, "cuisined_admission_rejected_total %d\n", gs.Rejected)
	}

	s.renderClusterMetrics(w)
}
