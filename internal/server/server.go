package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cuisines"
	"cuisines/internal/cluster"
	"cuisines/internal/render"
)

// Config configures a Server.
type Config struct {
	// Base holds the daemon's default analysis options. Requests may
	// override the analysis fields (seed, scale, support, linkage) and
	// the mining backend (miner) via query parameters; Workers always
	// comes from Base.
	Base cuisines.Options
	// CacheSize bounds the number of distinct analyses held (LRU);
	// <= 0 means DefaultCacheSize.
	CacheSize int
	// Engine executes analysis-cache misses through the staged
	// pipeline, sharing per-stage artifacts across analyses (and, with
	// a cache dir, across restarts). Nil means a fresh in-memory
	// engine. Ignored when Runner is set.
	Engine *cuisines.Engine
	// Runner overrides the pipeline entry point entirely (tests use
	// counting or stubbed runners); nil means Engine.RunContext.
	Runner Runner
	// MaxConcurrentRuns bounds concurrent pipeline runs admitted on
	// cache misses. 0 means GOMAXPROCS; negative disables admission
	// control entirely (unbounded, the pre-gate behavior).
	MaxConcurrentRuns int
	// MaxQueuedRuns bounds how many misses may wait for a run slot
	// before new ones are rejected with 429. 0 means
	// DefaultMaxQueuedRuns; negative means no queue (reject as soon as
	// every slot is busy).
	MaxQueuedRuns int
	// RenderCacheBytes bounds the rendered-response cache (compact
	// bodies plus their gzip variants) in bytes; <= 0 means
	// render.DefaultMaxBytes. See DESIGN.md §14.
	RenderCacheBytes int64
	// RequestTimeout caps each request's wall-clock time, enforced via
	// the request context (expired requests answer 503). 0 disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses; 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// AccessLog, when non-nil, receives one structured (JSON) line per
	// completed request. Nil disables access logging.
	AccessLog *log.Logger
	// Cluster, when non-nil, makes this server a cluster member: /v1
	// requests whose analysis key is owned by another live node are
	// proxied there (single-hop, see HopHeader), the peer artifact
	// routes are registered, and /v1/cluster and /metrics report the
	// fleet view. Nil serves single-node.
	Cluster *cluster.Node
}

// DefaultMaxQueuedRuns is the admission queue depth when the caller
// leaves MaxQueuedRuns zero: enough to absorb a burst, small enough
// that queued callers still see sub-pipeline-run waits.
const DefaultMaxQueuedRuns = 32

// DefaultRetryAfter is the Retry-After hint for 429 responses.
const DefaultRetryAfter = time.Second

// Server serves the Analysis facade over HTTP. All endpoints are GETs
// under /v1 (plus /healthz and /metrics); every response is JSON except
// /v1/newick/{figure} (plain text, byte-equal to Analysis.Newick) and
// /metrics (Prometheus text format).
type Server struct {
	base       cuisines.Options
	cache      *Cache
	renders    *render.Cache
	engine     *cuisines.Engine // nil when a custom Runner bypasses the stage graph
	gate       *Gate            // nil when admission control is disabled
	met        *metrics
	timeout    time.Duration // per-request cap; 0 = none
	retryAfter time.Duration
	accessLog  *log.Logger
	mux        *http.ServeMux

	// HTTP caching counters (see /metrics): conditional requests
	// answered 304, and body bytes actually written per encoding.
	notModified   atomic.Uint64
	bytesIdentity atomic.Uint64
	bytesGzip     atomic.Uint64

	cluster     *cluster.Node // nil when single-node
	proxy       proxyStats
	proxyClient *http.Client
}

// New builds a Server with its routes registered.
func New(cfg Config) *Server {
	engine := cfg.Engine
	run := cfg.Runner
	if run == nil {
		if engine == nil {
			engine = cuisines.NewEngine(cuisines.EngineConfig{})
		}
		run = engine.RunContext
	} else {
		// A custom Runner bypasses the stage graph entirely; reporting
		// a bystander engine's counters would misdescribe the serving
		// path, so cachestats shows stages only when the engine serves.
		engine = nil
	}
	var gate *Gate
	if cfg.MaxConcurrentRuns >= 0 {
		slots := cfg.MaxConcurrentRuns
		if slots == 0 {
			slots = runtime.GOMAXPROCS(0)
		}
		queue := cfg.MaxQueuedRuns
		switch {
		case queue == 0:
			queue = DefaultMaxQueuedRuns
		case queue < 0:
			queue = 0
		}
		gate = NewGate(slots, queue)
	}
	retryAfter := cfg.RetryAfter
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	s := &Server{
		base:       cfg.Base,
		cache:      NewCache(cfg.CacheSize, run, gate),
		renders:    render.New(cfg.RenderCacheBytes),
		engine:     engine,
		gate:       gate,
		met:        newMetrics(),
		timeout:    cfg.RequestTimeout,
		retryAfter: retryAfter,
		accessLog:  cfg.AccessLog,
		cluster:    cfg.Cluster,
		// Forwarded requests carry the original request's context (and
		// with it the per-request timeout); no extra client timeout.
		// DisableCompression keeps proxied bytes exactly as the owner
		// sent them — the proxy must never transcode a response whose
		// ETag and Content-Encoding it forwards.
		proxyClient: &http.Client{Transport: &http.Transport{DisableCompression: true}},
	}
	// Tie render lifetime to analysis lifetime: when the analysis LRU
	// evicts a key, its rendered responses go with it.
	s.cache.onEvict = func(key cuisines.Options) { s.renders.DropOwner(keyString(key)) }
	mux := http.NewServeMux()
	s.route(mux, "GET /healthz", s.handleHealth)
	s.route(mux, "GET /metrics", s.handleMetrics)
	s.route(mux, "GET /internal/v1/ping", s.handlePing)
	if s.cluster != nil {
		s.route(mux, "GET /internal/v1/artifact/{kind}/{key}", s.cluster.ServeArtifact)
	}
	s.route(mux, "GET /v1/cluster", s.handleCluster)
	s.route(mux, "GET /v1/cachestats", s.handleCacheStats)
	s.route(mux, "GET /v1/table", s.with(s.handleTable))
	s.route(mux, "GET /v1/dendrogram/{figure}", s.withFigure(s.handleDendrogram))
	s.route(mux, "GET /v1/newick/{figure}", s.withFigure(s.handleNewick))
	s.route(mux, "GET /v1/clusters/{figure}", s.withFigure(s.handleClusters))
	s.route(mux, "GET /v1/closest/{figure}", s.withFigure(s.handleClosest))
	s.route(mux, "GET /v1/fingerprint/{region}", s.with(s.handleFingerprint))
	s.route(mux, "GET /v1/patterns/{region}", s.with(s.handlePatterns))
	s.route(mux, "GET /v1/rules/{region}", s.with(s.handleRules))
	s.route(mux, "GET /v1/pairings/{region}", s.with(s.handlePairings))
	s.route(mux, "GET /v1/substitutes/{region}", s.with(s.handleSubstitutes))
	s.route(mux, "GET /v1/map", s.with(s.handleMap))
	s.route(mux, "GET /v1/claims", s.with(s.handleClaims))
	s.route(mux, "GET /v1/stats", s.with(s.handleStats))
	s.mux = mux
	return s
}

// route registers h with the in-flight gauge wrapped around it. The
// gauge lives here (not in ServeHTTP) because the endpoint label is the
// route pattern, known statically at registration but only after mux
// dispatch in the middleware.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	endpoint := strings.TrimPrefix(pattern, "GET ")
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.met.incInflight(endpoint)
		defer s.met.decInflight(endpoint)
		h(w, r)
	})
}

// ServeHTTP implements http.Handler: it arms the per-request timeout,
// dispatches through the mux, then records metrics and the access-log
// line against the matched route pattern (mux sets r.Pattern on the
// request it was handed, so it is readable here after dispatch —
// unmatched requests get the synthetic "unmatched" label without a
// catch-all route, keeping the mux's own 404/405 behavior intact).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	endpoint := strings.TrimPrefix(r.Pattern, "GET ")
	if endpoint == "" {
		endpoint = "unmatched"
	}
	elapsed := time.Since(start)
	s.met.observe(endpoint, sw.status(), elapsed.Seconds())
	if s.accessLog != nil {
		line, err := json.Marshal(accessRecord{
			Time:       start.UTC().Format(time.RFC3339Nano),
			Method:     r.Method,
			Path:       r.URL.RequestURI(),
			Endpoint:   endpoint,
			Status:     sw.status(),
			Bytes:      sw.bytes,
			DurationMS: float64(elapsed) / float64(time.Millisecond),
			Remote:     r.RemoteAddr,
		})
		if err == nil {
			s.accessLog.Print(string(line))
		}
	}
}

// accessRecord is one access-log line. Fields are stable: dashboards
// may key on them.
type accessRecord struct {
	Time       string  `json:"time"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Endpoint   string  `json:"endpoint"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
	Remote     string  `json:"remote"`
}

// statusWriter records the final status code and body size for metrics
// and access logs.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// Warm computes and caches the analysis for the server's base options
// (the -preload path in cuisined). ctx cancels the warmup — tie it to
// the daemon's signal context so shutdown aborts an unfinished preload.
func (s *Server) Warm(ctx context.Context) error {
	_, err := s.cache.Get(ctx, s.base)
	return err
}

// requestOptions merges per-request query parameters over the base
// options, returning both the merged form (the cache lookup input,
// Workers and Miner intact) and its canonical form (every default
// applied and every name normalized — what /v1/stats echoes).
// Malformed or unknown values are a client error.
func (s *Server) requestOptions(r *http.Request) (opts, canon cuisines.Options, err error) {
	opts = s.base
	q := r.URL.Query()
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return opts, canon, fmt.Errorf("bad seed %q", v)
		}
		opts.Seed = seed
	}
	if v := q.Get("scale"); v != "" {
		scale, err := strconv.ParseFloat(v, 64)
		if err != nil || scale <= 0 || scale > MaxScale {
			return opts, canon, fmt.Errorf("scale must be in (0, %g]", float64(MaxScale))
		}
		opts.Scale = scale
	}
	if v := q.Get("support"); v != "" {
		sup, err := strconv.ParseFloat(v, 64)
		if err != nil || sup <= 0 || sup > 1 {
			return opts, canon, fmt.Errorf("bad support %q", v)
		}
		opts.MinSupport = sup
	}
	if v := q.Get("linkage"); v != "" {
		opts.Linkage = v
	}
	if v := q.Get("miner"); v != "" {
		opts.Miner = v
	}
	canon, err = opts.Canonical()
	if err != nil {
		return opts, canon, err
	}
	return opts, canon, nil
}

// MaxScale bounds the per-request scale override: an unauthenticated
// query must not be able to demand an arbitrarily large corpus.
const MaxScale = 4

// analysisHandler is an endpoint handler that already has its analysis
// resolved (carried in the resource, alongside the render-cache owner
// and the canonical options).
type analysisHandler func(w http.ResponseWriter, r *http.Request, rc *resource)

// figureHandler additionally has its {figure} path segment resolved.
type figureHandler func(w http.ResponseWriter, r *http.Request, rc *resource, f cuisines.Figure)

// with resolves the request's analysis through the cache before calling
// h: bad analysis parameters are a 400, saturation a 429, an expired or
// abandoned request a 503, any other pipeline failure a 500.
func (s *Server) with(h analysisHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		opts, canon, err := s.requestOptions(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if s.maybeProxy(w, r, opts) {
			return
		}
		a, err := s.cache.Get(r.Context(), opts)
		if err != nil {
			s.writeAnalysisError(w, err)
			return
		}
		// The render owner is the analysis cache key (canon with the two
		// output-neutral knobs zeroed), so requests differing only in
		// workers/miner share rendered bytes just as they share the
		// analysis.
		key := canon
		key.Workers = 0
		key.Miner = ""
		h(w, r, &resource{s: s, a: a, owner: keyString(key), canon: canon, pretty: isPretty(r)})
	}
}

// writeAnalysisError maps Cache.Get failures onto status codes: a full
// admission queue is the client's cue to back off and retry (429 +
// Retry-After); a request that ran out of time or whose client went
// away is a 503 (the service was too slow, not wrong); anything else is
// a genuine pipeline failure (500).
func (s *Server) writeAnalysisError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated):
		secs := int(s.retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// withFigure validates the {figure} path segment BEFORE resolving the
// analysis, so a bogus figure is a cheap 404 rather than a pipeline run
// against a cold cache key.
func (s *Server) withFigure(h figureHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f, err := cuisines.ParseFigure(r.PathValue("figure"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		s.with(func(w http.ResponseWriter, r *http.Request, rc *resource) {
			h(w, r, rc, f)
		})(w, r)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, cuisines.HealthResponse{Status: "ok", Cached: s.cache.Len()})
}

// CacheStats reports the analysis cache counters plus the engine's
// per-stage artifact counters (empty when a custom Runner bypasses the
// stage graph). The daemon logs the same numbers at shutdown.
func (s *Server) CacheStats() cuisines.CacheStatsResponse {
	rs := s.renders.Stats()
	resp := cuisines.CacheStatsResponse{
		Analyses: s.cache.Stats(),
		Stages:   map[string]cuisines.StageCacheStats{},
		Renders: cuisines.RenderCacheStats{
			Entries:       rs.Entries,
			Bytes:         rs.Bytes,
			CapacityBytes: rs.MaxBytes,
			Hits:          rs.Hits,
			Misses:        rs.Misses,
			Evictions:     rs.Evictions,
			InFlightJoins: rs.InFlightJoins,
			GzipVariants:  rs.GzipVariants,
			NotModified:   s.notModified.Load(),
		},
	}
	if s.engine != nil {
		resp.Stages = s.engine.CacheStats()
	}
	return resp
}

func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.CacheStats())
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request, rc *resource) {
	rc.serveJSON(w, r, "", func() (any, error) {
		return cuisines.TableResponse{Rows: rc.a.Table()}, nil
	})
}

func (s *Server) handleDendrogram(w http.ResponseWriter, r *http.Request, rc *resource, f cuisines.Figure) {
	rc.serveJSON(w, r, "", func() (any, error) {
		d, err := rc.a.Dendrogram(f)
		if err != nil {
			return nil, err
		}
		return cuisines.DendrogramResponse{Figure: f.String(), Dendrogram: d}, nil
	})
}

func (s *Server) handleNewick(w http.ResponseWriter, r *http.Request, rc *resource, f cuisines.Figure) {
	rc.serveBytes(w, r, "text/plain; charset=utf-8", "", func() ([]byte, error) {
		nw, err := rc.a.Newick(f)
		if err != nil {
			return nil, err
		}
		return []byte(nw), nil
	})
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request, rc *resource, f cuisines.Figure) {
	k, err := queryInt(r, "k", 0)
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be a positive integer"))
		return
	}
	rc.serveJSON(w, r, "", func() (any, error) {
		groups, err := rc.a.Clusters(f, k)
		if err != nil {
			return nil, failWith(http.StatusBadRequest, err)
		}
		return cuisines.ClustersResponse{Figure: f.String(), K: k, Clusters: groups}, nil
	})
}

func (s *Server) handleClosest(w http.ResponseWriter, r *http.Request, rc *resource, f cuisines.Figure) {
	region := r.URL.Query().Get("region")
	if region == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing region parameter"))
		return
	}
	if !rc.a.HasRegion(region) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown region %q", region))
		return
	}
	rc.serveJSON(w, r, "", func() (any, error) {
		closest, err := rc.a.ClosestCuisine(f, region)
		if err != nil {
			return nil, err
		}
		d, err := rc.a.CuisineDistance(f, region, closest)
		if err != nil {
			return nil, err
		}
		return cuisines.ClosestResponse{
			Figure: f.String(), Region: region, Closest: closest, Distance: d,
		}, nil
	})
}

func (s *Server) handleFingerprint(w http.ResponseWriter, r *http.Request, rc *resource) {
	region, ok := pathRegion(w, r, rc.a)
	if !ok {
		return
	}
	k, err := queryInt(r, "k", 10)
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be a positive integer"))
		return
	}
	rc.serveJSON(w, r, "", func() (any, error) {
		fp, err := rc.a.Fingerprint(region, k)
		if err != nil {
			return nil, err
		}
		return fp, nil
	})
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request, rc *resource) {
	region, ok := pathRegion(w, r, rc.a)
	if !ok {
		return
	}
	rc.serveJSON(w, r, "", func() (any, error) {
		ps, err := rc.a.CuisinePatterns(region)
		if err != nil {
			return nil, err
		}
		return cuisines.PatternsResponse{Region: region, Patterns: ps}, nil
	})
}

// ruleParams parses the shared min_confidence / max query parameters.
func ruleParams(r *http.Request) (minConfidence float64, maxRules int, err error) {
	q := r.URL.Query()
	if v := q.Get("min_confidence"); v != "" {
		minConfidence, err = strconv.ParseFloat(v, 64)
		if err != nil || minConfidence <= 0 || minConfidence > 1 {
			return 0, 0, fmt.Errorf("bad min_confidence %q", v)
		}
	}
	maxRules, err = queryInt(r, "max", 0)
	if err != nil || maxRules < 0 {
		return 0, 0, fmt.Errorf("bad max parameter")
	}
	return minConfidence, maxRules, nil
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request, rc *resource) {
	region, ok := pathRegion(w, r, rc.a)
	if !ok {
		return
	}
	minConf, maxRules, err := ruleParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rc.serveJSON(w, r, "", func() (any, error) {
		rules, err := rc.a.AssociationRules(region, minConf, maxRules)
		if err != nil {
			return nil, err
		}
		return cuisines.RulesResponse{Region: region, Rules: rules}, nil
	})
}

func (s *Server) handlePairings(w http.ResponseWriter, r *http.Request, rc *resource) {
	region, ok := pathRegion(w, r, rc.a)
	if !ok {
		return
	}
	minConf, maxRules, err := ruleParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rc.serveJSON(w, r, "", func() (any, error) {
		pairing, err := rc.a.FoodPairingFor(region)
		if err != nil {
			return nil, err
		}
		rules, err := rc.a.IngredientPairings(region, minConf, maxRules)
		if err != nil {
			return nil, err
		}
		return cuisines.PairingsResponse{Region: region, Pairing: pairing, Rules: rules}, nil
	})
}

func (s *Server) handleSubstitutes(w http.ResponseWriter, r *http.Request, rc *resource) {
	region, ok := pathRegion(w, r, rc.a)
	if !ok {
		return
	}
	ingredient := r.URL.Query().Get("ingredient")
	if ingredient == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ingredient parameter"))
		return
	}
	k, err := queryInt(r, "k", 10)
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be a positive integer"))
		return
	}
	rc.serveJSON(w, r, "", func() (any, error) {
		subs, err := rc.a.Substitutes(region, ingredient, k)
		if err != nil {
			// The region exists (checked above), so the failure is the
			// ingredient having no frequent context in this cuisine.
			return nil, failWith(http.StatusNotFound, err)
		}
		return cuisines.SubstitutesResponse{
			Region: region, Ingredient: ingredient, Substitutes: subs,
		}, nil
	})
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request, rc *resource) {
	q := r.URL.Query()
	wantImage := q.Has("width") || q.Has("height")
	var width, height int
	if wantImage {
		var err error
		width, err = queryInt(r, "width", 0)
		if err != nil || width < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad width parameter"))
			return
		}
		height, err = queryInt(r, "height", 0)
		if err != nil || height < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad height parameter"))
			return
		}
	}
	rc.serveJSON(w, r, "", func() (any, error) {
		points, variance, err := rc.a.CuisineMap()
		if err != nil {
			return nil, err
		}
		resp := cuisines.MapResponse{Points: points, VarianceExplained: variance}
		if wantImage {
			rendered, err := rc.a.RenderCuisineMap(width, height)
			if err != nil {
				return nil, err
			}
			resp.Rendered = rendered
		}
		return resp, nil
	})
}

func (s *Server) handleClaims(w http.ResponseWriter, r *http.Request, rc *resource) {
	rc.serveJSON(w, r, "", func() (any, error) {
		return cuisines.ClaimsResponse{
			Claims:  rc.a.Claims(),
			Fits:    rc.a.GeographyFits(),
			AllHold: rc.a.AllClaimsHold(),
		}, nil
	})
}

// handleStats echoes the canonical mining backend the request selected
// alongside the corpus statistics. The miner is output-neutral for the
// analysis (zeroed out of the cache key) but not for this response, so
// it re-enters the render key as extraKey.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, rc *resource) {
	rc.serveJSON(w, r, "|miner="+rc.canon.Miner, func() (any, error) {
		return cuisines.StatsResponse{Stats: rc.a.Stats(), Miner: rc.canon.Miner}, nil
	})
}

// pathRegion parses the {region} path segment, answering 404 itself on
// unknown regions. Membership checks go through Analysis.HasRegion,
// which memoizes a region index — no per-request linear scan.
func pathRegion(w http.ResponseWriter, r *http.Request, a *cuisines.Analysis) (string, bool) {
	region := r.PathValue("region")
	if !a.HasRegion(region) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown region %q", region))
		return "", false
	}
	return region, true
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

// writeJSON marshals before touching the ResponseWriter, so an
// encoding failure (e.g. a non-finite float escaping into a response
// type) becomes a clean 500 instead of a 200 with a truncated body.
// Bodies are compact — the wire format is for machines; humans opt in
// to indentation with ?pretty=1 (writeJSONIndent).
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		log.Printf("server: encoding %T: %v", v, err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}

// writeJSONIndent is the ?pretty=1 path: same value, indented for
// humans, never cached.
func writeJSONIndent(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Printf("server: encoding %T: %v", v, err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, cuisines.ErrorResponse{Error: err.Error()})
}
