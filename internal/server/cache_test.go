package server

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cuisines"
)

// The cache tests use stub runners (the cache never looks inside an
// Analysis), so they exercise keying, eviction and flight-sharing
// without pipeline runs.

func TestCacheLRUEviction(t *testing.T) {
	runsPerScale := map[float64]int{}
	var mu sync.Mutex
	c := NewCache(2, func(_ context.Context, o cuisines.Options) (*cuisines.Analysis, error) {
		mu.Lock()
		runsPerScale[o.Scale]++
		mu.Unlock()
		return nil, nil
	}, nil)
	get := func(scale float64) {
		t.Helper()
		if _, err := c.Get(context.Background(), cuisines.Options{Scale: scale}); err != nil {
			t.Fatal(err)
		}
	}
	get(0.1)
	get(0.2)
	get(0.1) // refresh 0.1: 0.2 becomes the eviction candidate
	get(0.3) // evicts 0.2
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	get(0.1) // still cached
	get(0.2) // evicted: must rerun
	if runsPerScale[0.1] != 1 || runsPerScale[0.2] != 2 || runsPerScale[0.3] != 1 {
		t.Fatalf("runs per scale: %v", runsPerScale)
	}
}

func TestCacheDoesNotCacheFailures(t *testing.T) {
	fail := true
	runs := 0
	c := NewCache(4, func(context.Context, cuisines.Options) (*cuisines.Analysis, error) {
		runs++
		if fail {
			return nil, errors.New("transient")
		}
		return nil, nil
	}, nil)
	if _, err := c.Get(context.Background(), cuisines.Options{}); err == nil {
		t.Fatal("first run should fail")
	}
	if c.Len() != 0 {
		t.Fatalf("failed run cached (len %d)", c.Len())
	}
	fail = false
	if _, err := c.Get(context.Background(), cuisines.Options{}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2 (failure must not be cached)", runs)
	}
	if _, err := c.Get(context.Background(), cuisines.Options{}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("success not cached (runs = %d)", runs)
	}
}

func TestCacheRejectsBadOptions(t *testing.T) {
	c := NewCache(1, func(context.Context, cuisines.Options) (*cuisines.Analysis, error) {
		t.Fatal("runner called for invalid options")
		return nil, nil
	}, nil)
	if _, err := c.Get(context.Background(), cuisines.Options{Linkage: "centroid"}); err == nil {
		t.Fatal("unknown linkage accepted")
	}
}

func TestCacheKeyIgnoresWorkers(t *testing.T) {
	runs := 0
	c := NewCache(4, func(context.Context, cuisines.Options) (*cuisines.Analysis, error) {
		runs++
		return nil, nil
	}, nil)
	for _, w := range []int{0, 1, 8} {
		if _, err := c.Get(context.Background(), cuisines.Options{Workers: w}); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 1 {
		t.Fatalf("worker counts split the cache key (%d runs)", runs)
	}
}

func TestCacheKeyIgnoresMiner(t *testing.T) {
	runs := 0
	var sawMiner string
	c := NewCache(4, func(_ context.Context, o cuisines.Options) (*cuisines.Analysis, error) {
		runs++
		sawMiner = o.Miner
		return nil, nil
	}, nil)
	// Every backend spelling shares one analysis: the output is
	// backend-independent, so keying on it would only waste cache slots.
	for _, m := range []string{"fpgrowth", "", "eclat", "apriori", "FP-Growth"} {
		if _, err := c.Get(context.Background(), cuisines.Options{Miner: m}); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 1 {
		t.Fatalf("miner names split the cache key (%d runs)", runs)
	}
	// The one real run still receives the caller's backend choice.
	if sawMiner != "fpgrowth" {
		t.Fatalf("runner saw miner %q, want the requested %q", sawMiner, "fpgrowth")
	}
	if _, err := c.Get(context.Background(), cuisines.Options{Miner: "bogus"}); err == nil {
		t.Fatal("unknown miner accepted")
	}
}
