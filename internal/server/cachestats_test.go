package server

import (
	"context"
	"fmt"
	"testing"

	"cuisines"
)

// stubAnalysis produces a tiny real analysis for cache-stats tests.
func stubAnalysis(t *testing.T) *cuisines.Analysis {
	t.Helper()
	a, err := cuisines.Run(cuisines.Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCacheStatsEndpointCounters(t *testing.T) {
	a := stubAnalysis(t)
	s := New(Config{
		Base:   cuisines.Options{Scale: testScale},
		Runner: func(context.Context, cuisines.Options) (*cuisines.Analysis, error) { return a, nil },
	})
	for i := 0; i < 3; i++ {
		if code, body, _ := get(t, s, "/v1/table"); code != 200 {
			t.Fatalf("table %d: %d %s", i, code, body)
		}
	}
	code, body, _ := get(t, s, "/v1/cachestats")
	if code != 200 {
		t.Fatalf("cachestats: %d %s", code, body)
	}
	st := decode[cuisines.CacheStatsResponse](t, body)
	if st.Analyses.Misses != 1 || st.Analyses.Hits != 2 {
		t.Errorf("analyses = %+v, want 1 miss and 2 hits", st.Analyses)
	}
	if st.Analyses.Size != 1 || st.Analyses.Capacity != DefaultCacheSize {
		t.Errorf("analyses = %+v, want size 1 capacity %d", st.Analyses, DefaultCacheSize)
	}
	// A custom Runner bypasses the stage graph: stages present but empty.
	if len(st.Stages) != 0 {
		t.Errorf("stages = %+v, want empty with a custom runner", st.Stages)
	}
}

func TestCacheStatsExposesStages(t *testing.T) {
	engine := cuisines.NewEngine(cuisines.EngineConfig{})
	s := New(Config{Base: cuisines.Options{Scale: testScale}, Engine: engine})
	if code, body, _ := get(t, s, "/v1/table"); code != 200 {
		t.Fatalf("table: %d %s", code, body)
	}
	// Same corpus and mining run, different linkage: upstream stages
	// must be hits, not recomputations.
	if code, body, _ := get(t, s, "/v1/table?linkage=ward"); code != 200 {
		t.Fatalf("table?linkage=ward: %d %s", code, body)
	}
	code, body, _ := get(t, s, "/v1/cachestats")
	if code != 200 {
		t.Fatalf("cachestats: %d %s", code, body)
	}
	st := decode[cuisines.CacheStatsResponse](t, body)
	if st.Analyses.Misses != 2 {
		t.Errorf("analyses = %+v, want 2 misses", st.Analyses)
	}
	for _, kind := range []string{"corpus", "mine", "matrices"} {
		got, ok := st.Stages[kind]
		if !ok {
			t.Errorf("stages missing %q: %+v", kind, st.Stages)
			continue
		}
		if got.Computed != 1 {
			t.Errorf("%s computed %d times across a linkage-only change, want 1", kind, got.Computed)
		}
		if got.Hits == 0 {
			t.Errorf("%s has no memory hits after a linkage-only change: %+v", kind, got)
		}
	}
}

// TestWarmRestartServesFromDisk is the daemon-restart acceptance test
// in-process: a second server over the same cache dir serves /v1/table
// without recomputing any pipeline stage.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	opts := cuisines.Options{Scale: testScale}

	s1 := New(Config{Base: opts, Engine: cuisines.NewEngine(cuisines.EngineConfig{CacheDir: dir})})
	code, body1, _ := get(t, s1, "/v1/table")
	if code != 200 {
		t.Fatalf("first boot table: %d %s", code, body1)
	}

	// "Restart": fresh engine and server over the same directory.
	s2 := New(Config{Base: opts, Engine: cuisines.NewEngine(cuisines.EngineConfig{CacheDir: dir})})
	code, body2, _ := get(t, s2, "/v1/table")
	if code != 200 {
		t.Fatalf("second boot table: %d %s", code, body2)
	}
	if string(body1) != string(body2) {
		t.Error("warm-disk /v1/table differs from cold")
	}
	_, statsBody, _ := get(t, s2, "/v1/cachestats")
	st := decode[cuisines.CacheStatsResponse](t, statsBody)
	for kind, sc := range st.Stages {
		if sc.Computed != 0 {
			t.Errorf("stage %s computed %d times on warm restart, want 0 (stats: %+v)", kind, sc.Computed, st.Stages)
		}
		if sc.DiskHits == 0 {
			t.Errorf("stage %s loaded nothing from disk on warm restart: %+v", kind, sc)
		}
	}
	if len(st.Stages) == 0 {
		t.Error("no stage stats on warm restart")
	}
}

func TestCacheStatsCountsEvictions(t *testing.T) {
	a := stubAnalysis(t)
	s := New(Config{
		Base:      cuisines.Options{Scale: testScale},
		CacheSize: 1,
		Runner:    func(context.Context, cuisines.Options) (*cuisines.Analysis, error) { return a, nil },
	})
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("/v1/table?seed=%d", i+1)
		if code, body, _ := get(t, s, path); code != 200 {
			t.Fatalf("%s: %d %s", path, code, body)
		}
	}
	_, body, _ := get(t, s, "/v1/cachestats")
	st := decode[cuisines.CacheStatsResponse](t, body)
	if st.Analyses.Evictions != 2 || st.Analyses.Misses != 3 {
		t.Errorf("analyses = %+v, want 3 misses and 2 evictions", st.Analyses)
	}
}
