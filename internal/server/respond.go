package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"cuisines"
)

// This file is the serving fast path (DESIGN.md §14): every cacheable
// /v1 GET funnels through resource.serveJSON / serveBytes, which
// memoize the derive+marshal work in the rendered-response cache and
// speak full HTTP caching semantics — strong ETags, If-None-Match →
// 304, Vary: Accept-Encoding, and once-per-entry gzip. A warm request
// costs one cache lookup and one Write.

// CacheControl is sent with every cacheable /v1 response: clients and
// intermediaries may store bodies but must revalidate before reuse.
// Revalidation is nearly free here (a 304 carries no body), and
// no-cache keeps the daemon in charge when a future corpus epoch
// changes what a key serves (ROADMAP: streaming corpus).
const CacheControl = "public, no-cache"

// resource is an endpoint request with its analysis resolved: the
// handler derives response values from a, and serve* memoizes the
// rendered bytes under the analysis cache key (owner), so eviction of
// the analysis drops its renders too.
type resource struct {
	s      *Server
	a      *cuisines.Analysis
	owner  string           // stable string form of the analysis cache key
	canon  cuisines.Options // full canonical options (stats echoes Miner)
	pretty bool             // ?pretty=1: human-readable, bypasses the cache
}

// httpError carries a response status through a render build closure.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// failWith wraps err so serve* answers it with the given status
// instead of the default 500.
func failWith(status int, err error) error { return &httpError{status: status, err: err} }

// writeBuildError maps a render-build failure onto a response: an
// explicit status if the closure attached one, 503 for a waiter whose
// context expired mid-build, 500 otherwise.
func (s *Server) writeBuildError(w http.ResponseWriter, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		writeError(w, he.status, he.err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// serveJSON renders v = build() as compact JSON through the render
// cache. extraKey distinguishes responses that depend on more than the
// path and content query parameters (only /v1/stats' miner echo today).
// ?pretty=1 bypasses the cache entirely and indents for humans.
func (rc *resource) serveJSON(w http.ResponseWriter, r *http.Request, extraKey string, build func() (any, error)) {
	if rc.pretty {
		v, err := build()
		if err != nil {
			rc.s.writeBuildError(w, err)
			return
		}
		writeJSONIndent(w, http.StatusOK, v)
		return
	}
	rc.serveBytes(w, r, "application/json; charset=utf-8", extraKey, func() ([]byte, error) {
		v, err := build()
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("encoding %T: %w", v, err)
		}
		return append(b, '\n'), nil
	})
}

// serveBytes is the cached byte path shared by JSON and plain-text
// endpoints: single-flighted render, strong ETag, conditional 304,
// negotiated once-per-entry gzip.
func (rc *resource) serveBytes(w http.ResponseWriter, r *http.Request, contentType, extraKey string, build func() ([]byte, error)) {
	key := rc.owner + "|" + r.URL.EscapedPath() + "|" + canonicalQuery(r.URL.Query()) + extraKey
	e, err := rc.s.renders.Get(r.Context(), rc.owner, key, build)
	if err != nil {
		rc.s.writeBuildError(w, err)
		return
	}
	h := w.Header()
	h.Set("ETag", e.ETag())
	h.Set("Cache-Control", CacheControl)
	h.Set("Vary", "Accept-Encoding")
	if etagMatch(r.Header.Get("If-None-Match"), e.ETag()) {
		rc.s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body := e.Body()
	h.Set("Content-Type", contentType)
	if acceptsGzip(r) {
		if gz := e.Gzip(); gz != nil {
			h.Set("Content-Encoding", "gzip")
			body = gz
		}
	}
	if len(body) < len(e.Body()) {
		rc.s.bytesGzip.Add(uint64(len(body)))
	} else {
		rc.s.bytesIdentity.Add(uint64(len(body)))
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// renderKeyDrop lists query parameters that must not fragment render
// keys: the analysis options are already captured by the owner (the
// analysis cache key), miner is canonicalized into extraKey where it
// matters (/v1/stats), and pretty bypasses the cache entirely.
var renderKeyDrop = map[string]bool{
	"seed": true, "scale": true, "support": true, "linkage": true,
	"miner": true, "pretty": true,
}

// canonicalQuery renders the content-bearing query parameters in a
// canonical order, so ?a=1&b=2 and ?b=2&a=1 share one render entry.
func canonicalQuery(q url.Values) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		if !renderKeyDrop[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		vs := q[k]
		if len(vs) > 1 {
			vs = append([]string(nil), vs...)
			sort.Strings(vs)
		}
		for _, v := range vs {
			b.WriteByte('&')
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(v))
		}
	}
	return b.String()
}

// etagMatch implements If-None-Match per RFC 7232 §3.2: weak
// comparison (a W/ prefix on either side is ignored), a comma-joined
// candidate list, and "*" matching any current representation.
func etagMatch(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	for _, tok := range strings.Split(header, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "*" || strings.TrimPrefix(tok, "W/") == etag {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the request negotiates gzip: a gzip (or
// *) member of Accept-Encoding whose q-value is not zero.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		coding = strings.TrimSpace(coding)
		if coding != "gzip" && coding != "x-gzip" && coding != "*" {
			continue
		}
		q := strings.ReplaceAll(strings.TrimSpace(params), " ", "")
		if strings.HasPrefix(q, "q=0") && !strings.HasPrefix(q, "q=0.") {
			continue
		}
		if strings.HasPrefix(q, "q=0.") && strings.Trim(q[4:], "0") == "" {
			continue
		}
		return true
	}
	return false
}

// isPretty reports the ?pretty=1 opt-in.
func isPretty(r *http.Request) bool {
	switch r.URL.Query().Get("pretty") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// keyString renders an analysis cache key to the stable string form
// shared by render-entry owners and the cluster routing key.
func keyString(key cuisines.Options) string { return fmt.Sprintf("%+v", key) }
