// Package server exposes the cuisines Analysis facade as a JSON HTTP
// API backed by an LRU analysis cache with single-flight deduplication.
// The cuisined daemon (cmd/cuisined) is a thin wrapper around it; the
// root package's Client speaks its wire format. See DESIGN.md §7.
package server

import (
	"container/list"
	"sync"

	"cuisines"
)

// Runner is the pipeline entry point the cache invokes on a miss. Tests
// substitute a counting or stubbed runner; the daemon uses cuisines.Run.
type Runner func(cuisines.Options) (*cuisines.Analysis, error)

// Cache memoizes full pipeline runs keyed by canonicalized
// cuisines.Options (seed, scale, min-support, linkage — never Workers
// or Miner, which cannot change the output). A fixed number of
// analyses is kept
// with LRU eviction, and lookups are deduplicated single-flight style:
// any number of concurrent Gets for the same key share exactly one
// pipeline run.
//
// The cache sits in front of the per-stage artifact store: an analysis
// miss here still reuses every upstream stage artifact the engine
// already holds (same corpus and mining run, different linkage), so an
// eviction or a near-miss costs only the stages that actually differ.
type Cache struct {
	run Runner
	max int

	mu      sync.Mutex
	entries map[cuisines.Options]*entry
	lru     *list.List // of *entry; front = most recently used

	hits          uint64
	misses        uint64
	evictions     uint64
	inFlightJoins uint64
}

// entry is one cached (or in-flight) analysis. ready is closed once a
// and err are final; waiters block on it outside the cache lock, so a
// slow pipeline run never stalls hits on other keys. done distinguishes
// a finished entry from an in-flight one under the cache lock (for the
// hit vs in-flight-join counters).
type entry struct {
	key   cuisines.Options
	elem  *list.Element
	ready chan struct{}
	done  bool
	a     *cuisines.Analysis
	err   error
}

// DefaultCacheSize bounds distinct analyses kept when the caller passes
// size <= 0. Analyses are large (the full corpus plus every figure), so
// the default stays small.
const DefaultCacheSize = 8

// NewCache returns a Cache holding up to size analyses, running misses
// through run (nil means cuisines.Run).
func NewCache(size int, run Runner) *Cache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	if run == nil {
		run = cuisines.Run
	}
	return &Cache{
		run:     run,
		max:     size,
		entries: make(map[cuisines.Options]*entry),
		lru:     list.New(),
	}
}

// Key returns the cache key for opts: the canonical form with Workers
// and Miner zeroed (the two output-neutral knobs — requests differing
// only in them share one analysis). The error is the canonicalization
// error (unknown linkage or mining backend).
func Key(opts cuisines.Options) (cuisines.Options, error) {
	canon, err := opts.Canonical()
	if err != nil {
		return cuisines.Options{}, err
	}
	canon.Workers = 0
	canon.Miner = ""
	return canon, nil
}

// Get returns the analysis for opts, computing it at most once per key
// no matter how many callers arrive concurrently. Failed runs are
// reported to every waiter of that flight but never cached, so a later
// request retries.
func (c *Cache) Get(opts cuisines.Options) (*cuisines.Analysis, error) {
	key, err := Key(opts)
	if err != nil {
		return nil, err
	}
	runOpts := key
	runOpts.Workers = opts.Workers
	runOpts.Miner = opts.Miner

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.done {
			c.hits++
		} else {
			c.inFlightJoins++
		}
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return e.a, e.err
	}
	c.misses++
	e := &entry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for c.lru.Len() > c.max {
		// Evicting an in-flight entry is safe: its waiters hold the
		// entry itself and still get the shared result.
		back := c.lru.Back()
		ev := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, ev.key)
		c.evictions++
	}
	c.mu.Unlock()

	e.a, e.err = c.run(runOpts)
	c.mu.Lock()
	e.done = true
	if e.err != nil && c.entries[key] == e { // failed: forget, allow retry
		c.lru.Remove(e.elem)
		delete(c.entries, key)
	}
	c.mu.Unlock()
	close(e.ready)
	return e.a, e.err
}

// Stats returns the cache's counters and current occupancy.
func (c *Cache) Stats() cuisines.AnalysisCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cuisines.AnalysisCacheStats{
		Size:          c.lru.Len(),
		Capacity:      c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		InFlightJoins: c.inFlightJoins,
	}
}

// Len reports how many analyses are cached or in flight.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
