// Package server exposes the cuisines Analysis facade as a JSON HTTP
// API backed by an LRU analysis cache with single-flight deduplication,
// bounded admission in front of the pipeline, request timeouts and a
// Prometheus-text /metrics endpoint. The cuisined daemon (cmd/cuisined)
// is a thin wrapper around it; the root package's Client speaks its
// wire format. See DESIGN.md §7 and §12.
package server

import (
	"container/list"
	"context"
	"sync"

	"cuisines"
)

// Runner is the pipeline entry point the cache invokes on a miss. The
// context is the flight's context, not any single request's: it is
// cancelled only when every request waiting on the run has gone away,
// at which point the pipeline stops at the next stage boundary. Tests
// substitute counting or stubbed runners; the daemon uses
// Engine.RunContext.
type Runner func(context.Context, cuisines.Options) (*cuisines.Analysis, error)

// Cache memoizes full pipeline runs keyed by canonicalized
// cuisines.Options (seed, scale, min-support, linkage — never Workers
// or Miner, which cannot change the output). A fixed number of
// analyses is kept with LRU eviction, and lookups are deduplicated
// single-flight style: any number of concurrent Gets for the same key
// share exactly one pipeline run.
//
// Each flight runs on its own goroutine under a context detached from
// the request that started it, so the first caller hanging up never
// kills a run other requests have joined; the flight is cancelled only
// when its last waiter leaves. Misses pass through the admission gate
// (when one is configured) before a flight is created, so a saturated
// pipeline rejects new work instead of accumulating goroutines.
//
// The cache sits in front of the per-stage artifact store: an analysis
// miss here still reuses every upstream stage artifact the engine
// already holds (same corpus and mining run, different linkage), so an
// eviction or a near-miss costs only the stages that actually differ.
type Cache struct {
	run  Runner
	gate *Gate // nil = unbounded admission
	max  int

	// onEvict, when non-nil, is called (outside the cache lock) with
	// each evicted key. The server uses it to drop the key's rendered
	// responses, tying render lifetime to analysis lifetime. Set it
	// before serving; it is read without synchronization.
	onEvict func(key cuisines.Options)

	mu      sync.Mutex
	entries map[cuisines.Options]*entry
	lru     *list.List // of *entry; front = most recently used

	hits          uint64
	misses        uint64
	evictions     uint64
	inFlightJoins uint64
}

// entry is one cached (or in-flight) analysis. ready is closed once a
// and err are final; waiters block on it outside the cache lock, so a
// slow pipeline run never stalls hits on other keys. done distinguishes
// a finished entry from an in-flight one under the cache lock (for the
// hit vs in-flight-join counters). waiters counts requests currently
// blocked on this flight; when the last one abandons the wait (its own
// context expired) cancel is invoked and the pipeline run halts at its
// next stage boundary.
type entry struct {
	key     cuisines.Options
	elem    *list.Element
	ready   chan struct{}
	done    bool
	waiters int
	cancel  context.CancelFunc
	a       *cuisines.Analysis
	err     error
}

// DefaultCacheSize bounds distinct analyses kept when the caller passes
// size <= 0. Analyses are large (the full corpus plus every figure), so
// the default stays small.
const DefaultCacheSize = 8

// NewCache returns a Cache holding up to size analyses, running misses
// through run (nil means cuisines.Run via a private engine). A non-nil
// gate bounds how many misses may run or queue concurrently.
func NewCache(size int, run Runner, gate *Gate) *Cache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	if run == nil {
		run = func(ctx context.Context, opts cuisines.Options) (*cuisines.Analysis, error) {
			return cuisines.NewEngine(cuisines.EngineConfig{}).RunContext(ctx, opts)
		}
	}
	return &Cache{
		run:     run,
		gate:    gate,
		max:     size,
		entries: make(map[cuisines.Options]*entry),
		lru:     list.New(),
	}
}

// Key returns the cache key for opts: the canonical form with Workers
// and Miner zeroed (the two output-neutral knobs — requests differing
// only in them share one analysis). The error is the canonicalization
// error (unknown linkage or mining backend).
func Key(opts cuisines.Options) (cuisines.Options, error) {
	canon, err := opts.Canonical()
	if err != nil {
		return cuisines.Options{}, err
	}
	canon.Workers = 0
	canon.Miner = ""
	return canon, nil
}

// Get returns the analysis for opts, computing it at most once per key
// no matter how many callers arrive concurrently. Failed runs are
// reported to every waiter of that flight but never cached, so a later
// request retries. ctx governs only this caller's wait (and admission
// queueing): when it expires the caller leaves with ctx's error, and
// the shared run is cancelled only if no other waiter remains. A miss
// that cannot be admitted returns ErrSaturated.
func (c *Cache) Get(ctx context.Context, opts cuisines.Options) (*cuisines.Analysis, error) {
	key, err := Key(opts)
	if err != nil {
		return nil, err
	}
	runOpts := key
	runOpts.Workers = opts.Workers
	runOpts.Miner = opts.Miner

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.joinLocked(e)
		c.mu.Unlock()
		return c.await(ctx, e)
	}
	c.mu.Unlock()

	// A miss means a pipeline run: pass the admission gate (bounded
	// queue) before creating the flight. Joins and hits above stay
	// gate-free — they cost nothing.
	release := func() {}
	if c.gate != nil {
		release, err = c.gate.Acquire(ctx)
		if err != nil {
			return nil, err
		}
	}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		// Someone created the flight while we queued; give the slot
		// back and join them.
		c.joinLocked(e)
		c.mu.Unlock()
		release()
		return c.await(ctx, e)
	}
	c.misses++
	fctx, cancel := context.WithCancel(context.Background())
	e := &entry{key: key, ready: make(chan struct{}), waiters: 1, cancel: cancel}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	var dropped []cuisines.Options
	for c.lru.Len() > c.max {
		// Evicting an in-flight entry is safe: its waiters hold the
		// entry itself and still get the shared result.
		back := c.lru.Back()
		ev := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, ev.key)
		c.evictions++
		dropped = append(dropped, ev.key)
	}
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, k := range dropped {
			c.onEvict(k)
		}
	}

	go func() {
		defer release()
		a, err := c.run(fctx, runOpts)
		cancel()
		c.mu.Lock()
		e.a, e.err = a, err
		e.done = true
		if err != nil && c.entries[key] == e { // failed: forget, allow retry
			c.lru.Remove(e.elem)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		close(e.ready)
	}()
	return c.await(ctx, e)
}

// joinLocked registers the caller on an existing entry. Caller holds mu.
func (c *Cache) joinLocked(e *entry) {
	if e.done {
		c.hits++
	} else {
		c.inFlightJoins++
		e.waiters++
	}
	c.lru.MoveToFront(e.elem)
}

// await blocks until the flight completes or ctx expires. A waiter that
// leaves early decrements the flight's refcount; the last one out
// cancels the run.
func (c *Cache) await(ctx context.Context, e *entry) (*cuisines.Analysis, error) {
	select {
	case <-e.ready:
		return e.a, e.err
	case <-ctx.Done():
		c.mu.Lock()
		if !e.done {
			e.waiters--
			if e.waiters == 0 {
				e.cancel()
			}
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Stats returns the cache's counters and current occupancy.
func (c *Cache) Stats() cuisines.AnalysisCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cuisines.AnalysisCacheStats{
		Size:          c.lru.Len(),
		Capacity:      c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		InFlightJoins: c.inFlightJoins,
	}
}

// Len reports how many analyses are cached or in flight.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
