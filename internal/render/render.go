// Package render implements the rendered-response cache: the last
// serving-layer transformation — deriving a response value from an
// Analysis and marshaling it to bytes — memoized so a warm request
// costs one lookup and one Write (DESIGN.md §14).
//
// Every /v1 response body is a pure, deterministic function of the
// canonicalized analysis options plus the request's own parameters
// (the invariant cuisinelint enforces at compile time and the cluster
// layer relies on for byte-identical serving). That purity makes the
// rendered bytes cacheable forever and their strong ETags fleet-stable:
// every node computes the same sha256 for the same key, so validators
// issued by one node revalidate correctly against any other.
//
// Each entry holds the compact identity body, its strong ETag (the
// sha256 of the bytes, ready-quoted), and a lazily-built, built-once
// gzip variant. Entries are single-flighted per key — N concurrent
// requests for a cold render produce exactly one derive+marshal — and
// the cache is byte-bounded with LRU eviction. Entries belong to an
// owner (the analysis cache key); when the analysis LRU evicts an
// analysis, DropOwner discards its renders in the same breath, so the
// render cache can never serve bytes for an analysis the daemon no
// longer holds.
//
// The package is deliberately clock-free and goroutine-free: LRU
// recency is pure access order, and the first caller builds the entry
// on its own goroutine while later callers wait on a ready channel.
// cuisinelint's wallclock analyzer covers this package (see
// internal/lint, clusterPkgs) so eviction logic can never silently
// grow an ambient time.Now.
package render

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// DefaultMaxBytes bounds the cache when the caller passes maxBytes <=
// 0: enough for thousands of compact endpoint bodies, small next to
// one cached Analysis.
const DefaultMaxBytes = 32 << 20

// gzipMinBytes is the smallest body worth compressing: below it the
// gzip header overhead rivals the savings and the variant would only
// burn cache budget.
const gzipMinBytes = 256

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries       int
	Bytes         int64
	MaxBytes      int64
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	InFlightJoins uint64
	GzipVariants  uint64
}

// Cache is the rendered-response cache. All methods are safe for
// concurrent use.
type Cache struct {
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*Entry
	lru     *list.List                 // of *Entry; front = most recently used
	owners  map[string]map[string]bool // owner → set of entry keys
	bytes   int64

	hits, misses, evictions, joins, gzipVariants uint64
}

// Entry is one cached render. Body and ETag are immutable once ready;
// an evicted Entry still held by an in-flight request stays valid.
type Entry struct {
	c     *Cache
	key   string
	owner string
	elem  *list.Element

	ready chan struct{} // closed once body/etag/err are final
	err   error

	body []byte
	etag string // strong validator, ready-quoted: "\"<sha256-hex>\""
	size int64  // bytes accounted to the cache (body, later +gzip); guarded by c.mu

	gzOnce sync.Once
	gz     []byte // nil when gzip would not help (tiny or incompressible)
}

// New returns a Cache bounded to maxBytes of body+gzip bytes (<= 0
// means DefaultMaxBytes).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		entries:  make(map[string]*Entry),
		lru:      list.New(),
		owners:   make(map[string]map[string]bool),
	}
}

// Get returns the entry for key, building it at most once no matter how
// many callers arrive concurrently: the first caller runs build on its
// own goroutine, the rest wait for the result (or their context). A
// failed build is reported to every waiter and never cached. owner
// scopes the entry's lifetime — DropOwner(owner) discards it.
func (c *Cache) Get(ctx context.Context, owner, key string, build func() ([]byte, error)) (*Entry, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			c.hits++
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			return e, e.err
		default:
			c.joins++
			c.mu.Unlock()
			select {
			case <-e.ready:
				return e, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	c.misses++
	e := &Entry{c: c, key: key, owner: owner, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	set := c.owners[owner]
	if set == nil {
		set = make(map[string]bool)
		c.owners[owner] = set
	}
	set[key] = true
	c.mu.Unlock()

	body, err := build()
	c.mu.Lock()
	if err != nil {
		e.err = err
		c.removeLocked(e)
	} else {
		e.body = body
		sum := sha256.Sum256(body)
		e.etag = `"` + hex.EncodeToString(sum[:]) + `"`
		if c.entries[key] == e { // not dropped mid-build
			e.size = int64(len(body))
			c.bytes += e.size
			c.evictLocked()
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return e, err
}

// evictLocked drops least-recently-used ready entries until the byte
// budget holds. In-flight entries are skipped — their sizes are not
// yet accounted and their builders hold references anyway. The newest
// entry is never evicted: a single body larger than the whole budget
// is served once and evicted by the next insert.
func (c *Cache) evictLocked() {
	el := c.lru.Back()
	for c.bytes > c.maxBytes && el != nil && el != c.lru.Front() {
		prev := el.Prev()
		e := el.Value.(*Entry)
		select {
		case <-e.ready:
			c.removeLocked(e)
			c.evictions++
		default: // in flight; skip
		}
		el = prev
	}
}

// removeLocked unlinks e from the map, the LRU list, the owner index
// and the byte account. Idempotent.
func (c *Cache) removeLocked(e *Entry) {
	if c.entries[e.key] != e {
		return
	}
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.bytes -= e.size
	if set := c.owners[e.owner]; set != nil {
		delete(set, e.key)
		if len(set) == 0 {
			delete(c.owners, e.owner)
		}
	}
}

// DropOwner discards every entry belonging to owner — called by the
// serving layer when the owning analysis is evicted, so render
// lifetime can never exceed analysis lifetime. In-flight entries are
// dropped from the index too: their builders still complete and answer
// their waiters, but the result is not retained.
func (c *Cache) DropOwner(owner string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.owners[owner]
	for key := range set {
		if e := c.entries[key]; e != nil {
			delete(c.entries, key)
			c.lru.Remove(e.elem)
			c.bytes -= e.size
			c.evictions++
		}
	}
	delete(c.owners, owner)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       c.lru.Len(),
		Bytes:         c.bytes,
		MaxBytes:      c.maxBytes,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		InFlightJoins: c.joins,
		GzipVariants:  c.gzipVariants,
	}
}

// Body returns the identity (uncompressed, compact) bytes.
func (e *Entry) Body() []byte { return e.body }

// ETag returns the strong validator for this render: the sha256 of the
// identity bytes, already quoted for the header. The same ETag covers
// the gzip variant — both encodings carry identical content, and the
// determinism invariant makes the value byte-identical fleet-wide.
func (e *Entry) ETag() string { return e.etag }

// Gzip returns the compressed variant, building it exactly once per
// entry — compression cost is paid on the first gzip-accepting request
// and never again. It returns nil when compression would not pay: tiny
// bodies and bodies gzip cannot shrink are served identity-only.
func (e *Entry) Gzip() []byte {
	e.gzOnce.Do(func() {
		if len(e.body) < gzipMinBytes {
			return
		}
		var buf bytes.Buffer
		zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
		if err != nil {
			return
		}
		if _, err := zw.Write(e.body); err != nil {
			return
		}
		if err := zw.Close(); err != nil {
			return
		}
		if buf.Len() >= len(e.body) {
			return
		}
		e.gz = buf.Bytes()
		c := e.c
		c.mu.Lock()
		c.gzipVariants++
		if c.entries[e.key] == e {
			e.size += int64(len(e.gz))
			c.bytes += int64(len(e.gz))
			c.evictLocked()
		}
		c.mu.Unlock()
	})
	return e.gz
}
