package render

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func ctx() context.Context { return context.Background() }

func TestSingleFlight(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	const n = 32
	results := make([]*Entry, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = c.Get(ctx(), "o", "k", func() ([]byte, error) {
				builds.Add(1)
				return []byte(`{"v":1}`), nil
			})
		}(i)
	}
	close(start)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("%d concurrent gets ran %d builds, want 1", n, got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("get %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("get %d returned a different entry", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.InFlightJoins != n-1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFailedBuildNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, err := c.Get(ctx(), "o", "k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	var builds int
	e, err := c.Get(ctx(), "o", "k", func() ([]byte, error) {
		builds++
		return []byte("ok body"), nil
	})
	if err != nil || builds != 1 {
		t.Fatalf("retry after failure: err=%v builds=%d", err, builds)
	}
	if string(e.Body()) != "ok body" {
		t.Fatalf("body %q", e.Body())
	}
}

func TestETagIsQuotedSHA256(t *testing.T) {
	c := New(0)
	e, err := c.Get(ctx(), "o", "k", func() ([]byte, error) { return []byte("hello"), nil })
	if err != nil {
		t.Fatal(err)
	}
	// sha256("hello")
	want := `"2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824"`
	if e.ETag() != want {
		t.Fatalf("etag %s, want %s", e.ETag(), want)
	}
}

func TestByteBoundedLRUEviction(t *testing.T) {
	body := strings.Repeat("x", 1024)
	c := New(3 * 1024) // room for three bodies
	for i := 0; i < 5; i++ {
		if _, err := c.Get(ctx(), "o", fmt.Sprintf("k%d", i), func() ([]byte, error) {
			return []byte(body), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Bytes != 3*1024 || st.Evictions != 2 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	// k0 and k1 were evicted; k4 (most recent) was not.
	rebuilt := false
	if _, err := c.Get(ctx(), "o", "k4", func() ([]byte, error) {
		rebuilt = true
		return []byte(body), nil
	}); err != nil || rebuilt {
		t.Fatalf("k4 evicted (rebuilt=%v err=%v), want retained", rebuilt, err)
	}
	if _, err := c.Get(ctx(), "o", "k0", func() ([]byte, error) {
		rebuilt = true
		return []byte(body), nil
	}); err != nil || !rebuilt {
		t.Fatalf("k0 not rebuilt after eviction (err=%v)", err)
	}
}

func TestOversizedBodyServedOnce(t *testing.T) {
	c := New(10)
	big := strings.Repeat("y", 100)
	e, err := c.Get(ctx(), "o", "big", func() ([]byte, error) { return []byte(big), nil })
	if err != nil || string(e.Body()) != big {
		t.Fatalf("oversized body not served: %v", err)
	}
	// The next insert pushes it out.
	if _, err := c.Get(ctx(), "o", "small", func() ([]byte, error) { return []byte("z"), nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Bytes > 10 {
		t.Fatalf("budget not restored: %+v", st)
	}
}

func TestDropOwner(t *testing.T) {
	c := New(0)
	for _, k := range []string{"a1", "a2"} {
		if _, err := c.Get(ctx(), "A", k, func() ([]byte, error) { return []byte("aaaa"), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get(ctx(), "B", "b1", func() ([]byte, error) { return []byte("bbbb"), nil }); err != nil {
		t.Fatal(err)
	}
	c.DropOwner("A")
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 4 || st.Evictions != 2 {
		t.Fatalf("after DropOwner: %+v", st)
	}
	// B survives, A rebuilds.
	rebuilt := false
	if _, err := c.Get(ctx(), "B", "b1", func() ([]byte, error) { rebuilt = true; return nil, nil }); err != nil || rebuilt {
		t.Fatalf("B dropped with A (rebuilt=%v)", rebuilt)
	}
	if _, err := c.Get(ctx(), "A", "a1", func() ([]byte, error) { rebuilt = true; return []byte("aaaa"), nil }); err != nil || !rebuilt {
		t.Fatal("A's entries survived DropOwner")
	}
}

func TestGzipBuiltOnceAndSkipsTinyBodies(t *testing.T) {
	c := New(0)
	tiny, err := c.Get(ctx(), "o", "tiny", func() ([]byte, error) { return []byte(`{"a":1}`), nil })
	if err != nil {
		t.Fatal(err)
	}
	if gz := tiny.Gzip(); gz != nil {
		t.Fatalf("tiny body got a gzip variant (%d bytes)", len(gz))
	}
	body := []byte(strings.Repeat(`{"region":"Japanese","support":0.25},`, 200))
	e, err := c.Get(ctx(), "o", "big", func() ([]byte, error) { return body, nil })
	if err != nil {
		t.Fatal(err)
	}
	gz1 := e.Gzip()
	gz2 := e.Gzip()
	if gz1 == nil || &gz1[0] != &gz2[0] {
		t.Fatal("gzip variant not built exactly once")
	}
	if len(gz1) >= len(body) {
		t.Fatalf("gzip variant (%d) not smaller than body (%d)", len(gz1), len(body))
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz1))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(decoded, body) {
		t.Fatalf("gzip round-trip mismatch (err=%v)", err)
	}
	st := c.Stats()
	if st.GzipVariants != 1 {
		t.Fatalf("gzip variants = %d, want 1", st.GzipVariants)
	}
	if st.Bytes != int64(len(tiny.Body())+len(body)+len(gz1)) {
		t.Fatalf("bytes accounting off: %+v", st)
	}
}

func TestWaiterContextCancellation(t *testing.T) {
	c := New(0)
	release := make(chan struct{})
	go func() {
		_, _ = c.Get(ctx(), "o", "slow", func() ([]byte, error) {
			<-release
			return []byte("done"), nil
		})
	}()
	// Wait for the flight to exist.
	for {
		c.mu.Lock()
		_, ok := c.entries["slow"]
		c.mu.Unlock()
		if ok {
			break
		}
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(cctx, "o", "slow", func() ([]byte, error) { return nil, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	close(release)
}

// TestConcurrentMixedTraffic exercises get/gzip/drop concurrently under
// -race: the LRU, the owner index and the byte account must stay
// coherent with gzip variants landing mid-flight.
func TestConcurrentMixedTraffic(t *testing.T) {
	c := New(64 << 10)
	body := strings.Repeat("payload ", 200)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				owner := fmt.Sprintf("o%d", i%3)
				key := fmt.Sprintf("%s|k%d", owner, i%17)
				e, err := c.Get(ctx(), owner, key, func() ([]byte, error) { return []byte(body), nil })
				if err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					e.Gzip()
				}
				if g == 0 && i%50 == 49 {
					c.DropOwner(owner)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 || st.Bytes > st.MaxBytes+int64(len(body)) {
		t.Fatalf("byte account out of range: %+v", st)
	}
}
