// Package apriori implements the level-wise Apriori frequent-itemset
// miner of Agrawal & Srikant (VLDB 1994), reference [1] of the paper. It
// serves two roles: the classic baseline against which FP-Growth's
// efficiency claim is benchmarked, and an independent oracle for
// property tests (both miners must produce identical pattern sets).
package apriori

import (
	"sort"

	"cuisines/internal/itemset"
)

// Options tunes a mining run.
type Options struct {
	// MaxLen, if positive, bounds the size of mined itemsets.
	MaxLen int
}

// Mine returns all itemsets with relative support >= minSupport (fraction
// in (0,1], or absolute count if > 1), in canonical report order.
func Mine(d *itemset.Dataset, minSupport float64) []itemset.Pattern {
	return MineWithOptions(d, minSupport, Options{})
}

// MineWithOptions is Mine with explicit options.
func MineWithOptions(d *itemset.Dataset, minSupport float64, opts Options) []itemset.Pattern {
	if d.Len() == 0 {
		return nil
	}
	minCount := d.MinCount(minSupport)
	total := float64(d.Len())

	// Item id assignment over frequent 1-itemsets, in canonical item
	// order so generated candidates are id-sorted.
	counts := d.ItemCounts()
	var freq []itemset.Item
	for it, n := range counts {
		if n >= minCount {
			freq = append(freq, it)
		}
	}
	sort.Slice(freq, func(i, j int) bool { return freq[i].Less(freq[j]) })
	idOf := make(map[itemset.Item]int, len(freq))
	for i, it := range freq {
		idOf[it] = i
	}

	// Transactions projected to sorted frequent id lists.
	txns := make([][]int, 0, d.Len())
	for _, t := range d.Transactions() {
		var ids []int
		for _, it := range t.Items.Items() {
			if id, ok := idOf[it]; ok {
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			sort.Ints(ids)
			txns = append(txns, ids)
		}
	}

	var out []itemset.Pattern
	emit := func(ids []int, count int) {
		items := make([]itemset.Item, len(ids))
		for i, id := range ids {
			items[i] = freq[id]
		}
		out = append(out, itemset.Pattern{
			Items:   itemset.NewSet(items...),
			Count:   count,
			Support: float64(count) / total,
		})
	}

	// L1.
	current := make([][]int, 0, len(freq))
	for id, it := range freq {
		c := counts[it]
		emit([]int{id}, c)
		current = append(current, []int{id})
	}

	k := 1
	for len(current) > 0 {
		k++
		if opts.MaxLen > 0 && k > opts.MaxLen {
			break
		}
		candidates := generateCandidates(current)
		if len(candidates) == 0 {
			break
		}
		// Count candidates by subset testing against each transaction.
		candCounts := make([]int, len(candidates))
		for _, txn := range txns {
			if len(txn) < k {
				continue
			}
			for ci, cand := range candidates {
				if containsSorted(txn, cand) {
					candCounts[ci]++
				}
			}
		}
		var next [][]int
		for ci, cand := range candidates {
			if candCounts[ci] >= minCount {
				emit(cand, candCounts[ci])
				next = append(next, cand)
			}
		}
		current = next
	}

	itemset.SortPatterns(out)
	return out
}

// generateCandidates performs the Apriori join + prune step on the sorted
// frequent (k-1)-itemsets: join pairs sharing the first k-2 ids, then
// discard candidates with an infrequent (k-1)-subset.
func generateCandidates(frequent [][]int) [][]int {
	if len(frequent) == 0 {
		return nil
	}
	k1 := len(frequent[0])
	// Lexicographic order is required for the prefix join.
	sort.Slice(frequent, func(i, j int) bool { return lessInts(frequent[i], frequent[j]) })
	inPrev := make(map[string]bool, len(frequent))
	for _, f := range frequent {
		inPrev[intsKey(f)] = true
	}

	var cands [][]int
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i], frequent[j]
			if !samePrefix(a, b, k1-1) {
				break // sorted, so no later j can share the prefix
			}
			cand := make([]int, k1+1)
			copy(cand, a)
			cand[k1] = b[k1-1]
			if prune(cand, inPrev) {
				cands = append(cands, cand)
			}
		}
	}
	return cands
}

// prune checks that all (k-1)-subsets of cand are frequent.
func prune(cand []int, inPrev map[string]bool) bool {
	if len(cand) <= 2 {
		return true // both 1-subsets are frequent by construction
	}
	sub := make([]int, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, v := range cand {
			if i != skip {
				sub = append(sub, v)
			}
		}
		if !inPrev[intsKey(sub)] {
			return false
		}
	}
	return true
}

func samePrefix(a, b []int, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessInts(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func intsKey(ids []int) string {
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(b)
}

// containsSorted reports whether sorted slice txn contains all of sorted
// slice sub.
func containsSorted(txn, sub []int) bool {
	i := 0
	for _, want := range sub {
		for i < len(txn) && txn[i] < want {
			i++
		}
		if i >= len(txn) || txn[i] != want {
			return false
		}
		i++
	}
	return true
}
