// Package apriori implements the level-wise Apriori frequent-itemset
// miner of Agrawal & Srikant (VLDB 1994), reference [1] of the paper. It
// serves two roles: the classic baseline against which FP-Growth's
// efficiency claim is benchmarked, and an independent oracle for the
// miner-agreement property tests (all backends must produce identical
// pattern sets). Candidate counting runs against the shared bitset index
// of internal/itemset: each candidate's support is the popcount of the
// word-wise AND of its members' transaction bitmaps, replacing the
// classic per-transaction subset scan.
package apriori

import (
	"sort"

	"cuisines/internal/itemset"
)

// Options tunes a mining run.
type Options struct {
	// MaxLen, if positive, bounds the size of mined itemsets.
	MaxLen int
}

// Mine returns all itemsets with relative support >= minSupport (fraction
// in (0,1], or absolute count if > 1), in canonical report order.
func Mine(d *itemset.Dataset, minSupport float64) []itemset.Pattern {
	return MineIndex(itemset.NewIndex(d), minSupport)
}

// MineWithOptions is Mine with explicit options.
func MineWithOptions(d *itemset.Dataset, minSupport float64, opts Options) []itemset.Pattern {
	return MineIndexWithOptions(itemset.NewIndex(d), minSupport, opts)
}

// MineIndex mines a prebuilt bitset index (the shared representation all
// backends accept, so one index per region serves any of them).
func MineIndex(ix *itemset.Index, minSupport float64) []itemset.Pattern {
	return MineIndexWithOptions(ix, minSupport, Options{})
}

// MineIndexWithOptions is MineIndex with explicit options.
func MineIndexWithOptions(ix *itemset.Index, minSupport float64, opts Options) []itemset.Pattern {
	if ix.NumTransactions() == 0 {
		return nil
	}
	minCount := ix.MinCount(minSupport)

	// Frequent 1-itemsets. Index ids are assigned in canonical item
	// order, so ascending ids are canonically sorted — the invariant the
	// prefix join below needs.
	var freq []int32
	for id := int32(0); int(id) < ix.NumItems(); id++ {
		if ix.Count(id) >= minCount {
			freq = append(freq, id)
		}
	}

	var out []itemset.Pattern

	// L1.
	current := make([][]int32, 0, len(freq))
	for _, id := range freq {
		out = append(out, ix.Pattern([]int32{id}, ix.Count(id)))
		current = append(current, []int32{id})
	}

	k := 1
	for len(current) > 0 {
		k++
		if opts.MaxLen > 0 && k > opts.MaxLen {
			break
		}
		candidates := generateCandidates(current)
		if len(candidates) == 0 {
			break
		}
		// Count each surviving candidate against the vertical index.
		var next [][]int32
		for _, cand := range candidates {
			if c := ix.SupportCount(cand); c >= minCount {
				out = append(out, ix.Pattern(cand, c))
				next = append(next, cand)
			}
		}
		current = next
	}

	itemset.SortPatterns(out)
	return out
}

// generateCandidates performs the Apriori join + prune step on the sorted
// frequent (k-1)-itemsets: join pairs sharing the first k-2 ids, then
// discard candidates with an infrequent (k-1)-subset.
func generateCandidates(frequent [][]int32) [][]int32 {
	if len(frequent) == 0 {
		return nil
	}
	k1 := len(frequent[0])
	// Lexicographic order is required for the prefix join.
	sort.Slice(frequent, func(i, j int) bool { return lessIDs(frequent[i], frequent[j]) })
	inPrev := make(map[string]bool, len(frequent))
	for _, f := range frequent {
		inPrev[idsKey(f)] = true
	}

	var cands [][]int32
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i], frequent[j]
			if !samePrefix(a, b, k1-1) {
				break // sorted, so no later j can share the prefix
			}
			cand := make([]int32, k1+1)
			copy(cand, a)
			cand[k1] = b[k1-1]
			if prune(cand, inPrev) {
				cands = append(cands, cand)
			}
		}
	}
	return cands
}

// prune checks that all (k-1)-subsets of cand are frequent.
func prune(cand []int32, inPrev map[string]bool) bool {
	if len(cand) <= 2 {
		return true // both 1-subsets are frequent by construction
	}
	sub := make([]int32, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, v := range cand {
			if i != skip {
				sub = append(sub, v)
			}
		}
		if !inPrev[idsKey(sub)] {
			return false
		}
	}
	return true
}

func samePrefix(a, b []int32, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessIDs(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func idsKey(ids []int32) string {
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}
