// Package apriori implements the level-wise Apriori frequent-itemset
// miner of Agrawal & Srikant (VLDB 1994), reference [1] of the paper. It
// serves two roles: the classic baseline against which FP-Growth's
// efficiency claim is benchmarked, and an independent oracle for the
// miner-agreement property tests (all backends must produce identical
// pattern sets). Candidate counting runs against the shared bitmap index
// of internal/itemset: each candidate's support is the cardinality of
// the intersection of its members' transaction bitmaps (word-wise ANDs
// in dense layout, container intersections in chunked layout), replacing
// the classic per-transaction subset scan.
//
// The join/prune bookkeeping — candidate id storage, subset probe
// buffer, key buffer and the frequent-set membership map — is recycled
// through a sync.Pool, so a steady-state mine allocates little beyond
// its output.
package apriori

import (
	"sort"
	"sync"

	"cuisines/internal/itemset"
)

// Options tunes a mining run.
type Options struct {
	// MaxLen, if positive, bounds the size of mined itemsets.
	MaxLen int
}

// Mine returns all itemsets with relative support >= minSupport (fraction
// in (0,1], or absolute count if > 1), in canonical report order.
func Mine(d *itemset.Dataset, minSupport float64) []itemset.Pattern {
	return MineIndex(itemset.NewIndex(d), minSupport)
}

// MineWithOptions is Mine with explicit options.
func MineWithOptions(d *itemset.Dataset, minSupport float64, opts Options) []itemset.Pattern {
	return MineIndexWithOptions(itemset.NewIndex(d), minSupport, opts)
}

// MineIndex mines a prebuilt bitmap index (the shared representation all
// backends accept, so one index per region serves any of them).
func MineIndex(ix *itemset.Index, minSupport float64) []itemset.Pattern {
	return MineIndexWithOptions(ix, minSupport, Options{})
}

// idArena carves candidate id slices for one level from a recycled
// backing array. Growing abandons the old array to the slices already
// carved from it, so capacity converges after one mining run.
type idArena struct {
	buf  []int32
	used int
}

func (a *idArena) reset() { a.used = 0 }

func (a *idArena) grab(n int) []int32 {
	if a.used+n > len(a.buf) {
		size := 2 * (a.used + n)
		if size < 1024 {
			size = 1024
		}
		a.buf = make([]int32, size)
		a.used = 0
	}
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// scratch is the pooled candidate-counting state of one mining run. Two
// arenas alternate across levels: level k's candidates must outlive the
// k+1 join that reads them, so the k+2 level is the earliest safe reuse.
type scratch struct {
	arenas [2]idArena
	sub    []int32
	keyBuf []byte
	inPrev map[string]bool
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{inPrev: make(map[string]bool)}
}}

// MineIndexWithOptions is MineIndex with explicit options.
func MineIndexWithOptions(ix *itemset.Index, minSupport float64, opts Options) []itemset.Pattern {
	if ix.NumTransactions() == 0 {
		return nil
	}
	minCount := ix.MinCount(minSupport)

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.arenas[0].reset()
	sc.arenas[1].reset()

	// Frequent 1-itemsets. Index ids are assigned in canonical item
	// order, so ascending ids are canonically sorted — the invariant the
	// prefix join below needs.
	var freq []int32
	for id := int32(0); int(id) < ix.NumItems(); id++ {
		if ix.Count(id) >= minCount {
			freq = append(freq, id)
		}
	}

	var out []itemset.Pattern

	// L1. Level k's candidate ids live in arena k%2.
	current := make([][]int32, 0, len(freq))
	for _, id := range freq {
		out = append(out, ix.Pattern([]int32{id}, ix.Count(id)))
		ids := sc.arenas[1].grab(1)
		ids[0] = id
		current = append(current, ids)
	}

	k := 1
	for len(current) > 0 {
		k++
		if opts.MaxLen > 0 && k > opts.MaxLen {
			break
		}
		arena := &sc.arenas[k%2]
		arena.reset()
		candidates := generateCandidates(current, sc, arena)
		if len(candidates) == 0 {
			break
		}
		// Count each surviving candidate against the vertical index.
		var next [][]int32
		for _, cand := range candidates {
			if c := ix.SupportCount(cand); c >= minCount {
				out = append(out, ix.Pattern(cand, c))
				next = append(next, cand)
			}
		}
		current = next
	}

	itemset.SortPatterns(out)
	return out
}

// generateCandidates performs the Apriori join + prune step on the sorted
// frequent (k-1)-itemsets: join pairs sharing the first k-2 ids, then
// discard candidates with an infrequent (k-1)-subset. Candidate storage
// comes from the level's arena; the membership map and probe buffers are
// the run's pooled scratch.
func generateCandidates(frequent [][]int32, sc *scratch, arena *idArena) [][]int32 {
	if len(frequent) == 0 {
		return nil
	}
	k1 := len(frequent[0])
	// Lexicographic order is required for the prefix join.
	sort.Slice(frequent, func(i, j int) bool { return lessIDs(frequent[i], frequent[j]) })
	clear(sc.inPrev)
	for _, f := range frequent {
		sc.keyBuf = appendIDsKey(sc.keyBuf[:0], f)
		sc.inPrev[string(sc.keyBuf)] = true
	}

	var cands [][]int32
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i], frequent[j]
			if !samePrefix(a, b, k1-1) {
				break // sorted, so no later j can share the prefix
			}
			cand := arena.grab(k1 + 1)
			copy(cand, a)
			cand[k1] = b[k1-1]
			if sc.prune(cand) {
				cands = append(cands, cand)
			}
		}
	}
	return cands
}

// prune checks that all (k-1)-subsets of cand are frequent.
func (sc *scratch) prune(cand []int32) bool {
	if len(cand) <= 2 {
		return true // both 1-subsets are frequent by construction
	}
	if cap(sc.sub) < len(cand)-1 {
		sc.sub = make([]int32, 0, 2*len(cand))
	}
	for skip := range cand {
		sub := sc.sub[:0]
		for i, v := range cand {
			if i != skip {
				sub = append(sub, v)
			}
		}
		sc.keyBuf = appendIDsKey(sc.keyBuf[:0], sub)
		// Map lookup keyed by string(bytes) does not allocate.
		if !sc.inPrev[string(sc.keyBuf)] {
			return false
		}
	}
	return true
}

func samePrefix(a, b []int32, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessIDs(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func appendIDsKey(b []byte, ids []int32) []byte {
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return b
}
