package core

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"cuisines/internal/miner"
	"cuisines/internal/recipedb"
)

// Table1Row is one Table I line: a region, its size, its headline
// patterns and its frequent-pattern count.
type Table1Row struct {
	Region   string
	Recipes  int
	Top      []ScoredPattern
	Patterns int
}

// Table1 is the full reproduction of Table I.
type Table1 struct {
	MinSupport float64
	Rows       []Table1Row
}

// BuildTable1 mines every region and ranks headline patterns, producing
// the repository's reproduction of Table I. topK controls how many
// headline patterns are kept per region (the paper prints one to four).
// Mining uses every available core; see BuildTable1Workers for the knob.
func BuildTable1(db *recipedb.DB, minSupport float64, topK int) (*Table1, error) {
	return BuildTable1Workers(db, minSupport, topK, 0)
}

// BuildTable1Workers is BuildTable1 with an explicit worker count for the
// per-cuisine mining fan-out (<= 0 means GOMAXPROCS, 1 forces the
// sequential path).
func BuildTable1Workers(db *recipedb.DB, minSupport float64, topK, workers int) (*Table1, error) {
	return BuildTable1With(db, minSupport, topK, workers, nil)
}

// BuildTable1With is BuildTable1Workers with an explicit mining backend
// (nil means miner.Default; the table is identical for every backend).
func BuildTable1With(db *recipedb.DB, minSupport float64, topK, workers int, m miner.Miner) (*Table1, error) {
	if topK <= 0 {
		topK = 3
	}
	rps, err := MineRegionsWith(db, minSupport, workers, m)
	if err != nil {
		return nil, err
	}
	ranker := NewRanker(rps, 0)
	t := &Table1{MinSupport: minSupport}
	for _, rp := range rps {
		t.Rows = append(t.Rows, Table1Row{
			Region:   rp.Region,
			Recipes:  rp.Recipes,
			Top:      ranker.Top(rp.Patterns, topK),
			Patterns: len(rp.Patterns),
		})
	}
	return t, nil
}

// Render writes the table in the paper's column layout.
func (t *Table1) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Region\tRecipes\tPattern\tSupport\tPatterns\n")
	for _, row := range t.Rows {
		top := "-"
		sup := "-"
		if len(row.Top) > 0 {
			top = row.Top[0].Pattern.Items.String()
			sup = fmt.Sprintf("%.2f", row.Top[0].Pattern.Support)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%d\n", row.Region, row.Recipes, top, sup, row.Patterns)
		for _, extra := range row.Top[min(1, len(row.Top)):] {
			fmt.Fprintf(tw, "\t\t%s\t%.2f\t\n", extra.Pattern.Items.String(), extra.Pattern.Support)
		}
	}
	return tw.Flush()
}

// String renders the table to a string.
func (t *Table1) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
