package core

import (
	"sort"

	"cuisines/internal/itemset"
)

// The paper's Table I reports the "topmost significant patterns" per
// cuisine without defining significance formally (ranking by raw support
// would always return generic singletons such as "add"). This file
// implements the documented interestingness ranking the repository uses:
//
//  1. An item is *universal* if it is frequent, as a singleton, in at
//     least UniversalFraction of all cuisines (salt, add, heat, ...).
//  2. Patterns consisting solely of universal items, and patterns
//     containing no ingredient or utensil at all (pure cooking-process
//     grammar such as "add + heat"), are excluded from the headline
//     ranking. They still count toward the Table I pattern totals,
//     matching the paper's counts; every headline the paper prints
//     anchors on at least one ingredient or utensil.
//  3. Remaining patterns are scored support * (1 + 0.25*(|P|-1)): larger
//     co-occurrence patterns win over their own singletons, which is how
//     Table I reports "soy sauce + add + heat" rather than "soy sauce"
//     for the Chinese cuisine but the bare "soy sauce" for the Japanese.
//
// EXPERIMENTS.md records the measured headline next to the paper's for
// every cuisine.

// DefaultUniversalFraction classifies an item as universal when it is
// frequent in at least this fraction of cuisines.
const DefaultUniversalFraction = 0.6

// ScoredPattern is a pattern with its significance score.
type ScoredPattern struct {
	Pattern itemset.Pattern
	Score   float64
}

// Ranker ranks patterns by significance given the corpus-wide universal
// item set.
type Ranker struct {
	universal map[itemset.Item]bool
}

// NewRanker derives the universal item set from per-region mining
// results. fraction <= 0 uses DefaultUniversalFraction.
func NewRanker(rps []RegionPatterns, fraction float64) *Ranker {
	if fraction <= 0 {
		fraction = DefaultUniversalFraction
	}
	regionsWithItem := make(map[itemset.Item]int)
	for _, rp := range rps {
		seen := make(map[itemset.Item]bool)
		for _, p := range rp.Patterns {
			if p.Items.Len() != 1 {
				continue
			}
			it := p.Items.At(0)
			if !seen[it] {
				seen[it] = true
				regionsWithItem[it]++
			}
		}
	}
	// Ceiling: an item frequent in strictly fewer than fraction*regions
	// stays regional.
	need := int(float64(len(rps)) * fraction)
	if float64(need) < float64(len(rps))*fraction {
		need++
	}
	if need < 1 {
		need = 1
	}
	universal := make(map[itemset.Item]bool)
	for it, n := range regionsWithItem {
		if n >= need {
			universal[it] = true
		}
	}
	return &Ranker{universal: universal}
}

// IsUniversal reports whether the item was classified universal.
func (r *Ranker) IsUniversal(it itemset.Item) bool { return r.universal[it] }

// UniversalItems returns the universal items in canonical order.
func (r *Ranker) UniversalItems() []itemset.Item {
	out := make([]itemset.Item, 0, len(r.universal))
	for it := range r.universal {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Score returns the significance score of a pattern, or -1 if the pattern
// is excluded (all items universal, or no ingredient/utensil present).
func (r *Ranker) Score(p itemset.Pattern) float64 {
	allUniversal := true
	processOnly := true
	for _, it := range p.Items.Items() {
		if !r.universal[it] {
			allUniversal = false
		}
		if it.Kind != itemset.Process {
			processOnly = false
		}
	}
	if allUniversal || processOnly {
		return -1
	}
	return p.Support * (1 + 0.25*float64(p.Items.Len()-1))
}

// Rank returns the patterns ordered by descending significance,
// excluding all-universal patterns. Ties break toward larger patterns,
// then lexicographically, so the ranking is total and deterministic.
func (r *Ranker) Rank(patterns []itemset.Pattern) []ScoredPattern {
	var out []ScoredPattern
	for _, p := range patterns {
		if s := r.Score(p); s >= 0 {
			out = append(out, ScoredPattern{Pattern: p, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		li, lj := out[i].Pattern.Items.Len(), out[j].Pattern.Items.Len()
		if li != lj {
			return li > lj
		}
		return out[i].Pattern.StringPattern() < out[j].Pattern.StringPattern()
	})
	return out
}

// Top returns the k most significant patterns.
func (r *Ranker) Top(patterns []itemset.Pattern, k int) []ScoredPattern {
	ranked := r.Rank(patterns)
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}
