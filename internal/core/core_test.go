package core

import (
	"strings"
	"testing"

	"cuisines/internal/corpus"
	"cuisines/internal/itemset"
	"cuisines/internal/recipedb"
)

func ing(name string) itemset.Item  { return itemset.NewItem(name, itemset.Ingredient) }
func proc(name string) itemset.Item { return itemset.NewItem(name, itemset.Process) }

func pat(sup float64, items ...itemset.Item) itemset.Pattern {
	return itemset.Pattern{Items: itemset.NewSet(items...), Support: sup}
}

func mustDB(t *testing.T, rs []recipedb.Recipe) *recipedb.DB {
	t.Helper()
	db, err := recipedb.New(rs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func smallDB(t *testing.T) *recipedb.DB {
	return mustDB(t, []recipedb.Recipe{
		{ID: "j1", Region: "Japan", Ingredients: []string{"soy", "salt"}, Processes: []string{"add"}},
		{ID: "j2", Region: "Japan", Ingredients: []string{"soy", "salt"}, Processes: []string{"add"}},
		{ID: "j3", Region: "Japan", Ingredients: []string{"soy"}, Processes: []string{"add"}},
		{ID: "m1", Region: "Mexico", Ingredients: []string{"lime", "salt"}, Processes: []string{"add"}},
		{ID: "m2", Region: "Mexico", Ingredients: []string{"lime", "salt"}, Processes: []string{"add"}},
		{ID: "m3", Region: "Mexico", Ingredients: []string{"lime"}, Processes: []string{"add"}},
	})
}

func TestMineRegions(t *testing.T) {
	rps, err := MineRegions(smallDB(t), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rps) != 2 {
		t.Fatalf("regions = %d", len(rps))
	}
	if rps[0].Region != "Japan" || rps[1].Region != "Mexico" {
		t.Fatalf("order = %v, %v", rps[0].Region, rps[1].Region)
	}
	if rps[0].Recipes != 3 {
		t.Fatalf("recipes = %d", rps[0].Recipes)
	}
	found := false
	for _, p := range rps[0].Patterns {
		if p.StringPattern() == "soy" && p.Count == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("soy pattern missing: %v", rps[0].Patterns)
	}
}

func TestMineRegionsRejectsBadInput(t *testing.T) {
	if _, err := MineRegions(&recipedb.DB{}, 0.5); err == nil {
		t.Fatal("empty db accepted")
	}
	if _, err := MineRegions(smallDB(t), 0); err == nil {
		t.Fatal("zero support accepted")
	}
	if _, err := MineRegions(smallDB(t), 1.5); err == nil {
		t.Fatal("support > 1 accepted")
	}
}

func TestRankerUniversalDetection(t *testing.T) {
	rps, err := MineRegions(smallDB(t), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRanker(rps, 0.6)
	// salt and add are frequent in both regions -> universal; soy and
	// lime in one each -> not.
	if !r.IsUniversal(ing("salt")) || !r.IsUniversal(proc("add")) {
		t.Fatalf("universals = %v", r.UniversalItems())
	}
	if r.IsUniversal(ing("soy")) || r.IsUniversal(ing("lime")) {
		t.Fatal("regional item classified universal")
	}
}

func TestRankerScoreRules(t *testing.T) {
	rps, _ := MineRegions(smallDB(t), 0.5)
	r := NewRanker(rps, 0.6)
	// All-universal pattern excluded.
	if s := r.Score(pat(0.9, ing("salt"), proc("add"))); s != -1 {
		t.Fatalf("all-universal score = %v", s)
	}
	// Process-only pattern excluded even when not universal.
	if s := r.Score(pat(0.9, proc("flamb"))); s != -1 {
		t.Fatalf("process-only score = %v", s)
	}
	// Anchored regional pattern scores support * size bonus.
	if s := r.Score(pat(0.4, ing("soy"))); s != 0.4 {
		t.Fatalf("singleton score = %v", s)
	}
	if s := r.Score(pat(0.4, ing("soy"), proc("add"))); s != 0.4*1.25 {
		t.Fatalf("pair score = %v", s)
	}
}

func TestRankerRankOrderAndTies(t *testing.T) {
	rps, _ := MineRegions(smallDB(t), 0.5)
	r := NewRanker(rps, 0.6)
	ps := []itemset.Pattern{
		pat(0.30, ing("soy")),
		pat(0.28, ing("soy"), ing("lime")), // score 0.35 — wins
		pat(0.9, ing("salt"), proc("add")), // excluded
		pat(0.30, ing("lime")),             // ties with soy; lexicographic
	}
	ranked := r.Rank(ps)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d patterns", len(ranked))
	}
	if ranked[0].Pattern.StringPattern() != "lime+soy" {
		t.Fatalf("top = %v", ranked[0].Pattern)
	}
	if ranked[1].Pattern.StringPattern() != "lime" || ranked[2].Pattern.StringPattern() != "soy" {
		t.Fatalf("tie order wrong: %v", ranked)
	}
	top := r.Top(ps, 1)
	if len(top) != 1 || top[0].Pattern.StringPattern() != "lime+soy" {
		t.Fatalf("Top(1) = %v", top)
	}
}

func TestBuildTable1SmallDB(t *testing.T) {
	table, err := BuildTable1(smallDB(t), 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	jp := table.Rows[0]
	if jp.Region != "Japan" || len(jp.Top) == 0 {
		t.Fatalf("row = %+v", jp)
	}
	// Japan patterns at 0.5: {soy}=1.0, {soy,add}=1.0 etc. The pair
	// {soy, add} wins on the size bonus (1.0 * 1.25).
	if jp.Top[0].Pattern.StringPattern() != "add+soy" {
		t.Fatalf("japan top = %v", jp.Top[0].Pattern)
	}
	out := table.String()
	if !strings.Contains(out, "Japan") || !strings.Contains(out, "Region") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAnchoredPatterns(t *testing.T) {
	sets := [][]itemset.Pattern{{
		pat(0.5, ing("soy")),
		pat(0.5, proc("add")),
		pat(0.5, proc("add"), proc("heat")),
		pat(0.5, ing("soy"), proc("add")),
	}}
	out := AnchoredPatterns(sets)
	if len(out[0]) != 2 {
		t.Fatalf("anchored = %v", out[0])
	}
	for _, p := range out[0] {
		hasAnchor := false
		for _, it := range p.Items.Items() {
			if it.Kind != itemset.Process {
				hasAnchor = true
			}
		}
		if !hasAnchor {
			t.Fatalf("process-only pattern survived: %v", p)
		}
	}
}

// figuresFixture builds figures once on a reduced corpus for the
// integration tests.
var figuresFixture *Figures

func getFigures(t *testing.T) *Figures {
	t.Helper()
	if figuresFixture == nil {
		db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		figs, err := BuildFigures(db, DefaultMinSupport, DefaultLinkage)
		if err != nil {
			t.Fatal(err)
		}
		figuresFixture = figs
	}
	return figuresFixture
}

func TestBuildFiguresComplete(t *testing.T) {
	f := getFigures(t)
	if f.Table1 == nil || len(f.Table1.Rows) != 26 {
		t.Fatal("table1 incomplete")
	}
	for _, tree := range []*CuisineTree{f.Euclidean, f.Cosine, f.Jaccard, f.Auth, f.Geo} {
		if tree.Tree.N() != 26 {
			t.Fatalf("%s tree has %d leaves", tree.Name, tree.Tree.N())
		}
	}
	if f.Euclidean.Linkage != EuclideanLinkage {
		t.Fatal("euclidean tree must use the euclidean linkage")
	}
	if len(f.Elbow.Points) != 15 {
		t.Fatalf("elbow points = %d", len(f.Elbow.Points))
	}
	if f.Patterns.X.Rows() != 26 || f.Patterns.X.Cols() == 0 {
		t.Fatal("pattern matrix empty")
	}
	if len(f.AuthMat.Items) == 0 {
		t.Fatal("authenticity matrix empty")
	}
}

func TestFig1NoSharpElbow(t *testing.T) {
	// The paper's Fig. 1 finding: "no sharp edge or elbow like structure
	// is obtained".
	f := getFigures(t)
	if f.Elbow.Sharp() {
		t.Fatalf("cuisine features produced a sharp elbow (strength %.3f)", f.Elbow.ElbowStrength)
	}
}

func TestTable1HeadlinesMatchPaper(t *testing.T) {
	// Calibration: every region's measured headline pattern must be the
	// profile's Table I target (at this scale small regions get a little
	// slack: the target must appear in the top 3).
	f := getFigures(t)
	for _, row := range f.Table1.Rows {
		prof, err := corpus.ProfileFor(row.Region)
		if err != nil {
			t.Fatal(err)
		}
		if len(row.Top) == 0 {
			t.Errorf("%s: no significant patterns", row.Region)
			continue
		}
		want := prof.IntendedTop[0]
		rank := -1
		for i, sp := range row.Top {
			if sp.Pattern.StringPattern() == want {
				rank = i
				break
			}
		}
		if rank == -1 {
			t.Errorf("%s: paper headline %q not in top 3 (top: %v)", row.Region, want, row.Top[0].Pattern)
			continue
		}
		if rank != 0 && row.Recipes > 500 {
			t.Errorf("%s: paper headline %q ranked #%d behind %v", row.Region, want, rank+1, row.Top[0].Pattern)
		}
	}
}

func TestValidationClaimsAtReducedScale(t *testing.T) {
	// The Sec. VII anecdotes must hold in the authenticity tree even at
	// quarter scale; the full-scale run (EXPERIMENTS.md, cmd/evaltrees)
	// reproduces all eight claims.
	f := getFigures(t)
	v, err := Validate(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.TreeFit) != 4 || len(v.Claims) != 8 {
		t.Fatalf("validation shape: %d fits, %d claims", len(v.TreeFit), len(v.Claims))
	}
	byName := map[string][]bool{}
	for _, c := range v.Claims {
		byName[c.Name] = append(byName[c.Name], c.Holds)
	}
	for _, name := range []string{
		"canada-closer-to-france-than-us",
		"india-closer-to-north-africa-than-thai",
		"india-closer-to-north-africa-than-southeast-asian",
	} {
		holds := byName[name]
		if len(holds) == 0 {
			t.Fatalf("claim %s missing", name)
		}
		any := false
		for _, h := range holds {
			any = any || h
		}
		if !any {
			t.Errorf("claim %s fails in every tree at reduced scale", name)
		}
	}
	var rendered strings.Builder
	if err := v.Render(&rendered); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered.String(), "Baker's gamma") {
		t.Fatalf("render:\n%s", rendered.String())
	}
}

func TestGeographicTreeSanity(t *testing.T) {
	f := getFigures(t)
	// Geographic anchors: UK-Irish merge below UK-Australian.
	ukIE, err := f.Geo.Tree.MergeHeightBetween("UK", "Irish")
	if err != nil {
		t.Fatal(err)
	}
	ukAU, err := f.Geo.Tree.MergeHeightBetween("UK", "Australian")
	if err != nil {
		t.Fatal(err)
	}
	if ukIE >= ukAU {
		t.Fatalf("geo tree: UK-Irish %.0f >= UK-Australian %.0f", ukIE, ukAU)
	}
}

func TestEastAsiaClustersInPatternTrees(t *testing.T) {
	// Figs. 2-4 all show the East Asian cuisines grouped; check on the
	// cosine tree (the most size-robust).
	f := getFigures(t)
	cnJP, _ := f.Cosine.Tree.MergeHeightBetween("Chinese and Mongolian", "Japanese")
	cnUK, _ := f.Cosine.Tree.MergeHeightBetween("Chinese and Mongolian", "UK")
	if cnJP >= cnUK {
		t.Fatalf("cosine tree: China-Japan %.3f >= China-UK %.3f", cnJP, cnUK)
	}
}

func TestPatternTreeErrorsOnTinyInput(t *testing.T) {
	rps, _ := MineRegions(smallDB(t), 0.5)
	regions, sets := PatternSets(rps)
	_ = regions
	_ = sets
	one := [][]itemset.Pattern{sets[0]}
	pmOne, err := encodeOne(regions[:1], one)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PatternTree(pmOne, 0, DefaultLinkage); err == nil {
		t.Fatal("single-region tree accepted")
	}
}

func TestAnalyzeKindInfluence(t *testing.T) {
	f := getFigures(t)
	_ = f // ensure fixture corpus exists for timing comparability
	db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AnalyzeKindInfluence(db, DefaultLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("kinds = %d", len(rows))
	}
	byKind := map[string]KindInfluence{}
	for _, r := range rows {
		byKind[r.Kind] = r
		if r.Items <= 0 {
			t.Fatalf("no items for kind %s", r.Kind)
		}
		if r.GeoGamma < -1 || r.GeoGamma > 1 {
			t.Fatalf("gamma out of range: %+v", r)
		}
	}
	// Ingredient tree agrees with itself perfectly.
	if byKind["ingredient"].IngredientAgreement < 0.999 {
		t.Fatalf("ingredient self-agreement = %v", byKind["ingredient"].IngredientAgreement)
	}
	// Ingredients carry far more geographic signal than the sparse,
	// globally shared utensil vocabulary — the answer to the paper's
	// Sec. VIII question.
	if byKind["ingredient"].GeoGamma <= byKind["utensil"].GeoGamma {
		t.Errorf("expected ingredients (%.3f) to out-signal utensils (%.3f)",
			byKind["ingredient"].GeoGamma, byKind["utensil"].GeoGamma)
	}
	var b strings.Builder
	if err := RenderKindInfluence(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ingredient") {
		t.Fatalf("render:\n%s", b.String())
	}
}
