package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cuisines/internal/authenticity"
	"cuisines/internal/distance"
	"cuisines/internal/hac"
	"cuisines/internal/itemset"
	"cuisines/internal/recipedb"
	"cuisines/internal/treecmp"
)

// KindInfluence answers the question the paper leaves open in Sec. VIII:
// "RecipeDB is a sparse dataset in terms of utensils and processes.
// Hence, to what extent do they influence the relationships among
// cuisines is yet to be answered." For each item kind we build an
// authenticity tree from that kind alone and measure its similarity to
// the geographic tree and to the full ingredient tree.
type KindInfluence struct {
	Kind string
	// Items is the matrix width (distinct items of the kind).
	Items int
	// GeoGamma is the Baker's gamma of the kind's tree vs geography.
	GeoGamma float64
	// GeoCophenetic is the cophenetic correlation vs geography.
	GeoCophenetic float64
	// IngredientAgreement is Baker's gamma of the kind's tree vs the
	// ingredient tree — how much of the ingredient structure the kind
	// alone recovers.
	IngredientAgreement float64
}

// AnalyzeKindInfluence builds one authenticity tree per item kind and
// compares each against geography and against the ingredient tree.
func AnalyzeKindInfluence(db *recipedb.DB, method hac.Method) ([]KindInfluence, error) {
	geoTree, err := GeographicTree(db.Regions(), method)
	if err != nil {
		return nil, err
	}
	geoCoph := geoTree.Tree.Cophenetic()

	type kindTree struct {
		kind  itemset.Kind
		items int
		tree  *hac.Tree
	}
	var kts []kindTree
	for _, kind := range itemset.Kinds() {
		am, err := authenticity.Build(db, authenticity.Options{
			Kinds:               []itemset.Kind{kind},
			MinRegionPrevalence: 0.03,
		})
		if err != nil {
			return nil, err
		}
		ct, err := AuthenticityTree(am, distance.Euclidean, method)
		if err != nil {
			return nil, err
		}
		kts = append(kts, kindTree{kind: kind, items: len(am.Items), tree: ct.Tree})
	}

	ingredientCoph := kts[0].tree.Cophenetic() // Kinds() starts with Ingredient
	out := make([]KindInfluence, 0, len(kts))
	for _, kt := range kts {
		coph := kt.tree.Cophenetic()
		gamma, err := treecmp.BakersGamma(coph, geoCoph)
		if err != nil {
			return nil, err
		}
		cr, err := treecmp.CopheneticCorrelation(coph, geoCoph)
		if err != nil {
			return nil, err
		}
		agree, err := treecmp.BakersGamma(coph, ingredientCoph)
		if err != nil {
			return nil, err
		}
		out = append(out, KindInfluence{
			Kind:                kt.kind.String(),
			Items:               kt.items,
			GeoGamma:            gamma,
			GeoCophenetic:       cr,
			IngredientAgreement: agree,
		})
	}
	return out, nil
}

// RenderKindInfluence writes the per-kind analysis as a table.
func RenderKindInfluence(w io.Writer, rows []KindInfluence) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Kind\tItems\tGeo gamma\tGeo coph r\tvs ingredient tree")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\n",
			r.Kind, r.Items, r.GeoGamma, r.GeoCophenetic, r.IngredientAgreement)
	}
	return tw.Flush()
}
