// Package core wires the substrates into the paper's experiments: the
// per-cuisine pattern miner and significance ranking behind Table I, the
// pattern / authenticity / geographic feature pipelines behind Figs. 1-6,
// and the quantified Sec. VII validation. The root cuisines package is a
// thin facade over this one.
package core

import (
	"fmt"

	"cuisines/internal/itemset"
	"cuisines/internal/miner"
	"cuisines/internal/parallel"
	"cuisines/internal/recipedb"
)

// DefaultMinSupport is the paper's mining threshold (Sec. IV: "a trade
// off support of 20% was chosen").
const DefaultMinSupport = 0.2

// RegionPatterns holds one cuisine's mining result.
type RegionPatterns struct {
	Region  string
	Recipes int
	// Patterns is every frequent itemset at the mining threshold, in
	// canonical report order.
	Patterns []itemset.Pattern
}

// MineRegions mines frequent itemsets per cuisine at the given support
// threshold, exactly as Sec. V.A prescribes (ingredients, processes and
// utensils concatenated; one run per region), with the default backend.
// Regions are returned in the DB's sorted region order. The per-region
// runs use every available core; see MineRegionsWorkers for the knob.
func MineRegions(db *recipedb.DB, minSupport float64) ([]RegionPatterns, error) {
	return MineRegionsWorkers(db, minSupport, 0)
}

// MineRegionsWorkers is MineRegions with an explicit worker count (<= 0
// means GOMAXPROCS, 1 forces the sequential path). The per-cuisine runs
// are independent — each reads the immutable DB and returns its own
// result slot, and every backend emits patterns in canonical report
// order — so the output is identical to the sequential path for any
// worker count.
func MineRegionsWorkers(db *recipedb.DB, minSupport float64, workers int) ([]RegionPatterns, error) {
	return MineRegionsWith(db, minSupport, workers, nil)
}

// MineRegionsWith is MineRegionsWorkers with an explicit mining backend
// (nil means miner.Default). Each region's transactions are indexed
// into the shared vertical bitset representation exactly once, then
// handed to the selected backend. All backends produce byte-identical
// pattern sets (see internal/miner), so — like workers — the backend
// changes how fast the answer arrives, never the answer.
func MineRegionsWith(db *recipedb.DB, minSupport float64, workers int, m miner.Miner) ([]RegionPatterns, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	if minSupport <= 0 || minSupport > 1 {
		return nil, fmt.Errorf("core: min support %v out of (0, 1]", minSupport)
	}
	if m == nil {
		m = miner.Default
	}
	regions := db.Regions()
	out := parallel.Map(len(regions), workers, func(i int) RegionPatterns {
		ds := db.RegionDataset(regions[i])
		return RegionPatterns{
			Region:   regions[i],
			Recipes:  ds.Len(),
			Patterns: m.Mine(itemset.NewIndex(ds), minSupport),
		}
	})
	return out, nil
}

// PatternSets flattens mining results into parallel slices for the
// encoder.
func PatternSets(rps []RegionPatterns) (regions []string, patterns [][]itemset.Pattern) {
	for _, rp := range rps {
		regions = append(regions, rp.Region)
		patterns = append(patterns, rp.Patterns)
	}
	return regions, patterns
}
