// Package core wires the substrates into the paper's experiments: the
// per-cuisine pattern miner and significance ranking behind Table I, the
// pattern / authenticity / geographic feature pipelines behind Figs. 1-6,
// and the quantified Sec. VII validation. The root cuisines package is a
// thin facade over this one.
package core

import (
	"fmt"

	"cuisines/internal/fpgrowth"
	"cuisines/internal/itemset"
	"cuisines/internal/parallel"
	"cuisines/internal/recipedb"
)

// DefaultMinSupport is the paper's mining threshold (Sec. IV: "a trade
// off support of 20% was chosen").
const DefaultMinSupport = 0.2

// RegionPatterns holds one cuisine's mining result.
type RegionPatterns struct {
	Region  string
	Recipes int
	// Patterns is every frequent itemset at the mining threshold, in
	// canonical report order.
	Patterns []itemset.Pattern
}

// MineRegions runs FP-Growth per cuisine at the given support threshold,
// exactly as Sec. V.A prescribes (ingredients, processes and utensils
// concatenated; one run per region). Regions are returned in the DB's
// sorted region order. The per-region runs use every available core; see
// MineRegionsWorkers for the knob.
func MineRegions(db *recipedb.DB, minSupport float64) ([]RegionPatterns, error) {
	return MineRegionsWorkers(db, minSupport, 0)
}

// MineRegionsWorkers is MineRegions with an explicit worker count (<= 0
// means GOMAXPROCS, 1 forces the sequential path). The per-cuisine runs
// are independent — each reads the immutable DB and returns its own
// result slot, and FP-Growth itself emits patterns in canonical report
// order — so the output is identical to the sequential path for any
// worker count.
func MineRegionsWorkers(db *recipedb.DB, minSupport float64, workers int) ([]RegionPatterns, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	if minSupport <= 0 || minSupport > 1 {
		return nil, fmt.Errorf("core: min support %v out of (0, 1]", minSupport)
	}
	regions := db.Regions()
	out := parallel.Map(len(regions), workers, func(i int) RegionPatterns {
		ds := db.RegionDataset(regions[i])
		return RegionPatterns{
			Region:   regions[i],
			Recipes:  ds.Len(),
			Patterns: fpgrowth.Mine(ds, minSupport),
		}
	})
	return out, nil
}

// PatternSets flattens mining results into parallel slices for the
// encoder.
func PatternSets(rps []RegionPatterns) (regions []string, patterns [][]itemset.Pattern) {
	for _, rp := range rps {
		regions = append(regions, rp.Region)
		patterns = append(patterns, rp.Patterns)
	}
	return regions, patterns
}
