package core

import (
	"strings"
	"testing"

	"cuisines/internal/corpus"
)

func TestBootstrapClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap is slow")
	}
	db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := BootstrapClaims(db, DefaultMinSupport, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 5 {
		t.Fatalf("iterations = %d", st.Iterations)
	}
	if len(st.Support) != 6 {
		t.Fatalf("support entries = %d: %v", len(st.Support), st.Support)
	}
	for k, v := range st.Support {
		if v < 0 || v > 1 {
			t.Fatalf("support %s = %v", k, v)
		}
	}
	// The India spice-belt signal is strong enough to survive tenth-scale
	// resampling; the Canada margin is narrower (EXPERIMENTS.md reports
	// full-scale stability) so it only needs to appear at all here.
	if k := "india-closer-to-north-africa-than-thai/authenticity-euclidean"; st.Support[k] < 0.6 {
		t.Errorf("claim %s bootstrap support only %.2f", k, st.Support[k])
	}
	if k := "canada-closer-to-france-than-us/authenticity-euclidean"; st.Support[k] == 0 {
		t.Errorf("claim %s never held in any replicate", k)
	}
	var b strings.Builder
	if err := st.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Bootstrap support") {
		t.Fatalf("render:\n%s", b.String())
	}
}

// TestBootstrapWorkersInvariant: the worker bound threaded through the
// replicate mining and pdist stages must never change the bootstrap
// result (it exists so a -workers daemon or CLI stops oversubscribing
// during validation, nothing more).
func TestBootstrapWorkersInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap is slow")
	}
	db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := BootstrapClaimsWorkers(db, DefaultMinSupport, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BootstrapClaimsWorkers(db, DefaultMinSupport, 2, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range seq.Support {
		if par.Support[k] != v {
			t.Fatalf("workers changed bootstrap support at %s: %v vs %v", k, v, par.Support[k])
		}
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap is slow")
	}
	db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	a, err := BootstrapClaims(db, DefaultMinSupport, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapClaims(db, DefaultMinSupport, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Support {
		if b.Support[k] != v {
			t.Fatalf("non-deterministic bootstrap at %s", k)
		}
	}
}
