package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"cuisines/internal/treecmp"
)

// Validation quantifies the Sec. VII claims. The paper validates its
// cuisine trees against geography by inspection; here every tree is
// compared to the geographic tree with cophenetic correlation, Baker's
// gamma, Robinson-Foulds and Fowlkes-Mallows B_k, and the two headline
// anecdotes (Canada-France vs Canada-US, India-North-Africa vs
// India-Southeast-Asia) are checked as cophenetic inequalities.
type Validation struct {
	// TreeFit holds, per candidate tree, its similarity to geography.
	TreeFit []TreeFit
	// Claims holds the anecdote checks.
	Claims []Claim
}

// TreeFit is one tree's geography-similarity report.
type TreeFit struct {
	Name   string
	Report *treecmp.Report
}

// Claim is a verifiable qualitative statement from Sec. VII.
type Claim struct {
	Name string
	// Tree the claim was evaluated on.
	Tree string
	// Detail is a human-readable explanation with the measured numbers.
	Detail string
	Holds  bool
}

// Validate runs the full Sec. VII analysis over built figures.
func Validate(f *Figures) (*Validation, error) {
	v := &Validation{}
	candidates := []*CuisineTree{f.Euclidean, f.Cosine, f.Jaccard, f.Auth}
	for _, c := range candidates {
		rep, err := treecmp.Compare(c.Tree, f.Geo.Tree, []int{4, 8})
		if err != nil {
			return nil, fmt.Errorf("core: comparing %s to geography: %w", c.Name, err)
		}
		v.TreeFit = append(v.TreeFit, TreeFit{Name: c.Name, Report: rep})
	}

	// Claim 1 (paper): among the pattern trees, the Euclidean one
	// resembles geography the most. Evaluated on Baker's gamma — the
	// rank-based statistic is the fair cross-metric comparator, since the
	// three metrics put cophenetic heights on incomparable scales.
	best := bestFit(v.TreeFit[:3])
	v.Claims = append(v.Claims, Claim{
		Name:   "euclidean-closest-to-geography",
		Tree:   "patterns",
		Detail: fitDetail(v.TreeFit[:3]),
		Holds:  best == "patterns-euclidean",
	})

	// Claim 2 (paper): authenticity clustering gives "similar yet better
	// results than Euclidean distance-based HAC". Evaluated on cophenetic
	// correlation against the raw geographic distances — the canonical
	// dendrogram-fit statistic. (On Baker's gamma the euclidean pattern
	// tree is ahead; EXPERIMENTS.md reports both sides.)
	authFit := v.TreeFit[3].Report.Cophenetic
	eucFit := v.TreeFit[0].Report.Cophenetic
	v.Claims = append(v.Claims, Claim{
		Name:   "authenticity-at-least-as-good",
		Tree:   "authenticity-euclidean",
		Detail: fmt.Sprintf("authenticity cophenetic r %.3f vs euclidean pattern tree %.3f", authFit, eucFit),
		Holds:  authFit >= eucFit,
	})

	// Claim 3 (paper): "both techniques predict a closer relationship
	// among Canadian and French cuisines as compared to Canadian and US
	// cuisines despite their geographical proximity."
	for _, ct := range []*CuisineTree{f.Euclidean, f.Auth} {
		claim, err := copheneticCloser(ct, "Canadian", "French", "US")
		if err != nil {
			return nil, err
		}
		claim.Name = "canada-closer-to-france-than-us"
		v.Claims = append(v.Claims, claim)
	}

	// Claim 4 (paper): "Indian subcontinent cuisine is closer to African
	// cuisine as compared to its geographical neighbors like Thai and
	// Southeast Asian cuisines."
	for _, ct := range []*CuisineTree{f.Euclidean, f.Auth} {
		for _, neighbor := range []string{"Thai", "Southeast Asian"} {
			claim, err := copheneticCloser(ct, "Indian Subcontinent", "Northern Africa", neighbor)
			if err != nil {
				return nil, err
			}
			claim.Name = "india-closer-to-north-africa-than-" + strings.ReplaceAll(strings.ToLower(neighbor), " ", "-")
			v.Claims = append(v.Claims, claim)
		}
	}
	return v, nil
}

// copheneticCloser builds a claim that a is closer to b than to c in the
// tree (by cophenetic merge height).
func copheneticCloser(ct *CuisineTree, a, b, c string) (Claim, error) {
	hab, err := ct.Tree.MergeHeightBetween(a, b)
	if err != nil {
		return Claim{}, err
	}
	hac, err := ct.Tree.MergeHeightBetween(a, c)
	if err != nil {
		return Claim{}, err
	}
	return Claim{
		Tree:   ct.Name,
		Detail: fmt.Sprintf("coph(%s, %s) = %.3f vs coph(%s, %s) = %.3f", a, b, hab, a, c, hac),
		Holds:  hab < hac,
	}, nil
}

func bestFit(fits []TreeFit) string {
	best, bestGamma := "", -2.0
	for _, f := range fits {
		if f.Report.BakersGamma > bestGamma {
			best, bestGamma = f.Name, f.Report.BakersGamma
		}
	}
	return best
}

func maxGamma(fits []TreeFit) float64 {
	out := -2.0
	for _, f := range fits {
		if f.Report.BakersGamma > out {
			out = f.Report.BakersGamma
		}
	}
	return out
}

func fitDetail(fits []TreeFit) string {
	parts := make([]string, len(fits))
	for i, f := range fits {
		parts[i] = fmt.Sprintf("%s gamma=%.3f coph=%.3f", f.Name, f.Report.BakersGamma, f.Report.Cophenetic)
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}

// Render writes the validation as a readable report.
func (v *Validation) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tree\tCophenetic r\tBaker's gamma\tRF dist\tB_4\tB_8")
	for _, f := range v.TreeFit {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			f.Name, f.Report.Cophenetic, f.Report.BakersGamma, f.Report.RobinsonFoulds,
			f.Report.FowlkesMallows[4], f.Report.FowlkesMallows[8])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	for _, c := range v.Claims {
		status := "HOLDS"
		if !c.Holds {
			status = "FAILS"
		}
		if _, err := fmt.Fprintf(w, "[%s] %s (%s): %s\n", status, c.Name, c.Tree, c.Detail); err != nil {
			return err
		}
	}
	return nil
}

// AllClaimsHold reports whether every Sec. VII claim was reproduced.
func (v *Validation) AllClaimsHold() bool {
	for _, c := range v.Claims {
		if !c.Holds {
			return false
		}
	}
	return true
}
