package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"cuisines/internal/authenticity"
	"cuisines/internal/distance"
	"cuisines/internal/encode"
	"cuisines/internal/hac"
	"cuisines/internal/recipedb"
	"cuisines/internal/rng"
)

// Stability reports how robust the Sec. VII anecdote claims are under
// bootstrap resampling of the recipes — the "more sophisticated
// validation" the paper's future-work section calls for. Each replicate
// resamples every region's recipes with replacement, rebuilds the
// Euclidean pattern tree and the authenticity tree, and re-evaluates the
// claims; Support is the fraction of replicates in which a claim held.
type Stability struct {
	Iterations int
	// Support maps "<claim>/<tree>" to the fraction of replicates where
	// the claim held.
	Support map[string]float64
}

// anecdote is one cophenetic-inequality claim.
type anecdote struct {
	name    string
	a, b, c string // claim: a closer to b than to c
}

var anecdotes = []anecdote{
	{"canada-closer-to-france-than-us", "Canadian", "French", "US"},
	{"india-closer-to-north-africa-than-thai", "Indian Subcontinent", "Northern Africa", "Thai"},
	{"india-closer-to-north-africa-than-southeast-asian", "Indian Subcontinent", "Northern Africa", "Southeast Asian"},
}

// BootstrapClaims runs the bootstrap with every available core. iters
// <= 0 defaults to 20; see BootstrapClaimsWorkers for the worker knob.
func BootstrapClaims(db *recipedb.DB, minSupport float64, iters int, seed uint64) (*Stability, error) {
	return BootstrapClaimsWorkers(db, minSupport, iters, seed, 0)
}

// BootstrapClaimsWorkers is BootstrapClaims with an explicit worker
// bound for each replicate's mining fan-out and pdist stages (<= 0
// means GOMAXPROCS, 1 forces the sequential path). Callers that already
// run under a bounded pool — a daemon started with -workers N, or
// evaltrees -workers — must pass their bound through here, otherwise
// every replicate silently fans out over all cores and oversubscribes
// the host during validation.
func BootstrapClaimsWorkers(db *recipedb.DB, minSupport float64, iters int, seed uint64, workers int) (*Stability, error) {
	if iters <= 0 {
		iters = 20
	}
	if minSupport <= 0 {
		minSupport = DefaultMinSupport
	}
	r := rng.New(seed)
	held := make(map[string]int)
	for it := 0; it < iters; it++ {
		boot, err := resample(db, r.Fork(), it)
		if err != nil {
			return nil, err
		}
		// Euclidean pattern tree.
		mined, err := MineRegionsWorkers(boot, minSupport, workers)
		if err != nil {
			return nil, err
		}
		regions, sets := PatternSets(mined)
		pm, err := encode.BuildPatternMatrix(regions, AnchoredPatterns(sets), encode.Binary)
		if err != nil {
			return nil, err
		}
		pTree, err := PatternTreeWorkers(pm, distance.Euclidean, EuclideanLinkage, workers)
		if err != nil {
			return nil, err
		}
		// Authenticity tree.
		am, err := authenticity.Build(boot, authenticity.Options{MinRegionPrevalence: AuthMinRegionPrevalence})
		if err != nil {
			return nil, err
		}
		aTree, err := AuthenticityTreeWorkers(am, distance.Euclidean, hac.Average, workers)
		if err != nil {
			return nil, err
		}
		for _, tree := range []*CuisineTree{pTree, aTree} {
			for _, an := range anecdotes {
				hab, err := tree.Tree.MergeHeightBetween(an.a, an.b)
				if err != nil {
					return nil, err
				}
				hac, err := tree.Tree.MergeHeightBetween(an.a, an.c)
				if err != nil {
					return nil, err
				}
				if hab < hac {
					held[an.name+"/"+tree.Name]++
				}
			}
		}
	}
	st := &Stability{Iterations: iters, Support: make(map[string]float64, len(held))}
	for _, an := range anecdotes {
		for _, tree := range []string{"patterns-euclidean", "authenticity-euclidean"} {
			key := an.name + "/" + tree
			st.Support[key] = float64(held[key]) / float64(iters)
		}
	}
	return st, nil
}

// resample draws each region's recipes with replacement, preserving
// region sizes. Recipe IDs are re-minted to stay unique.
func resample(db *recipedb.DB, r *rng.RNG, round int) (*recipedb.DB, error) {
	var out []recipedb.Recipe
	for _, region := range db.Regions() {
		rs := db.RegionRecipes(region)
		for i := range rs {
			pick := rs[r.Intn(len(rs))]
			cp := *pick
			cp.ID = fmt.Sprintf("boot%d-%s-%d", round, cp.ID, i)
			out = append(out, cp)
		}
	}
	return recipedb.New(out)
}

// Render writes the stability report.
func (s *Stability) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Claim / tree\tBootstrap support (n=%d)\n", s.Iterations)
	keys := make([]string, 0, len(s.Support))
	for k := range s.Support {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(tw, "%s\t%.2f\n", k, s.Support[k])
	}
	return tw.Flush()
}
