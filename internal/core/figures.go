package core

import (
	"fmt"

	"cuisines/internal/authenticity"
	"cuisines/internal/distance"
	"cuisines/internal/encode"
	"cuisines/internal/geo"
	"cuisines/internal/hac"
	"cuisines/internal/itemset"
	"cuisines/internal/kmeans"
	"cuisines/internal/recipedb"
)

// DefaultLinkage is the linkage method used for the cosine, Jaccard,
// authenticity and geographic dendrograms. Average (UPGMA) is the
// conventional choice for feature-derived cuisine trees; the A2 ablation
// bench sweeps the alternatives.
const DefaultLinkage = hac.Average

// EuclideanLinkage is the linkage used for the Fig. 2 Euclidean pattern
// tree: Ward, matching the sklearn convention the paper's toolchain
// defaults to (AgglomerativeClustering uses Ward, which is defined only
// for Euclidean distances — the reason the other metrics fall back to
// average linkage). Ward also neutralizes the pattern-count size bias
// that otherwise dominates raw Euclidean distances between binary
// pattern vectors.
const EuclideanLinkage = hac.Ward

// CuisineTree bundles a dendrogram with the pipeline that produced it.
type CuisineTree struct {
	// Name identifies the experiment ("fig2-euclidean", ...).
	Name string
	Tree *hac.Tree
	// Distances is the condensed matrix the tree was linked from.
	Distances *distance.Condensed
	Metric    distance.Metric
	Linkage   hac.Method
}

// PatternTree builds one of the Figs. 2-4 dendrograms: binary pattern
// feature matrix -> pdist(metric) -> linkage.
func PatternTree(pm *encode.PatternMatrix, metric distance.Metric, method hac.Method) (*CuisineTree, error) {
	if pm.X.Rows() < 2 {
		return nil, fmt.Errorf("core: need at least two cuisines, have %d", pm.X.Rows())
	}
	d := distance.Pdist(pm.X, metric)
	lk, err := hac.Cluster(d, method)
	if err != nil {
		return nil, err
	}
	tree, err := hac.BuildTree(lk, pm.Regions)
	if err != nil {
		return nil, err
	}
	return &CuisineTree{
		Name:      "patterns-" + metric.String(),
		Tree:      tree,
		Distances: d,
		Metric:    metric,
		Linkage:   method,
	}, nil
}

// AuthenticityTree builds the Fig. 5 dendrogram from the ingredient
// relative-prevalence matrix.
func AuthenticityTree(am *authenticity.Matrix, metric distance.Metric, method hac.Method) (*CuisineTree, error) {
	x := am.FeatureMatrix()
	if x.Rows() < 2 {
		return nil, fmt.Errorf("core: need at least two cuisines, have %d", x.Rows())
	}
	d := distance.Pdist(x, metric)
	lk, err := hac.Cluster(d, method)
	if err != nil {
		return nil, err
	}
	tree, err := hac.BuildTree(lk, am.Regions)
	if err != nil {
		return nil, err
	}
	return &CuisineTree{
		Name:      "authenticity-" + metric.String(),
		Tree:      tree,
		Distances: d,
		Metric:    metric,
		Linkage:   method,
	}, nil
}

// GeographicTree builds the Fig. 6 validation dendrogram from
// great-circle distances between the region centroids.
func GeographicTree(regions []string, method hac.Method) (*CuisineTree, error) {
	d, err := geo.DistanceMatrix(regions)
	if err != nil {
		return nil, err
	}
	lk, err := hac.Cluster(d, method)
	if err != nil {
		return nil, err
	}
	tree, err := hac.BuildTree(lk, regions)
	if err != nil {
		return nil, err
	}
	return &CuisineTree{
		Name:      "geographic",
		Tree:      tree,
		Distances: d,
		Metric:    distance.Euclidean, // label only; distances are haversine km
		Linkage:   method,
	}, nil
}

// ElbowAnalysis runs the Fig. 1 experiment on the pattern feature matrix.
func ElbowAnalysis(pm *encode.PatternMatrix, kMax int, seed uint64) (*kmeans.ElbowCurve, error) {
	if kMax <= 0 {
		kMax = 15
	}
	return kmeans.Elbow(pm.X, kMax, kmeans.Options{Seed: seed})
}

// Figures is the complete artifact set of the paper's evaluation.
type Figures struct {
	Table1    *Table1
	Elbow     *kmeans.ElbowCurve    // Fig. 1
	Euclidean *CuisineTree          // Fig. 2
	Cosine    *CuisineTree          // Fig. 3
	Jaccard   *CuisineTree          // Fig. 4
	Auth      *CuisineTree          // Fig. 5
	Geo       *CuisineTree          // Fig. 6
	Patterns  *encode.PatternMatrix // shared feature matrix (Figs. 1-4)
	AuthMat   *authenticity.Matrix  // shared authenticity matrix (Fig. 5)
	Mined     []RegionPatterns      // per-cuisine FP-Growth output
}

// AnchoredPatterns filters out pure-process patterns (cooking grammar
// such as "add + heat" and the regional technique combinations), keeping
// patterns anchored on at least one ingredient or utensil. The clustering
// features use the anchored set: process grammar is near-universal and
// only adds size noise to the geometry, mirroring the significance
// ranker's headline exclusion.
func AnchoredPatterns(sets [][]itemset.Pattern) [][]itemset.Pattern {
	out := make([][]itemset.Pattern, len(sets))
	for i, ps := range sets {
		for _, p := range ps {
			anchored := false
			for _, it := range p.Items.Items() {
				if it.Kind != itemset.Process {
					anchored = true
					break
				}
			}
			if anchored {
				out[i] = append(out[i], p)
			}
		}
	}
	return out
}

// BuildFigures runs the whole evaluation pipeline on a database. method
// is the linkage for the cosine/Jaccard/authenticity/geographic trees
// (the Euclidean pattern tree always uses EuclideanLinkage).
func BuildFigures(db *recipedb.DB, minSupport float64, method hac.Method) (*Figures, error) {
	if minSupport <= 0 {
		minSupport = DefaultMinSupport
	}
	mined, err := MineRegions(db, minSupport)
	if err != nil {
		return nil, err
	}
	ranker := NewRanker(mined, 0)
	t1 := &Table1{MinSupport: minSupport}
	for _, rp := range mined {
		t1.Rows = append(t1.Rows, Table1Row{
			Region:   rp.Region,
			Recipes:  rp.Recipes,
			Top:      ranker.Top(rp.Patterns, 3),
			Patterns: len(rp.Patterns),
		})
	}

	regions, patternSets := PatternSets(mined)
	pm, err := encode.BuildPatternMatrix(regions, AnchoredPatterns(patternSets), encode.Binary)
	if err != nil {
		return nil, err
	}
	elbow, err := ElbowAnalysis(pm, 15, 1)
	if err != nil {
		return nil, err
	}
	euc, err := PatternTree(pm, distance.Euclidean, EuclideanLinkage)
	if err != nil {
		return nil, err
	}
	cos, err := PatternTree(pm, distance.Cosine, method)
	if err != nil {
		return nil, err
	}
	jac, err := PatternTree(pm, distance.Jaccard, method)
	if err != nil {
		return nil, err
	}
	am, err := authenticity.Build(db, authenticity.Options{MinRegionPrevalence: 0.03})
	if err != nil {
		return nil, err
	}
	auth, err := AuthenticityTree(am, distance.Euclidean, method)
	if err != nil {
		return nil, err
	}
	geoTree, err := GeographicTree(db.Regions(), method)
	if err != nil {
		return nil, err
	}
	return &Figures{
		Table1:    t1,
		Elbow:     elbow,
		Euclidean: euc,
		Cosine:    cos,
		Jaccard:   jac,
		Auth:      auth,
		Geo:       geoTree,
		Patterns:  pm,
		AuthMat:   am,
		Mined:     mined,
	}, nil
}
