package core

import (
	"fmt"

	"cuisines/internal/authenticity"
	"cuisines/internal/distance"
	"cuisines/internal/encode"
	"cuisines/internal/geo"
	"cuisines/internal/hac"
	"cuisines/internal/itemset"
	"cuisines/internal/kmeans"
	"cuisines/internal/parallel"
	"cuisines/internal/recipedb"
)

// DefaultLinkage is the linkage method used for the cosine, Jaccard,
// authenticity and geographic dendrograms. Average (UPGMA) is the
// conventional choice for feature-derived cuisine trees; the A2 ablation
// bench sweeps the alternatives.
const DefaultLinkage = hac.Average

// EuclideanLinkage is the linkage used for the Fig. 2 Euclidean pattern
// tree: Ward, matching the sklearn convention the paper's toolchain
// defaults to (AgglomerativeClustering uses Ward, which is defined only
// for Euclidean distances — the reason the other metrics fall back to
// average linkage). Ward also neutralizes the pattern-count size bias
// that otherwise dominates raw Euclidean distances between binary
// pattern vectors.
const EuclideanLinkage = hac.Ward

// CuisineTree bundles a dendrogram with the pipeline that produced it.
type CuisineTree struct {
	// Name identifies the experiment ("fig2-euclidean", ...).
	Name string
	Tree *hac.Tree
	// Distances is the condensed matrix the tree was linked from.
	Distances *distance.Condensed
	Metric    distance.Metric
	Linkage   hac.Method
}

// PatternTree builds one of the Figs. 2-4 dendrograms: binary pattern
// feature matrix -> pdist(metric) -> linkage. The pdist stage uses every
// available core; see PatternTreeWorkers for the knob.
func PatternTree(pm *encode.PatternMatrix, metric distance.Metric, method hac.Method) (*CuisineTree, error) {
	return PatternTreeWorkers(pm, metric, method, 0)
}

// PatternTreeWorkers is PatternTree with an explicit worker count for the
// pdist stage (<= 0 means GOMAXPROCS, 1 forces the sequential path).
func PatternTreeWorkers(pm *encode.PatternMatrix, metric distance.Metric, method hac.Method, workers int) (*CuisineTree, error) {
	if pm.X.Rows() < 2 {
		return nil, fmt.Errorf("core: need at least two cuisines, have %d", pm.X.Rows())
	}
	d := distance.PdistWorkers(pm.X, metric, workers)
	lk, err := hac.Cluster(d, method)
	if err != nil {
		return nil, err
	}
	tree, err := hac.BuildTree(lk, pm.Regions)
	if err != nil {
		return nil, err
	}
	return &CuisineTree{
		Name:      "patterns-" + metric.String(),
		Tree:      tree,
		Distances: d,
		Metric:    metric,
		Linkage:   method,
	}, nil
}

// AuthenticityTree builds the Fig. 5 dendrogram from the ingredient
// relative-prevalence matrix. The pdist stage uses every available core;
// see AuthenticityTreeWorkers for the knob.
func AuthenticityTree(am *authenticity.Matrix, metric distance.Metric, method hac.Method) (*CuisineTree, error) {
	return AuthenticityTreeWorkers(am, metric, method, 0)
}

// AuthenticityTreeWorkers is AuthenticityTree with an explicit worker
// count for the pdist stage (<= 0 means GOMAXPROCS, 1 forces the
// sequential path).
func AuthenticityTreeWorkers(am *authenticity.Matrix, metric distance.Metric, method hac.Method, workers int) (*CuisineTree, error) {
	x := am.FeatureMatrix()
	if x.Rows() < 2 {
		return nil, fmt.Errorf("core: need at least two cuisines, have %d", x.Rows())
	}
	d := distance.PdistWorkers(x, metric, workers)
	lk, err := hac.Cluster(d, method)
	if err != nil {
		return nil, err
	}
	tree, err := hac.BuildTree(lk, am.Regions)
	if err != nil {
		return nil, err
	}
	return &CuisineTree{
		Name:      "authenticity-" + metric.String(),
		Tree:      tree,
		Distances: d,
		Metric:    metric,
		Linkage:   method,
	}, nil
}

// GeographicTree builds the Fig. 6 validation dendrogram from
// great-circle distances between the region centroids.
func GeographicTree(regions []string, method hac.Method) (*CuisineTree, error) {
	d, err := geo.DistanceMatrix(regions)
	if err != nil {
		return nil, err
	}
	lk, err := hac.Cluster(d, method)
	if err != nil {
		return nil, err
	}
	tree, err := hac.BuildTree(lk, regions)
	if err != nil {
		return nil, err
	}
	return &CuisineTree{
		Name:      "geographic",
		Tree:      tree,
		Distances: d,
		Metric:    distance.Euclidean, // label only; distances are haversine km
		Linkage:   method,
	}, nil
}

// AuthMinRegionPrevalence is the Fig. 5 long-tail cutoff: items whose
// prevalence never reaches it in any region are dropped from the
// authenticity matrix. Shared by the monolithic build below and the
// staged pipeline (internal/pipeline), where it is part of the auth
// stage key.
const AuthMinRegionPrevalence = 0.03

// ElbowKMax and ElbowSeed pin the Fig. 1 sweep; the staged pipeline
// keys the elbow artifact on both.
const (
	ElbowKMax = 15
	ElbowSeed = 1
)

// SplitWorkers splits a resolved worker budget between the six-way
// figure fan-out and each figure's interior pdist / k-sweep so
// outer*inner never exceeds it: a knob of 4 runs four figures
// concurrently with sequential interiors, a knob of 16 runs all six
// with two workers each. The split depends only on the worker count,
// never on scheduling.
func SplitWorkers(workers int) (outer, inner int) {
	w := parallel.Count(workers)
	outer = w
	if outer > 6 {
		outer = 6
	}
	return outer, w / outer
}

// BuildPatternFeatures derives Table I and the anchored binary pattern
// feature matrix from a mining run — the "matrices" step shared by
// BuildFiguresWorkers and the staged pipeline.
func BuildPatternFeatures(mined []RegionPatterns, minSupport float64) (*Table1, *encode.PatternMatrix, error) {
	ranker := NewRanker(mined, 0)
	t1 := &Table1{MinSupport: minSupport}
	for _, rp := range mined {
		t1.Rows = append(t1.Rows, Table1Row{
			Region:   rp.Region,
			Recipes:  rp.Recipes,
			Top:      ranker.Top(rp.Patterns, 3),
			Patterns: len(rp.Patterns),
		})
	}
	regions, patternSets := PatternSets(mined)
	pm, err := encode.BuildPatternMatrix(regions, AnchoredPatterns(patternSets), encode.Binary)
	if err != nil {
		return nil, nil, err
	}
	return t1, pm, nil
}

// ElbowAnalysis runs the Fig. 1 experiment on the pattern feature matrix.
// The k sweep uses every available core; see ElbowAnalysisWorkers.
func ElbowAnalysis(pm *encode.PatternMatrix, kMax int, seed uint64) (*kmeans.ElbowCurve, error) {
	return ElbowAnalysisWorkers(pm, kMax, seed, 0)
}

// ElbowAnalysisWorkers is ElbowAnalysis with an explicit worker count for
// the k sweep (<= 0 means GOMAXPROCS, 1 forces the sequential path).
func ElbowAnalysisWorkers(pm *encode.PatternMatrix, kMax int, seed uint64, workers int) (*kmeans.ElbowCurve, error) {
	if kMax <= 0 {
		kMax = 15
	}
	return kmeans.Elbow(pm.X, kMax, kmeans.Options{Seed: seed, Workers: workers})
}

// Figures is the complete artifact set of the paper's evaluation.
type Figures struct {
	Table1    *Table1
	Elbow     *kmeans.ElbowCurve    // Fig. 1
	Euclidean *CuisineTree          // Fig. 2
	Cosine    *CuisineTree          // Fig. 3
	Jaccard   *CuisineTree          // Fig. 4
	Auth      *CuisineTree          // Fig. 5
	Geo       *CuisineTree          // Fig. 6
	Patterns  *encode.PatternMatrix // shared feature matrix (Figs. 1-4)
	AuthMat   *authenticity.Matrix  // shared authenticity matrix (Fig. 5)
	Mined     []RegionPatterns      // per-cuisine FP-Growth output
}

// AnchoredPatterns filters out pure-process patterns (cooking grammar
// such as "add + heat" and the regional technique combinations), keeping
// patterns anchored on at least one ingredient or utensil. The clustering
// features use the anchored set: process grammar is near-universal and
// only adds size noise to the geometry, mirroring the significance
// ranker's headline exclusion.
func AnchoredPatterns(sets [][]itemset.Pattern) [][]itemset.Pattern {
	out := make([][]itemset.Pattern, len(sets))
	for i, ps := range sets {
		for _, p := range ps {
			anchored := false
			for _, it := range p.Items.Items() {
				if it.Kind != itemset.Process {
					anchored = true
					break
				}
			}
			if anchored {
				out[i] = append(out[i], p)
			}
		}
	}
	return out
}

// BuildFigures runs the whole evaluation pipeline on a database. method
// is the linkage for the cosine/Jaccard/authenticity/geographic trees
// (the Euclidean pattern tree always uses EuclideanLinkage). Every stage
// uses all available cores; see BuildFiguresWorkers for the knob.
func BuildFigures(db *recipedb.DB, minSupport float64, method hac.Method) (*Figures, error) {
	return BuildFiguresWorkers(db, minSupport, method, 0)
}

// BuildFiguresWorkers is BuildFigures with an explicit worker count
// (<= 0 means GOMAXPROCS, 1 forces the fully sequential path). The
// pipeline parallelizes at two grains: the per-cuisine FP-Growth runs
// fan out first over the full budget, then the six independent figure
// builds (the Fig. 1 elbow sweep, the three pattern trees, the
// authenticity matrix + tree, and the geographic tree) run concurrently,
// with the budget split between the outer fan-out and each figure's
// inner pdist / k-sweep so the total concurrency stays bounded by
// workers rather than multiplying across the nesting. Each figure lands
// in its own slot and depends only on the immutable inputs, so the
// artifact set is identical to the sequential build for any worker
// count.
func BuildFiguresWorkers(db *recipedb.DB, minSupport float64, method hac.Method, workers int) (*Figures, error) {
	if minSupport <= 0 {
		minSupport = DefaultMinSupport
	}
	mined, err := MineRegionsWorkers(db, minSupport, workers)
	if err != nil {
		return nil, err
	}
	t1, pm, err := BuildPatternFeatures(mined, minSupport)
	if err != nil {
		return nil, err
	}
	outer, inner := SplitWorkers(workers)
	figs := &Figures{Table1: t1, Patterns: pm, Mined: mined}
	err = parallel.Do(outer,
		func() (err error) {
			figs.Elbow, err = ElbowAnalysisWorkers(pm, ElbowKMax, ElbowSeed, inner)
			return err
		},
		func() (err error) {
			figs.Euclidean, err = PatternTreeWorkers(pm, distance.Euclidean, EuclideanLinkage, inner)
			return err
		},
		func() (err error) {
			figs.Cosine, err = PatternTreeWorkers(pm, distance.Cosine, method, inner)
			return err
		},
		func() (err error) {
			figs.Jaccard, err = PatternTreeWorkers(pm, distance.Jaccard, method, inner)
			return err
		},
		func() (err error) {
			am, err := authenticity.Build(db, authenticity.Options{MinRegionPrevalence: AuthMinRegionPrevalence})
			if err != nil {
				return err
			}
			figs.AuthMat = am
			figs.Auth, err = AuthenticityTreeWorkers(am, distance.Euclidean, method, inner)
			return err
		},
		func() (err error) {
			figs.Geo, err = GeographicTree(db.Regions(), method)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	return figs, nil
}
