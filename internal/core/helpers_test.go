package core

import (
	"cuisines/internal/encode"
	"cuisines/internal/itemset"
)

// encodeOne is a tiny test helper wrapping the encoder.
func encodeOne(regions []string, sets [][]itemset.Pattern) (*encode.PatternMatrix, error) {
	return encode.BuildPatternMatrix(regions, sets, encode.Binary)
}
