// Package distance implements the pairwise distance computations the
// paper's clustering pipeline performs with scipy: the Euclidean, Cosine
// and Jaccard metrics of equations (3)-(5) (in their standard forms — the
// paper's printed formulas are garbled ratios; we implement the metrics
// scipy.spatial.distance actually computes, which is what the authors'
// code calls), condensed distance vectors (pdist) and square-form
// conversion.
package distance

import (
	"fmt"
	"math"
)

// Metric identifies a pairwise distance function on float64 vectors.
type Metric int

const (
	// Euclidean is sqrt(sum (x_i - y_i)^2) — eq. (5), Fig. 2.
	Euclidean Metric = iota
	// Cosine is 1 - x.y/(|x||y|) — eq. (4), Fig. 3.
	Cosine
	// Jaccard treats nonzero entries as set membership:
	// |x xor y| / |x or y| — eq. (3), Fig. 4 (scipy's boolean Jaccard).
	Jaccard
	// Hamming is the fraction of coordinates that differ.
	Hamming
	// Manhattan is sum |x_i - y_i| (cityblock).
	Manhattan
	// Correlation is 1 - Pearson correlation of the two vectors.
	Correlation
)

// String returns the lowercase metric name (matching scipy's naming).
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Cosine:
		return "cosine"
	case Jaccard:
		return "jaccard"
	case Hamming:
		return "hamming"
	case Manhattan:
		return "cityblock"
	case Correlation:
		return "correlation"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ParseMetric parses a metric name (scipy-style, case-sensitive lowercase
// plus the common aliases).
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "euclidean", "l2":
		return Euclidean, nil
	case "cosine":
		return Cosine, nil
	case "jaccard":
		return Jaccard, nil
	case "hamming":
		return Hamming, nil
	case "cityblock", "manhattan", "l1":
		return Manhattan, nil
	case "correlation":
		return Correlation, nil
	default:
		return 0, fmt.Errorf("distance: unknown metric %q", s)
	}
}

// Between computes the metric between two equal-length vectors. It panics
// on length mismatch (a programming error, not an input error).
func (m Metric) Between(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("distance: length mismatch %d vs %d", len(x), len(y)))
	}
	switch m {
	case Euclidean:
		return euclidean(x, y)
	case Cosine:
		return cosine(x, y)
	case Jaccard:
		return jaccard(x, y)
	case Hamming:
		return hamming(x, y)
	case Manhattan:
		return manhattan(x, y)
	case Correlation:
		return correlation(x, y)
	default:
		panic("distance: unknown metric")
	}
}

func euclidean(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func manhattan(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += math.Abs(x[i] - y[i])
	}
	return s
}

// cosine returns 1 - cos(x, y). The cosine of a zero vector is undefined,
// so a convention is needed: two all-zero vectors are at distance 0
// (preserving the identity d(x, x) = 0), and a zero vector against a
// nonzero one is at distance 1 (no shared direction).
func cosine(x, y []float64) float64 {
	var dot, nx, ny float64
	for i := range x {
		dot += x[i] * y[i]
		nx += x[i] * x[i]
		ny += y[i] * y[i]
	}
	if nx == 0 && ny == 0 {
		return 0
	}
	if nx == 0 || ny == 0 {
		return 1
	}
	c := dot / (math.Sqrt(nx) * math.Sqrt(ny))
	// Clamp against floating-point drift so distances stay in [0, 2].
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return 1 - c
}

// jaccard implements scipy's boolean Jaccard dissimilarity on vectors:
// the proportion of coordinates where exactly one of x, y is nonzero,
// among coordinates where at least one is nonzero. Two all-zero vectors
// are at distance 0.
func jaccard(x, y []float64) float64 {
	var diff, union int
	for i := range x {
		xb := x[i] != 0
		yb := y[i] != 0
		if xb || yb {
			union++
			if xb != yb {
				diff++
			}
		}
	}
	if union == 0 {
		return 0
	}
	return float64(diff) / float64(union)
}

func hamming(x, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	diff := 0
	for i := range x {
		if x[i] != y[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(x))
}

// correlation returns 1 - Pearson r. Constant vectors have undefined
// correlation; following scipy, two identical constant vectors get 0 and
// otherwise the distance is 1.
func correlation(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 && syy == 0 {
		// Both constant: identical up to offset — treat as distance 0 if
		// truly equal, else maximal decorrelation.
		for i := range x {
			if x[i] != y[i] {
				return 1
			}
		}
		return 0
	}
	if sxx == 0 || syy == 0 {
		return 1
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return 1 - r
}
