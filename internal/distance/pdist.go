package distance

import (
	"fmt"
	"math"

	"cuisines/internal/matrix"
	"cuisines/internal/parallel"
)

// Condensed is a condensed pairwise distance vector over n observations,
// exactly like scipy's pdist output: distances d(i,j) for i < j stored
// row-major, length n*(n-1)/2.
type Condensed struct {
	n int
	d []float64
}

// NewCondensed allocates a zero condensed matrix over n observations.
func NewCondensed(n int) *Condensed {
	if n < 0 {
		panic("distance: negative n")
	}
	return &Condensed{n: n, d: make([]float64, n*(n-1)/2)}
}

// FromSquare builds a condensed matrix from a full symmetric matrix,
// validating symmetry and zero diagonal within tol.
func FromSquare(m *matrix.Dense, tol float64) (*Condensed, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("distance: square matrix required, got %dx%d", m.Rows(), m.Cols())
	}
	n := m.Rows()
	c := NewCondensed(n)
	for i := 0; i < n; i++ {
		if diff := m.At(i, i); diff > tol || diff < -tol {
			return nil, fmt.Errorf("distance: nonzero diagonal at %d: %v", i, diff)
		}
		for j := i + 1; j < n; j++ {
			a, b := m.At(i, j), m.At(j, i)
			if d := a - b; d > tol || d < -tol {
				return nil, fmt.Errorf("distance: asymmetric at (%d,%d): %v vs %v", i, j, a, b)
			}
			c.Set(i, j, a)
		}
	}
	return c, nil
}

// N returns the number of observations.
func (c *Condensed) N() int { return c.n }

// Len returns the number of stored pairs, n*(n-1)/2.
func (c *Condensed) Len() int { return len(c.d) }

// index maps (i, j), i != j, to the condensed offset.
func (c *Condensed) index(i, j int) int {
	if i == j || i < 0 || j < 0 || i >= c.n || j >= c.n {
		panic(fmt.Sprintf("distance: bad pair (%d,%d) for n=%d", i, j, c.n))
	}
	if i > j {
		i, j = j, i
	}
	// offset of row i block: sum_{k<i} (n-1-k) = i*n - i*(i+1)/2 - i ... use
	// the standard closed form.
	return i*(2*c.n-i-1)/2 + (j - i - 1)
}

// rowOffset is the condensed offset of pair (i, i+1) — where row i's
// block starts.
func (c *Condensed) rowOffset(i int) int {
	return i * (2*c.n - i - 1) / 2
}

// unindex maps a condensed offset back to its (i, j) pair, i < j — the
// inverse of index. Row i's block starts at rowOffset(i), a decreasing
// quadratic in i, so i is recovered by solving the quadratic and nudging
// for float rounding.
func (c *Condensed) unindex(k int) (int, int) {
	if k < 0 || k >= len(c.d) {
		panic(fmt.Sprintf("distance: offset %d out of range %d", k, len(c.d)))
	}
	tn := 2*c.n - 1
	i := int((float64(tn) - math.Sqrt(float64(tn*tn-8*k))) / 2)
	for i > 0 && c.rowOffset(i) > k {
		i--
	}
	for c.rowOffset(i+1) <= k {
		i++
	}
	return i, i + 1 + (k - c.rowOffset(i))
}

// At returns d(i, j); d(i, i) is 0.
func (c *Condensed) At(i, j int) float64 {
	if i == j {
		if i < 0 || i >= c.n {
			panic(fmt.Sprintf("distance: index %d out of range %d", i, c.n))
		}
		return 0
	}
	return c.d[c.index(i, j)]
}

// Set assigns d(i, j) = d(j, i) = v. Setting the diagonal panics.
func (c *Condensed) Set(i, j int, v float64) {
	c.d[c.index(i, j)] = v
}

// Values returns the underlying condensed vector (aliased, scipy layout).
func (c *Condensed) Values() []float64 { return c.d }

// Square expands to a full symmetric matrix (scipy squareform).
func (c *Condensed) Square() *matrix.Dense {
	m := matrix.NewDense(c.n, c.n)
	for i := 0; i < c.n; i++ {
		for j := i + 1; j < c.n; j++ {
			v := c.At(i, j)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// Clone returns a deep copy.
func (c *Condensed) Clone() *Condensed {
	out := NewCondensed(c.n)
	copy(out.d, c.d)
	return out
}

// Pdist computes the condensed pairwise distances between the rows of m
// under the metric — the scipy pdist call at the heart of Sec. VI.A. It
// uses every available core; see PdistWorkers for the knob.
func Pdist(m *matrix.Dense, metric Metric) *Condensed {
	return PdistWorkers(m, metric, 0)
}

// PdistWorkers is Pdist with an explicit worker count (<= 0 means
// GOMAXPROCS, 1 forces the sequential path). The condensed vector is
// split into equal contiguous chunks of cells — not rows, whose
// triangular lengths would leave the chunks unbalanced — and each worker
// walks its chunk, mapping the first offset back to its (i, j) pair and
// advancing incrementally from there. Every cell is a pure function of
// two matrix rows written to its own slot, so the result is
// byte-identical to the sequential computation for any worker count.
func PdistWorkers(m *matrix.Dense, metric Metric, workers int) *Condensed {
	n := m.Rows()
	c := NewCondensed(n)
	// Hoist the row extraction out of the O(n^2) inner loop: Row performs
	// a bounds check and slice construction per call, which the pure
	// metric kernels don't amortize.
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	parallel.ForChunks(len(c.d), workers, func(lo, hi int) {
		i, j := c.unindex(lo)
		for k := lo; k < hi; k++ {
			c.d[k] = metric.Between(rows[i], rows[j])
			if j++; j == n {
				i++
				j = i + 1
			}
		}
	})
	return c
}

// ArgClosest returns, for observation i, the index j != i minimizing
// d(i, j), and that distance. It panics if n < 2.
func (c *Condensed) ArgClosest(i int) (int, float64) {
	if c.n < 2 {
		panic("distance: ArgClosest needs n >= 2")
	}
	best := -1
	bestD := 0.0
	for j := 0; j < c.n; j++ {
		if j == i {
			continue
		}
		d := c.At(i, j)
		if best == -1 || d < bestD {
			best, bestD = j, d
		}
	}
	return best, bestD
}

// Max returns the largest stored distance (0 for n < 2).
func (c *Condensed) Max() float64 {
	max := 0.0
	for _, v := range c.d {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the mean pairwise distance (0 for n < 2).
func (c *Condensed) Mean() float64 {
	if len(c.d) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range c.d {
		s += v
	}
	return s / float64(len(c.d))
}
