package distance

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Flat codec: the artifact store's replacement for gob on Condensed
// (DESIGN.md §10). Layout, little-endian:
//
//	u64 n | n*(n-1)/2 × f64 (IEEE 754 bits, condensed row-major)
//
// Decoding validates the triangular length and fills one []float64
// allocation; values round-trip bit-exactly.

// FlatSize returns the exact AppendFlat encoding size in bytes.
func (c *Condensed) FlatSize() int { return 8 + 8*len(c.d) }

// AppendFlat appends the flat encoding of c to dst and returns the
// extended slice.
func (c *Condensed) AppendFlat(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.n))
	for _, v := range c.d {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeFlat decodes an AppendFlat encoding. Any size or range mismatch
// is an error (the artifact store treats codec errors as cache misses).
func DecodeFlat(data []byte) (*Condensed, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("distance: flat payload truncated: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	// Cap n before the triangular product to keep it overflow-safe.
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("distance: flat payload n=%d out of range", n)
	}
	pairs := int(n) * (int(n) - 1) / 2
	if len(data) != 8+8*pairs {
		return nil, fmt.Errorf("distance: flat payload %d bytes, want %d for n=%d", len(data), 8+8*pairs, n)
	}
	out := make([]float64, pairs)
	body := data[8:]
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return &Condensed{n: int(n), d: out}, nil
}
