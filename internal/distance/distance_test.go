package distance

import (
	"math"
	"math/rand"
	"testing"

	"cuisines/internal/matrix"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEuclideanKnown(t *testing.T) {
	if d := Euclidean.Between([]float64{0, 0}, []float64{3, 4}); !almostEq(d, 5) {
		t.Fatalf("euclidean = %v", d)
	}
}

func TestManhattanKnown(t *testing.T) {
	if d := Manhattan.Between([]float64{1, 2}, []float64{4, -2}); !almostEq(d, 7) {
		t.Fatalf("manhattan = %v", d)
	}
}

func TestCosineKnown(t *testing.T) {
	if d := Cosine.Between([]float64{1, 0}, []float64{0, 1}); !almostEq(d, 1) {
		t.Fatalf("orthogonal cosine = %v", d)
	}
	if d := Cosine.Between([]float64{2, 2}, []float64{1, 1}); !almostEq(d, 0) {
		t.Fatalf("parallel cosine = %v", d)
	}
	if d := Cosine.Between([]float64{1, 1}, []float64{-1, -1}); !almostEq(d, 2) {
		t.Fatalf("antiparallel cosine = %v", d)
	}
}

func TestCosineZeroVectors(t *testing.T) {
	zero := []float64{0, 0}
	if d := Cosine.Between(zero, zero); d != 0 {
		t.Fatalf("cosine(0,0) = %v", d)
	}
	if d := Cosine.Between(zero, []float64{1, 0}); d != 1 {
		t.Fatalf("cosine(0,x) = %v", d)
	}
}

func TestJaccardKnown(t *testing.T) {
	x := []float64{1, 1, 0, 0}
	y := []float64{1, 0, 1, 0}
	// union = 3 coords, differing = 2 -> 2/3
	if d := Jaccard.Between(x, y); !almostEq(d, 2.0/3) {
		t.Fatalf("jaccard = %v", d)
	}
	if d := Jaccard.Between(x, x); d != 0 {
		t.Fatalf("jaccard identity = %v", d)
	}
	if d := Jaccard.Between([]float64{0, 0}, []float64{0, 0}); d != 0 {
		t.Fatalf("jaccard empty = %v", d)
	}
	// membership, not magnitude
	if d := Jaccard.Between([]float64{5, 0}, []float64{2, 0}); d != 0 {
		t.Fatalf("jaccard should ignore magnitudes: %v", d)
	}
}

func TestHammingKnown(t *testing.T) {
	if d := Hamming.Between([]float64{1, 2, 3, 4}, []float64{1, 0, 3, 0}); !almostEq(d, 0.5) {
		t.Fatalf("hamming = %v", d)
	}
	if d := Hamming.Between(nil, nil); d != 0 {
		t.Fatalf("hamming nil = %v", d)
	}
}

func TestCorrelationKnown(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2, 4, 6}
	if d := Correlation.Between(x, y); !almostEq(d, 0) {
		t.Fatalf("perfectly correlated = %v", d)
	}
	z := []float64{3, 2, 1}
	if d := Correlation.Between(x, z); !almostEq(d, 2) {
		t.Fatalf("anticorrelated = %v", d)
	}
	c := []float64{5, 5, 5}
	if d := Correlation.Between(c, c); d != 0 {
		t.Fatalf("constant self = %v", d)
	}
	if d := Correlation.Between(c, []float64{5, 5, 6}); d != 1 {
		t.Fatalf("constant vs varying = %v", d)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Euclidean.Between([]float64{1}, []float64{1, 2})
}

func TestMetricNamesRoundTrip(t *testing.T) {
	for _, m := range []Metric{Euclidean, Cosine, Jaccard, Hamming, Manhattan, Correlation} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: %v %v", m, got, err)
		}
	}
	if _, err := ParseMetric("chebyshev"); err == nil {
		t.Fatal("unknown metric should error")
	}
	for _, alias := range []string{"l1", "l2", "manhattan"} {
		if _, err := ParseMetric(alias); err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
	}
}

func TestCondensedIndexing(t *testing.T) {
	c := NewCondensed(4)
	v := 1.0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			c.Set(i, j, v)
			v++
		}
	}
	if c.Len() != 6 {
		t.Fatalf("len = %d", c.Len())
	}
	// Symmetry of accessors and zero diagonal.
	for i := 0; i < 4; i++ {
		if c.At(i, i) != 0 {
			t.Fatal("diagonal not zero")
		}
		for j := 0; j < 4; j++ {
			if !almostEq(c.At(i, j), c.At(j, i)) {
				t.Fatal("asymmetric accessor")
			}
		}
	}
	// scipy layout: d(0,1), d(0,2), d(0,3), d(1,2), d(1,3), d(2,3)
	want := []float64{1, 2, 3, 4, 5, 6}
	for i, w := range want {
		if c.Values()[i] != w {
			t.Fatalf("layout mismatch: %v", c.Values())
		}
	}
}

func TestCondensedSquareRoundTrip(t *testing.T) {
	c := NewCondensed(5)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			c.Set(i, j, r.Float64())
		}
	}
	sq := c.Square()
	c2, err := FromSquare(sq, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if !almostEq(c.At(i, j), c2.At(i, j)) {
				t.Fatal("square round trip failed")
			}
		}
	}
}

func TestFromSquareRejectsBadInput(t *testing.T) {
	asym := matrix.FromRows([][]float64{{0, 1}, {2, 0}})
	if _, err := FromSquare(asym, 1e-9); err == nil {
		t.Fatal("asymmetric accepted")
	}
	diag := matrix.FromRows([][]float64{{1, 0}, {0, 0}})
	if _, err := FromSquare(diag, 1e-9); err == nil {
		t.Fatal("nonzero diagonal accepted")
	}
	rect := matrix.NewDense(2, 3)
	if _, err := FromSquare(rect, 1e-9); err == nil {
		t.Fatal("rectangular accepted")
	}
}

func TestPdistMatchesDirect(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{0, 0}, {3, 4}, {6, 8},
	})
	c := Pdist(m, Euclidean)
	if !almostEq(c.At(0, 1), 5) || !almostEq(c.At(0, 2), 10) || !almostEq(c.At(1, 2), 5) {
		t.Fatalf("pdist = %v", c.Values())
	}
}

func TestArgClosest(t *testing.T) {
	m := matrix.FromRows([][]float64{{0}, {10}, {1}})
	c := Pdist(m, Euclidean)
	j, d := c.ArgClosest(0)
	if j != 2 || !almostEq(d, 1) {
		t.Fatalf("ArgClosest = %d, %v", j, d)
	}
}

func TestMaxMean(t *testing.T) {
	m := matrix.FromRows([][]float64{{0}, {1}, {3}})
	c := Pdist(m, Euclidean)
	if !almostEq(c.Max(), 3) {
		t.Fatalf("max = %v", c.Max())
	}
	if !almostEq(c.Mean(), (1.0+3+2)/3) {
		t.Fatalf("mean = %v", c.Mean())
	}
	if (&Condensed{n: 1}).Mean() != 0 || (&Condensed{n: 1}).Max() != 0 {
		t.Fatal("singleton stats nonzero")
	}
}

// --- metric axiom properties ----------------------------------------------

func randVec(r *rand.Rand, dim int, binary bool) []float64 {
	v := make([]float64, dim)
	for i := range v {
		if binary {
			v[i] = float64(r.Intn(2))
		} else {
			v[i] = r.NormFloat64()
		}
	}
	return v
}

func TestMetricAxiomsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	metrics := []struct {
		m        Metric
		binary   bool
		triangle bool // true metrics obey the triangle inequality
	}{
		{Euclidean, false, true},
		{Manhattan, false, true},
		{Jaccard, true, true},
		{Hamming, true, true},
		{Cosine, false, false},
		{Correlation, false, false},
	}
	for _, tc := range metrics {
		for trial := 0; trial < 300; trial++ {
			dim := 1 + r.Intn(10)
			x := randVec(r, dim, tc.binary)
			y := randVec(r, dim, tc.binary)
			z := randVec(r, dim, tc.binary)
			dxy := tc.m.Between(x, y)
			dyx := tc.m.Between(y, x)
			if dxy < -1e-12 {
				t.Fatalf("%v: negative distance %v", tc.m, dxy)
			}
			if !almostEq(dxy, dyx) {
				t.Fatalf("%v: asymmetric %v vs %v", tc.m, dxy, dyx)
			}
			if d := tc.m.Between(x, x); math.Abs(d) > 1e-9 {
				t.Fatalf("%v: d(x,x) = %v", tc.m, d)
			}
			if tc.triangle {
				dxz := tc.m.Between(x, z)
				dzy := tc.m.Between(z, y)
				if dxy > dxz+dzy+1e-9 {
					t.Fatalf("%v: triangle violated: %v > %v + %v", tc.m, dxy, dxz, dzy)
				}
			}
		}
	}
}

func TestPdistSymmetricPositiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n, dim := 2+r.Intn(8), 1+r.Intn(6)
		m := matrix.NewDense(n, dim)
		for i := 0; i < n; i++ {
			for j := 0; j < dim; j++ {
				m.Set(i, j, r.NormFloat64())
			}
		}
		for _, metric := range []Metric{Euclidean, Cosine, Manhattan} {
			c := Pdist(m, metric)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if c.At(i, j) < -1e-12 {
						t.Fatalf("negative pdist entry")
					}
					if !almostEq(c.At(i, j), c.At(j, i)) {
						t.Fatalf("pdist asymmetric")
					}
				}
			}
		}
	}
}

// TestPdistWorkersEquivalence checks that the chunked parallel pdist is
// byte-identical to the sequential one for every metric and worker count.
func TestPdistWorkersEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := matrix.NewDense(37, 19)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			// Mix in zeros so the boolean metrics exercise their edge
			// conventions too.
			if r.Float64() < 0.3 {
				continue
			}
			m.Set(i, j, r.NormFloat64())
		}
	}
	for _, metric := range []Metric{Euclidean, Cosine, Jaccard, Hamming, Manhattan, Correlation} {
		seq := PdistWorkers(m, metric, 1)
		for _, workers := range []int{2, 3, 8, 0} {
			par := PdistWorkers(m, metric, workers)
			if len(seq.Values()) != len(par.Values()) {
				t.Fatalf("%v workers=%d: length mismatch", metric, workers)
			}
			for k, v := range seq.Values() {
				if par.Values()[k] != v {
					t.Fatalf("%v workers=%d: entry %d = %v, sequential %v", metric, workers, k, par.Values()[k], v)
				}
			}
		}
	}
}

// TestUnindexRoundTrip checks that unindex is the exact inverse of index
// for every offset — the property the chunked pdist's cursor decoding
// rests on.
func TestUnindexRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 5, 26, 37, 256} {
		c := NewCondensed(n)
		for k := 0; k < c.Len(); k++ {
			i, j := c.unindex(k)
			if i < 0 || i >= j || j >= n {
				t.Fatalf("n=%d: unindex(%d) = (%d,%d) out of order", n, k, i, j)
			}
			if got := c.index(i, j); got != k {
				t.Fatalf("n=%d: index(unindex(%d)) = %d", n, k, got)
			}
		}
	}
}
