package distance

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestCondensedGobRoundTrip(t *testing.T) {
	c := NewCondensed(4)
	v := 0.0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			v += 0.77
			c.Set(i, j, v)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		t.Fatal(err)
	}
	var got *Condensed
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() {
		t.Fatalf("round trip changed n: got %d, want %d", got.N(), c.N())
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if got.At(i, j) != c.At(i, j) {
				t.Errorf("(%d,%d): got %v, want %v", i, j, got.At(i, j), c.At(i, j))
			}
		}
	}
}

func TestCondensedGobRejectsCorruptLength(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(condensedWire{N: 4, D: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	var c Condensed
	if err := c.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decode of mismatched length succeeded, want error")
	}
}
