package distance

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
)

// Condensed hides its observation count and condensed vector, so plain
// gob encoding would silently lose them. The explicit pair serializes
// both and validates the triangular length on decode; float64 values
// round-trip bit-exactly, which warm-disk pipeline replays depend on.

type condensedWire struct {
	N int
	D []float64
}

// GobEncode implements gob.GobEncoder.
func (c *Condensed) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(condensedWire{N: c.n, D: c.d}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (c *Condensed) GobDecode(data []byte) error {
	var w condensedWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	// Cap n before the triangular product: a crafted stream with n
	// near 2^32 would overflow n*(n-1)/2 and slip past the length
	// check with an empty D slice.
	if w.N < 0 || w.N > math.MaxInt32 || int64(len(w.D)) != int64(w.N)*int64(w.N-1)/2 {
		return fmt.Errorf("distance: corrupt gob stream: n=%d with %d pairs", w.N, len(w.D))
	}
	c.n = w.N
	c.d = w.D
	if c.d == nil {
		c.d = []float64{}
	}
	return nil
}
