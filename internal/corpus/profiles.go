package corpus

import (
	"fmt"
	"sort"
)

// Profile construction helpers. bp builds a band ingredient, bu a band
// utensil; tri builds a three-item ingredient bundle and pair a two-item
// one (multi-item Table I patterns and pattern-count multipliers).
func bp(name string, prob float64) ItemProb { return ItemProb{ing(name), prob} }
func bu(name string, prob float64) ItemProb { return ItemProb{ute(name), prob} }

func tri(prob float64, a, b, c string) Bundle {
	return Bundle{Items: []ItemRef{ing(a), ing(b), ing(c)}, Prob: prob}
}

func pair(prob float64, a, b string) Bundle {
	return Bundle{Items: []ItemRef{ing(a), ing(b)}, Prob: prob}
}

// boostProb is the inclusion probability of each region-specific
// booster bundle (see Profile.Boost and regionBoost in generator.go):
// triples of regional-technique processes that raise a region's Table I
// pattern count -- the knob separating pattern-rich rows (Northern
// Africa, 134) from sparse ones (Australian, 29) -- without entering the
// headline ranking (process-only patterns are excluded there) and
// without creating cross-region pattern overlap (each region's booster
// processes are private to it).
const boostProb = 0.21

// spiceBeltTriples are six identical ingredient bundles planted in BOTH
// the Indian Subcontinent and Northern Africa profiles. The paper's
// Sec. VII highlights that these two cuisines cluster together despite
// the distance between them ("Due to prevalent use of spices in the two
// regions"); sharing whole frequent patterns -- not just single items --
// is what makes that grouping visible to every distance metric,
// including the size-biased Euclidean one.
var spiceBeltTriples = []Bundle{
	tri(0.215, "dried ginger", "long pepper", "black cardamom"),
	tri(0.215, "fenugreek seed", "nigella seed", "dried mint"),
	tri(0.215, "white poppy seed", "mace", "dried pomegranate seed"),
	tri(0.21, "clarified butter", "gram flour", "dried fig"),
	tri(0.21, "anise seed", "dried rose petal", "sesame paste"),
	tri(0.21, "split pea", "dried lime", "peppercorn blend"),
}

// profiles holds the 26 calibrated regions. Region names match
// internal/geo and Table I. Comments give the Table I row each profile is
// calibrated against: headline pattern @ support, pattern count.
//
// Calibration rules (see DESIGN.md §5):
//   - Band probabilities stay in [0.20, 0.45); independent pairs then fall
//     below the 0.2 threshold, so multi-item patterns come only from
//     bundles.
//   - A region's intended headline must out-score every other non-universal
//     pattern under score = support * (1 + 0.25*(len-1)).
//   - Utensil supports are quoted pre-sparsity; the generator clears
//     utensils from 12.36% of recipes, so utensil probabilities here are
//     set ~14% above their target measured support.
var profiles = []Profile{
	{
		// Table I: Butter @ 0.24, 29 patterns.
		Region: "Australian", Recipes: 5823,
		Band: []ItemProb{
			bp("butter", 0.24), bp("lamb", 0.215), bp("beef", 0.21),
			bp("beetroot", 0.21), bp("bbq sauce", 0.21), bp("macadamia", 0.21),
			bp("passionfruit", 0.21), bp("cheddar cheese", 0.21), bp("bacon", 0.21),
			bp("tomato", 0.21), bp("cream", 0.21), bp("golden syrup", 0.21),
			bp("peas", 0.21), bp("wattleseed", 0.21), bu("oven", 0.24),
		},
		Pools:        []string{"anglosphere", "westeurope"},
		IntendedTop:  []string{"butter"},
		PaperSupport: 0.24, PaperPatternCount: 29,
	},
	{
		// Table I: Butter + salt @ 0.24, 51 patterns.
		Region: "Belgian", Recipes: 1060,
		Boost: 3,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{ing("butter"), ing("salt")}, Prob: 0.24},
			pair(0.21, "mussels", "frites"),
		},
		Band: []ItemProb{
			bp("leek", 0.22), bp("endive", 0.21), bp("abbey ale", 0.21),
			bp("dark chocolate", 0.22), bp("almond", 0.21), bp("mayonnaise", 0.21),
			bp("shallot", 0.21), bp("white wine", 0.21), bp("cream", 0.21),
			bp("nutmeg", 0.21), bp("speculoos spice", 0.21), bp("brown shrimp", 0.21),
			bp("juniper berry", 0.21), bp("cherry beer", 0.21),
			bp("waffle batter", 0.21), bp("chicory", 0.21),
		},
		Pools:        []string{"westeurope"},
		IntendedTop:  []string{"butter+salt"},
		PaperSupport: 0.24, PaperPatternCount: 51,
	},
	{
		// Table I: Onion @ 0.20, 31 patterns. Canada is calibrated with a
		// French-leaning pantry (colonial history, Sec. VII): its band
		// shares six items with the French band but only two with the US.
		Region: "Canadian", Recipes: 6700,
		Band: []ItemProb{
			bp("onion", 0.23),
			bp("maple syrup", 0.21), bp("butter", 0.21), bp("cream", 0.21),
			bp("potato", 0.21), bp("salmon", 0.21), bp("peas", 0.21),
			bp("apple", 0.21), bp("thyme", 0.21), bp("white wine", 0.21),
			bp("dijon mustard", 0.21), bp("mushroom", 0.21), bp("ham", 0.21),
			bp("carrot", 0.21), bp("celery", 0.21), bp("shallot", 0.21),
			bp("nutmeg", 0.21), bp("parsley", 0.21), bp("gruyere cheese", 0.21),
			bp("puff pastry", 0.21),
		},
		Pools:        []string{"anglosphere", "westeurope"},
		IntendedTop:  []string{"onion"},
		PaperSupport: 0.20, PaperPatternCount: 31,
	},
	{
		// Table I: Garlic Clove @ 0.24, 32 patterns.
		Region: "Caribbean", Recipes: 3026,
		Boost: 2,
		Band: []ItemProb{
			bp("garlic clove", 0.24), bp("allspice", 0.22), bp("scotch bonnet pepper", 0.21),
			bp("coconut", 0.21), bp("rum", 0.21), bp("jerk seasoning", 0.21),
			bp("plantain", 0.21), bp("thyme", 0.21), bp("lime", 0.21),
			bp("callaloo", 0.21), bp("ackee", 0.21), bp("salt cod", 0.21),
			bp("pigeon peas", 0.21), bp("curry powder", 0.21), bp("ginger", 0.21),
		},
		Pools:        []string{"latam", "africa"},
		IntendedTop:  []string{"garlic clove"},
		PaperSupport: 0.24, PaperPatternCount: 32,
	},
	{
		// Table I: Onion @ 0.30, 38 patterns.
		Region: "Central American", Recipes: 460,
		Boost: 1,
		Band: []ItemProb{
			bp("onion", 0.30),
			bp("black beans", 0.25), bp("corn", 0.24), bp("plantain", 0.22),
			bp("rice", 0.23), bp("queso fresco", 0.21), bp("lime", 0.21),
			bp("corn tortilla", 0.22), bp("tomato", 0.22), bp("avocado", 0.21),
			bp("yuca", 0.21), bp("cabbage", 0.21), bp("crema", 0.21),
			bp("achiote", 0.21), bp("loroco", 0.21), bp("masa", 0.21),
			bp("red beans", 0.21), bp("sweet plantain", 0.21), bp("chayote", 0.21),
			bp("cotija cheese", 0.21), bp("pepitas", 0.21), bp("hibiscus", 0.21),
		},
		Pools:        []string{"latam"},
		IntendedTop:  []string{"onion"},
		PaperSupport: 0.30, PaperPatternCount: 38,
	},
	{
		// Table I: Soy sauce + add + heat @ 0.27, 88 patterns.
		Region: "Chinese and Mongolian", Recipes: 5896,
		Boost: 3,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{ing("soy sauce"), proc("add"), proc("heat")}, Prob: 0.27},
			tri(0.22, "ginger", "garlic", "green onion"),
			tri(0.215, "rice wine", "white pepper", "cornstarch"),
			tri(0.215, "oyster sauce", "bok choy", "shiitake mushroom"),
			tri(0.21, "hoisin sauce", "five spice powder", "star anise"),
		},
		Band: []ItemProb{
			bp("sesame oil", 0.22), bp("rice", 0.24), bp("scallion oil", 0.21),
			bp("rice vinegar", 0.21), bp("chili oil", 0.21), bp("tofu", 0.21),
			bp("napa cabbage", 0.21), bp("dried chili", 0.21), bp("sichuan peppercorn", 0.21),
			bp("bean paste", 0.21), bp("wood ear mushroom", 0.21), bp("bamboo shoot", 0.21),
			bp("water chestnut", 0.21), bp("black vinegar", 0.21), bu("wok", 0.25),
		},
		Pools:           []string{"eastasia"},
		MeanIngredients: 12,
		IntendedTop:     []string{"add+heat+soy sauce"},
		PaperSupport:    0.27, PaperPatternCount: 88,
	},
	{
		// Table I: Onion @ 0.29, 54 patterns.
		Region: "Deutschland", Recipes: 4323,
		Boost: 3,
		Bundles: []Bundle{
			pair(0.21, "schnitzel cutlet", "lemon wedge"),
		},
		Band: []ItemProb{
			bp("onion", 0.29),
			bp("potato", 0.25), bp("pork", 0.23), bp("sausage", 0.24),
			bp("sauerkraut", 0.22), bp("mustard", 0.22), bp("caraway seed", 0.21),
			bp("beer", 0.22), bp("cabbage", 0.21), bp("apple", 0.21),
			bp("rye flour", 0.21), bp("quark", 0.21), bp("red cabbage", 0.21),
			bp("bread dumpling", 0.21), bp("horseradish", 0.21), bp("paprika", 0.21),
			bp("bacon", 0.21), bp("vinegar", 0.21), bp("marjoram", 0.21),
			bp("juniper berry", 0.21), bp("pretzel", 0.21), bp("butter", 0.21),
		},
		Pools:        []string{"westeurope"},
		IntendedTop:  []string{"onion"},
		PaperSupport: 0.29, PaperPatternCount: 54,
	},
	{
		// Table I: Cream @ 0.30, 60 patterns.
		Region: "Eastern European", Recipes: 2503,
		Boost: 3,
		Bundles: []Bundle{
			pair(0.21, "buckwheat", "wild mushroom"),
			pair(0.20, "sour cherry", "poppy seed"),
		},
		Band: []ItemProb{
			bp("cream", 0.30),
			bp("sour cream", 0.26), bp("beet", 0.24), bp("dill", 0.24),
			bp("potato", 0.24), bp("cabbage", 0.23), bp("paprika", 0.22),
			bp("onion", 0.21), bp("caraway seed", 0.21), bp("horseradish", 0.21),
			bp("pickle", 0.21), bp("kielbasa", 0.21), bp("rye bread", 0.21),
			bp("cottage cheese", 0.21), bp("garlic", 0.21), bp("bay leaf", 0.21),
			bp("pork", 0.21), bp("vinegar", 0.21), bp("walnut", 0.21),
			bp("honey", 0.21), bp("apple", 0.21), bp("egg noodle", 0.21),
		},
		Pools:        []string{"westeurope"},
		IntendedTop:  []string{"cream"},
		PaperSupport: 0.30, PaperPatternCount: 60,
	},
	{
		// Table I: skillet @ 0.21, 60 patterns. Butter, cream and wine sit
		// just below the band so that the utensil tops the ranking as in
		// the paper; the skillet probability is quoted pre-sparsity.
		Region: "French", Recipes: 6381,
		Boost: 3,
		Band: []ItemProb{
			bu("skillet", 0.26),
			bp("shallot", 0.21), bp("thyme", 0.21), bp("white wine", 0.21),
			bp("dijon mustard", 0.21), bp("mushroom", 0.21), bp("gruyere cheese", 0.21),
			bp("baguette", 0.21), bp("herbes de provence", 0.21), bp("chive", 0.21),
			bp("brie", 0.21), bp("cognac", 0.21), bp("lardon", 0.21),
			bp("creme anglaise", 0.21), bp("puff pastry", 0.21), bp("nutmeg", 0.21),
			bp("celery", 0.21), bp("carrot", 0.21), bp("parsley", 0.21),
			bp("onion", 0.21), bp("leek confit", 0.21), bp("apple", 0.21),
			bp("tarragon", 0.21), bp("creme fraiche", 0.21),
		},
		Pools:        []string{"westeurope", "mediterranean"},
		IntendedTop:  []string{"skillet"},
		PaperSupport: 0.21, PaperPatternCount: 60,
	},
	{
		// Table I: Olive Oil @ 0.40, 43 patterns.
		Region: "Greek", Recipes: 4185,
		Boost: 2,
		Band: []ItemProb{
			bp("olive oil", 0.40),
			bp("feta cheese", 0.27), bp("oregano", 0.25), bp("lemon", 0.24),
			bp("yogurt", 0.23), bp("eggplant", 0.21), bp("zucchini", 0.21),
			bp("olives", 0.22), bp("honey", 0.21), bp("cinnamon", 0.21),
			bp("dill", 0.21), bp("phyllo dough", 0.21), bp("lamb", 0.21),
			bp("tomato", 0.23), bp("red wine vinegar", 0.21), bp("parsley", 0.21),
			bp("mint", 0.21), bp("white bean", 0.21), bp("artichoke", 0.21),
			bp("capers", 0.21), bp("rosemary", 0.21), bp("rice", 0.21),
		},
		Pools:        []string{"mediterranean"},
		IntendedTop:  []string{"olive oil"},
		PaperSupport: 0.40, PaperPatternCount: 43,
	},
	{
		// Table I: Onion + add + heat + salt @ 0.22, 119 patterns. The
		// spice-belt triples are shared by name with Northern Africa and
		// the Middle East, driving the paper's India-North-Africa grouping.
		Region: "Indian Subcontinent", Recipes: 6464,
		Boost: 3,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{ing("onion"), proc("add"), proc("heat"), ing("salt")}, Prob: 0.22},
			tri(0.215, "cumin", "coriander", "turmeric"),
			tri(0.215, "garam masala", "cardamom", "clove"),
			tri(0.215, "ginger", "green chili", "mustard seed"),
			tri(0.215, "ghee", "lentil", "basmati rice"),
			spiceBeltTriples[0], spiceBeltTriples[1], spiceBeltTriples[2],
			spiceBeltTriples[3], spiceBeltTriples[4], spiceBeltTriples[5],
		},
		Band: []ItemProb{
			bp("garlic paste", 0.22), bp("tomato", 0.24), bp("green cardamom", 0.21),
			bp("red chili", 0.22), bp("coriander leaves", 0.23), bp("mustard oil", 0.21),
			bp("saffron", 0.21), bp("rose water", 0.21), bp("poppy seed", 0.21),
			bp("curry powder", 0.21), bp("naan", 0.21), bp("basmati", 0.21),
		},
		Pools:           []string{"southasia"},
		MeanIngredients: 15,
		IntendedTop:     []string{"add+heat+onion+salt"},
		PaperSupport:    0.22, PaperPatternCount: 119,
	},
	{
		// Table I: Butter @ 0.32, 41 patterns.
		Region: "Irish", Recipes: 2532,
		Boost: 3,
		Bundles: []Bundle{
			pair(0.20, "black pudding", "brown sauce"),
		},
		Band: []ItemProb{
			bp("butter", 0.32),
			bp("potato", 0.28), bp("cabbage", 0.22), bp("leek", 0.21),
			bp("oats", 0.22), bp("soda bread", 0.21), bp("stout", 0.21),
			bp("lamb", 0.22), bp("smoked salmon", 0.21), bp("cheddar cheese", 0.21),
			bp("cream", 0.21), bp("parsnip", 0.21), bp("turnip", 0.21),
			bp("bacon", 0.21), bp("barley", 0.21), bp("carrot", 0.21),
			bp("onion", 0.21), bp("seaweed", 0.21),
		},
		Pools:        []string{"westeurope", "anglosphere"},
		IntendedTop:  []string{"butter"},
		PaperSupport: 0.32, PaperPatternCount: 41,
	},
	{
		// Table I: Parmesan cheese @ 0.31, 63 patterns.
		Region: "Italian", Recipes: 16582,
		Boost: 3,
		Bundles: []Bundle{
			pair(0.21, "pasta", "tomato sauce"),
			pair(0.205, "risotto rice", "white wine"),
			pair(0.205, "focaccia", "rosemary oil"),
			pair(0.205, "limoncello", "amaretti"),
		},
		Band: []ItemProb{
			bp("parmesan cheese", 0.31),
			bp("olive oil", 0.28), bp("basil", 0.25), bp("mozzarella", 0.23),
			bp("tomato", 0.26), bp("garlic", 0.24), bp("prosciutto", 0.21),
			bp("ricotta", 0.21), bp("pine nut", 0.21), bp("balsamic vinegar", 0.21),
			bp("pancetta", 0.21), bp("polenta", 0.21), bp("rosemary", 0.21),
			bp("sage", 0.21), bp("fennel", 0.21), bp("anchovy", 0.21),
			bp("capers", 0.21), bp("zucchini", 0.21), bp("eggplant", 0.21),
			bp("gorgonzola", 0.21), bp("espresso", 0.21), bp("mascarpone", 0.21),
		},
		Pools:        []string{"mediterranean"},
		IntendedTop:  []string{"parmesan cheese"},
		PaperSupport: 0.31, PaperPatternCount: 63,
	},
	{
		// Table I: Soy Sauce @ 0.45, 45 patterns. No soy bundle: the
		// paper's Japanese headline is the bare singleton.
		Region: "Japanese", Recipes: 2041,
		Boost: 1,
		Bundles: []Bundle{
			tri(0.22, "kombu", "katsuobushi", "mentsuyu"),
			tri(0.215, "shiso", "ponzu", "yuzu"),
		},
		Band: []ItemProb{
			bp("soy sauce", 0.44),
			bp("rice", 0.28), bp("dashi", 0.25), bp("mirin", 0.24),
			bp("miso", 0.23), bp("sake", 0.22), bp("nori", 0.21),
			bp("rice vinegar", 0.21), bp("sesame oil", 0.21), bp("tofu", 0.21),
			bp("wasabi", 0.21), bp("pickled ginger", 0.21), bp("bonito flake", 0.21),
			bp("green onion", 0.21), bp("shiitake mushroom", 0.21), bp("panko", 0.21),
			bp("udon noodle", 0.21), bp("matcha", 0.21), bp("daikon", 0.21),
			bp("short grain rice", 0.21), bp("seaweed", 0.21),
		},
		Pools:        []string{"eastasia"},
		IntendedTop:  []string{"soy sauce"},
		PaperSupport: 0.45, PaperPatternCount: 45,
	},
	{
		// Table I: Soy sauce + sesame oil @ 0.34 and green onion + sesame
		// oil @ 0.24, 85 patterns. The nested bundles keep the pair's
		// support at ~0.35 while the sesame-oil singleton stays at the
		// same level, so the pair's size bonus makes it the headline.
		Region: "Korean", Recipes: 668,
		Boost: 2,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{ing("soy sauce"), ing("sesame oil"), ing("green onion")}, Prob: 0.24},
			Bundle{Items: []ItemRef{ing("soy sauce"), ing("sesame oil")}, Prob: 0.14},
			tri(0.24, "kimchi", "gochujang", "sesame seed"),
			tri(0.235, "gochugaru", "napa cabbage", "perilla leaf"),
			tri(0.23, "doenjang", "tofu", "rice cake"),
			tri(0.225, "beef short rib", "asian pear", "rice syrup"),
		},
		Band: []ItemProb{
			bp("garlic", 0.26), bp("rice", 0.25), bp("ginger", 0.22),
			bp("egg", 0.21), bp("dried anchovy", 0.21), bp("sweet potato noodle", 0.21),
			bp("fish cake", 0.21), bp("radish", 0.21), bp("seaweed", 0.21),
			bp("bean sprout", 0.21), bp("spinach", 0.21), bp("mung bean", 0.21),
		},
		Pools:           []string{"eastasia"},
		MeanIngredients: 12,
		IntendedTop:     []string{"sesame oil+soy sauce"},
		PaperSupport:    0.34, PaperPatternCount: 85,
	},
	{
		// Table I: cilantro @ 0.25, 33 patterns.
		Region: "Mexican", Recipes: 14463,
		Boost: 2,
		Band: []ItemProb{
			bp("cilantro", 0.25),
			bp("corn tortilla", 0.23), bp("onion", 0.22), bp("lime", 0.22),
			bp("avocado", 0.21), bp("jalapeno", 0.21), bp("tomato", 0.22),
			bp("black beans", 0.21), bp("queso fresco", 0.21), bp("chipotle", 0.21),
			bp("tomatillo", 0.21), bp("poblano pepper", 0.21), bp("masa", 0.21),
			bp("crema", 0.21), bp("serrano pepper", 0.21), bp("epazote", 0.21),
		},
		Pools:        []string{"latam"},
		IntendedTop:  []string{"cilantro"},
		PaperSupport: 0.25, PaperPatternCount: 33,
	},
	{
		// Table I: Salt + bowl @ 0.22, 46 patterns. The bundle probability
		// is quoted pre-sparsity (0.25 * 0.876 ~ 0.22 measured).
		Region: "Middle Eastern", Recipes: 3905,
		Boost: 2,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{ing("salt"), ute("bowl")}, Prob: 0.27},
		},
		Band: []ItemProb{
			bp("olive oil", 0.24), bp("lemon juice", 0.23), bp("chickpea", 0.22),
			bp("tahini", 0.22), bp("parsley", 0.22), bp("lamb", 0.22),
			bp("mint", 0.21), bp("yogurt", 0.21), bp("sumac", 0.21),
			bp("za'atar", 0.21), bp("bulgur", 0.21), bp("pomegranate molasses", 0.21),
			bp("pita bread", 0.21), bp("eggplant", 0.21), bp("allspice", 0.21),
			bp("pine nut", 0.21), bp("date", 0.21), bp("rose water", 0.21),
			bp("cinnamon", 0.21), bp("cumin", 0.21), bp("garlic", 0.21),
		},
		Pools:        []string{"mena"},
		IntendedTop:  []string{"bowl+salt"},
		PaperSupport: 0.22, PaperPatternCount: 46,
	},
	{
		// Table I: Lemon Juice @ 0.22 / cumin + cinnamon @ 0.21 /
		// cumin + olive oil @ 0.22 / cumin + salt @ 0.22; 134 patterns —
		// the richest row. The headline triple contains two of the paper's
		// cumin pairs as subsets; nine further souk triples and the full
		// process boost drive the pattern count.
		Region: "Northern Africa", Recipes: 1611,
		Boost: 3,
		Bundles: []Bundle{
			tri(0.24, "cumin", "cinnamon", "olive oil"),
			tri(0.21, "coriander", "caraway seed", "harissa"),
			tri(0.21, "preserved lemon", "green olives", "flat-leaf parsley"),
			tri(0.21, "date", "almond", "honey"),
			spiceBeltTriples[0], spiceBeltTriples[1], spiceBeltTriples[2],
			spiceBeltTriples[3], spiceBeltTriples[4], spiceBeltTriples[5],
		},
		Band: []ItemProb{
			bp("lemon juice", 0.23), bp("paprika", 0.22), bp("ginger", 0.21),
			bp("tomato", 0.22), bp("onion", 0.21), bp("garlic", 0.21),
			bp("lamb", 0.21), bp("eggplant", 0.21), bp("orange", 0.21),
			bp("raisin", 0.21), bp("merguez", 0.21), bp("sumac", 0.21),
		},
		Pools:           []string{"mena"},
		MeanIngredients: 16,
		IntendedTop:     []string{"cinnamon+cumin+olive oil"},
		PaperSupport:    0.22, PaperPatternCount: 134,
	},
	{
		// Table I: Onion + add + heat @ 0.20, 51 patterns.
		Region: "Rest Africa", Recipes: 2740,
		Boost: 2,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{ing("onion"), proc("add"), proc("heat")}, Prob: 0.21},
			pair(0.20, "ginger", "chili"),
		},
		Band: []ItemProb{
			bp("peanut", 0.22), bp("okra", 0.21), bp("plantain", 0.22),
			bp("palm oil", 0.21), bp("cassava", 0.21), bp("scotch bonnet pepper", 0.21),
			bp("yam", 0.21), bp("tomato", 0.23), bp("maize meal", 0.21),
			bp("dried fish", 0.21), bp("egusi", 0.21), bp("berbere", 0.21),
			bp("sweet potato", 0.21), bp("collard greens", 0.21), bp("millet", 0.21),
			bp("groundnut paste", 0.21), bp("sorghum", 0.21), bp("injera", 0.21),
		},
		Pools:        []string{"africa"},
		IntendedTop:  []string{"add+heat+onion"},
		PaperSupport: 0.20, PaperPatternCount: 51,
	},
	{
		// Table I: Butter + Salt @ 0.22 and Salt + Sugar @ 0.21, 52
		// patterns.
		Region: "Scandinavian", Recipes: 2811,
		Boost: 3,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{ing("butter"), ing("salt")}, Prob: 0.24},
			Bundle{Items: []ItemRef{ing("salt"), ing("sugar")}, Prob: 0.21},
			pair(0.20, "gravlax cure", "mustard dill sauce"),
		},
		Band: []ItemProb{
			bp("dill", 0.22), bp("salmon", 0.24), bp("herring", 0.22),
			bp("rye bread", 0.22), bp("lingonberry", 0.21), bp("cardamom", 0.21),
			bp("caraway seed", 0.21), bp("beetroot", 0.21), bp("cucumber", 0.21),
			bp("mustard", 0.21), bp("sour cream", 0.21), bp("potato", 0.23),
			bp("crispbread", 0.21), bp("cloudberry", 0.21), bp("juniper berry", 0.21),
			bp("elderflower", 0.21), bp("oats", 0.21), bp("cinnamon", 0.21),
		},
		Pools:        []string{"nordic", "westeurope"},
		IntendedTop:  []string{"butter+salt"},
		PaperSupport: 0.22, PaperPatternCount: 52,
	},
	{
		// Table I: Onion + salt @ 0.21, 62 patterns.
		Region: "South American", Recipes: 7176,
		Boost: 3,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{ing("onion"), ing("salt")}, Prob: 0.215},
			pair(0.20, "farofa", "cassava flour"),
			pair(0.20, "aji amarillo", "choclo"),
		},
		Band: []ItemProb{
			bp("cilantro", 0.22), bp("lime", 0.21), bp("tomato", 0.22),
			bp("cumin", 0.21), bp("garlic", 0.22), bp("plantain", 0.21),
			bp("yuca", 0.21), bp("quinoa", 0.21), bp("sweet potato", 0.21),
			bp("avocado", 0.21), bp("chimichurri", 0.21), bp("dulce de leche", 0.21),
			bp("beef", 0.22), bp("hearts of palm", 0.21), bp("coconut milk", 0.21),
			bp("annatto", 0.21), bp("oregano", 0.21), bp("red onion", 0.21),
			bp("bell pepper", 0.21), bp("peanut", 0.21),
		},
		Pools:        []string{"latam"},
		IntendedTop:  []string{"onion+salt"},
		PaperSupport: 0.21, PaperPatternCount: 62,
	},
	{
		// Table I: Fish sauce @ 0.24, 69 patterns.
		Region: "Southeast Asian", Recipes: 1940,
		Boost: 3,
		Band: []ItemProb{
			bp("fish sauce", 0.25),
			bp("garlic", 0.23), bp("rice noodle", 0.22), bp("cilantro", 0.21),
			bp("bean sprout", 0.21), bp("jasmine rice", 0.22), bp("galangal", 0.21),
			bp("kaffir lime leaf", 0.21), bp("sweet soy sauce", 0.21),
			bp("candlenut", 0.21), bp("pandan leaf", 0.21), bp("banana leaf", 0.21),
			bp("dried anchovy", 0.21), bp("water spinach", 0.21), bp("coconut cream", 0.21),
			bp("turmeric", 0.21), bp("ginger", 0.21), bp("green onion", 0.21),
			bp("lemongrass", 0.21), bp("coconut milk", 0.22), bp("lime", 0.21),
		},
		Pools:        []string{"seasia"},
		IntendedTop:  []string{"fish sauce"},
		PaperSupport: 0.24, PaperPatternCount: 69,
	},
	{
		// Table I: Olive Oil @ 0.31, 67 patterns.
		Region: "Spanish and Portuguese", Recipes: 2844,
		Boost: 3,
		Bundles: []Bundle{
			pair(0.21, "chorizo", "paprika"),
			pair(0.205, "sherry vinegar", "manchego"),
			pair(0.205, "piri piri", "bacalhau"),
			pair(0.205, "jamon iberico", "membrillo paste"),
		},
		Band: []ItemProb{
			bp("olive oil", 0.31),
			bp("garlic", 0.26), bp("tomato", 0.24), bp("onion", 0.21),
			bp("bell pepper", 0.22), bp("rice", 0.22), bp("white wine", 0.21),
			bp("parsley", 0.22), bp("bay leaf", 0.21), bp("shrimp", 0.21),
			bp("salt cod", 0.21), bp("olives", 0.21), bp("serrano ham", 0.21),
			bp("piquillo pepper", 0.21), bp("lemon", 0.21), bp("cilantro", 0.21),
			bp("port wine", 0.21), bp("chickpea", 0.21), bp("clams", 0.21),
			bp("membrillo", 0.21), bp("orange", 0.21), bp("saffron", 0.21),
		},
		Pools:        []string{"mediterranean"},
		IntendedTop:  []string{"olive oil"},
		PaperSupport: 0.31, PaperPatternCount: 67,
	},
	{
		// Table I: Fish sauce + add + heat @ 0.23, 73 patterns.
		Region: "Thai", Recipes: 2605,
		Boost: 1,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{ing("fish sauce"), proc("add"), proc("heat")}, Prob: 0.23},
			tri(0.205, "lemongrass", "galangal", "kaffir lime leaf"),
			tri(0.205, "coconut milk", "red curry paste", "palm sugar"),
			tri(0.205, "thai basil", "bird eye chili", "lime"),
		},
		Band: []ItemProb{
			bp("garlic", 0.24), bp("jasmine rice", 0.23), bp("cilantro root", 0.21),
			bp("shallot", 0.22), bp("peanut", 0.21), bp("rice noodle", 0.22),
			bp("tamarind", 0.21), bp("shrimp paste", 0.21), bp("green papaya", 0.21),
			bp("sticky rice", 0.21), bp("holy basil", 0.21), bp("oyster sauce", 0.21),
			bp("pandan leaf", 0.21), bp("chili jam", 0.21),
		},
		Pools:           []string{"seasia"},
		MeanIngredients: 12,
		IntendedTop:     []string{"add+fish sauce+heat"},
		PaperSupport:    0.23, PaperPatternCount: 73,
	},
	{
		// Table I: Butter @ 0.37, 45 patterns.
		Region: "UK", Recipes: 4401,
		Boost: 2,
		Bundles: []Bundle{
			tri(0.21, "mincemeat", "brandy butter", "shortcrust pastry"),
			tri(0.205, "clotted cream", "scone", "strawberry jam"),
		},
		Band: []ItemProb{
			bp("butter", 0.37),
			bp("cheddar cheese", 0.22), bp("peas", 0.21), bp("worcestershire sauce", 0.21),
			bp("golden syrup", 0.21), bp("suet", 0.21), bp("stilton", 0.21),
			bp("black tea", 0.21), bp("marmite", 0.21), bp("back bacon", 0.21),
			bp("sausage", 0.21), bp("potato", 0.24), bp("double cream", 0.21),
			bp("self-raising flour", 0.21), bp("currant", 0.21), bp("mint sauce", 0.21),
			bp("parsnip", 0.21), bp("malt vinegar", 0.21), bu("oven", 0.38),
		},
		Pools:        []string{"westeurope", "anglosphere"},
		IntendedTop:  []string{"butter"},
		PaperSupport: 0.37, PaperPatternCount: 45,
	},
	{
		// Table I: Oven @ 0.46, Bake + preheat + oven + bowl @ 0.22,
		// Onion @ 0.25; 67 patterns. Utensil probabilities are quoted
		// pre-sparsity (oven 0.37 base + 0.25 bundle -> ~0.46 measured).
		Region: "US", Recipes: 5031,
		Boost: 0,
		Bundles: []Bundle{
			Bundle{Items: []ItemRef{proc("bake"), proc("preheat"), ute("oven"), ute("bowl")}, Prob: 0.25},
			tri(0.21, "ground beef", "burger bun", "dill pickle"),
			tri(0.205, "cornbread", "black-eyed peas", "andouille"),
		},
		Band: []ItemProb{
			bu("oven", 0.37),
			bp("onion", 0.25),
			bp("cheddar cheese", 0.21), bp("bacon", 0.22), bp("ketchup", 0.21),
			bp("ranch dressing", 0.21), bp("corn", 0.22), bp("peanut butter", 0.22),
			bp("vanilla extract", 0.23), bp("cranberry", 0.21), bp("pumpkin", 0.21),
			bp("maple syrup", 0.21), bp("brown sugar", 0.23), bp("cream cheese", 0.22),
			bp("buttermilk", 0.21), bp("pecan", 0.21), bp("chocolate chip", 0.21),
			bp("sour cream", 0.21), bp("hot sauce", 0.21), bp("mayonnaise", 0.21),
		},
		Pools:        []string{"anglosphere"},
		IntendedTop:  []string{"oven"},
		PaperSupport: 0.46, PaperPatternCount: 67,
	},
}

// Profiles returns the 26 calibrated region profiles sorted by region
// name.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// ProfileFor returns the profile of the named region.
func ProfileFor(region string) (Profile, error) {
	for _, p := range profiles {
		if p.Region == region {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("corpus: no profile for region %q", region)
}

// TotalRecipes returns the full-scale corpus size (the per-region Table I
// counts sum to 118,171; the paper's text says 118,071 — a one-row typo we
// preserve on the per-region side, which is the side every experiment
// uses).
func TotalRecipes() int {
	n := 0
	for _, p := range profiles {
		n += p.Recipes
	}
	return n
}
