package corpus

import "fmt"

// This file holds the shared vocabulary: the universal item tables present
// in (almost) every cuisine, the macro-region pantry pools that drive the
// authenticity clustering, and the synthetic long-tail name generators
// that give the corpus its Sec. III uniqueness profile (20k+ ingredients,
// ~268 processes, ~69 utensils).

// universalProcesses are cooking actions frequent in every cuisine. Their
// probabilities sit below the 0.45 pairing line so that independent pairs
// stay under the 0.2 support threshold; multi-process patterns only arise
// through explicit bundles, matching the paper's skew observation
// ("processes such as 'add' and 'cook' ... are fundamental to cooking in
// many cuisines").
var universalProcesses = []ItemProb{
	{proc("add"), 0.42},
	{proc("heat"), 0.34},
	{proc("cook"), 0.30},
	{proc("stir"), 0.27},
	{proc("mix"), 0.25},
	{proc("pour"), 0.23},
	{proc("place"), 0.22},
	{proc("serve"), 0.21},
	{proc("chop"), 0.18},
	{proc("drain"), 0.16},
	{proc("cover"), 0.15},
	{proc("remove"), 0.14},
	{proc("cut"), 0.13},
	{proc("cool"), 0.12},
	{proc("season"), 0.11},
}

// universalIngredients are pantry staples frequent everywhere (salt,
// water, sugar, pepper). They are classified "universal" by the
// significance ranker and therefore never reported as a cuisine's top
// pattern on their own, exactly as in Table I.
var universalIngredients = []ItemProb{
	{ing("salt"), 0.35},
	{ing("water"), 0.28},
	{ing("sugar"), 0.24},
	{ing("black pepper"), 0.21},
	{ing("vegetable oil"), 0.18},
	{ing("flour"), 0.15},
	{ing("egg"), 0.14},
	{ing("garlic"), 0.13},
	{ing("milk"), 0.11},
}

// universalUtensils appear at low rates everywhere; regional signature
// utensils (oven, skillet, bowl, wok) live in the profiles.
var universalUtensils = []ItemProb{
	{ute("pan"), 0.17},
	{ute("pot"), 0.15},
	{ute("knife"), 0.12},
	{ute("spoon"), 0.10},
	{ute("plate"), 0.07},
}

// pantryPools are macro-region ingredient pools. Pool items are included
// at sub-threshold probabilities (capped below 0.2) scaled to meet the
// per-recipe ingredient mean, so they shape the authenticity matrix
// (Fig. 5) and the geographic structure of every tree without inflating
// the Table I pattern counts.
var pantryPools = map[string][]string{
	"eastasia": {
		"soy sauce", "ginger", "green onion", "rice", "sesame oil", "rice vinegar",
		"tofu", "bok choy", "shiitake mushroom", "napa cabbage", "rice wine",
		"oyster sauce", "white pepper", "star anise", "bean sprout", "snow pea",
		"water chestnut", "bamboo shoot", "hoisin sauce", "chili oil", "dried shrimp",
		"lotus root", "daikon", "seaweed", "bonito flake", "short grain rice",
		"fermented bean paste", "century egg", "glass noodle", "five spice powder",
	},
	"seasia": {
		"fish sauce", "coconut milk", "lemongrass", "lime", "chili", "galangal",
		"shrimp paste", "kaffir lime leaf", "thai basil", "rice noodle", "palm sugar",
		"tamarind", "bird eye chili", "cilantro root", "turmeric leaf", "pandan leaf",
		"candlenut", "shallot", "peanut", "jasmine rice", "banana leaf", "bean curd",
		"dried anchovy", "coconut cream", "sweet soy sauce", "water spinach",
	},
	"southasia": {
		"cumin", "turmeric", "coriander", "garam masala", "ghee", "ginger",
		"green chili", "mustard seed", "curry leaf", "cardamom", "clove",
		"fenugreek", "asafoetida", "basmati rice", "lentil", "chickpea",
		"paneer", "yogurt", "tamarind", "red chili powder", "cinnamon",
		"bay leaf", "fennel seed", "nigella seed", "jaggery", "curd",
		"mustard oil", "poppy seed", "saffron", "rose water",
	},
	"mena": {
		"olive oil", "cumin", "lemon juice", "chickpea", "parsley", "mint",
		"tahini", "sumac", "za'atar", "pomegranate molasses", "bulgur", "couscous",
		"harissa", "preserved lemon", "date", "pistachio", "rose water",
		"cinnamon", "allspice", "dried apricot", "orange blossom water", "lamb",
		"eggplant", "yogurt", "sesame seed", "saffron", "paprika", "coriander",
	},
	"mediterranean": {
		"olive oil", "tomato", "garlic", "basil", "oregano", "lemon",
		"feta cheese", "olives", "red wine vinegar", "parsley", "rosemary",
		"thyme", "capers", "anchovy", "mozzarella", "parmesan cheese",
		"balsamic vinegar", "pine nut", "artichoke", "zucchini", "eggplant",
		"white bean", "prosciutto", "polenta", "risotto rice", "saffron",
	},
	"westeurope": {
		"butter", "cream", "onion", "potato", "carrot", "leek", "thyme",
		"bay leaf", "white wine", "dijon mustard", "parsley", "shallot",
		"celery", "beef stock", "red wine", "nutmeg", "chive", "tarragon",
		"gruyere cheese", "creme fraiche", "brandy", "apple", "cabbage",
		"mushroom", "bacon", "ham", "sour cream", "dill", "horseradish",
	},
	"anglosphere": {
		"butter", "onion", "potato", "cheddar cheese", "bacon", "beef",
		"chicken", "tomato", "carrot", "peas", "corn", "bread crumb",
		"worcestershire sauce", "ketchup", "mayonnaise", "brown sugar",
		"vanilla extract", "baking powder", "baking soda", "oats",
		"maple syrup", "cranberry", "pumpkin", "apple", "raisin", "honey",
	},
	"latam": {
		"onion", "cilantro", "lime", "tomato", "corn tortilla", "black beans",
		"jalapeno", "avocado", "cumin", "rice", "plantain", "queso fresco",
		"chipotle", "tomatillo", "epazote", "achiote", "yuca", "chayote",
		"poblano pepper", "serrano pepper", "masa", "pinto beans", "oregano",
		"coconut", "mango", "papaya", "aji pepper", "quinoa", "sweet potato",
	},
	"africa": {
		"onion", "tomato", "peanut", "okra", "cassava", "plantain", "yam",
		"palm oil", "scotch bonnet pepper", "ginger", "garlic", "millet",
		"sorghum", "baobab", "egusi", "fonio", "berbere", "teff", "injera",
		"collard greens", "sweet potato", "groundnut paste", "dried fish",
		"hibiscus", "tamarind", "maize meal",
	},
	"nordic": {
		"butter", "dill", "potato", "salmon", "herring", "rye bread",
		"lingonberry", "cloudberry", "juniper berry", "caraway seed",
		"cardamom", "sour cream", "beetroot", "cucumber", "mustard",
		"crispbread", "elderflower", "cabbage", "apple", "horseradish",
	},
}

// tail name generators -------------------------------------------------------

var tailDescriptors = []string{
	"smoked", "pickled", "dried", "fermented", "roasted", "candied", "salted",
	"cured", "wild", "heirloom", "stone-ground", "cold-pressed", "aged",
	"spiced", "toasted", "sprouted", "preserved", "sun-dried", "char-grilled",
	"marinated", "whipped", "clarified", "crystallized", "powdered", "young",
}

var tailBases = []string{
	"fish", "root", "berry", "bean", "grain", "pepper", "leaf", "herb",
	"cheese", "sausage", "mushroom", "squash", "melon", "citrus", "nut",
	"seed", "flower", "shoot", "tuber", "greens", "chili", "vinegar",
	"paste", "broth", "noodle", "dumpling", "bread", "cake", "pickle",
	"fruit", "gourd", "cabbage", "onion", "garlic", "radish",
}

var tailOrigins = []string{
	"river", "mountain", "coastal", "valley", "island", "highland",
	"forest", "prairie", "market", "village", "harbor", "garden",
	"orchard", "estate", "monastery", "farmhouse", "spring", "winter",
	"summer", "harvest", "heritage", "old-town", "northern", "southern",
}

// TailIngredientName returns the i-th synthetic long-tail ingredient name.
// Names are deterministic, human-plausible, and unique for i up to
// len(descriptors)*len(origins)*len(bases) (25*24*35 = 21,000), matching
// the 20,280-unique-ingredient scale of Sec. III.
func TailIngredientName(i int) string {
	d := tailDescriptors[i%len(tailDescriptors)]
	rest := i / len(tailDescriptors)
	o := tailOrigins[rest%len(tailOrigins)]
	b := tailBases[(rest/len(tailOrigins))%len(tailBases)]
	n := i / (len(tailDescriptors) * len(tailOrigins) * len(tailBases))
	if n == 0 {
		return fmt.Sprintf("%s %s %s", d, o, b)
	}
	return fmt.Sprintf("%s %s %s %d", d, o, b, n)
}

var tailProcessStems = []string{
	"blanch", "braise", "glaze", "score", "truss", "baste", "deglaze",
	"render", "temper", "proof", "knead", "fold", "whisk", "sear", "poach",
	"steep", "strain", "reduce", "caramelize", "flambe", "julienne", "mince",
	"zest", "shuck", "fillet", "butterfly", "brine", "smoke", "press", "mash",
}

var tailProcessMods = []string{
	"", "slow-", "flash-", "double-", "dry-", "wet-", "pan-", "oven-",
	"twice-", "gently ", "coarsely ", "finely ",
}

// TailProcessName returns the i-th synthetic long-tail process name
// (30*12 = 360 unique combinations; the corpus uses ~220 beyond the
// universal and regional tables, landing near the paper's 268).
func TailProcessName(i int) string {
	stem := tailProcessStems[i%len(tailProcessStems)]
	mod := tailProcessMods[(i/len(tailProcessStems))%len(tailProcessMods)]
	n := i / (len(tailProcessStems) * len(tailProcessMods))
	if n == 0 {
		return mod + stem
	}
	return fmt.Sprintf("%s%s %d", mod, stem, n)
}

var tailUtensilBases = []string{
	"mold", "press", "rack", "sieve", "mortar", "cleaver", "mandoline",
	"thermometer", "scale", "griddle", "steamer", "ricer", "zester",
	"skewer", "ramekin", "terrine", "tagine", "crock", "kettle", "ladle",
	"whisk", "tongs", "peeler", "grater", "funnel", "brush", "timer",
}

var tailUtensilMods = []string{"", "copper ", "cast-iron ", "bamboo ", "stone ", "ceramic "}

// TailUtensilName returns the i-th synthetic long-tail utensil name
// (27*6 = 162 combinations; the corpus uses ~50 beyond the universal and
// regional tables, landing near the paper's 69).
func TailUtensilName(i int) string {
	base := tailUtensilBases[i%len(tailUtensilBases)]
	mod := tailUtensilMods[(i/len(tailUtensilBases))%len(tailUtensilMods)]
	n := i / (len(tailUtensilBases) * len(tailUtensilMods))
	if n == 0 {
		return mod + base
	}
	return fmt.Sprintf("%s%s %d", mod, base, n)
}
