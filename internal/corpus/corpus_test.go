package corpus

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"cuisines/internal/fpgrowth"
	"cuisines/internal/geo"
	"cuisines/internal/itemset"
	"cuisines/internal/recipedb"
)

func TestProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 26 {
		t.Fatalf("expected 26 profiles, got %d", len(ps))
	}
	seen := make(map[string]bool)
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Region, err)
		}
		if seen[p.Region] {
			t.Errorf("duplicate profile %s", p.Region)
		}
		seen[p.Region] = true
		if len(p.IntendedTop) == 0 || p.PaperSupport <= 0 || p.PaperPatternCount <= 0 {
			t.Errorf("profile %s missing Table I calibration targets", p.Region)
		}
	}
}

func TestProfilesMatchGeoRegions(t *testing.T) {
	for _, p := range Profiles() {
		if _, err := geo.Lookup(p.Region); err != nil {
			t.Errorf("profile region %q unknown to geo: %v", p.Region, err)
		}
	}
}

func TestTotalRecipesMatchesTableI(t *testing.T) {
	// The per-region Table I counts sum to 118,171 (the abstract's
	// 118,071 is a known paper typo — see profiles.go).
	if got := TotalRecipes(); got != 118171 {
		t.Fatalf("TotalRecipes = %d, want 118171", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.02, Regions: []string{"Japanese", "Mexican"}}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Recipe(i), b.Recipe(i)
		if ra.ID != rb.ID || !ra.Items().Equal(rb.Items()) {
			t.Fatalf("recipe %d differs between runs", i)
		}
	}
}

func TestGenerateRegionIndependence(t *testing.T) {
	// A region's recipes must be identical whether generated alone or
	// with others (per-region seeding).
	solo, err := Generate(Config{Seed: 11, Scale: 0.02, Regions: []string{"Thai"}})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Generate(Config{Seed: 11, Scale: 0.02, Regions: []string{"Greek", "Thai"}})
	if err != nil {
		t.Fatal(err)
	}
	soloThai := solo.RegionRecipes("Thai")
	bothThai := both.RegionRecipes("Thai")
	if len(soloThai) != len(bothThai) {
		t.Fatalf("region sizes differ: %d vs %d", len(soloThai), len(bothThai))
	}
	for i := range soloThai {
		if soloThai[i].ID != bothThai[i].ID || !soloThai[i].Items().Equal(bothThai[i].Items()) {
			t.Fatalf("Thai recipe %d differs with/without Greek present", i)
		}
	}
}

func TestGenerateUnknownRegion(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, Regions: []string{"Atlantis"}}); err == nil {
		t.Fatal("unknown region accepted")
	}
}

// TestGenerateUnknownRegionDeterministicError pins the mapiter fix:
// the error used to name an arbitrary unknown region picked by map
// iteration order, so the same bad input produced different messages
// run to run. It must now name all of them, sorted.
func TestGenerateUnknownRegionDeterministicError(t *testing.T) {
	want := `corpus: unknown region "Atlantis, Mu, Narnia"`
	for i := 0; i < 10; i++ {
		_, err := Generate(Config{Seed: 1, Regions: []string{"Narnia", "Atlantis", "Thai", "Mu"}})
		if err == nil {
			t.Fatal("unknown regions accepted")
		}
		if err.Error() != want {
			t.Fatalf("iteration %d: error %q, want %q", i, err.Error(), want)
		}
	}
}

func TestGenerateScaleControlsSize(t *testing.T) {
	db, err := Generate(Config{Seed: 3, Scale: 0.05, Regions: []string{"Italian"}})
	if err != nil {
		t.Fatal(err)
	}
	italianFull := 16582.0
	want := int(0.05*italianFull + 0.5)
	if db.Len() < want-1 || db.Len() > want+1 {
		t.Fatalf("scaled size = %d, want ~%d", db.Len(), want)
	}
}

func TestGenerateMinimumRegionSize(t *testing.T) {
	db, err := Generate(Config{Seed: 3, Scale: 0.001, Regions: []string{"Korean"}})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() < 30 {
		t.Fatalf("tiny scale produced %d recipes, floor is 30", db.Len())
	}
}

// mediumDB caches a moderately sized corpus shared by the statistical
// tests below.
var mediumDB *recipedb.DB

func getMediumDB(t *testing.T) *recipedb.DB {
	t.Helper()
	if mediumDB == nil {
		db, err := Generate(Config{Seed: DefaultSeed, Scale: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		mediumDB = db
	}
	return mediumDB
}

func TestCorpusShapeMatchesSecIII(t *testing.T) {
	db := getMediumDB(t)
	st := recipedb.ComputeStats(db)
	if st.Regions != 26 {
		t.Fatalf("regions = %d", st.Regions)
	}
	// Per-recipe means (paper: ~10 ingredients, ~12 processes, ~3
	// utensils).
	if st.MeanIngredients < 8 || st.MeanIngredients > 13 {
		t.Errorf("mean ingredients = %.2f, want ~10", st.MeanIngredients)
	}
	if st.MeanProcesses < 10 || st.MeanProcesses > 14 {
		t.Errorf("mean processes = %.2f, want ~12", st.MeanProcesses)
	}
	if st.MeanUtensils < 2 || st.MeanUtensils > 4.2 {
		t.Errorf("mean utensils = %.2f, want ~3", st.MeanUtensils)
	}
	// Utensil sparsity ~12.4% of recipes.
	frac := float64(st.RecipesWithoutUtensils) / float64(st.Recipes)
	if frac < 0.10 || frac > 0.15 {
		t.Errorf("missing-utensil fraction = %.3f, want ~0.124", frac)
	}
	// Unique process and utensil vocabularies near the paper's 268 / 69.
	if st.UniqueProcesses < 200 || st.UniqueProcesses > 330 {
		t.Errorf("unique processes = %d, want ~268", st.UniqueProcesses)
	}
	if st.UniqueUtensils < 50 || st.UniqueUtensils > 90 {
		t.Errorf("unique utensils = %d, want ~69", st.UniqueUtensils)
	}
}

func TestRegionSizesProportionalToTableI(t *testing.T) {
	db := getMediumDB(t)
	for _, p := range Profiles() {
		want := int(0.2*float64(p.Recipes) + 0.5)
		got := db.RegionSize(p.Region)
		if got < want-1 || got > want+1 {
			t.Errorf("%s: %d recipes, want ~%d", p.Region, got, want)
		}
	}
}

func TestHeadlinePatternSupports(t *testing.T) {
	// The calibrated corpus must reproduce each region's Table I headline
	// support to within a few points. (Headline *ranking* is asserted in
	// internal/core's calibration test, which owns the significance
	// scorer.)
	db := getMediumDB(t)
	for _, p := range Profiles() {
		ds := db.RegionDataset(p.Region)
		items := parseStringPattern(p.IntendedTop[0])
		got := ds.Support(items)
		// Tolerance: calibration slack plus 3 binomial sigmas for the
		// small regions at this scale.
		sigma := 3 * math.Sqrt(p.PaperSupport*(1-p.PaperSupport)/float64(ds.Len()))
		tol := 0.045 + sigma
		if diff := got - p.PaperSupport; diff < -tol || diff > tol {
			t.Errorf("%s: support(%s) = %.3f, paper %.2f (tol %.3f)", p.Region, p.IntendedTop[0], got, p.PaperSupport, tol)
		}
	}
}

// parseStringPattern reconstructs an itemset from a "a+b+c" string
// pattern, resolving each name's kind against the known process/utensil
// tables (everything else is an ingredient).
func parseStringPattern(s string) itemset.Set {
	procNames := map[string]bool{"add": true, "heat": true, "cook": true, "bake": true, "preheat": true,
		"stir": true, "mix": true, "pour": true, "place": true, "serve": true}
	uteNames := map[string]bool{"oven": true, "bowl": true, "skillet": true, "wok": true}
	var items []itemset.Item
	for _, name := range strings.Split(s, "+") {
		switch {
		case procNames[name]:
			items = append(items, itemset.NewItem(name, itemset.Process))
		case uteNames[name]:
			items = append(items, itemset.NewItem(name, itemset.Utensil))
		default:
			items = append(items, itemset.NewItem(name, itemset.Ingredient))
		}
	}
	return itemset.NewSet(items...)
}

func TestPatternCountShape(t *testing.T) {
	// The Table I pattern-count *shape* must hold: the spice-belt rows
	// (Northern Africa, Indian Subcontinent) mine the most patterns, the
	// staple-driven rows (Australian, Canadian, Caribbean, Mexican) the
	// fewest.
	db := getMediumDB(t)
	counts := make(map[string]int)
	for _, region := range db.Regions() {
		counts[region] = len(fpgrowth.Mine(db.RegionDataset(region), 0.2))
	}
	rich := []string{"Northern Africa", "Indian Subcontinent"}
	sparse := []string{"Australian", "Canadian", "Caribbean", "Mexican"}
	for _, r := range rich {
		for _, s := range sparse {
			if counts[r] <= counts[s] {
				t.Errorf("pattern count of %s (%d) should exceed %s (%d)", r, counts[r], s, counts[s])
			}
		}
	}
	// At this reduced scale (n~322 for Northern Africa) the 0.21-support
	// souk triples flicker around the threshold, so the absolute count
	// runs well below the full-scale ~100 (see EXPERIMENTS.md).
	if counts["Northern Africa"] < 55 {
		t.Errorf("Northern Africa mined only %d patterns", counts["Northern Africa"])
	}
	if counts["Australian"] > 60 {
		t.Errorf("Australian mined %d patterns, expected a sparse row", counts["Australian"])
	}
}

func TestSharedSignatureItems(t *testing.T) {
	// Signature sharing that the clustering experiments depend on.
	db := getMediumDB(t)
	support := func(region, name string) float64 {
		return db.RegionDataset(region).Support(itemset.FromNames(itemset.Ingredient, name))
	}
	// Soy sauce across East Asia, absent from Europe.
	for _, r := range []string{"Chinese and Mongolian", "Japanese", "Korean"} {
		if support(r, "soy sauce") < 0.2 {
			t.Errorf("%s soy sauce support too low", r)
		}
	}
	if support("French", "soy sauce") > 0.05 {
		t.Error("French soy sauce support should be negligible")
	}
	// Fish sauce across mainland Southeast Asia.
	for _, r := range []string{"Thai", "Southeast Asian"} {
		if support(r, "fish sauce") < 0.2 {
			t.Errorf("%s fish sauce support too low", r)
		}
	}
	// Olive oil around the Mediterranean.
	for _, r := range []string{"Greek", "Italian", "Spanish and Portuguese", "Middle Eastern"} {
		if support(r, "olive oil") < 0.2 {
			t.Errorf("%s olive oil support too low", r)
		}
	}
	// Cumin links India and Northern Africa (the Sec. VII claim).
	for _, r := range []string{"Indian Subcontinent", "Northern Africa"} {
		if support(r, "cumin") < 0.15 {
			t.Errorf("%s cumin support too low", r)
		}
	}
	if support("Thai", "cumin") > 0.1 {
		t.Error("Thai cumin should be low (India clusters with North Africa, not Thai)")
	}
	// Canada's French affinity: shared band items.
	for _, name := range []string{"thyme", "white wine", "dijon mustard", "mushroom"} {
		if support("Canadian", name) < 0.15 || support("French", name) < 0.15 {
			t.Errorf("Canada/France shared item %q too weak", name)
		}
	}
}

func TestTailNameGeneratorsUnique(t *testing.T) {
	for name, gen := range map[string]func(int) string{
		"ingredient": TailIngredientName,
		"process":    TailProcessName,
		"utensil":    TailUtensilName,
	} {
		n := 20000
		if name == "process" {
			n = 300
		}
		if name == "utensil" {
			n = 120
		}
		seen := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			v := gen(i)
			if v == "" {
				t.Fatalf("%s name %d empty", name, i)
			}
			if seen[v] {
				t.Fatalf("%s name %d duplicates %q", name, i, v)
			}
			seen[v] = true
		}
	}
}

func TestRecipesValidate(t *testing.T) {
	db, err := Generate(Config{Seed: 5, Scale: 0.01, Regions: []string{"UK", "US"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		if err := db.Recipe(i).Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubThresholdPoolsStayBelowBand(t *testing.T) {
	// Pool items must never reach the 0.2 mining band (they exist for the
	// authenticity matrix only). Verify for a pool-only item.
	db := getMediumDB(t)
	// "star anise" is bundled in Chinese; in Japanese it comes only from
	// the eastasia pool.
	sup := db.RegionDataset("Japanese").Support(itemset.FromNames(itemset.Ingredient, "star anise"))
	if sup >= 0.2 {
		t.Fatalf("pool item reached mining band: %.3f", sup)
	}
	if sup == 0 {
		t.Fatal("pool item absent entirely")
	}
}

func TestBoosterProcessesRegionUnique(t *testing.T) {
	// The region-specific booster bundles must not share processes across
	// regions — shared boosters would fake cross-region pattern overlap
	// (the failure mode that motivated their design; see DESIGN.md §6).
	owner := make(map[string]string)
	for i, p := range Profiles() {
		for _, b := range regionBoost(i, p.Boost) {
			for _, it := range b.Items {
				if prev, ok := owner[it.Name]; ok && prev != p.Region {
					t.Fatalf("booster process %q shared by %s and %s", it.Name, prev, p.Region)
				}
				owner[it.Name] = p.Region
			}
		}
	}
}

func TestSpiceBeltTriplesIdenticalAcrossProfiles(t *testing.T) {
	// India and Northern Africa must plant the exact same shared triples
	// (that identity is what their Euclidean-space pairing relies on).
	in, err := ProfileFor("Indian Subcontinent")
	if err != nil {
		t.Fatal(err)
	}
	na, err := ProfileFor("Northern Africa")
	if err != nil {
		t.Fatal(err)
	}
	keyOf := func(b Bundle) string {
		names := make([]string, len(b.Items))
		for i, it := range b.Items {
			names[i] = it.Name
		}
		sort.Strings(names)
		return strings.Join(names, "+")
	}
	bundleSet := func(p Profile) map[string]bool {
		out := map[string]bool{}
		for _, b := range p.Bundles {
			out[keyOf(b)] = true
		}
		return out
	}
	inSet, naSet := bundleSet(in), bundleSet(na)
	shared := 0
	for k := range inSet {
		if naSet[k] {
			shared++
		}
	}
	if shared < len(spiceBeltTriples) {
		t.Fatalf("only %d shared bundles between India and Northern Africa, want >= %d",
			shared, len(spiceBeltTriples))
	}
}

func TestBundleItemsNotInBand(t *testing.T) {
	// Calibration rule: an item must not appear in both a region's band
	// and its bundles unless deliberately stacked (only the US oven does
	// this, to hit its 0.46 support).
	allowed := map[string]bool{"US/oven": true}
	for _, p := range Profiles() {
		band := map[string]bool{}
		for _, ip := range p.Band {
			band[ip.Item.Name] = true
		}
		for _, b := range p.Bundles {
			for _, it := range b.Items {
				if band[it.Name] && !allowed[p.Region+"/"+it.Name] {
					t.Errorf("%s: item %q in both band and bundle", p.Region, it.Name)
				}
			}
		}
	}
}

// TestGenerateParallelEquivalence checks the parallel fan-out contract:
// the corpus is byte-identical whatever the worker count, because each
// region draws from its own seed-derived RNG stream and batches are
// concatenated in canonical profile order.
func TestGenerateParallelEquivalence(t *testing.T) {
	seq, err := Generate(Config{Seed: DefaultSeed, Scale: 0.05, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0} {
		par, err := Generate(Config{Seed: DefaultSeed, Scale: 0.05, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sr, pr := seq.Recipes(), par.Recipes()
		if len(sr) != len(pr) {
			t.Fatalf("workers=%d: %d recipes vs %d sequential", workers, len(pr), len(sr))
		}
		for i := range sr {
			if !reflect.DeepEqual(sr[i], pr[i]) {
				t.Fatalf("workers=%d: recipe %d differs:\nseq: %+v\npar: %+v", workers, i, sr[i], pr[i])
			}
		}
	}
}
