// Package corpus generates the synthetic RecipeDB that substitutes for the
// paper's non-redistributable 118k-recipe scrape (see DESIGN.md, Sec. 2).
//
// The generator is calibrated to Table I of the paper: every region
// reproduces its recipe count, its headline pattern(s) at the published
// support, and a frequent-pattern count in the published ballpark. Regions
// share signature items along the geographic and historical lines the
// paper's results depend on (soy across East Asia, olive oil around the
// Mediterranean, butter across the Anglosphere, the cumin spice belt
// linking the Indian Subcontinent with Northern Africa, and a deliberate
// French affinity in the Canadian pantry), so the downstream clustering
// experiments (Figs. 1-6) reproduce the paper's qualitative structure.
package corpus

import (
	"fmt"

	"cuisines/internal/itemset"
)

// ItemRef names an item with its kind.
type ItemRef struct {
	Name string
	Kind itemset.Kind
}

// ing, proc and ute are shorthand constructors used by the profile tables.
func ing(name string) ItemRef  { return ItemRef{name, itemset.Ingredient} }
func proc(name string) ItemRef { return ItemRef{name, itemset.Process} }
func ute(name string) ItemRef  { return ItemRef{name, itemset.Utensil} }

// ItemProb is an independently included item.
type ItemProb struct {
	Item ItemRef
	// Prob is the per-recipe inclusion probability.
	Prob float64
}

// Bundle is a set of items included together with probability Prob; it is
// the mechanism that plants multi-item Table I patterns (e.g. Chinese
// "soy sauce + add + heat" at 0.27) with controlled support.
type Bundle struct {
	Items []ItemRef
	Prob  float64
}

// Profile calibrates one region.
type Profile struct {
	// Region is the Table I region name (must match internal/geo).
	Region string
	// Recipes is the full-scale recipe count from Table I.
	Recipes int
	// Bundles are the signature co-occurrence groups.
	Bundles []Bundle
	// Boost adds this many region-specific universal-process bundles
	// (0-3). Their items are universal in every cuisine, so the patterns
	// they mint raise the region's Table I pattern count without entering
	// the headline ranking; the triples are derived from the region name
	// so that no two regions share them (shared boosters would fake
	// cross-region similarity in the clustering experiments).
	Boost int
	// Band holds region-specific items with supports in or near the
	// mining band (>= 0.2): each contributes one singleton pattern.
	Band []ItemProb
	// Pools names the macro-region pantry pools whose sub-threshold items
	// this region draws from (drives the authenticity clustering).
	Pools []string
	// MeanIngredients / MeanProcesses are per-recipe targets; the
	// generator tops up with sub-threshold pool items to reach them.
	// Zero means the corpus defaults (10 and 12).
	MeanIngredients float64
	MeanProcesses   float64
	// IntendedTop records the Table I headline pattern(s) this profile is
	// calibrated to produce, as sorted string patterns — used by the
	// calibration tests and EXPERIMENTS.md.
	IntendedTop []string
	// PaperSupport is the Table I support of the first intended pattern.
	PaperSupport float64
	// PaperPatternCount is the Table I "number of patterns" column.
	PaperPatternCount int
}

// Validate checks profile consistency.
func (p *Profile) Validate() error {
	if p.Region == "" {
		return fmt.Errorf("corpus: profile with empty region")
	}
	if p.Recipes <= 0 {
		return fmt.Errorf("corpus: profile %s has %d recipes", p.Region, p.Recipes)
	}
	for _, b := range p.Bundles {
		if b.Prob <= 0 || b.Prob > 1 {
			return fmt.Errorf("corpus: profile %s bundle prob %v out of range", p.Region, b.Prob)
		}
		if len(b.Items) == 0 {
			return fmt.Errorf("corpus: profile %s has empty bundle", p.Region)
		}
	}
	for _, ip := range p.Band {
		if ip.Prob <= 0 || ip.Prob > 1 {
			return fmt.Errorf("corpus: profile %s item %s prob %v out of range", p.Region, ip.Item.Name, ip.Prob)
		}
	}
	for _, pool := range p.Pools {
		if _, ok := pantryPools[pool]; !ok {
			return fmt.Errorf("corpus: profile %s references unknown pool %q", p.Region, pool)
		}
	}
	return nil
}

// expectedBandIngredients returns the expected number of ingredient items
// contributed per recipe by bundles and band items.
func (p *Profile) expectedBandIngredients() float64 {
	s := 0.0
	for _, b := range p.Bundles {
		for _, it := range b.Items {
			if it.Kind == itemset.Ingredient {
				s += b.Prob
			}
		}
	}
	for _, ip := range p.Band {
		if ip.Item.Kind == itemset.Ingredient {
			s += ip.Prob
		}
	}
	return s
}

// expectedBandProcesses is the process analogue of
// expectedBandIngredients, including the universal process table.
func (p *Profile) expectedBandProcesses() float64 {
	s := 0.0
	for _, b := range p.Bundles {
		for _, it := range b.Items {
			if it.Kind == itemset.Process {
				s += b.Prob
			}
		}
	}
	for _, ip := range p.Band {
		if ip.Item.Kind == itemset.Process {
			s += ip.Prob
		}
	}
	for _, up := range universalProcesses {
		s += up.Prob
	}
	// Region-specific boosters add three universal processes each at
	// boostProb.
	s += float64(p.Boost) * 3 * boostProb
	return s
}
