package corpus

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cuisines/internal/itemset"
	"cuisines/internal/parallel"
	"cuisines/internal/recipedb"
	"cuisines/internal/rng"
)

// Config controls corpus generation.
type Config struct {
	// Seed drives every random choice; the same seed yields the same
	// corpus on every platform.
	Seed uint64
	// Scale multiplies the per-region Table I recipe counts. 0 (or 1)
	// means full scale (118,171 recipes); tests typically use 0.05-0.2.
	Scale float64
	// Regions optionally restricts generation to a subset of region
	// names. Empty means all 26.
	Regions []string
	// Workers caps the number of regions generated concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 forces the sequential path. The corpus is
	// byte-identical for any value: each region draws from its own RNG
	// stream (seeded from Seed and the region name only) and the
	// per-region batches are concatenated in canonical profile order.
	Workers int
}

// DefaultSeed is the corpus seed used by every experiment in this
// repository (the paper's arXiv submission date).
const DefaultSeed = 20200426

// Default is the full-scale configuration used by the benchmark harness
// and the cmd tools.
func Default() Config { return Config{Seed: DefaultSeed, Scale: 1} }

// Corpus-wide targets from Sec. III of the paper.
const (
	defaultMeanIngredients = 10.0
	defaultMeanProcesses   = 12.0
	targetMeanUtensils     = 3.3
	// missingUtensilRate is the *forced* utensil-clearing rate. Together
	// with the ~3% of recipes that naturally draw no utensil, it
	// reproduces the paper's 14,601 utensil-less recipes out of 118,171
	// (12.4%).
	missingUtensilRate = 0.093

	// subThresholdCap keeps pool and background items strictly below the
	// paper's 0.2 mining support so they shape the authenticity matrix
	// without perturbing Table I pattern counts.
	subThresholdCap = 0.18

	// Long-tail sizing (see vocab.go): each region owns a block of rare
	// ingredient names; one shared block is drawn globally.
	rareIngredientsPerRegion = 700
	sharedRareIngredients    = 1200
	backgroundProcessCount   = 60
	rareProcessCount         = 240
	backgroundUtensilCount   = 20
	rareUtensilCount         = 44
)

// Generate builds the synthetic RecipeDB.
func Generate(cfg Config) (*recipedb.DB, error) {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	selected, err := selectProfiles(cfg.Regions)
	if err != nil {
		return nil, err
	}

	for i := range selected {
		if err := selected[i].Validate(); err != nil {
			return nil, err
		}
	}
	// Fan out one job per region. Each region's recipes depend only on the
	// seed and the region itself — the per-region generator is seeded
	// independently of region subset, order, or worker count — so a
	// region's batch is identical whether generated alone, sequentially,
	// or concurrently, and concatenating the batches in profile order
	// reproduces the sequential corpus byte for byte.
	batches := parallel.Map(len(selected), cfg.Workers, func(idx int) []recipedb.Recipe {
		p := selected[idx]
		n := int(math.Round(float64(p.Recipes) * scale))
		if n < 30 {
			n = 30
		}
		r := rng.New(cfg.Seed ^ hashString(p.Region))
		g := newRegionGen(&p, regionIndexOf(p.Region))
		batch := make([]recipedb.Recipe, 0, n)
		for i := 0; i < n; i++ {
			batch = append(batch, g.recipe(r, i))
		}
		return batch
	})
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	recipes := make([]recipedb.Recipe, 0, total)
	for _, b := range batches {
		recipes = append(recipes, b...)
	}
	return recipedb.New(recipes)
}

func selectProfiles(regions []string) ([]Profile, error) {
	all := Profiles()
	if len(regions) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(regions))
	for _, r := range regions {
		want[r] = true
	}
	var out []Profile
	for _, p := range all {
		if want[p.Region] {
			out = append(out, p)
			delete(want, p.Region)
		}
	}
	if len(want) > 0 {
		// Name every unknown region, sorted: picking one via map
		// iteration made the error message differ run to run.
		missing := make([]string, 0, len(want))
		for r := range want {
			missing = append(missing, r)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("corpus: unknown region %q", strings.Join(missing, ", "))
	}
	return out, nil
}

// regionIndexOf returns the region's position in the canonical sorted
// order; it selects the region's private rare-name block.
func regionIndexOf(region string) int {
	all := Profiles()
	for i, p := range all {
		if p.Region == region {
			return i
		}
	}
	return 0
}

// hashString is FNV-1a, used only for seed derivation.
func hashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// regionGen holds a region's fully resolved generation tables.
type regionGen struct {
	profile *Profile
	slug    string

	bundles []Bundle // profile bundles plus region-specific boosters

	universals []ItemProb // universal tables minus items the band overrides
	poolItems  []ItemProb // sub-threshold pantry items
	bgProcs    []ItemProb // sub-threshold background processes
	bgUtes     []ItemProb // sub-threshold background utensils

	rareBase   int // first rare-ingredient index for this region
	sharedBase int // first shared rare-ingredient index
}

func newRegionGen(p *Profile, regionIdx int) *regionGen {
	g := &regionGen{
		profile:    p,
		slug:       slugify(p.Region),
		rareBase:   regionIdx * rareIngredientsPerRegion,
		sharedBase: len(profiles) * rareIngredientsPerRegion,
	}
	g.bundles = append(append([]Bundle(nil), p.Bundles...), regionBoost(regionIdx, p.Boost)...)
	g.buildUniversals()
	g.buildPool()
	g.buildBackgroundProcesses()
	g.buildBackgroundUtensils()
	return g
}

// regionBoost derives `level` (max 3) booster bundles for the region:
// triples of *regional technique* processes drawn from the region's
// private block of the rare-process name space. The processes are
// region-unique (26 regions x 9 processes fit the 240-name rare pool
// disjointly), so booster patterns raise the region's Table I pattern
// count without creating cross-region pattern overlap; being pure process
// patterns they are also excluded from the headline significance ranking
// (see internal/core).
func regionBoost(regionIdx, level int) []Bundle {
	if level <= 0 {
		return nil
	}
	if level > 3 {
		level = 3
	}
	base := backgroundProcessCount + (regionIdx*9)%rareProcessCount
	out := make([]Bundle, 0, level)
	for b := 0; b < level; b++ {
		out = append(out, Bundle{
			Items: []ItemRef{
				proc(TailProcessName(base + 3*b)),
				proc(TailProcessName(base + 3*b + 1)),
				proc(TailProcessName(base + 3*b + 2)),
			},
			Prob: boostProb,
		})
	}
	return out
}

// buildUniversals filters the universal tables against the region's band:
// when a profile bands an item that is also universal (e.g. a cuisine with
// its own calibrated garlic rate), the band probability is the item's
// total rate and the universal entry is dropped. Bundles, by contrast,
// model correlation on top of the universal base and do not suppress it.
func (g *regionGen) buildUniversals() {
	banded := make(map[ItemRef]bool, len(g.profile.Band))
	for _, ip := range g.profile.Band {
		banded[ip.Item] = true
	}
	for _, table := range [][]ItemProb{universalIngredients, universalProcesses, universalUtensils} {
		for _, ip := range table {
			if !banded[ip.Item] {
				g.universals = append(g.universals, ip)
			}
		}
	}
}

// buildPool resolves the macro-region pantry pools into capped,
// sub-threshold inclusion probabilities that top the recipe up to the
// region's mean-ingredient target.
func (g *regionGen) buildPool() {
	p := g.profile
	target := p.MeanIngredients
	if target == 0 {
		target = defaultMeanIngredients
	}
	expected := universalSum(universalIngredients) + p.expectedBandIngredients() + 1.5 // rare mean
	lambda := target - expected
	if lambda <= 0 {
		return
	}

	// Items already planted by band/bundles must not be double-included.
	taken := make(map[string]bool)
	for _, ip := range p.Band {
		taken[ip.Item.Name] = true
	}
	for _, b := range p.Bundles {
		for _, it := range b.Items {
			taken[it.Name] = true
		}
	}
	for _, up := range universalIngredients {
		taken[up.Item.Name] = true
	}

	var names []string
	seen := make(map[string]bool)
	poolNames := append([]string(nil), p.Pools...)
	sort.Strings(poolNames)
	for _, pool := range poolNames {
		for _, n := range pantryPools[pool] {
			if !taken[n] && !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return
	}
	// Zipf-shaped weights, normalized to lambda, capped sub-threshold.
	weights := make([]float64, len(names))
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+3), -0.7)
		total += weights[i]
	}
	for i, n := range names {
		prob := lambda * weights[i] / total
		if prob > subThresholdCap {
			prob = subThresholdCap
		}
		g.poolItems = append(g.poolItems, ItemProb{ing(n), prob})
	}
}

func (g *regionGen) buildBackgroundProcesses() {
	p := g.profile
	target := p.MeanProcesses
	if target == 0 {
		target = defaultMeanProcesses
	}
	expected := p.expectedBandProcesses() + 0.8 // rare mean
	lambda := target - expected
	if lambda <= 0 {
		return
	}
	weights := make([]float64, backgroundProcessCount)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+4), -0.5)
		total += weights[i]
	}
	for i := 0; i < backgroundProcessCount; i++ {
		prob := lambda * weights[i] / total
		if prob > subThresholdCap {
			prob = subThresholdCap
		}
		g.bgProcs = append(g.bgProcs, ItemProb{proc(TailProcessName(i)), prob})
	}
}

func (g *regionGen) buildBackgroundUtensils() {
	p := g.profile
	expected := universalSum(universalUtensils) + 0.3 // rare mean
	for _, ip := range p.Band {
		if ip.Item.Kind == itemset.Utensil {
			expected += ip.Prob
		}
	}
	for _, b := range p.Bundles {
		for _, it := range b.Items {
			if it.Kind == itemset.Utensil {
				expected += b.Prob
			}
		}
	}
	lambda := targetMeanUtensils - expected
	if lambda <= 0 {
		return
	}
	weights := make([]float64, backgroundUtensilCount)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+3), -0.6)
		total += weights[i]
	}
	for i := 0; i < backgroundUtensilCount; i++ {
		prob := lambda * weights[i] / total
		if prob > subThresholdCap {
			prob = subThresholdCap
		}
		g.bgUtes = append(g.bgUtes, ItemProb{ute(TailUtensilName(i)), prob})
	}
}

func universalSum(items []ItemProb) float64 {
	s := 0.0
	for _, ip := range items {
		s += ip.Prob
	}
	return s
}

// recipe generates the i-th recipe of the region.
func (g *regionGen) recipe(r *rng.RNG, i int) recipedb.Recipe {
	var ings, procs, utes []string
	seen := make(map[ItemRef]bool, 48)
	include := func(it ItemRef) {
		if seen[it] {
			return
		}
		seen[it] = true
		switch it.Kind {
		case itemset.Ingredient:
			ings = append(ings, it.Name)
		case itemset.Process:
			procs = append(procs, it.Name)
		case itemset.Utensil:
			utes = append(utes, it.Name)
		}
	}
	maybe := func(items []ItemProb) {
		for _, ip := range items {
			if r.Bool(ip.Prob) {
				include(ip.Item)
			}
		}
	}

	// Signature bundles first (they define the Table I patterns).
	for _, b := range g.bundles {
		if r.Bool(b.Prob) {
			for _, it := range b.Items {
				include(it)
			}
		}
	}
	maybe(g.profile.Band)
	maybe(g.universals)
	maybe(g.poolItems)
	maybe(g.bgProcs)
	maybe(g.bgUtes)

	// Long tails: every recipe carries one region-private rare ingredient
	// (cycled for full vocabulary coverage) and, half the time, one shared
	// rare ingredient.
	include(ing(TailIngredientName(g.rareBase + i%rareIngredientsPerRegion)))
	if r.Bool(0.5) {
		include(ing(TailIngredientName(g.sharedBase + zipfIndex(r, sharedRareIngredients))))
	}
	if r.Bool(0.8) {
		include(proc(TailProcessName(backgroundProcessCount + zipfIndex(r, rareProcessCount))))
	}
	if r.Bool(0.3) {
		include(ute(TailUtensilName(backgroundUtensilCount + zipfIndex(r, rareUtensilCount))))
	}

	// Utensil sparsity: a fixed fraction of recipes lack utensil data
	// entirely (Sec. III: 14,601 of 118k).
	if r.Bool(missingUtensilRate) {
		utes = nil
	}

	name := recipeName(g.profile.Region, ings, i)
	return recipedb.Recipe{
		ID:          fmt.Sprintf("%s-%06d", g.slug, i),
		Name:        name,
		Region:      g.profile.Region,
		Ingredients: ings,
		Processes:   procs,
		Utensils:    utes,
	}
}

// zipfIndex draws a Zipf(0.8)-ish index in [0, n) without precomputing a
// table: inverse-transform on the approximate continuous CDF.
func zipfIndex(r *rng.RNG, n int) int {
	// For s < 1 the CDF of the continuous analogue x^-s on [1, n+1] is
	// (x^(1-s)-1)/((n+1)^(1-s)-1).
	const s = 0.8
	u := r.Float64()
	top := math.Pow(float64(n+1), 1-s) - 1
	x := math.Pow(u*top+1, 1/(1-s))
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

func recipeName(region string, ings []string, i int) string {
	lead := "house"
	if len(ings) > 0 {
		lead = ings[i%len(ings)]
	}
	styles := []string{"stew", "roast", "salad", "bake", "bowl", "plate", "pie", "soup", "grill", "braise"}
	return fmt.Sprintf("%s %s (%s #%d)", strings.ToUpper(lead[:1])+lead[1:], styles[i%len(styles)], region, i)
}

func slugify(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
