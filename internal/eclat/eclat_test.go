package eclat

import (
	"math/rand"
	"testing"

	"cuisines/internal/fpgrowth"
	"cuisines/internal/itemset"
)

func txn(names ...string) itemset.Transaction {
	return itemset.Transaction{Items: itemset.FromNames(itemset.Ingredient, names...)}
}

func ds(txns ...itemset.Transaction) *itemset.Dataset {
	return itemset.NewDataset(txns)
}

func patternMap(ps []itemset.Pattern) map[string]int {
	m := make(map[string]int, len(ps))
	for _, p := range ps {
		m[p.StringPattern()] = p.Count
	}
	return m
}

func TestMineTextbookExample(t *testing.T) {
	d := ds(
		txn("f", "a", "c", "d", "g", "i", "m", "p"),
		txn("a", "b", "c", "f", "l", "m", "o"),
		txn("b", "f", "h", "j", "o"),
		txn("b", "c", "k", "s", "p"),
		txn("a", "f", "c", "e", "l", "p", "m", "n"),
	)
	got := patternMap(Mine(d, 0.6))
	if len(got) != 18 {
		t.Fatalf("got %d patterns, want 18: %v", len(got), got)
	}
	if got["a+c+f+m"] != 3 || got["f"] != 4 {
		t.Fatalf("counts wrong: %v", got)
	}
}

func TestEmpty(t *testing.T) {
	if Mine(ds(), 0.5) != nil {
		t.Fatal("empty dataset should mine nothing")
	}
}

func TestMaxLen(t *testing.T) {
	d := ds(txn("a", "b", "c"), txn("a", "b", "c"))
	ps := MineWithOptions(d, 1.0, Options{MaxLen: 1})
	if len(ps) != 3 {
		t.Fatalf("MaxLen=1 gave %d patterns", len(ps))
	}
}

func TestMineIndexReusesSharedIndex(t *testing.T) {
	// The same prebuilt index mined twice (different thresholds) must
	// match fresh Mine calls: the DFS scratch buffers never leak state
	// into the shared bitmaps.
	d := ds(
		txn("a", "b", "c"), txn("a", "b"), txn("a", "c"), txn("b", "c"), txn("a"),
	)
	ix := itemset.NewIndex(d)
	for _, sup := range []float64{0.4, 0.6} {
		fresh := patternMap(Mine(d, sup))
		shared := patternMap(MineIndex(ix, sup))
		if len(fresh) != len(shared) {
			t.Fatalf("sup=%g: fresh %d patterns, shared index %d", sup, len(fresh), len(shared))
		}
		for k, c := range fresh {
			if shared[k] != c {
				t.Fatalf("sup=%g: %q fresh count %d, shared %d", sup, k, c, shared[k])
			}
		}
	}
}

func TestAgreesWithFPGrowthProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nTxn := 5 + r.Intn(25)
		txns := make([]itemset.Transaction, nTxn)
		for i := range txns {
			n := 1 + r.Intn(6)
			var items []itemset.Item
			for j := 0; j < n; j++ {
				items = append(items, itemset.NewItem(string(rune('a'+r.Intn(7))), itemset.Kind(r.Intn(3))))
			}
			txns[i] = itemset.Transaction{Items: itemset.NewSet(items...)}
		}
		d := ds(txns...)
		sup := []float64{0.15, 0.25, 0.4}[r.Intn(3)]
		e := patternMap(Mine(d, sup))
		f := patternMap(fpgrowth.Mine(d, sup))
		if len(e) != len(f) {
			t.Fatalf("trial %d: eclat %d patterns, fpgrowth %d", trial, len(e), len(f))
		}
		for k, c := range e {
			if f[k] != c {
				t.Fatalf("trial %d: %q eclat count %d, fpgrowth %d", trial, k, c, f[k])
			}
		}
	}
}
