package eclat

import (
	"math/rand"
	"testing"

	"cuisines/internal/fpgrowth"
	"cuisines/internal/itemset"
)

func txn(names ...string) itemset.Transaction {
	return itemset.Transaction{Items: itemset.FromNames(itemset.Ingredient, names...)}
}

func ds(txns ...itemset.Transaction) *itemset.Dataset {
	return itemset.NewDataset(txns)
}

func patternMap(ps []itemset.Pattern) map[string]int {
	m := make(map[string]int, len(ps))
	for _, p := range ps {
		m[p.StringPattern()] = p.Count
	}
	return m
}

func TestMineTextbookExample(t *testing.T) {
	d := ds(
		txn("f", "a", "c", "d", "g", "i", "m", "p"),
		txn("a", "b", "c", "f", "l", "m", "o"),
		txn("b", "f", "h", "j", "o"),
		txn("b", "c", "k", "s", "p"),
		txn("a", "f", "c", "e", "l", "p", "m", "n"),
	)
	got := patternMap(Mine(d, 0.6))
	if len(got) != 18 {
		t.Fatalf("got %d patterns, want 18: %v", len(got), got)
	}
	if got["a+c+f+m"] != 3 || got["f"] != 4 {
		t.Fatalf("counts wrong: %v", got)
	}
}

func TestEmpty(t *testing.T) {
	if Mine(ds(), 0.5) != nil {
		t.Fatal("empty dataset should mine nothing")
	}
}

func TestMaxLen(t *testing.T) {
	d := ds(txn("a", "b", "c"), txn("a", "b", "c"))
	ps := MineWithOptions(d, 1.0, Options{MaxLen: 1})
	if len(ps) != 3 {
		t.Fatalf("MaxLen=1 gave %d patterns", len(ps))
	}
}

func TestMineIndexReusesSharedIndex(t *testing.T) {
	// The same prebuilt index mined twice (different thresholds) must
	// match fresh Mine calls: the DFS scratch buffers never leak state
	// into the shared bitmaps.
	d := ds(
		txn("a", "b", "c"), txn("a", "b"), txn("a", "c"), txn("b", "c"), txn("a"),
	)
	ix := itemset.NewIndex(d)
	for _, sup := range []float64{0.4, 0.6} {
		fresh := patternMap(Mine(d, sup))
		shared := patternMap(MineIndex(ix, sup))
		if len(fresh) != len(shared) {
			t.Fatalf("sup=%g: fresh %d patterns, shared index %d", sup, len(fresh), len(shared))
		}
		for k, c := range fresh {
			if shared[k] != c {
				t.Fatalf("sup=%g: %q fresh count %d, shared %d", sup, k, c, shared[k])
			}
		}
	}
}

func TestAgreesWithFPGrowthProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nTxn := 5 + r.Intn(25)
		txns := make([]itemset.Transaction, nTxn)
		for i := range txns {
			n := 1 + r.Intn(6)
			var items []itemset.Item
			for j := 0; j < n; j++ {
				items = append(items, itemset.NewItem(string(rune('a'+r.Intn(7))), itemset.Kind(r.Intn(3))))
			}
			txns[i] = itemset.Transaction{Items: itemset.NewSet(items...)}
		}
		d := ds(txns...)
		sup := []float64{0.15, 0.25, 0.4}[r.Intn(3)]
		e := patternMap(Mine(d, sup))
		f := patternMap(fpgrowth.Mine(d, sup))
		if len(e) != len(f) {
			t.Fatalf("trial %d: eclat %d patterns, fpgrowth %d", trial, len(e), len(f))
		}
		for k, c := range e {
			if f[k] != c {
				t.Fatalf("trial %d: %q eclat count %d, fpgrowth %d", trial, k, c, f[k])
			}
		}
	}
}

// TestSteadyStateAllocations is the regression guard on the pooled DFS
// scratch: once the sync.Pool is warm, a mining run may allocate its
// output (pattern construction is ~8 allocations per pattern: the item
// slice, the canonicalizing NewSet copy and sort machinery, plus
// amortized slice growth) but nothing proportional to the lattice
// nodes visited. Reintroducing a per-candidate intersection buffer
// trips the bound immediately.
func TestSteadyStateAllocations(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	txns := make([]itemset.Transaction, 1500)
	for i := range txns {
		var items []itemset.Item
		for j := 0; j < 14; j++ {
			if r.Float64() < 0.4 {
				items = append(items, itemset.NewItem(string(rune('a'+j)), itemset.Ingredient))
			}
		}
		txns[i] = itemset.Transaction{Items: itemset.NewSet(items...)}
	}
	ix := itemset.NewIndex(itemset.NewDataset(txns))
	patterns := MineIndex(ix, 0.1)
	if len(patterns) == 0 {
		t.Fatal("fixture mined no patterns")
	}
	MineIndex(ix, 0.1) // warm the scratch pool
	allocs := testing.AllocsPerRun(10, func() { MineIndex(ix, 0.1) })
	// Measured steady state: ~7.9 allocs/pattern (Go 1.24). The bound
	// leaves ~20% headroom for toolchain drift while still catching any
	// per-node allocation, which adds O(candidates tried) on top.
	if maxAllocs := 9.5*float64(len(patterns)) + 50; allocs > maxAllocs {
		t.Errorf("steady-state mine: %.0f allocs for %d patterns, want <= %.0f — per-node scratch is leaking out of the pool",
			allocs, len(patterns), maxAllocs)
	}
}
