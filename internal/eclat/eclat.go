// Package eclat implements the Eclat frequent-itemset miner (Zaki 2000):
// depth-first search over the itemset lattice with vertical tidset
// intersection. The tidsets are the shared bitmap index of
// internal/itemset — in dense layout the inner loop is a branch-free
// word-wise AND over []uint64; in chunked layout (sparse universes) it
// is a roaring-style container intersection that shrinks toward cheap
// array merges as prefixes get rarer. Eclat is one of the three
// pluggable backends behind internal/miner, exercised head-to-head in
// the miner-agreement property tests and the A1/P6 benches.
//
// The per-depth intersection buffers are recycled through a sync.Pool
// across mining runs, so a steady-state mine allocates only its output
// (pinned by the AllocsPerRun regression guard in eclat_test.go).
package eclat

import (
	"sort"
	"sync"

	"cuisines/internal/itemset"
)

// Options tunes a mining run.
type Options struct {
	// MaxLen, if positive, bounds the size of mined itemsets.
	MaxLen int
}

// Mine returns all itemsets with relative support >= minSupport (fraction
// in (0,1], or absolute count if > 1), in canonical report order.
func Mine(d *itemset.Dataset, minSupport float64) []itemset.Pattern {
	return MineIndex(itemset.NewIndex(d), minSupport)
}

// MineWithOptions is Mine with explicit options.
func MineWithOptions(d *itemset.Dataset, minSupport float64, opts Options) []itemset.Pattern {
	return MineIndexWithOptions(itemset.NewIndex(d), minSupport, opts)
}

// MineIndex mines a prebuilt bitmap index (the shared representation all
// backends accept, so one index per region serves any of them).
func MineIndex(ix *itemset.Index, minSupport float64) []itemset.Pattern {
	return MineIndexWithOptions(ix, minSupport, Options{})
}

// scratch holds the per-depth intersection bitmaps of one mining run.
// Buffer d-1 holds the intersection at recursion depth d (depth 0
// borrows the index's own bitmaps and intersects nothing); each buffer
// is overwritten only after every deeper extension of the previous
// sibling has finished with it, so one buffer per depth suffices.
type scratch struct {
	levels []*itemset.Bitmap
}

// level returns the scratch bitmap for depth, shaped for ix's layout.
func (s *scratch) level(ix *itemset.Index, depth int) *itemset.Bitmap {
	for len(s.levels) < depth {
		s.levels = append(s.levels, new(itemset.Bitmap))
	}
	b := s.levels[depth-1]
	ix.PrepareScratch(b)
	return b
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// MineIndexWithOptions is MineIndex with explicit options.
func MineIndexWithOptions(ix *itemset.Index, minSupport float64, opts Options) []itemset.Pattern {
	if ix.NumTransactions() == 0 {
		return nil
	}
	minCount := ix.MinCount(minSupport)

	// Frequent items in ascending support order (ties by item, which is
	// ascending id): extending rare prefixes first keeps the intersected
	// bitmaps sparse and the search shallow.
	type entry struct {
		id    int32
		count int
	}
	var freq []entry
	for id := int32(0); int(id) < ix.NumItems(); id++ {
		if c := ix.Count(id); c >= minCount {
			freq = append(freq, entry{id, c})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].count != freq[j].count {
			return freq[i].count < freq[j].count
		}
		return freq[i].id < freq[j].id
	})

	var out []itemset.Pattern
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	// Depth-first extension: each prefix holds the items chosen so far
	// and the bitmap of their intersection; extensions come from the tail
	// of the frequent item order.
	var dfs func(prefix []int32, prefixBits *itemset.Bitmap, start, depth int)
	dfs = func(prefix []int32, prefixBits *itemset.Bitmap, start, depth int) {
		for i := start; i < len(freq); i++ {
			var (
				cnt  int
				bits *itemset.Bitmap
			)
			if prefixBits == nil {
				cnt, bits = freq[i].count, ix.ItemBitmap(freq[i].id)
			} else {
				bits = sc.level(ix, depth)
				cnt = itemset.AndBitmaps(bits, prefixBits, ix.ItemBitmap(freq[i].id))
			}
			if cnt < minCount {
				continue
			}
			prefix = append(prefix, freq[i].id)
			out = append(out, ix.Pattern(prefix, cnt))
			if opts.MaxLen == 0 || len(prefix) < opts.MaxLen {
				dfs(prefix, bits, i+1, depth+1)
			}
			prefix = prefix[:len(prefix)-1]
		}
	}
	dfs(nil, nil, 0, 0)

	itemset.SortPatterns(out)
	return out
}
