// Package eclat implements the Eclat frequent-itemset miner (Zaki 2000):
// depth-first search over the itemset lattice with vertical tid-list
// intersection. It is the third independent miner in the repository,
// used in the miner-agreement property tests and the A1 ablation bench
// (FP-Growth vs Apriori vs Eclat).
package eclat

import (
	"sort"

	"cuisines/internal/itemset"
)

// Options tunes a mining run.
type Options struct {
	// MaxLen, if positive, bounds the size of mined itemsets.
	MaxLen int
}

// Mine returns all itemsets with relative support >= minSupport (fraction
// in (0,1], or absolute count if > 1), in canonical report order.
func Mine(d *itemset.Dataset, minSupport float64) []itemset.Pattern {
	return MineWithOptions(d, minSupport, Options{})
}

// MineWithOptions is Mine with explicit options.
func MineWithOptions(d *itemset.Dataset, minSupport float64, opts Options) []itemset.Pattern {
	if d.Len() == 0 {
		return nil
	}
	minCount := d.MinCount(minSupport)
	total := float64(d.Len())

	// Vertical representation: item -> sorted tid list.
	tidlists := make(map[itemset.Item][]int32)
	for tid, t := range d.Transactions() {
		for _, it := range t.Items.Items() {
			tidlists[it] = append(tidlists[it], int32(tid))
		}
	}
	type entry struct {
		it   itemset.Item
		tids []int32
	}
	var freq []entry
	for it, tids := range tidlists {
		if len(tids) >= minCount {
			freq = append(freq, entry{it, tids})
		}
	}
	// Ascending support order reduces intersection work; ties by item for
	// determinism.
	sort.Slice(freq, func(i, j int) bool {
		if len(freq[i].tids) != len(freq[j].tids) {
			return len(freq[i].tids) < len(freq[j].tids)
		}
		return freq[i].it.Less(freq[j].it)
	})

	var out []itemset.Pattern
	emit := func(items []itemset.Item, count int) {
		cp := make([]itemset.Item, len(items))
		copy(cp, items)
		out = append(out, itemset.Pattern{
			Items:   itemset.NewSet(cp...),
			Count:   count,
			Support: float64(count) / total,
		})
	}

	// Depth-first extension: each prefix holds the items chosen so far and
	// the tid-list of their intersection; extensions come from the tail of
	// the frequent item order.
	var dfs func(prefixItems []itemset.Item, prefixTids []int32, startIdx int)
	dfs = func(prefixItems []itemset.Item, prefixTids []int32, startIdx int) {
		for i := startIdx; i < len(freq); i++ {
			var tids []int32
			if prefixTids == nil {
				tids = freq[i].tids
			} else {
				tids = intersect(prefixTids, freq[i].tids)
			}
			if len(tids) < minCount {
				continue
			}
			items := append(prefixItems, freq[i].it)
			emit(items, len(tids))
			if opts.MaxLen == 0 || len(items) < opts.MaxLen {
				dfs(items, tids, i+1)
			}
			prefixItems = items[:len(items)-1]
		}
	}
	dfs(nil, nil, 0)

	itemset.SortPatterns(out)
	return out
}

// intersect returns the intersection of two sorted tid lists.
func intersect(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
