package miner_test

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	"cuisines/internal/corpus"
	"cuisines/internal/itemset"
	"cuisines/internal/miner"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"apriori", "apriori"},
		{"eclat", "eclat"},
		{"fpgrowth", "fpgrowth"},
		{"FP-Growth", "fpgrowth"},
		{"fp_growth", "fpgrowth"},
		{"fp", "fpgrowth"},
		{" Eclat ", "eclat"},
		{"", miner.Default.Name()},
	}
	for _, c := range cases {
		m, err := miner.Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if m.Name() != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, m.Name(), c.want)
		}
	}
	if _, err := miner.Parse("magic"); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("unknown backend error = %v", err)
	}
}

func TestRegistryOrder(t *testing.T) {
	names := miner.Names()
	if len(names) < 3 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	all := miner.All()
	for i, m := range all {
		if m.Name() != names[i] {
			t.Fatalf("All()[%d] = %q, Names()[%d] = %q", i, m.Name(), i, names[i])
		}
	}
	// The default must be a registered backend (Parse must round-trip it).
	m, err := miner.Parse(miner.Default.Name())
	if err != nil || m.Name() != miner.Default.Name() {
		t.Fatalf("Default %q not registered: %v", miner.Default.Name(), err)
	}
}

// encodePatterns serializes a pattern slice the same way the pipeline's
// mine artifact does (gob), making "byte-identical output" literal.
func encodePatterns(t *testing.T, ps []itemset.Pattern) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBackendsByteIdenticalOnCorpus is the tentpole's acceptance test:
// all registered backends must produce byte-identical serialized
// pattern sets for every region of the calibrated corpus at both
// support thresholds. This is what licenses excluding the miner name
// from artifact and cache keys.
func TestBackendsByteIdenticalOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is slow")
	}
	db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	all := miner.All()
	for _, region := range db.Regions() {
		ix := itemset.NewIndex(db.RegionDataset(region))
		for _, sup := range []float64{0.2, 0.35} {
			ref := encodePatterns(t, all[0].Mine(ix, sup))
			for _, m := range all[1:] {
				got := encodePatterns(t, m.Mine(ix, sup))
				if !bytes.Equal(ref, got) {
					t.Errorf("region %q sup %g: %s output differs from %s",
						region, sup, m.Name(), all[0].Name())
				}
			}
		}
	}
}

// TestBackendsAgreeOnRandomDatasets is the cross-miner agreement
// property test on randomized synthetic datasets: random transaction
// counts, item universes and support thresholds, not just
// corpus-derived shapes. Every backend pair must agree exactly
// (byte-identically, via the same gob framing as the corpus test).
func TestBackendsAgreeOnRandomDatasets(t *testing.T) {
	r := rand.New(rand.NewSource(20200426))
	all := miner.All()
	for trial := 0; trial < 60; trial++ {
		nTxn := 1 + r.Intn(150)
		universe := 2 + r.Intn(12)
		maxLen := 1 + r.Intn(8)
		txns := make([]itemset.Transaction, nTxn)
		for i := range txns {
			n := r.Intn(maxLen + 1) // empty transactions allowed
			var items []itemset.Item
			for j := 0; j < n; j++ {
				items = append(items, itemset.NewItem(
					string(rune('a'+r.Intn(universe))), itemset.Kind(r.Intn(3))))
			}
			txns[i] = itemset.Transaction{Items: itemset.NewSet(items...)}
		}
		ix := itemset.NewIndex(itemset.NewDataset(txns))
		sup := []float64{0.1, 0.2, 0.35, 0.5, 0.8}[r.Intn(5)]
		ref := all[0].Mine(ix, sup)
		refBytes := encodePatterns(t, ref)
		for _, m := range all[1:] {
			if got := encodePatterns(t, m.Mine(ix, sup)); !bytes.Equal(refBytes, got) {
				t.Fatalf("trial %d (txns=%d universe=%d sup=%g): %s disagrees with %s\n%s: %v\n%s: %v",
					trial, nTxn, universe, sup, m.Name(), all[0].Name(),
					all[0].Name(), ref, m.Name(), m.Mine(ix, sup))
			}
		}
	}
}
