package miner_test

import (
	"bytes"
	"math/rand"
	"testing"

	"cuisines/internal/corpus"
	"cuisines/internal/itemset"
	"cuisines/internal/miner"
)

// The index-mode equivalence suite: the dense and chunked bitmap
// layouts are pure representation choices, so every miner must emit
// byte-identical sorted pattern sets from either — the same invariant
// the backend-agreement tests pin across miners, pinned here across
// layouts. Together with those tests this closes the square: any
// (miner, layout) pair is exchangeable for any other.

// TestIndexModesByteIdenticalOnCorpus mines every corpus region through
// both layouts at the Table I support thresholds, with all three
// backends.
func TestIndexModesByteIdenticalOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is slow")
	}
	db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, region := range db.Regions() {
		d := db.RegionDataset(region)
		dense := itemset.NewIndexMode(d, itemset.ModeDense)
		chunked := itemset.NewIndexMode(d, itemset.ModeChunked)
		if dense.Mode() != itemset.ModeDense || chunked.Mode() != itemset.ModeChunked {
			t.Fatalf("region %q: requested modes not honored", region)
		}
		for _, sup := range []float64{0.2, 0.35} {
			for _, m := range miner.All() {
				got := encodePatterns(t, m.Mine(dense, sup))
				want := encodePatterns(t, m.Mine(chunked, sup))
				if !bytes.Equal(got, want) {
					t.Errorf("region %q sup %g: %s output differs between dense and chunked index",
						region, sup, m.Name())
				}
			}
		}
	}
}

// TestIndexModesAgreeOnRandomDensityRegimes is the randomized
// counterpart: synthetic datasets spanning the density regimes that
// pick different container forms — near-universal items (dense words /
// bitmap containers), mid-frequency items (array containers near the
// flip threshold), rare items (short arrays) — plus a multi-chunk
// universe, mined through both layouts by every backend.
func TestIndexModesAgreeOnRandomDensityRegimes(t *testing.T) {
	r := rand.New(rand.NewSource(20200808))
	type regime struct {
		nTxn  int
		probs []float64 // per-item transaction membership probability
	}
	regimes := []regime{
		{nTxn: 40, probs: []float64{0.9, 0.7, 0.5, 0.3, 0.3, 0.1}},
		{nTxn: 800, probs: []float64{0.95, 0.6, 0.4, 0.2, 0.1, 0.05, 0.05, 0.01}},
		{nTxn: 5000, probs: []float64{0.9, 0.5, 0.3, 0.08, 0.03, 0.01, 0.005}},
		// Multi-chunk: the universe spans two 2^16-tid chunks.
		{nTxn: 70_000, probs: []float64{0.7, 0.4, 0.35, 0.1, 0.02}},
	}
	sups := []float64{0.05, 0.15, 0.3}
	for ri, rg := range regimes {
		txns := make([]itemset.Transaction, rg.nTxn)
		for i := range txns {
			var items []itemset.Item
			for j, p := range rg.probs {
				if r.Float64() < p {
					items = append(items, itemset.NewItem(string(rune('a'+j)), itemset.Kind(j%3)))
				}
			}
			txns[i] = itemset.Transaction{Items: itemset.NewSet(items...)}
		}
		d := itemset.NewDataset(txns)
		dense := itemset.NewIndexMode(d, itemset.ModeDense)
		chunked := itemset.NewIndexMode(d, itemset.ModeChunked)
		sup := sups[ri%len(sups)]
		for _, m := range miner.All() {
			got := encodePatterns(t, m.Mine(dense, sup))
			want := encodePatterns(t, m.Mine(chunked, sup))
			if !bytes.Equal(got, want) {
				t.Errorf("regime %d (txns=%d) sup %g: %s output differs between dense and chunked index",
					ri, rg.nTxn, sup, m.Name())
			}
		}
	}
}

// TestAutoModeMatchesExplicitModes pins ModeAuto to being exactly a
// selection between the two explicit layouts — whatever it picks, the
// mined output must match both.
func TestAutoModeMatchesExplicitModes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	txns := make([]itemset.Transaction, 2000)
	for i := range txns {
		var items []itemset.Item
		for j, p := range []float64{0.8, 0.3, 0.1, 0.02, 0.01} {
			if r.Float64() < p {
				items = append(items, itemset.NewItem(string(rune('a'+j)), itemset.Ingredient))
			}
		}
		txns[i] = itemset.Transaction{Items: itemset.NewSet(items...)}
	}
	d := itemset.NewDataset(txns)
	auto := itemset.NewIndexMode(d, itemset.ModeAuto)
	dense := itemset.NewIndexMode(d, itemset.ModeDense)
	for _, m := range miner.All() {
		got := encodePatterns(t, m.Mine(auto, 0.05))
		if !bytes.Equal(got, encodePatterns(t, m.Mine(dense, 0.05))) {
			t.Errorf("%s: auto-mode output differs from dense", m.Name())
		}
	}
}
