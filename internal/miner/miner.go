// Package miner defines the pluggable frequent-itemset mining backend
// layer: a single Miner interface over the shared bitset transaction
// index (itemset.Index), a registry of the three implementations
// (Apriori, Eclat, FP-Growth), and the selection knob threaded through
// core.MineRegionsWith, the pipeline's mine stage, cuisines.Options and
// the daemon/CLI flags (DESIGN.md §9).
//
// Every backend emits the identical sorted pattern set for the same
// index and threshold — pinned by the byte-identity and randomized
// agreement tests in this package — so the backend, like the worker
// count, is a pure performance knob: it never enters an artifact or
// cache key, and switching it against a warm store recomputes nothing.
package miner

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cuisines/internal/apriori"
	"cuisines/internal/eclat"
	"cuisines/internal/fpgrowth"
	"cuisines/internal/itemset"
)

// Miner is one frequent-itemset mining backend. Mine returns every
// itemset whose relative support in the indexed transactions is at
// least minSupport (a fraction in (0, 1], or an absolute count if > 1),
// in canonical report order (itemset.SortPatterns). Implementations
// must be stateless and safe for concurrent use: one Miner value serves
// every region fan-out worker.
type Miner interface {
	// Name returns the canonical lowercase backend name ("eclat").
	Name() string
	// Mine mines the prebuilt index at the given support threshold.
	Mine(ix *itemset.Index, minSupport float64) []itemset.Pattern
}

// backend adapts a mining function to the Miner interface.
type backend struct {
	name string
	mine func(*itemset.Index, float64) []itemset.Pattern
}

func (b backend) Name() string { return b.name }
func (b backend) Mine(ix *itemset.Index, minSupport float64) []itemset.Pattern {
	return b.mine(ix, minSupport)
}

// The three built-in backends.
var (
	// Apriori is the level-wise baseline (Agrawal & Srikant 1994),
	// counting candidates against the bitset index.
	Apriori Miner = backend{"apriori", apriori.MineIndex}
	// Eclat intersects the index's bitmaps directly (Zaki 2000). It is
	// the fastest backend at the paper's per-cuisine scales (see the P6
	// benchmark table in README.md) and therefore the default.
	Eclat Miner = backend{"eclat", eclat.MineIndex}
	// FPGrowth is the paper's named algorithm (Han, Pei & Yin 2000).
	FPGrowth Miner = backend{"fpgrowth", fpgrowth.MineIndex}
)

// Default is the backend used when none is selected — the P6 benchmark
// winner (backend × support × scale; see "Choosing a mining backend" in
// README.md). Changing it never changes any output, only how fast the
// mine stage runs.
var Default = Eclat

var (
	mu       sync.RWMutex
	registry = map[string]Miner{}
	// aliases maps accepted spellings to canonical names.
	aliases = map[string]string{
		"fp-growth": "fpgrowth",
		"fp_growth": "fpgrowth",
		"fp":        "fpgrowth",
	}
)

func init() {
	for _, m := range []Miner{Apriori, Eclat, FPGrowth} {
		Register(m)
	}
}

// Register adds a backend under its canonical (lowercased) name. It
// panics on an empty or duplicate name: registration is an init-time
// programming act, not a runtime input.
func Register(m Miner) {
	name := strings.ToLower(strings.TrimSpace(m.Name()))
	if name == "" {
		panic("miner: Register with empty name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("miner: Register called twice for %q", name))
	}
	registry[name] = m
}

// Parse resolves a backend name, case-insensitively and accepting the
// common FP-Growth spellings ("fp-growth", "fp"). The empty string
// resolves to Default, mirroring how Options canonicalization treats
// unset knobs.
func Parse(name string) (Miner, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	if s == "" {
		return Default, nil
	}
	if canon, ok := aliases[s]; ok {
		s = canon
	}
	mu.RLock()
	m, ok := registry[s]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("miner: unknown mining backend %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return m, nil
}

// All returns every registered backend in name order — the sweep the
// agreement tests and the P6 benchmark iterate over.
func All() []Miner {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Miner, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns the registered backend names in sorted order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, m := range all {
		names[i] = m.Name()
	}
	return names
}
