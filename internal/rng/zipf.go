package rng

import "math"

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. It is used to draw long-tail ingredients so that the
// synthetic corpus shows the heavy-tailed item frequency distribution real
// recipe corpora have (a handful of staples, thousands of rare items).
//
// Sampling is by inverse-CDF binary search over the precomputed cumulative
// weights: O(log n) per draw, exact for any s > 0 (including s <= 1 where
// rejection-based samplers for the infinite Zipf do not apply).
type Zipf struct {
	cum []float64 // cumulative normalized weights, cum[n-1] == 1
}

// NewZipf builds a sampler over n ranks with exponent s. It panics if
// n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("rng: NewZipf with negative exponent")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	inv := 1 / total
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws one rank in [0, N).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
