// Package rng provides a small, deterministic pseudo-random number
// generator suite used throughout the corpus generator and the clustering
// code. The implementation is self-contained (splitmix64 seeding feeding a
// xoshiro256** core) so that a given seed produces the same corpus on every
// platform and Go release; math/rand makes no such cross-version promise,
// and reproducibility of the synthetic RecipeDB is a correctness requirement
// for the experiment harness.
package rng

import "math"

// RNG is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next splitmix64
// output. It is used only for seed expansion, per the xoshiro authors'
// recommendation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A xoshiro state of all zeros would be stuck; splitmix64 cannot
	// produce four zero words from any seed, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives an independent child generator from the current state. The
// parent advances, so successive forks are distinct.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give the standard dyadic uniform.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to remove modulo bias.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// transform. The spare value is not cached to keep the generator state
// position-independent under Fork.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// method for small means and normal approximation above 60 (adequate for
// recipe-length sampling where means are ~3-15).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleStrings shuffles the slice in place (Fisher-Yates).
func (r *RNG) ShuffleStrings(p []string) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
