package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		seen := make(map[int]bool)
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if n <= 8 && len(seen) != n {
			t.Fatalf("Intn(%d) covered only %d values in 2000 draws", n, len(seen))
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolRate(t *testing.T) {
	r := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", rate)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(23)
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
	if r.Poisson(-1) != 0 {
		t.Fatal("Poisson(-1) != 0")
	}
	for i := 0; i < 10000; i++ {
		if r.Poisson(100) < 0 {
			t.Fatal("Poisson produced a negative count")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(31)
	c1 := parent.Fork()
	c2 := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked children produced %d/100 identical outputs", same)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(37)
	for _, tc := range []struct{ n, k int }{{10, 3}, {100, 50}, {5, 5}, {5, 9}, {7, 0}} {
		s := r.SampleDistinct(tc.n, tc.k)
		wantLen := tc.k
		if tc.k >= tc.n {
			wantLen = tc.n
		}
		if tc.k <= 0 {
			wantLen = 0
		}
		if len(s) != wantLen {
			t.Fatalf("SampleDistinct(%d,%d) length %d want %d", tc.n, tc.k, len(s), wantLen)
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= tc.n {
				t.Fatalf("SampleDistinct(%d,%d) out-of-range value %d", tc.n, tc.k, v)
			}
			if seen[v] {
				t.Fatalf("SampleDistinct(%d,%d) duplicate value %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctUniform(t *testing.T) {
	r := New(41)
	counts := make([]int, 6)
	for i := 0; i < 30000; i++ {
		for _, v := range r.SampleDistinct(6, 2) {
			counts[v]++
		}
	}
	want := 30000.0 * 2 / 6
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("element %d drawn %d times, want ~%v", i, c, want)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(43)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight element chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := New(47)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.WeightedChoice([]float64{0, 0, 0})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("all-zero weights should fall back to uniform, saw %v", seen)
	}
}

func TestBinomial(t *testing.T) {
	r := New(53)
	const n, p, draws = 20, 0.25, 20000
	sum := 0
	for i := 0; i < draws; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial out of range: %d", k)
		}
		sum += k
	}
	mean := float64(sum) / draws
	if math.Abs(mean-n*p) > 0.15 {
		t.Fatalf("Binomial mean = %v, want %v", mean, n*p)
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 1.7} {
		z := NewZipf(50, s)
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Zipf(s=%v) probs sum to %v", s, sum)
		}
	}
}

func TestZipfMonotone(t *testing.T) {
	z := NewZipf(100, 1.2)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("Zipf probability not non-increasing at rank %d", i)
		}
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	r := New(59)
	z := NewZipf(20, 1.0)
	const draws = 200000
	counts := make([]int, z.N())
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for i := 0; i < 5; i++ { // check the head, where counts are large
		want := z.Prob(i) * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Fatalf("rank %d sampled %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestZipfOutOfRangeProb(t *testing.T) {
	z := NewZipf(5, 1)
	if z.Prob(-1) != 0 || z.Prob(5) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

// Property: Uint64n(n) < n for arbitrary n > 0.
func TestUint64nBoundProperty(t *testing.T) {
	r := New(61)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
