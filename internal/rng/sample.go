package rng

// SampleDistinct draws k distinct ints uniformly from [0, n) in O(k)
// expected time using a partial Fisher-Yates over a sparse map. If k >= n
// it returns a full permutation of [0, n).
func (r *RNG) SampleDistinct(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	if k <= 0 {
		return nil
	}
	swapped := make(map[int]int, k*2)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		swapped[j] = vi
		swapped[i] = vj
	}
	return out
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to its weight. Negative weights are treated as zero. If all
// weights are zero it falls back to uniform choice. It panics on an empty
// slice.
func (r *RNG) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedChoice with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Binomial returns the number of successes in n independent trials with
// success probability p. For the corpus generator n is at most a few dozen,
// so direct simulation is both exact and fast enough.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}
