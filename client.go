package cuisines

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"cuisines/internal/recipedb"
)

// This file defines the cuisined daemon's wire format — the response
// envelope for each /v1 endpoint — and a thin HTTP client for it. The
// server (internal/server) marshals these same types, so client and
// daemon can never disagree about field names. DESIGN.md §7 documents
// the API.

// ErrorResponse is the body of every non-2xx daemon response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status string `json:"status"`
	// Cached counts analyses currently held (or in flight) by the
	// daemon's cache.
	Cached int `json:"cached"`
}

// TableResponse is the /v1/table body: the Table I reproduction.
type TableResponse struct {
	Rows []TableRow `json:"rows"`
}

// DendrogramResponse is the /v1/dendrogram/{figure} body.
type DendrogramResponse struct {
	Figure     string `json:"figure"`
	Dendrogram string `json:"dendrogram"`
}

// ClustersResponse is the /v1/clusters/{figure}?k= body.
type ClustersResponse struct {
	Figure   string     `json:"figure"`
	K        int        `json:"k"`
	Clusters [][]string `json:"clusters"`
}

// ClosestResponse is the /v1/closest/{figure}?region= body.
type ClosestResponse struct {
	Figure  string `json:"figure"`
	Region  string `json:"region"`
	Closest string `json:"closest"`
	// Distance is the cophenetic distance at which the two merge.
	Distance float64 `json:"distance"`
}

// PatternsResponse is the /v1/patterns/{region} body.
type PatternsResponse struct {
	Region   string        `json:"region"`
	Patterns []PatternInfo `json:"patterns"`
}

// RulesResponse is the /v1/rules/{region} body.
type RulesResponse struct {
	Region string            `json:"region"`
	Rules  []AssociationRule `json:"rules"`
}

// PairingsResponse is the /v1/pairings/{region} body: the cuisine's
// flavor-compound pairing statistic (Jain et al.'s ΔN_s framing)
// together with its ingredient-only association rules.
type PairingsResponse struct {
	Region  string            `json:"region"`
	Pairing FoodPairing       `json:"pairing"`
	Rules   []AssociationRule `json:"rules"`
}

// SubstitutesResponse is the /v1/substitutes/{region}?ingredient= body.
type SubstitutesResponse struct {
	Region      string       `json:"region"`
	Ingredient  string       `json:"ingredient"`
	Substitutes []Substitute `json:"substitutes"`
}

// MapResponse is the /v1/map body. Rendered is present only when the
// request asked for the ASCII rendering (width/height query params).
type MapResponse struct {
	Points            []MapPoint `json:"points"`
	VarianceExplained [2]float64 `json:"variance_explained"`
	Rendered          string     `json:"rendered,omitempty"`
}

// ClaimsResponse is the /v1/claims body: the Sec. VII claim checks and
// tree-vs-geography fits.
type ClaimsResponse struct {
	Claims  []ClaimResult  `json:"claims"`
	Fits    []GeographyFit `json:"fits"`
	AllHold bool           `json:"all_hold"`
}

// StatsResponse is the /v1/stats body: the Sec. III corpus statistics
// plus the canonical mining backend the request selects. The backend is
// echoed so operators can confirm how the daemon resolved their -miner
// flag or ?miner= override; because the miner can never change any
// output it is not part of the cache key, so the echoed name is the
// backend a cache miss for these options would run, not necessarily
// the one that originally computed the (shared) cached analysis.
type StatsResponse struct {
	recipedb.Stats
	Miner string `json:"miner"`
}

// StageCacheStats counts one pipeline stage's artifact cache traffic.
// Hits are memory-tier hits, DiskHits are persistent-tier loads,
// PeerHits are artifacts fetched from cluster peers instead of
// recomputed, Computed counts actual stage executions — the number the
// staged pipeline exists to minimize — and InFlightJoins counts
// requests that latched onto an already-running computation.
type StageCacheStats struct {
	Hits          uint64 `json:"hits"`
	DiskHits      uint64 `json:"disk_hits"`
	PeerHits      uint64 `json:"peer_hits"`
	Computed      uint64 `json:"computed"`
	Evictions     uint64 `json:"evictions"`
	InFlightJoins uint64 `json:"inflight_joins"`
}

// AnalysisCacheStats counts the daemon's analysis-level cache traffic
// (the LRU of assembled Analysis objects in front of the stage store).
type AnalysisCacheStats struct {
	Size          int    `json:"size"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	InFlightJoins uint64 `json:"inflight_joins"`
}

// RenderCacheStats counts the daemon's rendered-response cache traffic
// (DESIGN.md §14): entries are fully-rendered response bodies keyed by
// (analysis key, endpoint, canonical query), so a hit skips the derive
// and marshal work entirely. NotModified counts conditional requests
// answered 304; GzipVariants counts compressed variants built (at most
// once per entry).
type RenderCacheStats struct {
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	CapacityBytes int64  `json:"capacity_bytes"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	InFlightJoins uint64 `json:"inflight_joins"`
	GzipVariants  uint64 `json:"gzip_variants"`
	NotModified   uint64 `json:"not_modified"`
}

// CacheStatsResponse is the /v1/cachestats body: the analysis cache
// counters plus the per-stage artifact store counters, keyed by stage
// kind ("corpus", "mine", "matrices", "auth", "pdist", "geodist",
// "tree", "elbow", "validate"), plus the rendered-response cache
// counters. Stages is empty when the daemon runs with a custom
// pipeline entry point that bypasses the stage graph.
type CacheStatsResponse struct {
	Analyses AnalysisCacheStats         `json:"analyses"`
	Stages   map[string]StageCacheStats `json:"stages"`
	Renders  RenderCacheStats           `json:"renders"`
}

// ClusterPeer is one peer's liveness as seen by the answering node's
// health checker.
type ClusterPeer struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Failures is the current consecutive probe-failure count.
	Failures int    `json:"failures,omitempty"`
	LastErr  string `json:"last_err,omitempty"`
	// LastProbe is the RFC3339 time of the last completed probe.
	LastProbe string `json:"last_probe,omitempty"`
}

// ClusterExchangeStats counts the answering node's peer artifact
// exchange traffic: the fetch side (this node asking peers on local
// store misses) and the serve side (peers asking this node).
// FetchRejects counts responses that failed frame verification —
// nonzero means a peer is corrupt or incompatible, never that the
// cache took bad bytes.
type ClusterExchangeStats struct {
	FetchAttempts uint64 `json:"fetch_attempts"`
	FetchHits     uint64 `json:"fetch_hits"`
	FetchMisses   uint64 `json:"fetch_misses"`
	FetchErrors   uint64 `json:"fetch_errors"`
	FetchRejects  uint64 `json:"fetch_rejects"`
	ServeHits     uint64 `json:"serve_hits"`
	ServeMisses   uint64 `json:"serve_misses"`
}

// ClusterResponse is the /v1/cluster body. Enabled false (the whole
// body zero) means the daemon runs single-node; otherwise it reports
// this node's identity, the static ring membership, per-peer health,
// exchange counters, and how many requests it proxied to ring owners
// (ProxyFallbacks counts proxies that failed over to local compute
// because the owner died mid-request).
type ClusterResponse struct {
	Enabled        bool                 `json:"enabled"`
	Self           string               `json:"self,omitempty"`
	Members        []string             `json:"members,omitempty"`
	Replicas       int                  `json:"replicas,omitempty"`
	Peers          []ClusterPeer        `json:"peers,omitempty"`
	Exchange       ClusterExchangeStats `json:"exchange"`
	Proxied        uint64               `json:"proxied"`
	ProxyFallbacks uint64               `json:"proxy_fallbacks"`
}

// Client is a thin client for the cuisined daemon: each method mirrors
// the Analysis accessor of the same name, evaluated daemon-side against
// a cached analysis.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8372".
	BaseURL string
	// BaseURLs are additional daemon replicas. Every request method is
	// an idempotent GET, so on a transport error or a 5xx the client
	// retries the next replica in order (BaseURL first, then BaseURLs)
	// until one answers. Client errors (4xx) and 429 backpressure are
	// returned as-is — every replica would say the same thing.
	BaseURLs []string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
	// Options selects which analysis the daemon answers from. Zero
	// fields fall back to the daemon's own defaults; Workers is a
	// daemon-side concern and is never transmitted.
	Options Options
	// Revalidate enables the client-side validator cache: successful
	// response bodies are remembered with their ETag, subsequent
	// requests for the same URL carry If-None-Match, and a 304 answer
	// is satisfied from the remembered body without re-transfer. The
	// cache is small (revalMaxEntries) and per-Client. Off by default:
	// callers that never repeat a URL would only pay the memory.
	Revalidate bool

	revalMu    sync.Mutex
	reval      map[string]revalEntry
	revalOrder []string // FIFO over cache keys; bounds the map
}

// revalEntry is one remembered response for conditional revalidation.
type revalEntry struct {
	etag string
	body []byte
}

// revalMaxEntries bounds the Revalidate cache. FIFO, not LRU: the cache
// exists to turn repeat fetches into 304s, and 128 distinct URLs covers
// every endpoint × figure × region combination a polling client cycles
// through.
const revalMaxEntries = 128

// revalGet returns the remembered validator and body for url, if any.
func (c *Client) revalGet(url string) (etag string, body []byte) {
	c.revalMu.Lock()
	defer c.revalMu.Unlock()
	e, ok := c.reval[url]
	if !ok {
		return "", nil
	}
	return e.etag, e.body
}

// revalPut remembers url's body under its validator, evicting the
// oldest entry once full.
func (c *Client) revalPut(url, etag string, body []byte) {
	c.revalMu.Lock()
	defer c.revalMu.Unlock()
	if c.reval == nil {
		c.reval = make(map[string]revalEntry)
	}
	if _, exists := c.reval[url]; !exists {
		c.revalOrder = append(c.revalOrder, url)
		for len(c.revalOrder) > revalMaxEntries {
			delete(c.reval, c.revalOrder[0])
			c.revalOrder = c.revalOrder[1:]
		}
	}
	c.reval[url] = revalEntry{etag: etag, body: body}
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

// NewClusterClient returns a Client that fails over across a fleet of
// cuisined replicas. The first URL is the preferred one; the rest are
// tried in order when it is unreachable or answering 5xx.
func NewClusterClient(baseURLs ...string) *Client {
	c := &Client{}
	if len(baseURLs) > 0 {
		c.BaseURL = baseURLs[0]
		c.BaseURLs = baseURLs[1:]
	}
	return c
}

// query encodes the client's non-zero analysis options plus any extra
// endpoint parameters.
func (c *Client) query(extra url.Values) url.Values {
	q := url.Values{}
	if c.Options.Seed != 0 {
		q.Set("seed", strconv.FormatUint(c.Options.Seed, 10))
	}
	if c.Options.Scale > 0 {
		q.Set("scale", strconv.FormatFloat(c.Options.Scale, 'g', -1, 64))
	}
	if c.Options.MinSupport > 0 {
		q.Set("support", strconv.FormatFloat(c.Options.MinSupport, 'g', -1, 64))
	}
	if c.Options.Linkage != "" {
		q.Set("linkage", c.Options.Linkage)
	}
	if c.Options.Miner != "" {
		q.Set("miner", c.Options.Miner)
	}
	for k, vs := range extra {
		q[k] = vs
	}
	return q
}

// Response body caps. Every read goes through io.LimitReader so a
// misbehaving or hostile server cannot OOM the client: data bodies get
// a generous cap (a full-scale dendrogram JSON is a few MB; 64 MiB is
// far beyond any legitimate response), error bodies a small one (an
// ErrorResponse is one sentence). Package-level vars, not consts, so
// tests can shrink them.
var (
	maxResponseBytes  int64 = 64 << 20
	maxErrorBodyBytes int64 = 256 << 10
)

// statusError is an HTTP-level failure from one replica, carrying the
// status code so get can tell retryable server trouble (5xx) from
// definitive answers (4xx, 429).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// retryable reports whether another replica might answer differently:
// transport errors and 5xx yes; anything the server deliberately said
// (4xx, 429) no.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true // transport-level failure
}

// get performs one GET and decodes the response, failing over across
// replicas: each base URL is tried in order until one answers with
// something non-retryable. The common single-URL client degenerates to
// exactly the old behavior.
func (c *Client) get(ctx context.Context, path string, extra url.Values, out any) error {
	bases := make([]string, 0, 1+len(c.BaseURLs))
	if c.BaseURL != "" || len(c.BaseURLs) == 0 {
		bases = append(bases, c.BaseURL)
	}
	bases = append(bases, c.BaseURLs...)
	var lastErr error
	for _, base := range bases {
		err := c.getFrom(ctx, base, path, extra, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// getFrom performs one GET against one replica and decodes the
// response: 2xx bodies into out (raw bytes when out is *[]byte), error
// bodies into an error. Bodies beyond maxResponseBytes fail with a
// "response too large" error; oversized error bodies are truncated
// rather than rejected (the status line still carries the signal).
func (c *Client) getFrom(ctx context.Context, base, path string, extra url.Values, out any) error {
	u := base + path
	if q := c.query(extra); len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	// Negotiate gzip explicitly (rather than via the transport's
	// transparent mode) so the size cap below provably applies to the
	// decompressed bytes, whichever http.Client the caller supplied.
	req.Header.Set("Accept-Encoding", "gzip")
	var cachedETag string
	var cachedBody []byte
	if c.Revalidate {
		if cachedETag, cachedBody = c.revalGet(u); cachedETag != "" {
			req.Header.Set("If-None-Match", cachedETag)
		}
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// reader yields the response's identity bytes whatever the wire
	// encoding; every cap below bounds decompressed output, so a
	// hostile gzip bomb cannot expand past maxResponseBytes.
	var reader io.Reader = resp.Body
	if strings.Contains(strings.ToLower(resp.Header.Get("Content-Encoding")), "gzip") {
		zr, err := gzip.NewReader(resp.Body)
		if err != nil {
			return fmt.Errorf("cuisines: bad gzip response on %s: %w", path, err)
		}
		defer zr.Close()
		reader = zr
	}
	if resp.StatusCode == http.StatusNotModified && cachedETag != "" {
		return decodeBody(cachedBody, out)
	}
	if resp.StatusCode != http.StatusOK {
		// Error bodies are tiny by construction; read a capped prefix
		// and never fail on an oversized one.
		body, err := io.ReadAll(io.LimitReader(reader, maxErrorBodyBytes))
		if err != nil {
			return err
		}
		var e ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return &statusError{code: resp.StatusCode, msg: fmt.Sprintf("cuisines: daemon %s: %s", resp.Status, e.Error)}
		}
		return &statusError{code: resp.StatusCode, msg: fmt.Sprintf("cuisines: daemon %s on %s", resp.Status, path)}
	}
	// Read one byte past the cap so an exactly-at-cap body still
	// succeeds and an over-cap one is detected rather than silently
	// truncated into corrupt JSON.
	body, err := io.ReadAll(io.LimitReader(reader, maxResponseBytes+1))
	if err != nil {
		return err
	}
	if int64(len(body)) > maxResponseBytes {
		return fmt.Errorf("cuisines: response too large on %s (over %d bytes)", path, maxResponseBytes)
	}
	if c.Revalidate {
		if etag := resp.Header.Get("ETag"); etag != "" {
			c.revalPut(u, etag, body)
		}
	}
	return decodeBody(body, out)
}

// decodeBody delivers identity body bytes into out: verbatim for a
// *[]byte sink, JSON-decoded otherwise.
func decodeBody(body []byte, out any) error {
	if raw, ok := out.(*[]byte); ok {
		*raw = append([]byte(nil), body...)
		return nil
	}
	return json.Unmarshal(body, out)
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.get(ctx, "/healthz", nil, &h)
	return h, err
}

// CacheStats fetches the daemon's analysis-cache and per-stage
// artifact-cache counters.
func (c *Client) CacheStats(ctx context.Context) (CacheStatsResponse, error) {
	var s CacheStatsResponse
	err := c.get(ctx, "/v1/cachestats", nil, &s)
	return s, err
}

// Cluster reports the answering node's cluster membership and peer
// exchange counters (/v1/cluster). Enabled false means single-node.
func (c *Client) Cluster(ctx context.Context) (ClusterResponse, error) {
	var s ClusterResponse
	err := c.get(ctx, "/v1/cluster", nil, &s)
	return s, err
}

// Table fetches the Table I reproduction.
func (c *Client) Table(ctx context.Context) ([]TableRow, error) {
	var t TableResponse
	if err := c.get(ctx, "/v1/table", nil, &t); err != nil {
		return nil, err
	}
	return t.Rows, nil
}

// Dendrogram fetches the figure's ASCII dendrogram.
func (c *Client) Dendrogram(ctx context.Context, f Figure) (string, error) {
	var d DendrogramResponse
	if err := c.get(ctx, "/v1/dendrogram/"+url.PathEscape(f.String()), nil, &d); err != nil {
		return "", err
	}
	return d.Dendrogram, nil
}

// Newick fetches the figure's Newick serialization. The daemon sends it
// as plain text, byte-identical to Analysis.Newick.
func (c *Client) Newick(ctx context.Context, f Figure) (string, error) {
	var raw []byte
	if err := c.get(ctx, "/v1/newick/"+url.PathEscape(f.String()), nil, &raw); err != nil {
		return "", err
	}
	return string(raw), nil
}

// Clusters cuts the figure's dendrogram into k clusters.
func (c *Client) Clusters(ctx context.Context, f Figure, k int) ([][]string, error) {
	var r ClustersResponse
	extra := url.Values{"k": {strconv.Itoa(k)}}
	if err := c.get(ctx, "/v1/clusters/"+url.PathEscape(f.String()), extra, &r); err != nil {
		return nil, err
	}
	return r.Clusters, nil
}

// ClosestCuisine returns the region merging earliest with the given one,
// plus their cophenetic distance.
func (c *Client) ClosestCuisine(ctx context.Context, f Figure, region string) (string, float64, error) {
	var r ClosestResponse
	extra := url.Values{"region": {region}}
	if err := c.get(ctx, "/v1/closest/"+url.PathEscape(f.String()), extra, &r); err != nil {
		return "", 0, err
	}
	return r.Closest, r.Distance, nil
}

// Fingerprint fetches the region's k most and least authentic
// ingredients.
func (c *Client) Fingerprint(ctx context.Context, region string, k int) (Fingerprint, error) {
	var fp Fingerprint
	extra := url.Values{"k": {strconv.Itoa(k)}}
	err := c.get(ctx, "/v1/fingerprint/"+url.PathEscape(region), extra, &fp)
	return fp, err
}

// CuisinePatterns fetches every frequent pattern mined for the region.
func (c *Client) CuisinePatterns(ctx context.Context, region string) ([]PatternInfo, error) {
	var r PatternsResponse
	if err := c.get(ctx, "/v1/patterns/"+url.PathEscape(region), nil, &r); err != nil {
		return nil, err
	}
	return r.Patterns, nil
}

// AssociationRules fetches the region's association rules. Zero
// minConfidence and maxRules use the daemon defaults.
func (c *Client) AssociationRules(ctx context.Context, region string, minConfidence float64, maxRules int) ([]AssociationRule, error) {
	var r RulesResponse
	extra := url.Values{}
	if minConfidence > 0 {
		extra.Set("min_confidence", strconv.FormatFloat(minConfidence, 'g', -1, 64))
	}
	if maxRules > 0 {
		extra.Set("max", strconv.Itoa(maxRules))
	}
	if err := c.get(ctx, "/v1/rules/"+url.PathEscape(region), extra, &r); err != nil {
		return nil, err
	}
	return r.Rules, nil
}

// Pairings fetches the region's food-pairing view: the flavor ΔN_s
// statistic and the ingredient-only rules.
func (c *Client) Pairings(ctx context.Context, region string) (PairingsResponse, error) {
	var r PairingsResponse
	err := c.get(ctx, "/v1/pairings/"+url.PathEscape(region), nil, &r)
	return r, err
}

// Substitutes fetches replacement candidates for an ingredient within a
// cuisine.
func (c *Client) Substitutes(ctx context.Context, region, ingredient string, k int) ([]Substitute, error) {
	var r SubstitutesResponse
	extra := url.Values{"ingredient": {ingredient}}
	if k > 0 {
		extra.Set("k", strconv.Itoa(k))
	}
	if err := c.get(ctx, "/v1/substitutes/"+url.PathEscape(region), extra, &r); err != nil {
		return nil, err
	}
	return r.Substitutes, nil
}

// CuisineMap fetches the 2-D cuisine map.
func (c *Client) CuisineMap(ctx context.Context) (MapResponse, error) {
	var r MapResponse
	err := c.get(ctx, "/v1/map", nil, &r)
	return r, err
}

// Claims fetches the Sec. VII claim checks and geography fits.
func (c *Client) Claims(ctx context.Context) (ClaimsResponse, error) {
	var r ClaimsResponse
	err := c.get(ctx, "/v1/claims", nil, &r)
	return r, err
}

// Stats fetches the Sec. III corpus statistics plus the canonical
// mining backend the daemon used for this client's options.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var st StatsResponse
	err := c.get(ctx, "/v1/stats", nil, &st)
	return st, err
}
