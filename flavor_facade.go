package cuisines

import (
	"fmt"

	"cuisines/internal/flavor"
)

// FoodPairing is one cuisine's flavor-compound pairing statistic (Ahn et
// al.'s ΔN_s, computed on the synthetic compound table — see
// internal/flavor). Positive means the cuisine combines compound-sharing
// ingredients (the Western pattern); negative means it pairs chemically
// contrasting ones (the pattern Jain et al. report for Indian cuisine).
type FoodPairing struct {
	Region      string  `json:"region"`
	CoOccurring float64 `json:"co_occurring"`
	Random      float64 `json:"random"`
	DeltaNs     float64 `json:"delta_ns"`
}

// FoodPairings computes the pairing statistic for every cuisine. The
// underlying flavor analysis scans the whole corpus, so it is computed
// once per Analysis and memoized (the daemon serves it per request).
func (a *Analysis) FoodPairings() []FoodPairing {
	a.pairingsOnce.Do(func() {
		rows := flavor.AnalyzeDB(a.db, 1)
		a.pairings = make([]FoodPairing, 0, len(rows))
		for _, r := range rows {
			a.pairings = append(a.pairings, FoodPairing{
				Region:      r.Region,
				CoOccurring: r.CoOccurring,
				Random:      r.Random,
				DeltaNs:     r.DeltaNs,
			})
		}
	})
	return a.pairings
}

// FoodPairingFor returns one cuisine's pairing statistic.
func (a *Analysis) FoodPairingFor(region string) (FoodPairing, error) {
	for _, r := range a.FoodPairings() {
		if r.Region == region {
			return r, nil
		}
	}
	return FoodPairing{}, fmt.Errorf("cuisines: unknown region %q", region)
}
