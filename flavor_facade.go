package cuisines

import (
	"fmt"

	"cuisines/internal/flavor"
)

// FoodPairing is one cuisine's flavor-compound pairing statistic (Ahn et
// al.'s ΔN_s, computed on the synthetic compound table — see
// internal/flavor). Positive means the cuisine combines compound-sharing
// ingredients (the Western pattern); negative means it pairs chemically
// contrasting ones (the pattern Jain et al. report for Indian cuisine).
type FoodPairing struct {
	Region      string
	CoOccurring float64
	Random      float64
	DeltaNs     float64
}

// FoodPairings computes the pairing statistic for every cuisine.
func (a *Analysis) FoodPairings() []FoodPairing {
	rows := flavor.AnalyzeDB(a.db, 1)
	out := make([]FoodPairing, 0, len(rows))
	for _, r := range rows {
		out = append(out, FoodPairing{
			Region:      r.Region,
			CoOccurring: r.CoOccurring,
			Random:      r.Random,
			DeltaNs:     r.DeltaNs,
		})
	}
	return out
}

// FoodPairingFor returns one cuisine's pairing statistic.
func (a *Analysis) FoodPairingFor(region string) (FoodPairing, error) {
	for _, r := range a.FoodPairings() {
		if r.Region == region {
			return r, nil
		}
	}
	return FoodPairing{}, fmt.Errorf("cuisines: unknown region %q", region)
}
