package cuisines

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md §4 for the experiment index) and adds the A1-A4
// ablations. Domain results are attached as custom benchmark metrics so
// `go test -bench . -benchmem` doubles as the experiment runner:
//
//	E1 BenchmarkTable1PatternMining    Table I
//	E2 BenchmarkFig1ElbowKMeans        Fig. 1
//	E3 BenchmarkFig2EuclideanTree      Fig. 2
//	E4 BenchmarkFig3CosineTree         Fig. 3
//	E5 BenchmarkFig4JaccardTree        Fig. 4
//	E6 BenchmarkFig5AuthenticityTree   Fig. 5
//	E7 BenchmarkFig6GeographicTree     Fig. 6
//	E8 BenchmarkSec7TreeValidation     Sec. VII
//	E9 BenchmarkCorpusGeneration       Sec. III corpus
//	A1 BenchmarkMinerAblation          FP-Growth vs Apriori vs Eclat
//	A2 BenchmarkLinkageAblation        linkage methods vs geography fit
//	A3 BenchmarkFeatureAblation        binary vs support vs TF-IDF
//	A4 BenchmarkFIHCAblation           FIHC vs pdist+linkage
//	P1-P4 ...Parallel                  worker-count sweeps (DESIGN.md §3)
//	P5 BenchmarkStagedReuse            cold vs staged-warm vs disk load (§8)
//	P6 BenchmarkMinerBackends          backend × support × scale (§9)
//
// Benches run at a tenth of the full corpus so an iteration stays in the
// tens-of-milliseconds range; EXPERIMENTS.md records the full-scale
// numbers produced by the cmd tools.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"cuisines/internal/apriori"
	"cuisines/internal/authenticity"
	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/distance"
	"cuisines/internal/eclat"
	"cuisines/internal/encode"
	"cuisines/internal/fihc"
	"cuisines/internal/fpgrowth"
	"cuisines/internal/hac"
	"cuisines/internal/itemset"
	"cuisines/internal/matrix"
	"cuisines/internal/miner"
	"cuisines/internal/recipedb"
	"cuisines/internal/rng"
	"cuisines/internal/treecmp"
)

const benchScale = 0.1

type benchFixture struct {
	db      *recipedb.DB
	mined   []core.RegionPatterns
	regions []string
	pm      *encode.PatternMatrix
	geo     *core.CuisineTree
}

var (
	fixOnce sync.Once
	fix     *benchFixture
	fixErr  error
)

func getFixture(b *testing.B) *benchFixture {
	b.Helper()
	fixOnce.Do(func() {
		db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: benchScale})
		if err != nil {
			fixErr = err
			return
		}
		mined, err := core.MineRegions(db, core.DefaultMinSupport)
		if err != nil {
			fixErr = err
			return
		}
		regions, sets := core.PatternSets(mined)
		pm, err := encode.BuildPatternMatrix(regions, core.AnchoredPatterns(sets), encode.Binary)
		if err != nil {
			fixErr = err
			return
		}
		geoTree, err := core.GeographicTree(regions, core.DefaultLinkage)
		if err != nil {
			fixErr = err
			return
		}
		fix = &benchFixture{db: db, mined: mined, regions: regions, pm: pm, geo: geoTree}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

// E9 — Sec. III corpus generation.
func BenchmarkCorpusGeneration(b *testing.B) {
	var recipes int
	for i := 0; i < b.N; i++ {
		db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		recipes = db.Len()
	}
	b.ReportMetric(float64(recipes), "recipes")
}

// E1 — Table I: per-cuisine FP-Growth plus significance ranking.
func BenchmarkTable1PatternMining(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		t1, err := core.BuildTable1(f.db, core.DefaultMinSupport, 3)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t1.Rows)
	}
	b.ReportMetric(float64(rows), "cuisines")
}

// E2 — Fig. 1: K-means elbow curve on the pattern features.
func BenchmarkFig1ElbowKMeans(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var strength float64
	for i := 0; i < b.N; i++ {
		curve, err := core.ElbowAnalysis(f.pm, 15, 1)
		if err != nil {
			b.Fatal(err)
		}
		strength = curve.ElbowStrength
	}
	b.ReportMetric(strength, "elbow-strength")
}

func benchPatternTree(b *testing.B, metric distance.Metric, method hac.Method) {
	f := getFixture(b)
	b.ResetTimer()
	var gamma float64
	for i := 0; i < b.N; i++ {
		tree, err := core.PatternTree(f.pm, metric, method)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := treecmp.Compare(tree.Tree, f.geo.Tree, nil)
		if err != nil {
			b.Fatal(err)
		}
		gamma = rep.BakersGamma
	}
	b.ReportMetric(gamma, "geo-gamma")
}

// E3 — Fig. 2: Euclidean pattern tree (Ward linkage).
func BenchmarkFig2EuclideanTree(b *testing.B) {
	benchPatternTree(b, distance.Euclidean, core.EuclideanLinkage)
}

// E4 — Fig. 3: cosine pattern tree.
func BenchmarkFig3CosineTree(b *testing.B) {
	benchPatternTree(b, distance.Cosine, core.DefaultLinkage)
}

// E5 — Fig. 4: Jaccard pattern tree.
func BenchmarkFig4JaccardTree(b *testing.B) {
	benchPatternTree(b, distance.Jaccard, core.DefaultLinkage)
}

// E6 — Fig. 5: authenticity tree (includes building the prevalence
// matrix from the full database).
func BenchmarkFig5AuthenticityTree(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var gamma float64
	for i := 0; i < b.N; i++ {
		am, err := authenticity.Build(f.db, authenticity.Options{MinRegionPrevalence: 0.03})
		if err != nil {
			b.Fatal(err)
		}
		tree, err := core.AuthenticityTree(am, distance.Euclidean, core.DefaultLinkage)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := treecmp.Compare(tree.Tree, f.geo.Tree, nil)
		if err != nil {
			b.Fatal(err)
		}
		gamma = rep.BakersGamma
	}
	b.ReportMetric(gamma, "geo-gamma")
}

// E7 — Fig. 6: geographic tree.
func BenchmarkFig6GeographicTree(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GeographicTree(f.regions, core.DefaultLinkage); err != nil {
			b.Fatal(err)
		}
	}
}

// E8 — Sec. VII: the full figure build plus claim validation.
func BenchmarkSec7TreeValidation(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var holds int
	for i := 0; i < b.N; i++ {
		figs, err := core.BuildFigures(f.db, core.DefaultMinSupport, core.DefaultLinkage)
		if err != nil {
			b.Fatal(err)
		}
		v, err := core.Validate(figs)
		if err != nil {
			b.Fatal(err)
		}
		holds = 0
		for _, c := range v.Claims {
			if c.Holds {
				holds++
			}
		}
	}
	b.ReportMetric(float64(holds), "claims-holding")
}

// benchWorkerCounts is the worker sweep for the parallel-layer benches:
// the sequential baseline, the ISSUE's 4-worker target, and every core.
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	return counts
}

// P1 — parallel pdist: condensed distances over a corpus-shaped dense
// matrix (hundreds of observations, thousands of features) per worker
// count. The workers=1 case is the sequential baseline the speedup
// criterion is measured against.
func BenchmarkPdistParallel(b *testing.B) {
	r := rng.New(42)
	m := matrix.NewDense(256, 2048)
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = r.Float64()
		}
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				d := distance.PdistWorkers(m, distance.Euclidean, w)
				sink = d.Values()[0]
			}
			b.ReportMetric(sink, "d0")
		})
	}
}

// P2 — parallel per-cuisine mining: the 26 FP-Growth runs behind Table I
// per worker count, on the shared bench-scale corpus.
func BenchmarkMineRegionsParallel(b *testing.B) {
	f := getFixture(b)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var patterns int
			for i := 0; i < b.N; i++ {
				mined, err := core.MineRegionsWorkers(f.db, core.DefaultMinSupport, w)
				if err != nil {
					b.Fatal(err)
				}
				patterns = 0
				for _, rp := range mined {
					patterns += len(rp.Patterns)
				}
			}
			b.ReportMetric(float64(patterns), "patterns")
		})
	}
}

// P3 — parallel corpus generation: the per-region fan-out of Sec. III
// generation per worker count.
func BenchmarkCorpusGenerationParallel(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var recipes int
			for i := 0; i < b.N; i++ {
				db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: benchScale, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				recipes = db.Len()
			}
			b.ReportMetric(float64(recipes), "recipes")
		})
	}
}

// P4 — the whole figure pipeline per worker count (the end-to-end number
// the facade's Options.Workers controls).
func BenchmarkBuildFiguresParallel(b *testing.B) {
	f := getFixture(b)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildFiguresWorkers(f.db, core.DefaultMinSupport, core.DefaultLinkage, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// P5 — staged artifact reuse (DESIGN.md §8): the cost of an analysis
// against an engine that already holds a sibling analysis's stage
// artifacts, at the paper's full scale. "cold" is the whole graph from
// nothing; "warm-linkage-only" changes only the linkage against a warm
// store (corpus, mining, matrices and pdist all reused — the staged
// refactor's headline win; the acceptance bar is >= 5x over cold);
// "warm-support-only" re-mines but reuses the corpus and the
// corpus-keyed features; "disk-load" rebuilds every stage from the
// persistent tier, the restarted-daemon path. The ratio sub-benchmark
// reports cold/warm directly as a metric.
func BenchmarkStagedReuse(b *testing.B) {
	base := Options{Scale: 1, Linkage: "average"}
	changed := map[string]Options{
		"warm-linkage-only": {Scale: 1, Linkage: "ward"},
		"warm-support-only": {Scale: 1, Linkage: "average", MinSupport: 0.25},
	}
	run := func(b *testing.B, e *Engine, opts Options) {
		b.Helper()
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, NewEngine(EngineConfig{}), base)
		}
	})
	for name, opts := range changed {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := NewEngine(EngineConfig{})
				run(b, e, base)
				b.StartTimer()
				run(b, e, opts)
			}
		})
	}
	b.Run("disk-load", func(b *testing.B) {
		dir := b.TempDir()
		run(b, NewEngine(EngineConfig{CacheDir: dir}), base)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh engine per iteration is a simulated restart: every
			// stage loads from the persistent tier.
			run(b, NewEngine(EngineConfig{CacheDir: dir}), base)
		}
	})
	b.Run("cold-vs-warm-ratio", func(b *testing.B) {
		var cold, warm time.Duration
		for i := 0; i < b.N; i++ {
			e := NewEngine(EngineConfig{})
			t0 := time.Now()
			run(b, e, base)
			cold += time.Since(t0)
			t1 := time.Now()
			run(b, e, changed["warm-linkage-only"])
			warm += time.Since(t1)
		}
		if warm > 0 {
			b.ReportMetric(float64(cold)/float64(warm), "cold/warm")
		}
	})
}

// P6 — mining backend selection (DESIGN.md §9): every registered
// backend over the whole corpus fan-out, per support threshold and
// corpus scale, sequential (workers=1) so the numbers compare the
// algorithms rather than the scheduler. All backends share the same
// per-region bitset indexes and emit byte-identical patterns; this
// sweep is what justifies miner.Default — the README's "Choosing a
// mining backend" table is produced from it.
func BenchmarkMinerBackends(b *testing.B) {
	dbs := map[float64]*recipedb.DB{}
	dbFor := func(b *testing.B, scale float64) *recipedb.DB {
		b.Helper()
		if db, ok := dbs[scale]; ok {
			return db
		}
		db, err := corpus.Generate(corpus.Config{Seed: corpus.DefaultSeed, Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		dbs[scale] = db
		return db
	}
	for _, scale := range []float64{benchScale, 1} {
		for _, m := range miner.All() {
			for _, sup := range []float64{0.35, 0.2} {
				name := fmt.Sprintf("scale=%g/%s/sup=%s", scale, m.Name(), formatSup(sup))
				b.Run(name, func(b *testing.B) {
					if scale > benchScale && testing.Short() {
						// The full-corpus cases exist for the README's
						// default-selection table; the CI smoke run
						// (-short) keeps to bench scale like every other
						// bench in this file.
						b.Skip("full-scale sweep skipped in -short mode")
					}
					db := dbFor(b, scale)
					b.ResetTimer()
					var patterns int
					for i := 0; i < b.N; i++ {
						mined, err := core.MineRegionsWith(db, sup, 1, m)
						if err != nil {
							b.Fatal(err)
						}
						patterns = 0
						for _, rp := range mined {
							patterns += len(rp.Patterns)
						}
					}
					b.ReportMetric(float64(patterns), "patterns")
				})
			}
		}
	}
}

// A1 — miner ablation: the three miners on the same region at several
// thresholds. Over the shared bitset index the historical ranking is
// inverted: Eclat's bitmap intersections are fastest and Apriori's
// bitmap-counted candidates stay nearly flat as support drops, while
// FP-Growth pays tree-construction overhead that grows with the
// frequent vocabulary (see the P6 table in README.md — the basis for
// miner.Default).
func BenchmarkMinerAblation(b *testing.B) {
	f := getFixture(b)
	ds := f.db.RegionDataset("Italian")
	miners := []struct {
		name string
		mine func(*itemset.Dataset, float64) []itemset.Pattern
	}{
		{"FPGrowth", fpgrowth.Mine},
		{"Apriori", apriori.Mine},
		{"Eclat", eclat.Mine},
	}
	for _, m := range miners {
		for _, sup := range []float64{0.3, 0.2, 0.15} {
			b.Run(m.name+"/sup="+formatSup(sup), func(b *testing.B) {
				var n int
				for i := 0; i < b.N; i++ {
					n = len(m.mine(ds, sup))
				}
				b.ReportMetric(float64(n), "patterns")
			})
		}
	}
}

func formatSup(s float64) string {
	return fmt.Sprintf("%.2f", s)
}

// A2 — linkage ablation: geography fit per linkage method on the
// Euclidean pattern distances.
func BenchmarkLinkageAblation(b *testing.B) {
	f := getFixture(b)
	d := distance.Pdist(f.pm.X, distance.Euclidean)
	for _, method := range []hac.Method{hac.Single, hac.Complete, hac.Average, hac.Weighted, hac.Ward} {
		b.Run(method.String(), func(b *testing.B) {
			var gamma float64
			for i := 0; i < b.N; i++ {
				lk, err := hac.Cluster(d, method)
				if err != nil {
					b.Fatal(err)
				}
				tree, err := hac.BuildTree(lk, f.regions)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := treecmp.Compare(tree, f.geo.Tree, nil)
				if err != nil {
					b.Fatal(err)
				}
				gamma = rep.BakersGamma
			}
			b.ReportMetric(gamma, "geo-gamma")
		})
	}
}

// A3 — feature-weighting ablation: binary (paper) vs support-weighted vs
// TF-IDF pattern features under the cosine tree.
func BenchmarkFeatureAblation(b *testing.B) {
	f := getFixture(b)
	_, sets := core.PatternSets(f.mined)
	anchored := core.AnchoredPatterns(sets)
	for _, w := range []encode.Weighting{encode.Binary, encode.SupportWeighted, encode.TFIDF} {
		b.Run(w.String(), func(b *testing.B) {
			var gamma float64
			for i := 0; i < b.N; i++ {
				pm, err := encode.BuildPatternMatrix(f.regions, anchored, w)
				if err != nil {
					b.Fatal(err)
				}
				tree, err := core.PatternTree(pm, distance.Cosine, core.DefaultLinkage)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := treecmp.Compare(tree.Tree, f.geo.Tree, nil)
				if err != nil {
					b.Fatal(err)
				}
				gamma = rep.BakersGamma
			}
			b.ReportMetric(gamma, "geo-gamma")
		})
	}
}

// A4 — FIHC ablation: the paper's named alternative clustering
// (frequent-itemset-based hierarchical clustering of cuisines-as-
// documents) against the pdist+linkage pipeline, compared by partition
// agreement with the geographic tree.
func BenchmarkFIHCAblation(b *testing.B) {
	f := getFixture(b)
	docs := make([]fihc.Document, len(f.regions))
	for i, region := range f.regions {
		var tokens []string
		for j, v := range f.pm.X.Row(i) {
			if v != 0 {
				tokens = append(tokens, f.pm.Vocabulary[j])
			}
		}
		docs[i] = fihc.Document{ID: region, Tokens: tokens}
	}
	b.ResetTimer()
	var clusters int
	for i := 0; i < b.N; i++ {
		tree, err := fihc.Run(docs, fihc.Options{MinSupport: 0.35})
		if err != nil {
			b.Fatal(err)
		}
		clusters = tree.NumClusters()
	}
	b.ReportMetric(float64(clusters), "clusters")
}
