package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"cuisines/internal/hac"
	"cuisines/internal/miner"
	"cuisines/internal/pipeline"
)

// runDoctor performs the daemon's startup self-checks and writes a
// human-readable report to out: flag values parse, the cache directory
// (if any) is writable, and every artifact file in it carries a codec
// version the current binary understands. A non-nil error means the
// daemon could not serve correctly with this configuration; orphaned
// artifacts (stale codec versions) are only reported — they are ignored
// and recomputed at runtime, never misread.
func runDoctor(out io.Writer, cacheDir, minerName, linkage string) error {
	fmt.Fprintf(out, "cuisined doctor\n")

	if _, err := miner.Parse(minerName); err != nil {
		return fmt.Errorf("miner flag: %w", err)
	}
	fmt.Fprintf(out, "  miner %q: ok\n", minerName)
	if _, err := hac.ParseMethod(linkage); err != nil {
		return fmt.Errorf("linkage flag: %w", err)
	}
	fmt.Fprintf(out, "  linkage %q: ok\n", linkage)

	versions := pipeline.CodecVersions()
	kinds := make([]string, 0, len(versions))
	for k := range versions {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(out, "  codec versions:")
	for _, k := range kinds {
		fmt.Fprintf(out, " %s=v%d", k, versions[k])
	}
	fmt.Fprintf(out, "\n")

	if cacheDir == "" {
		fmt.Fprintf(out, "  cache-dir: not configured (memory-only artifact store)\n")
		fmt.Fprintf(out, "ok\n")
		return nil
	}

	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return fmt.Errorf("cache-dir %s: %w", cacheDir, err)
	}
	probe, err := os.CreateTemp(cacheDir, ".doctor-probe-*")
	if err != nil {
		return fmt.Errorf("cache-dir %s not writable: %w", cacheDir, err)
	}
	probeName := probe.Name()
	_, werr := probe.WriteString("probe")
	cerr := probe.Close()
	_ = os.Remove(probeName)
	if werr != nil || cerr != nil {
		return fmt.Errorf("cache-dir %s not writable: %w", cacheDir, errors.Join(werr, cerr))
	}
	fmt.Fprintf(out, "  cache-dir %s: writable\n", cacheDir)

	current, orphaned, foreign, err := inventoryArtifacts(cacheDir, versions)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  artifacts: %d current, %d orphaned (stale codec version; will be recomputed), %d unrecognized\n",
		current, orphaned, foreign)
	fmt.Fprintf(out, "ok\n")
	return nil
}

// artifactName matches the store's on-disk naming, <kind>-v<N>-<key>.art
// (see internal/artifact). Kinds are sanitized to this alphabet before
// writing, so the pattern is exact.
var artifactName = regexp.MustCompile(`^([A-Za-z0-9_.-]+?)-v(\d+)-[0-9a-f]+\.art$`)

// inventoryArtifacts classifies every .art file in dir against the
// current codec versions: current (kind known, version matches),
// orphaned (kind known, version differs — ignored and recomputed at
// runtime), or unrecognized (unknown kind or unparseable name).
func inventoryArtifacts(dir string, versions map[string]int) (current, orphaned, foreign int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("cache-dir %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".art" {
			continue
		}
		m := artifactName.FindStringSubmatch(e.Name())
		if m == nil {
			foreign++
			continue
		}
		want, ok := versions[m[1]]
		if !ok {
			foreign++
			continue
		}
		got, _ := strconv.Atoi(m[2])
		if got == want {
			current++
		} else {
			orphaned++
		}
	}
	return current, orphaned, foreign, nil
}
