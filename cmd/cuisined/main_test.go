package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cuisines/internal/pipeline"
)

// TestSlowlorisConnectionDropped is the regression test for the bare
// http.Server the daemon used to run: a client that opens a connection
// and trickles an eternally unfinished header block must be dropped by
// ReadHeaderTimeout, not parked forever.
func TestSlowlorisConnectionDropped(t *testing.T) {
	srv := newHTTPServer("", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), 100*time.Millisecond, time.Second, time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// An incomplete header block: the final blank line never arrives.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: stalled\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 512)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // server closed the connection
		}
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stalled connection survived %v; ReadHeaderTimeout not enforced", elapsed)
	}
}

func TestDoctorInventoriesArtifacts(t *testing.T) {
	dir := t.TempDir()
	versions := pipeline.CodecVersions()
	current := fmt.Sprintf("mine-v%d-0123456789abcdef0123456789abcdef.art", versions["mine"])
	orphan := fmt.Sprintf("mine-v%d-0123456789abcdef0123456789abcdef.art", versions["mine"]+7)
	for _, name := range []string{current, orphan, "not-an-artifact.art"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var out strings.Builder
	if err := runDoctor(&out, dir, "apriori", "average"); err != nil {
		t.Fatalf("doctor failed: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"1 current", "1 orphaned", "1 unrecognized",
		"writable", fmt.Sprintf("mine=v%d", versions["mine"]), "ok\n",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("doctor report missing %q:\n%s", want, report)
		}
	}
}

func TestDoctorRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := runDoctor(&out, "", "nosuchminer", "average"); err == nil {
		t.Fatal("doctor accepted an unknown miner")
	}
	out.Reset()
	if err := runDoctor(&out, "", "apriori", "nosuchlinkage"); err == nil {
		t.Fatal("doctor accepted an unknown linkage")
	}
}

func TestDoctorWithoutCacheDir(t *testing.T) {
	var out strings.Builder
	if err := runDoctor(&out, "", "apriori", "average"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "memory-only") {
		t.Errorf("doctor report should note the memory-only store:\n%s", out.String())
	}
}
