// Command cuisined is the analysis daemon: it computes the paper's full
// evaluation once per distinct option set, caches it, and answers
// queries — Table I, dendrograms, Newick exports, cluster cuts,
// fingerprints, patterns, association rules, food pairings, ingredient
// substitutions, the cuisine map, the Sec. VII claims and the corpus
// statistics — as a JSON HTTP API.
//
// Usage:
//
//	cuisined -addr :8372 -preload            # warm the default analysis at boot
//	cuisined -scale 0.25 -workers 4          # quarter-scale default, bounded pool
//	cuisined -cache-dir /var/cache/cuisined  # persist stage artifacts; restarts come back warm
//
//	curl localhost:8372/healthz
//	curl localhost:8372/v1/table
//	curl localhost:8372/v1/newick/fig5-authenticity
//	curl 'localhost:8372/v1/closest/fig6-geographic?region=UK'
//	curl localhost:8372/v1/cachestats
//
// Requests may select a different analysis with seed=, scale=, support=
// and linkage= query parameters (and a different mining backend with
// miner=, which changes speed but never output); each distinct
// combination is computed once and kept in an LRU cache. Underneath
// it, the staged pipeline caches per-stage artifacts, so analyses
// that share a corpus and mining run (different linkage, different
// figure) share that work; with -cache-dir the artifacts persist
// across restarts. The daemon
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight requests
// first and logging its cache counters.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cuisines"
	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/miner"
	"cuisines/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cuisined: ")
	var (
		addr      = flag.String("addr", ":8372", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size per pipeline run (0 = all cores, 1 = sequential; output is identical)")
		cacheSize = flag.Int("cache-size", server.DefaultCacheSize, "max distinct analyses kept (LRU)")
		cacheDir  = flag.String("cache-dir", "", "persist pipeline stage artifacts here so restarts come back warm (empty = memory only)")
		cacheMax  = flag.Int64("cache-max-bytes", 0, "cache-dir size cap; least-recently-used artifacts are deleted above it (0 = 4 GiB default)")
		preload   = flag.Bool("preload", false, "warm the default analysis at boot")
		scale     = flag.Float64("scale", 1.0, "default corpus scale")
		seed      = flag.Uint64("seed", corpus.DefaultSeed, "default corpus generator seed")
		support   = flag.Float64("support", core.DefaultMinSupport, "default pattern-mining support threshold")
		linkage   = flag.String("linkage", core.DefaultLinkage.String(), "default linkage method")
		minerName = flag.String("miner", miner.Default.Name(), "frequent-itemset mining backend (apriori|eclat|fpgrowth; output is identical, only speed differs)")
	)
	flag.Parse()

	if _, err := miner.Parse(*minerName); err != nil {
		log.Fatal(err)
	}

	if *cacheDir != "" {
		// Fail fast on a misconfigured flag; individual artifact files
		// are best-effort, but an uncreatable directory is operator error.
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			log.Fatalf("cache-dir: %v", err)
		}
		log.Printf("persisting stage artifacts in %s", *cacheDir)
	}
	engine := cuisines.NewEngine(cuisines.EngineConfig{CacheDir: *cacheDir, MaxCacheBytes: *cacheMax})

	srv := server.New(server.Config{
		Base: cuisines.Options{
			Seed:       *seed,
			Scale:      *scale,
			MinSupport: *support,
			Linkage:    *linkage,
			Workers:    *workers,
			Miner:      *minerName,
		},
		CacheSize: *cacheSize,
		Engine:    engine,
	})

	if *preload {
		// Warm concurrently so /healthz answers immediately; the first
		// /v1 request joins the in-flight run instead of starting another.
		go func() {
			start := time.Now()
			if err := srv.Warm(); err != nil {
				log.Printf("preload failed: %v", err)
				return
			}
			log.Printf("preload done in %v", time.Since(start).Round(time.Millisecond))
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		st := srv.CacheStats()
		log.Printf("analysis cache: size=%d/%d hits=%d misses=%d evictions=%d inflight_joins=%d",
			st.Analyses.Size, st.Analyses.Capacity, st.Analyses.Hits, st.Analyses.Misses,
			st.Analyses.Evictions, st.Analyses.InFlightJoins)
		for _, line := range engine.CacheSummary() {
			log.Printf("stage %s", line)
		}
		log.Printf("shut down cleanly")
	}
}
