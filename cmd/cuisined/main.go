// Command cuisined is the analysis daemon: it computes the paper's full
// evaluation once per distinct option set, caches it, and answers
// queries — Table I, dendrograms, Newick exports, cluster cuts,
// fingerprints, patterns, association rules, food pairings, ingredient
// substitutions, the cuisine map, the Sec. VII claims and the corpus
// statistics — as a JSON HTTP API.
//
// Usage:
//
//	cuisined -addr :8372 -preload            # warm the default analysis at boot
//	cuisined -scale 0.25 -workers 4          # quarter-scale default, bounded pool
//	cuisined -cache-dir /var/cache/cuisined  # persist stage artifacts; restarts come back warm
//	cuisined -doctor -cache-dir /var/cache/cuisined  # self-check, then exit
//
//	cuisined -self http://10.0.0.1:8372 \
//	    -peers http://10.0.0.2:8372,http://10.0.0.3:8372  # cluster member
//
//	curl localhost:8372/healthz
//	curl localhost:8372/v1/table
//	curl localhost:8372/v1/newick/fig5-authenticity
//	curl 'localhost:8372/v1/closest/fig6-geographic?region=UK'
//	curl localhost:8372/v1/cachestats
//	curl localhost:8372/metrics
//
// Requests may select a different analysis with seed=, scale=, support=
// and linkage= query parameters (and a different mining backend with
// miner=, which changes speed but never output); each distinct
// combination is computed once and kept in an LRU cache. Underneath
// it, the staged pipeline caches per-stage artifacts, so analyses
// that share a corpus and mining run (different linkage, different
// figure) share that work; with -cache-dir the artifacts persist
// across restarts.
//
// Clustering: with -self and -peers every node joins a consistent-hash
// ring (see DESIGN.md §13). Requests are proxied to the analysis key's
// live owner (single hop), and on a local artifact miss a node asks
// its peers for the bytes before recomputing — one node's cold miss is
// the fleet's warm hit. /v1/cluster reports the node's fleet view.
//
// Operability: every request runs under a context — a client that
// disconnects (or outlives -request-timeout) stops its pipeline run at
// the next stage boundary unless other requests still wait on it.
// Cache misses pass a bounded admission queue (-max-runs / -max-queue);
// past its depth the daemon answers 429 + Retry-After instead of
// queueing unboundedly. /metrics exposes Prometheus-text counters. The
// daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests first and logging its cache counters.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cuisines"
	"cuisines/internal/cluster"
	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/miner"
	"cuisines/internal/pipeline"
	"cuisines/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cuisined: ")
	var (
		addr      = flag.String("addr", ":8372", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size per pipeline run (0 = all cores, 1 = sequential; output is identical)")
		cacheSize = flag.Int("cache-size", server.DefaultCacheSize, "max distinct analyses kept (LRU)")
		cacheDir  = flag.String("cache-dir", "", "persist pipeline stage artifacts here so restarts come back warm (empty = memory only)")
		cacheMax  = flag.Int64("cache-max-bytes", 0, "cache-dir size cap; least-recently-used artifacts are deleted above it (0 = 4 GiB default)")
		renderMax = flag.Int64("render-cache-bytes", 0, "rendered-response cache byte budget (bodies + gzip variants, LRU; 0 = 32 MiB default)")
		preload   = flag.Bool("preload", false, "warm the default analysis at boot")
		scale     = flag.Float64("scale", 1.0, "default corpus scale")
		seed      = flag.Uint64("seed", corpus.DefaultSeed, "default corpus generator seed")
		support   = flag.Float64("support", core.DefaultMinSupport, "default pattern-mining support threshold")
		linkage   = flag.String("linkage", core.DefaultLinkage.String(), "default linkage method")
		minerName = flag.String("miner", miner.Default.Name(), "frequent-itemset mining backend (apriori|eclat|fpgrowth; output is identical, only speed differs)")

		reqTimeout = flag.Duration("request-timeout", 0, "per-request wall-clock cap; expired requests answer 503 (0 = none)")
		maxRuns    = flag.Int("max-runs", 0, "concurrent pipeline runs admitted on cache misses (0 = all cores, -1 = unbounded)")
		maxQueue   = flag.Int("max-queue", 0, "cache misses allowed to wait for a run slot before 429 (0 = default, -1 = none)")
		retryAfter = flag.Duration("retry-after", server.DefaultRetryAfter, "Retry-After hint sent with 429 responses")
		accessLogs = flag.Bool("access-log", true, "emit one structured JSON line per request to stdout")

		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "max time to read a request's headers; drops slowloris connections")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "max time to read an entire request including its body")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")

		selfURL      = flag.String("self", "", "this node's base URL as peers reach it (e.g. http://10.0.0.1:8372); required with -peers")
		peersList    = flag.String("peers", "", "comma-separated base URLs of the other cluster nodes; enables peer artifact exchange and consistent-hash routing")
		replicas     = flag.Int("replicas", 0, "ring owners per analysis key (0 = default 2); higher survives more node deaths warm")
		peerInterval = flag.Duration("peer-interval", cluster.DefaultProbeInterval, "peer health probe period")
		peerTimeout  = flag.Duration("peer-timeout", cluster.DefaultProbeTimeout, "per-probe timeout; failing peers back off exponentially")
		fetchTimeout = flag.Duration("peer-fetch-timeout", cluster.DefaultFetchTimeout, "per-artifact peer fetch timeout")

		doctor = flag.Bool("doctor", false, "run startup self-checks (cache dir writable, artifact codec versions), then exit")
	)
	flag.Parse()

	if *doctor {
		if err := runDoctor(os.Stdout, *cacheDir, *minerName, *linkage); err != nil {
			log.Fatalf("doctor: %v", err)
		}
		return
	}

	if _, err := miner.Parse(*minerName); err != nil {
		log.Fatal(err)
	}

	if *cacheDir != "" {
		// Fail fast on a misconfigured flag; individual artifact files
		// are best-effort, but an uncreatable directory is operator error.
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			log.Fatalf("cache-dir: %v", err)
		}
		log.Printf("persisting stage artifacts in %s", *cacheDir)
	}
	engine := cuisines.NewEngine(cuisines.EngineConfig{CacheDir: *cacheDir, MaxCacheBytes: *cacheMax})

	var node *cluster.Node
	if *peersList != "" {
		if *selfURL == "" {
			log.Fatal("-peers requires -self (this node's own base URL as peers reach it)")
		}
		var peers []string
		for _, p := range strings.Split(*peersList, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		var err error
		node, err = cluster.New(cluster.Config{
			Self:          *selfURL,
			Peers:         peers,
			Replicas:      *replicas,
			Store:         engine.ArtifactStore(),
			Codecs:        pipeline.Codecs(),
			Now:           time.Now,
			ProbeInterval: *peerInterval,
			ProbeTimeout:  *peerTimeout,
			FetchTimeout:  *fetchTimeout,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster: self=%s peers=%d replicas=%d", node.Self(), len(peers), node.Ring().Replicas())
	}

	var accessLog *log.Logger
	if *accessLogs {
		accessLog = log.New(os.Stdout, "", 0)
	}
	srv := server.New(server.Config{
		Base: cuisines.Options{
			Seed:       *seed,
			Scale:      *scale,
			MinSupport: *support,
			Linkage:    *linkage,
			Workers:    *workers,
			Miner:      *minerName,
		},
		CacheSize:         *cacheSize,
		RenderCacheBytes:  *renderMax,
		Engine:            engine,
		MaxConcurrentRuns: *maxRuns,
		MaxQueuedRuns:     *maxQueue,
		RequestTimeout:    *reqTimeout,
		RetryAfter:        *retryAfter,
		AccessLog:         accessLog,
		Cluster:           node,
	})

	// The signal context exists before any background work starts so
	// both the preload below and graceful shutdown hang off it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if node != nil {
		// The blocking health loop lives here: internal/cluster spawns no
		// goroutines of its own (the nakedgo lint contract).
		go node.Run(ctx)
	}

	preloadDone := make(chan struct{})
	if *preload {
		// Warm concurrently so /healthz answers immediately; the first
		// /v1 request joins the in-flight run instead of starting
		// another. The goroutine is tied to the signal context (shutdown
		// aborts an unfinished warm) and awaited before the final
		// counter log, so that log reflects its cache traffic.
		go func() {
			defer close(preloadDone)
			start := time.Now()
			err := srv.Warm(ctx)
			switch {
			case err == nil:
				log.Printf("preload done in %v", time.Since(start).Round(time.Millisecond))
			case errors.Is(err, context.Canceled):
				log.Printf("preload aborted by shutdown")
			default:
				log.Printf("preload failed: %v", err)
			}
		}()
	} else {
		close(preloadDone)
	}

	hs := newHTTPServer(*addr, srv, *readHeaderTimeout, *readTimeout, *idleTimeout)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		<-preloadDone
		st := srv.CacheStats()
		log.Printf("analysis cache: size=%d/%d hits=%d misses=%d evictions=%d inflight_joins=%d",
			st.Analyses.Size, st.Analyses.Capacity, st.Analyses.Hits, st.Analyses.Misses,
			st.Analyses.Evictions, st.Analyses.InFlightJoins)
		log.Printf("render cache: entries=%d bytes=%d/%d hits=%d misses=%d evictions=%d gzip=%d not_modified=%d",
			st.Renders.Entries, st.Renders.Bytes, st.Renders.CapacityBytes, st.Renders.Hits,
			st.Renders.Misses, st.Renders.Evictions, st.Renders.GzipVariants, st.Renders.NotModified)
		for _, line := range engine.CacheSummary() {
			log.Printf("stage %s", line)
		}
		log.Printf("shut down cleanly")
	}
}

// newHTTPServer builds the daemon's http.Server with its connection
// timeouts. ReadHeaderTimeout is the slowloris defense: a client that
// trickles header bytes is dropped. WriteTimeout stays zero on purpose
// — a cold full-scale pipeline run legitimately takes longer than any
// fixed write deadline, and the request-timeout flag already bounds
// handler time via the context.
func newHTTPServer(addr string, h http.Handler, readHeader, read, idle time.Duration) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: readHeader,
		ReadTimeout:       read,
		IdleTimeout:       idle,
	}
}
