// Command cuisinetree regenerates the paper's dendrograms (Figs. 2-5):
// hierarchical agglomerative clustering of the 26 cuisines from mined
// patterns (Euclidean / cosine / Jaccard features, Figs. 2-4) or from
// ingredient authenticity (Fig. 5), rendered as an ASCII dendrogram plus
// Newick export.
//
// Usage:
//
//	cuisinetree -features patterns -metric euclidean   # Fig. 2
//	cuisinetree -features patterns -metric cosine      # Fig. 3
//	cuisinetree -features patterns -metric jaccard     # Fig. 4
//	cuisinetree -features authenticity                 # Fig. 5
package main

import (
	"flag"
	"fmt"
	"log"

	"cuisines/internal/authenticity"
	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/distance"
	"cuisines/internal/encode"
	"cuisines/internal/hac"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cuisinetree: ")
	var (
		features = flag.String("features", "patterns", "feature source: patterns or authenticity")
		metric   = flag.String("metric", "euclidean", "distance metric: euclidean, cosine or jaccard")
		linkage  = flag.String("linkage", "", "linkage method (default: ward for patterns+euclidean, average otherwise)")
		support  = flag.Float64("support", core.DefaultMinSupport, "pattern-mining support threshold")
		scale    = flag.Float64("scale", 1.0, "corpus scale")
		seed     = flag.Uint64("seed", corpus.DefaultSeed, "corpus generator seed")
		newick   = flag.Bool("newick", false, "also print the Newick serialization")
		workers  = flag.Int("workers", 0, "worker pool size (0 = all cores, 1 = sequential; output is identical)")
	)
	flag.Parse()

	m, err := distance.ParseMetric(*metric)
	if err != nil {
		log.Fatal(err)
	}
	method := core.DefaultLinkage
	if *features == "patterns" && m == distance.Euclidean {
		method = core.EuclideanLinkage
	}
	if *linkage != "" {
		method, err = hac.ParseMethod(*linkage)
		if err != nil {
			log.Fatal(err)
		}
	}

	db, err := corpus.Generate(corpus.Config{Seed: *seed, Scale: *scale, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}

	var tree *core.CuisineTree
	switch *features {
	case "patterns":
		mined, err := core.MineRegionsWorkers(db, *support, *workers)
		if err != nil {
			log.Fatal(err)
		}
		regions, sets := core.PatternSets(mined)
		pm, err := encode.BuildPatternMatrix(regions, core.AnchoredPatterns(sets), encode.Binary)
		if err != nil {
			log.Fatal(err)
		}
		tree, err = core.PatternTreeWorkers(pm, m, method, *workers)
		if err != nil {
			log.Fatal(err)
		}
	case "authenticity":
		am, err := authenticity.Build(db, authenticity.Options{MinRegionPrevalence: 0.03})
		if err != nil {
			log.Fatal(err)
		}
		tree, err = core.AuthenticityTreeWorkers(am, m, method, *workers)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown features %q (want patterns or authenticity)", *features)
	}

	fmt.Printf("%s (metric=%s, linkage=%s, support=%.2f, scale=%.2f)\n\n",
		tree.Name, tree.Metric, tree.Linkage, *support, *scale)
	fmt.Print(tree.Tree.Render())
	if *newick {
		fmt.Println()
		fmt.Println(tree.Tree.Newick())
	}
}
