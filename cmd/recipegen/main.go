// Command recipegen generates the calibrated synthetic RecipeDB corpus
// (the substitute for the paper's non-redistributable 118k-recipe scrape)
// and exports it as CSV or JSON Lines, or prints the Sec. III corpus
// statistics.
//
// Usage:
//
//	recipegen -stats                     # print Sec. III statistics
//	recipegen -format csv -o recipes.csv
//	recipegen -format jsonl -scale 0.1 -o sample.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"cuisines/internal/corpus"
	"cuisines/internal/recipedb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recipegen: ")
	var (
		scale   = flag.Float64("scale", 1.0, "corpus scale (fraction of the 118k full corpus)")
		seed    = flag.Uint64("seed", corpus.DefaultSeed, "generator seed")
		format  = flag.String("format", "csv", "output format: csv or jsonl")
		out     = flag.String("o", "-", "output file ('-' for stdout)")
		stats   = flag.Bool("stats", false, "print Sec. III corpus statistics instead of exporting")
		regions = flag.String("regions", "", "comma-separated region subset (default: all 26)")
		workers = flag.Int("workers", 0, "worker pool size (0 = all cores, 1 = sequential; output is identical)")
	)
	flag.Parse()

	cfg := corpus.Config{Seed: *seed, Scale: *scale, Workers: *workers}
	if *regions != "" {
		for _, r := range strings.Split(*regions, ",") {
			cfg.Regions = append(cfg.Regions, strings.TrimSpace(r))
		}
	}
	db, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *stats {
		fmt.Print(recipedb.ComputeStats(db).String())
		return
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "csv":
		err = recipedb.WriteCSV(w, db)
	case "jsonl":
		err = recipedb.WriteJSONL(w, db)
	default:
		log.Fatalf("unknown format %q (want csv or jsonl)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}
