// Command elbow regenerates Fig. 1 of the paper: the K-means elbow
// analysis on the cuisine pattern features, showing that the WCSS curve
// has no sharp elbow — the paper's argument for preferring hierarchical
// clustering over K-means on this data.
//
// Usage:
//
//	elbow [-kmax 15] [-scale 1.0] [-support 0.2] [-seed 20200426]
package main

import (
	"flag"
	"log"
	"os"

	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/encode"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("elbow: ")
	var (
		kmax    = flag.Int("kmax", 15, "largest k to evaluate")
		support = flag.Float64("support", core.DefaultMinSupport, "pattern-mining support threshold")
		scale   = flag.Float64("scale", 1.0, "corpus scale")
		seed    = flag.Uint64("seed", corpus.DefaultSeed, "corpus generator seed")
		workers = flag.Int("workers", 0, "worker pool size (0 = all cores, 1 = sequential; output is identical)")
	)
	flag.Parse()

	db, err := corpus.Generate(corpus.Config{Seed: *seed, Scale: *scale, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	mined, err := core.MineRegionsWorkers(db, *support, *workers)
	if err != nil {
		log.Fatal(err)
	}
	regions, sets := core.PatternSets(mined)
	pm, err := encode.BuildPatternMatrix(regions, core.AnchoredPatterns(sets), encode.Binary)
	if err != nil {
		log.Fatal(err)
	}
	curve, err := core.ElbowAnalysisWorkers(pm, *kmax, 1, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if err := curve.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
