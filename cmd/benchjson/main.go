// Command benchjson runs the repository's benchmark suite and records
// the results as machine-readable JSON, so benchmark trajectories can
// be committed next to the code they measure (BENCH_6.json) and checked
// in CI instead of living in PR descriptions.
//
// It shells out to `go test -bench` with -benchmem, parses the standard
// benchmark output lines, and appends a labeled run to the output file;
// re-running with an existing label replaces that run in place, so a
// before/after pair converges to two runs however many times each side
// is re-measured.
//
// Usage:
//
//	benchjson -label after -o BENCH_6.json           # run suite, record
//	benchjson -label before -input raw.txt -o f.json # ingest saved output
//	benchjson -check BENCH_6.json                    # validate, exit 1 on bad
//
// The -check mode is the CI hook: it re-parses the committed file and
// the smoke-run output, failing the job if either has stopped being
// valid benchjson output. The document format itself lives in
// internal/benchfmt, shared with cmd/loadgen.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cuisines/internal/benchfmt"
)

// defaultBench selects the tracked suite P1–P7 (see DESIGN.md §10):
// pdist, mine, corpus, figures, staged reuse, miner backends, artifact
// codecs.
const defaultBench = "^Benchmark(PdistParallel|MineRegionsParallel|CorpusGenerationParallel|BuildFiguresParallel|StagedReuse|MinerBackends|ArtifactCodecs)$"

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (e.g. 1x for smoke runs)")
		count     = flag.Int("count", 1, "go test -count value")
		short     = flag.Bool("short", false, "pass -short to go test")
		pkg       = flag.String("pkg", "./...", "package pattern to benchmark")
		label     = flag.String("label", "run", "label for this run in the output file")
		out       = flag.String("o", "", "output JSON file; merged if it exists (required unless -check)")
		input     = flag.String("input", "", "parse saved go test output from this file instead of running")
		check     = flag.String("check", "", "validate a benchjson file and exit (1 if invalid)")
	)
	flag.Parse()

	if *check != "" {
		if err := benchfmt.CheckFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *check)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o is required (or use -check)")
		os.Exit(2)
	}

	var (
		raw io.Reader
		err error
	)
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		raw = f
	} else {
		raw, err = runGoTest(*bench, *benchtime, *count, *short, *pkg)
		if err != nil {
			fatal(err)
		}
	}

	results, err := benchfmt.ParseBench(raw)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed"))
	}

	run := benchfmt.Run{
		Label:     *label,
		Go:        runtime.Version(),
		Date:      time.Now().UTC().Format("2006-01-02"),
		Benchtime: *benchtime,
		Results:   results,
	}
	if err := benchfmt.MergeRun(*out, run); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d results under label %q\n", *out, len(results), *label)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// runGoTest invokes the benchmark suite and returns its stdout. Bench
// output goes to stdout; compile errors and -v noise go to stderr and
// are surfaced on failure.
func runGoTest(bench, benchtime string, count int, short bool, pkg string) (io.Reader, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	if short {
		args = append(args, "-short")
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr) // echo progress while capturing
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return strings.NewReader(buf.String()), nil
}
