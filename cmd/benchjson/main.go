// Command benchjson runs the repository's benchmark suite and records
// the results as machine-readable JSON, so benchmark trajectories can
// be committed next to the code they measure (BENCH_6.json) and checked
// in CI instead of living in PR descriptions.
//
// It shells out to `go test -bench` with -benchmem, parses the standard
// benchmark output lines, and appends a labeled run to the output file;
// re-running with an existing label replaces that run in place, so a
// before/after pair converges to two runs however many times each side
// is re-measured.
//
// Usage:
//
//	benchjson -label after -o BENCH_6.json           # run suite, record
//	benchjson -label before -input raw.txt -o f.json # ingest saved output
//	benchjson -check BENCH_6.json                    # validate, exit 1 on bad
//
// The -check mode is the CI hook: it re-parses the committed file and
// the smoke-run output, failing the job if either has stopped being
// valid benchjson output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Schema identifies the JSON layout; bump on breaking changes.
const Schema = "cuisines-bench/v1"

// defaultBench selects the tracked suite P1–P7 (see DESIGN.md §10):
// pdist, mine, corpus, figures, staged reuse, miner backends, artifact
// codecs.
const defaultBench = "^Benchmark(PdistParallel|MineRegionsParallel|CorpusGenerationParallel|BuildFiguresParallel|StagedReuse|MinerBackends|ArtifactCodecs)$"

// File is the committed JSON document.
type File struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// Run is one labeled benchmark invocation.
type Run struct {
	Label     string   `json:"label"`
	Go        string   `json:"go"`
	Date      string   `json:"date"`
	Benchtime string   `json:"benchtime,omitempty"`
	Results   []Result `json:"results"`
}

// Result is one parsed benchmark line. Metrics holds custom
// b.ReportMetric units (e.g. "patterns", "d0").
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (e.g. 1x for smoke runs)")
		count     = flag.Int("count", 1, "go test -count value")
		short     = flag.Bool("short", false, "pass -short to go test")
		pkg       = flag.String("pkg", "./...", "package pattern to benchmark")
		label     = flag.String("label", "run", "label for this run in the output file")
		out       = flag.String("o", "", "output JSON file; merged if it exists (required unless -check)")
		input     = flag.String("input", "", "parse saved go test output from this file instead of running")
		check     = flag.String("check", "", "validate a benchjson file and exit (1 if invalid)")
	)
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *check)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o is required (or use -check)")
		os.Exit(2)
	}

	var (
		raw io.Reader
		err error
	)
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		raw = f
	} else {
		raw, err = runGoTest(*bench, *benchtime, *count, *short, *pkg)
		if err != nil {
			fatal(err)
		}
	}

	results, err := ParseBench(raw)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed"))
	}

	run := Run{
		Label:     *label,
		Go:        runtime.Version(),
		Date:      time.Now().UTC().Format("2006-01-02"),
		Benchtime: *benchtime,
		Results:   results,
	}
	if err := mergeRun(*out, run); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d results under label %q\n", *out, len(results), *label)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// runGoTest invokes the benchmark suite and returns its stdout. Bench
// output goes to stdout; compile errors and -v noise go to stderr and
// are surfaced on failure.
func runGoTest(bench, benchtime string, count int, short bool, pkg string) (io.Reader, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	if short {
		args = append(args, "-short")
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr) // echo progress while capturing
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return strings.NewReader(buf.String()), nil
}

var procsSuffix = regexp.MustCompile(`-(\d+)$`)

// ParseBench parses standard `go test -bench` output lines:
//
//	BenchmarkName/sub-8   20   52783924 ns/op   18.73 d0   268770 B/op   4 allocs/op
//
// i.e. a name (with optional -GOMAXPROCS suffix), an iteration count,
// then (value, unit) pairs. Unknown units land in Metrics. Non-benchmark
// lines (goos/pkg headers, PASS, ok) are skipped.
func ParseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		res := Result{Name: fields[0]}
		if m := procsSuffix.FindStringSubmatch(res.Name); m != nil {
			res.Procs, _ = strconv.Atoi(m[1])
			res.Name = strings.TrimSuffix(res.Name, m[0])
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		res.Iterations = iters
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q: %v", fields[i], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				v := val
				res.BytesPerOp = &v
			case "allocs/op":
				v := val
				res.AllocsPerOp = &v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// mergeRun loads the output file if present, replaces any existing run
// with the same label (keeping its position, so "before" stays first),
// appends otherwise, and writes the file back.
func mergeRun(path string, run Run) error {
	f := File{Schema: Schema}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not valid benchjson: %v", path, err)
		}
		if f.Schema != Schema {
			return fmt.Errorf("existing %s has schema %q, want %q", path, f.Schema, Schema)
		}
	}
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == run.Label {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkFile validates a benchjson document: schema match, at least one
// run, every run labeled with at least one named result.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	if f.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", f.Schema, Schema)
	}
	if len(f.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	for i, r := range f.Runs {
		if r.Label == "" {
			return fmt.Errorf("run %d has no label", i)
		}
		if len(r.Results) == 0 {
			return fmt.Errorf("run %q has no results", r.Label)
		}
		for j, res := range r.Results {
			if res.Name == "" {
				return fmt.Errorf("run %q result %d has no name", r.Label, j)
			}
			if res.NsPerOp <= 0 {
				return fmt.Errorf("run %q result %q has non-positive ns/op", r.Label, res.Name)
			}
		}
	}
	return nil
}
