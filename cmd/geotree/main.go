// Command geotree regenerates Fig. 6 of the paper: the hierarchical
// clustering of the 26 regions by great-circle distance between their
// centroids — the reference tree the cuisine trees are validated
// against.
//
// Usage:
//
//	geotree [-linkage average] [-newick]
package main

import (
	"flag"
	"fmt"
	"log"

	"cuisines/internal/core"
	"cuisines/internal/geo"
	"cuisines/internal/hac"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geotree: ")
	var (
		linkage = flag.String("linkage", core.DefaultLinkage.String(), "linkage method")
		newick  = flag.Bool("newick", false, "also print the Newick serialization")
	)
	flag.Parse()

	method, err := hac.ParseMethod(*linkage)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := core.GeographicTree(geo.RegionNames(), method)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("geographic distance tree (haversine km, linkage=%s)\n\n", method)
	fmt.Print(tree.Tree.Render())
	if *newick {
		fmt.Println()
		fmt.Println(tree.Tree.Newick())
	}
}
