// Command cuisinelint runs the project's invariant analyzers
// (internal/lint: mapiter, wallclock, canonfields, codecver, nakedgo)
// over Go packages. It is one binary with two faces:
//
//   - invoked by `go vet -vettool=cuisinelint`, it speaks the
//     unitchecker protocol (-V, -flags, per-package .cfg files), which
//     is how the toolchain hands it fully type-checked packages and
//     propagates analysis facts across package boundaries;
//   - invoked directly with package patterns (`cuisinelint ./...`), it
//     re-executes itself through `go vet -vettool=<self>`, so the
//     standalone form needs no package-loading machinery of its own —
//     the build environment has no network access for go/packages, and
//     the toolchain already owns package loading.
//
// With -json it aggregates the per-package JSON objects go vet streams
// into one stable cuisinelint/v1 document on stdout and exits 1 iff
// there are findings, so CI and trajectory tooling can diff finding
// counts across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"cuisines/internal/lint"
)

func main() {
	if vetToolInvocation(os.Args[1:]) {
		unitchecker.Main(lint.Analyzers...) // exits
	}
	os.Exit(standalone(os.Args[1:]))
}

// vetToolInvocation recognizes the unitchecker protocol: go vet probes
// the tool with -V=full and -flags, then invokes it once per package
// with a generated .cfg file.
func vetToolInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("cuisinelint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit one aggregated JSON document on stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cuisinelint [-json] [packages]\n\nRuns the cuisines invariant analyzers (%s)\nover the packages (default ./...). Also usable as go vet -vettool=cuisinelint.\n\n", analyzerNames())
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuisinelint: cannot locate own binary: %v\n", err)
		return 2
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if *jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	if !*jsonOut {
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); ok {
				return 1
			}
			fmt.Fprintf(os.Stderr, "cuisinelint: go vet: %v\n", err)
			return 2
		}
		return 0
	}

	// go vet relays each unitchecker invocation's output — the JSON
	// included — on its stderr, interleaved with "# pkg" headers and
	// any build errors. Capture it all, extract the JSON, and forward
	// the rest so build failures stay visible.
	var buf strings.Builder
	cmd.Stderr = &buf
	runErr := cmd.Run()
	if runErr != nil {
		if _, ok := runErr.(*exec.ExitError); !ok {
			fmt.Fprintf(os.Stderr, "cuisinelint: go vet: %v\n", runErr)
			return 2
		}
		// In -json mode unitchecker exits 0 even with findings, so a
		// nonzero exit means a real failure (usually a build error);
		// the noise forwarded below says what broke.
	}
	jsonPart, noise := splitVetStderr(buf.String())
	if noise != "" {
		fmt.Fprint(os.Stderr, noise)
	}
	if runErr != nil {
		return 2
	}
	doc, findings, perr := mergeJSON(jsonPart)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "cuisinelint: parsing go vet -json output: %v\n", perr)
		return 2
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "cuisinelint: %v\n", err)
		return 2
	}
	if findings > 0 {
		return 1
	}
	return 0
}

func analyzerNames() string {
	names := make([]string, len(lint.Analyzers))
	for i, a := range lint.Analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// diagnostic mirrors analysisflags' JSON shape for one finding.
type diagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// report is the aggregated cuisinelint/v1 document.
type report struct {
	Version  string                             `json:"version"`
	Findings int                                `json:"findings"`
	Packages map[string]map[string][]diagnostic `json:"packages"`
}

// splitVetStderr separates unitchecker's pretty-printed JSON objects
// from everything else on go vet's stderr. The objects are printed
// with top-level braces in column 0 and tab-indented bodies, so a
// column-0 brace scan recovers them exactly; "# pkg" headers and
// build-error lines land in noise.
func splitVetStderr(raw string) (jsonPart, noise string) {
	var js, ns strings.Builder
	capturing := false
	for _, line := range strings.Split(raw, "\n") {
		switch {
		case !capturing && strings.HasPrefix(line, "{"):
			js.WriteString(line)
			js.WriteString("\n")
			// single-line objects ("{}") open and close at once
			capturing = !strings.HasSuffix(strings.TrimSpace(line), "}")
		case capturing:
			js.WriteString(line)
			js.WriteString("\n")
			if strings.HasPrefix(line, "}") {
				capturing = false
			}
		case line != "" && !strings.HasPrefix(line, "#"):
			ns.WriteString(line)
			ns.WriteString("\n")
		}
	}
	return js.String(), ns.String()
}

// mergeJSON folds the stream of per-package JSON objects emitted by
// unitchecker ({"pkgpath": {"analyzer": [diag, ...]}}) into one
// document.
func mergeJSON(raw string) (*report, int, error) {
	doc := &report{Version: "cuisinelint/v1", Packages: map[string]map[string][]diagnostic{}}
	dec := json.NewDecoder(strings.NewReader(raw))
	total := 0
	for {
		var obj map[string]map[string][]diagnostic
		if err := dec.Decode(&obj); err == io.EOF {
			break
		} else if err != nil {
			return nil, 0, err
		}
		for pkg, byAnalyzer := range obj {
			dst := doc.Packages[pkg]
			if dst == nil {
				dst = map[string][]diagnostic{}
			}
			for name, diags := range byAnalyzer {
				if len(diags) == 0 {
					continue
				}
				dst[name] = append(dst[name], diags...)
				total += len(diags)
			}
			if len(dst) > 0 {
				doc.Packages[pkg] = dst
			}
		}
	}
	doc.Findings = total
	return doc, total, nil
}
