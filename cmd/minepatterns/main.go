// Command minepatterns regenerates Table I of the paper: per-cuisine
// frequent patterns mined at the chosen support with the selected
// backend (FP-Growth, Apriori or Eclat — identical output, different
// speed), headline patterns ranked by the documented significance
// score, and per-cuisine pattern counts.
//
// Usage:
//
//	minepatterns [-support 0.2] [-scale 1.0] [-seed 20200426] [-top 3] [-miner eclat] [-paper]
//
// -paper appends the paper's published values next to the measured ones.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/miner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("minepatterns: ")
	var (
		support   = flag.Float64("support", core.DefaultMinSupport, "minimum relative support")
		scale     = flag.Float64("scale", 1.0, "corpus scale (fraction of the 118k full corpus)")
		seed      = flag.Uint64("seed", corpus.DefaultSeed, "corpus generator seed")
		topK      = flag.Int("top", 3, "headline patterns per cuisine")
		paper     = flag.Bool("paper", false, "append the paper's Table I values for comparison")
		workers   = flag.Int("workers", 0, "worker pool size (0 = all cores, 1 = sequential; output is identical)")
		minerName = flag.String("miner", miner.Default.Name(), "frequent-itemset mining backend (apriori|eclat|fpgrowth; output is identical, only speed differs)")
	)
	flag.Parse()

	m, err := miner.Parse(*minerName)
	if err != nil {
		log.Fatal(err)
	}
	db, err := corpus.Generate(corpus.Config{Seed: *seed, Scale: *scale, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	t, err := core.BuildTable1With(db, *support, *topK, *workers, m)
	if err != nil {
		log.Fatal(err)
	}
	if !*paper {
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Region\tRecipes\tMeasured top\tSupp\t#Pat\tPaper top\tSupp\t#Pat\n")
	for _, row := range t.Rows {
		prof, err := corpus.ProfileFor(row.Region)
		if err != nil {
			log.Fatal(err)
		}
		top, sup := "-", "-"
		if len(row.Top) > 0 {
			top = row.Top[0].Pattern.Items.String()
			sup = fmt.Sprintf("%.2f", row.Top[0].Pattern.Support)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%d\t%s\t%.2f\t%d\n",
			row.Region, row.Recipes, top, sup, row.Patterns,
			prof.IntendedTop[0], prof.PaperSupport, prof.PaperPatternCount)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
