// Command evaltrees quantifies the paper's Sec. VII validation: every
// cuisine tree (Figs. 2-5) is compared against the geographic tree
// (Fig. 6) with cophenetic correlation, Baker's gamma, Robinson-Foulds
// distance and Fowlkes-Mallows B_k, and the paper's qualitative claims
// (Canada-France over Canada-US; India-North-Africa over India-Thai/SEA;
// Euclidean fits geography best; authenticity at least as good) are
// checked explicitly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/flavor"
	"cuisines/internal/hac"
	"cuisines/internal/treecmp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evaltrees: ")
	var (
		support   = flag.Float64("support", core.DefaultMinSupport, "minimum relative support")
		scale     = flag.Float64("scale", 1.0, "corpus scale")
		seed      = flag.Uint64("seed", corpus.DefaultSeed, "corpus generator seed")
		linkage   = flag.String("linkage", core.DefaultLinkage.String(), "linkage method (single|complete|average|weighted|ward)")
		bootstrap = flag.Int("bootstrap", 0, "additionally run N bootstrap replicates of the anecdote claims")
		pvalues   = flag.Bool("pvalues", false, "additionally run permutation significance tests of each tree's geography fit")
		kinds     = flag.Bool("kinds", false, "additionally analyze per-kind (ingredient/process/utensil) influence on the cuisine tree")
		pairing   = flag.Bool("pairing", false, "additionally compute the flavor-compound food-pairing statistic per cuisine")
		workers   = flag.Int("workers", 0, "worker pool size (0 = all cores, 1 = sequential; output is identical)")
	)
	flag.Parse()

	method, err := hac.ParseMethod(*linkage)
	if err != nil {
		log.Fatal(err)
	}
	db, err := corpus.Generate(corpus.Config{Seed: *seed, Scale: *scale, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	figs, err := core.BuildFiguresWorkers(db, *support, method, *workers)
	if err != nil {
		log.Fatal(err)
	}
	v, err := core.Validate(figs)
	if err != nil {
		log.Fatal(err)
	}
	if err := v.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *pvalues {
		fmt.Println("\nPermutation significance of geography fit (Baker's gamma, 1000 permutations):")
		geoCoph := figs.Geo.Tree.Cophenetic()
		for _, ct := range []*core.CuisineTree{figs.Euclidean, figs.Cosine, figs.Jaccard, figs.Auth} {
			res, err := treecmp.PermutationTest(ct.Tree.Cophenetic(), geoCoph, treecmp.BakersGamma, 1000, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-24s observed %.3f  null %.3f±%.3f  p = %.4f\n",
				ct.Name, res.Observed, res.NullMean, res.NullStd, res.PValue)
		}
	}

	if *kinds {
		fmt.Println("\nPer-kind influence (authenticity tree per item kind — the paper's Sec. VIII question):")
		rows, err := core.AnalyzeKindInfluence(db, method)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.RenderKindInfluence(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
	}

	if *pairing {
		fmt.Println("\nFlavor-compound food pairing (Ahn et al. delta N_s on the synthetic compound table):")
		if err := flavor.RenderPairing(os.Stdout, flavor.AnalyzeDB(db, *seed)); err != nil {
			log.Fatal(err)
		}
	}

	if *bootstrap > 0 {
		fmt.Printf("\nBootstrap stability (%d replicates):\n", *bootstrap)
		st, err := core.BootstrapClaimsWorkers(db, *support, *bootstrap, *seed, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if err := st.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if !v.AllClaimsHold() {
		fmt.Println("\nWARNING: not all Sec. VII claims reproduced")
		os.Exit(1)
	}
	fmt.Println("\nAll Sec. VII claims reproduced.")
}
